#!/bin/sh
# Local CI: formatting, vet, the repo's own static-analysis suite
# (cmd/fbpvet), build, and the test suite. By default the tests run under
# the race detector (slow but the real gate); pass -quick to run them
# without -race for fast tier-1 iteration. Referenced from README
# "Install & quick start".
set -e

cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
	case "$arg" in
	-quick) quick=1 ;;
	*)
		echo "usage: ./ci.sh [-quick]" >&2
		exit 2
		;;
	esac
done

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== fbpvet =="
# Repo-specific invariants: map-order determinism in solver packages,
# no float equality in numeric kernels, obs spans always ended, no
# dropped errors, no global/time-seeded RNG. See README "Static analysis".
go run ./cmd/fbpvet ./...

echo "== go build =="
go build ./...

echo "== local-QP allocation guard =="
# Regression guard for the O(netlist) scan: a small-block SolveSubset over
# a 10k-cell netlist must allocate O(block). See README "Performance".
go test -timeout 5m -run 'TestSolveSubsetAllocsOBlock' ./internal/qp/

echo "== benchmark smoke =="
# One iteration each of the two realization-path microbenchmarks, so a
# change that breaks or pathologically slows them fails CI fast.
go test -timeout 10m -run '^$' -bench 'BenchmarkSolveSubsetBlock|BenchmarkRealizeLevel' -benchtime 1x ./internal/qp/ ./internal/fbp/

echo "== fault injection suite =="
# Robustness gate: arm every faultsim injection point and prove the
# pipeline degrades or fails structurally (no panics, no goroutine
# leaks, 1-vs-4-worker determinism preserved). See README "Robustness
# & fault injection".
go test -timeout 10m -run 'TestInjection|TestDeadline|TestLeak' ./internal/faultsim/

echo "== kill-and-resume e2e =="
# Crash-safety gate: a run killed mid-loop by an injected panic must,
# after resume from its checkpoints, produce bit-identical positions to
# an uninterrupted run. See README "Checkpoint & resume".
ckdir=$(mktemp -d ./ci-ckpt.XXXXXX)
trap 'rm -rf "$ckdir"' EXIT
go build -o "$ckdir/fbplace" ./cmd/fbplace
"$ckdir/fbplace" -cells 3000 -seed 7 -dump-hex "$ckdir/full.hex" >/dev/null
if "$ckdir/fbplace" -cells 3000 -seed 7 -checkpoint "$ckdir/ck" \
	-fault placer.level.fail:after=1,limit=1,panic=1 >/dev/null 2>&1; then
	echo "kill-and-resume: injected fault did not kill the run" >&2
	exit 1
fi
"$ckdir/fbplace" -cells 3000 -seed 7 -checkpoint "$ckdir/ck" -resume \
	-dump-hex "$ckdir/resumed.hex" >/dev/null
cmp "$ckdir/full.hex" "$ckdir/resumed.hex"

echo "== fuzz smoke =="
# A few seconds per fuzz target: enough to replay the seed corpora under
# testdata/fuzz/ plus a short random exploration.
go test -fuzz 'FuzzRectAlgebra' -fuzztime 5s -timeout 5m ./internal/geom/
go test -fuzz 'FuzzParse' -fuzztime 5s -timeout 5m ./internal/bookshelf/
go test -fuzz 'FuzzReadChip' -fuzztime 5s -timeout 5m ./internal/chipio/

if [ "$quick" = 1 ]; then
	echo "== go test (quick, no -race) =="
	go test -timeout 15m ./...
else
	echo "== go test -race =="
	# The race detector slows the experiment harness ~10x past the default
	# 10-minute per-package timeout.
	go test -race -timeout 30m ./...
fi

echo "CI OK"
