#!/bin/sh
# Local CI: formatting, vet, the repo's own static-analysis suite
# (cmd/fbpvet), build, and the test suite. By default the tests run under
# the race detector (slow but the real gate); pass -quick to run them
# without -race for fast tier-1 iteration. Referenced from README
# "Install & quick start".
set -e

cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
	case "$arg" in
	-quick) quick=1 ;;
	*)
		echo "usage: ./ci.sh [-quick]" >&2
		exit 2
		;;
	esac
done

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== fbpvet =="
# Repo-specific invariants: map-order determinism in solver packages,
# no float equality in numeric kernels, obs spans always ended, no
# dropped errors, no global/time-seeded RNG, plus the concurrency family
# (mutexguard, ctxrelease, goroleak, atomicmix, walltime). Any finding
# without an //fbpvet:allow (or per-analyzer) suppression fails CI here.
# See README "Static analysis".
go run ./cmd/fbpvet ./...

echo "== go build =="
go build ./...

echo "== local-QP allocation guard =="
# Regression guard for the O(netlist) scan: a small-block SolveSubset over
# a 10k-cell netlist must allocate O(block). See README "Performance".
go test -timeout 5m -run 'TestSolveSubsetAllocsOBlock' ./internal/qp/

echo "== benchmark smoke =="
# One iteration each of the two realization-path microbenchmarks, so a
# change that breaks or pathologically slows them fails CI fast.
go test -timeout 10m -run '^$' -bench 'BenchmarkSolveSubsetBlock|BenchmarkRealizeLevel' -benchtime 1x ./internal/qp/ ./internal/fbp/

echo "== bench regression gate =="
# The committed Table-I baseline (cmd/fbpbench -table 1 -bench-out) must
# not regress more than 10% wall clock against the PR 4 reference. A
# session that regenerates the BENCH file with a slower transport or
# realization path fails here; regenerate with
#   go run ./cmd/fbpbench -table 1 -bench-out BENCH_pr9.json
# on an otherwise idle machine before committing. See README
# "Performance" and cmd/benchgate.
go run ./cmd/benchgate -base BENCH_pr4.json -new BENCH_pr9.json -table 1 -max-regress 0.10

echo "== fault injection suite =="
# Robustness gate: arm every faultsim injection point and prove the
# pipeline degrades or fails structurally (no panics, no goroutine
# leaks, 1-vs-4-worker determinism preserved). See README "Robustness
# & fault injection".
go test -timeout 10m -run 'TestInjection|TestDeadline|TestLeak' ./internal/faultsim/

echo "== kill-and-resume e2e =="
# Crash-safety gate: a run killed mid-loop by an injected panic must,
# after resume from its checkpoints, produce bit-identical positions to
# an uninterrupted run. See README "Checkpoint & resume".
ckdir=$(mktemp -d ./ci-ckpt.XXXXXX)
trap 'rm -rf "$ckdir"' EXIT
go build -o "$ckdir/fbplace" ./cmd/fbplace
"$ckdir/fbplace" -cells 3000 -seed 7 -dump-hex "$ckdir/full.hex" >/dev/null
if "$ckdir/fbplace" -cells 3000 -seed 7 -checkpoint "$ckdir/ck" \
	-fault placer.level.fail:after=1,limit=1,panic=1 >/dev/null 2>&1; then
	echo "kill-and-resume: injected fault did not kill the run" >&2
	exit 1
fi
"$ckdir/fbplace" -cells 3000 -seed 7 -checkpoint "$ckdir/ck" -resume \
	-dump-hex "$ckdir/resumed.hex" >/dev/null
cmp "$ckdir/full.hex" "$ckdir/resumed.hex"

echo "== placement service e2e =="
# Service gate: fbplaced must serve a placement over HTTP whose positions
# are bit-identical to a direct fbplace run of the same instance, and a
# duplicate submission must be served from the result cache without
# running a second placement. See README "Placement as a service".
go build -o "$ckdir/fbplaced" ./cmd/fbplaced
"$ckdir/fbplace" -cells 800 -seed 11 -dump-hex "$ckdir/direct.hex" >/dev/null
"$ckdir/fbplaced" -addr 127.0.0.1:0 -portfile "$ckdir/port" \
	-dir "$ckdir/state" >"$ckdir/fbplaced.log" 2>&1 &
daemon=$!
for i in $(seq 1 100); do
	[ -s "$ckdir/port" ] && break
	sleep 0.1
done
base="http://$(cat "$ckdir/port")"
body='{"chip":{"NumCells":800,"Seed":11}}'
id=$(curl -sf -d "$body" "$base/jobs" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "service e2e: submit returned no job id" >&2; exit 1; }
for i in $(seq 1 300); do
	state=$(curl -sf "$base/jobs/$id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
	case "$state" in done | failed | canceled) break ;; esac
	sleep 0.1
done
[ "$state" = done ] || { echo "service e2e: job ended $state" >&2; exit 1; }
curl -sf "$base/jobs/$id/result?format=hex" >"$ckdir/served.hex"
cmp "$ckdir/direct.hex" "$ckdir/served.hex"
# Duplicate submission: served from the cache, no second placement.
curl -sf -d "$body" "$base/jobs" >/dev/null
sleep 0.3
stats=$(curl -sf "$base/stats")
echo "$stats" | grep -q '"serve.cache.hits": 1' ||
	{ echo "service e2e: duplicate was not a cache hit: $stats" >&2; exit 1; }
echo "$stats" | grep -q '"serve.placements": 1' ||
	{ echo "service e2e: duplicate ran a second placement: $stats" >&2; exit 1; }
kill -TERM "$daemon"
wait "$daemon" || { echo "service e2e: drain exited non-zero" >&2; exit 1; }

echo "== certification e2e =="
# Certify-and-repair gate (internal/certify): a certified run passes; one
# injected silent corruption (certify.corrupt bit-flips a position) is
# caught and repaired in safe mode with the repair on record; unlimited
# corruption must fail the run with the structured certify error. See
# README "Certification & safe mode".
"$ckdir/fbplace" -cells 2000 -seed 3 -certify >/dev/null
"$ckdir/fbplace" -cells 2000 -seed 3 -certify \
	-fault certify.corrupt:limit=1 >"$ckdir/certify.log"
grep -q 'degraded: certify fell back to safe-mode' "$ckdir/certify.log" ||
	{ echo "certification e2e: repair not recorded" >&2; exit 1; }
if "$ckdir/fbplace" -cells 2000 -seed 3 -certify \
	-fault certify.corrupt >"$ckdir/certify2.log" 2>&1; then
	echo "certification e2e: unrepairable corruption did not fail the run" >&2
	exit 1
fi
grep -q 'certify:' "$ckdir/certify2.log" ||
	{ echo "certification e2e: failure lacks the certify error" >&2; exit 1; }

echo "== chaos soak =="
# Overload-protection gate: sustained mixed load under a tight memory
# budget, bounded queue and an armed fault storm (failing/corrupting
# checkpoint writes, bouncing admissions, stalling attempts, silently
# corrupting placements that certification must catch) at 1 and 4
# workers. Asserts the service sheds instead of crashing: zero goroutine
# leaks, every accepted job terminal, preempted/requeued jobs verify
# bit-identical, and a fresh round-trip works after the storm. See
# README "Overload & resource governance" and DESIGN.md §8.
go test -timeout 5m -run 'TestChaosSoak' ./internal/serve/

echo "== serve/obs race gate =="
# The scheduler and broadcast layers are the repo's concurrency hot spots
# (preemption, single-flight, fan-out); run them under the race detector
# unconditionally — even with -quick — so lock-discipline regressions
# cannot slip through a fast iteration loop. Quick mode skips only the
# chaos soak here (it just ran above, race-free; the full -race suite
# below still covers it in the default mode).
raceskip=''
[ "$quick" = 1 ] && raceskip='-skip=TestChaosSoak'
go test -race -timeout 20m $raceskip ./internal/serve/... ./internal/obs/...

echo "== fuzz smoke =="
# A few seconds per fuzz target: enough to replay the seed corpora under
# testdata/fuzz/ plus a short random exploration.
go test -fuzz 'FuzzRectAlgebra' -fuzztime 5s -timeout 5m ./internal/geom/
go test -fuzz 'FuzzParse' -fuzztime 5s -timeout 5m ./internal/bookshelf/
go test -fuzz 'FuzzReadChip' -fuzztime 5s -timeout 5m ./internal/chipio/

if [ "$quick" = 1 ]; then
	echo "== go test (quick, no -race) =="
	go test -timeout 15m ./...
else
	echo "== go test -race =="
	# The race detector slows the experiment harness ~10x past the default
	# 10-minute per-package timeout.
	go test -race -timeout 30m ./...
fi

echo "CI OK"
