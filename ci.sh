#!/bin/sh
# Local CI: formatting, vet, the repo's own static-analysis suite
# (cmd/fbpvet), build, and the test suite. By default the tests run under
# the race detector (slow but the real gate); pass -quick to run them
# without -race for fast tier-1 iteration. Referenced from README
# "Install & quick start".
set -e

cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
	case "$arg" in
	-quick) quick=1 ;;
	*)
		echo "usage: ./ci.sh [-quick]" >&2
		exit 2
		;;
	esac
done

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== fbpvet =="
# Repo-specific invariants: map-order determinism in solver packages,
# no float equality in numeric kernels, obs spans always ended, no
# dropped errors, no global/time-seeded RNG. See README "Static analysis".
go run ./cmd/fbpvet ./...

echo "== go build =="
go build ./...

echo "== local-QP allocation guard =="
# Regression guard for the O(netlist) scan: a small-block SolveSubset over
# a 10k-cell netlist must allocate O(block). See README "Performance".
go test -timeout 5m -run 'TestSolveSubsetAllocsOBlock' ./internal/qp/

echo "== benchmark smoke =="
# One iteration each of the two realization-path microbenchmarks, so a
# change that breaks or pathologically slows them fails CI fast.
go test -timeout 10m -run '^$' -bench 'BenchmarkSolveSubsetBlock|BenchmarkRealizeLevel' -benchtime 1x ./internal/qp/ ./internal/fbp/

echo "== fault injection suite =="
# Robustness gate: arm every faultsim injection point and prove the
# pipeline degrades or fails structurally (no panics, no goroutine
# leaks, 1-vs-4-worker determinism preserved). See README "Robustness
# & fault injection".
go test -timeout 10m -run 'TestInjection|TestDeadline|TestLeak' ./internal/faultsim/

if [ "$quick" = 1 ]; then
	echo "== go test (quick, no -race) =="
	go test -timeout 15m ./...
else
	echo "== go test -race =="
	# The race detector slows the experiment harness ~10x past the default
	# 10-minute per-package timeout.
	go test -race -timeout 30m ./...
fi

echo "CI OK"
