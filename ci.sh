#!/bin/sh
# Local CI: formatting, vet, build, and the full test suite under the race
# detector. Referenced from README "Install & quick start".
set -e

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
# The race detector slows the experiment harness ~10x past the default
# 10-minute per-package timeout.
go test -race -timeout 30m ./...

echo "CI OK"
