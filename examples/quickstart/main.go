// Quickstart: generate a small synthetic chip, place it with the
// flow-based-partitioning placer, and report quality and runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fbplace"
)

func main() {
	// A 5000-cell chip with two voltage-island style movebounds.
	inst, err := fbplace.Generate(fbplace.ChipSpec{
		Name:     "quickstart",
		NumCells: 5000,
		Seed:     1,
		Movebounds: []fbplace.MoveboundSpec{
			{Kind: fbplace.Inclusive, CellFraction: 0.15, Density: 0.7, NestedIn: -1},
			{Kind: fbplace.Exclusive, CellFraction: 0.08, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	n := inst.N
	fmt.Printf("chip %s: %d cells, %d nets, %d movebounds, area %.0f x %.0f\n",
		inst.Spec.Name, n.NumCells(), n.NumNets(), len(inst.Movebounds),
		n.Area.Width(), n.Area.Height())

	// Polynomial feasibility check first (paper Theorem 2).
	feas, err := fbplace.CheckFeasibility(n, inst.Movebounds, 0.97)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v (%.0f cell area, %.0f routable)\n",
		feas.Feasible, feas.TotalSize, feas.Routed)

	start := time.Now()
	rep, err := fbplace.Place(n, fbplace.Config{Movebounds: inst.Movebounds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed in %v (global %v, legalization %v, %d levels)\n",
		time.Since(start).Round(time.Millisecond),
		rep.GlobalTime.Round(time.Millisecond),
		rep.LegalTime.Round(time.Millisecond), rep.Levels)
	fmt.Printf("HPWL: %.0f\n", rep.HPWL)
	fmt.Printf("movebound violations: %d, overlaps: %d\n", rep.Violations, rep.Overlaps)
}
