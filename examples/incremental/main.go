// Incremental demonstrates the §IV motivation that recursive partitioning
// lacks: incremental re-placement. After an initial placement, an
// ECO-style change perturbs part of the design; FBP re-partitions from the
// *existing* placement (it guarantees a feasible partitioning for any
// starting placement), so the incremental run is much cheaper than a full
// re-place and disturbs the placement far less.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"fbplace"
)

func main() {
	inst, err := fbplace.Generate(fbplace.ChipSpec{Name: "eco", NumCells: 6000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	n := inst.N
	rep, err := fbplace.Place(n, fbplace.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial placement: HPWL %.0f\n", rep.HPWL)

	// ECO: 3%% of the cells are "resynthesized" — they land at the chip
	// center with no valid position.
	before := snapshot(n)
	for i := 0; i < n.NumCells()/33; i++ {
		n.SetPos(fbplace.CellID((i*37)%n.NumCells()), n.Area.Center())
	}

	// Incremental: keep the placement, re-run partitioning+legalization.
	incNet := n.Clone()
	start := time.Now()
	incRep, err := fbplace.Place(incNet, fbplace.Config{KeepPlacement: true})
	if err != nil {
		log.Fatal(err)
	}
	incTime := time.Since(start)

	// From scratch for comparison.
	scratchNet := n.Clone()
	start = time.Now()
	scratchRep, err := fbplace.Place(scratchNet, fbplace.Config{})
	if err != nil {
		log.Fatal(err)
	}
	scratchTime := time.Since(start)

	fmt.Printf("\n%-14s %12s %10s %16s\n", "mode", "HPWL", "time", "avg. disturbance")
	fmt.Printf("%-14s %12.0f %10v %16.2f\n", "incremental", incRep.HPWL,
		incTime.Round(time.Millisecond), disturbance(before, incNet))
	fmt.Printf("%-14s %12.0f %10v %16.2f\n", "from scratch", scratchRep.HPWL,
		scratchTime.Round(time.Millisecond), disturbance(before, scratchNet))
	fmt.Println("\nincremental placement preserves the existing layout (small")
	fmt.Println("disturbance) at comparable wirelength.")
}

func snapshot(n *fbplace.Netlist) []fbplace.Point {
	out := make([]fbplace.Point, n.NumCells())
	for i := range out {
		out[i] = n.Pos(fbplace.CellID(i))
	}
	return out
}

// disturbance is the mean L1 movement of untouched movable cells relative
// to the pre-ECO placement.
func disturbance(before []fbplace.Point, n *fbplace.Netlist) float64 {
	total, count := 0.0, 0
	for i := range before {
		if n.Cells[i].Fixed {
			continue
		}
		total += math.Abs(before[i].X-n.X[i]) + math.Abs(before[i].Y-n.Y[i])
		count++
	}
	return total / float64(count)
}
