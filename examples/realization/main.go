// Realization reproduces paper Figure 4: cells crowd one window of a 2x2
// grid; the global MinCostFlow computes movement directions and amounts
// (the flow-carrying external edges); the realization ships cells along
// them. The program prints the per-window load before the step, the flow
// plan, and the load after realization.
//
//	go run ./examples/realization
package main

import (
	"fmt"
	"log"

	"fbplace"
)

const k = 2 // 2x2 windows as in Figure 4

func main() {
	chip := fbplace.Rect{Xlo: 0, Ylo: 0, Xhi: 32, Yhi: 32}
	n := fbplace.NewNetlist(chip, 1)
	// 300 unit cells piled into the lower-left window (capacity 256),
	// chained together and tied to a pad in the lower-left corner so the
	// quadratic model wants them exactly where they are.
	for i := 0; i < 300; i++ {
		id := n.AddCell(fbplace.Cell{Name: fmt.Sprintf("c%d", i), Width: 1, Height: 1, Movebound: fbplace.NoMovebound})
		n.SetPos(id, fbplace.Point{X: 6, Y: 6})
		if i > 0 {
			n.AddNet(fbplace.Net{Pins: []fbplace.Pin{{Cell: id - 1}, {Cell: id}}})
		}
		if i%10 == 0 {
			n.AddNet(fbplace.Net{Pins: []fbplace.Pin{
				{Cell: id}, {Cell: -1, Offset: fbplace.Point{X: 2, Y: 2}},
			}})
		}
	}

	fmt.Println("(1) initial state: window loads")
	printLoads(n, chip)

	// (2) the global flow plan.
	stats, flows, err := fbplace.FlowModel(n, nil, k, 0.97)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(2) MinCostFlow model: %d nodes, %d arcs (linear in windows+regions)\n",
		stats.NumNodes, stats.NumArcs)
	fmt.Println("    flow-carrying external edges (direction plan):")
	for _, f := range flows {
		fmt.Printf("    %s: window (%d,%d)%s -> (%d,%d)%s  area %.1f\n",
			f.Class, f.FromWindow[0], f.FromWindow[1], f.FromDir,
			f.ToWindow[0], f.ToWindow[1], f.ToDir, f.Amount)
	}

	// (3)-(5) realization: local QP + transportation in coarse windows,
	// in topological order of the external edges.
	res, err := fbplace.Partition(n, nil, k, 0.97)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(3-5) realized in %d parallel waves, realization time %v\n",
		res.Stats.Waves, res.Stats.RealizeTime.Round(1000))
	fmt.Println("\nfinal state: window loads (all within capacity)")
	printLoads(n, chip)
}

func printLoads(n *fbplace.Netlist, chip fbplace.Rect) {
	var loads [k][k]float64
	for i := range n.Cells {
		p := n.Pos(fbplace.CellID(i))
		ix := int(p.X / chip.Width() * k)
		iy := int(p.Y / chip.Height() * k)
		if ix >= k {
			ix = k - 1
		}
		if iy >= k {
			iy = k - 1
		}
		loads[ix][iy] += n.Cells[i].Size()
	}
	capacity := chip.Area() / (k * k)
	for iy := k - 1; iy >= 0; iy-- {
		fmt.Print("   ")
		for ix := 0; ix < k; ix++ {
			fmt.Printf(" [%6.1f / %.0f]", loads[ix][iy], capacity)
		}
		fmt.Println()
	}
}
