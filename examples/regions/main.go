// Regions reproduces paper Figure 1: three movebounds — an exclusive N
// and two inclusive M, L with A(L) contained in A(M) — decompose the chip
// into exactly three maximal regions. The program prints an ASCII map of
// the decomposition and the admissibility matrix.
//
//	go run ./examples/regions
package main

import (
	"fmt"

	"fbplace"
	"fbplace/internal/region"
)

func main() {
	chip := fbplace.Rect{Xlo: 0, Ylo: 0, Xhi: 48, Yhi: 24}
	mbs := []fbplace.Movebound{
		{Name: "N", Kind: fbplace.Exclusive, Area: fbplace.RectSet{{Xlo: 32, Ylo: 12, Xhi: 48, Yhi: 24}}},
		{Name: "M", Kind: fbplace.Inclusive, Area: fbplace.RectSet{chip}},
		{Name: "L", Kind: fbplace.Inclusive, Area: fbplace.RectSet{{Xlo: 8, Ylo: 6, Xhi: 24, Yhi: 18}}},
	}
	fmt.Println("Figure 1: movebounds")
	for _, m := range mbs {
		fmt.Printf("  %s (%s): %v\n", m.Name, m.Kind, m.Area)
	}

	// Normalize removes the exclusive N's area from M (paper §II: "such
	// situations can easily be detected and modified at the input").
	norm, err := region.Normalize(chip, mbs)
	if err != nil {
		panic(err)
	}
	d := region.Decompose(chip, norm)
	fmt.Printf("\nmaximal regions: %d\n", len(d.Regions))
	for ri, r := range d.Regions {
		var covered []string
		for m := range norm {
			if r.Covers[m] {
				covered = append(covered, norm[m].Name)
			}
		}
		fmt.Printf("  region %d: area %.0f, covered by %v, exclusive-only: %v\n",
			ri, r.Area, covered, r.Blocked)
	}

	// ASCII map: sample the chip on a grid; label each sample with its
	// region index.
	fmt.Println("\nregion map (one character per 2x2 units):")
	glyph := []byte("012345678")
	for y := chip.Yhi - 1; y > chip.Ylo; y -= 2 {
		row := make([]byte, 0, 26)
		for x := chip.Xlo + 1; x < chip.Xhi; x += 2 {
			ri := d.RegionOf(fbplace.Point{X: x, Y: y})
			if ri < 0 {
				row = append(row, '?')
			} else {
				row = append(row, glyph[ri%len(glyph)])
			}
		}
		fmt.Printf("  %s\n", row)
	}

	fmt.Println("\nadmissibility (which cells may use which region):")
	classes := []struct {
		name string
		mb   int
	}{{"cells of N", 0}, {"cells of M", 1}, {"cells of L", 2}, {"unbounded", fbplace.NoMovebound}}
	for _, c := range classes {
		fmt.Printf("  %-12s:", c.name)
		for ri := range d.Regions {
			if d.Admissible(c.mb, ri) {
				fmt.Printf(" r%d", ri)
			}
		}
		fmt.Println()
	}
}
