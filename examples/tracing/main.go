// Tracing places the quickstart chip with an observability recorder
// attached and prints the phase summary tree: where the time goes
// (QP, flow solve, realization waves, legalization), how much solver
// effort each phase spent (CG iterations, network-simplex pivots,
// transportation solves), and how busy the realization workers were.
//
// Pass a filename to additionally stream the JSON-lines trace there:
//
//	go run ./examples/tracing trace.json
package main

import (
	"fmt"
	"log"
	"os"

	"fbplace"
)

func main() {
	inst, err := fbplace.Generate(fbplace.ChipSpec{
		Name: "tracing", NumCells: 5000, Seed: 1,
		Movebounds: []fbplace.MoveboundSpec{
			{Kind: fbplace.Inclusive, CellFraction: 0.2, Density: 0.7, NestedIn: -1},
			{Kind: fbplace.Exclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A recorder with a nil sink aggregates spans and counters in memory;
	// give it a JSON sink to also stream a trace file.
	var sink *fbplace.JSONTraceSink
	var traceFile *os.File
	rec := fbplace.NewRecorder(nil)
	if len(os.Args) > 1 {
		traceFile, err = os.Create(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		sink = fbplace.NewJSONTraceSink(traceFile)
		rec = fbplace.NewRecorder(sink)
	}

	rep, err := fbplace.Place(inst.N, fbplace.Config{
		Movebounds: inst.Movebounds,
		Obs:        rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec.Flush()

	fmt.Printf("placed %d cells: HPWL %.0f, %d violations, %d overlaps\n",
		inst.N.NumCells(), rep.HPWL, rep.Violations, rep.Overlaps)
	fmt.Printf("top-level QP effort: %d solves, %d CG iterations\n\n",
		rep.QPSolves, rep.CGIters)
	rec.WriteSummary(os.Stdout)

	if traceFile != nil {
		if err := sink.Err(); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", os.Args[1])
	}
}
