// Congestion demonstrates the routability workflow that motivates
// movebounds in §I: place a design, estimate routing congestion with the
// RUDY model, report hotspots, and write an SVG rendering of the
// placement for inspection.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"
	"os"

	"fbplace"
)

func main() {
	inst, err := fbplace.Generate(fbplace.ChipSpec{
		Name:     "congestion",
		NumCells: 4000,
		Seed:     33,
		Movebounds: []fbplace.MoveboundSpec{
			// A dense movebound concentrates wiring — a likely hotspot.
			{Kind: fbplace.Inclusive, CellFraction: 0.25, Density: 0.8, NestedIn: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fbplace.Place(inst.N, fbplace.Config{Movebounds: inst.Movebounds, DetailPasses: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d cells: HPWL %.0f, violations %d\n",
		inst.N.NumCells(), rep.HPWL, rep.Violations)

	m := fbplace.EstimateCongestion(inst.N, 0, 0)
	p50, p90 := m.Percentile(0.5), m.Percentile(0.9)
	fmt.Printf("RUDY congestion: median %.3f, p90 %.3f, peak %.3f\n", p50, p90, m.Max())

	hotspots := m.Hotspots(p90)
	fmt.Printf("%d bins above the 90th percentile; worst:\n", len(hotspots))
	for i, h := range hotspots {
		if i == 5 {
			break
		}
		fmt.Printf("  bin %v  rudy %.3f\n", h.Window, h.Rudy)
	}

	// The movebound area concentrates connectivity; check whether the
	// worst hotspot lies inside it.
	if len(hotspots) > 0 {
		inside := inst.Movebounds[0].Area.OverlapsRect(hotspots[0].Window)
		fmt.Printf("worst hotspot inside the dense movebound: %v\n", inside)
	}

	out := "congestion_placement.svg"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fbplace.RenderSVG(f, inst.N, inst.Movebounds, "congestion example"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", out)
}
