// Voltage islands demonstrates the paper's §I motivation: different
// voltage domains are placed with exclusive movebounds. The FBP placer
// respects them exactly, while the naive RQL-style baseline leaves
// violations — the behaviour Tables IV/V report.
//
//	go run ./examples/voltage_islands
package main

import (
	"fmt"
	"log"
	"time"

	"fbplace"
)

func main() {
	inst, err := fbplace.Generate(fbplace.ChipSpec{
		Name:     "voltage-islands",
		NumCells: 6000,
		Seed:     11,
		Movebounds: []fbplace.MoveboundSpec{
			// Two low-voltage islands (exclusive: no other cells inside)
			// and one relaxed inclusive domain.
			{Kind: fbplace.Exclusive, CellFraction: 0.10, Density: 0.72, NestedIn: -1},
			{Kind: fbplace.Exclusive, CellFraction: 0.07, Density: 0.68, NestedIn: -1},
			{Kind: fbplace.Inclusive, CellFraction: 0.12, Density: 0.70, NestedIn: -1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d cells, %d nets, 3 voltage domains\n",
		inst.N.NumCells(), inst.N.NumNets())

	// FBP placer.
	fbpNet := inst.N.Clone()
	start := time.Now()
	rep, err := fbplace.Place(fbpNet, fbplace.Config{Movebounds: inst.Movebounds})
	if err != nil {
		log.Fatal(err)
	}
	fbpTime := time.Since(start)

	// RQL-style baseline with naive movebound projection + plain
	// legalization.
	rqlNet := inst.N.Clone()
	start = time.Now()
	if _, err := fbplace.PlaceBaseline(rqlNet, fbplace.BaselineConfig{Movebounds: inst.Movebounds}); err != nil {
		log.Fatal(err)
	}
	if _, err := fbplace.Legalize(rqlNet); err != nil {
		log.Fatal(err)
	}
	rqlTime := time.Since(start)
	rqlViol, err := fbplace.CountViolations(rqlNet, inst.Movebounds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %12s %10s %8s\n", "placer", "HPWL", "time", "viol.")
	fmt.Printf("%-16s %12.0f %10v %8d\n", "BonnPlace FBP", rep.HPWL,
		fbpTime.Round(time.Millisecond), rep.Violations)
	fmt.Printf("%-16s %12.0f %10v %8d\n", "RQL-style", rqlNet.HPWL(),
		rqlTime.Round(time.Millisecond), rqlViol)
	if rep.Violations == 0 && rqlViol > 0 {
		fmt.Println("\nFBP keeps every cell inside its voltage domain; the naive")
		fmt.Println("baseline leaves violations (compare paper Tables IV/V).")
	}
}
