package fbplace

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart
// example does: generate, check feasibility, place, verify.
func TestFacadeEndToEnd(t *testing.T) {
	inst, err := Generate(ChipSpec{
		Name: "facade", NumCells: 2000, Seed: 42,
		Movebounds: []MoveboundSpec{
			{Kind: Inclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckFeasibility(inst.N, inst.Movebounds, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("generated instance infeasible: %+v", rep)
	}
	pr, err := Place(inst.N, Config{Movebounds: inst.Movebounds})
	if err != nil {
		t.Fatal(err)
	}
	if pr.HPWL <= 0 {
		t.Fatal("no HPWL")
	}
	viol, err := CountViolations(inst.N, inst.Movebounds)
	if err != nil {
		t.Fatal(err)
	}
	if viol != 0 {
		t.Fatalf("violations = %d", viol)
	}
	if got := CountOverlaps(inst.N); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}

func TestFacadePartitionStep(t *testing.T) {
	inst, err := Generate(ChipSpec{Name: "p", NumCells: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(inst.N, nil, 4, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumWindows != 16 {
		t.Fatalf("windows = %d", res.Stats.NumWindows)
	}
	for i := range inst.N.Cells {
		if !inst.N.Cells[i].Fixed && res.CellRegion[i].Window < 0 {
			t.Fatalf("cell %d unassigned", i)
		}
	}
}

func TestFacadeBaselineAndLegalize(t *testing.T) {
	inst, err := Generate(ChipSpec{Name: "b", NumCells: 1200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceBaseline(inst.N, BaselineConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Legalize(inst.N); err != nil {
		t.Fatal(err)
	}
	if got := CountOverlaps(inst.N); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}

func TestFacadeCongestionAndDetail(t *testing.T) {
	inst, err := Generate(ChipSpec{Name: "cd", NumCells: 1200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(inst.N, Config{}); err != nil {
		t.Fatal(err)
	}
	m := EstimateCongestion(inst.N, 0, 0)
	if m.Max() <= 0 {
		t.Fatal("no congestion estimated on a placed design")
	}
	if got := m.Percentile(0.5); got < 0 || got > m.Max() {
		t.Fatalf("percentile out of range: %v", got)
	}
	res, err := OptimizeDetailed(inst.N, nil, DetailOptions{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHPWL > res.InitialHPWL {
		t.Fatalf("detail worsened HPWL: %v -> %v", res.InitialHPWL, res.FinalHPWL)
	}
	if got := CountOverlaps(inst.N); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}
