// fbplace is the placer CLI: it places an FBPLACE v1 instance file (see
// cmd/genchip) or a freshly generated chip, and reports quality metrics.
//
//	fbplace -i chip.fbp -o placed.fbp
//	fbplace -cells 20000 -mode rql
//	fbplace -i chip.fbp -dump-flow 8      # print the §IV.A flow plan
//	fbplace -i adaptec5.aux               # ISPD Bookshelf benchmarks
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"fbplace"
	"fbplace/internal/bookshelf"
	"fbplace/internal/chipio"
	"fbplace/internal/faultsim"
	"fbplace/internal/plot"
)

func main() {
	in := flag.String("i", "", "input instance file (FBPLACE v1); empty = generate")
	out := flag.String("o", "", "write the placed instance to this file")
	cells := flag.Int("cells", 10000, "cells to generate when no input file is given")
	seed := flag.Int64("seed", 1, "generator seed")
	mode := flag.String("mode", "fbp", "placer: fbp, recursive, or rql")
	cluster := flag.Float64("cluster", 0, "BestChoice cluster ratio (0 = off)")
	density := flag.Float64("density", 0.97, "target placement density")
	workers := flag.Int("workers", 0, "parallel realization workers (0 = GOMAXPROCS)")
	noPairPass := flag.Bool("no-pair-pass", false, "disable the neighbor-pair realization pass at deep levels")
	parWin := flag.Bool("parallel-windows", false, "speculative per-window transports (faster, not bit-reproducible across worker counts)")
	dumpFlow := flag.Int("dump-flow", 0, "print the MinCostFlow plan on a k x k grid and exit")
	skipLegal := flag.Bool("skip-legalization", false, "stop after global placement")
	svg := flag.String("svg", "", "write an SVG rendering of the final placement")
	detail := flag.Int("detail", 0, "detailed-placement passes after legalization (0 = off)")
	trace := flag.String("trace", "", "write a JSON-lines trace of the run to this file")
	stats := flag.Bool("stats", false, "print the phase summary tree and counters after placement")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the placement run (0 = none)")
	certifyF := flag.Bool("certify", false, "independently certify every level and the final result; repair in safe mode on failure")
	ckptDir := flag.String("checkpoint", "", "write per-level crash-safe checkpoints into this directory")
	resume := flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint (same instance and flags required)")
	dumpHex := flag.String("dump-hex", "", "write final positions as hex float64 bits to this file (bit-exact comparison)")
	var faults []string
	flag.Func("fault", "arm a fault injection site: name[:after=N,every=N,limit=N,prob=P,seed=N,panic=1] (repeatable)",
		func(s string) error { faults = append(faults, s); return nil })
	flag.Parse()

	for _, spec := range faults {
		if err := faultsim.ArmSpec(spec); err != nil {
			fatal(err)
		}
	}
	// An injected panic (a -fault site with panic=1) must look like a
	// crash to scripts — non-zero exit — without a Go stack trace.
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(*faultsim.InjectedError); ok {
				fmt.Fprintln(os.Stderr, "fbplace: killed by injected fault:", ie)
				os.Exit(3)
			}
			panic(r)
		}
	}()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rec *fbplace.Recorder
	var traceSink *fbplace.JSONTraceSink
	var traceFile *os.File
	if *trace != "" || *stats {
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			traceSink = fbplace.NewJSONTraceSink(f)
			rec = fbplace.NewRecorder(traceSink)
		} else {
			rec = fbplace.NewRecorder(nil)
		}
	}

	n, mbs, err := load(*in, *cells, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d cells, %d nets, %d movebounds\n", n.NumCells(), n.NumNets(), len(mbs))

	if *dumpFlow > 0 {
		stats, flows, err := fbplace.FlowModel(n, mbs, *dumpFlow, *density)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("flow model on %dx%d grid: |V|=%d |E|=%d (%.1f E/V), solve %v\n",
			*dumpFlow, *dumpFlow, stats.NumNodes, stats.NumArcs,
			float64(stats.NumArcs)/float64(stats.NumNodes), stats.SolveTime)
		fmt.Printf("flow-carrying external edges: %d\n", len(flows))
		for _, f := range flows {
			fmt.Printf("  %-12s (%d,%d)%s -> (%d,%d)%s  area %.2f\n",
				f.Class, f.FromWindow[0], f.FromWindow[1], f.FromDir,
				f.ToWindow[0], f.ToWindow[1], f.ToDir, f.Amount)
		}
		return
	}

	start := time.Now()
	switch *mode {
	case "fbp", "recursive":
		m := fbplace.ModeFBP
		if *mode == "recursive" {
			m = fbplace.ModeRecursive
		}
		cfg := fbplace.Config{
			Mode: m, Movebounds: mbs, TargetDensity: *density,
			ClusterRatio: *cluster, Workers: *workers,
			NoPairPass: *noPairPass, ParallelWindows: *parWin,
			SkipLegalization: *skipLegal, DetailPasses: *detail,
			Obs:        rec,
			Checkpoint: fbplace.Checkpoint{Dir: *ckptDir},
		}
		if *certifyF {
			cfg.Certify = fbplace.CertifyEveryLevel
		}
		var rep *fbplace.Report
		var err error
		if *resume {
			if *ckptDir == "" {
				fatal(fmt.Errorf("-resume requires -checkpoint"))
			}
			rep, err = fbplace.Resume(ctx, n, *ckptDir, cfg)
		} else {
			rep, err = fbplace.PlaceCtx(ctx, n, cfg)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("placed in %v (global %v, legalization %v, %d levels)\n",
			time.Since(start).Round(time.Millisecond),
			rep.GlobalTime.Round(time.Millisecond),
			rep.LegalTime.Round(time.Millisecond), rep.Levels)
		fmt.Printf("HPWL %.0f, violations %d, overlaps %d\n", rep.HPWL, rep.Violations, rep.Overlaps)
		for _, d := range rep.Degradations {
			fmt.Printf("degraded: %s fell back to %s (%s)\n", d.Stage, d.Fallback, d.Detail)
		}
	case "rql":
		sp := rec.StartSpan("rql.place")
		if _, err := fbplace.PlaceBaseline(n, fbplace.BaselineConfig{
			Movebounds: mbs, TargetDensity: *density,
		}); err != nil {
			fatal(err)
		}
		sp.End()
		if !*skipLegal {
			lsp := rec.StartSpan("legalize")
			if _, err := fbplace.Legalize(n); err != nil {
				fatal(err)
			}
			lsp.End()
		}
		viol := 0
		if len(mbs) > 0 {
			if viol, err = fbplace.CountViolations(n, mbs); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("placed in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("HPWL %.0f, violations %d, overlaps %d\n", n.HPWL(), viol, fbplace.CountOverlaps(n))
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	rec.Flush()
	if *stats {
		rec.WriteSummary(os.Stdout)
	}
	if traceFile != nil {
		if err := traceSink.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *trace)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := chipio.Write(f, n, mbs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *dumpHex != "" {
		if err := writeHexPositions(*dumpHex, n); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dumpHex)
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := plot.SVG(f, n, mbs, plot.Options{Title: *mode}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}
}

func load(path string, cells int, seed int64) (*fbplace.Netlist, []fbplace.Movebound, error) {
	if path == "" {
		inst, err := fbplace.Generate(fbplace.ChipSpec{Name: "cli", NumCells: cells, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return inst.N, inst.Movebounds, nil
	}
	if strings.HasSuffix(path, ".aux") {
		// ISPD Bookshelf benchmark (no movebounds in that format).
		n, err := bookshelf.ReadAux(path)
		return n, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return chipio.Read(f)
}

// writeHexPositions dumps each cell's position as the hex float64 bit
// patterns "xbits ybits", one line per cell, so two placements can be
// compared for bit-identity with cmp/diff.
func writeHexPositions(path string, n *fbplace.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for i := range n.X {
		fmt.Fprintf(bw, "%016x %016x\n", math.Float64bits(n.X[i]), math.Float64bits(n.Y[i]))
	}
	if err := bw.Flush(); err != nil {
		// The flush failure is the error worth reporting.
		_ = f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fbplace:", err)
	os.Exit(1)
}
