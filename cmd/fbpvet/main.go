// Command fbpvet runs the repository's custom static analyzers (package
// internal/analyze) over the given package patterns and prints findings as
//
//	file:line: analyzer: message
//
// exiting 1 when there are findings and 2 when packages fail to load or
// type-check. It is wired into ci.sh between `go vet` and the build, so
// the repo-specific invariants — no map-order dependence in solver code,
// no float equality in numeric kernels, no dangling obs spans, no dropped
// errors, no global RNG — are enforced on every CI run.
//
// Usage:
//
//	fbpvet [-list] [packages]
//
// With no patterns it analyzes ./... . -list prints the analyzers and
// their documentation instead of running.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fbplace/internal/analyze"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and their documentation, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fbpvet [-list] [packages]\n\nRuns fbplace's custom static analyzers. Exit status: 0 clean, 1 findings, 2 load error.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyze.All() {
			fmt.Printf("%s (suppress: //fbpvet:%s)\n    %s\n", a.Name, a.Directive, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyze.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbpvet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	found := 0
	for _, pkg := range pkgs {
		for _, d := range analyze.Run(pkg, analyze.All()) {
			found++
			fmt.Printf("%s:%d: %s: %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "fbpvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// relPath shortens file names to cwd-relative where possible.
func relPath(cwd, name string) string {
	if cwd == "" {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
