// Command fbpvet runs the repository's custom static analyzers (package
// internal/analyze) over the given package patterns and prints findings as
//
//	file:line: analyzer: message
//
// exiting 1 when there are findings and 2 when packages fail to load or
// type-check. It is wired into ci.sh between `go vet` and the build, so
// the repo-specific invariants — no map-order dependence in solver code,
// no float equality in numeric kernels, no dangling obs spans, no dropped
// errors, no global RNG, and the concurrency contracts (guarded fields,
// released contexts and timers, bounded goroutines, atomic discipline,
// wall-clock-free deterministic packages) — are enforced on every CI run.
//
// Usage:
//
//	fbpvet [-list] [-json] [-only names] [-skip names] [packages]
//
// With no patterns it analyzes ./... . -list prints the analyzers and
// their documentation instead of running. -json emits one JSON object per
// finding (file/line/col/analyzer/message) for editors and CI tooling.
// -only and -skip take comma-separated analyzer names and restrict the
// run; naming an unknown analyzer is an error (exit 2), so a typo cannot
// silently skip a gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fbplace/internal/analyze"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and their documentation, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to exclude")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fbpvet [-list] [-json] [-only names] [-skip names] [packages]\n\nRuns fbplace's custom static analyzers. Exit status: 0 clean, 1 findings, 2 load error.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyze.All() {
			fmt.Printf("%s (suppress: //fbpvet:%s)\n    %s\n", a.Name, a.Directive, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(analyze.All(), *only, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbpvet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyze.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fbpvet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	var diags []analyze.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analyze.Run(pkg, analyzers)...)
	}
	for i := range diags {
		diags[i].Pos.Filename = relPath(cwd, diags[i].Pos.Filename)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "fbpvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fbpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers applies the -only and -skip filters to the registry.
// Unknown names are an error rather than a silent no-op.
func selectAnalyzers(all []*analyze.Analyzer, only, skip string) ([]*analyze.Analyzer, error) {
	byName := map[string]*analyze.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("-%s: unknown analyzer %q (known: %s)", flagName, name, strings.Join(known, ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*analyze.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip left no analyzers to run")
	}
	return out, nil
}

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits one compact JSON object per finding, newline-separated
// (JSONL), in the same file/line order as the text output.
func writeJSON(w io.Writer, diags []analyze.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		f := jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// relPath shortens file names to cwd-relative where possible.
func relPath(cwd, name string) string {
	if cwd == "" {
		return name
	}
	if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
