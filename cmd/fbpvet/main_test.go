package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fbplace/internal/analyze"
)

// TestEndToEnd builds the fbpvet binary, runs it against a scratch module
// with a known violation, and asserts the "file:line: analyzer: message"
// diagnostic format and the exit codes (1 findings, 0 clean).
func TestEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "fbpvet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fbpvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Intn(10))
}
`)

	run := func() (string, int) {
		t.Helper()
		cmd := exec.Command(bin, "./...")
		cmd.Dir = mod
		out, err := cmd.Output()
		if err == nil {
			return string(out), 0
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running fbpvet: %v", err)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
	}
	// The violation is the rand.Intn call on line 9 of main.go.
	want := regexp.MustCompile(`(?m)^main\.go:9: seededrand: call to global math/rand\.Intn`)
	if !want.MatchString(out) {
		t.Fatalf("diagnostic format mismatch; want match for %v, got:\n%s", want, out)
	}

	// Fix the violation; the driver must now exit 0 with no output.
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	fmt.Println(rng.Intn(10))
}
`)
	out, code = run()
	if code != 0 || out != "" {
		t.Fatalf("clean module: exit code = %d, output %q; want 0 and empty", code, out)
	}
}

// TestEndToEndFlags exercises -json, -only and -skip against a scratch
// module with one known seededrand violation.
func TestEndToEndFlags(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "fbpvet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fbpvet: %v\n%s", err, out)
	}
	mod := filepath.Join(tmp, "scratch")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Intn(10))
}
`)
	run := func(args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, append(args, "./...")...)
		cmd.Dir = mod
		out, err := cmd.Output()
		if err == nil {
			return string(out), 0
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running fbpvet: %v", err)
		}
		return string(out), ee.ExitCode()
	}

	// -json: one decodable object, with the expected fields.
	out, code := run("-json")
	if code != 1 {
		t.Fatalf("-json exit code = %d, want 1; output:\n%s", code, out)
	}
	var f struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &f); err != nil {
		t.Fatalf("-json output not a JSON object: %v\n%s", err, out)
	}
	if f.File != "main.go" || f.Line != 9 || f.Col == 0 || f.Analyzer != "seededrand" || f.Message == "" {
		t.Fatalf("-json finding fields: %+v", f)
	}

	// -only with an analyzer that cannot fire here: clean exit.
	out, code = run("-only", "maporder")
	if code != 0 || out != "" {
		t.Fatalf("-only maporder: exit code = %d, output %q; want 0 and empty", code, out)
	}
	// -only with the firing analyzer still finds it.
	if _, code = run("-only", "seededrand"); code != 1 {
		t.Fatalf("-only seededrand: exit code = %d, want 1", code)
	}
	// -skip removes the firing analyzer: clean exit.
	if out, code = run("-skip", "seededrand"); code != 0 {
		t.Fatalf("-skip seededrand: exit code = %d, output:\n%s; want 0", code, out)
	}
	// Unknown analyzer name: exit 2, not a silent no-op.
	if _, code = run("-only", "nosuchanalyzer"); code != 2 {
		t.Fatalf("-only nosuchanalyzer: exit code = %d, want 2", code)
	}
}

// TestWriteJSON unit-tests the JSONL encoder: order preserved, one object
// per line, fields round-trip.
func TestWriteJSON(t *testing.T) {
	diags := []analyze.Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "mutexguard", Message: `s.seq is guarded by s.mu`},
		{Pos: token.Position{Filename: "b.go", Line: 9, Column: 2}, Analyzer: "walltime", Message: "time.Now in deterministic package"},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		want := diags[i]
		if f.File != want.Pos.Filename || f.Line != want.Pos.Line || f.Col != want.Pos.Column ||
			f.Analyzer != want.Analyzer || f.Message != want.Message {
			t.Fatalf("line %d round-trip mismatch: got %+v want %+v", i, f, want)
		}
	}
}

// TestSelectAnalyzers unit-tests the -only/-skip filter logic.
func TestSelectAnalyzers(t *testing.T) {
	all := analyze.All()
	names := func(as []*analyze.Analyzer) string {
		var ns []string
		for _, a := range as {
			ns = append(ns, a.Name)
		}
		return strings.Join(ns, ",")
	}

	got, err := selectAnalyzers(all, "", "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("no filters: %v, %s", err, names(got))
	}
	got, err = selectAnalyzers(all, "mutexguard,walltime", "")
	if err != nil || names(got) != "mutexguard,walltime" {
		t.Fatalf("-only: %v, %s", err, names(got))
	}
	got, err = selectAnalyzers(all, "mutexguard,walltime", "walltime")
	if err != nil || names(got) != "mutexguard" {
		t.Fatalf("-only + -skip: %v, %s", err, names(got))
	}
	if _, err = selectAnalyzers(all, "bogus", ""); err == nil {
		t.Fatal("unknown -only name: want error")
	}
	if _, err = selectAnalyzers(all, "", "bogus"); err == nil {
		t.Fatal("unknown -skip name: want error")
	}
	if _, err = selectAnalyzers(all, "mutexguard", "mutexguard"); err == nil {
		t.Fatal("filters eliminating every analyzer: want error")
	}
}
