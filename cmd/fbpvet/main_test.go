package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
)

// TestEndToEnd builds the fbpvet binary, runs it against a scratch module
// with a known violation, and asserts the "file:line: analyzer: message"
// diagnostic format and the exit codes (1 findings, 0 clean).
func TestEndToEnd(t *testing.T) {
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "fbpvet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building fbpvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	fmt.Println(rand.Intn(10))
}
`)

	run := func() (string, int) {
		t.Helper()
		cmd := exec.Command(bin, "./...")
		cmd.Dir = mod
		out, err := cmd.Output()
		if err == nil {
			return string(out), 0
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running fbpvet: %v", err)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
	}
	// The violation is the rand.Intn call on line 9 of main.go.
	want := regexp.MustCompile(`(?m)^main\.go:9: seededrand: call to global math/rand\.Intn`)
	if !want.MatchString(out) {
		t.Fatalf("diagnostic format mismatch; want match for %v, got:\n%s", want, out)
	}

	// Fix the violation; the driver must now exit 0 with no output.
	write("main.go", `package main

import (
	"fmt"
	"math/rand"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	fmt.Println(rng.Intn(10))
}
`)
	out, code = run()
	if code != 0 || out != "" {
		t.Fatalf("clean module: exit code = %d, output %q; want 0 and empty", code, out)
	}
}
