// genchip synthesizes a placement instance and writes it as an FBPLACE v1
// file (see internal/chipio).
//
//	genchip -cells 50000 -movebounds 4 -exclusive -o chip.fbp
//	genchip -preset Erhard -scale 0.01 -o erhard.fbp
//	genchip -preset newblue3 -scale 0.01 -o nb3.fbp
package main

import (
	"flag"
	"fmt"
	"os"

	"fbplace/internal/chipio"
	"fbplace/internal/gen"
	"fbplace/internal/region"
)

func main() {
	cells := flag.Int("cells", 10000, "number of movable cells")
	seed := flag.Int64("seed", 1, "generator seed")
	macros := flag.Int("macros", 2, "number of fixed macro blocks")
	movebounds := flag.Int("movebounds", 0, "number of movebounds to generate")
	exclusive := flag.Bool("exclusive", false, "make the movebounds exclusive")
	overlap := flag.Bool("overlap", false, "make inclusive movebounds overlap")
	pct := flag.Float64("pct", 0.3, "total fraction of cells inside movebounds")
	density := flag.Float64("density", 0.7, "target cell density inside each movebound")
	util := flag.Float64("util", 0.55, "chip utilization")
	preset := flag.String("preset", "", "use a paper preset instead (Table II/III chip name or ISPD instance)")
	scale := flag.Float64("scale", 0.01, "cell-count scale for presets")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	spec, err := buildSpec(*preset, *scale, *cells, *seed, *macros, *movebounds, *exclusive, *overlap, *pct, *density, *util)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genchip:", err)
		os.Exit(1)
	}
	inst, err := gen.Chip(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genchip:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genchip:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := chipio.Write(w, inst.N, inst.Movebounds); err != nil {
		fmt.Fprintln(os.Stderr, "genchip:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "genchip: %s: %d cells, %d nets, %d movebounds, chip %.0fx%.0f\n",
		spec.Name, inst.N.NumCells(), inst.N.NumNets(), len(inst.Movebounds),
		inst.N.Area.Width(), inst.N.Area.Height())
}

func buildSpec(preset string, scale float64, cells int, seed int64, macros, movebounds int, exclusive, overlap bool, pct, density, util float64) (gen.ChipSpec, error) {
	if preset != "" {
		for _, s := range gen.TableIIIChips(scale, region.Inclusive) {
			if s.Name == preset {
				return s, nil
			}
		}
		for _, s := range gen.TableIIChips(scale, 0) {
			if s.Name == preset {
				return s, nil
			}
		}
		for _, s := range gen.ISPDChips(scale) {
			if s.Name == preset {
				return s, nil
			}
		}
		return gen.ChipSpec{}, fmt.Errorf("unknown preset %q", preset)
	}
	spec := gen.ChipSpec{
		Name:        "custom",
		NumCells:    cells,
		Seed:        seed,
		NumMacros:   macros,
		Utilization: util,
	}
	kind := region.Inclusive
	if exclusive {
		kind = region.Exclusive
	}
	for m := 0; m < movebounds; m++ {
		ms := gen.MoveboundSpec{
			Kind:         kind,
			CellFraction: pct / float64(movebounds),
			Density:      density,
			NestedIn:     -1,
		}
		if overlap && !exclusive && m%2 == 1 {
			ms.Overlap = true
		}
		spec.Movebounds = append(spec.Movebounds, ms)
	}
	return spec, nil
}
