// benchgate compares two fbpbench baselines (cmd/fbpbench -bench-out)
// and fails when the candidate's wall clock regresses past a bound, so a
// transport or realization slowdown fails CI instead of landing
// silently.
//
//	benchgate -base BENCH_pr4.json -new BENCH_pr9.json -max-regress 0.10
//
// For a level-sweep table (Table I) the wall clock is the sum of
// flow_ms + realize_ms over all levels; for a chip table it is the sum
// of global_ms + legal_ms. Speedups always pass; only slowdowns beyond
// -max-regress fail.
package main

import (
	"flag"
	"fmt"
	"os"

	"fbplace/internal/exp"
)

func main() {
	base := flag.String("base", "", "baseline bench JSON (required)")
	cand := flag.String("new", "", "candidate bench JSON (required)")
	table := flag.String("table", "1", "table key to compare")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional wall-clock regression")
	flag.Parse()
	if *base == "" || *cand == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base OLD.json -new NEW.json [-table 1] [-max-regress 0.10]")
		os.Exit(2)
	}

	bt, err := loadTable(*base, *table)
	if err != nil {
		fatal(err)
	}
	ct, err := loadTable(*cand, *table)
	if err != nil {
		fatal(err)
	}

	bw, cw := wall(bt), wall(ct)
	if bw <= 0 {
		fatal(fmt.Errorf("baseline table %q has no wall-clock data", *table))
	}
	if len(bt.Levels) > 0 && len(bt.Levels) == len(ct.Levels) {
		for i := range bt.Levels {
			b, c := bt.Levels[i], ct.Levels[i]
			fmt.Printf("level %d (%4d windows): flow %9.1f -> %9.1f ms, realize %9.1f -> %9.1f ms\n",
				i, c.Windows, b.FlowMS, c.FlowMS, b.RealizeMS, c.RealizeMS)
		}
	}
	ratio := cw/bw - 1
	fmt.Printf("table %s wall: %.1f ms -> %.1f ms (%+.1f%%, bound +%.0f%%)\n",
		*table, bw, cw, 100*ratio, 100**maxRegress)
	if cw > bw*(1+*maxRegress) {
		fatal(fmt.Errorf("wall clock regressed %.1f%%, more than the allowed %.0f%%",
			100*ratio, 100**maxRegress))
	}
	fmt.Println("benchgate OK")
}

func loadTable(path, key string) (exp.BenchTable, error) {
	rec, err := exp.ReadBench(path)
	if err != nil {
		return exp.BenchTable{}, err
	}
	t, ok := rec.Tables[key]
	if !ok {
		return t, fmt.Errorf("%s has no table %q", path, key)
	}
	return t, nil
}

// wall is the table's comparable wall clock in milliseconds.
func wall(t exp.BenchTable) float64 {
	if len(t.Levels) > 0 {
		sum := 0.0
		for _, l := range t.Levels {
			sum += l.FlowMS + l.RealizeMS
		}
		return sum
	}
	return t.GlobalMS + t.LegalMS
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
