// fbplaced is the placement service daemon: it exposes the placer over an
// HTTP/JSON job API with a concurrent scheduler, checkpoint-backed
// preemption and a fingerprint-keyed result cache (see internal/serve).
//
//	fbplaced -addr :8711 -workers 2 -dir /var/lib/fbplaced
//	curl -s localhost:8711/jobs -d '{"chip":{"NumCells":2000,"Seed":7}}'
//	curl -s localhost:8711/jobs/j00000001/result
//
// On SIGINT/SIGTERM the daemon drains: submissions are refused, running
// jobs checkpoint at their next level boundary, and the process exits 0
// once everything is persisted — or non-zero when the -drain deadline
// forces hard cancellation (those jobs resume on the next start).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8711", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 2, "concurrent placement workers")
	jobWorkers := flag.Int("job-workers", 1, "realization parallelism inside each placement")
	dir := flag.String("dir", "", "state directory for job persistence and checkpoints (empty = temporary)")
	root := flag.String("root", "", "instance root that \"file\" job specs resolve under (empty = file references disabled)")
	cacheN := flag.Int("cache", 64, "result cache entries (negative disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget before hard-canceling running jobs")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening")
	selftest := flag.Bool("selftest", false, "run the built-in load test instead of serving, exit 0 on success")
	memBudget := flag.String("mem-budget", "", "process memory budget for admission and start gating, e.g. 512MB or 8GB (empty = 3/4 of available RAM, \"off\" disables)")
	queueLimit := flag.Int("queue-limit", 64, "queued-job bound; submissions past it get 429 + Retry-After (negative = unlimited)")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "stuck-job no-progress deadline (0 disables the watchdog)")
	strikes := flag.Int("watchdog-strikes", 3, "consecutive no-progress attempts before a job fails terminally as stuck")
	diskLow := flag.String("disk-low", "128MB", "free-disk watermark below which checkpointing is disabled (\"off\" disables the check)")
	gcKeep := flag.Int("gc-keep", 256, "terminal jobs retained before the disk governor collects them (negative = keep all)")
	certifyF := flag.Bool("certify", false, "independently certify every result before it is cached or served; uncertifiable results retry once in safe mode, then fail as result_uncertified")
	var faults []string
	flag.Func("fault", "arm a fault injection site: name[:after=N,every=N,limit=N,prob=P,seed=N,panic=1] (repeatable)",
		func(s string) error { faults = append(faults, s); return nil })
	flag.Parse()

	for _, spec := range faults {
		if err := faultsim.ArmSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, "fbplaced:", err)
			return 1
		}
	}

	budgetBytes, err := parseSize(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced: -mem-budget:", err)
		return 1
	}
	diskLowBytes, err := parseSize(*diskLow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced: -disk-low:", err)
		return 1
	}
	noProgress := *watchdog
	if noProgress == 0 {
		noProgress = -1 // flag semantics: 0 disables; Options semantics: negative disables
	}

	opt := serve.Options{
		Workers:        *workers,
		JobWorkers:     *jobWorkers,
		CacheEntries:   *cacheN,
		StateDir:       *dir,
		FileRoot:       *root,
		MemBudget:      budgetBytes,
		QueueLimit:     *queueLimit,
		NoProgress:     noProgress,
		StuckStrikes:   *strikes,
		DiskLowBytes:   diskLowBytes,
		GCKeepTerminal: *gcKeep,
		Certify:        *certifyF,
	}

	if *selftest {
		return runSelftest(opt)
	}

	sched, err := serve.NewScheduler(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fbplaced:", err)
			return 1
		}
	}
	fmt.Printf("fbplaced: listening on %s (%d workers, state %s)\n", bound, *workers, sched.StateDir())

	srv := &http.Server{
		Handler: serve.NewServer(sched),
		// Header and idle timeouts close slow-loris and abandoned
		// connections; request bodies are bounded per-handler (the submit
		// endpoint caps its JSON payload), and the streaming endpoints
		// (events, results) legitimately outlive any whole-request timeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fbplaced:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Printf("fbplaced: draining (budget %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive mid-drain, then drain
	// the scheduler: running jobs checkpoint at their next level boundary
	// and are persisted for the next start.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fbplaced: http shutdown:", err)
	}
	if err := sched.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced:", err)
		return 2
	}
	fmt.Println("fbplaced: drained cleanly")
	return 0
}

// parseSize parses a human-friendly byte size: a plain integer is bytes,
// with an optional KB/MB/GB suffix (decimal is not supported). "" means
// "use the default" (0) and "off" disables the limit (-1).
func parseSize(s string) (int64, error) {
	switch s {
	case "":
		return 0, nil
	case "off":
		return -1, nil
	}
	mult := int64(1)
	num := s
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}} {
		if len(s) > len(suf.tag) && s[len(s)-len(suf.tag):] == suf.tag {
			mult = suf.m
			num = s[:len(s)-len(suf.tag)]
			break
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q (want e.g. 1073741824, 512MB, 8GB, or off)", s)
	}
	return v * mult, nil
}

// runSelftest exercises the service end to end — mixed-priority load with
// preemption verification — and reports like a health check.
func runSelftest(opt serve.Options) int {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := serve.RunLoad(ctx, serve.LoadOptions{
		Jobs: 8, Seed: 1, Duplicates: 4, Verify: true, Sched: opt,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbplaced: selftest:", err)
		return 1
	}
	fmt.Println("fbplaced: selftest:", rep)
	if rep.Failed > 0 || len(rep.Mismatched) > 0 || len(rep.NonTerminal) > 0 {
		fmt.Fprintln(os.Stderr, "fbplaced: selftest failed: "+
			strconv.Itoa(rep.Failed)+" failed jobs, "+
			strconv.Itoa(len(rep.Mismatched))+" bit-identity mismatches, "+
			strconv.Itoa(len(rep.NonTerminal))+" stuck jobs")
		return 1
	}
	return 0
}
