// fbpbench regenerates the paper's experiment tables on synthetic
// instances.
//
//	fbpbench -table all            # everything (slow)
//	fbpbench -table 2 -scale 0.002 # Table II at 0.2% of published sizes
//	fbpbench -table speedup        # §IV.B parallel realization speedups
//	fbpbench -table 1 -trace t.json -stats
//
// Tables: 1 (FBP sizes/runtimes), 2 (no movebounds), 3 (instance
// characteristics), 4 (inclusive movebounds), 5 (exclusive movebounds),
// 6 (runtime split), 7 (ISPD-2006-style), speedup, ablation, feasibility.
//
// Every run that produces HPWL numbers also writes a machine-readable
// baseline (per-table HPWL and phase times) for regression diffing; see
// -bench-out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"fbplace/internal/exp"
	"fbplace/internal/obs"
)

func main() {
	table := flag.String("table", "all", "which table to run: 1..7, speedup, ablation, feasibility, all")
	scale := flag.Float64("scale", exp.DefaultScale, "fraction of the published cell counts to generate")
	chips := flag.Int("chips", 0, "limit the number of chips for table 2 (0 = all 21)")
	trace := flag.String("trace", "", "write a JSON-lines trace of the runs to this file")
	stats := flag.Bool("stats", false, "print the phase summary tree and counters at the end")
	benchOut := flag.String("bench-out", "BENCH_baseline.json", "write per-table HPWL/phase-time baseline JSON here (empty = off)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per table (0 = none); a table that exceeds it fails with context.DeadlineExceeded")
	ckpt := flag.String("checkpoint", "", "write per-run crash-safe placement checkpoints under this directory")
	resume := flag.Bool("resume", false, "resume interrupted placements from -checkpoint (same tables, scale and flags required)")
	certify := flag.Bool("certify", false, "independently certify every level and the final result of each run (internal/certify); overhead lands in the phase times")
	flag.Parse()

	if *resume && *ckpt == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	exp.SetCheckpoint(*ckpt, *resume)
	exp.SetCertify(*certify)

	var rec *obs.Recorder
	var traceSink *obs.JSONSink
	var traceFile *os.File
	if *trace != "" || *stats {
		if *trace != "" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			traceSink = obs.NewJSONSink(f)
			rec = obs.New(traceSink)
		} else {
			rec = obs.New(nil)
		}
		exp.SetRecorder(rec)
	}

	// Each selected table gets a fresh wall-clock budget: run installs a
	// new timeout context through the exp package hook (mirroring
	// exp.SetRecorder) whenever it selects a table, cancelling the
	// previous one first.
	cancelBudget := func() {}
	defer func() { cancelBudget() }()
	run := func(name string) bool {
		if *table != "all" && *table != name {
			return false
		}
		if *timeout > 0 {
			cancelBudget()
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			cancelBudget = cancel
			exp.SetContext(ctx)
		}
		return true
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "fbpbench: table %s: %v\n", name, err)
		os.Exit(1)
	}
	ran := false
	bench := exp.BenchRecord{Scale: *scale, Tables: map[string]exp.BenchTable{}}

	if run("1") {
		ran = true
		sp := rec.StartSpan("table1")
		spec, rows, err := exp.Table1(*scale)
		sp.End()
		if err != nil {
			fail("1", err)
		}
		exp.PrintTable1(os.Stdout, spec, rows)
		fmt.Fprintln(os.Stdout)
		bench.Tables["1"] = exp.BenchFromTable1(spec, rows)
	}
	if run("2") {
		ran = true
		sp := rec.StartSpan("table2")
		rows, err := exp.Table2(*scale, *chips)
		sp.End()
		if err != nil {
			fail("2", err)
		}
		exp.PrintCompare(os.Stdout, "TABLE II: Results without movebounds (RQL-style baseline vs BonnPlace FBP)", rows, false)
		fmt.Fprintln(os.Stdout)
		bench.Tables["2"] = exp.BenchFromCompare(rows)
	}
	if run("3") {
		ran = true
		rows, _, err := exp.Table3(*scale)
		if err != nil {
			fail("3", err)
		}
		exp.PrintTable3(os.Stdout, rows)
		fmt.Fprintln(os.Stdout)
	}
	var t4 []exp.CompareRow
	if run("4") || run("6") {
		ran = true
		var err error
		sp := rec.StartSpan("table4")
		t4, err = exp.Table4(*scale)
		sp.End()
		if err != nil {
			fail("4", err)
		}
		bench.Tables["4"] = exp.BenchFromCompare(t4)
	}
	if run("4") {
		exp.PrintCompare(os.Stdout, "TABLE IV: Results with inclusive movebounds", t4, true)
		fmt.Fprintln(os.Stdout)
		if *table == "4" {
			// Table VI is the runtime split of the same runs.
			exp.PrintTable6(os.Stdout, t4)
			fmt.Fprintln(os.Stdout)
		}
	}
	if run("5") {
		ran = true
		sp := rec.StartSpan("table5")
		rows, err := exp.Table5(*scale)
		sp.End()
		if err != nil {
			fail("5", err)
		}
		exp.PrintCompare(os.Stdout, "TABLE V: Results with exclusive movebounds", rows, true)
		fmt.Fprintln(os.Stdout)
		bench.Tables["5"] = exp.BenchFromCompare(rows)
	}
	if run("6") {
		exp.PrintTable6(os.Stdout, t4)
		fmt.Fprintln(os.Stdout)
	}
	if run("7") {
		ran = true
		sp := rec.StartSpan("table7")
		rows, err := exp.Table7(*scale)
		sp.End()
		if err != nil {
			fail("7", err)
		}
		exp.PrintTable7(os.Stdout, rows)
		fmt.Fprintln(os.Stdout)
		bench.Tables["7"] = exp.BenchFromTable7(rows)
	}
	if run("speedup") {
		ran = true
		sp := rec.StartSpan("speedup")
		rows, err := exp.Speedup(*scale, runtime.GOMAXPROCS(0))
		sp.End()
		if err != nil {
			fail("speedup", err)
		}
		exp.PrintSpeedup(os.Stdout, rows)
		fmt.Fprintln(os.Stdout)
	}
	if run("ablation") {
		ran = true
		sp := rec.StartSpan("ablation")
		rows, err := exp.AblationRecursive(*scale)
		if err != nil {
			sp.End()
			fail("ablation", err)
		}
		exp.PrintAblation(os.Stdout, "Ablation A1: FBP vs recursive partitioning (movebounded chip)", rows, true)
		rows, err = exp.AblationLocalQP(*scale)
		sp.End()
		if err != nil {
			fail("ablation", err)
		}
		exp.PrintAblation(os.Stdout, "Ablation A2: realization with/without local QP", rows, false)
		fmt.Fprintln(os.Stdout)
	}
	if run("feasibility") {
		ran = true
		d, feasible, err := exp.FeasibilityBench(*scale)
		if err != nil {
			fail("feasibility", err)
		}
		fmt.Fprintf(os.Stdout, "Theorem-2 feasibility check on the largest movebounded chip: %v (feasible=%v)\n\n", d, feasible)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "fbpbench: unknown table %q (want 1..7, speedup, ablation, feasibility, all)\n", *table)
		os.Exit(2)
	}

	rec.Flush()
	if *stats {
		rec.WriteSummary(os.Stdout)
	}
	if traceFile != nil {
		if err := traceSink.Err(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stdout, "wrote %s\n", *trace)
	}
	if *benchOut != "" && len(bench.Tables) > 0 {
		if err := exp.WriteBench(*benchOut, bench); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stdout, "wrote %s\n", *benchOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fbpbench:", err)
	os.Exit(1)
}
