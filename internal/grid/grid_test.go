package grid

import (
	"math"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 4}

func TestGridWindows(t *testing.T) {
	g := MustNew(chip, 4, 2)
	if g.NumWindows() != 8 {
		t.Fatalf("NumWindows = %d", g.NumWindows())
	}
	w := g.Window(0, 0)
	if w != (geom.Rect{Xlo: 0, Ylo: 0, Xhi: 2, Yhi: 2}) {
		t.Fatalf("Window(0,0) = %v", w)
	}
	w = g.Window(3, 1)
	if w != (geom.Rect{Xlo: 6, Ylo: 2, Xhi: 8, Yhi: 4}) {
		t.Fatalf("Window(3,1) = %v", w)
	}
	// Windows tile the chip exactly.
	total := 0.0
	for i := 0; i < g.NumWindows(); i++ {
		total += g.WindowRect(i).Area()
	}
	if math.Abs(total-chip.Area()) > 1e-9 {
		t.Fatalf("windows cover %v, chip %v", total, chip.Area())
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := MustNew(chip, 4, 2)
	for iy := 0; iy < 2; iy++ {
		for ix := 0; ix < 4; ix++ {
			gx, gy := g.Coords(g.Index(ix, iy))
			if gx != ix || gy != iy {
				t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", ix, iy, gx, gy)
			}
		}
	}
}

func TestGridLocate(t *testing.T) {
	g := MustNew(chip, 4, 2)
	cases := []struct {
		p      geom.Point
		ix, iy int
	}{
		{geom.Point{X: 0.5, Y: 0.5}, 0, 0},
		{geom.Point{X: 7.9, Y: 3.9}, 3, 1},
		{geom.Point{X: -5, Y: -5}, 0, 0},   // clamped
		{geom.Point{X: 100, Y: 100}, 3, 1}, // clamped
		{geom.Point{X: 8, Y: 4}, 3, 1},     // chip corner clamps inside
	}
	for _, c := range cases {
		ix, iy := g.Locate(c.p)
		if ix != c.ix || iy != c.iy {
			t.Errorf("Locate(%v) = (%d,%d), want (%d,%d)", c.p, ix, iy, c.ix, c.iy)
		}
	}
}

func TestNeighbors4(t *testing.T) {
	g := MustNew(chip, 4, 2)
	// Corner window has 2 neighbors.
	if got := g.Neighbors4(g.Index(0, 0)); len(got) != 2 {
		t.Fatalf("corner neighbors = %v", got)
	}
	// Edge window (1,0) has 3.
	if got := g.Neighbors4(g.Index(1, 0)); len(got) != 3 {
		t.Fatalf("edge neighbors = %v", got)
	}
}

func TestBlock3x3(t *testing.T) {
	g := MustNew(geom.Rect{Xhi: 9, Yhi: 9}, 3, 3)
	if got := g.Block3x3(g.Index(1, 1)); len(got) != 9 {
		t.Fatalf("center 3x3 = %v", got)
	}
	if got := g.Block3x3(g.Index(0, 0)); len(got) != 4 {
		t.Fatalf("corner 3x3 = %v", got)
	}
}

func TestAssignCells(t *testing.T) {
	g := MustNew(chip, 4, 2)
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.SetPos(a, geom.Point{X: 1, Y: 1})
	f := n.AddCell(netlist.Cell{Width: 1, Height: 1, Fixed: true})
	n.SetPos(f, geom.Point{X: 7, Y: 3})
	assign := g.AssignCells(n)
	if assign[a] != g.Index(0, 0) {
		t.Fatalf("assign[a] = %d", assign[a])
	}
	if assign[f] != -1 {
		t.Fatalf("fixed cell assigned to window %d", assign[f])
	}
}

func buildWR(t *testing.T, mbs []region.Movebound, blockages geom.RectSet, density float64, nx, ny int) *WindowRegions {
	t.Helper()
	norm := mbs
	var err error
	if len(mbs) > 0 {
		norm, err = region.Normalize(chip, mbs)
		if err != nil {
			t.Fatal(err)
		}
	}
	d := region.Decompose(chip, norm)
	return BuildWindowRegions(MustNew(chip, nx, ny), d, blockages, density)
}

func TestWindowRegionsNoMovebounds(t *testing.T) {
	wr := buildWR(t, nil, nil, 1.0, 4, 2)
	if wr.NumRegions() != 8 { // one region piece per window
		t.Fatalf("NumRegions = %d", wr.NumRegions())
	}
	for w := 0; w < 8; w++ {
		if len(wr.PerWin[w]) != 1 {
			t.Fatalf("window %d has %d regions", w, len(wr.PerWin[w]))
		}
		if math.Abs(wr.PerWin[w][0].Capacity-4) > 1e-9 {
			t.Fatalf("window %d capacity = %v", w, wr.PerWin[w][0].Capacity)
		}
		want := wr.Grid.WindowRect(w).Center()
		if wr.PerWin[w][0].Center.DistL1(want) > 1e-9 {
			t.Fatalf("window %d center = %v, want %v", w, wr.PerWin[w][0].Center, want)
		}
	}
	if math.Abs(wr.TotalCapacity-chip.Area()) > 1e-9 {
		t.Fatalf("TotalCapacity = %v", wr.TotalCapacity)
	}
}

func TestWindowRegionsWithMovebound(t *testing.T) {
	mbs := []region.Movebound{
		{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 1, Ylo: 1, Xhi: 3, Yhi: 3}}},
	}
	wr := buildWR(t, mbs, nil, 1.0, 4, 2)
	// Windows (0,0), (1,0), (0,1), (1,1) each contain a piece of M plus a
	// piece of the outside region; the other 4 windows only the outside.
	if wr.NumRegions() != 4*2+4 {
		t.Fatalf("NumRegions = %d, want 12", wr.NumRegions())
	}
	// Capacity of M pieces: 1 area unit in each of the four windows.
	mPieces := 0
	for w := range wr.PerWin {
		for _, p := range wr.PerWin[w] {
			if wr.Decomp.Regions[p.Region].Covers[0] {
				mPieces++
				if math.Abs(p.Capacity-1) > 1e-9 {
					t.Fatalf("M piece capacity = %v", p.Capacity)
				}
			}
		}
	}
	if mPieces != 4 {
		t.Fatalf("M pieces = %d", mPieces)
	}
}

func TestWindowRegionsBlockageReducesCapacity(t *testing.T) {
	blk := geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 2, Yhi: 1}} // half of window (0,0)
	wr := buildWR(t, nil, blk, 1.0, 4, 2)
	if math.Abs(wr.PerWin[0][0].Capacity-2) > 1e-9 {
		t.Fatalf("blocked window capacity = %v, want 2", wr.PerWin[0][0].Capacity)
	}
	// Free centroid of window (0,0) moves up.
	if wr.PerWin[0][0].Center.Y <= 1 {
		t.Fatalf("blocked window center = %v", wr.PerWin[0][0].Center)
	}
	if math.Abs(wr.WindowCapacity(1)-4) > 1e-9 {
		t.Fatalf("unblocked window capacity = %v", wr.WindowCapacity(1))
	}
}

func TestWindowRegionsDensityScaling(t *testing.T) {
	wr := buildWR(t, nil, nil, 0.5, 4, 2)
	if math.Abs(wr.TotalCapacity-chip.Area()*0.5) > 1e-9 {
		t.Fatalf("TotalCapacity = %v", wr.TotalCapacity)
	}
}

func TestDensityMapAccumulate(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 2})
	n.SetPos(a, geom.Point{X: 2, Y: 2}) // straddles four bins of a 4x2 map
	m := NewDensityMap(chip, 4, 2, nil, 1.0)
	m.Accumulate(n)
	total := 0.0
	for _, u := range m.Usage {
		total += u
	}
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("total usage = %v, want 4", total)
	}
	// The cell spans x 1..3, y 1..3: bins (0,0),(1,0),(0,1),(1,1) get 1 each.
	for _, w := range []int{m.Grid.Index(0, 0), m.Grid.Index(1, 0), m.Grid.Index(0, 1), m.Grid.Index(1, 1)} {
		if math.Abs(m.Usage[w]-1) > 1e-9 {
			t.Fatalf("bin %d usage = %v, want 1", w, m.Usage[w])
		}
	}
}

func TestDensityMapOverflow(t *testing.T) {
	m := NewDensityMap(chip, 4, 2, nil, 0.5) // capacity 2 per bin
	m.AddRect(geom.Rect{Xlo: 0, Ylo: 0, Xhi: 2, Yhi: 2})
	// One bin with usage 4 vs capacity 2: overflow 2.
	if got := m.Overflow(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Overflow = %v, want 2", got)
	}
	if got := m.MaxDensity(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("MaxDensity = %v, want 1", got)
	}
}

func TestDensityMapBlockage(t *testing.T) {
	blk := geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 2, Yhi: 2}}
	m := NewDensityMap(chip, 4, 2, blk, 1.0)
	if m.Capacity[0] != 0 {
		t.Fatalf("blocked bin capacity = %v", m.Capacity[0])
	}
	if math.Abs(m.Capacity[1]-4) > 1e-9 {
		t.Fatalf("free bin capacity = %v", m.Capacity[1])
	}
}

func TestDensityMapClipsOutside(t *testing.T) {
	m := NewDensityMap(chip, 4, 2, nil, 1.0)
	m.AddRect(geom.Rect{Xlo: -2, Ylo: -2, Xhi: 1, Yhi: 1}) // mostly off chip
	total := 0.0
	for _, u := range m.Usage {
		total += u
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("usage = %v, want 1 (clipped)", total)
	}
}

func TestNewRejectsInvalidDimensions(t *testing.T) {
	for _, dims := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -3}, {0, 0}} {
		if _, err := New(chip, dims[0], dims[1]); err == nil {
			t.Errorf("New(%dx%d) accepted invalid dimensions", dims[0], dims[1])
		}
	}
	if g, err := New(chip, 1, 1); err != nil || g == nil {
		t.Fatalf("New(1x1) = %v, %v", g, err)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0x0) did not panic")
		}
	}()
	MustNew(chip, 0, 0)
}
