// Package grid provides the regular window grids used by partitioning
// (paper §III), per-window region data (the R_w sets of §IV.A), and the
// bin density bookkeeping shared by the spreading baseline and the
// ISPD-2006 scoring metric.
package grid

import (
	"fmt"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// Grid is a regular Nx x Ny decomposition of the chip into windows.
type Grid struct {
	Chip   geom.Rect
	Nx, Ny int
}

// New returns an nx x ny grid over the chip area. Both dimensions must be
// positive; invalid dimensions are reported as an error so configuration
// mistakes surface to the caller instead of crashing the process.
func New(chip geom.Rect, nx, ny int) (*Grid, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("grid: invalid dimensions %dx%d", nx, ny)
	}
	return &Grid{Chip: chip, Nx: nx, Ny: ny}, nil
}

// MustNew is New for dimensions that are statically known to be positive
// (tests, literals, already-clamped values). It panics on invalid
// dimensions, which in those contexts is a programming error.
func MustNew(chip geom.Rect, nx, ny int) *Grid {
	g, err := New(chip, nx, ny)
	if err != nil {
		panic(err) //fbpvet:allow caller guarantees positive dimensions
	}
	return g
}

// NumWindows returns Nx*Ny.
func (g *Grid) NumWindows() int { return g.Nx * g.Ny }

// Index maps window coordinates to a dense window index.
func (g *Grid) Index(ix, iy int) int { return iy*g.Nx + ix }

// Coords inverts Index.
func (g *Grid) Coords(w int) (ix, iy int) { return w % g.Nx, w / g.Nx }

// xLine returns the i-th vertical grid line (0..Nx).
func (g *Grid) xLine(i int) float64 {
	return g.Chip.Xlo + g.Chip.Width()*float64(i)/float64(g.Nx)
}

func (g *Grid) yLine(j int) float64 {
	return g.Chip.Ylo + g.Chip.Height()*float64(j)/float64(g.Ny)
}

// Window returns the rectangle of window (ix, iy).
func (g *Grid) Window(ix, iy int) geom.Rect {
	return geom.Rect{
		Xlo: g.xLine(ix), Ylo: g.yLine(iy),
		Xhi: g.xLine(ix + 1), Yhi: g.yLine(iy + 1),
	}
}

// WindowRect returns the rectangle of window index w.
func (g *Grid) WindowRect(w int) geom.Rect {
	ix, iy := g.Coords(w)
	return g.Window(ix, iy)
}

// Locate returns the window coordinates containing point p, clamped to
// the grid (points outside the chip map to the nearest window).
func (g *Grid) Locate(p geom.Point) (ix, iy int) {
	fx := (p.X - g.Chip.Xlo) / g.Chip.Width() * float64(g.Nx)
	fy := (p.Y - g.Chip.Ylo) / g.Chip.Height() * float64(g.Ny)
	ix = clampInt(int(fx), 0, g.Nx-1)
	iy = clampInt(int(fy), 0, g.Ny-1)
	return ix, iy
}

// LocateIndex returns the dense window index containing p.
func (g *Grid) LocateIndex(p geom.Point) int {
	ix, iy := g.Locate(p)
	return g.Index(ix, iy)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Neighbors4 returns the indices of the N/E/S/W neighbors of window w
// (only those inside the grid).
func (g *Grid) Neighbors4(w int) []int {
	ix, iy := g.Coords(w)
	var out []int
	if iy+1 < g.Ny {
		out = append(out, g.Index(ix, iy+1))
	}
	if ix+1 < g.Nx {
		out = append(out, g.Index(ix+1, iy))
	}
	if iy > 0 {
		out = append(out, g.Index(ix, iy-1))
	}
	if ix > 0 {
		out = append(out, g.Index(ix-1, iy))
	}
	return out
}

// Block3x3 returns the window indices of the (up to) 3x3 block centered
// at w, clipped to the grid, in row-major order.
func (g *Grid) Block3x3(w int) []int {
	ix, iy := g.Coords(w)
	var out []int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := ix+dx, iy+dy
			if x >= 0 && x < g.Nx && y >= 0 && y < g.Ny {
				out = append(out, g.Index(x, y))
			}
		}
	}
	return out
}

// AssignCells maps every movable cell to the window containing its
// current center. The result is indexed by CellID; fixed cells map to -1.
func (g *Grid) AssignCells(n *netlist.Netlist) []int {
	assign := make([]int, n.NumCells())
	for i := range n.Cells {
		if n.Cells[i].Fixed {
			assign[i] = -1
			continue
		}
		assign[i] = g.LocateIndex(n.Pos(netlist.CellID(i)))
	}
	return assign
}

// WindowRegion is a piece of a decomposition region inside one window —
// an element of the paper's R_w.
type WindowRegion struct {
	// Window is the dense window index, Region the decomposition region.
	Window, Region int
	// Rects is the region area clipped to the window.
	Rects geom.RectSet
	// Capacity is the free area (minus blockages, scaled by density).
	Capacity float64
	// Center is the center of gravity of the free area.
	Center geom.Point
}

// WindowRegions holds, per window, the clipped regions with capacities —
// the R_w sets the flow model and the local partitioning steps work on.
type WindowRegions struct {
	Grid          *Grid
	Decomp        *region.Decomposition
	PerWin        [][]WindowRegion
	TotalCapacity float64
}

// BuildWindowRegions clips the decomposition to each grid window and
// computes free capacities and free-area centroids.
func BuildWindowRegions(g *Grid, d *region.Decomposition, blockages geom.RectSet, density float64) *WindowRegions {
	wr := &WindowRegions{
		Grid:   g,
		Decomp: d,
		PerWin: make([][]WindowRegion, g.NumWindows()),
	}
	// Map region index per window for accumulation.
	index := make([]map[int]int, g.NumWindows()) // region -> position in PerWin[w]
	for w := range index {
		index[w] = map[int]int{}
	}
	for ri := range d.Regions {
		for _, rect := range d.Regions[ri].Rects {
			// Find the window range the rect spans.
			ix0, iy0 := g.Locate(geom.Point{X: rect.Xlo + 1e-12, Y: rect.Ylo + 1e-12})
			ix1, iy1 := g.Locate(geom.Point{X: rect.Xhi - 1e-12, Y: rect.Yhi - 1e-12})
			for iy := iy0; iy <= iy1; iy++ {
				for ix := ix0; ix <= ix1; ix++ {
					w := g.Index(ix, iy)
					piece := rect.Intersect(g.Window(ix, iy))
					if piece.Empty() {
						continue
					}
					pos, ok := index[w][ri]
					if !ok {
						pos = len(wr.PerWin[w])
						index[w][ri] = pos
						wr.PerWin[w] = append(wr.PerWin[w], WindowRegion{Window: w, Region: ri})
					}
					wr.PerWin[w][pos].Rects = append(wr.PerWin[w][pos].Rects, piece)
				}
			}
		}
	}
	for w := range wr.PerWin {
		for i := range wr.PerWin[w] {
			p := &wr.PerWin[w][i]
			var sx, sy, sa float64
			for _, rect := range p.Rects {
				free := []geom.Rect{rect}
				for _, b := range blockages.Clip(rect) {
					var next []geom.Rect
					for _, f := range free {
						next = append(next, f.Subtract(b)...)
					}
					free = next
				}
				for _, f := range free {
					a := f.Area()
					c := f.Center()
					sx += c.X * a
					sy += c.Y * a
					sa += a
				}
			}
			p.Capacity = sa * density
			if sa > 0 {
				p.Center = geom.Point{X: sx / sa, Y: sy / sa}
			} else {
				p.Center = p.Rects.BBox().Center()
			}
			wr.TotalCapacity += p.Capacity
		}
	}
	return wr
}

// NumRegions returns the total number of window-region pieces (the |R| of
// paper Table I).
func (wr *WindowRegions) NumRegions() int {
	total := 0
	for _, rs := range wr.PerWin {
		total += len(rs)
	}
	return total
}

// WindowCapacity returns the total capacity of window w.
func (wr *WindowRegions) WindowCapacity(w int) float64 {
	total := 0.0
	for _, r := range wr.PerWin[w] {
		total += r.Capacity
	}
	return total
}

// DensityMap tracks cell usage per bin for spreading and the ISPD-2006
// density penalty.
type DensityMap struct {
	Grid     *Grid
	Usage    []float64 // movable + fixed area per bin
	Capacity []float64 // bin area * target density (fixed area removed)
}

// NewDensityMap builds a density map over an nx x ny bin grid; blockages
// reduce bin capacity, target scales the remaining free area. Bin counts
// below 1 are clamped to 1 (callers derive them from chip dimensions and a
// degenerate chip should still yield a usable one-bin map).
func NewDensityMap(chip geom.Rect, nx, ny int, blockages geom.RectSet, target float64) *DensityMap {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := MustNew(chip, nx, ny)
	m := &DensityMap{
		Grid:     g,
		Usage:    make([]float64, g.NumWindows()),
		Capacity: make([]float64, g.NumWindows()),
	}
	for w := 0; w < g.NumWindows(); w++ {
		bin := g.WindowRect(w)
		blocked := blockages.Clip(bin).Area()
		m.Capacity[w] = (bin.Area() - blocked) * target
	}
	return m
}

// Accumulate adds the movable cells of the netlist to the usage map,
// spreading each cell's area over the bins it overlaps.
func (m *DensityMap) Accumulate(n *netlist.Netlist) {
	for i := range m.Usage {
		m.Usage[i] = 0
	}
	for i := range n.Cells {
		if n.Cells[i].Fixed {
			continue
		}
		m.AddRect(n.CellRect(netlist.CellID(i)))
	}
}

// AddRect spreads the rectangle's area over the overlapping bins.
func (m *DensityMap) AddRect(r geom.Rect) {
	r = r.Intersect(m.Grid.Chip)
	if r.Empty() {
		return
	}
	ix0, iy0 := m.Grid.Locate(geom.Point{X: r.Xlo + 1e-12, Y: r.Ylo + 1e-12})
	ix1, iy1 := m.Grid.Locate(geom.Point{X: r.Xhi - 1e-12, Y: r.Yhi - 1e-12})
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			w := m.Grid.Index(ix, iy)
			m.Usage[w] += r.Intersect(m.Grid.Window(ix, iy)).Area()
		}
	}
}

// Overflow returns the total usage above capacity, summed over bins.
func (m *DensityMap) Overflow() float64 {
	total := 0.0
	for i := range m.Usage {
		if over := m.Usage[i] - m.Capacity[i]; over > 0 {
			total += over
		}
	}
	return total
}

// MaxDensity returns the maximum bin utilization (usage / raw bin area).
func (m *DensityMap) MaxDensity() float64 {
	max := 0.0
	for w := range m.Usage {
		a := m.Grid.WindowRect(w).Area()
		if a <= 0 {
			continue
		}
		if d := m.Usage[w] / a; d > max {
			max = d
		}
	}
	return max
}
