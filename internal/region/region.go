// Package region implements movebounds and the region decomposition of the
// chip area (paper §II): Definition 1 (inclusive/exclusive movebounds),
// Definition 2 and Lemma 1 (regions via the Hanan grid), and the
// feasibility checks of Theorems 1 and 2 (max-flow based).
package region

import (
	"fmt"
	"math"

	"fbplace/internal/flow"
	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

// Kind distinguishes the two movebound flavours of Definition 1.
type Kind int

const (
	// Inclusive movebounds constrain their own cells to the area but do
	// not block other cells.
	Inclusive Kind = iota
	// Exclusive movebounds additionally act as blockages for all other
	// cells.
	Exclusive
)

func (k Kind) String() string {
	if k == Exclusive {
		return "exclusive"
	}
	return "inclusive"
}

// Movebound is a named position constraint: a finite set of axis-parallel
// rectangles plus the inclusive/exclusive flag (Definition 1). Areas may
// be non-convex (multiple rectangles) and may overlap other movebounds.
type Movebound struct {
	Name string
	Area geom.RectSet
	Kind Kind
}

// Region is a maximal set of Hanan tiles with identical movebound
// coverage (Definition 2): every movebound either contains the whole
// region or none of it.
type Region struct {
	// Rects are the disjoint rectangles forming the region.
	Rects geom.RectSet
	// Covers[m] reports whether movebound m covers the region.
	Covers []bool
	// Blocked reports that the region lies inside some exclusive
	// movebound: only that movebound's cells may use it.
	Blocked bool
	// Exclusive is the index of the covering exclusive movebound, or -1.
	Exclusive int
	// Area is the geometric area of the region.
	Area float64
}

// Decomposition is a region decomposition of a chip area with respect to
// a set of movebounds.
type Decomposition struct {
	Chip       geom.Rect
	Movebounds []Movebound
	Regions    []Region
}

// Normalize validates and normalizes movebounds per §II: exclusive
// movebounds must not overlap each other (an error), and any overlap of an
// exclusive movebound with another movebound's area is removed from the
// other movebound ("detected and modified at the input").
func Normalize(chip geom.Rect, mbs []Movebound) ([]Movebound, error) {
	out := make([]Movebound, len(mbs))
	for i, m := range mbs {
		clipped := m.Area.Clip(chip)
		if len(clipped) == 0 {
			return nil, fmt.Errorf("region: movebound %q has empty area inside the chip", m.Name)
		}
		out[i] = Movebound{Name: m.Name, Area: clipped, Kind: m.Kind}
	}
	for i := range out {
		if out[i].Kind != Exclusive {
			continue
		}
		for j := range out {
			if i == j {
				continue
			}
			if out[j].Kind == Exclusive && overlapSets(out[i].Area, out[j].Area) {
				return nil, fmt.Errorf("region: exclusive movebounds %q and %q overlap", out[i].Name, out[j].Name)
			}
			if out[j].Kind != Exclusive && overlapSets(out[i].Area, out[j].Area) {
				out[j].Area = subtractSet(out[j].Area, out[i].Area)
				if len(out[j].Area) == 0 {
					return nil, fmt.Errorf("region: movebound %q entirely shadowed by exclusive %q", out[j].Name, out[i].Name)
				}
			}
		}
	}
	return out, nil
}

func overlapSets(a, b geom.RectSet) bool {
	for _, r := range a {
		if b.OverlapsRect(r) {
			return true
		}
	}
	return false
}

func subtractSet(a, b geom.RectSet) geom.RectSet {
	cur := append(geom.RectSet(nil), a...)
	for _, s := range b {
		var next geom.RectSet
		for _, r := range cur {
			next = append(next, r.Subtract(s)...)
		}
		cur = next
	}
	return cur
}

// Decompose builds the region decomposition of the chip with respect to
// the (normalized) movebounds using the Hanan grid of Lemma 1. Tiles with
// identical coverage signatures are merged into one (possibly
// disconnected) region, yielding the maximal regions of Figure 1.
func Decompose(chip geom.Rect, mbs []Movebound) *Decomposition {
	var all geom.RectSet
	for _, m := range mbs {
		all = append(all, m.Area...)
	}
	grid := geom.NewHananGrid(chip, all)
	type sigKey string
	bySig := map[sigKey]int{}
	d := &Decomposition{Chip: chip, Movebounds: mbs}
	sig := make([]byte, len(mbs))
	for _, tile := range grid.Tiles() {
		c := tile.Center()
		for m := range mbs {
			if mbs[m].Area.Contains(c) {
				sig[m] = 1
			} else {
				sig[m] = 0
			}
		}
		key := sigKey(sig)
		idx, ok := bySig[key]
		if !ok {
			idx = len(d.Regions)
			bySig[key] = idx
			covers := make([]bool, len(mbs))
			blocked := false
			excl := -1
			for m := range mbs {
				covers[m] = sig[m] == 1
				if covers[m] && mbs[m].Kind == Exclusive {
					blocked = true
					excl = m
				}
			}
			d.Regions = append(d.Regions, Region{Covers: covers, Blocked: blocked, Exclusive: excl})
		}
		r := &d.Regions[idx]
		r.Rects = append(r.Rects, tile)
		r.Area += tile.Area()
	}
	return d
}

// Admissible reports whether a cell of movebound mb (netlist.NoMovebound
// for unconstrained cells) may be placed in region ri.
func (d *Decomposition) Admissible(mb int, ri int) bool {
	r := &d.Regions[ri]
	if r.Blocked {
		return mb == r.Exclusive
	}
	if mb == netlist.NoMovebound {
		return true
	}
	return r.Covers[mb]
}

// RegionOf returns the index of the region containing point p, or -1.
// Points on shared tile boundaries resolve to the first region in index
// order (deterministic).
func (d *Decomposition) RegionOf(p geom.Point) int {
	for i := range d.Regions {
		if d.Regions[i].Rects.Contains(p) {
			return i
		}
	}
	return -1
}

// ClassSizes returns the total movable cell area per movebound class.
// Index len(sizes)-1 is the unconstrained class; class m < len(movebounds)
// is movebound m.
func ClassSizes(n *netlist.Netlist, numMB int) []float64 {
	sizes := make([]float64, numMB+1)
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Fixed {
			continue
		}
		if c.Movebound == netlist.NoMovebound {
			sizes[numMB] += c.Size()
		} else {
			sizes[c.Movebound] += c.Size()
		}
	}
	return sizes
}

// Capacities returns the free capacity of each region: geometric area
// minus blockage overlap, scaled by the target density.
func (d *Decomposition) Capacities(blockages geom.RectSet, density float64) []float64 {
	caps := make([]float64, len(d.Regions))
	for i := range d.Regions {
		caps[i] = d.RegionCapacity(i, blockages, density)
	}
	return caps
}

// RegionCapacity computes the free capacity of a single region.
func (d *Decomposition) RegionCapacity(ri int, blockages geom.RectSet, density float64) float64 {
	free := 0.0
	for _, rect := range d.Regions[ri].Rects {
		free += freeArea(rect, blockages)
	}
	return free * density
}

// freeArea returns the area of rect not covered by blockages.
func freeArea(rect geom.Rect, blockages geom.RectSet) float64 {
	overlapping := blockages.Clip(rect)
	if len(overlapping) == 0 {
		return rect.Area()
	}
	return rect.Area() - overlapping.Area()
}

// FreeCenter returns the center of gravity of the free area of region ri
// (used to embed region nodes in the flow model). Falls back to the
// geometric centroid when the region is fully blocked.
func (d *Decomposition) FreeCenter(ri int, blockages geom.RectSet) geom.Point {
	var sx, sy, sa float64
	for _, rect := range d.Regions[ri].Rects {
		// Decompose the tile minus blockages into free rectangles and
		// accumulate their centroids.
		free := []geom.Rect{rect}
		for _, b := range blockages {
			var next []geom.Rect
			for _, f := range free {
				next = append(next, f.Subtract(b)...)
			}
			free = next
		}
		for _, f := range free {
			a := f.Area()
			c := f.Center()
			sx += c.X * a
			sy += c.Y * a
			sa += a
		}
	}
	if sa <= 0 {
		var cx, cy, ca float64
		for _, rect := range d.Regions[ri].Rects {
			a := rect.Area()
			c := rect.Center()
			cx += c.X * a
			cy += c.Y * a
			ca += a
		}
		if ca == 0 {
			return d.Chip.Center()
		}
		return geom.Point{X: cx / ca, Y: cy / ca}
	}
	return geom.Point{X: sx / sa, Y: sy / sa}
}

// FeasibilityReport is the result of a movebound feasibility check.
type FeasibilityReport struct {
	Feasible bool
	// TotalSize is size(C), the total movable cell area.
	TotalSize float64
	// Routed is the max-flow value; Feasible iff Routed ≈ TotalSize.
	Routed float64
}

// CheckFeasibility decides whether a fractional placement respecting the
// movebounds exists (Theorem 2): a max-flow on the clustered instance with
// one node per movebound class and one per region. Runtime is
// O(|C| + poly(|M|,|R|)), polynomial in the input.
func CheckFeasibility(n *netlist.Netlist, d *Decomposition, capacities []float64) FeasibilityReport {
	numMB := len(d.Movebounds)
	sizes := ClassSizes(n, numMB)
	numClasses := numMB + 1
	// Nodes: 0 = source, 1 = sink, classes, regions.
	g := flow.NewMaxFlow(2 + numClasses + len(d.Regions))
	src, snk := 0, 1
	classNode := func(m int) int { return 2 + m }
	regionNode := func(r int) int { return 2 + numClasses + r }
	total := 0.0
	for m, s := range sizes {
		if s <= 0 {
			continue
		}
		total += s
		g.AddArc(src, classNode(m), s)
	}
	for ri := range d.Regions {
		if capacities[ri] <= 0 {
			continue
		}
		g.AddArc(regionNode(ri), snk, capacities[ri])
		for m := 0; m < numClasses; m++ {
			if sizes[m] <= 0 {
				continue
			}
			mb := m
			if m == numMB {
				mb = netlist.NoMovebound
			}
			if d.Admissible(mb, ri) {
				g.AddArc(classNode(m), regionNode(ri), flow.Inf)
			}
		}
	}
	routed := g.Solve(src, snk)
	return FeasibilityReport{
		Feasible:  routed >= total-feasEps(total),
		TotalSize: total,
		Routed:    routed,
	}
}

// CheckFeasibilityPerCell runs the full per-cell max-flow of Theorem 1.
// Exponentially clearer but linear-in-cells sized; used in tests and on
// small instances.
func CheckFeasibilityPerCell(n *netlist.Netlist, d *Decomposition, capacities []float64) FeasibilityReport {
	movable := n.MovableIDs()
	g := flow.NewMaxFlow(2 + len(movable) + len(d.Regions))
	src, snk := 0, 1
	cellNode := func(i int) int { return 2 + i }
	regionNode := func(r int) int { return 2 + len(movable) + r }
	total := 0.0
	for i, id := range movable {
		s := n.Cells[id].Size()
		total += s
		g.AddArc(src, cellNode(i), s)
		for ri := range d.Regions {
			if d.Admissible(n.Cells[id].Movebound, ri) && capacities[ri] > 0 {
				g.AddArc(cellNode(i), regionNode(ri), flow.Inf)
			}
		}
	}
	for ri := range d.Regions {
		if capacities[ri] > 0 {
			g.AddArc(regionNode(ri), snk, capacities[ri])
		}
	}
	routed := g.Solve(src, snk)
	return FeasibilityReport{
		Feasible:  routed >= total-feasEps(total),
		TotalSize: total,
		Routed:    routed,
	}
}

func feasEps(total float64) float64 {
	return 1e-6 * math.Max(1, total)
}

// CheckLegal verifies a placement against the movebounds (Definition 1):
// each cell entirely within A(mu(c)) and no foreign cell overlapping an
// exclusive movebound. Hairline overlaps from float rounding (area below
// 1e-6) are tolerated. It returns the number of violating cells.
func CheckLegal(n *netlist.Netlist, mbs []Movebound) int {
	const tol = 1e-6
	viol := 0
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Fixed {
			continue
		}
		r := n.CellRect(netlist.CellID(i))
		if c.Movebound != netlist.NoMovebound {
			// Shrink the cell by a hair before the containment test.
			if !mbs[c.Movebound].Area.ContainsRect(r.Expand(-1e-9)) {
				viol++
				continue
			}
		}
		for m := range mbs {
			if mbs[m].Kind != Exclusive || m == c.Movebound {
				continue
			}
			overlap := 0.0
			for _, a := range mbs[m].Area {
				overlap += a.Intersect(r).Area()
			}
			if overlap > tol {
				viol++
				break
			}
		}
	}
	return viol
}
