package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 12, Yhi: 8}

// figure1 builds the example of paper Figure 1: an exclusive movebound N,
// and two inclusive movebounds M, L with A(L) contained in A(M). After
// normalization (M loses the part under N) the decomposition has exactly
// three maximal regions: N, L, and M\L.
func figure1(t *testing.T) ([]Movebound, *Decomposition) {
	t.Helper()
	mbs := []Movebound{
		{Name: "N", Kind: Exclusive, Area: geom.RectSet{{Xlo: 8, Ylo: 4, Xhi: 12, Yhi: 8}}},
		{Name: "M", Kind: Inclusive, Area: geom.RectSet{chip}},
		{Name: "L", Kind: Inclusive, Area: geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 6, Yhi: 6}}},
	}
	norm, err := Normalize(chip, mbs)
	if err != nil {
		t.Fatal(err)
	}
	return norm, Decompose(chip, norm)
}

func TestFigure1Decomposition(t *testing.T) {
	norm, d := figure1(t)
	if len(d.Regions) != 3 {
		t.Fatalf("got %d regions, want 3 (Figure 1)", len(d.Regions))
	}
	// Regions partition the chip.
	total := 0.0
	for _, r := range d.Regions {
		total += r.Area
	}
	if math.Abs(total-chip.Area()) > 1e-9 {
		t.Fatalf("regions cover %v, chip is %v", total, chip.Area())
	}
	// Identify regions by probing points.
	nIdx := d.RegionOf(geom.Point{X: 10, Y: 6})
	lIdx := d.RegionOf(geom.Point{X: 4, Y: 4})
	mIdx := d.RegionOf(geom.Point{X: 1, Y: 7})
	if nIdx == lIdx || lIdx == mIdx || nIdx == mIdx {
		t.Fatalf("probe points map to regions %d,%d,%d, want distinct", nIdx, lIdx, mIdx)
	}
	if !d.Regions[nIdx].Blocked || d.Regions[nIdx].Exclusive != 0 {
		t.Fatalf("N region not marked exclusive: %+v", d.Regions[nIdx])
	}
	if !d.Regions[lIdx].Covers[1] || !d.Regions[lIdx].Covers[2] {
		t.Fatalf("L region coverage wrong: %v", d.Regions[lIdx].Covers)
	}
	if !d.Regions[mIdx].Covers[1] || d.Regions[mIdx].Covers[2] {
		t.Fatalf("M-only region coverage wrong: %v", d.Regions[mIdx].Covers)
	}
	// Normalization removed N's area from M.
	if norm[1].Area.OverlapsRect(geom.Rect{Xlo: 8, Ylo: 4, Xhi: 12, Yhi: 8}) {
		t.Fatal("M still overlaps exclusive N after Normalize")
	}
	// Region areas: N = 16, L = 16, M\L = 96-32 = 64.
	if math.Abs(d.Regions[nIdx].Area-16) > 1e-9 {
		t.Fatalf("N area = %v", d.Regions[nIdx].Area)
	}
	if math.Abs(d.Regions[lIdx].Area-16) > 1e-9 {
		t.Fatalf("L area = %v", d.Regions[lIdx].Area)
	}
	if math.Abs(d.Regions[mIdx].Area-64) > 1e-9 {
		t.Fatalf("M-only area = %v", d.Regions[mIdx].Area)
	}
}

func TestNormalizeExclusiveOverlapError(t *testing.T) {
	mbs := []Movebound{
		{Name: "A", Kind: Exclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 4, Yhi: 4}}},
		{Name: "B", Kind: Exclusive, Area: geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 6, Yhi: 6}}},
	}
	if _, err := Normalize(chip, mbs); err == nil {
		t.Fatal("overlapping exclusive movebounds accepted")
	}
}

func TestNormalizeEmptyAreaError(t *testing.T) {
	mbs := []Movebound{
		{Name: "out", Kind: Inclusive, Area: geom.RectSet{{Xlo: 100, Ylo: 100, Xhi: 110, Yhi: 110}}},
	}
	if _, err := Normalize(chip, mbs); err == nil {
		t.Fatal("off-chip movebound accepted")
	}
}

func TestNormalizeShadowedError(t *testing.T) {
	mbs := []Movebound{
		{Name: "X", Kind: Exclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 4, Yhi: 4}}},
		{Name: "I", Kind: Inclusive, Area: geom.RectSet{{Xlo: 1, Ylo: 1, Xhi: 3, Yhi: 3}}},
	}
	if _, err := Normalize(chip, mbs); err == nil {
		t.Fatal("fully shadowed inclusive movebound accepted")
	}
}

func TestAdmissible(t *testing.T) {
	_, d := figure1(t)
	nIdx := d.RegionOf(geom.Point{X: 10, Y: 6})
	lIdx := d.RegionOf(geom.Point{X: 4, Y: 4})
	mIdx := d.RegionOf(geom.Point{X: 1, Y: 7})
	// Unbounded cells: everywhere except the exclusive region.
	if d.Admissible(netlist.NoMovebound, nIdx) {
		t.Fatal("unbounded cell admitted to exclusive region")
	}
	if !d.Admissible(netlist.NoMovebound, mIdx) || !d.Admissible(netlist.NoMovebound, lIdx) {
		t.Fatal("unbounded cell rejected from open regions")
	}
	// N's own cells: only inside N.
	if !d.Admissible(0, nIdx) || d.Admissible(0, mIdx) || d.Admissible(0, lIdx) {
		t.Fatal("exclusive movebound admissibility wrong")
	}
	// M's cells: M-only and L regions (L is inside M), not N.
	if !d.Admissible(1, mIdx) || !d.Admissible(1, lIdx) || d.Admissible(1, nIdx) {
		t.Fatal("M admissibility wrong")
	}
	// L's cells: only the L region.
	if !d.Admissible(2, lIdx) || d.Admissible(2, mIdx) || d.Admissible(2, nIdx) {
		t.Fatal("L admissibility wrong")
	}
}

func TestRegionOfOutside(t *testing.T) {
	_, d := figure1(t)
	if got := d.RegionOf(geom.Point{X: -5, Y: -5}); got != -1 {
		t.Fatalf("RegionOf outside = %d, want -1", got)
	}
}

func TestCapacitiesWithBlockage(t *testing.T) {
	_, d := figure1(t)
	lIdx := d.RegionOf(geom.Point{X: 4, Y: 4})
	// A blockage covering half of L.
	blk := geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 4, Yhi: 6}}
	caps := d.Capacities(blk, 1.0)
	if math.Abs(caps[lIdx]-8) > 1e-9 {
		t.Fatalf("L capacity = %v, want 8", caps[lIdx])
	}
	// Density scaling.
	caps = d.Capacities(nil, 0.5)
	if math.Abs(caps[lIdx]-8) > 1e-9 {
		t.Fatalf("L capacity at density 0.5 = %v, want 8", caps[lIdx])
	}
}

func TestFreeCenter(t *testing.T) {
	_, d := figure1(t)
	lIdx := d.RegionOf(geom.Point{X: 4, Y: 4})
	// Without blockage, center of L's square.
	c := d.FreeCenter(lIdx, nil)
	if c.DistL1(geom.Point{X: 4, Y: 4}) > 1e-9 {
		t.Fatalf("FreeCenter = %v, want (4,4)", c)
	}
	// Block the left half: center of gravity moves right.
	c = d.FreeCenter(lIdx, geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 4, Yhi: 6}})
	if c.X <= 4 {
		t.Fatalf("FreeCenter with blockage = %v, want X > 4", c)
	}
	// Fully blocked region falls back to the geometric centroid.
	c = d.FreeCenter(lIdx, geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 6, Yhi: 6}})
	if c.DistL1(geom.Point{X: 4, Y: 4}) > 1e-9 {
		t.Fatalf("blocked FreeCenter = %v", c)
	}
}

// buildTestNetlist makes cells with given areas per class (class index ==
// movebound, last = unbounded).
func buildTestNetlist(t *testing.T, areas []float64, numMB int) *netlist.Netlist {
	t.Helper()
	n := netlist.New(chip, 1)
	for class, a := range areas {
		if a <= 0 {
			continue
		}
		mb := class
		if class == numMB {
			mb = netlist.NoMovebound
		}
		n.AddCell(netlist.Cell{Width: a, Height: 1, Movebound: mb})
	}
	return n
}

func TestCheckFeasibilityBasic(t *testing.T) {
	_, d := figure1(t)
	caps := d.Capacities(nil, 1.0)
	// Small amounts everywhere: feasible.
	n := buildTestNetlist(t, []float64{4, 10, 4, 10}, 3)
	rep := CheckFeasibility(n, d, caps)
	if !rep.Feasible {
		t.Fatalf("feasible instance rejected: %+v", rep)
	}
	// L's region holds 16; demand 20 on L alone: infeasible.
	n = buildTestNetlist(t, []float64{0, 0, 20, 0}, 3)
	rep = CheckFeasibility(n, d, caps)
	if rep.Feasible {
		t.Fatalf("infeasible instance accepted: %+v", rep)
	}
	// M and unbounded compete for the non-N space (96-16 = 80): 50+50 is
	// too much, even though each alone would fit.
	n = buildTestNetlist(t, []float64{0, 50, 0, 50}, 3)
	rep = CheckFeasibility(n, d, caps)
	if rep.Feasible {
		t.Fatalf("subset-infeasible instance accepted: %+v", rep)
	}
	// Unbounded alone can NOT use N's 16: 81 unbounded is infeasible.
	n = buildTestNetlist(t, []float64{0, 0, 0, 81}, 3)
	if rep := CheckFeasibility(n, d, caps); rep.Feasible {
		t.Fatalf("exclusive area used by unbounded cells: %+v", rep)
	}
	// ... but 80 fits exactly.
	n = buildTestNetlist(t, []float64{0, 0, 0, 80}, 3)
	if rep := CheckFeasibility(n, d, caps); !rep.Feasible {
		t.Fatalf("tight instance rejected: %+v", rep)
	}
}

func TestPerCellMatchesClustered(t *testing.T) {
	_, d := figure1(t)
	caps := d.Capacities(nil, 1.0)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := netlist.New(chip, 1)
		for i := 0; i < 1+rng.Intn(10); i++ {
			mb := rng.Intn(4) - 1 // -1..2
			n.AddCell(netlist.Cell{Width: 1 + rng.Float64()*20, Height: 1, Movebound: mb})
		}
		a := CheckFeasibility(n, d, caps)
		b := CheckFeasibilityPerCell(n, d, caps)
		if a.Feasible != b.Feasible {
			t.Fatalf("trial %d: clustered %v != per-cell %v", trial, a.Feasible, b.Feasible)
		}
	}
}

// Property (Theorem 1): the max-flow check agrees with the Hall condition
// (1): for every subset of classes, total size <= capacity of the union of
// admissible regions.
func TestFeasibilityMatchesHallCondition(t *testing.T) {
	_, d := figure1(t)
	caps := d.Capacities(nil, 1.0)
	numClasses := len(d.Movebounds) + 1
	admissible := func(class, ri int) bool {
		mb := class
		if class == numClasses-1 {
			mb = netlist.NoMovebound
		}
		return d.Admissible(mb, ri)
	}
	f := func(a0, a1, a2, a3 uint8) bool {
		areas := []float64{float64(a0 % 40), float64(a1 % 80), float64(a2 % 40), float64(a3 % 120)}
		n := buildTestNetlist(t, areas, 3)
		got := CheckFeasibility(n, d, caps).Feasible
		// Hall condition over all nonempty class subsets.
		hall := true
		for mask := 1; mask < 1<<numClasses; mask++ {
			demand := 0.0
			for c := 0; c < numClasses; c++ {
				if mask&(1<<c) != 0 {
					demand += areas[c]
				}
			}
			cap := 0.0
			for ri := range d.Regions {
				for c := 0; c < numClasses; c++ {
					if mask&(1<<c) != 0 && admissible(c, ri) {
						cap += caps[ri]
						break
					}
				}
			}
			if demand > cap+1e-6 {
				hall = false
				break
			}
		}
		return got == hall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLegal(t *testing.T) {
	norm, _ := figure1(t)
	n := netlist.New(chip, 1)
	// Cell of L placed inside L: legal.
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 2})
	n.SetPos(a, geom.Point{X: 4, Y: 4})
	// Unbounded cell inside exclusive N: violation.
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(b, geom.Point{X: 10, Y: 6})
	// Cell of L outside L: violation.
	c := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 2})
	n.SetPos(c, geom.Point{X: 1, Y: 1})
	// Fixed cells are exempt.
	f := n.AddCell(netlist.Cell{Width: 1, Height: 1, Fixed: true, Movebound: netlist.NoMovebound})
	n.SetPos(f, geom.Point{X: 10, Y: 6})
	if got := CheckLegal(n, norm); got != 2 {
		t.Fatalf("CheckLegal = %d, want 2", got)
	}
}

func TestCheckLegalCellStraddlingBoundary(t *testing.T) {
	norm, _ := figure1(t)
	n := netlist.New(chip, 1)
	// Cell of L centered on L's boundary: half outside -> violation.
	a := n.AddCell(netlist.Cell{Width: 2, Height: 2, Movebound: 2})
	n.SetPos(a, geom.Point{X: 6, Y: 4})
	if got := CheckLegal(n, norm); got != 1 {
		t.Fatalf("CheckLegal = %d, want 1", got)
	}
	// Nudged fully inside: legal.
	n.SetPos(a, geom.Point{X: 5, Y: 4})
	if got := CheckLegal(n, norm); got != 0 {
		t.Fatalf("CheckLegal = %d, want 0", got)
	}
}

func TestDecomposeNoMovebounds(t *testing.T) {
	d := Decompose(chip, nil)
	if len(d.Regions) != 1 {
		t.Fatalf("got %d regions, want 1", len(d.Regions))
	}
	if math.Abs(d.Regions[0].Area-chip.Area()) > 1e-9 {
		t.Fatalf("region area = %v", d.Regions[0].Area)
	}
	if !d.Admissible(netlist.NoMovebound, 0) {
		t.Fatal("unbounded cell rejected from the whole chip")
	}
}

func TestDecomposeOverlappingInclusives(t *testing.T) {
	// Two overlapping inclusive movebounds -> 4 regions: A-only, B-only,
	// A∩B, neither.
	mbs := []Movebound{
		{Name: "A", Kind: Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 6, Yhi: 8}}},
		{Name: "B", Kind: Inclusive, Area: geom.RectSet{{Xlo: 4, Ylo: 0, Xhi: 10, Yhi: 8}}},
	}
	norm, err := Normalize(chip, mbs)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(chip, norm)
	if len(d.Regions) != 4 {
		t.Fatalf("got %d regions, want 4", len(d.Regions))
	}
	both := d.RegionOf(geom.Point{X: 5, Y: 4})
	if !d.Regions[both].Covers[0] || !d.Regions[both].Covers[1] {
		t.Fatalf("overlap region coverage: %v", d.Regions[both].Covers)
	}
	// Cells of A may use the overlap; cells of B too.
	if !d.Admissible(0, both) || !d.Admissible(1, both) {
		t.Fatal("overlap region must admit both movebounds")
	}
}
