package gen

import (
	"fmt"
	"math"

	"fbplace/internal/region"
)

// tableIIRow carries the published size of one industrial chip (Table II).
type tableIIRow struct {
	name  string
	cells int // thousands in the paper; stored as full counts
}

// tableII mirrors the 21 chips of paper Table II (cell counts in units).
var tableII = []tableIIRow{
	{"Dagmar", 50_000}, {"Elisa", 67_000}, {"Lucius", 77_000},
	{"Felix", 87_000}, {"Paula", 129_000}, {"Rabe", 175_000},
	{"Julia", 190_000}, {"Max", 328_000}, {"Roger", 456_000},
	{"Ashraf", 867_000}, {"Patrick", 1_052_000}, {"Erhard", 2_578_000},
	{"Arijan", 3_753_000}, {"Philipp", 3_946_000}, {"Tomoku", 5_296_000},
	{"Trips", 5_747_000}, {"Valentin", 5_838_000}, {"Andre", 6_794_000},
	{"Ludwig", 7_500_000}, {"Leyla", 8_472_000}, {"Erik", 9_316_000},
}

// tableIIIRow carries the movebound characteristics of paper Table III.
type tableIIIRow struct {
	name       string
	numMB      int
	cells      int
	pctCells   float64 // fraction of cells with movebounds
	maxDensity float64
	overlap    bool // (O)
	flattened  bool // (F): nested movebounds from hierarchy
}

var tableIII = []tableIIIRow{
	{"Rabe", 2, 175_646, 0.043, 0.67, false, false},
	{"Ashraf", 206, 866_777, 0.220, 0.92, false, true},
	{"Erhard", 43, 2_578_246, 0.978, 0.74, false, false},
	{"Tomoku", 85, 5_296_120, 0.012, 0.74, true, true},
	{"Trips", 114, 5_747_007, 0.994, 0.81, true, false},
	{"Andre", 43, 6_794_323, 0.038, 0.73, true, true},
	{"Ludwig", 33, 7_500_446, 0.027, 0.70, true, true},
	{"Erik", 39, 9_316_938, 0.846, 0.85, false, true},
}

// tableVChips are the instances of paper Table V (exclusive movebounds).
var tableVChips = []string{"Rabe", "Ashraf", "Erhard", "Andre", "Erik"}

// ispdRow approximates the ISPD 2006 contest instances (Table VII).
type ispdRow struct {
	name    string
	cells   int
	macros  int
	density float64 // contest target density
}

var ispdTable = []ispdRow{
	{"adaptec5", 843_128, 20, 0.50},
	{"newblue1", 330_474, 10, 0.80},
	{"newblue2", 441_516, 30, 0.90},
	{"newblue3", 494_011, 20, 0.80},
	{"newblue4", 646_139, 20, 0.50},
	{"newblue5", 1_233_058, 30, 0.50},
	{"newblue6", 1_255_039, 20, 0.80},
	{"newblue7", 2_507_954, 40, 0.80},
}

// scaleCells scales a published cell count down for tractable runs. The
// scale is a fraction (1.0 = full size); counts are floored at 2000 so the
// algorithmic regime (many windows, many levels) is preserved.
func scaleCells(published int, scale float64) int {
	c := int(float64(published) * scale)
	if c < 2000 {
		c = 2000
	}
	return c
}

// TableIIChips returns the specs of the 21 industrial chips of Table II at
// the given scale, without movebounds. count limits the list (0 = all).
func TableIIChips(scale float64, count int) []ChipSpec {
	if count <= 0 || count > len(tableII) {
		count = len(tableII)
	}
	specs := make([]ChipSpec, 0, count)
	for i, row := range tableII[:count] {
		specs = append(specs, ChipSpec{
			Name:        row.name,
			NumCells:    scaleCells(row.cells, scale),
			Utilization: 0.55,
			NumMacros:   2 + i%4,
			Seed:        int64(1000 + i),
		})
	}
	return specs
}

// TableIIIChips returns the specs of the 8 movebounded chips of Table III
// at the given scale. kind selects inclusive (Table IV) or exclusive
// (Table V — only the five chips the paper ran exclusively) variants.
func TableIIIChips(scale float64, kind region.Kind) []ChipSpec {
	var specs []ChipSpec
	for i, row := range tableIII {
		if kind == region.Exclusive && !contains(tableVChips, row.name) {
			continue
		}
		// The paper caps movebound counts per chip; scale them down too,
		// keeping at least 2 so overlap/nesting scenarios still occur.
		// Exclusive areas must be pairwise disjoint, so scaled-down chips
		// carry fewer of them.
		numMB := row.numMB
		if numMB > 12 {
			numMB = 12
		}
		if kind == region.Exclusive && numMB > 6 {
			numMB = 6
		}
		spec := ChipSpec{
			Name:        row.name,
			NumCells:    scaleCells(row.cells, scale),
			Utilization: 0.55,
			NumMacros:   2,
			Seed:        int64(2000 + i),
		}
		perMB := row.pctCells / float64(numMB)
		for m := 0; m < numMB; m++ {
			ms := MoveboundSpec{
				Kind:         kind,
				CellFraction: perMB,
				Density:      row.maxDensity * (0.8 + 0.2*float64(m%3)/2),
				NestedIn:     -1,
			}
			if kind == region.Inclusive {
				if row.flattened && m%3 == 1 && m > 0 {
					ms.NestedIn = m - 1
				}
				if row.overlap && m%4 == 2 {
					ms.Overlap = true
				}
				if row.flattened && m%5 == 3 {
					// Flattened hierarchy blocks are often non-convex.
					ms.LShaped = true
				}
			}
			spec.Movebounds = append(spec.Movebounds, ms)
		}
		specs = append(specs, spec)
	}
	return specs
}

// ISPDChips returns the 8 ISPD-2006-style mixed-size specs of Table VII.
func ISPDChips(scale float64) []ChipSpec {
	specs := make([]ChipSpec, 0, len(ispdTable))
	for i, row := range ispdTable {
		util := row.density * 0.75 // contest designs are not full
		if util > 0.65 {
			util = 0.65
		}
		specs = append(specs, ChipSpec{
			Name:        row.name,
			NumCells:    scaleCells(row.cells, scale),
			Utilization: util,
			NumMacros:   row.macros,
			Seed:        int64(3000 + i),
		})
	}
	return specs
}

// ISPDTargetDensity returns the contest target density of an ISPD-style
// instance generated by ISPDChips.
func ISPDTargetDensity(name string) (float64, error) {
	for _, row := range ispdTable {
		if row.name == name {
			return row.density, nil
		}
	}
	return 0, fmt.Errorf("gen: unknown ISPD instance %q", name)
}

// TableIIIRemark reproduces the remark column of Table III for a chip.
func TableIIIRemark(name string) string {
	for _, row := range tableIII {
		if row.name == name {
			switch {
			case row.overlap && row.flattened:
				return "(O)(F)"
			case row.overlap:
				return "(O)"
			case row.flattened:
				return "(F)"
			}
			return ""
		}
	}
	return ""
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ErhardLike returns the Table I instance: the largest movebounded chip
// (Erhard: 2 578 246 cells, 43 movebounds) at the given scale.
func ErhardLike(scale float64) ChipSpec {
	specs := TableIIIChips(scale, region.Inclusive)
	for _, s := range specs {
		if s.Name == "Erhard" {
			return s
		}
	}
	panic("gen: Erhard spec missing") //fbpvet:allow TableIIIChips statically contains Erhard
}

// GridLevels returns the Table I grid refinement sequence for a chip with
// the given cell count: 4x4 up to the finest grid the paper reports,
// capped so windows keep a sensible number of cells.
func GridLevels(numCells int) []int {
	var out []int
	for k := 4; k*k <= numCells/4; k *= 2 {
		out = append(out, k)
		if k >= 576 {
			break
		}
	}
	if len(out) == 0 {
		out = []int{int(math.Max(2, math.Sqrt(float64(numCells))/8))}
	}
	return out
}
