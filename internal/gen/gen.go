// Package gen synthesizes placement instances with the published
// characteristics of the paper's testbeds: industrial-style chips with
// local netlist structure, boundary pads and macro blockages (Tables II
// and III, scaled), movebound scenarios (inclusive/exclusive, overlapping,
// nested "from flattened hierarchy"), and ISPD-2006-style mixed-size
// instances (Table VII). The real chips are proprietary; these synthetic
// equivalents exercise the same code paths and preserve the comparison
// shape (who wins, by what factor).
//
// Generation is fully deterministic given the spec's Seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"fbplace/internal/geom"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// MoveboundSpec describes one generated movebound.
type MoveboundSpec struct {
	// Kind is inclusive or exclusive.
	Kind region.Kind
	// CellFraction is the fraction of all cells assigned to this
	// movebound.
	CellFraction float64
	// Density is the target cell density inside the movebound area
	// (the "max mb. dens" column of Table III).
	Density float64
	// NestedIn, when >= 0, places this movebound's area inside the area
	// of the referenced movebound ("(F)" — flattened hierarchy).
	NestedIn int
	// Overlap requests that the area overlap the previous movebound
	// ("(O)" instances).
	Overlap bool
	// LShaped makes the area non-convex: two overlapping rectangles
	// forming an L. The paper's movebounds are explicitly allowed to be
	// non-convex; only non-nested inclusive movebounds use this shape.
	LShaped bool
}

// ChipSpec describes a synthetic chip.
type ChipSpec struct {
	Name     string
	NumCells int
	// Utilization is total movable cell area / free chip area. Default 0.55.
	Utilization float64
	// Aspect is width/height. Default 1.
	Aspect float64
	// NumMacros fixed macro blocks. Default 0.
	NumMacros int
	// PadCount overrides the number of boundary pads (default 4*sqrt(n)).
	PadCount int
	// AvgPins sets the average net size (default 2.7 pins).
	AvgPins float64
	// Movebounds to generate.
	Movebounds []MoveboundSpec
	Seed       int64
}

// Instance is a generated chip: netlist plus movebounds.
type Instance struct {
	Spec       ChipSpec
	N          *netlist.Netlist
	Movebounds []region.Movebound
	// exclBox confines each exclusive movebound to its own chip tile, so
	// disjointness survives the feasibility growth loop.
	exclBox map[int]geom.Rect
}

// SpecError reports a structurally invalid ChipSpec field.
type SpecError struct {
	// Field is the ChipSpec field name, Reason the constraint it violates.
	Field, Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("gen: invalid ChipSpec.%s: %s", e.Field, e.Reason)
}

// Validate checks the spec for invalid values. Zero values are valid (they
// select the documented defaults).
func (s *ChipSpec) Validate() error {
	if s.NumCells <= 0 {
		return &SpecError{Field: "NumCells", Reason: fmt.Sprintf("must be positive, got %d", s.NumCells)}
	}
	if s.Utilization < 0 || s.Utilization > 1 {
		return &SpecError{Field: "Utilization", Reason: fmt.Sprintf("%g outside (0, 1]", s.Utilization)}
	}
	if s.Aspect < 0 {
		return &SpecError{Field: "Aspect", Reason: fmt.Sprintf("negative aspect ratio %g", s.Aspect)}
	}
	if s.NumMacros < 0 {
		return &SpecError{Field: "NumMacros", Reason: fmt.Sprintf("negative macro count %d", s.NumMacros)}
	}
	if s.PadCount < 0 {
		return &SpecError{Field: "PadCount", Reason: fmt.Sprintf("negative pad count %d", s.PadCount)}
	}
	if s.AvgPins < 0 || (s.AvgPins > 0 && s.AvgPins < 2) {
		return &SpecError{Field: "AvgPins", Reason: fmt.Sprintf("average net size %g below 2 pins", s.AvgPins)}
	}
	for i, mb := range s.Movebounds {
		if mb.CellFraction < 0 || mb.CellFraction > 1 {
			return &SpecError{
				Field:  fmt.Sprintf("Movebounds[%d].CellFraction", i),
				Reason: fmt.Sprintf("%g outside [0, 1]", mb.CellFraction),
			}
		}
		if mb.Density < 0 || mb.Density > 1 {
			return &SpecError{
				Field:  fmt.Sprintf("Movebounds[%d].Density", i),
				Reason: fmt.Sprintf("%g outside [0, 1]", mb.Density),
			}
		}
		if mb.NestedIn >= i {
			return &SpecError{
				Field:  fmt.Sprintf("Movebounds[%d].NestedIn", i),
				Reason: fmt.Sprintf("references movebound %d, must reference an earlier one", mb.NestedIn),
			}
		}
	}
	return nil
}

// Chip generates the instance for a spec.
func Chip(spec ChipSpec) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Utilization == 0 {
		spec.Utilization = 0.55
	}
	if spec.Aspect == 0 {
		spec.Aspect = 1
	}
	if spec.AvgPins == 0 {
		spec.AvgPins = 2.7
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Cell sizes: widths 1..3 units, height = 1 row.
	widths := make([]float64, spec.NumCells)
	totalArea := 0.0
	for i := range widths {
		w := 1.0 + float64(rng.Intn(3))*0.5 // 1, 1.5, 2
		if rng.Intn(20) == 0 {
			w = 3 + 2*rng.Float64() // occasional wide cell
		}
		widths[i] = w
		totalArea += w
	}
	// Macro area joins the area budget.
	macroArea := 0.0
	macroSide := 0.0
	if spec.NumMacros > 0 {
		chipAreaEstimate := totalArea / spec.Utilization
		macroSide = math.Max(2, math.Floor(math.Sqrt(chipAreaEstimate)*0.08))
		macroArea = float64(spec.NumMacros) * macroSide * macroSide
	}
	chipArea := (totalArea + macroArea) / spec.Utilization
	height := math.Ceil(math.Sqrt(chipArea / spec.Aspect))
	width := math.Ceil(chipArea / height)
	chip := geom.Rect{Xlo: 0, Ylo: 0, Xhi: width, Yhi: height}
	n := netlist.New(chip, 1)

	// Ideal positions on a locality grid: cell index -> (gx, gy) cell of
	// a sqrt-ish lattice covering the chip. Nets are drawn between cells
	// close in lattice space, which gives the netlist the local structure
	// real designs have without revealing positions to the placer.
	nx := int(math.Ceil(math.Sqrt(float64(spec.NumCells) * spec.Aspect)))
	if nx < 1 {
		nx = 1
	}
	ny := (spec.NumCells + nx - 1) / nx
	ideal := make([]geom.Point, spec.NumCells)
	for i := 0; i < spec.NumCells; i++ {
		gx, gy := i%nx, i/nx
		ideal[i] = geom.Point{
			X: (float64(gx) + 0.5 + 0.3*rng.NormFloat64()) / float64(nx) * width,
			Y: (float64(gy) + 0.5 + 0.3*rng.NormFloat64()) / float64(ny) * height,
		}
		ideal[i] = chip.ClampPoint(ideal[i])
	}

	for i := 0; i < spec.NumCells; i++ {
		n.AddCell(netlist.Cell{
			Name:      fmt.Sprintf("c%d", i),
			Width:     widths[i],
			Height:    1,
			Movebound: netlist.NoMovebound,
		})
	}

	// Macros: fixed blocks on a coarse lattice, away from the boundary.
	if spec.NumMacros > 0 {
		cols := int(math.Ceil(math.Sqrt(float64(spec.NumMacros))))
		for m := 0; m < spec.NumMacros; m++ {
			fx := width * (float64(m%cols) + 1) / (float64(cols) + 1)
			fy := height * (float64(m/cols) + 1) / (float64(cols) + 1)
			id := n.AddCell(netlist.Cell{
				Name:  fmt.Sprintf("macro%d", m),
				Width: macroSide, Height: macroSide,
				Fixed:     true,
				Movebound: netlist.NoMovebound,
			})
			n.SetPos(id, chip.ClampPoint(geom.Point{X: fx, Y: fy}))
		}
	}

	// Nets: per cell, draw to lattice neighbors; net sizes 2..6 with the
	// requested average.
	numNets := int(float64(spec.NumCells) * 1.15)
	neighbor := func(i int) int {
		for tries := 0; tries < 8; tries++ {
			dx := rng.Intn(5) - 2
			dy := rng.Intn(5) - 2
			j := i + dx + dy*nx
			if j >= 0 && j < spec.NumCells && j != i {
				return j
			}
		}
		return (i + 1) % spec.NumCells
	}
	for e := 0; e < numNets; e++ {
		src := rng.Intn(spec.NumCells)
		pins := []netlist.Pin{{Cell: netlist.CellID(src)}}
		// Degree distribution: mostly 2, tail up to 6; 8% long-range nets.
		deg := 2
		switch r := rng.Float64(); {
		case r < 0.62:
			deg = 2
		case r < 0.82:
			deg = 3
		case r < 0.92:
			deg = 4
		case r < 0.97:
			deg = 5
		default:
			deg = 6
		}
		longRange := rng.Float64() < 0.08
		seen := map[int]bool{src: true}
		for len(pins) < deg {
			var j int
			if longRange {
				j = rng.Intn(spec.NumCells)
			} else {
				j = neighbor(src)
			}
			if seen[j] {
				j = rng.Intn(spec.NumCells)
			}
			if seen[j] {
				break
			}
			seen[j] = true
			pins = append(pins, netlist.Pin{Cell: netlist.CellID(j)})
		}
		if len(pins) >= 2 {
			n.AddNet(netlist.Net{Name: fmt.Sprintf("n%d", e), Pins: pins})
		}
	}
	// Pads on the boundary connected to cells whose ideal position is
	// near that boundary point.
	pads := spec.PadCount
	if pads == 0 {
		pads = int(4 * math.Sqrt(float64(spec.NumCells)))
	}
	for p := 0; p < pads; p++ {
		t := float64(p) / float64(pads) * 4
		var pos geom.Point
		switch int(t) {
		case 0:
			pos = geom.Point{X: (t - 0) * width, Y: 0}
		case 1:
			pos = geom.Point{X: width, Y: (t - 1) * height}
		case 2:
			pos = geom.Point{X: (3 - t) * width, Y: height}
		default:
			pos = geom.Point{X: 0, Y: (4 - t) * height}
		}
		// Nearest-ish cell in ideal space among a sample.
		best, bestD := 0, math.Inf(1)
		for s := 0; s < 24; s++ {
			j := rng.Intn(spec.NumCells)
			if d := ideal[j].DistL1(pos); d < bestD {
				best, bestD = j, d
			}
		}
		n.AddNet(netlist.Net{
			Name: fmt.Sprintf("pad%d", p),
			Pins: []netlist.Pin{{Cell: netlist.CellID(best)}, {Cell: -1, Offset: pos}},
		})
	}

	inst := &Instance{Spec: spec, N: n}
	if err := genMovebounds(inst, ideal, rng); err != nil {
		return nil, err
	}
	if err := n.Validate(len(inst.Movebounds)); err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	return inst, nil
}

// genMovebounds creates movebound areas and assigns cells. Cells are
// assigned by locality (contiguous lattice blocks), so movebound cells are
// connected to each other — like real voltage islands or flattened macros.
func genMovebounds(inst *Instance, ideal []geom.Point, rng *rand.Rand) error {
	spec := inst.Spec
	n := inst.N
	chip := n.Area
	if len(spec.Movebounds) == 0 {
		return nil
	}
	numCells := spec.NumCells
	// Cells are assigned to movebounds as contiguous lattice blocks (so a
	// movebound's cells are strongly connected, like a flattened macro),
	// with block starts strided across the whole index space so the
	// movebounds spread over the chip instead of piling onto one corner.
	stride := numCells / len(spec.Movebounds)
	type placedMB struct {
		rect geom.Rect
	}
	var placed []placedMB
	// Exclusive movebounds get one tile each of a coarse chip grid; they
	// stay inside it forever, which guarantees pairwise disjointness.
	numExcl := 0
	for _, ms := range spec.Movebounds {
		if ms.Kind == region.Exclusive {
			numExcl++
		}
	}
	inst.exclBox = map[int]geom.Rect{}
	exclCols := int(math.Ceil(math.Sqrt(float64(numExcl))))
	exclRows := 0
	if numExcl > 0 {
		exclRows = (numExcl + exclCols - 1) / exclCols
	}
	exclSeen := 0
	for mi, ms := range spec.Movebounds {
		count := int(ms.CellFraction * float64(numCells))
		if count < 1 {
			count = 1
		}
		start := mi * stride
		if count > stride {
			count = stride
		}
		if start+count > numCells {
			count = numCells - start
			if count <= 0 {
				return fmt.Errorf("gen: movebound cell fractions exceed 1")
			}
		}
		cellArea := 0.0
		for i := start; i < start+count; i++ {
			cellArea += n.Cells[i].Size()
		}
		density := ms.Density
		if density == 0 {
			density = 0.7
		}
		area := cellArea / density
		// Shape the area around the centroid of the assigned cells'
		// ideal positions so the movebound does not fight the netlist.
		var cx, cy float64
		for i := start; i < start+count; i++ {
			cx += ideal[i].X
			cy += ideal[i].Y
		}
		cx /= float64(count)
		cy /= float64(count)
		side := math.Sqrt(area)
		w := side * (0.8 + 0.4*rng.Float64())
		h := area / w
		// Minimum extent: regions narrower than a few rows cannot be
		// packed by row-based legalization.
		const minDim = 6.0
		if w < minDim {
			w = minDim
		}
		if h < minDim {
			h = minDim
		}
		var rect geom.Rect
		switch {
		case ms.Kind == region.Exclusive:
			tx, ty := exclSeen%exclCols, exclSeen/exclCols
			exclSeen++
			tile := geom.Rect{
				Xlo: chip.Xlo + chip.Width()*float64(tx)/float64(exclCols),
				Ylo: chip.Ylo + chip.Height()*float64(ty)/float64(exclRows),
				Xhi: chip.Xlo + chip.Width()*float64(tx+1)/float64(exclCols),
				Yhi: chip.Ylo + chip.Height()*float64(ty+1)/float64(exclRows),
			}
			// Keep a margin so neighbors never touch, and snap the tile
			// inward to integers so row-snapped rects stay inside it.
			tile = tile.Expand(-0.04 * math.Min(tile.Width(), tile.Height()))
			tile = geom.Rect{
				Xlo: math.Ceil(tile.Xlo), Ylo: math.Ceil(tile.Ylo),
				Xhi: math.Floor(tile.Xhi), Yhi: math.Floor(tile.Yhi),
			}
			if w > tile.Width()*0.9 {
				w = tile.Width() * 0.9
				h = area / w
			}
			if h > tile.Height()*0.9 {
				h = tile.Height() * 0.9
				w = area / h
			}
			c := tile.Center()
			rect = fitInto(geom.Rect{Xlo: c.X - w/2, Ylo: c.Y - h/2, Xhi: c.X + w/2, Yhi: c.Y + h/2}, tile)
			inst.exclBox[mi] = tile
		case ms.NestedIn >= 0 && ms.NestedIn < len(placed):
			outer := placed[ms.NestedIn].rect
			// Shrink to fit inside the outer rect.
			if w > outer.Width()*0.9 {
				w = outer.Width() * 0.9
				h = area / w
			}
			if h > outer.Height()*0.9 {
				h = outer.Height() * 0.9
				w = area / h
			}
			x0 := outer.Xlo + (outer.Width()-w)*rng.Float64()
			y0 := outer.Ylo + (outer.Height()-h)*rng.Float64()
			rect = geom.Rect{Xlo: x0, Ylo: y0, Xhi: x0 + w, Yhi: y0 + h}
		case ms.Overlap && len(placed) > 0:
			prev := placed[len(placed)-1].rect
			x0 := prev.Xlo + prev.Width()*0.5
			y0 := prev.Ylo + prev.Height()*0.5
			rect = geom.Rect{Xlo: x0, Ylo: y0, Xhi: x0 + w, Yhi: y0 + h}
		default:
			rect = geom.Rect{Xlo: cx - w/2, Ylo: cy - h/2, Xhi: cx + w/2, Yhi: cy + h/2}
		}
		// Keep the rect inside the chip.
		rect = fitInto(rect, chip)
		mbArea := geom.RectSet{rect}
		if ms.LShaped && ms.Kind == region.Inclusive && ms.NestedIn < 0 {
			// Split the budgeted area into two overlapping rectangles
			// forming an L: the vertical bar keeps ~60% of the width, the
			// horizontal bar extends right from the lower part.
			vBar := geom.Rect{Xlo: rect.Xlo, Ylo: rect.Ylo, Xhi: rect.Xlo + rect.Width()*0.6, Yhi: rect.Yhi}
			hBar := geom.Rect{
				Xlo: rect.Xlo, Ylo: rect.Ylo,
				Xhi: rect.Xlo + rect.Width()*1.3, Yhi: rect.Ylo + rect.Height()*0.55,
			}
			mbArea = geom.RectSet{fitInto(vBar, chip), fitInto(hBar, chip)}
			rect = mbArea.BBox()
		}
		placed = append(placed, placedMB{rect: rect})
		inst.Movebounds = append(inst.Movebounds, region.Movebound{
			Name: fmt.Sprintf("mb%d", mi),
			Kind: ms.Kind,
			Area: mbArea,
		})
		for i := start; i < start+count; i++ {
			n.Cells[i].Movebound = mi
		}
	}
	// Movebound blocks hold standard cells only: swap wide cells out of
	// the movebound ranges (wide cells cannot pack into narrow region
	// slivers, and real flattened macros consist of standard cells).
	swapPool := 0
	for i := range inst.N.Cells[:numCells] {
		if inst.N.Cells[i].Movebound == netlist.NoMovebound || inst.N.Cells[i].Width <= 2.5 {
			continue
		}
		for ; swapPool < numCells; swapPool++ {
			cand := &inst.N.Cells[swapPool]
			if cand.Movebound == netlist.NoMovebound && cand.Width <= 2.5 {
				break
			}
		}
		if swapPool < numCells {
			inst.N.Cells[i].Width, inst.N.Cells[swapPool].Width = inst.N.Cells[swapPool].Width, inst.N.Cells[i].Width
			swapPool++
		} else {
			inst.N.Cells[i].Width = 2
		}
	}
	// Exclusive movebounds must not overlap anything else: separate them.
	if err := separateExclusives(inst); err != nil {
		return err
	}
	return repairFeasibility(inst)
}

// repairFeasibility grows movebound areas until the instance passes the
// Theorem-2 feasibility check with headroom (capacities at density 0.90,
// below the 0.97 the experiments run at). Blockage overlap, inclusive
// overlap and nesting all reduce effective capacity in ways the sizing
// heuristic cannot see locally, so this closes the loop with the real
// check.
func repairFeasibility(inst *Instance) error {
	chip := inst.N.Area
	blockages := inst.N.FixedRects()
	nested := make([]int, len(inst.Movebounds))
	for i := range nested {
		nested[i] = -1
		if i < len(inst.Spec.Movebounds) {
			nested[i] = inst.Spec.Movebounds[i].NestedIn
		}
	}
	// Cell area per movebound (fixed; growth only changes areas).
	mbCells := make([]float64, len(inst.Movebounds))
	for i := range inst.N.Cells {
		c := &inst.N.Cells[i]
		if !c.Fixed && c.Movebound != netlist.NoMovebound {
			mbCells[c.Movebound] += c.Size()
		}
	}
	for attempt := 0; attempt < 80; attempt++ {
		snapToRows(inst)
		norm, err := region.Normalize(chip, inst.Movebounds)
		if err == nil {
			d := region.Decompose(chip, norm)
			// Feasibility is checked against *packable* capacity (what
			// row-based legalization can actually use; sliver regions
			// count for much less than their geometric area), with 7%
			// headroom on top.
			caps := legalize.PackableCapacities(inst.N, d, blockages)
			for i := range caps {
				caps[i] *= 0.93
			}
			if rep := region.CheckFeasibility(inst.N, d, caps); rep.Feasible {
				return nil
			}
		}
		// Grow selectively: movebounds whose own cells exceed ~85% of
		// their effective capacity (every 5th attempt, grow everything —
		// subset deficits of overlapping groups are not visible
		// per-movebound). Selective growth keeps exclusive movebounds
		// small enough to stay separable.
		growAll := attempt%5 == 4 || err != nil
		for i := range inst.Movebounds {
			if !growAll {
				capa := effectiveCapacity(inst, i, blockages)
				if mbCells[i] <= 0.85*capa {
					continue
				}
			}
			for ri, r := range inst.Movebounds[i].Area {
				g := r.Expand(0.04 * (r.Width() + r.Height()) / 2)
				g = fitInto(g, chip)
				if box, ok := inst.exclBox[i]; ok {
					g = fitInto(g, box)
				}
				if p := nested[i]; p >= 0 {
					g = g.Intersect(inst.Movebounds[p].Area[0])
					if g.Empty() {
						g = r
					}
				}
				inst.Movebounds[i].Area[ri] = g
			}
		}
		if err := separateExclusives(inst); err != nil {
			return err
		}
	}
	return fmt.Errorf("gen: could not make %q feasible after growing movebounds", inst.Spec.Name)
}

// effectiveCapacity estimates the capacity available to one movebound's
// own cells: its area minus blockages, minus any exclusive areas of other
// movebounds carved out of it.
func effectiveCapacity(inst *Instance, mi int, blockages geom.RectSet) float64 {
	area := inst.Movebounds[mi].Area
	var carve geom.RectSet
	carve = append(carve, blockages...)
	for j := range inst.Movebounds {
		if j != mi && inst.Movebounds[j].Kind == region.Exclusive {
			carve = append(carve, inst.Movebounds[j].Area...)
		}
	}
	total := 0.0
	for _, r := range area {
		free := []geom.Rect{r}
		for _, b := range carve {
			var next []geom.Rect
			for _, f := range free {
				next = append(next, f.Subtract(b)...)
			}
			free = next
		}
		for _, f := range free {
			total += f.Area()
		}
	}
	return total * 0.90
}

// snapToRows expands every movebound rectangle outward to integer (row and
// site) boundaries: row-based legalization can only use full-height row
// segments, so fractional movebound edges would silently lose capacity.
// Outward snapping preserves nesting (monotone) and feasibility.
func snapToRows(inst *Instance) {
	chip := inst.N.Area
	for i := range inst.Movebounds {
		for k, r := range inst.Movebounds[i].Area {
			s := geom.Rect{
				Xlo: math.Floor(r.Xlo), Ylo: math.Floor(r.Ylo),
				Xhi: math.Ceil(r.Xhi), Yhi: math.Ceil(r.Yhi),
			}
			inst.Movebounds[i].Area[k] = s.Intersect(chip)
		}
	}
}

// fitInto translates (and if needed shrinks) r to lie inside the chip.
func fitInto(r geom.Rect, chip geom.Rect) geom.Rect {
	if r.Width() > chip.Width() {
		r.Xlo, r.Xhi = chip.Xlo, chip.Xhi
	}
	if r.Height() > chip.Height() {
		r.Ylo, r.Yhi = chip.Ylo, chip.Yhi
	}
	if r.Xlo < chip.Xlo {
		r = r.Translate(geom.Point{X: chip.Xlo - r.Xlo})
	}
	if r.Xhi > chip.Xhi {
		r = r.Translate(geom.Point{X: chip.Xhi - r.Xhi})
	}
	if r.Ylo < chip.Ylo {
		r = r.Translate(geom.Point{Y: chip.Ylo - r.Ylo})
	}
	if r.Yhi > chip.Yhi {
		r = r.Translate(geom.Point{Y: chip.Yhi - r.Yhi})
	}
	return r
}

// separateExclusives nudges exclusive movebound rectangles until they
// overlap no other movebound (region.Normalize would reject them
// otherwise). Overlapping specs combined with exclusive kinds are the
// "infeasible in the exclusive case" situations of §V; the generator
// resolves them geometrically so exclusive instances stay feasible.
func separateExclusives(inst *Instance) error {
	chip := inst.N.Area
	for i := range inst.Movebounds {
		if inst.Movebounds[i].Kind != region.Exclusive {
			continue
		}
		for attempt := 0; attempt < 200; attempt++ {
			conflict := false
			for j := range inst.Movebounds {
				if i == j {
					continue
				}
				if overlapSets(inst.Movebounds[i].Area, inst.Movebounds[j].Area) {
					conflict = true
					break
				}
			}
			if !conflict {
				break
			}
			// Slide the rect deterministically around the chip.
			r := inst.Movebounds[i].Area[0]
			step := math.Max(1, math.Floor(chip.Width()/40))
			r = r.Translate(geom.Point{X: step})
			if r.Xhi > chip.Xhi {
				r = r.Translate(geom.Point{X: chip.Xlo - r.Xlo, Y: math.Max(1, math.Floor(chip.Height()/40))})
			}
			if r.Yhi > chip.Yhi {
				r = r.Translate(geom.Point{Y: chip.Ylo - r.Ylo})
			}
			inst.Movebounds[i].Area[0] = fitInto(r, chip)
		}
	}
	return nil
}

func overlapSets(a, b geom.RectSet) bool {
	for _, r := range a {
		if b.OverlapsRect(r) {
			return true
		}
	}
	return false
}

// LoadMix returns count chip specs for service load tests: sizes cycle
// through a small/medium ladder, every third instance carries an inclusive
// movebound, and each spec gets a distinct deterministic seed derived from
// seed. The specs are small enough that a worker pool can churn through
// dozens of them in seconds, yet still multi-level.
func LoadMix(count int, seed int64) []ChipSpec {
	sizes := []int{300, 600, 1200, 2000}
	specs := make([]ChipSpec, count)
	for i := range specs {
		specs[i] = ChipSpec{
			Name:     fmt.Sprintf("load-%03d", i),
			NumCells: sizes[i%len(sizes)],
			Seed:     seed + int64(i)*7919,
		}
		if i%3 == 2 {
			specs[i].Movebounds = []MoveboundSpec{{
				Kind: region.Inclusive, CellFraction: 0.2, Density: 0.8, NestedIn: -1,
			}}
		}
	}
	return specs
}

// SoakMix is the chaos-soak variant of LoadMix: smaller instances at
// higher variety (soaks run many jobs under tight budgets and fault
// injection), with every seventh spec repeating an earlier one verbatim
// (cache and single-flight traffic) and every ninth an oversized
// instance that admission control should reject under a tight memory
// budget rather than let it crush the process.
func SoakMix(count int, seed int64) []ChipSpec {
	sizes := []int{300, 450, 700, 1000, 1400}
	specs := make([]ChipSpec, count)
	for i := range specs {
		k := i
		if i%7 == 6 && i >= 3 {
			k = i - 3 // verbatim duplicate of a recent spec
		}
		specs[i] = ChipSpec{
			Name:     fmt.Sprintf("soak-%03d", k),
			NumCells: sizes[k%len(sizes)],
			Seed:     seed + int64(k)*7919,
		}
		if k%4 == 1 {
			specs[i].Movebounds = []MoveboundSpec{{
				Kind: region.Inclusive, CellFraction: 0.2, Density: 0.8, NestedIn: -1,
			}}
		}
		if i%9 == 4 {
			// Over-budget bait: far past any sane soak budget, so the run
			// exercises the structured rejection path, not the placer.
			specs[i] = ChipSpec{
				Name:     fmt.Sprintf("soak-big-%03d", i),
				NumCells: 60000,
				Seed:     seed + int64(i)*7919,
			}
		}
	}
	return specs
}
