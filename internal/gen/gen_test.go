package gen

import (
	"errors"
	"math"
	"testing"

	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

func TestChipBasics(t *testing.T) {
	inst, err := Chip(ChipSpec{Name: "t", NumCells: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := inst.N
	if n.NumCells() != 500 {
		t.Fatalf("cells = %d", n.NumCells())
	}
	if n.NumNets() < 500 {
		t.Fatalf("nets = %d, want >= cells", n.NumNets())
	}
	// Utilization near the default 0.55.
	util := n.TotalMovableArea() / n.Area.Area()
	if util < 0.4 || util > 0.7 {
		t.Fatalf("utilization = %g", util)
	}
	if err := n.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestChipDeterministic(t *testing.T) {
	a, err := Chip(ChipSpec{Name: "t", NumCells: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chip(ChipSpec{Name: "t", NumCells: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.N.NumNets() != b.N.NumNets() {
		t.Fatalf("net counts differ: %d vs %d", a.N.NumNets(), b.N.NumNets())
	}
	for i := range a.N.Cells {
		if a.N.Cells[i].Width != b.N.Cells[i].Width {
			t.Fatalf("cell %d width differs", i)
		}
	}
	c, err := Chip(ChipSpec{Name: "t", NumCells: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.N.Cells {
		if a.N.Cells[i].Width == c.N.Cells[i].Width {
			same++
		}
	}
	if same == 300 {
		t.Fatal("different seeds produced identical cells")
	}
}

func TestChipWithMacros(t *testing.T) {
	inst, err := Chip(ChipSpec{Name: "t", NumCells: 400, NumMacros: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for i := range inst.N.Cells {
		if inst.N.Cells[i].Fixed {
			fixed++
			if !inst.N.Area.ContainsRect(inst.N.CellRect(netlist.CellID(i))) {
				t.Fatalf("macro %d outside chip", i)
			}
		}
	}
	if fixed != 4 {
		t.Fatalf("fixed cells = %d, want 4", fixed)
	}
}

func TestChipMovebounds(t *testing.T) {
	inst, err := Chip(ChipSpec{
		Name: "t", NumCells: 600, Seed: 3,
		Movebounds: []MoveboundSpec{
			{Kind: region.Inclusive, CellFraction: 0.2, Density: 0.7, NestedIn: -1},
			{Kind: region.Inclusive, CellFraction: 0.1, Density: 0.6, NestedIn: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Movebounds) != 2 {
		t.Fatalf("movebounds = %d", len(inst.Movebounds))
	}
	counts := make([]int, 2)
	areas := make([]float64, 2)
	for i := range inst.N.Cells {
		if mb := inst.N.Cells[i].Movebound; mb != netlist.NoMovebound {
			counts[mb]++
			areas[mb] += inst.N.Cells[i].Size()
		}
	}
	if counts[0] < 100 || counts[1] < 50 {
		t.Fatalf("movebound cell counts = %v", counts)
	}
	// Density target respected: cell area <= density * area.
	for m := range inst.Movebounds {
		a := inst.Movebounds[m].Area.Area()
		if areas[m] > a*0.95 {
			t.Fatalf("movebound %d too dense: %g cells in %g area", m, areas[m], a)
		}
	}
	// Nested movebound inside its parent.
	if !inst.Movebounds[0].Area.ContainsRect(inst.Movebounds[1].Area[0]) {
		t.Fatalf("nested movebound not contained: %v in %v", inst.Movebounds[1].Area, inst.Movebounds[0].Area)
	}
	// The whole instance must be feasible.
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		t.Fatal(err)
	}
	d := region.Decompose(inst.N.Area, norm)
	caps := d.Capacities(inst.N.FixedRects(), 0.97)
	if rep := region.CheckFeasibility(inst.N, d, caps); !rep.Feasible {
		t.Fatalf("generated instance infeasible: %+v", rep)
	}
}

func TestChipExclusiveMoveboundsSeparated(t *testing.T) {
	inst, err := Chip(ChipSpec{
		Name: "t", NumCells: 800, Seed: 4,
		Movebounds: []MoveboundSpec{
			{Kind: region.Exclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
			{Kind: region.Exclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
			{Kind: region.Inclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Normalize must accept (exclusive bounds disjoint from everything).
	if _, err := region.Normalize(inst.N.Area, inst.Movebounds); err != nil {
		t.Fatalf("exclusive movebounds not separated: %v", err)
	}
}

func TestTableIIChips(t *testing.T) {
	specs := TableIIChips(0.01, 0)
	if len(specs) != 21 {
		t.Fatalf("specs = %d, want 21", len(specs))
	}
	if specs[0].Name != "Dagmar" || specs[20].Name != "Erik" {
		t.Fatalf("order wrong: %s .. %s", specs[0].Name, specs[20].Name)
	}
	// Scaled counts keep the ordering.
	for i := 1; i < len(specs); i++ {
		if specs[i].NumCells < specs[i-1].NumCells {
			t.Fatalf("cell counts not monotone at %s", specs[i].Name)
		}
	}
	if specs[0].NumCells != 2000 { // floor applies at 1% of 50k
		t.Fatalf("Dagmar scaled = %d", specs[0].NumCells)
	}
}

func TestTableIIIChips(t *testing.T) {
	incl := TableIIIChips(0.01, region.Inclusive)
	if len(incl) != 8 {
		t.Fatalf("inclusive specs = %d, want 8", len(incl))
	}
	excl := TableIIIChips(0.01, region.Exclusive)
	if len(excl) != 5 {
		t.Fatalf("exclusive specs = %d, want 5 (Table V)", len(excl))
	}
	for _, s := range excl {
		for _, mb := range s.Movebounds {
			if mb.Kind != region.Exclusive {
				t.Fatalf("%s has non-exclusive movebound", s.Name)
			}
			if mb.Overlap || mb.NestedIn >= 0 {
				t.Fatalf("%s exclusive spec requests overlap/nesting", s.Name)
			}
		}
	}
	// All Table III instances must generate and be feasible.
	for _, s := range incl[:3] {
		s.NumCells = 2000
		inst, err := Chip(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		d := region.Decompose(inst.N.Area, norm)
		caps := d.Capacities(inst.N.FixedRects(), 0.97)
		if rep := region.CheckFeasibility(inst.N, d, caps); !rep.Feasible {
			t.Fatalf("%s infeasible: %+v", s.Name, rep)
		}
	}
}

func TestISPDChips(t *testing.T) {
	specs := ISPDChips(0.01)
	if len(specs) != 8 {
		t.Fatalf("specs = %d", len(specs))
	}
	if _, err := ISPDTargetDensity("newblue3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ISPDTargetDensity("nope"); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestTableIIIRemark(t *testing.T) {
	cases := map[string]string{
		"Rabe": "", "Ashraf": "(F)", "Tomoku": "(O)(F)", "Trips": "(O)",
	}
	for name, want := range cases {
		if got := TableIIIRemark(name); got != want {
			t.Errorf("remark(%s) = %q, want %q", name, got, want)
		}
	}
}

func TestGridLevels(t *testing.T) {
	levels := GridLevels(100_000)
	if len(levels) == 0 || levels[0] != 4 {
		t.Fatalf("levels = %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] != levels[i-1]*2 {
			t.Fatalf("levels not doubling: %v", levels)
		}
	}
	last := levels[len(levels)-1]
	if last*last > 100_000/4 {
		t.Fatalf("finest grid too fine: %v", levels)
	}
}

func TestScaleCellsFloor(t *testing.T) {
	if got := scaleCells(50_000, 0.001); got != 2000 {
		t.Fatalf("scaleCells = %d", got)
	}
	if got := scaleCells(1_000_000, 0.01); got != 10_000 {
		t.Fatalf("scaleCells = %d", got)
	}
}

func TestErhardLike(t *testing.T) {
	s := ErhardLike(0.005)
	if s.Name != "Erhard" {
		t.Fatalf("name = %s", s.Name)
	}
	if len(s.Movebounds) == 0 {
		t.Fatal("Erhard spec has no movebounds")
	}
	if math.Abs(float64(s.NumCells)-2578246*0.005) > 2 {
		t.Fatalf("NumCells = %d", s.NumCells)
	}
}

func TestChipLShapedMovebound(t *testing.T) {
	inst, err := Chip(ChipSpec{
		Name: "L", NumCells: 800, Seed: 12,
		Movebounds: []MoveboundSpec{
			{Kind: region.Inclusive, CellFraction: 0.2, Density: 0.6, NestedIn: -1, LShaped: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	area := inst.Movebounds[0].Area
	if len(area) != 2 {
		t.Fatalf("L-shaped area has %d rects, want 2", len(area))
	}
	// Non-convex: the union area is strictly below the bounding box area.
	if area.Area() >= area.BBox().Area()-1e-9 {
		t.Fatalf("area %v is convex (union %.1f, bbox %.1f)", area, area.Area(), area.BBox().Area())
	}
	// Still feasible end to end.
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		t.Fatal(err)
	}
	d := region.Decompose(inst.N.Area, norm)
	caps := d.Capacities(inst.N.FixedRects(), 0.97)
	if rep := region.CheckFeasibility(inst.N, d, caps); !rep.Feasible {
		t.Fatalf("L-shaped instance infeasible: %+v", rep)
	}
}

func TestChipSpecValidate(t *testing.T) {
	valid := func() ChipSpec {
		return ChipSpec{Name: "v", NumCells: 100, Seed: 1}
	}
	cases := []struct {
		name   string
		break_ func(*ChipSpec)
		field  string
	}{
		{"no cells", func(s *ChipSpec) { s.NumCells = 0 }, "NumCells"},
		{"negative utilization", func(s *ChipSpec) { s.Utilization = -0.1 }, "Utilization"},
		{"utilization above 1", func(s *ChipSpec) { s.Utilization = 1.5 }, "Utilization"},
		{"negative aspect", func(s *ChipSpec) { s.Aspect = -2 }, "Aspect"},
		{"negative macros", func(s *ChipSpec) { s.NumMacros = -1 }, "NumMacros"},
		{"negative pads", func(s *ChipSpec) { s.PadCount = -4 }, "PadCount"},
		{"one-pin nets", func(s *ChipSpec) { s.AvgPins = 1 }, "AvgPins"},
		{"movebound fraction above 1", func(s *ChipSpec) {
			s.Movebounds = []MoveboundSpec{{Kind: region.Inclusive, CellFraction: 1.2, NestedIn: -1}}
		}, "Movebounds[0].CellFraction"},
		{"movebound density above 1", func(s *ChipSpec) {
			s.Movebounds = []MoveboundSpec{{Kind: region.Inclusive, CellFraction: 0.2, Density: 2, NestedIn: -1}}
		}, "Movebounds[0].Density"},
		{"forward nesting reference", func(s *ChipSpec) {
			s.Movebounds = []MoveboundSpec{{Kind: region.Inclusive, CellFraction: 0.2, NestedIn: 3}}
		}, "Movebounds[0].NestedIn"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.break_(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *SpecError: %v", err, err)
			}
			if se.Field != tc.field {
				t.Fatalf("flagged field %q, want %q", se.Field, tc.field)
			}
			if _, err := Chip(spec); err == nil {
				t.Fatal("Chip accepted the invalid spec")
			}
		})
	}
	spec := valid()
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
