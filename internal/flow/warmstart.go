package flow

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Basis is an exportable network-simplex basis: the spanning-tree
// structure and arc states of a completed SolveNS/SolveNSWarm run,
// together with a structural signature of the instance it was taken from.
// A Basis deliberately stores no potentials and no flows — both are exact
// functions of the tree once the current costs and supplies are known, so
// a warm start recomputes them (potentials by a DFS from the root, flows
// leaf-to-root from the new imbalances) instead of trusting stale copies.
// That is what makes a basis reusable across re-solves whose costs,
// capacities or supplies changed, as long as the arc structure (node
// count, arc endpoints, arc order) is identical.
//
// Export with MinCostFlow.ExportBasis after a solve; feed into
// MinCostFlow.SolveNSWarm. A basis that does not fit the new instance is
// rejected (signature or bound check) and the solve falls back to a cold
// start, so warm starting is never a correctness risk — only a head start.
type Basis struct {
	sig      uint64 // structural signature of the instance arcs (dummy + real)
	numNodes int
	baseArcs int // arcs of the instance proper; artificial arcs follow

	// Artificial root arcs as laid out by the originating solve. Their
	// direction encodes the sign of the historical imbalances; a warm
	// start re-adds them verbatim and lets flow revalidation (and, if
	// necessary, pivoting) absorb any sign changes.
	artFrom, artTo []int32

	state   []int8 // all arcs, base + artificial
	parent  []int32
	predArc []int32
	predUp  []bool

	// pivots carries the cumulative pivot count of the warm-start chain,
	// so observability reports the total effort spent on the instance
	// family. The stall cap of the pivot loop counts pivots since entry,
	// never this carried total (see netSimplex.run).
	pivots int
}

// Signature returns the structural signature of the instance the basis
// was exported from. Callers may use it to key basis caches; SolveNSWarm
// re-checks it internally, so a stale cache entry degrades to a cold
// start rather than a wrong result.
func (b *Basis) Signature() uint64 { return b.sig }

// Pivots returns the cumulative pivot count of the warm-start chain that
// produced this basis.
func (b *Basis) Pivots() int { return b.pivots }

// signature hashes the structural identity of the instance arcs added so
// far (node count plus every arc's endpoints, in order). Costs and
// capacities are deliberately excluded: a warm start recomputes
// potentials from the current costs and revalidates flows against the
// current capacities, so only the structure must match.
func (ns *netSimplex) signature() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(ns.numNodes))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(len(ns.from)))
	_, _ = h.Write(buf[:])
	for i := range ns.from {
		binary.LittleEndian.PutUint32(buf[:4], uint32(ns.from[i]))
		binary.LittleEndian.PutUint32(buf[4:], uint32(ns.to[i]))
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// exportBasis snapshots the current tree into a self-contained Basis.
func (ns *netSimplex) exportBasis(sig uint64) *Basis {
	b := &Basis{
		sig:      sig,
		numNodes: ns.numNodes,
		baseArcs: len(ns.from) - len(ns.artificial),
		state:    append([]int8(nil), ns.state...),
		parent:   append([]int32(nil), ns.parent...),
		predArc:  append([]int32(nil), ns.predArc...),
		predUp:   append([]bool(nil), ns.predUp...),
		pivots:   ns.pivots,
	}
	b.artFrom = make([]int32, len(ns.artificial))
	b.artTo = make([]int32, len(ns.artificial))
	for i, ai := range ns.artificial {
		b.artFrom[i] = ns.from[ai]
		b.artTo[i] = ns.to[ai]
	}
	return b
}

// coldInit builds the classic all-artificial starting tree: every node
// hangs off the root through a big-M arc oriented by the sign of its
// imbalance, which carries exactly that imbalance.
func (ns *netSimplex) coldInit(b []float64, root int, maxCost float64) {
	nn := ns.numNodes
	bigM := (maxCost + 1) * float64(nn)
	ns.parent = make([]int32, nn)
	ns.predArc = make([]int32, nn)
	ns.predUp = make([]bool, nn)
	ns.children = make([][]int32, nn)
	ns.pi = make([]float64, nn)
	ns.depth = make([]int32, nn)
	for v := 0; v < nn; v++ {
		if v == root {
			ns.parent[v] = -1
			ns.predArc[v] = -1
			continue
		}
		var ai int
		if b[v] >= 0 {
			ai = ns.addArc(v, root, Inf, bigM)
			ns.flow[ai] = b[v]
			ns.predUp[v] = true
			ns.pi[v] = -bigM
		} else {
			ai = ns.addArc(root, v, Inf, bigM)
			ns.flow[ai] = -b[v]
			ns.predUp[v] = false
			ns.pi[v] = bigM
		}
		ns.state[ai] = stateTree
		ns.artificial = append(ns.artificial, ai)
		ns.parent[v] = int32(root)
		ns.predArc[v] = int32(ai)
		ns.children[root] = append(ns.children[root], int32(v))
		ns.depth[v] = 1
	}
}

// warmInit tries to restore a previously exported basis onto the freshly
// built instance arcs (which must match the basis structurally; the
// caller checked the signature). It re-adds the recorded artificial arcs,
// restores the tree, recomputes the tree flows leaf-to-root from the new
// imbalances and the potentials root-down from the new costs, and
// verifies every flow lies within the current capacity bounds. Any
// violation reports false with the netSimplex left ready for a cold init
// (the appended artificial arcs are truncated away).
func (ns *netSimplex) warmInit(basis *Basis, b []float64, root int, maxCost float64) bool {
	nn := ns.numNodes
	base := len(ns.from)
	if basis.numNodes != nn || basis.baseArcs != base ||
		len(basis.state) != base+len(basis.artFrom) ||
		len(basis.parent) != nn || len(basis.predArc) != nn || len(basis.predUp) != nn {
		return false
	}
	bigM := (maxCost + 1) * float64(nn)
	for i := range basis.artFrom {
		ai := ns.addArc(int(basis.artFrom[i]), int(basis.artTo[i]), Inf, bigM)
		ns.artificial = append(ns.artificial, ai)
	}
	undo := func() bool {
		m := base
		ns.from = ns.from[:m]
		ns.to = ns.to[:m]
		ns.cap = ns.cap[:m]
		ns.cost = ns.cost[:m]
		ns.flow = ns.flow[:m]
		ns.state = ns.state[:m]
		ns.artificial = ns.artificial[:0]
		// The state/flow of the base arcs may already have been overwritten
		// from the basis; restore the fresh-build values (all arcs nonbasic
		// at their lower bound, zero flow) so the cold init that follows
		// starts from a clean instance, not a half-restored one.
		for ai := 0; ai < m; ai++ {
			ns.state[ai] = stateLower
			ns.flow[ai] = 0
		}
		return false
	}
	m := len(ns.from)
	// Restore states and tree arrays.
	copy(ns.state, basis.state)
	ns.parent = append(ns.parent[:0], basis.parent...)
	ns.predArc = append(ns.predArc[:0], basis.predArc...)
	ns.predUp = append(ns.predUp[:0], basis.predUp...)
	if ns.children == nil {
		ns.children = make([][]int32, nn)
	}
	for v := range ns.children {
		ns.children[v] = ns.children[v][:0]
	}
	ns.pi = make([]float64, nn)
	ns.depth = make([]int32, nn)
	// Structural sanity: every non-root node's pred arc must connect the
	// node to its parent with a matching direction flag.
	for v := 0; v < nn; v++ {
		if v == root {
			if ns.parent[v] != -1 {
				return undo()
			}
			continue
		}
		p, ai := ns.parent[v], ns.predArc[v]
		if p < 0 || int(p) >= nn || ai < 0 || int(ai) >= m || ns.state[ai] != stateTree {
			if warmDebug != nil {
				warmDebug("reject: node %d pred %d arc %d", v, p, ai)
			}
			return undo()
		}
		if ns.predUp[v] {
			if ns.from[ai] != int32(v) || ns.to[ai] != p {
				return undo()
			}
		} else {
			if ns.from[ai] != p || ns.to[ai] != int32(v) {
				return undo()
			}
		}
		ns.children[p] = append(ns.children[p], int32(v))
	}
	// Depths and potentials by DFS from the root; also verifies the
	// parent arrays form one tree spanning all nodes.
	visited := 1
	stack := []int32{int32(root)}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range ns.children[x] {
			ai := ns.predArc[c]
			if ns.predUp[c] {
				ns.pi[c] = ns.pi[x] - ns.cost[ai]
			} else {
				ns.pi[c] = ns.pi[x] + ns.cost[ai]
			}
			ns.depth[c] = ns.depth[x] + 1
			visited++
			stack = append(stack, c)
		}
	}
	if visited != nn {
		return undo()
	}
	// Flows: nonbasic arcs sit at their bound; tree arcs absorb the rest,
	// computed leaf-to-root from the new imbalances.
	req := make([]float64, nn)
	copy(req, b)
	for ai := 0; ai < m; ai++ {
		switch ns.state[ai] {
		case stateLower:
			ns.flow[ai] = 0
		case stateUpper:
			if math.IsInf(ns.cap[ai], 1) {
				if warmDebug != nil {
					warmDebug("reject: inf-cap upper arc %d", ai)
				}
				return undo() // an uncapacitated arc cannot sit at its upper bound
			}
			f := ns.cap[ai]
			ns.flow[ai] = f
			req[ns.from[ai]] -= f
			req[ns.to[ai]] += f
		}
	}
	// Nodes in decreasing depth (counting sort: depths are < nn).
	order := make([]int32, 0, nn)
	buckets := make([][]int32, nn)
	maxDepth := int32(0)
	for v := 0; v < nn; v++ {
		d := ns.depth[v]
		buckets[d] = append(buckets[d], int32(v))
		if d > maxDepth {
			maxDepth = d
		}
	}
	for d := maxDepth; d >= 1; d-- {
		order = append(order, buckets[d]...)
	}
	// Map node -> its artificial arc (one per non-root node, connecting it
	// to the root), needed when a tree flow comes out infeasible below.
	artOf := make([]int32, nn)
	for v := range artOf {
		artOf[v] = -1
	}
	for _, ai := range ns.artificial {
		v := ns.from[ai]
		if int(v) == root {
			v = ns.to[ai]
		}
		artOf[v] = int32(ai)
	}
	tol := Eps
	repaired := false
	for _, v := range order {
		r := req[v]
		ai := ns.predArc[v]
		f := r
		if !ns.predUp[v] {
			f = -r
		}
		if f >= -tol && f <= ns.cap[ai]+tol {
			if f < 0 {
				f = 0
			}
			if f > ns.cap[ai] {
				f = ns.cap[ai]
			}
			ns.flow[ai] = f
			req[ns.parent[v]] += r
			continue
		}
		// The unique tree flow violates a bound on v's pred arc (the new
		// imbalances flipped a sign or outgrew a capacity). Repair instead
		// of rejecting: pin the arc at its violated bound, cut it from the
		// tree, and re-hang v's subtree at the root through v's big-M
		// artificial arc, re-oriented to carry the residual. The start is
		// feasible-but-expensive (phase-1 style); pivots drain the big-M
		// flow exactly as they drain a cold start's.
		art := artOf[v]
		if art < 0 || (ns.state[art] == stateTree && art != ai) {
			if warmDebug != nil {
				warmDebug("reject: node %d has no usable artificial arc", v)
			}
			return undo()
		}
		var fc float64
		if f < 0 {
			ns.state[ai] = stateLower
			fc = 0
		} else {
			ns.state[ai] = stateUpper
			fc = ns.cap[ai]
		}
		ns.flow[ai] = fc
		rc := fc
		if !ns.predUp[v] {
			rc = -fc
		}
		req[ns.parent[v]] += rc
		d := r - rc
		if d >= 0 {
			ns.from[art], ns.to[art] = int32(v), int32(root)
			ns.predUp[v] = true
			ns.flow[art] = d
		} else {
			ns.from[art], ns.to[art] = int32(root), int32(v)
			ns.predUp[v] = false
			ns.flow[art] = -d
		}
		ns.state[art] = stateTree
		ns.parent[v] = int32(root)
		ns.predArc[v] = art
		req[root] += d
		repaired = true
	}
	if req[root] > 1e-6 || req[root] < -1e-6 {
		if warmDebug != nil {
			warmDebug("reject: root residual %g", req[root])
		}
		return undo()
	}
	if repaired {
		// Re-hung subtrees changed parents, arc orientations, depths and
		// potentials; rebuild them all from the repaired parent arrays.
		for v := range ns.children {
			ns.children[v] = ns.children[v][:0]
		}
		for v := 0; v < nn; v++ {
			if v != root {
				ns.children[ns.parent[v]] = append(ns.children[ns.parent[v]], int32(v))
			}
		}
		ns.pi[root] = 0
		ns.depth[root] = 0
		stack = stack[:0]
		stack = append(stack, int32(root))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range ns.children[x] {
				ai := ns.predArc[c]
				if ns.predUp[c] {
					ns.pi[c] = ns.pi[x] - ns.cost[ai]
				} else {
					ns.pi[c] = ns.pi[x] + ns.cost[ai]
				}
				ns.depth[c] = ns.depth[x] + 1
				stack = append(stack, c)
			}
		}
	}
	ns.pivots = basis.pivots
	return true
}

// warmDebug, when set, traces warm-start rejections (tests only).
var warmDebug func(format string, args ...interface{})
