package flow

import (
	"context"
	"fmt"
	"math"

	"fbplace/internal/faultsim"
)

// nsFault forces the network simplex to report a stall, driving the
// NS -> successive-shortest-paths fallback of internal/fbp.
var nsFault = faultsim.Register("flow.ns.stall",
	"network simplex reports ErrStalled during the pivot loop")

// ErrStalled is returned by SolveNS when the pivot loop exceeds its cap
// without reaching optimality (cycling or injected stall). The instance is
// NOT known to be infeasible; callers should fall back to the successive
// shortest path solver (Solve), which terminates unconditionally.
type ErrStalled struct {
	// Pivots is the number of pivots performed before giving up.
	Pivots int
}

func (e *ErrStalled) Error() string {
	return fmt.Sprintf("flow: network simplex stalled after %d pivots", e.Pivots)
}

// SolveNS solves the same minimum-cost flow problem as Solve with a
// (sequential) network simplex — the algorithm the paper reports using for
// the FBP MinCostFlow ("computed by a (sequential) NetworkSimplex"). On
// the large grid models of Table I it is orders of magnitude faster than
// successive shortest paths: the zero-cost transit mesh that makes
// Dijkstra-based augmentation churn is handled by plain tree pivots.
//
// Like Solve, it routes all supply (demands may stay unfilled) and returns
// *ErrInfeasible when some supply cannot reach remaining demand. After a
// successful run Flow(id) reports the arc flows.
func (g *MinCostFlow) SolveNS() (float64, error) {
	if g.buildErr != nil {
		return 0, g.buildErr
	}
	n := len(g.adj)
	// Balance the instance: total supply S must equal total demand D.
	// D >= S is the normal case (capacity exceeds cell area): a dummy
	// supply node feeds the leftover demand at zero cost. S > D is
	// impossible to satisfy; route what fits and report infeasible.
	totalSupply, totalDemand := 0.0, 0.0
	for v := 0; v < n; v++ {
		if b := g.supply[v]; b > Eps {
			totalSupply += b
		} else if b < -Eps {
			totalDemand += -b
		}
	}
	ns := &netSimplex{}
	numNodes := n + 2 // + dummy balancer + artificial root
	dummy := n
	root := n + 1
	ns.init(numNodes)
	b := make([]float64, numNodes)
	for v := 0; v < n; v++ {
		b[v] = g.supply[v]
	}
	var dummyArcs []int
	if totalDemand >= totalSupply {
		b[dummy] = totalDemand - totalSupply
		for v := 0; v < n; v++ {
			if g.supply[v] < -Eps {
				ns.addArc(dummy, v, -g.supply[v], 0)
			}
		}
	} else {
		// More supply than demand: the instance cannot route everything.
		// The dummy absorbs the excess at a cost just above any real
		// path, so the simplex still routes as much real flow as possible
		// and the absorbed amount is reported as unrouted below.
		b[dummy] = -(totalSupply - totalDemand)
		spill := (g.maxCost + 1) * float64(n)
		for v := 0; v < n; v++ {
			if g.supply[v] > Eps {
				dummyArcs = append(dummyArcs, ns.addArc(v, dummy, g.supply[v], spill))
			}
		}
	}
	// Real arcs (forward arcs as added by AddArc; adj holds residuals but
	// nothing has been routed yet, so cap is the original capacity).
	realArc := make([]int, len(g.arcPos))
	for id, p := range g.arcPos {
		a := &g.adj[p[0]][p[1]]
		realArc[id] = ns.addArc(int(p[0]), int(a.to), a.cap, a.cost)
	}
	err := ns.run(g.Ctx, b, root, g.maxCost)
	g.Pivots = ns.pivots
	g.Obs.Count("ns.pivots", float64(ns.pivots))
	if err != nil {
		return 0, err
	}
	// Infeasibility: artificial root arcs still carrying flow, plus any
	// excess supply the dummy had to absorb. Artificial flows pair up
	// (stranded supply x -> root matches unmet demand root -> y), so only
	// the supply side is counted; the dummy's own artificial arc carries
	// bookkeeping flow, not real supply.
	unrouted := 0.0
	for _, ai := range ns.artificial {
		if int(ns.to[ai]) == root && int(ns.from[ai]) != dummy {
			unrouted += ns.flow[ai]
		}
	}
	for _, ai := range dummyArcs {
		unrouted += ns.flow[ai]
	}
	// Write flows back into the residual structure so Flow(id) works.
	totalCost := 0.0
	for id, p := range g.arcPos {
		f := ns.flow[realArc[id]]
		a := &g.adj[p[0]][p[1]]
		a.cap -= f
		g.adj[a.to][a.rev].cap += f
		if !math.IsInf(a.cost, 1) {
			totalCost += f * a.cost
		}
	}
	if unrouted > 1e-6*math.Max(1, totalSupply) {
		return totalCost, &ErrInfeasible{Unrouted: unrouted}
	}
	return totalCost, nil
}

// Arc states of the simplex.
const (
	stateLower = iota
	stateTree
	stateUpper
)

// netSimplex is a primal network simplex over a spanning tree rooted at an
// artificial root. Tree connectivity is kept in parent/children form; each
// pivot re-hangs one subtree and refreshes its potentials by DFS.
type netSimplex struct {
	from, to []int32
	cap      []float64
	cost     []float64
	flow     []float64
	state    []int8

	parent   []int32 // tree parent
	predArc  []int32 // arc connecting v to parent
	predUp   []bool  // true when the arc is directed v -> parent
	children [][]int32
	pi       []float64 // node potentials

	artificial []int // arc ids of the root arcs
	numNodes   int
	pivots     int // pivots performed by run
}

func (ns *netSimplex) init(numNodes int) {
	ns.numNodes = numNodes
}

func (ns *netSimplex) addArc(u, v int, capacity, cost float64) int {
	ns.from = append(ns.from, int32(u))
	ns.to = append(ns.to, int32(v))
	ns.cap = append(ns.cap, capacity)
	ns.cost = append(ns.cost, cost)
	ns.flow = append(ns.flow, 0)
	ns.state = append(ns.state, stateLower)
	return len(ns.from) - 1
}

// run executes the simplex; b is the (balanced) imbalance vector including
// the dummy node; root is the artificial root index. A non-nil ctx is
// polled periodically and aborts the run with the context's error.
func (ns *netSimplex) run(ctx context.Context, b []float64, root int, maxCost float64) error {
	nn := ns.numNodes
	// Artificial arcs with big-M cost form the initial feasible tree.
	bigM := (maxCost + 1) * float64(nn)
	ns.parent = make([]int32, nn)
	ns.predArc = make([]int32, nn)
	ns.predUp = make([]bool, nn)
	ns.children = make([][]int32, nn)
	ns.pi = make([]float64, nn)
	for v := 0; v < nn; v++ {
		if v == root {
			ns.parent[v] = -1
			ns.predArc[v] = -1
			continue
		}
		var ai int
		if b[v] >= 0 {
			ai = ns.addArc(v, root, Inf, bigM)
			ns.flow[ai] = b[v]
			ns.predUp[v] = true
			ns.pi[v] = -bigM
		} else {
			ai = ns.addArc(root, v, Inf, bigM)
			ns.flow[ai] = -b[v]
			ns.predUp[v] = false
			ns.pi[v] = bigM
		}
		ns.state[ai] = stateTree
		ns.artificial = append(ns.artificial, ai)
		ns.parent[v] = int32(root)
		ns.predArc[v] = int32(ai)
		ns.children[root] = append(ns.children[root], int32(v))
	}
	depth := make([]int32, nn)
	for _, c := range ns.children[root] {
		depth[c] = 1
	}

	m := len(ns.from)
	block := int(math.Sqrt(float64(m))) + 1
	scan := 0
	maxPivots := 200*m + 10000
	for pivot := 0; ; pivot++ {
		if pivot > maxPivots {
			// Cycling guard. This is a solver stall, not an infeasibility
			// certificate: callers fall back to successive shortest paths.
			return &ErrStalled{Pivots: ns.pivots}
		}
		if pivot&1023 == 0 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := nsFault.Check(); err != nil {
				return &ErrStalled{Pivots: ns.pivots}
			}
		}
		// Block search for the entering arc.
		enter := -1
		bestViol := Eps * (1 + maxCost)
		scanned := 0
		for scanned < m {
			end := scan + block
			if end > m {
				end = m
			}
			for ai := scan; ai < end; ai++ {
				if ns.state[ai] == stateTree {
					continue
				}
				rc := ns.cost[ai] + ns.pi[ns.from[ai]] - ns.pi[ns.to[ai]]
				var viol float64
				if ns.state[ai] == stateLower {
					viol = -rc
				} else {
					viol = rc
				}
				if viol > bestViol {
					bestViol = viol
					enter = ai
				}
			}
			scanned += end - scan
			scan = end
			if scan >= m {
				scan = 0
			}
			if enter >= 0 {
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		ns.pivot(enter, depth)
		ns.pivots++
		if nsDebugCheck != nil {
			nsDebugCheck(ns, b, pivot)
		}
	}
	return nil
}

// residual returns how much flow can be pushed through tree arc ai in the
// direction "down-to-up == up" (true pushes from the arc's from-side).
func (ns *netSimplex) residualDir(ai int32, forward bool) float64 {
	if forward {
		return ns.cap[ai] - ns.flow[ai]
	}
	return ns.flow[ai]
}

// pivot performs one simplex pivot with the given entering arc.
func (ns *netSimplex) pivot(enter int, depth []int32) {
	u, v := ns.from[enter], ns.to[enter]
	// Push direction along the entering arc: lower -> forward (u to v),
	// upper -> backward (v to u).
	forward := ns.state[enter] == stateLower
	src, dst := u, v
	if !forward {
		src, dst = v, u
	}
	// Walk both endpoints up to the join, recording the bottleneck.
	delta := ns.residualDir(int32(enter), forward)
	// Leaving arc bookkeeping: -1 = entering arc itself (state toggle).
	leaveNode := int32(-1) // node whose pred arc leaves (on either path)
	leaveOnSrc := false
	// The cycle runs src -(enter)-> dst -(up to join)-> join -(down)-> src:
	// dst-side tree arcs are traversed child->parent, src-side ones
	// parent->child.
	a, bnode := src, dst
	for a != bnode {
		if depth[a] >= depth[bnode] {
			// Src side: cycle flow runs parent -> child, i.e. with the
			// arc exactly when the arc points down (!predUp).
			ai := ns.predArc[a]
			if res := ns.residualDir(ai, !ns.predUp[a]); res < delta {
				delta = res
				leaveNode = a
				leaveOnSrc = true
			}
			a = ns.parent[a]
		} else {
			// Dst side: cycle flow runs child -> parent.
			ai := ns.predArc[bnode]
			if res := ns.residualDir(ai, ns.predUp[bnode]); res < delta {
				delta = res
				leaveNode = bnode
				leaveOnSrc = false
			}
			bnode = ns.parent[bnode]
		}
	}
	// Apply the flow change around the cycle.
	if delta > 0 {
		if forward {
			ns.flow[enter] += delta
		} else {
			ns.flow[enter] -= delta
		}
		for x := src; x != a; x = ns.parent[x] {
			// Parent -> child traversal: against the arc when it points up.
			if ns.predUp[x] {
				ns.flow[ns.predArc[x]] -= delta
			} else {
				ns.flow[ns.predArc[x]] += delta
			}
		}
		for x := dst; x != a; x = ns.parent[x] {
			// Child -> parent traversal: with the arc when it points up.
			if ns.predUp[x] {
				ns.flow[ns.predArc[x]] += delta
			} else {
				ns.flow[ns.predArc[x]] -= delta
			}
		}
	}
	// Determine the leaving arc.
	if leaveNode < 0 {
		// The entering arc itself blocks: toggle its bound state.
		if ns.state[enter] == stateLower {
			ns.state[enter] = stateUpper
		} else {
			ns.state[enter] = stateLower
		}
		return
	}
	leaveArc := ns.predArc[leaveNode]
	// The leaving arc exits at its bound.
	if ns.flow[leaveArc] <= Eps {
		ns.state[leaveArc] = stateLower
		ns.flow[leaveArc] = 0
	} else {
		ns.state[leaveArc] = stateUpper
		ns.flow[leaveArc] = ns.cap[leaveArc]
	}
	// Re-hang: the subtree cut off by removing leaveArc contains src (if
	// the leaving arc was on the src path) or dst. That subtree is
	// re-rooted at src (resp. dst) and attached through the entering arc.
	var hang int32
	if leaveOnSrc {
		hang = src
	} else {
		hang = dst
	}
	// Reverse the parent chain from hang up to leaveNode.
	type link struct {
		node int32
		arc  int32
		up   bool
	}
	var chain []link
	for x := hang; ; x = ns.parent[x] {
		chain = append(chain, link{node: x, arc: ns.predArc[x], up: ns.predUp[x]})
		if x == leaveNode {
			break
		}
	}
	// Detach leaveNode from its parent.
	ns.removeChild(ns.parent[leaveNode], leaveNode)
	// Reverse: chain[i].node's new parent becomes chain[i-1].node,
	// connected by the arc that previously linked chain[i-1] up to
	// chain[i], with its direction flag flipped for the new child.
	for i := len(chain) - 1; i >= 1; i-- {
		child := chain[i-1].node
		node := chain[i].node
		ns.removeChild(node, child)
		ns.parent[node] = child
		ns.predArc[node] = chain[i-1].arc
		ns.predUp[node] = !chain[i-1].up
		ns.children[child] = append(ns.children[child], node)
	}
	// Attach hang under the other endpoint via the entering arc.
	var attachParent int32
	if leaveOnSrc {
		attachParent = dst
		if forward {
			// entering arc runs src(u) -> dst(v); from hang's (src)
			// perspective the arc points up to the parent.
			ns.predUp[hang] = true
		} else {
			ns.predUp[hang] = false
		}
	} else {
		attachParent = src
		if forward {
			ns.predUp[hang] = false
		} else {
			ns.predUp[hang] = true
		}
	}
	ns.parent[hang] = attachParent
	ns.predArc[hang] = int32(enter)
	ns.children[attachParent] = append(ns.children[attachParent], hang)
	ns.state[enter] = stateTree
	// Refresh potentials and depths of the re-hung subtree by DFS.
	stack := []int32{hang}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := ns.parent[x]
		ai := ns.predArc[x]
		if ns.predUp[x] {
			// arc x -> p: rc 0 => pi[x] = pi[p] - cost
			ns.pi[x] = ns.pi[p] - ns.cost[ai]
		} else {
			ns.pi[x] = ns.pi[p] + ns.cost[ai]
		}
		depth[x] = depth[p] + 1
		stack = append(stack, ns.children[x]...)
	}
}

func (ns *netSimplex) removeChild(parent, child int32) {
	cs := ns.children[parent]
	for i, c := range cs {
		if c == child {
			cs[i] = cs[len(cs)-1]
			ns.children[parent] = cs[:len(cs)-1]
			return
		}
	}
}
