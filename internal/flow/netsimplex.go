package flow

import (
	"context"
	"fmt"
	"math"

	"fbplace/internal/faultsim"
)

// nsFault forces the network simplex to report a stall, driving the
// NS -> successive-shortest-paths fallback of internal/fbp.
var nsFault = faultsim.Register("flow.ns.stall",
	"network simplex reports ErrStalled during the pivot loop")

// ErrStalled is returned by SolveNS when the pivot loop exceeds its cap
// without reaching optimality (cycling or injected stall). The instance is
// NOT known to be infeasible; callers should fall back to the successive
// shortest path solver (Solve), which terminates unconditionally.
type ErrStalled struct {
	// Pivots is the number of pivots performed before giving up.
	Pivots int
}

func (e *ErrStalled) Error() string {
	return fmt.Sprintf("flow: network simplex stalled after %d pivots", e.Pivots)
}

// SolveNS solves the same minimum-cost flow problem as Solve with a
// (sequential) network simplex — the algorithm the paper reports using for
// the FBP MinCostFlow ("computed by a (sequential) NetworkSimplex"). On
// the large grid models of Table I it is orders of magnitude faster than
// successive shortest paths: the zero-cost transit mesh that makes
// Dijkstra-based augmentation churn is handled by plain tree pivots.
//
// Like Solve, it routes all supply (demands may stay unfilled) and returns
// *ErrInfeasible when some supply cannot reach remaining demand. After a
// successful run Flow(id) reports the arc flows.
func (g *MinCostFlow) SolveNS() (float64, error) { return g.solveNS(nil) }

// SolveNSWarm is SolveNS with a warm start: it tries to seed the simplex
// with the spanning-tree basis of a previous, structurally identical solve
// (same node count and arc list; costs, capacities and supplies may all
// differ). A basis that does not fit — signature mismatch, broken tree, or
// recomputed tree flows outside the current capacity bounds — is rejected
// and the solve cold-starts, so a stale basis can cost at most the failed
// validation. The counters "ns.warmstart" and "ns.coldfallback" record
// which path was taken. A nil basis is exactly SolveNS.
func (g *MinCostFlow) SolveNSWarm(basis *Basis) (float64, error) { return g.solveNS(basis) }

// ExportBasis returns the spanning-tree basis of the most recent
// SolveNS/SolveNSWarm call, or nil when none completed its pivot loop
// (build errors and context aborts before the run leave no basis). A basis
// is exportable even from a solve that returned *ErrInfeasible or
// *ErrStalled — the tree is feasible and consistent in both cases, and
// re-solving from it (e.g. after relaxing capacities) is the whole point
// of warm starts.
func (g *MinCostFlow) ExportBasis() *Basis {
	if g.lastNS == nil {
		return nil
	}
	return g.lastNS.exportBasis(g.lastSig)
}

func (g *MinCostFlow) solveNS(basis *Basis) (float64, error) {
	if g.buildErr != nil {
		return 0, g.buildErr
	}
	g.duals = nil
	n := len(g.adj)
	// Balance the instance: total supply S must equal total demand D.
	// D >= S is the normal case (capacity exceeds cell area): a dummy
	// supply node feeds the leftover demand at zero cost. S > D is
	// impossible to satisfy; route what fits and report infeasible.
	totalSupply, totalDemand := 0.0, 0.0
	for v := 0; v < n; v++ {
		if b := g.supply[v]; b > Eps {
			totalSupply += b
		} else if b < -Eps {
			totalDemand += -b
		}
	}
	ns := &netSimplex{}
	numNodes := n + 2 // + dummy balancer + artificial root
	dummy := n
	root := n + 1
	ns.init(numNodes)
	b := make([]float64, numNodes)
	for v := 0; v < n; v++ {
		b[v] = g.supply[v]
	}
	var dummyArcs []int
	if totalDemand >= totalSupply {
		b[dummy] = totalDemand - totalSupply
		for v := 0; v < n; v++ {
			if g.supply[v] < -Eps {
				ns.addArc(dummy, v, -g.supply[v], 0)
			}
		}
	} else {
		// More supply than demand: the instance cannot route everything.
		// The dummy absorbs the excess at a cost just above any real
		// path, so the simplex still routes as much real flow as possible
		// and the absorbed amount is reported as unrouted below.
		b[dummy] = -(totalSupply - totalDemand)
		spill := (g.maxCost + 1) * float64(n)
		for v := 0; v < n; v++ {
			if g.supply[v] > Eps {
				dummyArcs = append(dummyArcs, ns.addArc(v, dummy, g.supply[v], spill))
			}
		}
	}
	// Real arcs (forward arcs as added by AddArc; adj holds residuals but
	// nothing has been routed yet, so cap is the original capacity).
	realArc := make([]int, len(g.arcPos))
	for id, p := range g.arcPos {
		a := &g.adj[p[0]][p[1]]
		realArc[id] = ns.addArc(int(p[0]), int(a.to), a.cap, a.cost)
	}
	// Structural signature over the instance arcs (dummy + real), before
	// any artificial arcs: the identity a basis must match to be reusable.
	sig := ns.signature()
	warm := false
	if basis != nil {
		if basis.sig == sig {
			warm = ns.warmInit(basis, b, root, g.maxCost)
		}
		if warm {
			g.Obs.Count("ns.warmstart", 1)
		} else {
			g.Obs.Count("ns.coldfallback", 1)
		}
	}
	if !warm {
		ns.coldInit(b, root, g.maxCost)
	}
	// Publish pivot stats on EVERY exit — success, infeasibility, stall
	// and context aborts alike. A stalled run in particular did real work
	// that the NS->SSP fallback would otherwise hide from observability
	// and the degradation record. ns.pivots is cumulative over a warm-start
	// chain; Pivots and the counter report the pivots of THIS solve.
	entryPivots := ns.pivots
	defer func() {
		g.lastNS, g.lastSig = ns, sig
		g.Pivots = ns.pivots - entryPivots
		g.Obs.Count("ns.pivots", float64(ns.pivots-entryPivots))
	}()
	if err := ns.run(g.Ctx, b, g.maxCost); err != nil {
		return 0, err
	}
	// Infeasibility: artificial root arcs still carrying flow, plus any
	// excess supply the dummy had to absorb. Artificial flows pair up
	// (stranded supply x -> root matches unmet demand root -> y), so only
	// the supply side is counted; the dummy's own artificial arc carries
	// bookkeeping flow, not real supply.
	unrouted := 0.0
	for _, ai := range ns.artificial {
		if int(ns.to[ai]) == root && int(ns.from[ai]) != dummy {
			unrouted += ns.flow[ai]
		}
	}
	for _, ai := range dummyArcs {
		unrouted += ns.flow[ai]
	}
	// Write flows back into the residual structure so Flow(id) works.
	totalCost := 0.0
	for id, p := range g.arcPos {
		f := ns.flow[realArc[id]]
		a := &g.adj[p[0]][p[1]]
		a.cap -= f
		g.adj[a.to][a.rev].cap += f
		if !math.IsInf(a.cost, 1) {
			totalCost += f * a.cost
		}
	}
	if unrouted > 1e-6*math.Max(1, totalSupply) {
		return totalCost, &ErrInfeasible{Unrouted: unrouted}
	}
	// The simplex terminated with no non-tree arc violating its bound's
	// reduced-cost condition beyond Eps*(1+maxCost): ns.pi is a feasible
	// dual certificate for the real-node subproblem.
	g.duals = &Duals{
		Pot:       append([]float64(nil), ns.pi[:n]...),
		Arcs:      len(g.arcPos),
		CostScale: 1 + g.maxCost,
	}
	return totalCost, nil
}

// Arc states of the simplex.
const (
	stateLower = iota
	stateTree
	stateUpper
)

// netSimplex is a primal network simplex over a spanning tree rooted at an
// artificial root. Tree connectivity is kept in parent/children form; each
// pivot re-hangs one subtree and refreshes its potentials by DFS.
type netSimplex struct {
	from, to []int32
	cap      []float64
	cost     []float64
	flow     []float64
	state    []int8

	parent   []int32 // tree parent
	predArc  []int32 // arc connecting v to parent
	predUp   []bool  // true when the arc is directed v -> parent
	children [][]int32
	pi       []float64 // node potentials
	depth    []int32   // tree depth (root 0), maintained by init and pivots

	artificial []int // arc ids of the root arcs
	numNodes   int
	// pivots is cumulative over a warm-start chain: warmInit carries the
	// originating chain's count forward so stall reports and diagnostics
	// see the total effort. The stall cap of run counts pivots since
	// entry, never this field (a warm-started re-solve must get a full
	// fresh budget).
	pivots int
}

func (ns *netSimplex) init(numNodes int) {
	ns.numNodes = numNodes
}

func (ns *netSimplex) addArc(u, v int, capacity, cost float64) int {
	ns.from = append(ns.from, int32(u))
	ns.to = append(ns.to, int32(v))
	ns.cap = append(ns.cap, capacity)
	ns.cost = append(ns.cost, cost)
	ns.flow = append(ns.flow, 0)
	ns.state = append(ns.state, stateLower)
	return len(ns.from) - 1
}

// run executes the pivot loop of an initialized simplex (coldInit or
// warmInit must have set up the tree); b is the (balanced) imbalance
// vector including the dummy node. A non-nil ctx is polled periodically
// and aborts the run with the context's error.
func (ns *netSimplex) run(ctx context.Context, b []float64, maxCost float64) error {
	depth := ns.depth
	m := len(ns.from)
	block := int(math.Sqrt(float64(m))) + 1
	scan := 0
	// The stall cap and the ctx-poll cadence both count pivots since
	// entry (the loop-local counter), NOT the cumulative ns.pivots — a
	// warm-started re-solve carries the chain's pivot total in ns.pivots
	// and must not inherit an exhausted budget from its ancestors.
	maxPivots := 200*m + 10000
	if nsDebugCheck != nil {
		// Validate the starting basis too (pivot -1): a warm-restored
		// tree must satisfy the same invariants as a pivoted one.
		nsDebugCheck(ns, b, -1)
	}
	for pivot := 0; ; pivot++ {
		if pivot > maxPivots {
			// Cycling guard. This is a solver stall, not an infeasibility
			// certificate: callers fall back to successive shortest paths.
			return &ErrStalled{Pivots: ns.pivots}
		}
		if pivot&1023 == 0 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := nsFault.Check(); err != nil {
				return &ErrStalled{Pivots: ns.pivots}
			}
		}
		// Block search for the entering arc.
		enter := -1
		bestViol := Eps * (1 + maxCost)
		scanned := 0
		for scanned < m {
			end := scan + block
			if end > m {
				end = m
			}
			for ai := scan; ai < end; ai++ {
				if ns.state[ai] == stateTree {
					continue
				}
				rc := ns.cost[ai] + ns.pi[ns.from[ai]] - ns.pi[ns.to[ai]]
				var viol float64
				if ns.state[ai] == stateLower {
					viol = -rc
				} else {
					viol = rc
				}
				if viol > bestViol {
					bestViol = viol
					enter = ai
				}
			}
			scanned += end - scan
			scan = end
			if scan >= m {
				scan = 0
			}
			if enter >= 0 {
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		ns.pivot(enter, depth)
		ns.pivots++
		if nsDebugCheck != nil {
			nsDebugCheck(ns, b, pivot)
		}
	}
	return nil
}

// residual returns how much flow can be pushed through tree arc ai in the
// direction "down-to-up == up" (true pushes from the arc's from-side).
func (ns *netSimplex) residualDir(ai int32, forward bool) float64 {
	if forward {
		return ns.cap[ai] - ns.flow[ai]
	}
	return ns.flow[ai]
}

// pivot performs one simplex pivot with the given entering arc.
func (ns *netSimplex) pivot(enter int, depth []int32) {
	u, v := ns.from[enter], ns.to[enter]
	// Push direction along the entering arc: lower -> forward (u to v),
	// upper -> backward (v to u).
	forward := ns.state[enter] == stateLower
	src, dst := u, v
	if !forward {
		src, dst = v, u
	}
	// Walk both endpoints up to the join, recording the bottleneck.
	delta := ns.residualDir(int32(enter), forward)
	// Leaving arc bookkeeping: -1 = entering arc itself (state toggle).
	leaveNode := int32(-1) // node whose pred arc leaves (on either path)
	leaveOnSrc := false
	// The cycle runs src -(enter)-> dst -(up to join)-> join -(down)-> src:
	// dst-side tree arcs are traversed child->parent, src-side ones
	// parent->child.
	a, bnode := src, dst
	for a != bnode {
		if depth[a] >= depth[bnode] {
			// Src side: cycle flow runs parent -> child, i.e. with the
			// arc exactly when the arc points down (!predUp).
			ai := ns.predArc[a]
			if res := ns.residualDir(ai, !ns.predUp[a]); res < delta {
				delta = res
				leaveNode = a
				leaveOnSrc = true
			}
			a = ns.parent[a]
		} else {
			// Dst side: cycle flow runs child -> parent.
			ai := ns.predArc[bnode]
			if res := ns.residualDir(ai, ns.predUp[bnode]); res < delta {
				delta = res
				leaveNode = bnode
				leaveOnSrc = false
			}
			bnode = ns.parent[bnode]
		}
	}
	// Apply the flow change around the cycle.
	if delta > 0 {
		if forward {
			ns.flow[enter] += delta
		} else {
			ns.flow[enter] -= delta
		}
		for x := src; x != a; x = ns.parent[x] {
			// Parent -> child traversal: against the arc when it points up.
			if ns.predUp[x] {
				ns.flow[ns.predArc[x]] -= delta
			} else {
				ns.flow[ns.predArc[x]] += delta
			}
		}
		for x := dst; x != a; x = ns.parent[x] {
			// Child -> parent traversal: with the arc when it points up.
			if ns.predUp[x] {
				ns.flow[ns.predArc[x]] += delta
			} else {
				ns.flow[ns.predArc[x]] -= delta
			}
		}
	}
	// Determine the leaving arc.
	if leaveNode < 0 {
		// The entering arc itself blocks: toggle its bound state.
		if ns.state[enter] == stateLower {
			ns.state[enter] = stateUpper
		} else {
			ns.state[enter] = stateLower
		}
		return
	}
	leaveArc := ns.predArc[leaveNode]
	// The leaving arc exits at its bound.
	if ns.flow[leaveArc] <= Eps {
		ns.state[leaveArc] = stateLower
		ns.flow[leaveArc] = 0
	} else {
		ns.state[leaveArc] = stateUpper
		ns.flow[leaveArc] = ns.cap[leaveArc]
	}
	// Re-hang: the subtree cut off by removing leaveArc contains src (if
	// the leaving arc was on the src path) or dst. That subtree is
	// re-rooted at src (resp. dst) and attached through the entering arc.
	var hang int32
	if leaveOnSrc {
		hang = src
	} else {
		hang = dst
	}
	// Reverse the parent chain from hang up to leaveNode.
	type link struct {
		node int32
		arc  int32
		up   bool
	}
	var chain []link
	for x := hang; ; x = ns.parent[x] {
		chain = append(chain, link{node: x, arc: ns.predArc[x], up: ns.predUp[x]})
		if x == leaveNode {
			break
		}
	}
	// Detach leaveNode from its parent.
	ns.removeChild(ns.parent[leaveNode], leaveNode)
	// Reverse: chain[i].node's new parent becomes chain[i-1].node,
	// connected by the arc that previously linked chain[i-1] up to
	// chain[i], with its direction flag flipped for the new child.
	for i := len(chain) - 1; i >= 1; i-- {
		child := chain[i-1].node
		node := chain[i].node
		ns.removeChild(node, child)
		ns.parent[node] = child
		ns.predArc[node] = chain[i-1].arc
		ns.predUp[node] = !chain[i-1].up
		ns.children[child] = append(ns.children[child], node)
	}
	// Attach hang under the other endpoint via the entering arc.
	var attachParent int32
	if leaveOnSrc {
		attachParent = dst
		if forward {
			// entering arc runs src(u) -> dst(v); from hang's (src)
			// perspective the arc points up to the parent.
			ns.predUp[hang] = true
		} else {
			ns.predUp[hang] = false
		}
	} else {
		attachParent = src
		if forward {
			ns.predUp[hang] = false
		} else {
			ns.predUp[hang] = true
		}
	}
	ns.parent[hang] = attachParent
	ns.predArc[hang] = int32(enter)
	ns.children[attachParent] = append(ns.children[attachParent], hang)
	ns.state[enter] = stateTree
	// Refresh potentials and depths of the re-hung subtree by DFS.
	stack := []int32{hang}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := ns.parent[x]
		ai := ns.predArc[x]
		if ns.predUp[x] {
			// arc x -> p: rc 0 => pi[x] = pi[p] - cost
			ns.pi[x] = ns.pi[p] - ns.cost[ai]
		} else {
			ns.pi[x] = ns.pi[p] + ns.cost[ai]
		}
		depth[x] = depth[p] + 1
		stack = append(stack, ns.children[x]...)
	}
}

func (ns *netSimplex) removeChild(parent, child int32) {
	cs := ns.children[parent]
	for i, c := range cs {
		if c == child {
			cs[i] = cs[len(cs)-1]
			ns.children[parent] = cs[:len(cs)-1]
			return
		}
	}
}
