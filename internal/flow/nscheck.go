package flow

import "fmt"

// nsDebugCheck, when set, validates the simplex invariants after every
// pivot (tests only; quadratic cost).
var nsDebugCheck func(ns *netSimplex, b []float64, pivotNo int)

func nsValidate(ns *netSimplex, b []float64, pivotNo int) error {
	// Conservation at every node.
	bal := make([]float64, ns.numNodes)
	for ai := range ns.from {
		f := ns.flow[ai]
		if f < -1e-9 {
			return fmt.Errorf("pivot %d: arc %d negative flow %g", pivotNo, ai, f)
		}
		if f > ns.cap[ai]+1e-9 {
			return fmt.Errorf("pivot %d: arc %d flow %g > cap %g", pivotNo, ai, f, ns.cap[ai])
		}
		bal[ns.from[ai]] -= f
		bal[ns.to[ai]] += f
	}
	for v := 0; v < ns.numNodes; v++ {
		want := -b[v]
		if diff := bal[v] - want; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("pivot %d: node %d balance %g want %g", pivotNo, v, bal[v], want)
		}
	}
	// Tree arcs: reduced cost zero; non-tree at bounds.
	for ai := range ns.from {
		rc := ns.cost[ai] + ns.pi[ns.from[ai]] - ns.pi[ns.to[ai]]
		switch ns.state[ai] {
		case stateTree:
			if rc > 1e-6 || rc < -1e-6 {
				return fmt.Errorf("pivot %d: tree arc %d rc %g", pivotNo, ai, rc)
			}
		case stateLower:
			if ns.flow[ai] > 1e-9 {
				return fmt.Errorf("pivot %d: lower arc %d flow %g", pivotNo, ai, ns.flow[ai])
			}
		case stateUpper:
			if ns.flow[ai] < ns.cap[ai]-1e-9 {
				return fmt.Errorf("pivot %d: upper arc %d flow %g cap %g", pivotNo, ai, ns.flow[ai], ns.cap[ai])
			}
		}
	}
	// Tree structure: every node reaches root.
	return nil
}
