package flow

import "fmt"

// nsDebugCheck, when set, validates the simplex invariants after every
// pivot (tests only; quadratic cost).
var nsDebugCheck func(ns *netSimplex, b []float64, pivotNo int)

func nsValidate(ns *netSimplex, b []float64, pivotNo int) error {
	// Conservation at every node.
	bal := make([]float64, ns.numNodes)
	for ai := range ns.from {
		f := ns.flow[ai]
		if f < -1e-9 {
			return fmt.Errorf("pivot %d: arc %d negative flow %g", pivotNo, ai, f)
		}
		if f > ns.cap[ai]+1e-9 {
			return fmt.Errorf("pivot %d: arc %d flow %g > cap %g", pivotNo, ai, f, ns.cap[ai])
		}
		bal[ns.from[ai]] -= f
		bal[ns.to[ai]] += f
	}
	for v := 0; v < ns.numNodes; v++ {
		want := -b[v]
		if diff := bal[v] - want; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("pivot %d: node %d balance %g want %g", pivotNo, v, bal[v], want)
		}
	}
	// Tree arcs: reduced cost zero; non-tree at bounds.
	for ai := range ns.from {
		rc := ns.cost[ai] + ns.pi[ns.from[ai]] - ns.pi[ns.to[ai]]
		switch ns.state[ai] {
		case stateTree:
			if rc > 1e-6 || rc < -1e-6 {
				return fmt.Errorf("pivot %d: tree arc %d rc %g", pivotNo, ai, rc)
			}
		case stateLower:
			if ns.flow[ai] > 1e-9 {
				return fmt.Errorf("pivot %d: lower arc %d flow %g", pivotNo, ai, ns.flow[ai])
			}
		case stateUpper:
			if ns.flow[ai] < ns.cap[ai]-1e-9 {
				return fmt.Errorf("pivot %d: upper arc %d flow %g cap %g", pivotNo, ai, ns.flow[ai], ns.cap[ai])
			}
		}
	}
	// Tree structure: parent/predArc/predUp must be mutually consistent
	// and every node must reach the root. This also validates trees
	// restored by a warm start, which rebuilds them from an exported
	// basis rather than from pivots.
	root := -1
	for v := 0; v < ns.numNodes; v++ {
		if ns.parent[v] < 0 {
			if root >= 0 {
				return fmt.Errorf("pivot %d: two roots %d and %d", pivotNo, root, v)
			}
			root = v
			continue
		}
		p, ai := ns.parent[v], ns.predArc[v]
		if ai < 0 || int(ai) >= len(ns.from) || ns.state[ai] != stateTree {
			return fmt.Errorf("pivot %d: node %d pred arc %d not a tree arc", pivotNo, v, ai)
		}
		if ns.predUp[v] {
			if ns.from[ai] != int32(v) || ns.to[ai] != p {
				return fmt.Errorf("pivot %d: node %d up-arc %d endpoints %d->%d want %d->%d",
					pivotNo, v, ai, ns.from[ai], ns.to[ai], v, p)
			}
		} else if ns.from[ai] != p || ns.to[ai] != int32(v) {
			return fmt.Errorf("pivot %d: node %d down-arc %d endpoints %d->%d want %d->%d",
				pivotNo, v, ai, ns.from[ai], ns.to[ai], p, v)
		}
		if ns.depth[v] != ns.depth[p]+1 {
			return fmt.Errorf("pivot %d: node %d depth %d, parent %d depth %d",
				pivotNo, v, ns.depth[v], p, ns.depth[p])
		}
	}
	if root < 0 {
		return fmt.Errorf("pivot %d: no root", pivotNo)
	}
	for v := 0; v < ns.numNodes; v++ {
		x, hops := v, 0
		for ns.parent[x] >= 0 {
			x = int(ns.parent[x])
			if hops++; hops > ns.numNodes {
				return fmt.Errorf("pivot %d: parent cycle through node %d", pivotNo, v)
			}
		}
		if x != root {
			return fmt.Errorf("pivot %d: node %d does not reach root", pivotNo, v)
		}
	}
	return nil
}
