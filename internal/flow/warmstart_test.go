package flow

import (
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
)

// warmGrid builds the zero-cost-mesh grid with k supplies and k demands,
// the FBP-shaped instance. costs and caps are per-arc multipliers applied
// uniformly so re-builds stay structurally identical.
func warmGrid(k int, supplyScale float64, arcCost, arcCap float64) *MinCostFlow {
	g := NewMinCostFlow(k * k)
	id := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			if x+1 < k {
				g.AddArc(id(x, y), id(x+1, y), arcCap, arcCost)
				g.AddArc(id(x+1, y), id(x, y), arcCap, arcCost)
			}
			if y+1 < k {
				g.AddArc(id(x, y), id(x, y+1), arcCap, arcCost)
				g.AddArc(id(x, y+1), id(x, y), arcCap, arcCost)
			}
		}
	}
	for i := 0; i < k; i++ {
		g.SetSupply(id(i%5, i/5), supplyScale)
		g.SetSupply(id(k-1-i%5, k-1-i/5), -supplyScale)
	}
	return g
}

// Warm-starting from a basis of a structurally identical instance with
// different supplies must reach the same optimum as a cold start, and the
// ns.warmstart counter must record the reuse.
func TestNSWarmStartSupplyChange(t *testing.T) {
	first := warmGrid(12, 1, 1, Inf)
	if _, err := first.SolveNS(); err != nil {
		t.Fatal(err)
	}
	basis := first.ExportBasis()
	if basis == nil {
		t.Fatal("no basis exported after successful solve")
	}

	cold := warmGrid(12, 3, 1, Inf)
	wantCost, err := cold.SolveNS()
	if err != nil {
		t.Fatal(err)
	}

	warm := warmGrid(12, 3, 1, Inf)
	warm.Obs = obs.New(nil)
	gotCost, err := warm.SolveNSWarm(basis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
		t.Fatalf("warm cost %v, cold cost %v", gotCost, wantCost)
	}
	if warm.Obs.Counter("ns.warmstart") != 1 {
		t.Fatalf("ns.warmstart = %v, want 1", warm.Obs.Counter("ns.warmstart"))
	}
	if warm.Obs.Counter("ns.coldfallback") != 0 {
		t.Fatalf("ns.coldfallback = %v, want 0", warm.Obs.Counter("ns.coldfallback"))
	}
	// The warm re-solve should need far fewer pivots than the cold one.
	if warm.Pivots >= cold.Pivots && cold.Pivots > 0 {
		t.Logf("warm pivots %d >= cold pivots %d (allowed, but unexpected)", warm.Pivots, cold.Pivots)
	}
}

// warmBipartite is the transport-engine shape: sources feed sinks over
// uncapacitated arcs; sink capacities enter as (negative) supplies. The
// relaxation ladder re-solves this exact structure with scaled sink
// capacities, so a rung's basis must warm-start the next rung.
func warmBipartite(capScale float64) *MinCostFlow {
	g := NewMinCostFlow(8)
	src := []float64{5, 3, 4, 2}
	// Sparse admissibility, like transport windows with reach limits:
	// source 0 reaches only sink 0, so the tight rung (capacity 4 < 5)
	// is infeasible even though total capacity exceeds total supply —
	// exactly the shape that sends the real ladder up a rung.
	adm := [][]int{{0}, {0, 1}, {1, 2}, {2, 3}}
	for i := 0; i < 4; i++ {
		g.SetSupply(i, src[i])
		g.SetSupply(4+i, -4*capScale)
	}
	for i, sinks := range adm {
		for _, j := range sinks {
			g.AddArc(i, 4+j, Inf, float64(1+(i+2*j)%5))
		}
	}
	return g
}

// The ladder case: a capacity-starved rung ends infeasible, its basis is
// exported, capacities (sink supplies) are relaxed and the next rung
// warm-starts from the infeasible basis. The warm start must be accepted
// (structure is unchanged; only supplies moved) and match a cold solve.
func TestNSWarmStartCapacityGrowth(t *testing.T) {
	tight := warmBipartite(1) // sink 0 capacity 4 cannot absorb source 0's 5
	_, err := tight.SolveNS()
	if _, ok := err.(*ErrInfeasible); !ok {
		t.Fatalf("tight solve err = %v, want ErrInfeasible", err)
	}
	basis := tight.ExportBasis()
	if basis == nil {
		t.Fatal("no basis exported after infeasible solve")
	}

	cold := warmBipartite(2)
	wantCost, err := cold.SolveNS()
	if err != nil {
		t.Fatal(err)
	}

	warm := warmBipartite(2)
	warm.Obs = obs.New(nil)
	gotCost, err := warm.SolveNSWarm(basis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
		t.Fatalf("warm cost %v, cold cost %v", gotCost, wantCost)
	}
	if warm.Obs.Counter("ns.warmstart") != 1 {
		t.Fatalf("ns.warmstart = %v, want 1", warm.Obs.Counter("ns.warmstart"))
	}
}

// Shrinking capacities below the basis tree flows must reject the warm
// start (revalidation fails), fall back to a cold start, and still solve
// correctly.
func TestNSWarmStartCapacityShrinkFallsBack(t *testing.T) {
	wide := warmGrid(8, 4, 1, 64)
	if _, err := wide.SolveNS(); err != nil {
		t.Fatal(err)
	}
	basis := wide.ExportBasis()

	cold := warmGrid(8, 4, 1, 2)
	wantCost, coldErr := cold.SolveNS()

	warm := warmGrid(8, 4, 1, 2)
	warm.Obs = obs.New(nil)
	gotCost, warmErr := warm.SolveNSWarm(basis)
	if (coldErr == nil) != (warmErr == nil) {
		t.Fatalf("cold err %v, warm err %v", coldErr, warmErr)
	}
	if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
		t.Fatalf("warm cost %v, cold cost %v", gotCost, wantCost)
	}
	// Either path is legitimate (the tree may happen to revalidate), but
	// exactly one of the two counters must have fired.
	w, c := warm.Obs.Counter("ns.warmstart"), warm.Obs.Counter("ns.coldfallback")
	if w+c != 1 {
		t.Fatalf("warmstart=%v coldfallback=%v, want exactly one attempt recorded", w, c)
	}
}

// A basis from a structurally different instance must be rejected by the
// signature check and counted as a cold fallback.
func TestNSWarmStartSignatureMismatch(t *testing.T) {
	other := warmGrid(10, 1, 1, Inf)
	if _, err := other.SolveNS(); err != nil {
		t.Fatal(err)
	}
	basis := other.ExportBasis()

	g := warmGrid(12, 1, 1, Inf)
	g.Obs = obs.New(nil)
	cold := warmGrid(12, 1, 1, Inf)
	wantCost, err := cold.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	gotCost, err := g.SolveNSWarm(basis)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
		t.Fatalf("cost %v, want %v", gotCost, wantCost)
	}
	if g.Obs.Counter("ns.coldfallback") != 1 {
		t.Fatalf("ns.coldfallback = %v, want 1", g.Obs.Counter("ns.coldfallback"))
	}
	if g.Obs.Counter("ns.warmstart") != 0 {
		t.Fatalf("ns.warmstart = %v, want 0", g.Obs.Counter("ns.warmstart"))
	}
}

// A warm-started solve must get a fresh pivot budget: a basis carrying a
// cumulative pivot count near (or beyond) the stall cap must not make the
// re-solve falsely report ErrStalled, and Pivots must report only this
// solve's work.
func TestNSWarmStartAfterNearCap(t *testing.T) {
	first := warmGrid(12, 1, 1, Inf)
	if _, err := first.SolveNS(); err != nil {
		t.Fatal(err)
	}
	basis := first.ExportBasis()
	// Simulate a long warm chain: the carried total vastly exceeds any
	// stall cap the re-solve could compute.
	basis.pivots = 1 << 30

	warm := warmGrid(12, 2, 1, Inf)
	warm.Obs = obs.New(nil)
	cold := warmGrid(12, 2, 1, Inf)
	wantCost, err := cold.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	gotCost, err := warm.SolveNSWarm(basis)
	if err != nil {
		t.Fatalf("warm solve with near-cap chain total stalled/failed: %v", err)
	}
	if warm.Obs.Counter("ns.warmstart") != 1 {
		t.Fatalf("ns.warmstart = %v, want 1 (fallback would mask the regression)", warm.Obs.Counter("ns.warmstart"))
	}
	if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
		t.Fatalf("cost %v, want %v", gotCost, wantCost)
	}
	// Pivots is the per-solve delta, not the carried chain total.
	if warm.Pivots < 0 || warm.Pivots >= 1<<30 {
		t.Fatalf("Pivots = %d, want small per-solve delta", warm.Pivots)
	}
	if got := warm.Obs.Counter("ns.pivots"); got != float64(warm.Pivots) {
		t.Fatalf("ns.pivots counter = %v, want %d", got, warm.Pivots)
	}
	// The exported basis keeps carrying the cumulative chain total.
	next := warm.ExportBasis()
	if next.Pivots() != (1<<30)+warm.Pivots {
		t.Fatalf("chain pivots = %d, want %d", next.Pivots(), (1<<30)+warm.Pivots)
	}
}

// Regression: pivot stats must be published on the ErrStalled exit too —
// a stalled run did real work that the NS->SSP fallback must not hide.
func TestNSStatsPublishedOnStall(t *testing.T) {
	defer faultsim.Reset()
	// Skip the entry check (pivot 0); fire at the second cadence check
	// (pivot 1024), after real pivot work has happened.
	if err := faultsim.Arm("flow.ns.stall", faultsim.Schedule{After: 1}); err != nil {
		t.Fatal(err)
	}
	g := warmGrid(30, 1, 1, Inf) // ~1500 pivots when run to optimality
	g.Obs = obs.New(nil)
	_, err := g.SolveNS()
	stall, ok := err.(*ErrStalled)
	if !ok {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if g.Pivots < 1024 {
		t.Fatalf("g.Pivots = %d after stall, want >= 1024 (stats lost on error exit)", g.Pivots)
	}
	if got := g.Obs.Counter("ns.pivots"); got != float64(g.Pivots) {
		t.Fatalf("ns.pivots counter = %v, want %d", got, g.Pivots)
	}
	if stall.Pivots != g.Pivots {
		t.Fatalf("ErrStalled.Pivots = %d, g.Pivots = %d", stall.Pivots, g.Pivots)
	}
	// A stalled solve still exports a consistent basis for retries.
	if g.ExportBasis() == nil {
		t.Fatal("no basis exported after stall")
	}
}

// Pivot stats must also be published on the ErrInfeasible exit.
func TestNSStatsPublishedOnInfeasible(t *testing.T) {
	g := warmGrid(8, 4, 1, 1)
	g.Obs = obs.New(nil)
	_, err := g.SolveNS()
	if _, ok := err.(*ErrInfeasible); !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if g.Pivots <= 0 {
		t.Fatalf("g.Pivots = %d after infeasible solve, want > 0", g.Pivots)
	}
	if got := g.Obs.Counter("ns.pivots"); got != float64(g.Pivots) {
		t.Fatalf("ns.pivots counter = %v, want %d", got, g.Pivots)
	}
}

// ExportBasis before any solve returns nil.
func TestNSExportBasisBeforeSolve(t *testing.T) {
	g := NewMinCostFlow(3)
	g.AddArc(0, 1, Inf, 1)
	if g.ExportBasis() != nil {
		t.Fatal("basis exported before any solve")
	}
}

// Property: for random instances, a warm start from a perturbed sibling's
// basis matches the cold optimum, and the restored tree satisfies the full
// simplex invariants at every subsequent pivot.
func TestNSWarmMatchesColdRandom(t *testing.T) {
	defer func() { nsDebugCheck = nil }()
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 60; trial++ {
		seed := rng.Int63()
		// Two structurally identical instances with different supply
		// magnitudes: rebuild with the same seed, then scale supplies on
		// the node set already chosen (signs preserved so the dummy arc
		// structure is unchanged).
		build := func(scale float64) *MinCostFlow {
			g, _ := buildRandomMCF(seed)
			for v, b := range g.supply {
				if b != 0 {
					g.SetSupply(v, b*scale)
				}
			}
			return g
		}
		donor := build(1)
		donor.SolveNS() // infeasible is fine; the basis is still consistent
		basis := donor.ExportBasis()
		if basis == nil {
			continue
		}

		cold := build(0.5)
		wantCost, coldErr := cold.SolveNS()

		warm := build(0.5)
		nsDebugCheck = func(ns *netSimplex, b []float64, pivotNo int) {
			if err := nsValidate(ns, b, pivotNo); err != nil {
				t.Fatalf("trial %d (warm): %v", trial, err)
			}
		}
		gotCost, warmErr := warm.SolveNSWarm(basis)
		nsDebugCheck = nil
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("trial %d: cold err %v, warm err %v", trial, coldErr, warmErr)
		}
		if coldErr != nil {
			i1 := coldErr.(*ErrInfeasible)
			i2 := warmErr.(*ErrInfeasible)
			if math.Abs(i1.Unrouted-i2.Unrouted) > 1e-6 {
				t.Fatalf("trial %d: unrouted %v vs %v", trial, i1.Unrouted, i2.Unrouted)
			}
			continue
		}
		if math.Abs(gotCost-wantCost) > 1e-6*(1+math.Abs(wantCost)) {
			t.Fatalf("trial %d: warm cost %v, cold cost %v", trial, gotCost, wantCost)
		}
	}
}
