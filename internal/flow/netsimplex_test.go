package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNSSimpleTransport(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 4)
	g.SetSupply(1, -3)
	g.SetSupply(2, -2)
	a1 := g.AddArc(0, 1, Inf, 1)
	a2 := g.AddArc(0, 2, Inf, 5)
	cost, err := g.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-8) > 1e-9 {
		t.Fatalf("cost = %v, want 8", cost)
	}
	if math.Abs(g.Flow(a1)-3) > 1e-9 || math.Abs(g.Flow(a2)-1) > 1e-9 {
		t.Fatalf("flows = %v, %v", g.Flow(a1), g.Flow(a2))
	}
}

func TestNSRespectsCapacities(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 10)
	g.SetSupply(2, -10)
	cheap := g.AddArc(0, 2, 4, 1)
	g.AddArc(0, 1, Inf, 1)
	g.AddArc(1, 2, Inf, 3)
	cost, err := g.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Flow(cheap)-4) > 1e-9 {
		t.Fatalf("cheap flow = %v", g.Flow(cheap))
	}
	if math.Abs(cost-28) > 1e-9 {
		t.Fatalf("cost = %v, want 28", cost)
	}
}

func TestNSInfeasible(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 5)
	g.SetSupply(1, -2)
	g.SetSupply(2, -10)
	g.AddArc(0, 1, Inf, 1)
	_, err := g.SolveNS()
	inf, ok := err.(*ErrInfeasible)
	if !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if math.Abs(inf.Unrouted-3) > 1e-6 {
		t.Fatalf("unrouted = %v, want 3", inf.Unrouted)
	}
}

func TestNSExcessDemand(t *testing.T) {
	g := NewMinCostFlow(2)
	g.SetSupply(0, 3)
	g.SetSupply(1, -100)
	g.AddArc(0, 1, Inf, 2)
	cost, err := g.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", cost)
	}
}

func TestNSZeroCostMesh(t *testing.T) {
	// The FBP pathology: a mesh of opposite zero-cost arc pairs between
	// transit-like nodes. The simplex must route through it exactly.
	k := 6
	g := NewMinCostFlow(k * k)
	id := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			if x+1 < k {
				g.AddArc(id(x, y), id(x+1, y), Inf, 0)
				g.AddArc(id(x+1, y), id(x, y), Inf, 0)
			}
			if y+1 < k {
				g.AddArc(id(x, y), id(x, y+1), Inf, 0)
				g.AddArc(id(x, y+1), id(x, y), Inf, 0)
			}
		}
	}
	g.SetSupply(id(0, 0), 7)
	g.SetSupply(id(k-1, k-1), -7)
	cost, err := g.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("cost = %v, want 0", cost)
	}
}

// buildRandomMCF builds a random instance twice (identical) for comparing
// the two solvers.
func buildRandomMCF(seed int64) (*MinCostFlow, *MinCostFlow) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(10)
	g1 := NewMinCostFlow(n)
	g2 := NewMinCostFlow(n)
	supply := 0.0
	for v := 0; v < n/2; v++ {
		b := float64(1 + rng.Intn(5))
		g1.SetSupply(v, b)
		g2.SetSupply(v, b)
		supply += b
	}
	demand := 0.0
	for v := n / 2; v < n; v++ {
		b := float64(1 + rng.Intn(6))
		g1.SetSupply(v, -b)
		g2.SetSupply(v, -b)
		demand += b
	}
	for e := 0; e < 4*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		cp := Inf
		if rng.Intn(3) == 0 {
			cp = float64(1 + rng.Intn(6))
		}
		cost := float64(rng.Intn(8))
		g1.AddArc(u, v, cp, cost)
		g2.AddArc(u, v, cp, cost)
	}
	return g1, g2
}

// Property: network simplex and SSP agree on optimal cost and
// (in)feasibility for random instances.
func TestNSMatchesSSP(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2 := buildRandomMCF(seed)
		c1, e1 := g1.Solve()
		c2, e2 := g2.SolveNS()
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			// Both infeasible: unrouted amounts must agree.
			i1 := e1.(*ErrInfeasible)
			i2 := e2.(*ErrInfeasible)
			return math.Abs(i1.Unrouted-i2.Unrouted) < 1e-6
		}
		return math.Abs(c1-c2) < 1e-6*(1+math.Abs(c1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NS flows satisfy conservation and capacity constraints.
func TestNSFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		g, _ := buildRandomMCF(rng.Int63())
		type rec struct {
			id   ArcID
			u, v int
			cp   float64
		}
		var arcs []rec
		for id := range g.arcPos {
			p := g.arcPos[id]
			a := g.adj[p[0]][p[1]]
			arcs = append(arcs, rec{ArcID(id), int(p[0]), int(a.to), a.cap})
		}
		_, err := g.SolveNS()
		if err != nil {
			continue
		}
		n := 0
		for v := range g.supply {
			if g.supply[v] != 0 || true {
				n = v + 1
			}
		}
		bal := make([]float64, n)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < -1e-9 || f > a.cp+1e-9 {
				t.Fatalf("trial %d: flow %v outside [0,%v]", trial, f, a.cp)
			}
			bal[a.u] -= f
			bal[a.v] += f
		}
		for v := 0; v < n; v++ {
			b := g.supply[v]
			got := bal[v]
			switch {
			case b > Eps: // supply fully shipped
				if math.Abs(got+b) > 1e-6 {
					t.Fatalf("trial %d: node %d shipped %v, want %v", trial, v, -got, b)
				}
			case b < -Eps: // demand filled at most -b
				if got < -1e-6 || got > -b+1e-6 {
					t.Fatalf("trial %d: node %d received %v, demand %v", trial, v, got, -b)
				}
			default:
				if math.Abs(got) > 1e-6 {
					t.Fatalf("trial %d: transit node %d imbalance %v", trial, v, got)
				}
			}
		}
	}
}

func BenchmarkNSGrid(b *testing.B) {
	k := 30
	build := func() *MinCostFlow {
		g := NewMinCostFlow(k * k)
		id := func(x, y int) int { return y*k + x }
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				if x+1 < k {
					g.AddArc(id(x, y), id(x+1, y), Inf, 1)
					g.AddArc(id(x+1, y), id(x, y), Inf, 1)
				}
				if y+1 < k {
					g.AddArc(id(x, y), id(x, y+1), Inf, 1)
					g.AddArc(id(x, y+1), id(x, y), Inf, 1)
				}
			}
		}
		for i := 0; i < k; i++ {
			g.SetSupply(id(i%5, i/5), 1)
			g.SetSupply(id(k-1-i%5, k-1-i/5), -1)
		}
		return g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build()
		if _, err := g.SolveNS(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNSInvariantsPerPivot validates the full simplex invariants
// (conservation, bounds, zero reduced cost on tree arcs) after every
// pivot of several random instances.
func TestNSInvariantsPerPivot(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	defer func() { nsDebugCheck = nil }()
	for trial := 0; trial < 40; trial++ {
		g, _ := buildRandomMCF(rng.Int63())
		nsDebugCheck = func(ns *netSimplex, b []float64, pivotNo int) {
			if err := nsValidate(ns, b, pivotNo); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		g.SolveNS()
	}
}

func TestNSEmptyInstance(t *testing.T) {
	g := NewMinCostFlow(3)
	g.AddArc(0, 1, Inf, 2)
	cost, err := g.SolveNS()
	if err != nil || cost != 0 {
		t.Fatalf("cost=%v err=%v, want 0,nil", cost, err)
	}
}

func TestNSSelfBalancedZero(t *testing.T) {
	// Supplies exactly matching demands through one arc chain.
	g := NewMinCostFlow(3)
	g.SetSupply(0, 2)
	g.SetSupply(2, -2)
	a := g.AddArc(0, 1, Inf, 1)
	b := g.AddArc(1, 2, Inf, 1)
	cost, err := g.SolveNS()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4 || g.Flow(a) != 2 || g.Flow(b) != 2 {
		t.Fatalf("cost=%v flows=%v,%v", cost, g.Flow(a), g.Flow(b))
	}
}
