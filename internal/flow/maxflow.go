// Package flow implements the network-flow substrate of the placer:
// a Dinic maximum-flow solver (movebound feasibility checks, paper
// Theorems 1 and 2) and a successive-shortest-path minimum-cost-flow solver
// with node potentials (the global FBP model of §IV.A and the local
// transportation steps of §III/§IV.B).
//
// Capacities and costs are float64 because the commodity being shipped is
// cell *area*; an epsilon of 1e-9 (relative to the instance scale) is used
// as the saturation tolerance throughout.
package flow

import (
	"math"

	"fbplace/internal/obs"
)

// Eps is the tolerance below which residual capacities and imbalances are
// treated as zero.
const Eps = 1e-9

// Inf is the capacity used for uncapacitated arcs.
var Inf = math.Inf(1)

type maxArc struct {
	to  int32
	rev int32 // index of reverse arc in adj[to]
	cap float64
}

// MaxFlow is a Dinic maximum-flow solver over a fixed node set.
type MaxFlow struct {
	adj   [][]maxArc
	level []int32
	iter  []int32

	// Obs, when non-nil, records counters "dinic.phases" and
	// "dinic.augments" per Solve run.
	Obs *obs.Recorder
	// Augments is the number of augmenting paths of the last Solve run.
	Augments int
}

// NewMaxFlow returns a solver with n nodes and no arcs.
func NewMaxFlow(n int) *MaxFlow {
	return &MaxFlow{
		adj:   make([][]maxArc, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
}

// NumNodes returns the number of nodes.
func (g *MaxFlow) NumNodes() int { return len(g.adj) }

// AddArc adds a directed arc from u to v with the given capacity and
// returns an opaque handle usable with Flow after solving.
func (g *MaxFlow) AddArc(u, v int, capacity float64) (handle [2]int32) {
	g.adj[u] = append(g.adj[u], maxArc{to: int32(v), rev: int32(len(g.adj[v])), cap: capacity})
	g.adj[v] = append(g.adj[v], maxArc{to: int32(u), rev: int32(len(g.adj[u]) - 1), cap: 0})
	return [2]int32{int32(u), int32(len(g.adj[u]) - 1)}
}

// Flow returns the flow on the arc identified by handle after Solve.
// It equals the residual capacity of the reverse arc.
func (g *MaxFlow) Flow(handle [2]int32) float64 {
	a := g.adj[handle[0]][handle[1]]
	return g.adj[a.to][a.rev].cap
}

func (g *MaxFlow) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int32, 0, len(g.adj))
	queue = append(queue, int32(s))
	g.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if a.cap > Eps && g.level[a.to] < 0 {
				g.level[a.to] = g.level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return g.level[t] >= 0
}

func (g *MaxFlow) dfs(u, t int32, f float64) float64 {
	if u == t {
		return f
	}
	for ; g.iter[u] < int32(len(g.adj[u])); g.iter[u]++ {
		a := &g.adj[u][g.iter[u]]
		if a.cap > Eps && g.level[a.to] == g.level[u]+1 {
			d := g.dfs(a.to, t, math.Min(f, a.cap))
			if d > Eps {
				a.cap -= d
				g.adj[a.to][a.rev].cap += d
				return d
			}
		}
	}
	return 0
}

// Solve computes the maximum s-t flow value. It may be called once per
// graph (capacities are consumed in place).
func (g *MaxFlow) Solve(s, t int) float64 {
	total := 0.0
	g.Augments = 0
	phases := 0
	for g.bfs(s, t) {
		phases++
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(int32(s), int32(t), Inf)
			if f <= Eps {
				break
			}
			total += f
			g.Augments++
		}
	}
	g.Obs.Count("dinic.phases", float64(phases))
	g.Obs.Count("dinic.augments", float64(g.Augments))
	return total
}
