package flow

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
)

// sspFault forces the successive-shortest-paths solver to fail at entry.
// Armed together with flow.ns.stall it proves that when the whole solver
// fallback chain is exhausted, the pipeline surfaces a structured error
// instead of a silently wrong placement.
var sspFault = faultsim.Register("flow.ssp.fail",
	"MinCostFlow.Solve (successive shortest paths) fails at entry")

// ArcID identifies an arc of a MinCostFlow instance, as returned by AddArc.
type ArcID int32

type mcfArc struct {
	to   int32
	rev  int32
	cap  float64 // residual capacity
	cost float64
}

// MinCostFlow solves the minimum-cost b-flow problem by successive
// shortest paths with node potentials (Dijkstra). All arc costs must be
// non-negative, which holds for every model in this repository: movement
// costs are L1 distances and external transit edges cost zero.
//
// Node imbalances are set with SetSupply (positive = supply, negative =
// demand). Supplies and demands need not balance: Solve routes all supply
// and reports infeasibility if some supply cannot reach remaining demand,
// which is exactly the feasibility test of paper Theorem 3.
type MinCostFlow struct {
	adj     [][]mcfArc
	supply  []float64
	arcPos  [][2]int32 // ArcID -> (node, index) of the forward arc
	maxCost float64

	// Obs, when non-nil, records the counter "ns.pivots" per SolveNS run.
	Obs *obs.Recorder
	// Ctx, when non-nil, is polled during Solve/SolveNS; a canceled or
	// expired context aborts the solve with the context's error.
	Ctx context.Context
	// Pivots is the number of simplex pivots of the last SolveNS (or
	// SolveNSWarm) run. It is published on every exit of the pivot loop —
	// including stalls and context aborts — so fallback paths keep the
	// work visible.
	Pivots int

	// lastNS retains the simplex state of the most recent SolveNS run so
	// ExportBasis can snapshot its spanning tree; lastSig is the matching
	// structural signature.
	lastNS  *netSimplex
	lastSig uint64

	// buildErr latches the first model-construction defect (negative arc
	// cost). Solve and SolveNS refuse to run a defective model, so the
	// error propagates through every caller without AddArc needing a
	// multi-value signature at each of its dozens of call sites.
	buildErr error

	// duals holds the optimality certificate of the last successful solve
	// (either engine); cleared at solve entry so a failed run never leaves
	// a stale certificate behind.
	duals *Duals
}

// Duals is the optimality certificate exported by a successful Solve or
// SolveNS run: the node potentials (dual variables) of the min-cost-flow
// LP, over which an independent checker can verify dual feasibility and
// complementary slackness (paper Theorem 3 conditions) without trusting
// the solver — in particular a warm-started simplex whose basis the
// structural signature accepted but whose tree was subtly wrong.
type Duals struct {
	// Pot[v] is the potential of real node v (the nodes that existed when
	// the solve started; solver-internal super/dummy nodes are excluded).
	Pot []float64
	// Arcs is the number of real arcs at solve entry: certificates apply
	// to ArcIDs < Arcs (Solve appends internal supply/demand arcs).
	Arcs int
	// CostScale is 1 + the maximum finite arc cost, the scale on which
	// reduced-cost tolerances are meaningful for this instance.
	CostScale float64
}

// Duals returns the certificate of the most recent successful solve, or
// nil when the last solve failed (or none ran). The slice is owned by the
// instance; callers must not modify it.
func (g *MinCostFlow) Duals() *Duals { return g.duals }

// ArcInfo reports the endpoints, original capacity and cost of arc id.
// Capacity is reconstructed from the residual pair, so it is valid before
// and after a solve.
func (g *MinCostFlow) ArcInfo(id ArcID) (from, to int, capacity, cost float64) {
	p := g.arcPos[id]
	a := g.adj[p[0]][p[1]]
	return int(p[0]), int(a.to), a.cap + g.adj[a.to][a.rev].cap, a.cost
}

// NewMinCostFlow returns an instance with n nodes.
func NewMinCostFlow(n int) *MinCostFlow {
	return &MinCostFlow{
		adj:    make([][]mcfArc, n),
		supply: make([]float64, n),
	}
}

// NumNodes returns the number of nodes.
func (g *MinCostFlow) NumNodes() int { return len(g.adj) }

// NumArcs returns the number of forward arcs added.
func (g *MinCostFlow) NumArcs() int { return len(g.arcPos) }

// AddNode appends a node and returns its index.
func (g *MinCostFlow) AddNode() int {
	g.adj = append(g.adj, nil)
	g.supply = append(g.supply, 0)
	return len(g.adj) - 1
}

// SetSupply sets node v's imbalance: b > 0 is supply, b < 0 demand.
func (g *MinCostFlow) SetSupply(v int, b float64) { g.supply[v] = b }

// AddSupply accumulates into node v's imbalance.
func (g *MinCostFlow) AddSupply(v int, b float64) { g.supply[v] += b }

// Supply returns the imbalance of node v.
func (g *MinCostFlow) Supply(v int) float64 { return g.supply[v] }

// AddArc adds a directed arc u->v with the given capacity (use flow.Inf
// for uncapacitated) and non-negative cost. A negative or NaN cost is a
// model-construction bug (all costs in the placement models are
// distances); it is latched as a build error — returned by BuildErr and by
// the next Solve/SolveNS call — instead of crashing the process, and the
// arc is added with cost 0 so the instance stays structurally consistent.
func (g *MinCostFlow) AddArc(u, v int, capacity, cost float64) ArcID {
	if cost < 0 || math.IsNaN(cost) {
		if g.buildErr == nil {
			g.buildErr = fmt.Errorf("flow: invalid arc cost %g on arc %d->%d", cost, u, v)
		}
		cost = 0
	}
	if cost > g.maxCost && !math.IsInf(cost, 1) {
		g.maxCost = cost
	}
	g.adj[u] = append(g.adj[u], mcfArc{to: int32(v), rev: int32(len(g.adj[v])), cap: capacity, cost: cost})
	g.adj[v] = append(g.adj[v], mcfArc{to: int32(u), rev: int32(len(g.adj[u]) - 1), cap: 0, cost: -cost})
	id := ArcID(len(g.arcPos))
	g.arcPos = append(g.arcPos, [2]int32{int32(u), int32(len(g.adj[u]) - 1)})
	return id
}

// BuildErr returns the first model-construction defect recorded by AddArc
// (nil for a well-formed model).
func (g *MinCostFlow) BuildErr() error { return g.buildErr }

// Flow returns the flow routed on arc id after Solve.
func (g *MinCostFlow) Flow(id ArcID) float64 {
	p := g.arcPos[id]
	a := g.adj[p[0]][p[1]]
	return g.adj[a.to][a.rev].cap
}

// ErrInfeasible is returned by Solve when the supplies cannot be routed to
// the demands — for the FBP model this certifies (Theorem 3) that no
// fractional placement respecting the movebounds exists.
type ErrInfeasible struct {
	// Unrouted is the amount of supply that could not reach any demand.
	Unrouted float64
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("flow: infeasible instance, %g supply unrouted", e.Unrouted)
}

type pqItem struct {
	node int32
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve routes as much supply as possible to the demands at minimum cost
// and returns the total cost. If some supply cannot be routed it returns
// the cost of the routed part together with an *ErrInfeasible.
//
// Implementation: a super source is connected to all supply nodes and a
// super sink to all demand nodes, then successive shortest augmenting
// paths with Johnson potentials keep every Dijkstra run on non-negative
// reduced costs.
func (g *MinCostFlow) Solve() (float64, error) {
	if g.buildErr != nil {
		return 0, g.buildErr
	}
	if err := sspFault.Check(); err != nil {
		return 0, fmt.Errorf("flow: ssp solve: %w", err)
	}
	g.duals = nil
	n := len(g.adj)
	realArcs := len(g.arcPos)
	s, t := g.AddNode(), g.AddNode()
	totalSupply := 0.0
	for v := 0; v < n; v++ {
		b := g.supply[v]
		if b > Eps {
			g.AddArc(s, v, b, 0)
			totalSupply += b
		} else if b < -Eps {
			g.AddArc(v, t, -b, 0)
		}
	}
	pot := make([]float64, len(g.adj))
	dist := make([]float64, len(g.adj))
	routed := 0.0
	totalCost := 0.0
	iter := make([]int32, len(g.adj))
	onPath := make([]bool, len(g.adj))
	for totalSupply-routed > Eps {
		// One augmentation round is bounded work, so polling the context
		// here keeps the abort latency proportional to a single Dijkstra
		// plus blocking flow.
		if g.Ctx != nil {
			if err := g.Ctx.Err(); err != nil {
				return totalCost, err
			}
		}
		// Dijkstra on reduced costs from s (full run: the blocking-flow
		// phase below needs distances to every node on shortest paths).
		for i := range dist {
			dist[i] = Inf
		}
		dist[s] = 0
		pq := priorityQueue{{node: int32(s)}}
		for len(pq) > 0 {
			it := heap.Pop(&pq).(pqItem)
			u := it.node
			if it.dist > dist[u]+Eps {
				continue
			}
			for ai := range g.adj[u] {
				a := &g.adj[u][ai]
				if a.cap <= Eps {
					continue
				}
				rc := a.cost + pot[u] - pot[a.to]
				if rc < 0 {
					rc = 0 // numerical guard; exact potentials keep rc >= 0
				}
				nd := dist[u] + rc
				if nd+Eps < dist[a.to] {
					dist[a.to] = nd
					heap.Push(&pq, pqItem{node: a.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return totalCost, &ErrInfeasible{Unrouted: totalSupply - routed}
		}
		for i := range pot {
			// Unreachable nodes keep dist[t] (the standard Johnson fix);
			// they can never rejoin an augmenting path, but this keeps all
			// stored potentials finite.
			pot[i] += math.Min(dist[i], dist[t])
		}
		// Blocking-flow phase (Dinic-style SSP): with the updated
		// potentials every arc on a shortest s-t path has reduced cost 0.
		// A DFS with current-arc pointers pushes flow along such
		// admissible arcs until no augmenting path remains, so one
		// Dijkstra serves many saturations. onPath guards against the
		// zero-cost cycles the model contains (opposite external edges).
		for i := range iter {
			iter[i] = 0
		}
		pushed := g.blockingFlow(s, t, totalSupply-routed, pot, iter, onPath, &totalCost)
		routed += pushed
		if pushed <= Eps {
			return totalCost, &ErrInfeasible{Unrouted: totalSupply - routed}
		}
	}
	// SSP terminates with every residual arc at non-negative reduced cost
	// under pot, which is exactly dual feasibility; export the certificate.
	g.duals = &Duals{
		Pot:       append([]float64(nil), pot[:n]...),
		Arcs:      realArcs,
		CostScale: 1 + g.maxCost,
	}
	return totalCost, nil
}

// blockingFlow pushes flow from s to t along arcs whose reduced cost under
// pot is (numerically) zero, using an iterative DFS with current-arc
// pointers. It returns the total amount pushed and accumulates arc costs.
func (g *MinCostFlow) blockingFlow(s, t int, limit float64, pot []float64, iter []int32, onPath []bool, totalCost *float64) float64 {
	type frame struct {
		node int32
		arc  int32 // arc taken from the PREVIOUS frame's node to reach this one
	}
	total := 0.0
	// Safety valve: zero-cost cycles can in principle make augmentations
	// cancel each other's saturations; cap the phase and let the next
	// Dijkstra continue (correctness never depends on the blocking flow
	// being complete).
	for rounds := 0; total < limit-Eps && rounds <= 4*len(g.arcPos)+16; rounds++ {
		// DFS from s.
		stack := []frame{{node: int32(s), arc: -1}}
		onPath[s] = true
		found := false
		for len(stack) > 0 && !found {
			u := stack[len(stack)-1].node
			advanced := false
			for ; iter[u] < int32(len(g.adj[u])); iter[u]++ {
				a := &g.adj[u][iter[u]]
				if a.cap <= Eps || onPath[a.to] {
					continue
				}
				rc := a.cost + pot[u] - pot[a.to]
				if rc > Eps || rc < -Eps {
					continue
				}
				// Take the arc.
				stack = append(stack, frame{node: a.to, arc: iter[u]})
				onPath[a.to] = true
				advanced = true
				if a.to == int32(t) {
					found = true
				}
				break
			}
			if !advanced && !found {
				// Retreat: this node is exhausted for the phase.
				onPath[u] = false
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					iter[p.node]++ // skip the arc that led to the dead end
				}
			}
		}
		if !found {
			for _, f := range stack {
				onPath[f.node] = false
			}
			break
		}
		// Bottleneck and push along the stack path.
		push := limit - total
		for i := 1; i < len(stack); i++ {
			a := &g.adj[stack[i-1].node][stack[i].arc]
			if a.cap < push {
				push = a.cap
			}
		}
		for i := 1; i < len(stack); i++ {
			a := &g.adj[stack[i-1].node][stack[i].arc]
			a.cap -= push
			g.adj[a.to][a.rev].cap += push
			*totalCost += push * a.cost
		}
		total += push
		for _, f := range stack {
			onPath[f.node] = false
		}
	}
	return total
}

// Cost recomputes the total cost of the current flow from scratch
// (diagnostics and tests).
func (g *MinCostFlow) Cost() float64 {
	total := 0.0
	for id := range g.arcPos {
		p := g.arcPos[id]
		a := g.adj[p[0]][p[1]]
		if !math.IsInf(a.cost, 1) {
			total += g.Flow(ArcID(id)) * a.cost
		}
	}
	return total
}
