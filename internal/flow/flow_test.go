package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowSimplePath(t *testing.T) {
	g := NewMaxFlow(3)
	a := g.AddArc(0, 1, 5)
	b := g.AddArc(1, 2, 3)
	if got := g.Solve(0, 2); got != 3 {
		t.Fatalf("max flow = %v, want 3", got)
	}
	if g.Flow(a) != 3 || g.Flow(b) != 3 {
		t.Fatalf("arc flows = %v, %v", g.Flow(a), g.Flow(b))
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	//   0 -> 1 -> 3
	//   0 -> 2 -> 3 with a cross arc 1->2
	g := NewMaxFlow(4)
	g.AddArc(0, 1, 10)
	g.AddArc(0, 2, 4)
	g.AddArc(1, 2, 6)
	g.AddArc(1, 3, 5)
	g.AddArc(2, 3, 9)
	if got := g.Solve(0, 3); got != 14 {
		t.Fatalf("max flow = %v, want 14", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewMaxFlow(4)
	g.AddArc(0, 1, 5)
	g.AddArc(2, 3, 5)
	if got := g.Solve(0, 3); got != 0 {
		t.Fatalf("max flow = %v, want 0", got)
	}
}

func TestMaxFlowFractionalCapacities(t *testing.T) {
	g := NewMaxFlow(3)
	g.AddArc(0, 1, 2.5)
	g.AddArc(0, 1, 0.25)
	g.AddArc(1, 2, 10)
	if got := g.Solve(0, 2); math.Abs(got-2.75) > 1e-9 {
		t.Fatalf("max flow = %v, want 2.75", got)
	}
}

// Property: Dinic's value equals the value of a brute-force min cut on
// small random graphs (max-flow = min-cut).
func TestMaxFlowMatchesMinCut(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		if !checkMaxFlowMinCut(rng, n) {
			t.Fatalf("seed %d: maxflow != mincut", seed)
		}
	}
}

func checkMaxFlowMinCut(rng *rand.Rand, n int) bool {
	type arc struct {
		u, v int
		c    float64
	}
	var arcs []arc
	g := NewMaxFlow(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := float64(1 + rng.Intn(9))
		arcs = append(arcs, arc{u, v, c})
		g.AddArc(u, v, c)
	}
	val := g.Solve(0, n-1)
	// Brute-force min cut over all subsets containing source 0, not sink.
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&1 == 0 || mask&(1<<(n-1)) != 0 {
			continue
		}
		cut := 0.0
		for _, a := range arcs {
			if mask&(1<<a.u) != 0 && mask&(1<<a.v) == 0 {
				cut += a.c
			}
		}
		if cut < best {
			best = cut
		}
	}
	return math.Abs(val-best) < 1e-6
}

func TestMCFSimpleTransport(t *testing.T) {
	// One supply node (b=4), two demand nodes (-3, -2). Cheap sink first.
	g := NewMinCostFlow(3)
	g.SetSupply(0, 4)
	g.SetSupply(1, -3)
	g.SetSupply(2, -2)
	a1 := g.AddArc(0, 1, Inf, 1)
	a2 := g.AddArc(0, 2, Inf, 5)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-(3*1+1*5)) > 1e-9 {
		t.Fatalf("cost = %v, want 8", cost)
	}
	if math.Abs(g.Flow(a1)-3) > 1e-9 || math.Abs(g.Flow(a2)-1) > 1e-9 {
		t.Fatalf("flows = %v, %v", g.Flow(a1), g.Flow(a2))
	}
}

func TestMCFRespectsCapacities(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 10)
	g.SetSupply(2, -10)
	cheap := g.AddArc(0, 2, 4, 1) // capacity 4 on the cheap arc
	expensive := g.AddArc(0, 1, Inf, 1)
	g.AddArc(1, 2, Inf, 3)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Flow(cheap)-4) > 1e-9 {
		t.Fatalf("cheap flow = %v, want 4", g.Flow(cheap))
	}
	if math.Abs(g.Flow(expensive)-6) > 1e-9 {
		t.Fatalf("expensive flow = %v", g.Flow(expensive))
	}
	if math.Abs(cost-(4*1+6*4)) > 1e-9 {
		t.Fatalf("cost = %v, want 28", cost)
	}
}

func TestMCFInfeasible(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 5)
	g.SetSupply(1, -2) // reachable demand too small
	g.SetSupply(2, -10)
	g.AddArc(0, 1, Inf, 1) // node 2 unreachable
	_, err := g.Solve()
	inf, ok := err.(*ErrInfeasible)
	if !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if math.Abs(inf.Unrouted-3) > 1e-9 {
		t.Fatalf("unrouted = %v, want 3", inf.Unrouted)
	}
}

func TestMCFExcessDemandOK(t *testing.T) {
	// More demand than supply is fine: all supply routed.
	g := NewMinCostFlow(2)
	g.SetSupply(0, 3)
	g.SetSupply(1, -100)
	g.AddArc(0, 1, Inf, 2)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-6) > 1e-9 {
		t.Fatalf("cost = %v, want 6", cost)
	}
}

func TestMCFZeroCostTransitChain(t *testing.T) {
	// Mirrors the FBP external edges: a chain of zero-cost arcs between
	// transit nodes, demand at the far end.
	g := NewMinCostFlow(4)
	g.SetSupply(0, 7)
	g.SetSupply(3, -7)
	g.AddArc(0, 1, Inf, 2)
	g.AddArc(1, 2, Inf, 0)
	g.AddArc(2, 3, Inf, 0)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-14) > 1e-9 {
		t.Fatalf("cost = %v", cost)
	}
}

func TestMCFNegativeCostBuildError(t *testing.T) {
	g := NewMinCostFlow(2)
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	g.AddArc(0, 1, 1, -1)
	if err := g.BuildErr(); err == nil {
		t.Fatal("expected build error on negative arc cost")
	}
	if _, err := g.Solve(); err == nil {
		t.Fatal("Solve accepted a model with a negative arc cost")
	}
	if _, err := g.SolveNS(); err == nil {
		t.Fatal("SolveNS accepted a model with a negative arc cost")
	}
	// NaN costs are model-construction bugs too.
	g2 := NewMinCostFlow(2)
	g2.AddArc(0, 1, 1, math.NaN())
	if err := g2.BuildErr(); err == nil {
		t.Fatal("expected build error on NaN arc cost")
	}
}

// Property: on random transportation instances the SSP solution matches a
// brute-force enumeration over unit assignments.
func TestMCFMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSrc := 1 + rng.Intn(3)
		nSnk := 1 + rng.Intn(3)
		supplies := make([]int, nSrc)
		units := 0
		for i := range supplies {
			supplies[i] = 1 + rng.Intn(3)
			units += supplies[i]
		}
		caps := make([]int, nSnk)
		remaining := units
		for i := range caps {
			caps[i] = 1 + rng.Intn(4)
			remaining -= caps[i]
		}
		if remaining > 0 {
			caps[0] += remaining // ensure feasibility
		}
		costs := make([][]float64, nSrc)
		for i := range costs {
			costs[i] = make([]float64, nSnk)
			for j := range costs[i] {
				costs[i][j] = float64(rng.Intn(10))
			}
		}
		g := NewMinCostFlow(nSrc + nSnk)
		for i, s := range supplies {
			g.SetSupply(i, float64(s))
		}
		for j, c := range caps {
			g.SetSupply(nSrc+j, -float64(c))
		}
		for i := 0; i < nSrc; i++ {
			for j := 0; j < nSnk; j++ {
				g.AddArc(i, nSrc+j, Inf, costs[i][j])
			}
		}
		got, err := g.Solve()
		if err != nil {
			return false
		}
		want := bruteTransport(supplies, caps, costs)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// bruteTransport enumerates all unit-by-unit assignments.
func bruteTransport(supplies, caps []int, costs [][]float64) float64 {
	type unit struct{ src int }
	var units []unit
	for i, s := range supplies {
		for k := 0; k < s; k++ {
			units = append(units, unit{i})
		}
	}
	used := make([]int, len(caps))
	best := math.Inf(1)
	var rec func(u int, acc float64)
	rec = func(u int, acc float64) {
		if acc >= best {
			return
		}
		if u == len(units) {
			best = acc
			return
		}
		for j := range caps {
			if used[j] < caps[j] {
				used[j]++
				rec(u+1, acc+costs[units[u].src][j])
				used[j]--
			}
		}
	}
	rec(0, 0)
	return best
}

// Property: flow conservation holds at every intermediate node.
func TestMCFConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(6)
		g := NewMinCostFlow(n)
		g.SetSupply(0, 10)
		g.SetSupply(n-1, -10)
		type rec struct {
			id   ArcID
			u, v int
		}
		var arcs []rec
		for i := 0; i < 4*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddArc(u, v, float64(1+rng.Intn(5)), float64(rng.Intn(6)))
			arcs = append(arcs, rec{id, u, v})
		}
		_, err := g.Solve()
		if err != nil {
			continue // infeasible random instance; fine
		}
		bal := make([]float64, n)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < -1e-9 {
				t.Fatalf("negative flow %v", f)
			}
			bal[a.u] -= f
			bal[a.v] += f
		}
		for v := 0; v < n; v++ {
			want := -g.Supply(v)
			if v != 0 && v != n-1 {
				want = 0
			}
			if math.Abs(bal[v]-want) > 1e-6 {
				t.Fatalf("trial %d: node %d balance %v, want %v", trial, v, bal[v], want)
			}
		}
	}
}

func TestMCFCostRecompute(t *testing.T) {
	g := NewMinCostFlow(3)
	g.SetSupply(0, 4)
	g.SetSupply(2, -4)
	g.AddArc(0, 1, Inf, 1)
	g.AddArc(1, 2, Inf, 2)
	cost, err := g.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-g.Cost()) > 1e-9 {
		t.Fatalf("Solve cost %v != recomputed %v", cost, g.Cost())
	}
}

func BenchmarkMCFGrid(b *testing.B) {
	// A k x k grid of transit-like nodes with supplies in one corner and
	// demands in the other; representative of the FBP model topology.
	k := 30
	build := func() *MinCostFlow {
		g := NewMinCostFlow(k * k)
		id := func(x, y int) int { return y*k + x }
		for y := 0; y < k; y++ {
			for x := 0; x < k; x++ {
				if x+1 < k {
					g.AddArc(id(x, y), id(x+1, y), Inf, 1)
					g.AddArc(id(x+1, y), id(x, y), Inf, 1)
				}
				if y+1 < k {
					g.AddArc(id(x, y), id(x, y+1), Inf, 1)
					g.AddArc(id(x, y+1), id(x, y), Inf, 1)
				}
			}
		}
		for i := 0; i < k; i++ {
			g.SetSupply(id(i%5, i/5), 1)
			g.SetSupply(id(k-1-i%5, k-1-i/5), -1)
		}
		return g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build()
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
