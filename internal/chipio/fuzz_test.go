package chipio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzReadChip drives Read with arbitrary input. The parser must never
// panic; failures must be structured ParseErrors or wrapped validation
// errors; and any accepted instance must validate, survive a Write/Read
// round trip, and keep its shape across it.
func FuzzReadChip(f *testing.F) {
	f.Add("FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1 5 5\nCELL b 2 1 3 3 FIXED\nNET n 2 2 PIN 0 0 0 PAD 1 1\n")
	f.Add("FBPLACE v1\nAREA 0 0 20 20 ROWHEIGHT 2\nMOVEBOUND m inclusive 1 0 0 5 5\nCELL a 1 1 5 5 MB 0\n")
	f.Add("FBPLACE v1\nAREA 0 0 1 1 ROWHEIGHT 1\n")
	f.Add("FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1 5 5\nNET n 1 1 PIN 4294967299 0 0\n")
	f.Add("# comment\nFBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT NaN\n")
	f.Fuzz(func(t *testing.T, data string) {
		n, mbs, err := Read(strings.NewReader(data))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !strings.HasPrefix(err.Error(), "chipio:") {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			return
		}
		if verr := n.Validate(len(mbs)); verr != nil {
			t.Fatalf("accepted instance fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, n, mbs); werr != nil {
			t.Fatalf("rewrite failed: %v", werr)
		}
		n2, mbs2, rerr := Read(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("rewrite does not parse: %v\n%s", rerr, buf.Bytes())
		}
		if n2.NumCells() != n.NumCells() || n2.NumNets() != n.NumNets() || len(mbs2) != len(mbs) {
			t.Fatalf("round trip changed shape: %d/%d cells, %d/%d nets, %d/%d movebounds",
				n2.NumCells(), n.NumCells(), n2.NumNets(), n.NumNets(), len(mbs2), len(mbs))
		}
	})
}
