// Package chipio reads and writes placement instances as a simple
// line-oriented text format, so generated testbeds can be stored and the
// placer CLI can operate on files (in the spirit of the bookshelf format
// of the ISPD contests, but self-contained in one file including
// movebounds and positions).
//
// Format (whitespace separated, '#' starts a comment line):
//
//	FBPLACE v1
//	AREA xlo ylo xhi yhi ROWHEIGHT h
//	MOVEBOUND <name> inclusive|exclusive <nrects> { xlo ylo xhi yhi }...
//	CELL <name> <w> <h> <x> <y> [FIXED] [MB <idx>]
//	NET <name> <weight> <npins> { PIN <cell-index> <dx> <dy> | PAD <x> <y> }...
package chipio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// ParseError reports malformed chipio input with the 1-based line number
// the parser stopped at. Semantic errors found after parsing (dangling PIN
// references, bad movebound indices) are reported by netlist.Validate
// instead and carry no line.
type ParseError struct {
	Line   int
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("chipio: line %d: %s", e.Line, e.Reason)
}

// Write serializes the netlist and movebounds.
func Write(w io.Writer, n *netlist.Netlist, mbs []region.Movebound) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "FBPLACE v1")
	fmt.Fprintf(bw, "AREA %g %g %g %g ROWHEIGHT %g\n",
		n.Area.Xlo, n.Area.Ylo, n.Area.Xhi, n.Area.Yhi, n.RowHeight)
	for _, m := range mbs {
		fmt.Fprintf(bw, "MOVEBOUND %s %s %d", sanitize(m.Name), m.Kind, len(m.Area))
		for _, r := range m.Area {
			fmt.Fprintf(bw, " %g %g %g %g", r.Xlo, r.Ylo, r.Xhi, r.Yhi)
		}
		fmt.Fprintln(bw)
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		fmt.Fprintf(bw, "CELL %s %g %g %g %g", sanitize(c.Name), c.Width, c.Height, n.X[i], n.Y[i])
		if c.Fixed {
			fmt.Fprint(bw, " FIXED")
		}
		if c.Movebound != netlist.NoMovebound {
			fmt.Fprintf(bw, " MB %d", c.Movebound)
		}
		fmt.Fprintln(bw)
	}
	for ni := range n.Nets {
		net := &n.Nets[ni]
		fmt.Fprintf(bw, "NET %s %g %d", sanitize(net.Name), net.Weight, len(net.Pins))
		for _, p := range net.Pins {
			if p.IsPad() {
				fmt.Fprintf(bw, " PAD %g %g", p.Offset.X, p.Offset.Y)
			} else {
				fmt.Fprintf(bw, " PIN %d %g %g", p.Cell, p.Offset.X, p.Offset.Y)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.ReplaceAll(s, " ", "_")
}

// Read parses an instance written by Write.
func Read(r io.Reader) (*netlist.Netlist, []region.Movebound, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			return strings.Fields(text), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	bad := func(msg string, args ...interface{}) error {
		return &ParseError{Line: line, Reason: fmt.Sprintf(msg, args...)}
	}

	head, err := next()
	if err != nil || len(head) < 2 || head[0] != "FBPLACE" || head[1] != "v1" {
		return nil, nil, bad("missing FBPLACE v1 header")
	}
	area, err := next()
	if err != nil || len(area) != 7 || area[0] != "AREA" || area[5] != "ROWHEIGHT" {
		return nil, nil, bad("missing AREA line")
	}
	f := func(s string) float64 {
		v, e := strconv.ParseFloat(s, 64)
		if err == nil {
			switch {
			case e != nil:
				err = bad("bad number %q", s)
			case math.IsNaN(v) || math.IsInf(v, 0):
				// ParseFloat accepts "NaN" and "Inf"; neither has a meaning
				// in any chipio field.
				err = bad("non-finite number %q", s)
			}
		}
		return v
	}
	chip := geom.Rect{Xlo: f(area[1]), Ylo: f(area[2]), Xhi: f(area[3]), Yhi: f(area[4])}
	rh := f(area[6])
	if err != nil {
		return nil, nil, err
	}
	n := netlist.New(chip, rh)
	var mbs []region.Movebound

	for {
		fields, nerr := next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			return nil, nil, nerr
		}
		switch fields[0] {
		case "MOVEBOUND":
			if len(fields) < 4 {
				return nil, nil, bad("short MOVEBOUND line")
			}
			kind := region.Inclusive
			switch fields[2] {
			case "inclusive":
			case "exclusive":
				kind = region.Exclusive
			default:
				return nil, nil, bad("bad movebound kind %q", fields[2])
			}
			cnt, cerr := strconv.Atoi(fields[3])
			if cerr != nil || len(fields) != 4+4*cnt {
				return nil, nil, bad("bad MOVEBOUND rect count")
			}
			mb := region.Movebound{Name: fields[1], Kind: kind}
			for i := 0; i < cnt; i++ {
				mb.Area = append(mb.Area, geom.Rect{
					Xlo: f(fields[4+4*i]), Ylo: f(fields[5+4*i]),
					Xhi: f(fields[6+4*i]), Yhi: f(fields[7+4*i]),
				})
			}
			if err != nil {
				return nil, nil, err
			}
			mbs = append(mbs, mb)
		case "CELL":
			if len(fields) < 6 {
				return nil, nil, bad("short CELL line")
			}
			c := netlist.Cell{Name: fields[1], Width: f(fields[2]), Height: f(fields[3]), Movebound: netlist.NoMovebound}
			x, y := f(fields[4]), f(fields[5])
			for i := 6; i < len(fields); i++ {
				switch fields[i] {
				case "FIXED":
					c.Fixed = true
				case "MB":
					if i+1 >= len(fields) {
						return nil, nil, bad("MB without index")
					}
					mb, merr := strconv.Atoi(fields[i+1])
					if merr != nil {
						return nil, nil, bad("bad MB index %q", fields[i+1])
					}
					c.Movebound = mb
					i++
				default:
					return nil, nil, bad("unknown CELL attribute %q", fields[i])
				}
			}
			if err != nil {
				return nil, nil, err
			}
			id := n.AddCell(c)
			n.SetPos(id, geom.Point{X: x, Y: y})
		case "NET":
			if len(fields) < 4 {
				return nil, nil, bad("short NET line")
			}
			cnt, cerr := strconv.Atoi(fields[3])
			if cerr != nil {
				return nil, nil, bad("bad pin count %q", fields[3])
			}
			net := netlist.Net{Name: fields[1], Weight: f(fields[2])}
			pos := 4
			for i := 0; i < cnt; i++ {
				if pos >= len(fields) {
					return nil, nil, bad("truncated NET pins")
				}
				switch fields[pos] {
				case "PAD":
					if pos+2 >= len(fields) {
						return nil, nil, bad("truncated PAD")
					}
					net.Pins = append(net.Pins, netlist.Pin{Cell: -1, Offset: geom.Point{X: f(fields[pos+1]), Y: f(fields[pos+2])}})
					pos += 3
				case "PIN":
					if pos+3 >= len(fields) {
						return nil, nil, bad("truncated PIN")
					}
					ci, cerr := strconv.Atoi(fields[pos+1])
					// The upper bound matters: CellID is int32, and a huge
					// index would wrap negative and silently turn the pin
					// into a pad instead of failing Validate.
					if cerr != nil || ci < 0 || ci > math.MaxInt32 {
						return nil, nil, bad("bad PIN cell %q", fields[pos+1])
					}
					net.Pins = append(net.Pins, netlist.Pin{Cell: netlist.CellID(ci), Offset: geom.Point{X: f(fields[pos+2]), Y: f(fields[pos+3])}})
					pos += 4
				default:
					return nil, nil, bad("unknown pin kind %q", fields[pos])
				}
			}
			if err != nil {
				return nil, nil, err
			}
			n.AddNet(net)
		default:
			return nil, nil, bad("unknown record %q", fields[0])
		}
	}
	if err := n.Validate(len(mbs)); err != nil {
		return nil, nil, fmt.Errorf("chipio: %w", err)
	}
	return n, mbs, nil
}
