package chipio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fbplace/internal/gen"
	"fbplace/internal/region"
)

func TestRoundTrip(t *testing.T) {
	inst, err := gen.Chip(gen.ChipSpec{
		Name: "io", NumCells: 300, Seed: 5, NumMacros: 2,
		Movebounds: []gen.MoveboundSpec{
			{Kind: region.Inclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
			{Kind: region.Exclusive, CellFraction: 0.05, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, inst.N, inst.Movebounds); err != nil {
		t.Fatal(err)
	}
	n2, mbs2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.N
	if n2.NumCells() != n.NumCells() || n2.NumNets() != n.NumNets() {
		t.Fatalf("counts differ: %d/%d cells, %d/%d nets",
			n2.NumCells(), n.NumCells(), n2.NumNets(), n.NumNets())
	}
	if n2.Area != n.Area || n2.RowHeight != n.RowHeight {
		t.Fatalf("area/rowheight differ")
	}
	for i := range n.Cells {
		a, b := n.Cells[i], n2.Cells[i]
		if a.Width != b.Width || a.Height != b.Height || a.Fixed != b.Fixed || a.Movebound != b.Movebound || a.Name != b.Name {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a, b)
		}
		if n.X[i] != n2.X[i] || n.Y[i] != n2.Y[i] {
			t.Fatalf("cell %d position differs", i)
		}
	}
	if len(mbs2) != len(inst.Movebounds) {
		t.Fatalf("movebound count differs")
	}
	for m := range mbs2 {
		if mbs2[m].Kind != inst.Movebounds[m].Kind || len(mbs2[m].Area) != len(inst.Movebounds[m].Area) {
			t.Fatalf("movebound %d differs", m)
		}
	}
	// HPWL must be identical (pins, weights, offsets preserved).
	if n.HPWL() != n2.HPWL() {
		t.Fatalf("HPWL differs: %g vs %g", n.HPWL(), n2.HPWL())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	// line 0 means "rejected, but by post-parse validation, no position".
	cases := map[string]struct {
		input string
		line  int
	}{
		"no header":       {"AREA 0 0 1 1 ROWHEIGHT 1\n", 1},
		"bad area":        {"FBPLACE v1\nAREA 0 0 1\n", 2},
		"non-finite area": {"FBPLACE v1\nAREA 0 0 Inf 10 ROWHEIGHT 1\n", 2},
		"bad kind":        {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nMOVEBOUND m sideways 1 0 0 1 1\n", 3},
		"bad record":      {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nBLOB x\n", 3},
		"short cell":      {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1\n", 3},
		"nan cell size":   {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a NaN 1 5 5\n", 3},
		"bad pin index":   {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1 5 5\nNET n 1 1 PIN x 0 0\n", 4},
		// A pin index past int32 would wrap negative in CellID and silently
		// become a pad; it must be rejected at parse time.
		"huge pin index": {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1 5 5\nNET n 1 1 PIN 4294967299 0 0\n", 4},
		"bad pin ref":    {"FBPLACE v1\nAREA 0 0 10 10 ROWHEIGHT 1\nCELL a 1 1 5 5\nNET n 1 1 PIN 7 0 0\n", 0},
	}
	for name, tc := range cases {
		_, _, err := Read(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var pe *ParseError
		if tc.line == 0 {
			if errors.As(err, &pe) {
				t.Errorf("%s: want validation error, got ParseError %v", name, err)
			}
			continue
		}
		if !errors.As(err, &pe) {
			t.Errorf("%s: want *ParseError, got %T: %v", name, err, err)
		} else if pe.Line != tc.line {
			t.Errorf("%s: line = %d, want %d (%v)", name, pe.Line, tc.line, err)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := `
# a comment
FBPLACE v1

AREA 0 0 10 10 ROWHEIGHT 1
# cells
CELL a 1 1 5 5
CELL b 2 1 3 3 FIXED
NET n 2 2 PIN 0 0 0 PAD 1 1
`
	n, _, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 2 || n.NumNets() != 1 {
		t.Fatalf("parsed %d cells, %d nets", n.NumCells(), n.NumNets())
	}
	if !n.Cells[1].Fixed {
		t.Fatal("FIXED lost")
	}
	if n.Nets[0].Weight != 2 {
		t.Fatalf("weight = %v", n.Nets[0].Weight)
	}
}

// Property: write/read round-trips preserve HPWL and structure for random
// generated instances.
func TestRoundTripRandomInstances(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		inst, err := gen.Chip(gen.ChipSpec{
			Name: "rt", NumCells: 150 + int(seed)*17, Seed: seed, NumMacros: int(seed % 3),
			Movebounds: []gen.MoveboundSpec{
				{Kind: region.Inclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1, LShaped: seed%2 == 0},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, inst.N, inst.Movebounds); err != nil {
			t.Fatal(err)
		}
		n2, mbs2, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n2.HPWL() != inst.N.HPWL() {
			t.Fatalf("seed %d: HPWL changed", seed)
		}
		if len(mbs2[0].Area) != len(inst.Movebounds[0].Area) {
			t.Fatalf("seed %d: area rect count changed", seed)
		}
	}
}
