// Package certify implements independent result certification for the
// placement pipeline: end-to-end checks that re-derive, from first
// principles, whether a solver's answer is actually a solution — without
// trusting the solver that produced it. The certificates mirror the
// paper's exact conditions (Theorem 3 feasibility/optimality for the flow
// model, Definition 1 legality for placements) and exist because the hot
// path runs aggressive shortcuts (warm-started simplex, pair-pass
// realization, speculative parallel windows) whose correctness would
// otherwise be asserted only in tests.
//
// Certification failures are reported as *Error carrying the layer, the
// level, the violated invariant and a concrete witness, so repair logic
// (internal/placer safe mode, internal/serve retry) can distinguish a
// wrong answer from an engine failure. Context cancellation is returned
// as the context's error, never as *Error: an aborted check says nothing
// about the result.
package certify

import (
	"context"
	"fmt"
	"math"

	"fbplace/internal/fbp"
	"fbplace/internal/flow"
	"fbplace/internal/grid"
	"fbplace/internal/legalize"
	"fbplace/internal/metrics"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/region"
	"fbplace/internal/transport"
)

// Error reports a failed certificate. It identifies the pipeline layer,
// the level the check ran at (-1 for final checks), the invariant that
// does not hold and a concrete witness of the violation.
type Error struct {
	// Layer is "flow", "transport", "partition", "positions" or
	// "placement".
	Layer string
	// Level is the global-placement level the check ran at, -1 for
	// whole-placement (final) checks.
	Level int
	// Invariant names the violated condition (e.g. "complementary-
	// slackness", "row-conservation", "hpwl-mismatch").
	Invariant string
	// Witness pins the violation to concrete data: node/arc/cell indices
	// and the offending values.
	Witness string
}

func (e *Error) Error() string {
	return fmt.Sprintf("certify: %s level %d: %s violated: %s", e.Layer, e.Level, e.Invariant, e.Witness)
}

// Checker runs the per-layer certificates. The zero value checks without
// observability or cancellation; all methods are safe for concurrent use
// from multiple goroutines (realization workers certify transportation
// solutions in parallel).
type Checker struct {
	// Obs, when non-nil, records certification spans and counters (nil
	// receivers are safe throughout internal/obs, so a zero Checker works).
	Obs *obs.Recorder
	// Ctx, when non-nil, is polled during large checks with the same
	// bounded cadence as the solvers, so cancellation stays prompt while
	// certifying big levels.
	Ctx context.Context
	// Level tags emitted errors with the global-placement level; final
	// (whole-placement) checks use -1.
	Level int
}

// pollEvery is the iteration cadence of context polls inside the large
// certificate loops — the same order of magnitude the solvers use, so an
// aborted run cancels its certification as promptly as its solves.
const pollEvery = 1 << 14

// poll returns the context's error every pollEvery-th call site hit.
func (c *Checker) poll(i int) error {
	if c.Ctx != nil && i&(pollEvery-1) == 0 {
		return c.Ctx.Err()
	}
	return nil
}

func (c *Checker) fail(layer, invariant, witness string) error {
	if c.Obs != nil {
		c.Obs.Count("certify.violation", 1)
	}
	return &Error{Layer: layer, Level: c.Level, Invariant: invariant, Witness: witness}
}

// Flow certifies the optimality of a solved min-cost-flow instance via
// LP duality: the exported node potentials must be dual feasible and
// complementary slackness must hold on every real arc, and flow must be
// conserved at every node (Theorem 3 conditions). This catches a
// warm-started simplex whose basis passed the structural signature but
// carried wrong tree flows — a class of defect the solver's own exit
// criteria cannot see. A solve that exported no certificate (failed run)
// passes vacuously: the caller already has its error.
func (c *Checker) Flow(g *flow.MinCostFlow) error {
	d := g.Duals()
	if d == nil {
		return nil
	}
	sp := c.Obs.StartSpan("certify.flow")
	defer sp.End()
	n := len(d.Pot)
	rcTol := 1e-6 * d.CostScale
	totalSupply := 0.0
	for v := 0; v < n; v++ {
		if b := g.Supply(v); b > flow.Eps {
			totalSupply += b
		}
	}
	amtTol := 1e-6 * math.Max(1, totalSupply)
	// Net outflow per real node, accumulated over the real arcs.
	net := make([]float64, n)
	for id := 0; id < d.Arcs; id++ {
		if err := c.poll(id); err != nil {
			return err
		}
		from, to, capacity, cost := g.ArcInfo(flow.ArcID(id))
		f := g.Flow(flow.ArcID(id))
		if f < -amtTol || f > capacity+amtTol {
			return c.fail("flow", "capacity-feasibility", fmt.Sprintf(
				"arc %d (%d->%d) carries %g outside [0, %g]", id, from, to, f, capacity))
		}
		if from < n {
			net[from] += f
		}
		if to < n {
			net[to] -= f
		}
		if from >= n || to >= n {
			continue // solver-internal arc endpoints carry no certificate
		}
		rc := cost + d.Pot[from] - d.Pot[to]
		if rc > rcTol && f > amtTol {
			return c.fail("flow", "complementary-slackness", fmt.Sprintf(
				"arc %d (%d->%d) has reduced cost %g > 0 but carries flow %g", id, from, to, rc, f))
		}
		if rc < -rcTol {
			if math.IsInf(capacity, 1) {
				return c.fail("flow", "dual-feasibility", fmt.Sprintf(
					"uncapacitated arc %d (%d->%d) has reduced cost %g < 0", id, from, to, rc))
			}
			if capacity-f > amtTol {
				return c.fail("flow", "complementary-slackness", fmt.Sprintf(
					"arc %d (%d->%d) has reduced cost %g < 0 but is not saturated (%g of %g)",
					id, from, to, rc, f, capacity))
			}
		}
	}
	// Conservation: supply nodes emit their full supply (the solvers
	// tolerate up to amtTol total unrouted before declaring infeasibility),
	// demand nodes absorb at most their demand, interior nodes balance.
	for v := 0; v < n; v++ {
		if err := c.poll(v); err != nil {
			return err
		}
		b := g.Supply(v)
		switch {
		case b > flow.Eps:
			if math.Abs(net[v]-b) > amtTol {
				return c.fail("flow", "conservation", fmt.Sprintf(
					"supply node %d ships %g of supply %g", v, net[v], b))
			}
		case b < -flow.Eps:
			if net[v] > amtTol || net[v] < b-amtTol {
				return c.fail("flow", "conservation", fmt.Sprintf(
					"demand node %d absorbs %g outside [0, %g]", v, -net[v], -b))
			}
		default:
			if math.Abs(net[v]) > amtTol {
				return c.fail("flow", "conservation", fmt.Sprintf(
					"interior node %d has net outflow %g", v, net[v]))
			}
		}
	}
	sp.Attr("arcs", float64(d.Arcs))
	return nil
}

// Transport certifies a transportation solution against its instance:
// every source ships exactly its supply (row conservation), every sink
// stays within the capacity the instance was solved with (column
// feasibility), and portions ride admissible arcs only. Counters, not
// spans: the check runs once per realization transportation, from
// concurrent workers.
func (c *Checker) Transport(p *transport.Problem, sol *transport.Solution) error {
	if c.Obs != nil {
		c.Obs.Count("certify.transport", 1)
	}
	load := make([]float64, len(p.Capacity))
	for i, ps := range sol.Assign {
		if err := c.poll(i); err != nil {
			return err
		}
		shipped := 0.0
		for _, portion := range ps {
			if portion.Sink < 0 || portion.Sink >= len(p.Capacity) {
				return c.fail("transport", "sink-range", fmt.Sprintf(
					"source %d assigned to sink %d of %d", i, portion.Sink, len(p.Capacity)))
			}
			if portion.Amount < -flow.Eps {
				return c.fail("transport", "non-negativity", fmt.Sprintf(
					"source %d ships %g to sink %d", i, portion.Amount, portion.Sink))
			}
			admissible := false
			for _, a := range p.Arcs[i] {
				if a.Sink == portion.Sink {
					admissible = true
					break
				}
			}
			if !admissible {
				return c.fail("transport", "admissibility", fmt.Sprintf(
					"source %d ships %g to inadmissible sink %d", i, portion.Amount, portion.Sink))
			}
			shipped += portion.Amount
			load[portion.Sink] += portion.Amount
		}
		if tol := 1e-6 * math.Max(1, p.Supply[i]); math.Abs(shipped-p.Supply[i]) > tol {
			return c.fail("transport", "row-conservation", fmt.Sprintf(
				"source %d ships %g of supply %g", i, shipped, p.Supply[i]))
		}
	}
	for j, l := range load {
		if l > p.Capacity[j]+1e-6*math.Max(1, p.Capacity[j]) {
			return c.fail("transport", "column-feasibility", fmt.Sprintf(
				"sink %d loaded %g over capacity %g", j, l, p.Capacity[j]))
		}
	}
	return nil
}

// Partition certifies a realized partitioning: every movable cell holds a
// valid window-region assignment admissible for its movebound, its
// position lies inside the assigned region piece, and the total region
// overload does not exceed the rounding overflow the result itself
// reports (capacity feasibility up to the declared majority-rounding
// drift).
func (c *Checker) Partition(n *netlist.Netlist, wr *grid.WindowRegions, res *fbp.Result) error {
	sp := c.Obs.StartSpan("certify.partition")
	defer sp.End()
	if len(res.CellRegion) != n.NumCells() {
		return c.fail("partition", "assignment-shape", fmt.Sprintf(
			"%d assignments for %d cells", len(res.CellRegion), n.NumCells()))
	}
	const posTol = 1e-6
	load := make(map[[2]int32]float64)
	for i := range n.Cells {
		if err := c.poll(i); err != nil {
			return err
		}
		cell := &n.Cells[i]
		ref := res.CellRegion[i]
		if cell.Fixed {
			if ref.Window != -1 || ref.Index != -1 {
				return c.fail("partition", "fixed-unassigned", fmt.Sprintf(
					"fixed cell %d assigned to window %d region %d", i, ref.Window, ref.Index))
			}
			continue
		}
		if ref.Window < 0 || int(ref.Window) >= len(wr.PerWin) ||
			ref.Index < 0 || int(ref.Index) >= len(wr.PerWin[ref.Window]) {
			return c.fail("partition", "assignment-range", fmt.Sprintf(
				"cell %d assigned to window %d region %d", i, ref.Window, ref.Index))
		}
		reg := &wr.PerWin[ref.Window][ref.Index]
		if !wr.Decomp.Admissible(cell.Movebound, reg.Region) {
			return c.fail("partition", "admissibility", fmt.Sprintf(
				"cell %d (movebound %d) assigned to region %d", i, cell.Movebound, reg.Region))
		}
		p := n.Pos(netlist.CellID(i))
		inside := false
		for _, rect := range reg.Rects {
			if rect.Expand(posTol).Contains(p) {
				inside = true
				break
			}
		}
		if !inside {
			return c.fail("partition", "containment", fmt.Sprintf(
				"cell %d at (%g, %g) outside its region piece (window %d region %d)",
				i, p.X, p.Y, ref.Window, ref.Index))
		}
		load[[2]int32{ref.Window, ref.Index}] += cell.Size()
	}
	overflow := 0.0
	for key, l := range load {
		if over := l - wr.PerWin[key[0]][key[1]].Capacity; over > 0 {
			overflow += over
		}
	}
	if tol := 1e-6 * math.Max(1, n.TotalMovableArea()); overflow > res.RoundingOverflow+tol {
		return c.fail("partition", "capacity-feasibility", fmt.Sprintf(
			"total region overload %g exceeds reported rounding overflow %g",
			overflow, res.RoundingOverflow))
	}
	sp.Attr("cells", float64(n.NumCells()))
	return nil
}

// Positions certifies the basic sanity of a placement state: every cell
// position finite and inside the chip area. It is the cheapest check and
// the one that catches raw memory corruption (the certify.corrupt fault
// site bit-flips exactly one coordinate).
func (c *Checker) Positions(n *netlist.Netlist) error {
	sp := c.Obs.StartSpan("certify.positions")
	defer sp.End()
	area := n.Area.Expand(1e-9)
	for i := range n.X {
		if err := c.poll(i); err != nil {
			return err
		}
		x, y := n.X[i], n.Y[i]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return c.fail("positions", "finite", fmt.Sprintf(
				"cell %d at (%g, %g)", i, x, y))
		}
		if n.Cells[i].Fixed {
			continue // fixed cells may legitimately sit on/over the boundary
		}
		if !area.Contains(n.Pos(netlist.CellID(i))) {
			return c.fail("positions", "inside-chip", fmt.Sprintf(
				"cell %d at (%g, %g) outside chip %v", i, x, y, n.Area))
		}
	}
	return nil
}

// Reported is the slice of a placer report the final certificate
// cross-checks against an independent recomputation.
type Reported struct {
	// HPWL, Violations and Overlaps as reported by the run.
	HPWL       float64
	Violations int
	Overlaps   int
	// Legalized is true when the run legalized (overlaps must then be 0).
	Legalized bool
	// TargetDensity is the run's target density (density sanity check).
	TargetDensity float64
}

// Placement certifies a final placement against its report: positions
// sane, overlap and movebound-violation counts matching an independent
// recount (and zero overlaps after legalization), and the reported HPWL
// matching a recomputation within an ulp-scaled tolerance (the recompute
// may sum nets in a different order than the reporting path did).
func (c *Checker) Placement(n *netlist.Netlist, mbs []region.Movebound, rep Reported) error {
	if err := c.Positions(n); err != nil {
		return err
	}
	sp := c.Obs.StartSpan("certify.placement")
	defer sp.End()
	hpwl := n.HPWL()
	tol := math.Max(1, math.Abs(rep.HPWL)) * float64(n.NumNets()+1) * 0x1p-52
	if math.Abs(hpwl-rep.HPWL) > tol {
		return c.fail("placement", "hpwl-match", fmt.Sprintf(
			"recomputed HPWL %g, reported %g (tolerance %g)", hpwl, rep.HPWL, tol))
	}
	overlaps := legalize.VerifyNoOverlaps(n)
	if overlaps != rep.Overlaps {
		return c.fail("placement", "overlap-match", fmt.Sprintf(
			"recounted %d overlaps, reported %d", overlaps, rep.Overlaps))
	}
	if rep.Legalized && overlaps != 0 {
		return c.fail("placement", "legalized-no-overlaps", fmt.Sprintf(
			"%d overlapping cells after legalization", overlaps))
	}
	viol := region.CheckLegal(n, mbs)
	if viol != rep.Violations {
		return c.fail("placement", "violation-match", fmt.Sprintf(
			"recounted %d movebound violations, reported %d", viol, rep.Violations))
	}
	if rep.TargetDensity > 0 {
		pen := metrics.DensityPenalty(n, rep.TargetDensity, 0)
		if math.IsNaN(pen) || math.IsInf(pen, 0) || pen < 0 {
			return c.fail("placement", "density-sane", fmt.Sprintf(
				"density penalty recomputed as %g", pen))
		}
		sp.Attr("density.penalty", pen)
	}
	sp.Attr("hpwl", hpwl)
	return nil
}
