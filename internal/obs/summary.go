package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// summaryNode aggregates all spans sharing the same name under the same
// parent aggregate (so five "level" spans under "global" print as one row
// with count 5).
type summaryNode struct {
	name     string
	count    int
	total    time.Duration
	children []*summaryNode
	byName   map[string]*summaryNode
}

func (n *summaryNode) child(name string) *summaryNode {
	if c, ok := n.byName[name]; ok {
		return c
	}
	c := &summaryNode{name: name, byName: map[string]*summaryNode{}}
	n.byName[name] = c
	n.children = append(n.children, c)
	return c
}

// WriteSummary renders the per-phase waterfall of all finished spans as an
// ASCII tree: count, total wall-clock and share of the parent per row,
// followed by the counters and gauges. Spans still running are omitted;
// spans whose parent has not finished attach at the root.
func (r *Recorder) WriteSummary(w io.Writer) {
	// Summary output is best-effort; the sticky printer keeps the first
	// write error and stops printing, instead of dropping errors per line.
	pr := &summaryPrinter{w: w}
	if r == nil {
		pr.printf("obs: recording disabled\n")
		return
	}
	r.mu.Lock()
	recs := append([]spanRecord(nil), r.finished...)
	counters := sortedKV(r.counters)
	gauges := sortedKV(r.gauges)
	r.mu.Unlock()

	sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
	root := &summaryNode{byName: map[string]*summaryNode{}}
	nodeOf := map[int64]*summaryNode{}
	for _, rec := range recs {
		parent := root
		if p, ok := nodeOf[rec.parent]; ok && rec.parent != 0 {
			parent = p
		}
		n := parent.child(rec.name)
		n.count++
		n.total += rec.dur
		nodeOf[rec.id] = n
	}

	var walk func(n *summaryNode, depth int, parentTotal time.Duration)
	walk = func(n *summaryNode, depth int, parentTotal time.Duration) {
		pct := ""
		if parentTotal > 0 {
			pct = fmt.Sprintf("%5.1f%%", 100*float64(n.total)/float64(parentTotal))
		}
		name := fmt.Sprintf("%*s%s", 2*depth, "", n.name)
		pr.printf("%-34s %5dx %10s %s\n", name, n.count, fmtSummaryDur(n.total), pct)
		for _, c := range n.children {
			walk(c, depth+1, n.total)
		}
	}
	if len(root.children) == 0 {
		pr.printf("obs: no spans recorded\n")
	}
	for _, c := range root.children {
		walk(c, 0, 0)
	}
	if len(counters) > 0 {
		pr.printf("counters:\n")
		for _, kv := range counters {
			pr.printf("  %-32s %14.0f\n", kv.k, kv.v)
		}
	}
	if len(gauges) > 0 {
		pr.printf("gauges:\n")
		for _, kv := range gauges {
			pr.printf("  %-32s %14.4g\n", kv.k, kv.v)
		}
	}
}

// summaryPrinter latches the first write error and suppresses output after
// it, so WriteSummary neither drops errors silently nor keeps writing to a
// broken pipe.
type summaryPrinter struct {
	w   io.Writer
	err error
}

func (p *summaryPrinter) printf(format string, a ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, a...)
	}
}

func fmtSummaryDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

type kv struct {
	k string
	v float64
}

// sortedKV snapshots a metric map in name order; callers hold r.mu.
func sortedKV(m map[string]float64) []kv {
	out := make([]kv, 0, len(m))
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].k < out[b].k })
	return out
}
