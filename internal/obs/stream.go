package obs

import "sync"

// Broadcast is a Sink that fans events out to any number of live
// subscribers while retaining a bounded replay window, so a subscriber
// attaching mid-run first sees the recent history and then the live tail.
// It is the streaming backend of the placement service's per-job progress
// feeds (internal/serve exposes it over SSE/JSONL).
//
// Emit never blocks: a subscriber whose channel is full loses the event
// and the loss is counted (Dropped), because a slow progress consumer must
// never stall the placement run producing the events.
type Broadcast struct {
	mu      sync.Mutex
	retain  int
	ring    []Event            // retained events, oldest first; guarded by mu
	subs    map[int]chan Event // guarded by mu
	nextID  int                // guarded by mu
	closed  bool               // guarded by mu
	dropped int64              // guarded by mu
}

// DefaultRetain is the replay-window size used when NewBroadcast is given
// a non-positive retention.
const DefaultRetain = 1024

// NewBroadcast returns a Broadcast retaining the last retain events for
// replay (retain <= 0 selects DefaultRetain).
func NewBroadcast(retain int) *Broadcast {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Broadcast{retain: retain, subs: map[int]chan Event{}}
}

// Emit appends e to the replay window and offers it to every subscriber
// without blocking. Events emitted after Close are discarded.
func (b *Broadcast) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.ring = append(b.ring, e)
	if len(b.ring) > b.retain {
		// Shift rather than reslice so the backing array cannot grow
		// without bound over a long run.
		n := copy(b.ring, b.ring[len(b.ring)-b.retain:])
		b.ring = b.ring[:n]
	}
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
			b.dropped++
		}
	}
}

// Subscribe registers a new subscriber and returns a copy of the replay
// window, the live channel, and a cancel function. The channel is closed
// by cancel or by Close; buf sizes the channel (buf <= 0 selects the
// retention size). After Close, Subscribe returns the final replay window
// and an already-closed channel.
func (b *Broadcast) Subscribe(buf int) ([]Event, <-chan Event, func()) {
	if buf <= 0 {
		buf = b.retain
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := append([]Event(nil), b.ring...)
	ch := make(chan Event, buf)
	if b.closed {
		close(ch)
		return replay, ch, func() {}
	}
	b.nextID++
	id := b.nextID
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if c, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(c)
		}
	}
	return replay, ch, cancel
}

// Close closes every subscriber channel and makes further Emits no-ops.
// Closing twice is safe.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
}

// Dropped returns how many events were lost to full subscriber channels.
func (b *Broadcast) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
