package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	r := New(nil)
	place := r.StartSpan("place")
	global := r.StartSpan("global")
	for i := 0; i < 3; i++ {
		lv := r.StartSpan("level")
		lv.End()
	}
	global.End()
	legal := r.StartSpan("legalize")
	legal.End()
	place.End()

	r.mu.Lock()
	recs := append([]spanRecord(nil), r.finished...)
	r.mu.Unlock()
	if len(recs) != 6 {
		t.Fatalf("finished spans = %d, want 6", len(recs))
	}
	parentOf := map[string]string{}
	byID := map[int64]spanRecord{}
	for _, rec := range recs {
		byID[rec.id] = rec
	}
	for _, rec := range recs {
		p := ""
		if rec.parent != 0 {
			p = byID[rec.parent].name
		}
		parentOf[rec.name] = p
	}
	want := map[string]string{"place": "", "global": "place", "level": "global", "legalize": "place"}
	for name, parent := range want {
		if parentOf[name] != parent {
			t.Errorf("parent of %q = %q, want %q", name, parentOf[name], parent)
		}
	}

	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "place") || !strings.Contains(out, "level") {
		t.Fatalf("summary missing spans:\n%s", out)
	}
	if !strings.Contains(out, "3x") {
		t.Fatalf("summary did not aggregate the 3 level spans:\n%s", out)
	}
}

func TestStartChildIsConcurrencySafe(t *testing.T) {
	r := New(nil)
	parent := r.StartSpan("realize")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := parent.StartChild("wave")
				r.Count("units", 1)
				c.End()
			}
		}()
	}
	wg.Wait()
	parent.End()
	if got := r.Counter("units"); got != 16*50 {
		t.Fatalf("units counter = %g, want %d", got, 16*50)
	}
	r.mu.Lock()
	n := len(r.finished)
	r.mu.Unlock()
	if n != 16*50+1 {
		t.Fatalf("finished spans = %d, want %d", n, 16*50+1)
	}
}

func TestCounterAndGaugeAggregation(t *testing.T) {
	r := New(nil)
	r.Count("cg.iters", 10)
	r.Count("cg.iters", 32)
	r.Gauge("occupancy", 0.25)
	r.Gauge("occupancy", 0.75)
	if got := r.Counter("cg.iters"); got != 42 {
		t.Fatalf("counter = %g, want 42", got)
	}
	if got := r.Gauges()["occupancy"]; got != 0.75 {
		t.Fatalf("gauge = %g, want last value 0.75", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %g, want 0", got)
	}
}

func TestJSONTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONSink(&buf)
	r := New(sink)
	root := r.StartSpan("place")
	child := r.StartSpan("global")
	child.Attr("level", 3)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	r.Count("ns.pivots", 123)
	r.Gauge("occupancy", 0.5)
	r.Flush()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var spans, counters, gauges int
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
		switch e.Type {
		case EventSpan:
			spans++
		case EventCounter:
			counters++
		case EventGauge:
			gauges++
		}
	}
	if spans != 2 || counters != 1 || gauges != 1 {
		t.Fatalf("spans/counters/gauges = %d/%d/%d, want 2/1/1", spans, counters, gauges)
	}
	g := byName["global"]
	if g.Parent != byName["place"].ID {
		t.Fatalf("global parent = %d, want %d", g.Parent, byName["place"].ID)
	}
	if g.DurUS <= 0 {
		t.Fatalf("global duration = %dus, want > 0", g.DurUS)
	}
	if g.Attrs["level"] != 3 {
		t.Fatalf("global attrs = %v, want level=3", g.Attrs)
	}
	if byName["ns.pivots"].Value != 123 {
		t.Fatalf("counter value = %g, want 123", byName["ns.pivots"].Value)
	}
}

// TestProgressHook pins the heartbeat contract the serve watchdog relies
// on: the hook fires with the span name at every StartSpan, StartChild
// and End (plus explicit Beats), installing nil removes it, and a nil
// recorder swallows everything.
func TestProgressHook(t *testing.T) {
	r := New(nil)
	var mu sync.Mutex
	var beats []string
	r.SetProgress(func(name string) {
		mu.Lock()
		beats = append(beats, name)
		mu.Unlock()
	})
	s := r.StartSpan("place")
	c := s.StartChild("wave")
	r.Beat("ckpt.save")
	c.End()
	s.End()
	want := []string{"place", "wave", "ckpt.save", "wave", "place"}
	mu.Lock()
	got := append([]string(nil), beats...)
	mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("heartbeats = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heartbeat %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}

	// Removing the hook stops the heartbeats; re-ending an ended span never
	// fired one in the first place (End is idempotent).
	r.SetProgress(nil)
	s2 := r.StartSpan("quiet")
	s2.End()
	s2.End()
	r.Beat("late")
	mu.Lock()
	n := len(beats)
	mu.Unlock()
	if n != len(want) {
		t.Fatalf("heartbeats after removal = %d, want %d", n, len(want))
	}

	var nilR *Recorder
	nilR.SetProgress(func(string) { t.Fatal("nil recorder fired a heartbeat") })
	nilR.Beat("x")
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	s := r.StartSpan("x")
	c := s.StartChild("y")
	s.Attr("k", 1)
	c.End()
	s.End()
	r.Count("n", 1)
	r.Gauge("g", 1)
	r.Flush()
	if r.Counter("n") != 0 || r.Counters() != nil || r.Gauges() != nil {
		t.Fatal("nil recorder must report nothing")
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil summary = %q", buf.String())
	}
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	r := New(nil)
	s := r.StartSpan("once")
	s.End()
	s.End()
	r.mu.Lock()
	n := len(r.finished)
	r.mu.Unlock()
	if n != 1 {
		t.Fatalf("finished spans = %d, want 1", n)
	}
}

// BenchmarkDisabledRecorder guards the nil fast path: with recording
// disabled the pipeline's obs calls must cost a nil check each (no locks,
// no allocation), keeping total overhead under 1% of any placement run.
func BenchmarkDisabledRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.StartSpan("phase")
		c := s.StartChild("wave")
		r.Count("cg.iters", 17)
		r.Gauge("occupancy", 0.9)
		c.End()
		s.End()
	}
}

// BenchmarkEnabledRecorder is the reference point for the enabled path.
func BenchmarkEnabledRecorder(b *testing.B) {
	r := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := r.StartSpan("phase")
		r.Count("cg.iters", 17)
		s.End()
	}
}
