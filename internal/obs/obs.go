// Package obs is the placer's observability substrate: hierarchical
// wall-clock spans, named counters and gauges, a pluggable event sink with
// a JSON-lines trace exporter, and an ASCII summary-tree reporter.
//
// The whole package is nil-safe: every method on *Recorder and *Span
// treats a nil receiver as "recording disabled" and returns immediately,
// so the placement pipeline threads a single *Recorder pointer through its
// configs and pays only a nil check when observability is off (see
// BenchmarkDisabledRecorder). When recording is enabled, span begin/end
// and counter updates take a short mutex-protected critical section;
// events stream to the Sink as spans end, while counters and gauges
// aggregate in memory until Flush.
//
// Concurrency: StartSpan/End maintain a current-span stack for the common
// sequential pipeline phases. Parallel sections (the realization waves of
// internal/fbp) must parent their spans explicitly with Span.StartChild,
// which never touches the shared stack.
package obs

import (
	"sync"
	"time"
)

// Recorder collects spans, counters and gauges for one placement run.
// A nil *Recorder is valid and records nothing.
type Recorder struct {
	sink  Sink
	start time.Time

	mu       sync.Mutex
	nextID   int64              // guarded by mu
	current  *Span              // guarded by mu
	finished []spanRecord       // guarded by mu
	counters map[string]float64 // guarded by mu
	gauges   map[string]float64 // guarded by mu
	progress Progress           // guarded by mu
}

// Progress is a liveness heartbeat hook: it fires with the span name at
// every span start and end on the recorder (and on explicit Beat calls),
// outside the recorder's lock. A stuck-job watchdog hangs off this hook —
// span boundaries are exactly the granularity (level, wave, solve) at
// which a healthy placement provably advances. The hook must be fast and
// must not call back into the recorder's span API.
type Progress func(name string)

// SetProgress installs (or, with nil, removes) the heartbeat hook.
func (r *Recorder) SetProgress(p Progress) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.progress = p
	r.mu.Unlock()
}

// Beat fires the heartbeat hook directly, for progress points that are
// not span boundaries (checkpoint writes, queue transitions).
func (r *Recorder) Beat(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	p := r.progress
	r.mu.Unlock()
	if p != nil {
		p(name)
	}
}

// spanRecord is a finished span as retained for the summary tree.
type spanRecord struct {
	id, parent int64
	name       string
	start      time.Duration // offset from recorder start
	dur        time.Duration
	attrs      map[string]float64
}

// New returns a Recorder streaming span events to sink. A nil sink is the
// no-op default: spans and counters still aggregate in memory (for
// Summary/Counters), nothing is exported.
func New(sink Sink) *Recorder {
	return &Recorder{
		sink:     sink,
		start:    time.Now(),
		counters: map[string]float64{},
		gauges:   map[string]float64{},
	}
}

// Span is one timed phase. A nil *Span is valid and records nothing.
type Span struct {
	r      *Recorder
	id     int64
	parent *Span
	name   string
	start  time.Time
	attrs  map[string]float64
	ended  bool
}

// StartSpan begins a span as a child of the innermost span started with
// StartSpan on this recorder (the current-span stack). Use from the
// sequential pipeline phases only; parallel code must use Span.StartChild.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	s := &Span{r: r, id: r.nextID, parent: r.current, name: name, start: time.Now()}
	r.current = s
	p := r.progress
	r.mu.Unlock()
	if p != nil {
		p(name)
	}
	return s
}

// StartChild begins a span explicitly parented under s. It does not touch
// the recorder's current-span stack, so concurrent goroutines may each
// call StartChild on the same parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	r := s.r
	r.mu.Lock()
	r.nextID++
	c := &Span{r: r, id: r.nextID, parent: s, name: name, start: time.Now()}
	p := r.progress
	r.mu.Unlock()
	if p != nil {
		p(name)
	}
	return c
}

// Attr attaches a numeric attribute to the span (exported with its span
// event and shown by the trace, not the summary tree).
func (s *Span) Attr(key string, v float64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]float64{}
	}
	s.attrs[key] = v
	s.r.mu.Unlock()
}

// End finishes the span, retains it for the summary tree and emits a span
// event to the sink. Ending a span twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	r := s.r
	var parentID int64
	r.mu.Lock()
	if s.ended {
		r.mu.Unlock()
		return
	}
	s.ended = true
	if r.current == s {
		r.current = s.parent
	}
	if s.parent != nil {
		parentID = s.parent.id
	}
	rec := spanRecord{
		id: s.id, parent: parentID, name: s.name,
		start: s.start.Sub(r.start), dur: end.Sub(s.start), attrs: s.attrs,
	}
	r.finished = append(r.finished, rec)
	sink := r.sink
	p := r.progress
	r.mu.Unlock()
	if p != nil {
		p(rec.name)
	}
	if sink != nil {
		sink.Emit(Event{
			Type: EventSpan, Name: rec.name, ID: rec.id, Parent: rec.parent,
			StartUS: rec.start.Microseconds(), DurUS: rec.dur.Microseconds(),
			Attrs: rec.attrs,
		})
	}
}

// Count adds delta to the named counter. Counters aggregate in memory and
// are exported as one event each by Flush.
func (r *Recorder) Count(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets the named gauge to its most recent value.
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Counter returns the current value of the named counter (0 if unset).
func (r *Recorder) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of all counters.
func (r *Recorder) Counters() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of all gauges.
func (r *Recorder) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Flush exports the aggregated counters and gauges as one event per name
// (sorted) and flushes the sink if it supports flushing. Call once at the
// end of a run, after all spans have ended.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	sink := r.sink
	counters := sortedKV(r.counters)
	gauges := sortedKV(r.gauges)
	r.mu.Unlock()
	if sink == nil {
		return
	}
	for _, kv := range counters {
		sink.Emit(Event{Type: EventCounter, Name: kv.k, Value: kv.v})
	}
	for _, kv := range gauges {
		sink.Emit(Event{Type: EventGauge, Name: kv.k, Value: kv.v})
	}
	if f, ok := sink.(interface{ Flush() error }); ok {
		// Best-effort: the sink (e.g. JSONLSink) latches its own error,
		// which callers inspect via its Err method after the run.
		_ = f.Flush()
	}
}
