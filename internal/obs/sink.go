package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event types emitted to sinks.
const (
	EventSpan    = "span"
	EventCounter = "counter"
	EventGauge   = "gauge"
)

// Event is one trace record. Spans carry ID/Parent/StartUS/DurUS; counters
// and gauges carry Value. Times are microseconds since recorder creation.
type Event struct {
	Type    string             `json:"type"`
	Name    string             `json:"name"`
	ID      int64              `json:"id,omitempty"`
	Parent  int64              `json:"parent,omitempty"`
	StartUS int64              `json:"start_us,omitempty"`
	DurUS   int64              `json:"dur_us,omitempty"`
	Value   float64            `json:"value,omitempty"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
}

// Sink receives trace events. Implementations must be safe for concurrent
// Emit calls (span ends race during parallel realization).
type Sink interface {
	Emit(Event)
}

// JSONSink streams events as JSON lines (one event per line) to a writer —
// the format consumed by ReadTrace and the bench harness. Errors are
// sticky: the first write failure stops further output and is reported by
// Err.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONSink returns a sink writing JSON lines to w. The caller owns w
// (close files after Recorder.Flush).
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit writes one event as a JSON line.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *JSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadTrace parses a JSON-lines trace as written by JSONSink.
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return events, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}
