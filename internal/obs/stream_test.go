package obs

import "testing"

func ev(name string) Event { return Event{Type: "state", Name: name} }

func TestBroadcastReplayWindow(t *testing.T) {
	b := NewBroadcast(4)
	for _, n := range []string{"a", "b", "c", "d", "e", "f"} {
		b.Emit(ev(n))
	}
	replay, live, cancel := b.Subscribe(8)
	defer cancel()
	if len(replay) != 4 {
		t.Fatalf("replay: got %d events, want the 4 retained", len(replay))
	}
	if replay[0].Name != "c" || replay[3].Name != "f" {
		t.Fatalf("replay window: got %q..%q, want c..f", replay[0].Name, replay[3].Name)
	}
	b.Emit(ev("g"))
	if got := (<-live).Name; got != "g" {
		t.Fatalf("live event: got %q, want g", got)
	}
}

func TestBroadcastDropsSlowSubscriber(t *testing.T) {
	b := NewBroadcast(2)
	_, live, cancel := b.Subscribe(1)
	defer cancel()
	b.Emit(ev("a"))
	b.Emit(ev("b"))
	b.Emit(ev("c"))
	if d := b.Dropped(); d != 2 {
		t.Fatalf("dropped: got %d, want 2 (buffer of 1, 3 events)", d)
	}
	if got := (<-live).Name; got != "a" {
		t.Fatalf("buffered event: got %q, want a", got)
	}
}

func TestBroadcastClose(t *testing.T) {
	b := NewBroadcast(2)
	b.Emit(ev("a"))
	_, live, cancel := b.Subscribe(4)
	defer cancel()
	b.Close()
	if _, open := <-live; open {
		t.Fatal("live channel still open after Close")
	}
	b.Close()       // idempotent
	b.Emit(ev("b")) // no-op, must not panic or grow the ring
	replay, lateLive, lateCancel := b.Subscribe(4)
	defer lateCancel()
	if len(replay) != 1 || replay[0].Name != "a" {
		t.Fatalf("late subscriber replay: got %v, want [a]", replay)
	}
	if _, open := <-lateLive; open {
		t.Fatal("late subscriber got an open channel from a closed broadcast")
	}
}

func TestBroadcastCancelStopsDelivery(t *testing.T) {
	b := NewBroadcast(2)
	_, live, cancel := b.Subscribe(1)
	cancel()
	b.Emit(ev("a"))
	select {
	case e, open := <-live:
		if open {
			t.Fatalf("canceled subscriber still received %q", e.Name)
		}
	default:
		// Channel left open but unused is also acceptable; the contract
		// is only that Emit never blocks and Dropped is not charged.
	}
}
