// Package degrade records solver fallbacks: every time the pipeline
// trades optimality for robustness (CG giving up and keeping the anchor
// solution, the network simplex stalling and falling back to successive
// shortest paths, the condensed transportation engine failing over to its
// reference implementation), the fallback is appended to a Log so the
// placement Report can surface it. The contract of DESIGN.md §6 — results
// are never silently approximate — is enforced by construction: fallback
// call sites receive a *Log and must record before degrading.
//
// Like the obs recorder, a nil *Log is valid and records nothing, so
// library entry points that predate the robustness pass keep working
// unchanged. When an obs.Recorder is attached, every event also bumps the
// counter "degrade.<stage>" for trace-based monitoring.
package degrade

import (
	"fmt"
	"sort"
	"sync"

	"fbplace/internal/obs"
)

// Event is one recorded fallback.
type Event struct {
	// Stage names the degraded component ("qp.cg", "flow.ns",
	// "transport.condensed", ...).
	Stage string
	// Fallback names what the pipeline used instead ("anchor-solution",
	// "ssp", "reference-engine", ...).
	Fallback string
	// Detail is a human-readable explanation (the triggering error).
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s -> %s (%s)", e.Stage, e.Fallback, e.Detail)
}

// Log collects degradation events. Safe for concurrent use; a nil *Log
// records nothing.
type Log struct {
	// Obs, when non-nil, receives a "degrade.<stage>" counter increment
	// per event.
	Obs *obs.Recorder

	mu     sync.Mutex
	events []Event
}

// New returns a Log that also bumps counters on rec (rec may be nil).
func New(rec *obs.Recorder) *Log { return &Log{Obs: rec} }

// Add records one fallback event.
func (l *Log) Add(stage, fallback, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, Event{Stage: stage, Fallback: fallback, Detail: detail})
	obsRec := l.Obs
	l.mu.Unlock()
	obsRec.Count("degrade."+stage, 1)
}

// Restore appends events recorded by a previous process (a checkpoint
// snapshot being resumed) without bumping obs counters: the counters
// describe this process's run, while restored events describe the logical
// run being continued.
func (l *Log) Restore(events []Event) {
	if l == nil || len(events) == 0 {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, events...)
	l.mu.Unlock()
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events sorted by (Stage, Fallback,
// Detail). Parallel realization workers append concurrently, so the raw
// append order depends on scheduling; the sorted view keeps reports
// deterministic across worker counts.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Fallback != b.Fallback {
			return a.Fallback < b.Fallback
		}
		return a.Detail < b.Detail
	})
	return out
}
