package degrade

import (
	"testing"

	"fbplace/internal/obs"
)

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Add("qp.cg", "anchor-solution", "x") // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log recorded something")
	}
}

func TestEventsSortedAndCounted(t *testing.T) {
	rec := obs.New(nil)
	l := New(rec)
	l.Add("transport.condensed", "reference-engine", "b")
	l.Add("flow.ns", "ssp", "stall")
	l.Add("transport.condensed", "reference-engine", "a")
	rec.Flush()
	evs := l.Events()
	if l.Len() != 3 || len(evs) != 3 {
		t.Fatalf("len = %d/%d, want 3", l.Len(), len(evs))
	}
	want := []Event{
		{"flow.ns", "ssp", "stall"},
		{"transport.condensed", "reference-engine", "a"},
		{"transport.condensed", "reference-engine", "b"},
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	if got := rec.Counter("degrade.transport.condensed"); got != 2 {
		t.Fatalf("degrade counter = %g, want 2", got)
	}
	if got := rec.Counter("degrade.flow.ns"); got != 1 {
		t.Fatalf("degrade counter = %g, want 1", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the log.
	evs[0].Stage = "mutated"
	if l.Events()[0].Stage == "mutated" {
		t.Fatal("Events returned the backing slice")
	}
}
