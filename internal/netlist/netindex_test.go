package netlist

import (
	"math/rand"
	"sync"
	"testing"

	"fbplace/internal/geom"
)

func randomNetlist(numCells, numNets int, seed int64) *Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := New(geom.Rect{Xhi: 10, Yhi: 10}, 1)
	for i := 0; i < numCells; i++ {
		n.AddCell(Cell{Width: 1, Height: 1, Movebound: NoMovebound})
	}
	for e := 0; e < numNets; e++ {
		deg := 1 + rng.Intn(6)
		pins := make([]Pin, 0, deg)
		for k := 0; k < deg; k++ {
			if rng.Intn(8) == 0 {
				pins = append(pins, Pin{Cell: -1, Offset: geom.Point{X: rng.Float64(), Y: rng.Float64()}})
				continue
			}
			// Duplicate pins on one cell are common (multi-pin macros) and
			// must be deduplicated by the index.
			pins = append(pins, Pin{Cell: CellID(rng.Intn(numCells))})
		}
		n.AddNet(Net{Pins: pins})
	}
	return n
}

// TestNetIndexMatchesBruteForce checks the CSR index against a direct scan:
// per cell, the incident nets must come out ascending, deduplicated, and
// complete.
func TestNetIndexMatchesBruteForce(t *testing.T) {
	n := randomNetlist(200, 600, 5)
	ix := n.NetIndex()
	want := make([][]NetID, n.NumCells())
	for ni := range n.Nets {
		seen := map[CellID]bool{}
		for _, p := range n.Nets[ni].Pins {
			if p.IsPad() || seen[p.Cell] {
				continue
			}
			seen[p.Cell] = true
			want[p.Cell] = append(want[p.Cell], NetID(ni))
		}
	}
	total := 0
	for c := 0; c < n.NumCells(); c++ {
		got := ix.Nets(CellID(c))
		total += len(got)
		if len(got) != len(want[c]) {
			t.Fatalf("cell %d: %d incident nets, want %d", c, len(got), len(want[c]))
		}
		for i := range got {
			if got[i] != want[c][i] {
				t.Fatalf("cell %d entry %d: net %d, want %d (must be ascending, deduplicated)", c, i, got[i], want[c][i])
			}
		}
	}
	if ix.NumIncidences() != total {
		t.Fatalf("NumIncidences = %d, want %d", ix.NumIncidences(), total)
	}
}

// TestNetIndexCachedAndInvalidated checks the build-once contract and the
// invalidation on structural mutation.
func TestNetIndexCachedAndInvalidated(t *testing.T) {
	n := randomNetlist(50, 100, 9)
	ix1 := n.NetIndex()
	if n.NetIndex() != ix1 {
		t.Fatal("second NetIndex call rebuilt the cached index")
	}
	// Position updates must not invalidate: the index is connectivity-only.
	n.SetPos(3, geom.Point{X: 1, Y: 1})
	if n.NetIndex() != ix1 {
		t.Fatal("SetPos invalidated the incidence index")
	}
	c := n.AddCell(Cell{Width: 1, Height: 1, Movebound: NoMovebound})
	ix2 := n.NetIndex()
	if ix2 == ix1 {
		t.Fatal("AddCell did not invalidate the incidence index")
	}
	if got := ix2.Nets(c); len(got) != 0 {
		t.Fatalf("new cell has %d incident nets, want 0", len(got))
	}
	n.AddNet(Net{Pins: []Pin{{Cell: c}, {Cell: 0}}})
	ix3 := n.NetIndex()
	if ix3 == ix2 {
		t.Fatal("AddNet did not invalidate the incidence index")
	}
	if got := ix3.Nets(c); len(got) != 1 || got[len(got)-1] != NetID(n.NumNets()-1) {
		t.Fatalf("new cell incident nets = %v, want the appended net", got)
	}
}

// TestNetIndexCloneIndependent checks that a clone does not share the
// cached index and builds its own.
func TestNetIndexCloneIndependent(t *testing.T) {
	n := randomNetlist(40, 80, 3)
	ix := n.NetIndex()
	cp := n.Clone()
	cpIx := cp.NetIndex()
	if cpIx == ix {
		t.Fatal("clone shares the original's incidence index")
	}
	for c := 0; c < n.NumCells(); c++ {
		a, b := ix.Nets(CellID(c)), cpIx.Nets(CellID(c))
		if len(a) != len(b) {
			t.Fatalf("cell %d: clone index diverged", c)
		}
	}
}

// TestNetIndexConcurrentFirstBuild races many readers over the lazy first
// build (run with -race to make this meaningful: realization workers all
// ask for the index at the first wave).
func TestNetIndexConcurrentFirstBuild(t *testing.T) {
	n := randomNetlist(300, 900, 17)
	var wg sync.WaitGroup
	got := make([]*CellNetIndex, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = n.NetIndex()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent NetIndex calls returned different indexes")
		}
	}
}
