// Package netlist provides the circuit model of the placer: cells, pads,
// nets with pins, positions, and the half-perimeter wirelength (HPWL)
// objective the paper reports in every experiment table.
//
// The representation is index-based: cells and nets are identified by dense
// integer IDs, and coordinates live in flat slices, so that quadratic
// placement and partitioning on millions of cells avoid per-object pointer
// chasing.
package netlist

import (
	"fmt"
	"math"
	"sync"

	"fbplace/internal/geom"
)

// CellID identifies a cell within its Netlist.
type CellID int32

// NetID identifies a net within its Netlist.
type NetID int32

// NoMovebound marks a cell that may be placed anywhere on the chip.
const NoMovebound = -1

// Cell is a rectangular circuit element. Movable cells are placed by the
// placer; fixed cells (macros, pre-placed blocks) act as blockages and as
// anchors for the quadratic program.
type Cell struct {
	Name   string
	Width  float64
	Height float64
	Fixed  bool
	// Movebound is the index of the movebound the cell is assigned to,
	// or NoMovebound. Assignment lives here (rather than in a side map)
	// because nearly every placer stage consults it.
	Movebound int
}

// Size returns the cell area, the "size(c)" of the paper.
func (c *Cell) Size() float64 { return c.Width * c.Height }

// Pin is a connection point of a net. Exactly one of Cell >= 0 (a pin on a
// movable or fixed cell, at Offset from the cell center) or Cell < 0 (a
// fixed pad at absolute position Offset) holds.
type Pin struct {
	Cell   CellID
	Offset geom.Point
}

// IsPad reports whether the pin is a fixed chip-level pad.
func (p Pin) IsPad() bool { return p.Cell < 0 }

// Net is a set of electrically connected pins with a weight used by both
// the quadratic objective and HPWL reporting.
type Net struct {
	Name   string
	Weight float64
	Pins   []Pin
}

// Netlist is the full circuit: cells, nets, and the current placement.
// Positions are cell centers.
type Netlist struct {
	Cells []Cell
	Nets  []Net
	// X, Y hold the current center position of each cell, indexed by CellID.
	X, Y []float64
	// Area is the placement area (chip boundary).
	Area geom.Rect
	// RowHeight is the standard-cell row height used by legalization.
	RowHeight float64

	// idxMu guards idx, the lazily built cell -> incident-net index.
	// Structural mutation (AddCell/AddNet) invalidates it; position
	// updates do not (the index depends only on connectivity).
	idxMu sync.Mutex
	idx   *CellNetIndex // guarded by idxMu
}

// CellNetIndex is an immutable CSR index from cells to the nets they have
// pins on. Per cell the net IDs are ascending and deduplicated (a net with
// several pins on the same cell appears once). It exists so that the
// realization-local QP (paper §IV.B) can assemble its system by walking
// only the nets incident to a window block instead of scanning the whole
// netlist once per block.
type CellNetIndex struct {
	ptr  []int32 // len NumCells+1, row pointers into nets
	nets []NetID
}

// Nets returns the nets incident to cell c, ascending and deduplicated.
// The returned slice aliases the index; callers must not modify it.
func (ix *CellNetIndex) Nets(c CellID) []NetID { return ix.nets[ix.ptr[c]:ix.ptr[c+1]] }

// NumIncidences returns the total number of (cell, net) incidence pairs.
func (ix *CellNetIndex) NumIncidences() int { return len(ix.nets) }

// NetIndex returns the cell -> incident-net index, building it on first
// use. The build is O(total pins); the result is cached until the next
// structural mutation. Safe for concurrent callers: netlists are
// structurally immutable during placement, and the cache is guarded for
// the lazy first build racing between realization workers.
func (n *Netlist) NetIndex() *CellNetIndex {
	n.idxMu.Lock()
	defer n.idxMu.Unlock()
	if n.idx == nil {
		n.idx = buildCellNetIndex(n)
	}
	return n.idx
}

// invalidateIndex drops the cached incidence index after a structural
// mutation.
func (n *Netlist) invalidateIndex() {
	n.idxMu.Lock()
	n.idx = nil
	n.idxMu.Unlock()
}

func buildCellNetIndex(n *Netlist) *CellNetIndex {
	nc := len(n.Cells)
	ptr := make([]int32, nc+1)
	// last[c] = most recent net counted for c; nets are scanned in
	// ascending order, so repeated pins of one net on one cell are
	// adjacent and dedup needs no sorting.
	last := make([]int32, nc)
	for i := range last {
		last[i] = -1
	}
	for ni := range n.Nets {
		for _, p := range n.Nets[ni].Pins {
			if p.IsPad() || int(p.Cell) >= nc {
				continue
			}
			if last[p.Cell] == int32(ni) {
				continue
			}
			last[p.Cell] = int32(ni)
			ptr[p.Cell+1]++
		}
	}
	for i := 0; i < nc; i++ {
		ptr[i+1] += ptr[i]
	}
	nets := make([]NetID, ptr[nc])
	fill := make([]int32, nc)
	copy(fill, ptr[:nc])
	for i := range last {
		last[i] = -1
	}
	for ni := range n.Nets {
		for _, p := range n.Nets[ni].Pins {
			if p.IsPad() || int(p.Cell) >= nc {
				continue
			}
			if last[p.Cell] == int32(ni) {
				continue
			}
			last[p.Cell] = int32(ni)
			nets[fill[p.Cell]] = NetID(ni)
			fill[p.Cell]++
		}
	}
	return &CellNetIndex{ptr: ptr, nets: nets}
}

// New returns an empty netlist over the given chip area.
func New(area geom.Rect, rowHeight float64) *Netlist {
	return &Netlist{Area: area, RowHeight: rowHeight}
}

// AddCell appends a cell and returns its ID. The cell starts at the chip
// center.
func (n *Netlist) AddCell(c Cell) CellID {
	n.invalidateIndex()
	id := CellID(len(n.Cells))
	n.Cells = append(n.Cells, c)
	ctr := n.Area.Center()
	n.X = append(n.X, ctr.X)
	n.Y = append(n.Y, ctr.Y)
	return id
}

// AddNet appends a net and returns its ID. Nets with fewer than two pins
// are legal but contribute nothing to any objective.
func (n *Netlist) AddNet(net Net) NetID {
	n.invalidateIndex()
	if net.Weight == 0 {
		net.Weight = 1
	}
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, net)
	return id
}

// NumCells returns the number of cells.
func (n *Netlist) NumCells() int { return len(n.Cells) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// Pos returns the center position of cell id.
func (n *Netlist) Pos(id CellID) geom.Point { return geom.Point{X: n.X[id], Y: n.Y[id]} }

// SetPos moves cell id's center to p.
func (n *Netlist) SetPos(id CellID, p geom.Point) { n.X[id], n.Y[id] = p.X, p.Y }

// CellRect returns the rectangle covered by cell id at its current
// position (the paper's A_{(x,y)}(c)).
func (n *Netlist) CellRect(id CellID) geom.Rect {
	c := &n.Cells[id]
	return geom.Rect{
		Xlo: n.X[id] - c.Width/2, Ylo: n.Y[id] - c.Height/2,
		Xhi: n.X[id] + c.Width/2, Yhi: n.Y[id] + c.Height/2,
	}
}

// PinPos returns the absolute position of a pin under the current
// placement.
func (n *Netlist) PinPos(p Pin) geom.Point {
	if p.IsPad() {
		return p.Offset
	}
	return geom.Point{X: n.X[p.Cell] + p.Offset.X, Y: n.Y[p.Cell] + p.Offset.Y}
}

// NetHPWL returns the weighted half-perimeter wirelength of one net.
func (n *Netlist) NetHPWL(id NetID) float64 {
	net := &n.Nets[id]
	if len(net.Pins) < 2 {
		return 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range net.Pins {
		pos := n.PinPos(p)
		minX = math.Min(minX, pos.X)
		maxX = math.Max(maxX, pos.X)
		minY = math.Min(minY, pos.Y)
		maxY = math.Max(maxY, pos.Y)
	}
	return net.Weight * ((maxX - minX) + (maxY - minY))
}

// HPWL returns the total weighted half-perimeter wirelength of the
// placement, the primary quality metric of all experiment tables.
func (n *Netlist) HPWL() float64 {
	total := 0.0
	for id := range n.Nets {
		total += n.NetHPWL(NetID(id))
	}
	return total
}

// TotalMovableArea returns size(C) restricted to movable cells.
func (n *Netlist) TotalMovableArea() float64 {
	total := 0.0
	for i := range n.Cells {
		if !n.Cells[i].Fixed {
			total += n.Cells[i].Size()
		}
	}
	return total
}

// FixedRects returns the rectangles of all fixed cells (blockages) clipped
// to the chip area.
func (n *Netlist) FixedRects() geom.RectSet {
	var out geom.RectSet
	for i := range n.Cells {
		if n.Cells[i].Fixed {
			r := n.CellRect(CellID(i)).Intersect(n.Area)
			if !r.Empty() {
				out = append(out, r)
			}
		}
	}
	return out
}

// MovableIDs returns the IDs of all movable cells.
func (n *Netlist) MovableIDs() []CellID {
	ids := make([]CellID, 0, len(n.Cells))
	for i := range n.Cells {
		if !n.Cells[i].Fixed {
			ids = append(ids, CellID(i))
		}
	}
	return ids
}

// Clone returns a deep copy of the netlist. Placement algorithms that are
// compared on the same instance (RQL vs FBP) each receive a clone.
func (n *Netlist) Clone() *Netlist {
	cp := &Netlist{
		Cells:     append([]Cell(nil), n.Cells...),
		Nets:      make([]Net, len(n.Nets)),
		X:         append([]float64(nil), n.X...),
		Y:         append([]float64(nil), n.Y...),
		Area:      n.Area,
		RowHeight: n.RowHeight,
	}
	for i, net := range n.Nets {
		cp.Nets[i] = Net{Name: net.Name, Weight: net.Weight, Pins: append([]Pin(nil), net.Pins...)}
	}
	return cp
}

// Validate checks structural invariants: pin cell IDs in range, positive
// cell dimensions, and movebound indices within [NoMovebound, maxMB).
func (n *Netlist) Validate(numMovebounds int) error {
	for i := range n.Cells {
		c := &n.Cells[i]
		// The negated comparison also catches NaN (NaN > 0 is false), which
		// `Width <= 0` would let through.
		if !(c.Width > 0) || !(c.Height > 0) || math.IsInf(c.Width, 1) || math.IsInf(c.Height, 1) {
			return fmt.Errorf("netlist: cell %d (%s) has non-positive or non-finite size %gx%g", i, c.Name, c.Width, c.Height)
		}
		if c.Movebound != NoMovebound && (c.Movebound < 0 || c.Movebound >= numMovebounds) {
			return fmt.Errorf("netlist: cell %d (%s) references movebound %d of %d", i, c.Name, c.Movebound, numMovebounds)
		}
	}
	for i := range n.Nets {
		for j, p := range n.Nets[i].Pins {
			if !p.IsPad() && int(p.Cell) >= len(n.Cells) {
				return fmt.Errorf("netlist: net %d pin %d references cell %d of %d", i, j, p.Cell, len(n.Cells))
			}
		}
	}
	if len(n.X) != len(n.Cells) || len(n.Y) != len(n.Cells) {
		return fmt.Errorf("netlist: position arrays have length %d/%d, want %d", len(n.X), len(n.Y), len(n.Cells))
	}
	return nil
}

// CellsOnNet returns the distinct non-pad cells of a net, preserving first
// occurrence order.
func (n *Netlist) CellsOnNet(id NetID) []CellID {
	seen := map[CellID]bool{}
	var out []CellID
	for _, p := range n.Nets[id].Pins {
		if !p.IsPad() && !seen[p.Cell] {
			seen[p.Cell] = true
			out = append(out, p.Cell)
		}
	}
	return out
}
