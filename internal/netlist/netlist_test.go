package netlist

import (
	"math"
	"testing"

	"fbplace/internal/geom"
)

func twoCellNetlist() (*Netlist, CellID, CellID) {
	n := New(geom.Rect{Xlo: 0, Ylo: 0, Xhi: 100, Yhi: 100}, 1)
	a := n.AddCell(Cell{Name: "a", Width: 2, Height: 1, Movebound: NoMovebound})
	b := n.AddCell(Cell{Name: "b", Width: 4, Height: 1, Movebound: NoMovebound})
	return n, a, b
}

func TestAddCellStartsAtCenter(t *testing.T) {
	n, a, _ := twoCellNetlist()
	if n.Pos(a) != (geom.Point{X: 50, Y: 50}) {
		t.Fatalf("initial pos = %v", n.Pos(a))
	}
}

func TestCellRect(t *testing.T) {
	n, a, _ := twoCellNetlist()
	n.SetPos(a, geom.Point{X: 10, Y: 20})
	want := geom.Rect{Xlo: 9, Ylo: 19.5, Xhi: 11, Yhi: 20.5}
	if got := n.CellRect(a); got != want {
		t.Fatalf("CellRect = %v, want %v", got, want)
	}
}

func TestHPWLTwoPin(t *testing.T) {
	n, a, b := twoCellNetlist()
	n.SetPos(a, geom.Point{X: 0, Y: 0})
	n.SetPos(b, geom.Point{X: 3, Y: 4})
	n.AddNet(Net{Pins: []Pin{{Cell: a}, {Cell: b}}})
	if got := n.HPWL(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("HPWL = %v, want 7", got)
	}
}

func TestHPWLWeightAndOffsets(t *testing.T) {
	n, a, b := twoCellNetlist()
	n.SetPos(a, geom.Point{X: 0, Y: 0})
	n.SetPos(b, geom.Point{X: 10, Y: 0})
	n.AddNet(Net{Weight: 2, Pins: []Pin{
		{Cell: a, Offset: geom.Point{X: 1, Y: 0}},
		{Cell: b, Offset: geom.Point{X: -1, Y: 0.5}},
	}})
	// Span x: from 1 to 9 = 8; span y: 0 to 0.5.
	if got := n.HPWL(); math.Abs(got-2*8.5) > 1e-12 {
		t.Fatalf("HPWL = %v, want 17", got)
	}
}

func TestHPWLPadPins(t *testing.T) {
	n, a, _ := twoCellNetlist()
	n.SetPos(a, geom.Point{X: 5, Y: 5})
	n.AddNet(Net{Pins: []Pin{
		{Cell: a},
		{Cell: -1, Offset: geom.Point{X: 0, Y: 0}}, // pad at origin
	}})
	if got := n.HPWL(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("HPWL = %v, want 10", got)
	}
}

func TestHPWLSinglePinNetIsZero(t *testing.T) {
	n, a, _ := twoCellNetlist()
	n.AddNet(Net{Pins: []Pin{{Cell: a}}})
	if got := n.HPWL(); got != 0 {
		t.Fatalf("HPWL = %v, want 0", got)
	}
}

func TestDefaultNetWeightIsOne(t *testing.T) {
	n, a, b := twoCellNetlist()
	id := n.AddNet(Net{Pins: []Pin{{Cell: a}, {Cell: b}}})
	if n.Nets[id].Weight != 1 {
		t.Fatalf("weight = %v", n.Nets[id].Weight)
	}
}

func TestTotalMovableAreaSkipsFixed(t *testing.T) {
	n, _, _ := twoCellNetlist()
	n.AddCell(Cell{Name: "macro", Width: 10, Height: 10, Fixed: true})
	if got := n.TotalMovableArea(); got != 2+4 {
		t.Fatalf("TotalMovableArea = %v, want 6", got)
	}
}

func TestFixedRectsClippedToArea(t *testing.T) {
	n := New(geom.Rect{Xlo: 0, Ylo: 0, Xhi: 10, Yhi: 10}, 1)
	m := n.AddCell(Cell{Name: "m", Width: 6, Height: 6, Fixed: true})
	n.SetPos(m, geom.Point{X: 9, Y: 5}) // sticks out to the right
	rs := n.FixedRects()
	if len(rs) != 1 {
		t.Fatalf("got %d fixed rects", len(rs))
	}
	if rs[0].Xhi != 10 {
		t.Fatalf("fixed rect not clipped: %v", rs[0])
	}
}

func TestMovableIDs(t *testing.T) {
	n, a, b := twoCellNetlist()
	n.AddCell(Cell{Name: "f", Width: 1, Height: 1, Fixed: true})
	ids := n.MovableIDs()
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("MovableIDs = %v", ids)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n, a, b := twoCellNetlist()
	n.AddNet(Net{Pins: []Pin{{Cell: a}, {Cell: b}}})
	cp := n.Clone()
	cp.SetPos(a, geom.Point{X: 1, Y: 1})
	cp.Nets[0].Pins[0].Offset = geom.Point{X: 9, Y: 9}
	cp.Cells[0].Width = 99
	if n.Pos(a) == (geom.Point{X: 1, Y: 1}) {
		t.Fatal("clone shares positions")
	}
	if n.Nets[0].Pins[0].Offset == (geom.Point{X: 9, Y: 9}) {
		t.Fatal("clone shares pins")
	}
	if n.Cells[0].Width == 99 {
		t.Fatal("clone shares cells")
	}
}

func TestValidate(t *testing.T) {
	n, a, b := twoCellNetlist()
	n.AddNet(Net{Pins: []Pin{{Cell: a}, {Cell: b}}})
	if err := n.Validate(0); err != nil {
		t.Fatalf("valid netlist rejected: %v", err)
	}
	bad := n.Clone()
	bad.Cells[0].Width = 0
	if err := bad.Validate(0); err == nil {
		t.Fatal("zero-width cell accepted")
	}
	bad = n.Clone()
	bad.Nets[0].Pins[0].Cell = 99
	if err := bad.Validate(0); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	bad = n.Clone()
	bad.Cells[0].Movebound = 3
	if err := bad.Validate(2); err == nil {
		t.Fatal("out-of-range movebound accepted")
	}
	ok := n.Clone()
	ok.Cells[0].Movebound = 1
	if err := ok.Validate(2); err != nil {
		t.Fatalf("in-range movebound rejected: %v", err)
	}
}

func TestCellsOnNetDedupsAndSkipsPads(t *testing.T) {
	n, a, b := twoCellNetlist()
	id := n.AddNet(Net{Pins: []Pin{
		{Cell: a}, {Cell: b}, {Cell: a, Offset: geom.Point{X: 1}},
		{Cell: -1, Offset: geom.Point{X: 0, Y: 0}},
	}})
	got := n.CellsOnNet(id)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("CellsOnNet = %v", got)
	}
}
