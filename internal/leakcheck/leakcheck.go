// Package leakcheck is a tiny goroutine-hygiene helper for tests: it
// snapshots the goroutine count when a test starts and verifies at cleanup
// that the count returned to (at most) the starting level. The parallel
// realization scheduler of internal/fbp must drain its workers on every
// exit path — success, early error, cancellation, and recovered worker
// panic — and these tests are where that contract is enforced.
//
// The check tolerates scheduler lag: goroutines that have finished their
// work may need a few milliseconds to terminate, so the comparison retries
// with short sleeps before failing.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB used here (keeps the package free of a
// testing import in non-test builds that link it).
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Check snapshots the current goroutine count and registers a cleanup that
// fails the test if, after a grace period, more goroutines are running
// than at the snapshot.
func Check(t TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if n, ok := settles(before, 2*time.Second); !ok {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d before, %d after grace period\n%s", before, n, buf)
		}
	})
}

// settles polls until the goroutine count drops to at most want or the
// deadline expires, returning the last observed count.
func settles(want int, deadline time.Duration) (int, bool) {
	start := time.Now()
	n := runtime.NumGoroutine()
	for n > want {
		if time.Since(start) > deadline {
			return n, false
		}
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n, true
}
