package ckpt

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"fbplace/internal/netlist"
)

// Fingerprint hashes the structure of a netlist — cells (name, size,
// fixedness, movebound), nets (name, weight, pins), chip area, and row
// height — with FNV-1a. Positions are deliberately excluded: they are the
// state a snapshot restores, not part of the instance's identity. Resume
// compares this fingerprint so a snapshot is never applied to a different
// circuit.
func Fingerprint(n *netlist.Netlist) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		// fnv's Write never fails.
		_, _ = h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	ws := func(s string) {
		w64(uint64(len(s)))
		_, _ = h.Write([]byte(s))
	}
	wf(n.Area.Xlo)
	wf(n.Area.Ylo)
	wf(n.Area.Xhi)
	wf(n.Area.Yhi)
	wf(n.RowHeight)
	w64(uint64(len(n.Cells)))
	for i := range n.Cells {
		c := &n.Cells[i]
		ws(c.Name)
		wf(c.Width)
		wf(c.Height)
		fixed := uint64(0)
		if c.Fixed {
			fixed = 1
		}
		w64(fixed)
		w64(uint64(int64(c.Movebound)))
	}
	w64(uint64(len(n.Nets)))
	for i := range n.Nets {
		net := &n.Nets[i]
		ws(net.Name)
		wf(net.Weight)
		w64(uint64(len(net.Pins)))
		for _, p := range net.Pins {
			w64(uint64(int64(p.Cell)))
			wf(p.Offset.X)
			wf(p.Offset.Y)
		}
	}
	return h.Sum64()
}
