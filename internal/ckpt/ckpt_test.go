package ckpt

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/fbp"
	"fbplace/internal/gen"
	"fbplace/internal/obs"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		NetlistFP:     0xdeadbeefcafe,
		ConfigFP:      0x1234567890ab,
		Level:         3,
		Levels:        6,
		X:             []float64{1.5, -2.25, math.SmallestNonzeroFloat64, 0},
		Y:             []float64{0, 1e300, -0.0, 42},
		QPSolves:      17,
		CGIters:       991,
		Relaxations:   2,
		GlobalElapsed: 1234 * time.Millisecond,
		FBPStats: []fbp.Stats{
			{NumNodes: 10, NumArcs: 20, NumWindows: 4, NumRegions: 16,
				NumExternals: 3, BuildTime: time.Millisecond, SolveTime: 2 * time.Millisecond,
				RealizeTime: 3 * time.Millisecond, Waves: 2, NSPivots: 55,
				LocalQPSolves: 7, LocalCGIters: 70},
			{NumNodes: 40, Waves: 1},
		},
		Degradations: []degrade.Event{
			{Stage: "qp.cg", Fallback: "anchor-solution", Detail: "injected"},
			{Stage: "flow.ns", Fallback: "ssp", Detail: "stall"},
		},
	}
}

func snapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.NetlistFP != got.NetlistFP || want.ConfigFP != got.ConfigFP {
		t.Fatalf("fingerprints: want %x/%x, got %x/%x", want.NetlistFP, want.ConfigFP, got.NetlistFP, got.ConfigFP)
	}
	if want.Level != got.Level || want.Levels != got.Levels {
		t.Fatalf("levels: want %d/%d, got %d/%d", want.Level, want.Levels, got.Level, got.Levels)
	}
	if want.QPSolves != got.QPSolves || want.CGIters != got.CGIters || want.Relaxations != got.Relaxations {
		t.Fatalf("counters differ: want %+v, got %+v", want, got)
	}
	if want.GlobalElapsed != got.GlobalElapsed {
		t.Fatalf("elapsed: want %v, got %v", want.GlobalElapsed, got.GlobalElapsed)
	}
	if len(want.X) != len(got.X) || len(want.Y) != len(got.Y) {
		t.Fatalf("positions: want %d/%d, got %d/%d", len(want.X), len(want.Y), len(got.X), len(got.Y))
	}
	for i := range want.X {
		if math.Float64bits(want.X[i]) != math.Float64bits(got.X[i]) ||
			math.Float64bits(want.Y[i]) != math.Float64bits(got.Y[i]) {
			t.Fatalf("cell %d: want (%x,%x), got (%x,%x)", i,
				math.Float64bits(want.X[i]), math.Float64bits(want.Y[i]),
				math.Float64bits(got.X[i]), math.Float64bits(got.Y[i]))
		}
	}
	if len(want.FBPStats) != len(got.FBPStats) {
		t.Fatalf("stats: want %d, got %d", len(want.FBPStats), len(got.FBPStats))
	}
	for i := range want.FBPStats {
		if want.FBPStats[i] != got.FBPStats[i] {
			t.Fatalf("stats[%d]: want %+v, got %+v", i, want.FBPStats[i], got.FBPStats[i])
		}
	}
	if len(want.Degradations) != len(got.Degradations) {
		t.Fatalf("degradations: want %d, got %d", len(want.Degradations), len(got.Degradations))
	}
	for i := range want.Degradations {
		if want.Degradations[i] != got.Degradations[i] {
			t.Fatalf("degradation[%d]: want %+v, got %+v", i, want.Degradations[i], got.Degradations[i])
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	store := &Store{Dir: t.TempDir()}
	want := sampleSnapshot()
	if err := store.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, info, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if info.FellBack {
		t.Fatalf("unexpected fallback: %+v", info)
	}
	if info.Gen != 1 {
		t.Fatalf("generation: want 1, got %d", info.Gen)
	}
	snapshotsEqual(t, want, got)
}

func TestEmptySnapshotRoundTrip(t *testing.T) {
	store := &Store{Dir: t.TempDir()}
	want := &Snapshot{Level: 1, Levels: 1}
	if err := store.Save(want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, _, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	snapshotsEqual(t, want, got)
}

func TestLoadNoCheckpoint(t *testing.T) {
	store := &Store{Dir: filepath.Join(t.TempDir(), "nonexistent")}
	_, _, err := store.Load()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: want ErrNoCheckpoint, got %v", err)
	}
	store = &Store{Dir: t.TempDir()}
	_, _, err = store.Load()
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: want ErrNoCheckpoint, got %v", err)
	}
}

func TestGenerationRotation(t *testing.T) {
	store := &Store{Dir: t.TempDir()}
	for lv := 1; lv <= 5; lv++ {
		snap := sampleSnapshot()
		snap.Level = lv
		if err := store.Save(snap); err != nil {
			t.Fatalf("Save level %d: %v", lv, err)
		}
	}
	gens, err := store.generations()
	if err != nil {
		t.Fatalf("generations: %v", err)
	}
	if len(gens) != 2 {
		t.Fatalf("want 2 retained generations, got %d", len(gens))
	}
	if gens[0].gen != 5 || gens[1].gen != 4 {
		t.Fatalf("want generations 5,4, got %d,%d", gens[0].gen, gens[1].gen)
	}
	got, _, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Level != 5 {
		t.Fatalf("want newest snapshot (level 5), got level %d", got.Level)
	}
}

// TestTruncationFallsBack corrupts the newest generation at every possible
// truncation length and checks the loader falls back to the previous
// generation without ever panicking.
func TestTruncationFallsBack(t *testing.T) {
	dir := t.TempDir()
	store := &Store{Dir: dir}
	old := sampleSnapshot()
	old.Level = 1
	if err := store.Save(old); err != nil {
		t.Fatalf("Save old: %v", err)
	}
	fresh := sampleSnapshot()
	fresh.Level = 2
	if err := store.Save(fresh); err != nil {
		t.Fatalf("Save fresh: %v", err)
	}
	newest := filepath.Join(dir, "ckpt-00000002.fbck")
	full, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read newest: %v", err)
	}
	// Sampling every 7th length keeps the test fast while still covering
	// header, count and string boundaries.
	for cut := 0; cut < len(full); cut += 7 {
		if err := os.WriteFile(newest, full[:cut], 0o644); err != nil {
			t.Fatalf("truncate to %d: %v", cut, err)
		}
		got, info, lerr := store.Load()
		if lerr != nil {
			t.Fatalf("cut %d: Load failed entirely: %v", cut, lerr)
		}
		if !info.FellBack {
			t.Fatalf("cut %d: loader accepted a truncated snapshot", cut)
		}
		if info.Detail == "" {
			t.Fatalf("cut %d: fallback without detail", cut)
		}
		if got.Level != 1 {
			t.Fatalf("cut %d: want fallback snapshot level 1, got %d", cut, got.Level)
		}
	}
}

// TestBitFlipRejected flips single bytes across the payload and checks the
// CRC catches them.
func TestBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	store := &Store{Dir: dir}
	if err := store.Save(sampleSnapshot()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, "ckpt-00000001.fbck")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	header := len(magic) + 16
	for pos := header; pos < len(full); pos += 11 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		_, _, lerr := store.Load()
		var fe *FormatError
		if lerr == nil || !errors.As(lerr, &fe) {
			t.Fatalf("flip at %d: want FormatError, got %v", pos, lerr)
		}
		if !strings.Contains(fe.Reason, "CRC") {
			t.Fatalf("flip at %d: want CRC rejection, got %q", pos, fe.Reason)
		}
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	store := &Store{Dir: dir}
	if err := store.Save(sampleSnapshot()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, "ckpt-00000001.fbck")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	full[len(magic)] = 0xff // version field
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, _, lerr := store.Load()
	var fe *FormatError
	if lerr == nil || !errors.As(lerr, &fe) || !strings.Contains(fe.Reason, "version") {
		t.Fatalf("want version FormatError, got %v", lerr)
	}
}

func TestWriteFaultInjection(t *testing.T) {
	defer faultsim.Reset()
	store := &Store{Dir: t.TempDir()}
	if err := faultsim.Arm("ckpt.write", faultsim.Schedule{}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	err := store.Save(sampleSnapshot())
	var inj *faultsim.InjectedError
	if err == nil || !errors.As(err, &inj) {
		t.Fatalf("want InjectedError, got %v", err)
	}
	if entries, _ := os.ReadDir(store.Dir); len(entries) != 0 {
		t.Fatalf("failed Save touched the store: %v", entries)
	}
}

func TestCorruptFaultTearsWrite(t *testing.T) {
	defer faultsim.Reset()
	store := &Store{Dir: t.TempDir()}
	good := sampleSnapshot()
	good.Level = 1
	if err := store.Save(good); err != nil {
		t.Fatalf("Save good: %v", err)
	}
	// Arm after the first save so only the second generation is torn.
	if err := faultsim.Arm("ckpt.corrupt", faultsim.Schedule{}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	torn := sampleSnapshot()
	torn.Level = 2
	if err := store.Save(torn); err != nil {
		t.Fatalf("torn Save should still report success, got %v", err)
	}
	faultsim.Reset()
	got, info, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !info.FellBack {
		t.Fatal("loader accepted the torn generation")
	}
	if got.Level != 1 {
		t.Fatalf("want previous generation (level 1), got level %d", got.Level)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	mk := func(seed int64) *gen.Instance {
		c, err := gen.Chip(gen.ChipSpec{Name: "fp", NumCells: 200, Seed: seed})
		if err != nil {
			t.Fatalf("gen.Chip: %v", err)
		}
		return c
	}
	a, b := mk(1), mk(1)
	if Fingerprint(a.N) != Fingerprint(b.N) {
		t.Fatal("identical instances fingerprint differently")
	}
	// Positions are excluded: moving a cell must not change the identity.
	b.N.X[0] += 100
	if Fingerprint(a.N) != Fingerprint(b.N) {
		t.Fatal("fingerprint depends on positions")
	}
	// Structure is included: a different seed or a mutated weight must.
	other := mk(2)
	if Fingerprint(a.N) == Fingerprint(other.N) {
		t.Fatal("different instances share a fingerprint")
	}
	b.N.Nets[0].Weight *= 2
	if Fingerprint(a.N) == Fingerprint(b.N) {
		t.Fatal("net weight change not reflected in fingerprint")
	}
}

// TestGC covers the standalone collector the serve disk governor uses on
// stores that stopped saving: it prunes to the requested generation
// count (or the store default for keep<=0), the survivors are the
// newest, and a store that never saved is a no-op, not an error.
func TestGC(t *testing.T) {
	store := &Store{Dir: t.TempDir(), Keep: 10, Obs: obs.New(nil)}
	for i := 0; i < 6; i++ {
		snap := sampleSnapshot()
		snap.Level = i
		if err := store.Save(snap); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	removed, err := store.GC(2)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if removed != 4 {
		t.Fatalf("GC removed %d generations, want 4", removed)
	}
	ents, err := os.ReadDir(store.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d files survive GC, want 2", len(ents))
	}
	// The newest generation survived: Load restores the last save.
	got, info, err := store.Load()
	if err != nil {
		t.Fatalf("Load after GC: %v", err)
	}
	if info.FellBack || got.Level != 5 {
		t.Fatalf("Load after GC: level=%d fellback=%v, want the newest generation (5)", got.Level, info.FellBack)
	}
	if n := store.Obs.Counter("ckpt.gc"); n != 4 {
		t.Fatalf("ckpt.gc counter = %g, want 4", n)
	}

	// keep<=0 selects the store default; already pruned to 2 = default.
	store.Keep = 0
	if removed, err = store.GC(0); err != nil || removed != 0 {
		t.Fatalf("GC at default keep: removed=%d err=%v, want 0/nil", removed, err)
	}

	// A store whose directory never existed has nothing to collect.
	empty := &Store{Dir: filepath.Join(t.TempDir(), "never-saved")}
	if removed, err = empty.GC(1); err != nil || removed != 0 {
		t.Fatalf("GC on missing dir: removed=%d err=%v, want 0/nil", removed, err)
	}
}
