package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"fbplace/internal/degrade"
	"fbplace/internal/fbp"
)

// The payload is a fixed-order little-endian dump. All integers are
// written as uint64/uint32, floats as their IEEE-754 bit patterns
// (math.Float64bits), strings and slices length-prefixed with uint32.
// The decoder is defensive: every read bounds-checks against the
// remaining payload and every count is sanity-checked against the bytes
// that could possibly back it, so a corrupted-but-CRC-colliding payload
// degrades to an error, never a panic or a huge allocation.

// enc accumulates the payload.
type enc struct {
	b []byte
}

func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}

func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

func (e *enc) i64(v int64) {
	e.u64(uint64(v))
}

func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) dur(d time.Duration) {
	e.i64(int64(d))
}

// dec reads the payload with a sticky error.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(reason string) {
	if d.err == nil {
		d.err = fmt.Errorf("payload: %s at offset %d", reason, d.off)
	}
}

func (d *dec) remaining() int {
	return len(d.b) - d.off
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 {
	return int64(d.u64())
}

func (d *dec) f64() float64 {
	return math.Float64frombits(d.u64())
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n < 0 || n > d.remaining() {
		d.fail("string length exceeds payload")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) dur() time.Duration {
	return time.Duration(d.i64())
}

// count reads a uint32 element count and checks it against the bytes that
// could back it at minBytes per element, bounding any allocation by the
// actual payload size.
func (d *dec) count(minBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || (minBytes > 0 && n > d.remaining()/minBytes) {
		d.fail("element count exceeds payload")
		return 0
	}
	return n
}

// encodeSnapshot renders snap as a complete snapshot file image: header
// (magic, version, CRC, payload length) followed by the payload.
func encodeSnapshot(snap *Snapshot) []byte {
	p := &enc{}
	p.u64(snap.NetlistFP)
	p.u64(snap.ConfigFP)
	p.i64(int64(snap.Level))
	p.i64(int64(snap.Levels))
	p.i64(snap.QPSolves)
	p.i64(snap.CGIters)
	p.i64(int64(snap.Relaxations))
	p.dur(snap.GlobalElapsed)
	p.u32(uint32(len(snap.X)))
	for _, v := range snap.X {
		p.f64(v)
	}
	for _, v := range snap.Y {
		p.f64(v)
	}
	p.u32(uint32(len(snap.FBPStats)))
	for i := range snap.FBPStats {
		encodeStats(p, &snap.FBPStats[i])
	}
	p.u32(uint32(len(snap.Degradations)))
	for _, ev := range snap.Degradations {
		p.str(ev.Stage)
		p.str(ev.Fallback)
		p.str(ev.Detail)
	}

	payload := p.b
	h := &enc{b: make([]byte, 0, len(magic)+16+len(payload))}
	h.b = append(h.b, magic...)
	h.u32(FormatVersion)
	h.u32(crc32.ChecksumIEEE(payload))
	h.u64(uint64(len(payload)))
	h.b = append(h.b, payload...)
	return h.b
}

// decodeSnapshot parses a CRC-validated payload. It still bounds-checks
// everything: CRC validation makes corruption unlikely, not impossible.
func decodeSnapshot(payload []byte) (*Snapshot, error) {
	d := &dec{b: payload}
	snap := &Snapshot{}
	snap.NetlistFP = d.u64()
	snap.ConfigFP = d.u64()
	snap.Level = int(d.i64())
	snap.Levels = int(d.i64())
	snap.QPSolves = d.i64()
	snap.CGIters = d.i64()
	snap.Relaxations = int(d.i64())
	snap.GlobalElapsed = d.dur()
	nc := d.count(16) // 8 bytes per coordinate, two coordinates per cell
	if d.err == nil {
		snap.X = make([]float64, nc)
		for i := range snap.X {
			snap.X[i] = d.f64()
		}
		snap.Y = make([]float64, nc)
		for i := range snap.Y {
			snap.Y[i] = d.f64()
		}
	}
	ns := d.count(statsMinBytes)
	if d.err == nil {
		snap.FBPStats = make([]fbp.Stats, ns)
		for i := range snap.FBPStats {
			decodeStats(d, &snap.FBPStats[i])
		}
	}
	nd := d.count(12) // three length prefixes per event
	if d.err == nil {
		snap.Degradations = make([]degrade.Event, nd)
		for i := range snap.Degradations {
			snap.Degradations[i].Stage = d.str()
			snap.Degradations[i].Fallback = d.str()
			snap.Degradations[i].Detail = d.str()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("payload: %d trailing bytes", d.remaining())
	}
	return snap, nil
}

// statsMinBytes is the encoded size of one fbp.Stats record; keep in sync
// with encodeStats.
const statsMinBytes = 12 * 8

func encodeStats(p *enc, s *fbp.Stats) {
	p.i64(int64(s.NumNodes))
	p.i64(int64(s.NumArcs))
	p.i64(int64(s.NumWindows))
	p.i64(int64(s.NumRegions))
	p.i64(int64(s.NumExternals))
	p.dur(s.BuildTime)
	p.dur(s.SolveTime)
	p.dur(s.RealizeTime)
	p.i64(int64(s.Waves))
	p.i64(int64(s.NSPivots))
	p.i64(s.LocalQPSolves)
	p.i64(s.LocalCGIters)
}

func decodeStats(d *dec, s *fbp.Stats) {
	s.NumNodes = int(d.i64())
	s.NumArcs = int(d.i64())
	s.NumWindows = int(d.i64())
	s.NumRegions = int(d.i64())
	s.NumExternals = int(d.i64())
	s.BuildTime = d.dur()
	s.SolveTime = d.dur()
	s.RealizeTime = d.dur()
	s.Waves = int(d.i64())
	s.NSPivots = int(d.i64())
	s.LocalQPSolves = d.i64()
	s.LocalCGIters = d.i64()
}
