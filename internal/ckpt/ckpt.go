// Package ckpt provides crash-safe checkpointing for the global placement
// loop: a versioned, checksummed snapshot format and an on-disk store with
// atomic generation rotation, so that a placement run killed mid-flight
// (preemption, OOM, power loss) can resume from its last completed level
// instead of starting over.
//
// Format. A snapshot file is
//
//	magic "FBPCKPT\x00" | uint32 version | uint32 CRC32-IEEE(payload) |
//	uint64 len(payload) | payload
//
// with the payload a fixed-order encoding/binary (little-endian) dump of
// the Snapshot fields. Positions are stored as raw float64 bits, so a
// restored placement is bit-identical to the one captured — the property
// the placer's kill-and-resume determinism tests rely on. Everything is
// stdlib-only.
//
// Atomicity. Save writes to a temporary file in the same directory, fsyncs
// it, and renames it to its final generation name (rename is atomic on
// POSIX). The previous generation is retained, so a crash at any point —
// including mid-write of the new generation — leaves at least one fully
// valid snapshot on disk. Load walks generations newest-first and falls
// back past any file that fails magic/version/CRC validation; callers can
// tell a fallback happened from LoadInfo and record it as a degradation.
//
// Fault injection. Two faultsim sites cover the failure modes tests care
// about: "ckpt.write" fails a Save outright (the placer records the skip
// and keeps running), and "ckpt.corrupt" tears the write — a truncated
// payload reaches the final file as if the process died between write and
// fsync — so the loader's previous-generation fallback can be exercised
// deterministically.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/fbp"
	"fbplace/internal/obs"
)

// FormatVersion is the current snapshot payload version. Readers reject
// snapshots with a different version rather than guessing at field layout.
const FormatVersion = 1

// magic identifies a snapshot file. The trailing NUL keeps the magic from
// being a prefix of any plausible text format.
const magic = "FBPCKPT\x00"

const (
	// genPrefix/genSuffix frame generation file names:
	// ckpt-00000001.fbck, ckpt-00000002.fbck, ...
	genPrefix = "ckpt-"
	genSuffix = ".fbck"
)

// writeFault fails a Save before it touches the store, exercising the
// placer's record-and-continue handling of checkpoint write errors.
var writeFault = faultsim.Register("ckpt.write",
	"a checkpoint save fails before touching the store")

// corruptFault tears the current Save: only a prefix of the encoded
// snapshot reaches the final generation file, as if the process died
// between write and fsync. Save still reports success — the corruption is
// only discovered by a later Load, which must fall back to the previous
// generation.
var corruptFault = faultsim.Register("ckpt.corrupt",
	"a checkpoint write is torn: a truncated payload lands in the newest generation")

// ErrNoCheckpoint is returned by Load when the directory holds no
// generation files at all (as opposed to holding only invalid ones).
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// FormatError reports a snapshot file that failed structural validation
// (bad magic, unsupported version, CRC mismatch, or truncated payload).
type FormatError struct {
	// Path is the offending file, Reason what failed.
	Path, Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("ckpt: %s: %s", e.Path, e.Reason)
}

// Snapshot is the global-loop state captured at a level boundary: enough
// to re-enter the loop at the next level and reproduce the uninterrupted
// run bit for bit. The loop itself is RNG-free — the anchors of level
// lv+1 are recomputed from the restored positions — so positions plus the
// level counter fully determine the continuation.
type Snapshot struct {
	// NetlistFP is the structural fingerprint of the netlist the snapshot
	// belongs to (see Fingerprint); ConfigFP the placer's config hash.
	// Resume refuses snapshots whose fingerprints do not match.
	NetlistFP, ConfigFP uint64
	// Level is the last completed partitioning level, Levels the total
	// planned for the run.
	Level, Levels int
	// X, Y are the cell center positions after Level's anchored QP,
	// restored bit-exact.
	X, Y []float64
	// QPSolves and CGIters are the accumulated top-level QP effort.
	QPSolves, CGIters int64
	// Relaxations accumulates the recursive baseline's capacity
	// relaxations (0 in FBP mode).
	Relaxations int
	// GlobalElapsed is the wall clock spent in the global loop up to the
	// snapshot, so a resumed run reports an honest total.
	GlobalElapsed time.Duration
	// FBPStats are the per-level flow statistics of the completed levels.
	FBPStats []fbp.Stats
	// Degradations are the solver fallbacks recorded up to the snapshot;
	// a resumed run restores them so Report.Degradations covers the whole
	// logical run, not just the post-resume tail.
	Degradations []degrade.Event
}

// Store reads and writes snapshot generations in one directory.
type Store struct {
	// Dir is the checkpoint directory (created on first Save).
	Dir string
	// Obs, when non-nil, counts writes ("ckpt.writes"), restores
	// ("ckpt.restores") and previous-generation fallbacks
	// ("ckpt.fallbacks").
	Obs *obs.Recorder
	// Keep is how many newest generations Save retains (0 means the
	// default of 2: the latest plus one fallback generation).
	Keep int
}

func (s *Store) keep() int {
	if s.Keep <= 0 {
		return 2
	}
	return s.Keep
}

// generation is one on-disk snapshot file.
type generation struct {
	gen  uint64
	path string
}

// generations lists the store's snapshot files sorted newest-first.
// Temporary files and unrelated names are ignored.
func (s *Store) generations() ([]generation, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var out []generation
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
			continue
		}
		num := name[len(genPrefix) : len(name)-len(genSuffix)]
		g, perr := strconv.ParseUint(num, 10, 64)
		if perr != nil {
			continue
		}
		out = append(out, generation{gen: g, path: filepath.Join(s.Dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen > out[j].gen })
	return out, nil
}

// Save writes snap as a new generation: encode, write to a temp file in
// the store directory, fsync, rename to the final name, then prune all but
// the newest Keep generations. A Save error leaves every existing
// generation untouched, so the caller can record the failure and continue
// the run.
func (s *Store) Save(snap *Snapshot) error {
	if err := writeFault.Check(); err != nil {
		return err
	}
	data := encodeSnapshot(snap)
	if corruptFault.Check() != nil {
		// Torn write: a prefix of the encoded snapshot lands in the final
		// file. Save still succeeds — the damage is only visible to Load,
		// which must fall back to the previous generation.
		data = data[:len(data)/2]
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	gens, err := s.generations()
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	next := uint64(1)
	if len(gens) > 0 {
		next = gens[0].gen + 1
	}
	final := filepath.Join(s.Dir, fmt.Sprintf("%s%08d%s", genPrefix, next, genSuffix))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		// Best effort: a half-written temp file is invisible to Load but
		// should not linger.
		_ = os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	syncDir(s.Dir)
	// Prune: keep the newest Keep generations (the one just written plus
	// fallbacks). Remove failures are tolerable — stale generations only
	// cost disk and are skipped by Load's newest-first walk.
	for i, g := range gens {
		if i+1 >= s.keep() { // +1 accounts for the generation just written
			_ = os.Remove(g.path)
		}
	}
	s.Obs.Count("ckpt.writes", 1)
	return nil
}

// GC removes all but the newest keep snapshot generations (keep <= 0
// selects the store's Keep default) and returns how many files it
// removed. Save already prunes after every successful write; GC covers
// stores that stopped saving — a job whose checkpointing was disabled by
// low-disk degradation, or one recovered from a previous process — whose
// stale generations would otherwise hold disk forever. A missing
// directory is not an error: there is nothing to collect.
func (s *Store) GC(keep int) (int, error) {
	if keep <= 0 {
		keep = s.keep()
	}
	gens, err := s.generations()
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("ckpt: %w", err)
	}
	removed := 0
	for i, g := range gens {
		if i < keep {
			continue
		}
		if rerr := os.Remove(g.path); rerr == nil {
			removed++
		}
		// A failed remove only costs disk; Load's newest-first walk never
		// reads pruned generations.
	}
	if removed > 0 {
		s.Obs.Count("ckpt.gc", float64(removed))
	}
	return removed, nil
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// bytes are durable before the rename publishes them.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		// The write error is what the caller needs; Close on this path
		// cannot add information.
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Errors are ignored: some filesystems reject directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	// Directory fsync support is platform-dependent; failure here does not
	// undo the rename.
	_ = d.Sync()
	_ = d.Close()
}

// LoadInfo describes where a loaded snapshot came from.
type LoadInfo struct {
	// Path is the generation file the snapshot was read from, Gen its
	// generation number.
	Path string
	Gen  uint64
	// FellBack is true when a newer generation existed but failed
	// validation; Detail carries that generation's error.
	FellBack bool
	Detail   string
}

// Load returns the newest valid snapshot. Generations that fail
// validation (torn writes, corruption) are skipped — never a panic — and
// the skip is reported through LoadInfo so the caller can record a
// degradation. ErrNoCheckpoint is returned when the directory has no
// generation files; a distinct error when generations exist but none
// validates.
func (s *Store) Load() (*Snapshot, LoadInfo, error) {
	gens, err := s.generations()
	if err != nil {
		if os.IsNotExist(err) {
			return nil, LoadInfo{}, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.Dir)
		}
		return nil, LoadInfo{}, fmt.Errorf("ckpt: %w", err)
	}
	if len(gens) == 0 {
		return nil, LoadInfo{}, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.Dir)
	}
	info := LoadInfo{}
	var firstErr error
	for i, g := range gens {
		snap, rerr := readSnapshotFile(g.path)
		if rerr != nil {
			if i == 0 {
				info.Detail = rerr.Error()
			}
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		info.Path, info.Gen = g.path, g.gen
		info.FellBack = i > 0
		s.Obs.Count("ckpt.restores", 1)
		if info.FellBack {
			s.Obs.Count("ckpt.fallbacks", 1)
		}
		return snap, info, nil
	}
	return nil, LoadInfo{}, fmt.Errorf("ckpt: all %d generations in %s invalid: %w", len(gens), s.Dir, firstErr)
}

// readSnapshotFile reads and fully validates one generation file.
func readSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(magic) + 4 + 4 + 8
	if len(data) < header {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("file too short (%d bytes)", len(data))}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &FormatError{Path: path, Reason: "bad magic"}
	}
	d := &dec{b: data, off: len(magic)}
	version := d.u32()
	sum := d.u32()
	plen := d.u64()
	if version != FormatVersion {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("unsupported format version %d (want %d)", version, FormatVersion)}
	}
	if plen != uint64(len(data)-header) {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("payload length %d, file carries %d", plen, len(data)-header)}
	}
	payload := data[header:]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, &FormatError{Path: path, Reason: fmt.Sprintf("CRC mismatch: stored %08x, computed %08x", sum, got)}
	}
	snap, derr := decodeSnapshot(payload)
	if derr != nil {
		return nil, &FormatError{Path: path, Reason: derr.Error()}
	}
	return snap, nil
}
