package plot

import (
	"bytes"
	"strings"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

func TestSVGBasics(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 100, Yhi: 50}, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 1, Movebound: 0})
	n.SetPos(a, geom.Point{X: 10, Y: 10})
	m := n.AddCell(netlist.Cell{Width: 10, Height: 10, Fixed: true})
	n.SetPos(m, geom.Point{X: 50, Y: 25})
	mbs := []region.Movebound{
		{Name: "M", Kind: region.Exclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 20, Yhi: 20}}},
	}
	var buf bytes.Buffer
	if err := SVG(&buf, n, mbs, Options{Title: "test"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "stroke-dasharray", "test", "width=\"1024\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// 1 background + 1 movebound + 2 cells = 4 rects.
	if got := strings.Count(out, "<rect"); got != 4 {
		t.Fatalf("rect count = %d, want 4", got)
	}
	// Aspect: height = 50/100 * 1024 = 512.
	if !strings.Contains(out, `height="512"`) {
		t.Fatalf("height wrong: %s", out[:120])
	}
}

func TestSVGEmptyChipRejected(t *testing.T) {
	n := netlist.New(geom.Rect{}, 1)
	var buf bytes.Buffer
	if err := SVG(&buf, n, nil, Options{}); err == nil {
		t.Fatal("empty chip accepted")
	}
}

func TestSVGYAxisFlipped(t *testing.T) {
	// A cell at the chip TOP must appear near SVG y=0.
	n := netlist.New(geom.Rect{Xhi: 100, Yhi: 100}, 1)
	a := n.AddCell(netlist.Cell{Width: 4, Height: 4})
	n.SetPos(a, geom.Point{X: 50, Y: 98})
	var buf bytes.Buffer
	if err := SVG(&buf, n, nil, Options{WidthPx: 100}); err != nil {
		t.Fatal(err)
	}
	// Cell rect y = 100 - (98+2) = 0.
	if !strings.Contains(buf.String(), `y="0.00" width="4.00"`) {
		t.Fatalf("top cell not at svg y=0: %s", buf.String())
	}
}
