// Package plot renders placements as SVG: the chip outline, fixed macros,
// movable cells colored by movebound, and movebound area outlines.
// Placement debugging is visual work; cmd/fbplace exposes this through the
// -svg flag.
package plot

import (
	"bufio"
	"fmt"
	"io"

	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// palette holds visually distinct fills for movebound classes.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44",
	"#66ccee", "#aa3377", "#dd7733", "#44aa99",
	"#99437a", "#777733", "#88ccaa", "#bb5566",
}

// Options tunes the rendering.
type Options struct {
	// WidthPx is the image width in pixels (height follows the chip
	// aspect ratio). Default 1024.
	WidthPx int
	// Title is printed in the image corner.
	Title string
}

// SVG writes the placement as an SVG image.
func SVG(w io.Writer, n *netlist.Netlist, mbs []region.Movebound, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 1024
	}
	chip := n.Area
	if chip.Width() <= 0 || chip.Height() <= 0 {
		return fmt.Errorf("plot: empty chip area")
	}
	scale := float64(opt.WidthPx) / chip.Width()
	heightPx := chip.Height() * scale
	bw := bufio.NewWriter(w)

	// SVG y grows downward; chip y grows upward: flip.
	x := func(v float64) float64 { return (v - chip.Xlo) * scale }
	y := func(v float64) float64 { return heightPx - (v-chip.Ylo)*scale }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%.0f" viewBox="0 0 %d %.0f">`+"\n",
		opt.WidthPx, heightPx, opt.WidthPx, heightPx)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%d" height="%.0f" fill="#fbfbf7" stroke="#333" stroke-width="1"/>`+"\n",
		opt.WidthPx, heightPx)

	// Movebound areas first (under the cells).
	for mi, m := range mbs {
		color := palette[mi%len(palette)]
		for _, r := range m.Area {
			dash := ""
			if m.Kind == region.Exclusive {
				dash = ` stroke-dasharray="6,3"`
			}
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.12" stroke="%s" stroke-width="1.5"%s/>`+"\n",
				x(r.Xlo), y(r.Yhi), r.Width()*scale, r.Height()*scale, color, color, dash)
		}
	}

	// Cells: fixed macros dark gray, movable colored by movebound.
	for i := range n.Cells {
		c := &n.Cells[i]
		r := n.CellRect(netlist.CellID(i))
		fill := "#9a9a9a"
		opacity := 0.85
		if !c.Fixed {
			if c.Movebound == netlist.NoMovebound {
				fill = "#556"
				opacity = 0.55
			} else {
				fill = palette[c.Movebound%len(palette)]
			}
		}
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f"/>`+"\n",
			x(r.Xlo), y(r.Yhi), r.Width()*scale, r.Height()*scale, fill, opacity)
	}
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="8" y="18" font-family="monospace" font-size="14" fill="#222">%s</text>`+"\n", opt.Title)
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}
