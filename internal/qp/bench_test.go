package qp

import (
	"fmt"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

// gridNetlist builds a side x side grid of unit cells (cell (i,j) at
// (i+0.5, j+0.5)) connected by 2-pin nets to the right and upper
// neighbors, mimicking the locality of a placed standard-cell design.
func gridNetlist(side int) *netlist.Netlist {
	area := geom.Rect{Xhi: float64(side), Yhi: float64(side)}
	n := netlist.New(area, 1)
	id := func(x, y int) netlist.CellID { return netlist.CellID(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			c := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
			n.SetPos(c, geom.Point{X: float64(x) + 0.5, Y: float64(y) + 0.5})
		}
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: id(x, y)}, {Cell: id(x+1, y)}}})
			}
			if y+1 < side {
				n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: id(x, y)}, {Cell: id(x, y+1)}}})
			}
		}
	}
	// Four corner pads keep the system anchored.
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: float64(side), Y: 0}, {X: 0, Y: float64(side)}, {X: float64(side), Y: float64(side)}} {
		cx, cy := int(p.X), int(p.Y)
		if cx == side {
			cx--
		}
		if cy == side {
			cy--
		}
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: id(cx, cy)}, {Cell: -1, Offset: p}}})
	}
	return n
}

// blockSubset returns the cells of a blockSide x blockSide block in the
// middle of the grid — the shape of a 3x3-window local QP subset.
func blockSubset(side, blockSide int) []netlist.CellID {
	x0, y0 := side/2, side/2
	var subset []netlist.CellID
	for y := y0; y < y0+blockSide; y++ {
		for x := x0; x < x0+blockSide; x++ {
			subset = append(subset, netlist.CellID(y*side+x))
		}
	}
	return subset
}

// BenchmarkSolveSubsetBlock measures one realization-local QP over a small
// block of a large netlist. Before the incident-net index this walked (and
// allocated for) every net in the netlist per call.
func BenchmarkSolveSubsetBlock(b *testing.B) {
	for _, side := range []int{100, 200} {
		b.Run(fmt.Sprintf("cells=%d", side*side), func(b *testing.B) {
			n := gridNetlist(side)
			subset := blockSubset(side, 12)
			// One workspace per worker is how the realization drives this
			// path; the benchmark mirrors that steady state.
			opt := Options{Tol: 1e-3, MaxIter: 60, BestEffort: true, Workspace: NewWorkspace()}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := SolveSubset(n, subset, nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
