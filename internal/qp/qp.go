// Package qp implements quadratic netlength minimization (paper §III),
// the analytic engine of the placer: nets become springs (clique model for
// small nets, star model for large ones), fixed pins and pads enter the
// right-hand side, and optional anchors pull cells toward targets (window
// centers during partitioning, spread positions in the RQL baseline).
// The x and y systems are independent and solved with preconditioned CG.
//
// SolveSubset supports the local QP of the realization step (§IV.B):
// only the given cells are variables, everything else is fixed at its
// current position.
package qp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"fbplace/internal/degrade"
	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/sparse"
)

// NetModel selects how multi-pin nets become springs.
type NetModel int

const (
	// ModelCliqueStar uses a clique for small nets and a star for large
	// ones (position-independent; the default).
	ModelCliqueStar NetModel = iota
	// ModelB2B is the bound-to-bound model of Kraftwerk2 [21]: per axis,
	// the two boundary pins connect to each other and to every inner pin
	// with weights 2/((p-1)*distance), which makes the quadratic optimum
	// approximate the HPWL optimum. Weights depend on the current
	// placement, so B2B is used on re-solves within the placement loop.
	ModelB2B
)

// Anchor is a spring from a cell to a fixed target point.
type Anchor struct {
	Cell   netlist.CellID
	Target geom.Point
	Weight float64
}

// Options tunes the quadratic solve.
type Options struct {
	// CliqueThreshold is the largest pin count modeled as a clique; nets
	// above it use the star model. Default 6.
	CliqueThreshold int
	// Tol is the CG relative residual target. Default 1e-6.
	Tol float64
	// MaxIter bounds CG iterations. Default per sparse.SolveCG.
	MaxIter int
	// Regularization is a tiny spring from every variable cell to the
	// chip center that keeps components without fixed connections
	// non-singular. Default 1e-8.
	Regularization float64
	// ClampToArea clamps the solution into the chip rectangle. Default
	// true (set via the zero value; see Solve).
	NoClamp bool
	// ReadX, ReadY, when non-nil, override the positions of non-variable
	// cells (length NumCells). Parallel realization passes a snapshot
	// taken at wave start so that concurrent local QPs on disjoint window
	// blocks are race-free and deterministic.
	ReadX, ReadY []float64
	// BestEffort accepts the CG iterate even when the iteration budget is
	// exhausted before the tolerance is met. The realization-local QP
	// only steers transportation costs, so an approximate solution is
	// fine there.
	BestEffort bool
	// NetModel selects clique/star (default) or bound-to-bound springs.
	NetModel NetModel
	// B2BMinDist floors the pin distances in B2B weights (default 1.0,
	// one row height) to keep the weights bounded for coincident pins.
	B2BMinDist float64
	// Obs, when non-nil, records QP solve counts and (via sparse) CG
	// iteration counters and the final relative residual.
	Obs *obs.Recorder
	// Stats, when non-nil, accumulates solver effort across calls. Safe
	// to share between concurrent solves (the realization-local QPs):
	// fields are updated atomically.
	Stats *SolveStats
	// Ctx, when non-nil, is threaded into the CG solves; a canceled or
	// expired context aborts the solve with the context's error.
	Ctx context.Context
	// Workspace, when non-nil, supplies reusable scratch (epoch-stamped
	// variable/net marks, pin buffers, matrix builders, rhs vectors) so
	// steady-state SolveSubset calls allocate O(block), not O(netlist).
	// A workspace must not be shared by concurrent solves; the parallel
	// realization threads one per worker. Results are bit-identical with
	// and without a workspace.
	Workspace *Workspace
	// Degrade, when non-nil, arms the non-convergence fallback chain: a CG
	// solve that exhausts its budget is retried once with a 4x iteration
	// budget, and if it still fails the positions are left at the warm
	// start (the last anchor solution), a degradation event is recorded,
	// and SolveSubset returns nil. Context errors never trigger the
	// fallback. Callers without a degrade log keep the hard-error
	// behavior.
	Degrade *degrade.Log
}

// SolveStats accumulates quadratic-solver effort. The counters are
// incremented atomically from concurrent realization workers; read them
// through Snapshot and seed them through Restore so every access stays
// atomic (the fbpvet atomicmix analyzer enforces this in-package, the
// accessors extend the discipline across packages).
type SolveStats struct {
	// Solves counts completed Solve/SolveSubset calls.
	Solves int64
	// CGIters is the total conjugate-gradient iterations over both axes.
	CGIters int64
}

func (s *SolveStats) add(iters int) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.Solves, 1)
	atomic.AddInt64(&s.CGIters, int64(iters))
}

// Snapshot atomically reads both counters. Safe while solves are still
// running on other goroutines.
func (s *SolveStats) Snapshot() (solves, cgIters int64) {
	return atomic.LoadInt64(&s.Solves), atomic.LoadInt64(&s.CGIters)
}

// Restore atomically seeds both counters, e.g. from a resume checkpoint.
func (s *SolveStats) Restore(solves, cgIters int64) {
	atomic.StoreInt64(&s.Solves, solves)
	atomic.StoreInt64(&s.CGIters, cgIters)
}

func (o *Options) fill() {
	if o.CliqueThreshold == 0 {
		o.CliqueThreshold = 6
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
	if o.Regularization == 0 {
		o.Regularization = 1e-8
	}
	if o.B2BMinDist == 0 {
		o.B2BMinDist = 1
	}
}

// Solve minimizes the quadratic netlength over all movable cells and
// writes the optimal positions into the netlist.
func Solve(n *netlist.Netlist, anchors []Anchor, opt Options) error {
	return SolveSubset(n, n.MovableIDs(), anchors, opt)
}

// netPin is one pin of a net as seen by the local system assembly.
type netPin struct {
	varIdx int32      // variable index or -1
	pos    geom.Point // absolute position if fixed, offset if variable
	cur    geom.Point // current absolute position (B2B weights/bounds)
}

// SolveSubset minimizes the quadratic netlength over the given cells only;
// all other cells are treated as fixed at their current positions.
// Anchors referencing cells outside the subset are ignored.
//
// The system is assembled by walking only the nets incident to the subset
// (via the netlist's cell -> net index), in ascending net order — the same
// nets, in the same order, that a full netlist scan would emit, so results
// are bit-identical to one while the cost is proportional to the block,
// not the chip. The obs counter "qp.netsVisited" records the incident-net
// count per call.
func SolveSubset(n *netlist.Netlist, subset []netlist.CellID, anchors []Anchor, opt Options) error {
	opt.fill()
	if len(subset) == 0 {
		return nil
	}
	ws := opt.Workspace
	if ws == nil {
		ws = NewWorkspace()
	} else if ws.uses > 0 {
		opt.Obs.Count("qp.wsReuse", 1)
	}
	ws.begin(n.NumCells(), n.NumNets())
	epoch := ws.epoch
	// Variable index per subset cell; epoch stamps replace the O(NumCells)
	// "-1" fill a dense varOf array would need per call.
	for vi, id := range subset {
		if n.Cells[id].Fixed {
			return fmt.Errorf("qp: subset contains fixed cell %d (%s)", id, n.Cells[id].Name)
		}
		ws.varIdx[id] = int32(vi)
		ws.varEpoch[id] = epoch
	}
	nv := len(subset)
	varOf := func(c netlist.CellID) int32 {
		if ws.varEpoch[c] == epoch {
			return ws.varIdx[c]
		}
		return -1
	}

	// Gather the nets incident to the subset, deduplicated by epoch stamp
	// and sorted ascending: ascending net order reproduces the emission
	// (and thus float summation) order of a full netlist scan bit-for-bit.
	idx := n.NetIndex()
	nets := ws.netIDs[:0]
	for _, id := range subset {
		for _, ni := range idx.Nets(id) {
			if ws.netEpoch[ni] != epoch {
				ws.netEpoch[ni] = epoch
				nets = append(nets, int32(ni))
			}
		}
	}
	sort.Sort(int32s(nets))
	ws.netIDs = nets
	opt.Obs.Count("qp.netsVisited", float64(len(nets)))

	// Collect pins per incident net and assign star variables: nets with
	// > CliqueThreshold pins get a star node. Every gathered net has at
	// least one variable pin by construction of the index, so the old
	// per-net hasVar scan is gone entirely.
	ws.pins = ws.pins[:0]
	ws.pinOff = ws.pinOff[:0]
	ws.starOf = ws.starOf[:0]
	numStars := 0
	for _, ni := range nets {
		net := &n.Nets[ni]
		ws.pinOff = append(ws.pinOff, int32(len(ws.pins)))
		star := int32(-1)
		if len(net.Pins) >= 2 {
			for _, p := range net.Pins {
				if !p.IsPad() && varOf(p.Cell) >= 0 {
					cur := geom.Point{X: n.X[p.Cell] + p.Offset.X, Y: n.Y[p.Cell] + p.Offset.Y}
					ws.pins = append(ws.pins, netPin{varIdx: varOf(p.Cell), pos: p.Offset, cur: cur})
				} else {
					// With a snapshot, never touch the live position of a
					// non-variable cell: another unit of the same wave may be
					// writing it concurrently.
					var pos geom.Point
					if opt.ReadX != nil && !p.IsPad() {
						pos = geom.Point{X: opt.ReadX[p.Cell] + p.Offset.X, Y: opt.ReadY[p.Cell] + p.Offset.Y}
					} else {
						pos = n.PinPos(p)
					}
					ws.pins = append(ws.pins, netPin{varIdx: -1, pos: pos, cur: pos})
				}
			}
			if opt.NetModel == ModelCliqueStar && len(net.Pins) > opt.CliqueThreshold {
				star = int32(nv + numStars)
				numStars++
			}
		}
		ws.starOf = append(ws.starOf, star)
	}
	ws.pinOff = append(ws.pinOff, int32(len(ws.pins)))
	dim := nv + numStars

	if ws.bx == nil {
		ws.bx, ws.by = sparse.NewBuilder(dim), sparse.NewBuilder(dim)
	} else {
		ws.bx.Reset(dim)
		ws.by.Reset(dim)
	}
	bx, by := ws.bx, ws.by
	ws.rhsX = growZeroed(ws.rhsX, dim)
	ws.rhsY = growZeroed(ws.rhsY, dim)
	rhsX, rhsY := ws.rhsX, ws.rhsY

	// addSpring connects two pins (variable or fixed) with weight w.
	addSpring := func(a, b netPin, w float64) {
		switch {
		case a.varIdx >= 0 && b.varIdx >= 0:
			if a.varIdx == b.varIdx {
				return // two pins on the same cell: rigid, no term
			}
			bx.AddSym(int(a.varIdx), int(b.varIdx), w)
			by.AddSym(int(a.varIdx), int(b.varIdx), w)
			// Offset difference moves the equilibrium.
			dx := a.pos.X - b.pos.X
			dy := a.pos.Y - b.pos.Y
			rhsX[a.varIdx] -= w * dx
			rhsX[b.varIdx] += w * dx
			rhsY[a.varIdx] -= w * dy
			rhsY[b.varIdx] += w * dy
		case a.varIdx >= 0:
			bx.AddDiag(int(a.varIdx), w)
			by.AddDiag(int(a.varIdx), w)
			rhsX[a.varIdx] += w * (b.pos.X - a.pos.X)
			rhsY[a.varIdx] += w * (b.pos.Y - a.pos.Y)
		case b.varIdx >= 0:
			bx.AddDiag(int(b.varIdx), w)
			by.AddDiag(int(b.varIdx), w)
			rhsX[b.varIdx] += w * (a.pos.X - b.pos.X)
			rhsY[b.varIdx] += w * (a.pos.Y - b.pos.Y)
		}
	}

	// addSpringAxis is the single-axis variant used by the B2B model;
	// axis 0 = x, 1 = y.
	addSpringAxis := func(a, b netPin, w float64, axis int) {
		bld, rhs := bx, rhsX
		ca, cb := a.pos.X, b.pos.X
		if axis == 1 {
			bld, rhs = by, rhsY
			ca, cb = a.pos.Y, b.pos.Y
		}
		switch {
		case a.varIdx >= 0 && b.varIdx >= 0:
			if a.varIdx == b.varIdx {
				return
			}
			bld.AddSym(int(a.varIdx), int(b.varIdx), w)
			d := ca - cb
			rhs[a.varIdx] -= w * d
			rhs[b.varIdx] += w * d
		case a.varIdx >= 0:
			bld.AddDiag(int(a.varIdx), w)
			rhs[a.varIdx] += w * (cb - ca)
		case b.varIdx >= 0:
			bld.AddDiag(int(b.varIdx), w)
			rhs[b.varIdx] += w * (ca - cb)
		}
	}
	// b2bAxis adds the bound-to-bound springs of one net on one axis.
	b2bAxis := func(ps []netPin, netWeight float64, axis int) {
		p := len(ps)
		coord := func(i int) float64 {
			if axis == 1 {
				return ps[i].cur.Y
			}
			return ps[i].cur.X
		}
		lo, hi := 0, 0
		for i := 1; i < p; i++ {
			if coord(i) < coord(lo) {
				lo = i
			}
			if coord(i) > coord(hi) {
				hi = i
			}
		}
		if lo == hi {
			hi = (lo + 1) % p // coincident pins: pick any partner
		}
		scale := 2 * netWeight / float64(p-1)
		weight := func(i, j int) float64 {
			d := math.Abs(coord(i) - coord(j))
			if d < opt.B2BMinDist {
				d = opt.B2BMinDist
			}
			return scale / d
		}
		addSpringAxis(ps[lo], ps[hi], weight(lo, hi), axis)
		for i := 0; i < p; i++ {
			if i == lo || i == hi {
				continue
			}
			addSpringAxis(ps[i], ps[lo], weight(i, lo), axis)
			addSpringAxis(ps[i], ps[hi], weight(i, hi), axis)
		}
	}

	for k, ni := range ws.netIDs {
		ps := ws.pins[ws.pinOff[k]:ws.pinOff[k+1]]
		if len(ps) == 0 {
			continue // fewer than two pins: no spring terms
		}
		w := n.Nets[ni].Weight
		p := len(ps)
		if opt.NetModel == ModelB2B && p > 2 {
			b2bAxis(ps, w, 0)
			b2bAxis(ps, w, 1)
		} else if ws.starOf[k] < 0 {
			// Clique model with the standard 1/(p-1) scaling.
			cw := w / float64(p-1)
			for i := 0; i < p; i++ {
				for j := i + 1; j < p; j++ {
					addSpring(ps[i], ps[j], cw)
				}
			}
		} else {
			// Star model: every pin to the star node; weight p/(p-1)
			// makes 2-pin behavior consistent in expectation.
			sw := w * float64(p) / float64(p-1)
			star := netPin{varIdx: ws.starOf[k]}
			for i := 0; i < p; i++ {
				addSpring(ps[i], star, sw)
			}
		}
	}

	// Anchors.
	for _, a := range anchors {
		vi := varOf(a.Cell)
		if vi < 0 || a.Weight <= 0 {
			continue
		}
		bx.AddDiag(int(vi), a.Weight)
		by.AddDiag(int(vi), a.Weight)
		rhsX[vi] += a.Weight * a.Target.X
		rhsY[vi] += a.Weight * a.Target.Y
	}

	// Regularization toward the chip center keeps disconnected cells and
	// star nodes well-defined.
	ctr := n.Area.Center()
	for i := 0; i < dim; i++ {
		bx.AddDiag(i, opt.Regularization)
		by.AddDiag(i, opt.Regularization)
		rhsX[i] += opt.Regularization * ctr.X
		rhsY[i] += opt.Regularization * ctr.Y
	}

	mx, my := bx.Build(), by.Build()
	ws.x = grow(ws.x, dim)
	ws.y = grow(ws.y, dim)
	x, y := ws.x, ws.y
	for vi, id := range subset {
		x[vi], y[vi] = n.X[id], n.Y[id] // warm start
	}
	for s := nv; s < dim; s++ {
		x[s], y[s] = ctr.X, ctr.Y
	}
	cg := sparse.CGOptions{Tol: opt.Tol, MaxIter: opt.MaxIter, Obs: opt.Obs, Ctx: opt.Ctx}
	tolerable := func(err error) bool {
		return err == nil || (opt.BestEffort && errors.Is(err, sparse.ErrNotConverged))
	}
	degraded := false
	var degradeDetail string
	// solveAxis runs CG and, when a degrade log is armed, the
	// retry-then-anchor step of the fallback chain: a non-converged solve
	// is retried once from the current iterate with a 4x iteration budget;
	// if it still fails, the degraded flag makes SolveSubset keep the warm
	// start. Context errors pass straight through (ErrNotConverged is a
	// distinct sentinel, so a cancellation mid-solve never retries).
	solveAxis := func(m *sparse.CSR, v, rhs []float64) (int, error) {
		it, err := sparse.SolveCG(m, v, rhs, cg)
		if tolerable(err) || opt.Degrade == nil || !errors.Is(err, sparse.ErrNotConverged) {
			return it, err
		}
		retry := cg
		retry.MaxIter = 4 * cg.MaxIter
		if retry.MaxIter <= 0 {
			retry.MaxIter = 40 * m.N
			if retry.MaxIter < 400 {
				retry.MaxIter = 400
			}
		}
		it2, err2 := sparse.SolveCG(m, v, rhs, retry)
		it += it2
		if err2 == nil || !errors.Is(err2, sparse.ErrNotConverged) {
			return it, err2
		}
		degraded = true
		degradeDetail = err2.Error()
		return it, nil
	}
	itx, err := solveAxis(mx, x, rhsX)
	if !tolerable(err) {
		return fmt.Errorf("qp: x solve: %w", err)
	}
	ity, err := solveAxis(my, y, rhsY)
	if !tolerable(err) {
		return fmt.Errorf("qp: y solve: %w", err)
	}
	opt.Stats.add(itx + ity)
	opt.Obs.Count("qp.solves", 1)
	if degraded {
		// Degraded-result contract: positions stay at the warm start (the
		// last anchor solution); the caller learns about it through the
		// degradation log, not an error.
		opt.Degrade.Add("qp.cg", "anchor-solution", degradeDetail)
		return nil
	}
	for vi, id := range subset {
		p := geom.Point{X: x[vi], Y: y[vi]}
		if !opt.NoClamp {
			p = n.Area.ClampPoint(p)
		}
		n.SetPos(id, p)
	}
	return nil
}

// Netlength returns the quadratic objective value of the current placement
// (sum over net springs of w * squared distance, same models as Solve).
// Used by tests and convergence diagnostics.
func Netlength(n *netlist.Netlist, cliqueThreshold int) float64 {
	if cliqueThreshold == 0 {
		cliqueThreshold = 6
	}
	total := 0.0
	for ni := range n.Nets {
		net := &n.Nets[ni]
		p := len(net.Pins)
		if p < 2 {
			continue
		}
		if p <= cliqueThreshold {
			cw := net.Weight / float64(p-1)
			for i := 0; i < p; i++ {
				pi := n.PinPos(net.Pins[i])
				for j := i + 1; j < p; j++ {
					pj := n.PinPos(net.Pins[j])
					total += cw * (sq(pi.X-pj.X) + sq(pi.Y-pj.Y))
				}
			}
		} else {
			// Star at the centroid (the optimal star position).
			var cx, cy float64
			for i := 0; i < p; i++ {
				pos := n.PinPos(net.Pins[i])
				cx += pos.X
				cy += pos.Y
			}
			cx /= float64(p)
			cy /= float64(p)
			sw := net.Weight * float64(p) / float64(p-1)
			for i := 0; i < p; i++ {
				pos := n.PinPos(net.Pins[i])
				total += sw * (sq(pos.X-cx) + sq(pos.Y-cy))
			}
		}
	}
	return total
}

func sq(v float64) float64 { return v * v }
