package qp

import (
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/degrade"
	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 10, Yhi: 10}

func TestSolveSingleCellBetweenPads(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{
		{Cell: a},
		{Cell: -1, Offset: geom.Point{X: 2, Y: 2}},
	}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{
		{Cell: a},
		{Cell: -1, Offset: geom.Point{X: 8, Y: 4}},
	}})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// Equal weights: optimum at the midpoint.
	if n.Pos(a).DistL1(geom.Point{X: 5, Y: 3}) > 1e-4 {
		t.Fatalf("pos = %v, want (5,3)", n.Pos(a))
	}
}

func TestSolveWeightedPull(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.AddNet(netlist.Net{Weight: 3, Pins: []netlist.Pin{
		{Cell: a}, {Cell: -1, Offset: geom.Point{X: 0, Y: 5}},
	}})
	n.AddNet(netlist.Net{Weight: 1, Pins: []netlist.Pin{
		{Cell: a}, {Cell: -1, Offset: geom.Point{X: 8, Y: 5}},
	}})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// Weighted average: (3*0 + 1*8)/4 = 2.
	if math.Abs(n.X[a]-2) > 1e-4 {
		t.Fatalf("x = %v, want 2", n.X[a])
	}
}

func TestSolveChainOfCells(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	pad := func(x float64) netlist.Pin { return netlist.Pin{Cell: -1, Offset: geom.Point{X: x, Y: 5}} }
	n.AddNet(netlist.Net{Pins: []netlist.Pin{pad(0), {Cell: a}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: b}, pad(9)}})
	if err := Solve(n, nil, Options{Tol: 1e-10}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.X[a]-3) > 1e-4 || math.Abs(n.X[b]-6) > 1e-4 {
		t.Fatalf("chain positions = %v, %v; want 3, 6", n.X[a], n.X[b])
	}
}

func TestSolveRespectsPinOffsets(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 1})
	// Pin at the right edge of the cell connects to a pad at x=6: the
	// cell center should sit at 5.
	n.AddNet(netlist.Net{Pins: []netlist.Pin{
		{Cell: a, Offset: geom.Point{X: 1, Y: 0}},
		{Cell: -1, Offset: geom.Point{X: 6, Y: 5}},
	}})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(n.X[a]-5) > 1e-4 {
		t.Fatalf("x = %v, want 5", n.X[a])
	}
}

func TestSolveFixedCellActsAsPad(t *testing.T) {
	n := netlist.New(chip, 1)
	f := n.AddCell(netlist.Cell{Width: 1, Height: 1, Fixed: true})
	n.SetPos(f, geom.Point{X: 8, Y: 8})
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: f}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 2, Y: 2}}}})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if n.Pos(a).DistL1(geom.Point{X: 5, Y: 5}) > 1e-4 {
		t.Fatalf("pos = %v, want (5,5)", n.Pos(a))
	}
	// The fixed cell must not move.
	if n.Pos(f) != (geom.Point{X: 8, Y: 8}) {
		t.Fatalf("fixed cell moved to %v", n.Pos(f))
	}
}

func TestSolveAnchors(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 0, Y: 0}}}})
	anchors := []Anchor{{Cell: a, Target: geom.Point{X: 10, Y: 10}, Weight: 1}}
	if err := Solve(n, anchors, Options{}); err != nil {
		t.Fatal(err)
	}
	// Equal pulls: midpoint.
	if n.Pos(a).DistL1(geom.Point{X: 5, Y: 5}) > 1e-4 {
		t.Fatalf("pos = %v", n.Pos(a))
	}
	// Stronger anchor wins.
	anchors[0].Weight = 1e6
	if err := Solve(n, anchors, Options{}); err != nil {
		t.Fatal(err)
	}
	if n.Pos(a).DistL1(geom.Point{X: 10, Y: 10}) > 1e-2 {
		t.Fatalf("pos = %v, want near (10,10)", n.Pos(a))
	}
}

func TestSolveSubsetFixesOthers(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.SetPos(b, geom.Point{X: 9, Y: 9})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 1, Y: 1}}}})
	if err := SolveSubset(n, []netlist.CellID{a}, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if n.Pos(b) != (geom.Point{X: 9, Y: 9}) {
		t.Fatalf("non-subset cell moved: %v", n.Pos(b))
	}
	if n.Pos(a).DistL1(geom.Point{X: 5, Y: 5}) > 1e-4 {
		t.Fatalf("pos a = %v, want (5,5)", n.Pos(a))
	}
}

func TestSolveSubsetRejectsFixed(t *testing.T) {
	n := netlist.New(chip, 1)
	f := n.AddCell(netlist.Cell{Width: 1, Height: 1, Fixed: true})
	if err := SolveSubset(n, []netlist.CellID{f}, nil, Options{}); err == nil {
		t.Fatal("fixed cell in subset accepted")
	}
}

func TestSolveStarModelLargeNet(t *testing.T) {
	n := netlist.New(chip, 1)
	var cells []netlist.CellID
	var pinList []netlist.Pin
	for i := 0; i < 12; i++ {
		c := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		cells = append(cells, c)
		pinList = append(pinList, netlist.Pin{Cell: c})
	}
	pinList = append(pinList,
		netlist.Pin{Cell: -1, Offset: geom.Point{X: 2, Y: 2}},
		netlist.Pin{Cell: -1, Offset: geom.Point{X: 8, Y: 8}})
	n.AddNet(netlist.Net{Pins: pinList})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// All cells collapse to the pad midpoint through the star node.
	for _, c := range cells {
		if n.Pos(c).DistL1(geom.Point{X: 5, Y: 5}) > 1e-3 {
			t.Fatalf("cell %d at %v, want (5,5)", c, n.Pos(c))
		}
	}
}

func TestSolveClampsToArea(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	// Anchor far outside the chip.
	anchors := []Anchor{{Cell: a, Target: geom.Point{X: 100, Y: -50}, Weight: 1}}
	if err := Solve(n, anchors, Options{}); err != nil {
		t.Fatal(err)
	}
	p := n.Pos(a)
	if !chip.Contains(p) {
		t.Fatalf("pos %v outside chip", p)
	}
	// With NoClamp, the solution follows the anchor out.
	if err := Solve(n, anchors, Options{NoClamp: true}); err != nil {
		t.Fatal(err)
	}
	if n.X[a] < 50 {
		t.Fatalf("NoClamp x = %v", n.X[a])
	}
}

func TestSolveDisconnectedCellGoesToCenter(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	n.SetPos(a, geom.Point{X: 1, Y: 1})
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if n.Pos(a).DistL1(chip.Center()) > 1e-3 {
		t.Fatalf("disconnected cell at %v", n.Pos(a))
	}
}

// Property: the solver reaches (up to tolerance) a stationary point —
// perturbing any single cell does not decrease the quadratic objective.
func TestSolveIsLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := netlist.New(chip, 1)
		nc := 4 + rng.Intn(10)
		var ids []netlist.CellID
		for i := 0; i < nc; i++ {
			ids = append(ids, n.AddCell(netlist.Cell{Width: 1, Height: 1}))
		}
		// Random 2- and 3-pin nets plus two boundary pads.
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: ids[0]}, {Cell: -1, Offset: geom.Point{X: 0, Y: 0}}}})
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: ids[nc-1]}, {Cell: -1, Offset: geom.Point{X: 10, Y: 10}}}})
		for e := 0; e < 2*nc; e++ {
			i, j := rng.Intn(nc), rng.Intn(nc)
			if i == j {
				continue
			}
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: ids[i]}, {Cell: ids[j]}}})
		}
		if err := Solve(n, nil, Options{Tol: 1e-10, NoClamp: true}); err != nil {
			t.Fatal(err)
		}
		base := Netlength(n, 6)
		for _, id := range ids {
			orig := n.Pos(id)
			for _, d := range []geom.Point{{X: 0.01}, {X: -0.01}, {Y: 0.01}, {Y: -0.01}} {
				n.SetPos(id, orig.Add(d))
				if got := Netlength(n, 6); got < base-1e-6 {
					t.Fatalf("trial %d: perturbing cell %d improved %g -> %g", trial, id, base, got)
				}
			}
			n.SetPos(id, orig)
		}
	}
}

func TestNetlengthDecreasesAfterSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := netlist.New(chip, 1)
	var ids []netlist.CellID
	for i := 0; i < 20; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
		ids = append(ids, id)
	}
	for e := 0; e < 40; e++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: ids[i]}, {Cell: ids[j]}}})
		}
	}
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: ids[0]}, {Cell: -1, Offset: geom.Point{X: 0, Y: 5}}}})
	before := Netlength(n, 6)
	if err := Solve(n, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	after := Netlength(n, 6)
	if after > before {
		t.Fatalf("netlength increased: %g -> %g", before, after)
	}
}

func TestB2BTwoPinMatchesClique(t *testing.T) {
	build := func(model NetModel) *netlist.Netlist {
		n := netlist.New(chip, 1)
		a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.AddNet(netlist.Net{Pins: []netlist.Pin{
			{Cell: a}, {Cell: -1, Offset: geom.Point{X: 2, Y: 8}},
		}})
		n.AddNet(netlist.Net{Pins: []netlist.Pin{
			{Cell: a}, {Cell: -1, Offset: geom.Point{X: 8, Y: 2}},
		}})
		if err := Solve(n, nil, Options{NetModel: model}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	c := build(ModelCliqueStar)
	b := build(ModelB2B)
	if c.Pos(0).DistL1(b.Pos(0)) > 1e-6 {
		t.Fatalf("2-pin nets must agree: %v vs %v", c.Pos(0), b.Pos(0))
	}
}

func TestB2BApproximatesHPWLBetter(t *testing.T) {
	// A 4-pin net with three fixed pins and one movable cell: the HPWL
	// optimum puts the cell anywhere inside the bounding box of the other
	// pins; the clique optimum pulls it to the centroid. B2B (iterated)
	// should land at least as good an HPWL as the clique model.
	rng := rand.New(rand.NewSource(4))
	worse := 0
	for trial := 0; trial < 20; trial++ {
		build := func(model NetModel) float64 {
			n := netlist.New(chip, 1)
			a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
			pins := []netlist.Pin{{Cell: a}}
			for k := 0; k < 3; k++ {
				pins = append(pins, netlist.Pin{Cell: -1, Offset: geom.Point{
					X: rng.Float64() * 10, Y: rng.Float64() * 10,
				}})
			}
			n.AddNet(netlist.Net{Pins: pins})
			// An extra 2-pin net tugging the cell off-center.
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 0, Y: 0}}}})
			for iter := 0; iter < 3; iter++ {
				if err := Solve(n, nil, Options{NetModel: model}); err != nil {
					t.Fatal(err)
				}
			}
			return n.HPWL()
		}
		rngState := *rng
		clique := build(ModelCliqueStar)
		*rng = rngState
		b2b := build(ModelB2B)
		if b2b > clique+1e-9 {
			worse++
		}
	}
	if worse > 6 {
		t.Fatalf("B2B worse than clique in %d/20 trials", worse)
	}
}

func TestB2BCoincidentPinsStable(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	c := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	// All cells start at the chip center: every pin coincides.
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}, {Cell: c}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 1, Y: 1}}}})
	if err := Solve(n, nil, Options{NetModel: ModelB2B}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := n.Pos(netlist.CellID(i))
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("cell %d at NaN", i)
		}
	}
}

// TestDegradeKeepsAnchorSolution forces organic CG non-convergence (a long
// chain needs ~one iteration per cell; MaxIter 1 leaves even the 4x retry
// short) and checks the fallback contract: with a degrade log the solve
// returns nil, leaves the warm-start positions untouched, and records the
// qp.cg -> anchor-solution event; without one it stays a hard error.
func TestDegradeKeepsAnchorSolution(t *testing.T) {
	build := func() (*netlist.Netlist, []netlist.CellID) {
		n := netlist.New(chip, 1)
		var ids []netlist.CellID
		prev := netlist.Pin{Cell: -1, Offset: geom.Point{X: 0, Y: 5}}
		for i := 0; i < 30; i++ {
			id := n.AddCell(netlist.Cell{Width: 0.1, Height: 0.1})
			n.SetPos(id, geom.Point{X: 1, Y: 1})
			n.AddNet(netlist.Net{Pins: []netlist.Pin{prev, {Cell: id}}})
			prev = netlist.Pin{Cell: id}
			ids = append(ids, id)
		}
		n.AddNet(netlist.Net{Pins: []netlist.Pin{prev, {Cell: -1, Offset: geom.Point{X: 9, Y: 5}}}})
		return n, ids
	}

	n, ids := build()
	if err := Solve(n, nil, Options{Tol: 1e-12, MaxIter: 1}); err == nil {
		t.Fatal("non-convergence without a degrade log must be a hard error")
	}

	n, ids = build()
	dl := degrade.New(nil)
	if err := Solve(n, nil, Options{Tol: 1e-12, MaxIter: 1, Degrade: dl}); err != nil {
		t.Fatalf("degraded solve returned %v, want nil", err)
	}
	for _, id := range ids {
		if n.Pos(id) != (geom.Point{X: 1, Y: 1}) {
			t.Fatalf("cell %d moved to %v; degraded solve must keep the warm start", id, n.Pos(id))
		}
	}
	evs := dl.Events()
	if len(evs) == 0 || evs[0].Stage != "qp.cg" || evs[0].Fallback != "anchor-solution" {
		t.Fatalf("degradation events = %v, want qp.cg -> anchor-solution", evs)
	}
}
