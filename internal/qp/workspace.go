package qp

import (
	"sort"

	"fbplace/internal/sparse"
)

// Workspace holds the reusable scratch of SolveSubset: epoch-stamped
// variable and net marks, the gathered incident-net list, flat pin
// buffers, matrix builders and right-hand-side vectors. With a workspace,
// a steady-state local QP solve allocates O(block) memory in a handful of
// allocations instead of O(netlist) — the realization phase threads one
// workspace per worker.
//
// A workspace must not be shared by concurrent solves. Reuse across
// netlists is allowed; the stamp arrays grow to the largest netlist seen.
// Results are bit-identical to solving with a fresh workspace (or none):
// every buffer is fully rebuilt per call, and epoch stamps replace
// clearing.
type Workspace struct {
	// epoch distinguishes the current call's stamps from stale ones, so
	// the O(NumCells)/O(NumNets) arrays never need clearing per call.
	epoch uint32
	// varIdx[c] is the variable index of cell c when varEpoch[c] == epoch.
	varIdx   []int32
	varEpoch []uint32
	// netEpoch[ni] == epoch marks net ni as already gathered this call.
	netEpoch []uint32
	// netIDs lists the nets incident to the subset, ascending.
	netIDs []int32
	// starOf[k] is the star variable of netIDs[k], or -1.
	starOf []int32
	// pins is the flat pin buffer; pinOff[k]..pinOff[k+1] delimits the
	// pins of netIDs[k] (empty for nets with fewer than two pins).
	pins   []netPin
	pinOff []int32
	// System assembly and solution buffers.
	bx, by     *sparse.Builder
	rhsX, rhsY []float64
	x, y       []float64
	// uses counts completed begin() calls; a second use of the same
	// workspace is reported as the obs counter "qp.wsReuse".
	uses int
}

// NewWorkspace returns an empty workspace. Buffers are sized lazily on
// first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin sizes the stamp arrays for a netlist of the given dimensions and
// opens a new epoch.
func (ws *Workspace) begin(numCells, numNets int) {
	if len(ws.varIdx) < numCells {
		ws.varIdx = make([]int32, numCells)
		ws.varEpoch = make([]uint32, numCells)
	}
	if len(ws.netEpoch) < numNets {
		ws.netEpoch = make([]uint32, numNets)
	}
	ws.epoch++
	if ws.epoch == 0 {
		// Epoch counter wrapped: stale stamps could collide with the new
		// epoch, so clear them once and restart at 1.
		for i := range ws.varEpoch {
			ws.varEpoch[i] = 0
		}
		for i := range ws.netEpoch {
			ws.netEpoch[i] = 0
		}
		ws.epoch = 1
	}
	ws.uses++
}

// growZeroed returns s with length n and every element zero, reusing the
// capacity when possible.
func growZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// grow returns s with length n and unspecified contents (callers overwrite
// every element), reusing the capacity when possible.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// int32s sorts []int32 ascending without the reflection overhead of
// sort.Slice.
type int32s []int32

func (s int32s) Len() int           { return len(s) }
func (s int32s) Less(i, j int) bool { return s[i] < s[j] }
func (s int32s) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

var _ sort.Interface = int32s(nil)
