package qp

import (
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
)

// messyNetlist builds a randomized netlist with multi-pin nets (both clique-
// and star-sized), pads, pin offsets, weights and a few fixed cells, so the
// equivalence tests exercise every emission path of the system assembly.
func messyNetlist(numCells int, seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New(chip, 1)
	for i := 0; i < numCells; i++ {
		c := netlist.Cell{Width: 0.5, Height: 1, Movebound: netlist.NoMovebound}
		if i%17 == 0 {
			c.Fixed = true
		}
		id := n.AddCell(c)
		n.SetPos(id, geom.Point{X: 10 * rng.Float64(), Y: 10 * rng.Float64()})
	}
	for e := 0; e < 3*numCells; e++ {
		deg := 2 + rng.Intn(9) // up to 10 pins: crosses the star threshold
		pins := make([]netlist.Pin, 0, deg)
		for k := 0; k < deg; k++ {
			if rng.Intn(10) == 0 {
				pins = append(pins, netlist.Pin{Cell: -1, Offset: geom.Point{X: 10 * rng.Float64(), Y: 10 * rng.Float64()}})
				continue
			}
			pins = append(pins, netlist.Pin{
				Cell:   netlist.CellID(rng.Intn(numCells)),
				Offset: geom.Point{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5},
			})
		}
		n.AddNet(netlist.Net{Weight: 0.5 + rng.Float64(), Pins: pins})
	}
	return n
}

// solveConfigs are the option sets the equivalence tests run under: both
// net models, with and without best-effort CG caps.
var solveConfigs = []struct {
	name string
	opt  Options
}{
	{"cliquestar", Options{}},
	{"b2b", Options{NetModel: ModelB2B}},
	{"besteffort", Options{Tol: 1e-3, MaxIter: 40, BestEffort: true}},
}

// TestSolveSubsetMatchesSolve locks in that solving the full movable set
// through SolveSubset is bit-for-bit the same as Solve — the rewrite onto
// the incident-net index must preserve the float summation order of the
// full netlist scan exactly.
func TestSolveSubsetMatchesSolve(t *testing.T) {
	for _, tc := range solveConfigs {
		t.Run(tc.name, func(t *testing.T) {
			base := messyNetlist(400, 11)
			anchors := []Anchor{
				{Cell: 1, Target: geom.Point{X: 2, Y: 3}, Weight: 0.7},
				{Cell: 5, Target: geom.Point{X: 9, Y: 1}, Weight: 1.3},
			}
			a := base.Clone()
			if err := Solve(a, anchors, tc.opt); err != nil {
				t.Fatal(err)
			}
			b := base.Clone()
			if err := SolveSubset(b, b.MovableIDs(), anchors, tc.opt); err != nil {
				t.Fatal(err)
			}
			for i := range a.X {
				if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
					t.Fatalf("cell %d: Solve (%x,%x) != SolveSubset (%x,%x)",
						i, a.X[i], a.Y[i], b.X[i], b.Y[i])
				}
			}
		})
	}
}

// TestWorkspaceReuseBitIdentical runs the same sequence of block solves
// three ways — no workspace, a fresh workspace per call, one workspace
// reused across all calls — and demands bit-identical positions: buffer
// reuse must never leak state between solves.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	subsets := func(n *netlist.Netlist) [][]netlist.CellID {
		var out [][]netlist.CellID
		for start := 0; start < 3; start++ {
			var s []netlist.CellID
			for i := start; i < n.NumCells(); i += 3 {
				if !n.Cells[i].Fixed {
					s = append(s, netlist.CellID(i))
				}
			}
			out = append(out, s)
		}
		return out
	}
	run := func(ws func() *Workspace) *netlist.Netlist {
		n := messyNetlist(300, 29)
		for round := 0; round < 3; round++ {
			for _, s := range subsets(n) {
				opt := Options{Tol: 1e-3, MaxIter: 30, BestEffort: true}
				if ws != nil {
					opt.Workspace = ws()
				}
				if err := SolveSubset(n, s, nil, opt); err != nil {
					t.Fatal(err)
				}
			}
		}
		return n
	}
	want := run(nil)
	fresh := run(func() *Workspace { return NewWorkspace() })
	shared := NewWorkspace()
	reused := run(func() *Workspace { return shared })
	for i := range want.X {
		for _, got := range []*netlist.Netlist{fresh, reused} {
			if want.X[i] != got.X[i] || want.Y[i] != got.Y[i] {
				t.Fatalf("cell %d: workspace variant diverged: (%x,%x) != (%x,%x)",
					i, want.X[i], want.Y[i], got.X[i], got.Y[i])
			}
		}
	}
	if shared.uses != 9 {
		t.Fatalf("shared workspace uses = %d, want 9", shared.uses)
	}
}

// TestSolveSubsetAllocsOBlock is the regression guard for the O(netlist)
// scan: a small-block solve over a 10k-cell netlist must allocate O(block),
// not O(netlist). Before the incident-net index this sat near 20k allocs
// per call (one pin slice per net); with the index and a warm workspace it
// is a few dozen (CG vectors and the two CSR builds).
func TestSolveSubsetAllocsOBlock(t *testing.T) {
	n := gridNetlist(100) // 10,000 cells, ~20,000 nets
	subset := blockSubset(100, 12)
	opt := Options{Tol: 1e-3, MaxIter: 60, BestEffort: true, Workspace: NewWorkspace()}
	// Warm up: builds the incidence index and sizes the workspace.
	if err := SolveSubset(n, subset, nil, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := SolveSubset(n, subset, nil, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 500 {
		t.Fatalf("SolveSubset allocates %v objects per block solve; the O(netlist) scan is back (want <= 500)", allocs)
	}
}

// TestWorkspaceAcrossNetlists checks that one workspace can serve netlists
// of different sizes back to back (the stamp arrays grow, results match
// fresh-workspace solves).
func TestWorkspaceAcrossNetlists(t *testing.T) {
	shared := NewWorkspace()
	for _, cells := range []int{50, 400, 120} {
		n := messyNetlist(cells, int64(cells))
		want := n.Clone()
		if err := SolveSubset(want, want.MovableIDs(), nil, Options{}); err != nil {
			t.Fatal(err)
		}
		if err := SolveSubset(n, n.MovableIDs(), nil, Options{Workspace: shared}); err != nil {
			t.Fatal(err)
		}
		for i := range want.X {
			if want.X[i] != n.X[i] || want.Y[i] != n.Y[i] {
				t.Fatalf("cells=%d cell %d: shared-workspace solve diverged", cells, i)
			}
		}
	}
}

// TestNetsVisitedCounter checks the obs wiring: a block solve reports the
// number of incident nets it walked, far below the netlist total.
func TestNetsVisitedCounter(t *testing.T) {
	n := gridNetlist(40)
	subset := blockSubset(40, 4)
	rec := obs.New(nil)
	if err := SolveSubset(n, subset, nil, Options{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	visited := rec.Counters()["qp.netsVisited"]
	if visited <= 0 || visited >= float64(n.NumNets()) {
		t.Fatalf("qp.netsVisited = %v, want in (0, %d)", visited, n.NumNets())
	}
	// 4x4 block with 2-pin neighbor nets: at most 4 incident nets per cell.
	if visited > 4*float64(len(subset)) {
		t.Fatalf("qp.netsVisited = %v for a %d-cell block, want O(block)", visited, len(subset))
	}
}
