// Package cluster implements BestChoice clustering [17], used by both
// tools in the paper's experiments (§V, cluster ratio 5 on the industrial
// instances, ratio 2 on the ISPD benchmarks). Cells are merged bottom-up
// by a connectivity/size score until the number of movable objects drops
// to (movable cells)/ratio; the placer then runs on the clustered netlist
// and the solution is projected back to the flat cells.
package cluster

import (
	"container/heap"
	"sort"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

// Clustering maps a flat netlist to its clustered counterpart.
type Clustering struct {
	// Clustered is the coarsened netlist.
	Clustered *netlist.Netlist
	// Flat is the original netlist the clustering was built from.
	Flat *netlist.Netlist
	// Parent maps each flat cell to its clustered cell.
	Parent []netlist.CellID
	// Members lists the flat cells of each clustered cell.
	Members [][]netlist.CellID
}

// Options controls BestChoice.
type Options struct {
	// Ratio is the target ratio |flat movable| / |clustered movable|.
	// Values <= 1 disable clustering. The paper uses 5 (industrial) and
	// 2 (ISPD).
	Ratio float64
	// MaxClusterArea bounds cluster growth; 0 means 32x the average cell
	// area.
	MaxClusterArea float64
}

// scorePair is a candidate merge in the priority queue.
type scorePair struct {
	a, b  int32
	score float64
	stamp int64 // lazy invalidation: stamps of both endpoints at push time
}

type pairHeap []scorePair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].score > h[j].score } // max-heap
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(scorePair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BestChoice clusters the netlist. Fixed cells are never clustered; cells
// of different movebounds are never merged (a cluster must have a single
// movebound to stay placeable).
func BestChoice(n *netlist.Netlist, opt Options) *Clustering {
	numCells := n.NumCells()
	// Union-find state over flat cells; every flat cell starts as its own
	// cluster root.
	parent := make([]int32, numCells)
	area := make([]float64, numCells)
	movable := 0
	totalArea := 0.0
	for i := range parent {
		parent[i] = int32(i)
		area[i] = n.Cells[i].Size()
		if !n.Cells[i].Fixed {
			movable++
			totalArea += area[i]
		}
	}
	var find func(int32) int32
	find = func(v int32) int32 {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}

	target := movable
	if opt.Ratio > 1 {
		target = int(float64(movable) / opt.Ratio)
		if target < 1 {
			target = 1
		}
	}
	maxArea := opt.MaxClusterArea
	if maxArea == 0 && movable > 0 {
		maxArea = 32 * totalArea / float64(movable)
	}

	// Adjacency with clique-model weights: w(net)/(p-1) per pair is too
	// dense for big nets; BestChoice uses w/(p-1) summed over shared
	// nets, and we cap the pairs per net at a window of neighbors.
	type edge struct {
		to int32
		w  float64
	}
	adj := make(map[int64]float64) // packed pair -> weight
	pack := func(a, b int32) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)<<32 | int64(b)
	}
	for ni := range n.Nets {
		cells := n.CellsOnNet(netlist.NetID(ni))
		var mov []netlist.CellID
		for _, c := range cells {
			if !n.Cells[c].Fixed {
				mov = append(mov, c)
			}
		}
		p := len(mov)
		if p < 2 || p > 16 { // huge nets carry little clustering signal
			continue
		}
		w := n.Nets[ni].Weight / float64(p-1)
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				adj[pack(int32(mov[i]), int32(mov[j]))] += w
			}
		}
	}
	neighbors := make([][]edge, numCells)
	// Deterministic order of adjacency expansion.
	keys := make([]int64, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		a, b := int32(k>>32), int32(k&0xffffffff)
		w := adj[k]
		neighbors[a] = append(neighbors[a], edge{to: b, w: w})
		neighbors[b] = append(neighbors[b], edge{to: a, w: w})
	}

	stamp := make([]int64, numCells)
	score := func(a, b int32) float64 {
		// BestChoice score: connectivity over summed area.
		w := adj[pack(a, b)]
		return w / (area[a] + area[b])
	}
	canMerge := func(a, b int32) bool {
		if n.Cells[a].Fixed || n.Cells[b].Fixed {
			return false
		}
		if n.Cells[a].Movebound != n.Cells[b].Movebound {
			return false
		}
		return area[a]+area[b] <= maxArea
	}
	h := &pairHeap{}
	pushBest := func(a int32) {
		// Push a's best current neighbor.
		best, bestS := int32(-1), 0.0
		for _, e := range neighbors[a] {
			b := find(e.to)
			if b == a || !canMerge(a, b) {
				continue
			}
			if s := score(a, b); best < 0 || s > bestS {
				best, bestS = b, s
			}
		}
		if best >= 0 {
			heap.Push(h, scorePair{a: a, b: best, score: bestS, stamp: stamp[a] + stamp[best]})
		}
	}
	for i := int32(0); i < int32(numCells); i++ {
		if !n.Cells[i].Fixed {
			pushBest(i)
		}
	}
	clusters := movable
	for clusters > target && h.Len() > 0 {
		top := heap.Pop(h).(scorePair)
		a, b := find(top.a), find(top.b)
		if a == b || top.stamp != stamp[a]+stamp[b] || !canMerge(a, b) {
			if a != b {
				pushBest(a)
			}
			continue
		}
		// Merge b into a (keep the smaller id as root for determinism).
		if b < a {
			a, b = b, a
		}
		parent[b] = a
		stamp[a]++
		area[a] += area[b]
		// Merge adjacency: fold b's edges into a.
		for _, e := range neighbors[b] {
			t := find(e.to)
			if t == a {
				continue
			}
			k := pack(a, t)
			adj[k] += e.w
			neighbors[a] = append(neighbors[a], edge{to: t, w: e.w})
		}
		clusters--
		pushBest(a)
	}

	return buildClustered(n, find)
}

// buildClustered materializes the clustered netlist from the union-find.
func buildClustered(n *netlist.Netlist, find func(int32) int32) *Clustering {
	numCells := n.NumCells()
	rootIdx := map[int32]netlist.CellID{}
	cl := &Clustering{
		Flat:   n,
		Parent: make([]netlist.CellID, numCells),
	}
	coarse := netlist.New(n.Area, n.RowHeight)
	// Deterministic: iterate flat cells in order; allocate cluster ids by
	// first appearance of the root.
	for i := int32(0); i < int32(numCells); i++ {
		root := find(i)
		id, ok := rootIdx[root]
		if !ok {
			c := n.Cells[root]
			id = coarse.AddCell(netlist.Cell{
				Name:      c.Name,
				Width:     0, // set below from accumulated area
				Height:    n.RowHeight,
				Fixed:     c.Fixed,
				Movebound: c.Movebound,
			})
			rootIdx[root] = id
			cl.Members = append(cl.Members, nil)
		}
		cl.Parent[i] = id
		cl.Members[id] = append(cl.Members[id], netlist.CellID(i))
	}
	// Cluster geometry: area-preserving, height = row height (or the
	// member height for singleton/fixed clusters), centered at the
	// area-weighted centroid of the members.
	for id, members := range cl.Members {
		cid := netlist.CellID(id)
		var a, sx, sy float64
		for _, m := range members {
			ma := n.Cells[m].Size()
			a += ma
			sx += ma * n.X[m]
			sy += ma * n.Y[m]
		}
		if len(members) == 1 {
			c := n.Cells[members[0]]
			coarse.Cells[cid].Width = c.Width
			coarse.Cells[cid].Height = c.Height
		} else {
			coarse.Cells[cid].Height = n.RowHeight
			coarse.Cells[cid].Width = a / n.RowHeight
		}
		if a > 0 {
			coarse.SetPos(cid, geom.Point{X: sx / a, Y: sy / a})
		}
	}
	// Nets: project pins to clusters; drop nets internal to one cluster.
	for ni := range n.Nets {
		net := &n.Nets[ni]
		var pins []netlist.Pin
		seen := map[netlist.CellID]bool{}
		distinct := map[netlist.CellID]bool{}
		pads := 0
		for _, p := range net.Pins {
			if p.IsPad() {
				pins = append(pins, p)
				pads++
				continue
			}
			cid := cl.Parent[p.Cell]
			distinct[cid] = true
			if !seen[cid] {
				seen[cid] = true
				pins = append(pins, netlist.Pin{Cell: cid})
			}
		}
		if len(distinct)+pads < 2 {
			continue
		}
		coarse.AddNet(netlist.Net{Name: net.Name, Weight: net.Weight, Pins: pins})
	}
	cl.Clustered = coarse
	return cl
}

// Project writes the clustered placement back to the flat netlist: each
// flat cell takes its cluster's position (legalization spreads them out).
func (cl *Clustering) Project() {
	for i := range cl.Flat.Cells {
		if cl.Flat.Cells[i].Fixed {
			continue
		}
		cid := cl.Parent[i]
		cl.Flat.SetPos(netlist.CellID(i), cl.Clustered.Pos(cid))
	}
}
