package cluster

import (
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 100, Yhi: 100}

// pairNetlist builds k disjoint tightly-connected cell pairs plus one
// loose cell.
func pairNetlist(k int) *netlist.Netlist {
	n := netlist.New(chip, 1)
	for i := 0; i < k; i++ {
		a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
		b := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
		// Three parallel nets: a strong bond.
		for j := 0; j < 3; j++ {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
		}
	}
	n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	return n
}

func TestBestChoiceMergesBondedPairs(t *testing.T) {
	n := pairNetlist(10) // 21 movable cells
	cl := BestChoice(n, Options{Ratio: 2})
	if got := cl.Clustered.NumCells(); got > 11 {
		t.Fatalf("clustered to %d cells, want <= 11", got)
	}
	// Every strong pair must have been merged.
	for i := 0; i < 10; i++ {
		a, b := netlist.CellID(2*i), netlist.CellID(2*i+1)
		if cl.Parent[a] != cl.Parent[b] {
			t.Fatalf("bonded pair %d not merged", i)
		}
	}
}

func TestBestChoiceRatioOneIsIdentity(t *testing.T) {
	n := pairNetlist(3)
	cl := BestChoice(n, Options{Ratio: 1})
	if cl.Clustered.NumCells() != n.NumCells() {
		t.Fatalf("ratio 1 changed cell count: %d -> %d", n.NumCells(), cl.Clustered.NumCells())
	}
	if cl.Clustered.NumNets() != n.NumNets() {
		t.Fatalf("ratio 1 changed net count")
	}
}

func TestBestChoicePreservesArea(t *testing.T) {
	n := pairNetlist(8)
	cl := BestChoice(n, Options{Ratio: 4})
	if math.Abs(cl.Clustered.TotalMovableArea()-n.TotalMovableArea()) > 1e-9 {
		t.Fatalf("area changed: %g -> %g", n.TotalMovableArea(), cl.Clustered.TotalMovableArea())
	}
}

func TestBestChoiceNeverMergesAcrossMovebounds(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 0})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 1})
	c := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 0})
	for j := 0; j < 5; j++ {
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: c}}})
	}
	cl := BestChoice(n, Options{Ratio: 3})
	if cl.Parent[a] == cl.Parent[b] {
		t.Fatal("cells of different movebounds merged")
	}
	if cl.Parent[a] != cl.Parent[c] {
		t.Fatal("same-movebound bonded cells not merged")
	}
	if cl.Clustered.Cells[cl.Parent[a]].Movebound != 0 {
		t.Fatal("cluster lost its movebound")
	}
}

func TestBestChoiceNeverMergesFixed(t *testing.T) {
	n := netlist.New(chip, 1)
	f := n.AddCell(netlist.Cell{Width: 5, Height: 5, Fixed: true})
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1})
	for j := 0; j < 5; j++ {
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: f}, {Cell: a}}})
	}
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
	cl := BestChoice(n, Options{Ratio: 3})
	if cl.Parent[f] == cl.Parent[a] {
		t.Fatal("fixed cell merged")
	}
	if !cl.Clustered.Cells[cl.Parent[f]].Fixed {
		t.Fatal("fixed cell lost Fixed flag")
	}
}

func TestClusteredNetsDropInternal(t *testing.T) {
	n := pairNetlist(2)
	// Add a cross net between the two pairs. Ratio 1.5 targets 3 clusters
	// (the two pairs plus the loose cell), so the cross net survives.
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: 0}, {Cell: 2}}})
	cl := BestChoice(n, Options{Ratio: 1.5})
	if cl.Parent[0] != cl.Parent[1] || cl.Parent[2] != cl.Parent[3] {
		t.Skip("pairs not merged; clustering heuristic changed")
	}
	// The 6 intra-pair nets vanish, the cross net survives.
	for ni := range cl.Clustered.Nets {
		if len(cl.Clustered.Nets[ni].Pins) < 2 {
			t.Fatalf("net %d has %d pins", ni, len(cl.Clustered.Nets[ni].Pins))
		}
	}
	if cl.Clustered.NumNets() != 1 {
		t.Fatalf("clustered nets = %d, want 1", cl.Clustered.NumNets())
	}
}

func TestProjectPlacesMembersAtCluster(t *testing.T) {
	n := pairNetlist(4)
	cl := BestChoice(n, Options{Ratio: 2})
	for i := range cl.Clustered.Cells {
		if !cl.Clustered.Cells[i].Fixed {
			cl.Clustered.SetPos(netlist.CellID(i), geom.Point{X: float64(i), Y: 42})
		}
	}
	cl.Project()
	for i := range n.Cells {
		want := cl.Clustered.Pos(cl.Parent[i])
		if n.Pos(netlist.CellID(i)) != want {
			t.Fatalf("flat cell %d at %v, cluster at %v", i, n.Pos(netlist.CellID(i)), want)
		}
	}
}

func TestBestChoiceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := netlist.New(chip, 1)
	for i := 0; i < 120; i++ {
		n.AddCell(netlist.Cell{Width: 0.5 + rng.Float64(), Height: 1})
	}
	for e := 0; e < 300; e++ {
		i, j := rng.Intn(120), rng.Intn(120)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	a := BestChoice(n.Clone(), Options{Ratio: 4})
	b := BestChoice(n.Clone(), Options{Ratio: 4})
	if a.Clustered.NumCells() != b.Clustered.NumCells() {
		t.Fatalf("cluster counts differ: %d vs %d", a.Clustered.NumCells(), b.Clustered.NumCells())
	}
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] {
			t.Fatalf("parent of cell %d differs", i)
		}
	}
}

func TestBestChoiceReachesTargetRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := netlist.New(chip, 1)
	for i := 0; i < 200; i++ {
		n.AddCell(netlist.Cell{Width: 1, Height: 1})
	}
	for e := 0; e < 600; e++ {
		i, j := rng.Intn(200), rng.Intn(200)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	cl := BestChoice(n, Options{Ratio: 5})
	got := cl.Clustered.NumCells()
	if got > 60 { // target 40, allow stall slack
		t.Fatalf("clustered to %d cells, want near 40", got)
	}
}
