// Package detail implements detailed placement: local, legality-preserving
// HPWL optimization after legalization. Two moves are used, both standard
// in production flows:
//
//   - window reordering: consecutive cells of one row are permuted and
//     re-packed within their span, keeping the best permutation;
//   - global swaps: pairs of equal-width cells exchange positions when
//     that shortens the involved nets.
//
// Movebounds are respected: a move is rejected if any touched cell would
// leave its movebound area or enter a foreign exclusive area. The paper
// delegates detailed placement to the surrounding BonnPlace flow; this
// package provides the equivalent so the repository is usable end to end.
package detail

import (
	"math"
	"sort"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// Options tunes the optimizer.
type Options struct {
	// Passes is the number of full sweeps. Default 2.
	Passes int
	// WindowSize is the reorder window (2..4 cells). Default 3.
	WindowSize int
}

// Result reports the improvement.
type Result struct {
	InitialHPWL, FinalHPWL float64
	// Reorders and Swaps count the accepted moves.
	Reorders, Swaps int
}

// optimizer carries indexed state for incremental HPWL evaluation.
type optimizer struct {
	n       *netlist.Netlist
	mbs     []region.Movebound
	netsOf  [][]int32 // cell -> net indices
	rows    [][]netlist.CellID
	rowOf   func(y float64) int
	numRows int
}

// Optimize runs detailed placement on a legalized netlist in place.
func Optimize(n *netlist.Netlist, mbs []region.Movebound, opt Options) (Result, error) {
	if opt.Passes == 0 {
		opt.Passes = 2
	}
	if opt.WindowSize < 2 {
		opt.WindowSize = 3
	}
	if opt.WindowSize > 4 {
		opt.WindowSize = 4
	}
	res := Result{InitialHPWL: n.HPWL()}
	o := &optimizer{n: n, mbs: mbs}
	o.buildNetIndex()
	for pass := 0; pass < opt.Passes; pass++ {
		o.buildRows()
		r := o.reorderPass(opt.WindowSize)
		s := o.swapPass()
		res.Reorders += r
		res.Swaps += s
		if r+s == 0 {
			break
		}
	}
	res.FinalHPWL = n.HPWL()
	return res, nil
}

func (o *optimizer) buildNetIndex() {
	n := o.n
	o.netsOf = make([][]int32, n.NumCells())
	for ni := range n.Nets {
		seen := map[netlist.CellID]bool{}
		for _, p := range n.Nets[ni].Pins {
			if p.IsPad() || seen[p.Cell] {
				continue
			}
			seen[p.Cell] = true
			o.netsOf[p.Cell] = append(o.netsOf[p.Cell], int32(ni))
		}
	}
}

func (o *optimizer) buildRows() {
	n := o.n
	rh := n.RowHeight
	o.numRows = int((n.Area.Height() + 1e-9) / rh)
	o.rowOf = func(y float64) int {
		r := int((y - rh/2 - n.Area.Ylo) / rh)
		if r < 0 {
			r = 0
		}
		if r >= o.numRows {
			r = o.numRows - 1
		}
		return r
	}
	o.rows = make([][]netlist.CellID, o.numRows)
	for i := range n.Cells {
		if n.Cells[i].Fixed {
			continue
		}
		r := o.rowOf(n.Y[i])
		o.rows[r] = append(o.rows[r], netlist.CellID(i))
	}
	for r := range o.rows {
		row := o.rows[r]
		sort.Slice(row, func(a, b int) bool {
			//fbpvet:floatok exact tie-break on stored coordinates keeps the sort total
			if n.X[row[a]] != n.X[row[b]] {
				return n.X[row[a]] < n.X[row[b]]
			}
			return row[a] < row[b]
		})
	}
}

// hpwlOf returns the total HPWL of the given nets.
func (o *optimizer) hpwlOf(nets map[int32]bool) float64 {
	total := 0.0
	for ni := range nets {
		total += o.n.NetHPWL(netlist.NetID(ni))
	}
	return total
}

// netsTouching collects the nets of the given cells.
func (o *optimizer) netsTouching(cells []netlist.CellID) map[int32]bool {
	out := map[int32]bool{}
	for _, c := range cells {
		for _, ni := range o.netsOf[c] {
			out[ni] = true
		}
	}
	return out
}

// legalAt reports whether cell id placed at p respects the movebounds.
func (o *optimizer) legalAt(id netlist.CellID, p geom.Point) bool {
	c := &o.n.Cells[id]
	r := geom.Rect{
		Xlo: p.X - c.Width/2, Ylo: p.Y - c.Height/2,
		Xhi: p.X + c.Width/2, Yhi: p.Y + c.Height/2,
	}
	// Movebound indices beyond the provided list are treated as
	// unbounded (callers may optimize without movebound context).
	if c.Movebound != netlist.NoMovebound && c.Movebound < len(o.mbs) {
		if !o.mbs[c.Movebound].Area.ContainsRect(r.Expand(-1e-9)) {
			return false
		}
	}
	for m := range o.mbs {
		if o.mbs[m].Kind == region.Exclusive && m != c.Movebound && o.mbs[m].Area.OverlapsRect(r.Expand(-1e-9)) {
			return false
		}
	}
	return true
}

// reorderPass permutes sliding windows of consecutive same-row cells.
func (o *optimizer) reorderPass(k int) int {
	n := o.n
	accepted := 0
	for _, row := range o.rows {
		for start := 0; start+k <= len(row); start++ {
			win := row[start : start+k]
			// Span: from the left edge of the first cell to the right
			// edge of the last (gaps inside the span are compacted).
			left := n.X[win[0]] - n.Cells[win[0]].Width/2
			right := n.X[win[k-1]] + n.Cells[win[k-1]].Width/2
			total := 0.0
			for _, c := range win {
				total += n.Cells[c].Width
			}
			if total > right-left+1e-9 {
				continue
			}
			nets := o.netsTouching(win)
			baseline := o.hpwlOf(nets)
			origX := make([]float64, k)
			for i, c := range win {
				origX[i] = n.X[c]
			}
			bestPerm := -1
			bestHPWL := baseline
			var bestX []float64
			perms := permutations(k)
			for pi, perm := range perms {
				// Pack the permuted cells left-justified in the span.
				x := left
				ok := true
				xs := make([]float64, k)
				for _, idx := range perm {
					c := win[idx]
					xs[idx] = x + n.Cells[c].Width/2
					if !o.legalAt(c, geom.Point{X: xs[idx], Y: n.Y[c]}) {
						ok = false
						break
					}
					x += n.Cells[c].Width
				}
				if !ok {
					continue
				}
				for i, c := range win {
					n.X[c] = xs[i]
				}
				if h := o.hpwlOf(nets); h < bestHPWL-1e-9 {
					bestHPWL = h
					bestPerm = pi
					bestX = xs
				}
				for i, c := range win {
					n.X[c] = origX[i]
				}
			}
			if bestPerm >= 0 {
				for i, c := range win {
					n.X[c] = bestX[i]
				}
				// Keep the row sorted by x for subsequent windows.
				sort.Slice(win, func(a, b int) bool { return n.X[win[a]] < n.X[win[b]] })
				accepted++
			}
		}
	}
	return accepted
}

// swapPass exchanges equal-width cell pairs across the chip when the
// involved nets shrink. Candidate partners are taken from the same and
// adjacent rows within a horizontal distance budget.
func (o *optimizer) swapPass() int {
	n := o.n
	accepted := 0
	for r := range o.rows {
		for _, a := range o.rows[r] {
			best := netlist.CellID(-1)
			bestGain := 1e-9
			var bestPosA, bestPosB geom.Point
			for dr := -1; dr <= 1; dr++ {
				rr := r + dr
				if rr < 0 || rr >= o.numRows {
					continue
				}
				for _, b := range o.rows[rr] {
					if b == a || math.Abs(n.Cells[a].Width-n.Cells[b].Width) > 1e-9 {
						continue
					}
					if math.Abs(n.X[a]-n.X[b]) > n.Area.Width()/8 {
						continue
					}
					pa, pb := n.Pos(a), n.Pos(b)
					if !o.legalAt(a, pb) || !o.legalAt(b, pa) {
						continue
					}
					nets := o.netsTouching([]netlist.CellID{a, b})
					before := o.hpwlOf(nets)
					n.SetPos(a, pb)
					n.SetPos(b, pa)
					after := o.hpwlOf(nets)
					n.SetPos(a, pa)
					n.SetPos(b, pb)
					if gain := before - after; gain > bestGain {
						best, bestGain = b, gain
						bestPosA, bestPosB = pb, pa
					}
				}
			}
			if best >= 0 {
				n.SetPos(a, bestPosA)
				n.SetPos(best, bestPosB)
				accepted++
			}
		}
		// Rebuild this row's order after swaps.
		row := o.rows[r]
		sort.Slice(row, func(x, y int) bool { return n.X[row[x]] < n.X[row[y]] })
	}
	return accepted
}

// permutations returns all permutations of 0..k-1 (k <= 4).
func permutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur []int, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(cur, rest[i])
			var remain []int
			remain = append(remain, rest[:i]...)
			remain = append(remain, rest[i+1:]...)
			rec(next, remain)
		}
	}
	rec(nil, base)
	return out
}
