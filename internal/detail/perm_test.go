package detail

import "testing"

func TestPermutations(t *testing.T) {
	for k, want := range map[int]int{2: 2, 3: 6, 4: 24} {
		if got := len(permutations(k)); got != want {
			t.Fatalf("permutations(%d) = %d, want %d", k, got, want)
		}
	}
	seen := map[string]bool{}
	for _, p := range permutations(3) {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}
