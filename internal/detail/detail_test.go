package detail_test

import (
	"testing"

	"fbplace/internal/detail"
	"fbplace/internal/gen"
	"fbplace/internal/geom"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/placer"
	"fbplace/internal/region"
)

func TestOptimizeReordersObviousInversion(t *testing.T) {
	// Two equal-width cells placed in inverted order relative to their
	// pads: detailed placement must swap them.
	n := netlist.New(geom.Rect{Xhi: 20, Yhi: 4}, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 1, Movebound: netlist.NoMovebound})
	b := n.AddCell(netlist.Cell{Width: 2, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(a, geom.Point{X: 11, Y: 0.5})
	n.SetPos(b, geom.Point{X: 9, Y: 0.5})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: -1, Offset: geom.Point{X: 0, Y: 0.5}}}})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: b}, {Cell: -1, Offset: geom.Point{X: 20, Y: 0.5}}}})
	res, err := detail.Optimize(n, nil, detail.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHPWL >= res.InitialHPWL {
		t.Fatalf("no improvement: %g -> %g", res.InitialHPWL, res.FinalHPWL)
	}
	if n.X[a] >= n.X[b] {
		t.Fatalf("inversion not fixed: a at %g, b at %g", n.X[a], n.X[b])
	}
	if got := legalize.VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}

func TestOptimizeNeverWorsens(t *testing.T) {
	inst, err := gen.Chip(gen.ChipSpec{Name: "d", NumCells: 1500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placer.Place(inst.N, placer.Config{}); err != nil {
		t.Fatal(err)
	}
	before := inst.N.HPWL()
	res, err := detail.Optimize(inst.N, nil, detail.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalHPWL > before+1e-6 {
		t.Fatalf("HPWL worsened: %g -> %g", before, res.FinalHPWL)
	}
	if got := legalize.VerifyNoOverlaps(inst.N); got != 0 {
		t.Fatalf("overlaps after detail = %d", got)
	}
	if res.Reorders+res.Swaps == 0 {
		t.Fatal("no moves accepted on a realistic design")
	}
}

func TestOptimizeRespectsMovebounds(t *testing.T) {
	inst, err := gen.Chip(gen.ChipSpec{
		Name: "dm", NumCells: 1500, Seed: 32,
		Movebounds: []gen.MoveboundSpec{
			{Kind: region.Exclusive, CellFraction: 0.1, Density: 0.7, NestedIn: -1},
			{Kind: region.Inclusive, CellFraction: 0.15, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placer.Place(inst.N, placer.Config{Movebounds: inst.Movebounds}); err != nil {
		t.Fatal(err)
	}
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := detail.Optimize(inst.N, norm, detail.Options{}); err != nil {
		t.Fatal(err)
	}
	if viol := region.CheckLegal(inst.N, norm); viol != 0 {
		t.Fatalf("detail placement introduced %d movebound violations", viol)
	}
	if got := legalize.VerifyNoOverlaps(inst.N); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}
