package fbp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/flow"
	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/qp"
	"fbplace/internal/transport"
)

// Injection points of the realization phase: unitFault fails (or panics)
// a wave unit, finalFault a final-pass window. Both exercise the worker
// panic-recovery boundary and the deterministic error aggregation.
var (
	unitFault = faultsim.Register("fbp.realize.unit",
		"a realization wave unit fails (or panics) at entry")
	finalFault = faultsim.Register("fbp.final.window",
		"a final-pass window transportation fails (or panics) at entry")
)

// UnitError attributes a realization failure to the window it occurred in
// and the phase that was running. Worker panics (injected or organic) are
// recovered at the goroutine boundary and converted into a UnitError
// carrying the panic value and stack, so a single bad unit fails the
// partitioning with a structured error instead of crashing the process.
type UnitError struct {
	// Window is the grid window index of the failing unit.
	Window int
	// Phase is "realize" (wave unit) or "final" (final-pass window).
	Phase string
	// Err is the underlying failure; for recovered panics it wraps the
	// panic value.
	Err error
	// Stack is the goroutine stack at recovery time (nil unless the unit
	// panicked).
	Stack []byte
}

func (e *UnitError) Error() string {
	return fmt.Sprintf("fbp: %s of window %d: %v", e.Phase, e.Window, e.Err)
}

func (e *UnitError) Unwrap() error { return e.Err }

// wrapUnitErr attaches window/phase identity to a unit failure. Context
// errors and already-attributed errors pass through unchanged, so
// cancellation stays recognizable with errors.Is.
func wrapUnitErr(w int, phase string, err error) error {
	if err == nil {
		return nil
	}
	var ue *UnitError
	if errors.As(err, &ue) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &UnitError{Window: w, Phase: phase, Err: err}
}

// RegionRef identifies a window-region: window index and position within
// the window's region list.
type RegionRef struct {
	Window int32
	Index  int32
}

// Result of a partitioning run.
type Result struct {
	// CellRegion maps every cell to its assigned window-region;
	// {-1, -1} for fixed cells.
	CellRegion []RegionRef
	// Stats carries model sizes and phase runtimes.
	Stats Stats
	// RoundingOverflow is the total cell area exceeding region capacities
	// after majority rounding of split cells (diagnostics; absorbed by
	// later levels or legalization).
	RoundingOverflow float64
}

// realizer carries the mutable state of the realization phase.
type realizer struct {
	m   *Model
	n   *netlist.Netlist
	cfg Config

	// Per movable cell: current window, position, parked-at-transit flag.
	curWin []int32
	parked []bool
	// assignment after the most recent transportation covering the cell.
	cellRegion []RegionRef
	// cellsIn[w] lists movable cells currently in window w.
	cellsIn [][]int32
	// unrealizedOut[(class*W+w)*4+dir] = remaining outgoing external flow.
	unrealizedOut []float64
	// outgoing[class*W+w] lists indices into m.Externals with the given
	// class and From == w, flow > 0. The topological order runs over
	// these (class, window) units: each class's external subgraph is
	// acyclic (an optimal MCF cannot afford the positive-cost transit
	// edges a directed cycle would need), and different classes are
	// disjoint subgraphs, so the union is acyclic too. Collapsing to
	// plain windows would create artificial cycles whenever two classes
	// ship in opposite directions between the same window pair.
	outgoing [][]int32
	incoming [][]int32

	// pairMode is set when the pair pass is active for this run (the flag
	// is on and the grid is at least Config.PairPassMinWindows windows):
	// wave units realize per neighbor pair instead of per 3x3 block.
	pairMode bool

	waves int

	// scratch is the free list of per-worker reusable buffers. Entries
	// start as nil and are materialized on first acquire, so a run never
	// pays for workers it does not use.
	scratch chan *workerScratch
	// snapX, snapY are the wave-start position snapshots, reused across
	// waves (waves run strictly one after another).
	snapX, snapY []float64

	// Observability: rec records wave spans and counters; qpStats
	// aggregates the local QP effort (atomically, workers share it);
	// busyNS accumulates per-unit busy time for worker occupancy.
	rec     *obs.Recorder
	qpStats qp.SolveStats
	busyNS  int64
}

// workerScratch bundles the reusable buffers a realization worker needs
// for one unit: the local QP workspace plus the sink, transportation and
// membership buffers of transportBlock. A scratch is borrowed from the
// realizer's free list for the duration of one unit, so steady-state
// realization allocates O(block) per unit instead of rebuilding every
// buffer. Reuse never changes results: all buffers are fully rewritten
// per unit.
type workerScratch struct {
	qp     *qp.Workspace
	subset []netlist.CellID
	sinks  []sinkInfo
	caps   []float64
	supply []float64
	arcs   [][]transport.Arc
	// present is an epoch-stamped per-cell membership mark replacing the
	// per-call map that filtered window cell lists.
	present      []uint32
	presentEpoch uint32
	// cellBuf is the reusable cell-collection buffer of the realization
	// steps. It is owned by the scratch, never by a window list, so the
	// apply phase of transportBlock may rewrite the window lists while
	// iterating it.
	cellBuf []int32
	// lastBasis is the spanning-tree basis of this worker's most recent
	// network-simplex transportation, kept for opportunistic cross-unit
	// warm starts (Config.ParallelWindows only — which unit a worker sees
	// next depends on scheduling). SolveNS revalidates the basis against
	// the instance signature, so a stale basis just degrades to a cold
	// start.
	lastBasis *flow.Basis
}

// getScratch borrows a worker scratch from the free list, materializing it
// on first use. The free list holds exactly as many slots as the worker
// bound of the run, so the receive never blocks.
func (r *realizer) getScratch() *workerScratch {
	sc := <-r.scratch
	if sc == nil {
		sc = &workerScratch{qp: qp.NewWorkspace()}
	}
	return sc
}

func (r *realizer) putScratch(sc *workerScratch) { r.scratch <- sc }

// markPresent stamps the given cells in the scratch's epoch-stamped
// membership array (sized to the netlist on first use) and returns the
// epoch to test against.
func (sc *workerScratch) markPresent(numCells int, cells []int32) uint32 {
	if len(sc.present) < numCells {
		sc.present = make([]uint32, numCells)
	}
	sc.presentEpoch++
	if sc.presentEpoch == 0 {
		for i := range sc.present {
			sc.present[i] = 0
		}
		sc.presentEpoch = 1
	}
	for _, ci := range cells {
		sc.present[ci] = sc.presentEpoch
	}
	return sc.presentEpoch
}

// unit is a realization step: one window together with the classes whose
// outgoing external edges are realized in this step. Multiple classes of
// the same window at the same topological level are merged into one step —
// the block transportation repartitions all block cells anyway, so
// realizing them together saves a full local QP + transport per class.
type unit struct {
	window  int
	classes []int
}

// Partition runs the full flow-based partitioning: model build, MCF solve
// and realization. It assigns every movable cell to a window-region,
// updates cell positions to lie inside their regions, and returns the
// assignment. The netlist's positions are used as the starting state (the
// "any given placement" of the paper).
//
// Feasibility invariant (sketch; the window-at-a-time variant of the
// paper's per-edge induction [22]): at every stage and for every window w
// and movebound class c,
//
//	area_c(w) <= absorbed_c(w) + unrealizedOut_c(w),
//
// where absorbed_c(w) is the class's share of w's region capacities in
// the MCF solution and unrealizedOut_c(w) the flow on c's not yet
// realized outgoing external edges. It holds initially by flow
// conservation (supply + in = absorbed + out at each cell-group/transit
// subgraph), and each realization step preserves it: the step's
// transportation admits exactly the region capacities plus the remaining
// transit capacities as sinks, and the incoming flows being realized fit
// because f_e <= unrealizedIn_c(w) and
// area_c(w) + unrealizedIn_c(w) <= absorbed_c(w) + unrealizedOut_c(w)
// (conservation again). Processing units in topological order of the
// flow-carrying external edges guarantees all of a unit's incoming edges
// are realized before its outgoing ones, so after the last unit
// unrealizedOut == 0 everywhere and the final per-window transportation
// (cells -> regions) is feasible. Majority rounding perturbs the
// invariant by at most a cell per sink; the capacity-aware rounding, the
// relaxation ladder and repairOverflow bound and then remove that drift.
func Partition(n *netlist.Netlist, wr *grid.WindowRegions, cfg Config) (*Result, error) {
	bsp := cfg.Obs.StartSpan("fbp.build")
	assign := wr.Grid.AssignCells(n)
	model := BuildModel(n, wr, assign)
	model.Obs = cfg.Obs
	model.Degrade = cfg.Degrade
	model.G.Ctx = cfg.Ctx
	bsp.End()
	if err := model.Solve(); err != nil {
		return nil, err
	}
	if cfg.Check != nil {
		// Certify the MCF solution before realizing it: a wrong flow would
		// otherwise be baked into cell movements before anything notices.
		if err := cfg.Check.Flow(model.G); err != nil {
			return nil, err
		}
	}
	return Realize(model, cfg)
}

// Realize turns a solved model into a cell-to-region partitioning.
func Realize(m *Model, cfg Config) (*Result, error) {
	rec := cfg.Obs
	if rec == nil {
		rec = m.Obs
	}
	rsp := rec.StartSpan("fbp.realize")
	defer rsp.End()
	start := time.Now() //fbpvet:allow timing feeds Stats.RealizeTime only, never positions
	n := m.N
	g := m.WR.Grid
	W := g.NumWindows()
	r := &realizer{
		m:             m,
		n:             n,
		cfg:           cfg,
		rec:           rec,
		curWin:        make([]int32, n.NumCells()),
		parked:        make([]bool, n.NumCells()),
		cellRegion:    make([]RegionRef, n.NumCells()),
		cellsIn:       make([][]int32, W),
		unrealizedOut: make([]float64, m.Classes*W*numDirs),
		outgoing:      make([][]int32, m.Classes*W),
		incoming:      make([][]int32, m.Classes*W),
	}
	pairMin := cfg.PairPassMinWindows
	if pairMin <= 0 {
		pairMin = 256
	}
	r.pairMode = cfg.PairPass && W >= pairMin
	maxWorkers := cfg.Workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	r.scratch = make(chan *workerScratch, maxWorkers)
	for i := 0; i < maxWorkers; i++ {
		r.scratch <- nil
	}
	for i := range n.Cells {
		r.cellRegion[i] = RegionRef{-1, -1}
		if n.Cells[i].Fixed {
			r.curWin[i] = -1
			continue
		}
		w := int32(g.LocateIndex(n.Pos(netlist.CellID(i))))
		r.curWin[i] = w
		r.cellsIn[w] = append(r.cellsIn[w], int32(i))
	}
	r.rebuildEdgeIndex()

	levels, err := r.topoLevels()
	if err != nil {
		return nil, err
	}
	for _, level := range levels {
		for _, wave := range r.waveSplit(level) {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return nil, err
				}
			}
			r.waves++
			if err := r.runWave(wave); err != nil {
				return nil, err
			}
		}
	}
	// Final internal partitioning: every window maps its cells to its
	// regions (no transit sinks remain).
	fsp := rec.StartSpan("fbp.final")
	if err := r.finalPass(); err != nil {
		fsp.End()
		return nil, err
	}
	fsp.End()
	// Repair the residual overflow left by majority rounding across
	// multi-hop realizations: move the smallest set of cells from
	// overfull regions to the nearest admissible regions with headroom.
	psp := rec.StartSpan("fbp.repair")
	r.repairOverflow()
	psp.End()
	m.Stats.RealizeTime = time.Since(start) //fbpvet:allow reporting-only duration
	m.Stats.Waves = r.waves
	m.Stats.LocalQPSolves, m.Stats.LocalCGIters = r.qpStats.Snapshot()
	rec.Count("fbp.waves", float64(r.waves))

	res := &Result{CellRegion: r.cellRegion, Stats: m.Stats}
	res.RoundingOverflow = r.roundingOverflow()
	return res, nil
}

// topoLevels orders the (class, window) units that carry outgoing external
// flow into topological levels of the flow-carrying external edge DAG.
// Each class subgraph is acyclic in an optimal MCF (a directed cycle would
// have to traverse positive-cost intra-window transit edges and could be
// canceled at profit), and distinct classes are vertex-disjoint subgraphs,
// so the union is a DAG. Rounding dust may still produce tiny residual
// cycles; those are broken at their smallest-flow edge.
func (r *realizer) topoLevels() ([][]unit, error) {
	W := r.m.WR.Grid.NumWindows()
	numUnits := r.m.Classes * W
	indeg := make([]int, numUnits)
	active := make([]bool, numUnits)
	for ei := range r.m.Externals {
		e := &r.m.Externals[ei]
		if e.Flow <= flow.Eps {
			continue
		}
		indeg[e.Class*W+e.To]++
		active[e.Class*W+e.From] = true
		active[e.Class*W+e.To] = true
	}
	level := make([]int, numUnits)
	queue := make([]int, 0, numUnits)
	totalActive := 0
	for u := 0; u < numUnits; u++ {
		if active[u] {
			totalActive++
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	processed := 0
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		processed++
		for _, ei := range r.outgoing[u] {
			e := &r.m.Externals[ei]
			v := e.Class*W + e.To
			if lv := level[u] + 1; lv > level[v] {
				level[v] = lv
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed < totalActive {
		// Residual cycle: drop the smallest-flow edge still blocked and
		// retry (strictly decreases the number of flow-carrying edges).
		minEi, minFlow := -1, flow.Inf
		for ei := range r.m.Externals {
			e := &r.m.Externals[ei]
			if e.Flow > flow.Eps && e.Flow < minFlow && indeg[e.Class*W+e.To] > 0 {
				minEi, minFlow = ei, e.Flow
			}
		}
		if minEi < 0 {
			return nil, fmt.Errorf("fbp: external edge cycle could not be broken")
		}
		r.m.Externals[minEi].Flow = 0
		r.rebuildEdgeIndex()
		return r.topoLevels()
	}
	// Group units with outgoing edges by level. Levels and windows are
	// dense integers, so plain slices give the deterministic iteration
	// order that map grouping would have left to Go's map hashing.
	maxLevel := 0
	for _, u := range order {
		if len(r.outgoing[u]) > 0 && level[u] > maxLevel {
			maxLevel = level[u]
		}
	}
	byLevel := make([][]int, maxLevel+1)
	for _, u := range order {
		if len(r.outgoing[u]) == 0 {
			continue
		}
		byLevel[level[u]] = append(byLevel[level[u]], u)
	}
	var levels [][]unit
	for lv := 0; lv <= maxLevel; lv++ {
		us := byLevel[lv]
		if len(us) == 0 {
			continue
		}
		// Sort by (window, class): same-window units become adjacent and
		// merge into one unit, and units come out in window order.
		sort.Slice(us, func(a, b int) bool {
			wa, wb := us[a]%W, us[b]%W
			if wa != wb {
				return wa < wb
			}
			return us[a] < us[b]
		})
		var units []unit
		for _, u := range us {
			w, cls := u%W, u/W
			if len(units) == 0 || units[len(units)-1].window != w {
				units = append(units, unit{window: w})
			}
			units[len(units)-1].classes = append(units[len(units)-1].classes, cls)
		}
		levels = append(levels, units)
	}
	return levels, nil
}

func (r *realizer) rebuildEdgeIndex() {
	W := r.m.WR.Grid.NumWindows()
	for u := range r.outgoing {
		r.outgoing[u] = r.outgoing[u][:0]
		r.incoming[u] = r.incoming[u][:0]
	}
	for i := range r.unrealizedOut {
		r.unrealizedOut[i] = 0
	}
	for ei := range r.m.Externals {
		e := &r.m.Externals[ei]
		if e.Flow <= flow.Eps {
			continue
		}
		r.outgoing[e.Class*W+e.From] = append(r.outgoing[e.Class*W+e.From], int32(ei))
		r.incoming[e.Class*W+e.To] = append(r.incoming[e.Class*W+e.To], int32(ei))
		r.unrealizedOut[(e.Class*W+e.From)*numDirs+e.FromDir] += e.Flow
	}
}

// waveSplit partitions one topological level into waves of units whose
// mutation footprints are pairwise disjoint (regardless of class — they
// mutate the same cell state), so each wave can run fully in parallel
// while staying deterministic. In block mode the footprint is the 3x3
// block (units conflict at window Chebyshev distance <= 2); in pair mode
// it is the window plus its 4-neighborhood, so the L1 distance decides
// and levels split into fewer, denser waves.
func (r *realizer) waveSplit(level []unit) [][]unit {
	g := r.m.WR.Grid
	conflict := func(ax, ay, bx, by int) bool {
		if r.pairMode {
			return abs(ax-bx)+abs(ay-by) <= 2
		}
		return abs(ax-bx) <= 2 && abs(ay-by) <= 2
	}
	var waves [][]unit
	taken := make([]int, len(level)) // wave index per unit
	for i := range taken {
		taken[i] = -1
	}
	for i, u := range level {
		ix, iy := g.Coords(u.window)
		wave := 0
	retry:
		for j := 0; j < i; j++ {
			if taken[j] != wave {
				continue
			}
			ox, oy := g.Coords(level[j].window)
			if conflict(ox, oy, ix, iy) {
				wave++
				goto retry
			}
		}
		taken[i] = wave
		for wave >= len(waves) {
			waves = append(waves, nil)
		}
		waves[wave] = append(waves[wave], u)
	}
	return waves
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// runWave realizes the outgoing external edges of each unit in the wave,
// in parallel. Positions of cells outside a unit's block are read from a
// snapshot taken at wave start, which makes the computation independent of
// scheduling order.
func (r *realizer) runWave(wave []unit) error {
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wave) {
		workers = len(wave)
	}
	// Per-wave span with worker occupancy: busy time of all units over
	// workers * wall-clock. Timing is gated on the recorder so disabled
	// runs pay only nil checks.
	var waveStart time.Time
	var busyBefore int64
	ws := r.rec.StartSpan("wave")
	if r.rec != nil {
		ws.Attr("units", float64(len(wave)))
		ws.Attr("workers", float64(workers))
		waveStart = time.Now() //fbpvet:allow wave utilization metric for obs, not placement
		busyBefore = atomic.LoadInt64(&r.busyNS)
	}
	defer func() {
		if r.rec != nil {
			wall := time.Since(waveStart) //fbpvet:allow wave utilization metric for obs, not placement
			busy := atomic.LoadInt64(&r.busyNS) - busyBefore
			if wall > 0 && workers > 0 {
				occ := float64(busy) / (float64(wall) * float64(workers))
				ws.Attr("occupancy", occ)
				r.rec.Gauge("fbp.occupancy", occ)
			}
			r.rec.Count("fbp.units", float64(len(wave)))
		}
		ws.End()
	}()
	var snapX, snapY []float64
	if r.cfg.LocalQP {
		r.snapX = append(r.snapX[:0], r.n.X...)
		r.snapY = append(r.snapY[:0], r.n.Y...)
		snapX, snapY = r.snapX, r.snapY
	}
	realize := func(u unit) error {
		sc := r.getScratch()
		defer r.putScratch(sc)
		if r.rec == nil {
			return r.safeRealize(u, snapX, snapY, sc)
		}
		t0 := time.Now() //fbpvet:allow busy-time gauge for obs, not placement
		err := r.safeRealize(u, snapX, snapY, sc)
		atomic.AddInt64(&r.busyNS, int64(time.Since(t0))) //fbpvet:allow busy-time gauge for obs, not placement
		return err
	}
	if workers <= 1 {
		for _, u := range wave {
			if err := realize(u); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(wave))
	sem := make(chan struct{}, workers)
	for i, u := range wave {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u unit) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = realize(u)
		}(i, u)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// safeRealize is the worker boundary around realizeUnit: it skips units of
// a canceled wave, converts a panicking unit into a structured *UnitError
// (no process crash, the worker keeps draining), and attributes errors to
// their window. Both the sequential and the parallel path of runWave go
// through it, so panic behavior is identical across worker counts.
func (r *realizer) safeRealize(u unit, snapX, snapY []float64, sc *workerScratch) (err error) {
	if r.cfg.Ctx != nil {
		if cerr := r.cfg.Ctx.Err(); cerr != nil {
			return cerr
		}
	}
	defer func() {
		if p := recover(); p != nil {
			err = &UnitError{
				Window: u.window, Phase: "realize",
				Err:   fmt.Errorf("panic: %v", p),
				Stack: debug.Stack(),
			}
		}
	}()
	if r.pairMode {
		return wrapUnitErr(u.window, "realize", r.realizeUnitPairs(u, snapX, snapY, sc))
	}
	return wrapUnitErr(u.window, "realize", r.realizeUnit(u, snapX, snapY, sc))
}

// realizeUnit realizes all outgoing external edges of one window for the
// unit's classes: local QP over the 3x3 block, then a movebound-aware
// transportation of all block cells onto the block's regions plus the
// block's still-unrealized transit capacities (eq. 2).
func (r *realizer) realizeUnit(un unit, snapX, snapY []float64, sc *workerScratch) error {
	if err := unitFault.Check(); err != nil {
		return err
	}
	g := r.m.WR.Grid
	W := g.NumWindows()
	u := un.window
	block := g.Block3x3(u)

	// Mark the unit's outgoing edges realized (their flow must move now).
	for _, cls := range un.classes {
		for _, ei := range r.outgoing[cls*W+u] {
			e := &r.m.Externals[ei]
			r.unrealizedOut[(e.Class*W+e.From)*numDirs+e.FromDir] -= e.Flow
		}
	}

	// Collect the block's cells.
	cells := sc.cellBuf[:0]
	for _, w := range block {
		cells = append(cells, r.cellsIn[w]...)
	}
	sc.cellBuf = cells
	if len(cells) == 0 {
		return nil
	}
	// Local QP with everything outside the block fixed (snapshot reads).
	if r.cfg.LocalQP {
		subset := sc.subset[:0]
		for _, c := range cells {
			if !r.parked[c] {
				subset = append(subset, netlist.CellID(c))
			}
		}
		sc.subset = subset
		if err := r.runLocalQP(u, subset, snapX, snapY, sc); err != nil {
			return err
		}
	}
	return r.transportBlock(u, block, cells, true, sc)
}

// runLocalQP runs the low-precision connectivity QP over the given subset
// with everything outside fixed to the wave snapshot. The QP only steers
// the transportation costs, so it runs at low precision; without the caps,
// coarse levels would solve near-global systems to full CG tolerance once
// per unit.
func (r *realizer) runLocalQP(u int, subset []netlist.CellID, snapX, snapY []float64, sc *workerScratch) error {
	opt := r.cfg.QP
	opt.ReadX, opt.ReadY = snapX, snapY
	opt.Workspace = sc.qp
	if opt.Tol == 0 {
		opt.Tol = 1e-3
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 60
	}
	opt.BestEffort = true
	// Local QP effort is reported separately from the placer's
	// top-level solves (Stats.LocalQPSolves/LocalCGIters).
	opt.Obs = r.rec
	opt.Stats = &r.qpStats
	opt.Ctx = r.cfg.Ctx
	opt.Degrade = r.cfg.Degrade
	if err := qp.SolveSubset(r.n, subset, nil, opt); err != nil {
		return fmt.Errorf("fbp: local QP in window %d: %w", u, err)
	}
	return nil
}

// realizeUnitPairs is the neighbor-pair reoptimization of realizeUnit for
// deep levels: instead of one transportation over the full 3x3 block —
// whose cell and sink counts are dominated by neighbors the unit does not
// ship to — the unit's outgoing edges are realized one target window at a
// time with tiny two-window transportations. One low-precision local QP
// over the footprint (the unit plus its flow targets) steers all pair
// costs.
//
// Pair steps preserve the feasibility invariant of Partition with
// B = {u, to}: the realized flow fits into the target's regions plus its
// own unrealized outgoing capacities by flow conservation at the target,
// and windows of the same topological level never ship to each other.
// Cells that must leave u towards a later target park at u's remaining
// transit sinks and are picked up again by that target's pair step.
// Targets are processed in ascending window order and each target's edge
// flows are removed from the transit capacities exactly when its pair is
// solved, so the pass is deterministic and realizes exactly the unit's
// outgoing flow.
func (r *realizer) realizeUnitPairs(un unit, snapX, snapY []float64, sc *workerScratch) error {
	if err := unitFault.Check(); err != nil {
		return err
	}
	g := r.m.WR.Grid
	W := g.NumWindows()
	u := un.window

	// Group the unit's outgoing edges by target window. Targets are the
	// (at most 4) grid neighbors, so a linear scan groups faster than a
	// map and stays allocation-free after the first unit.
	type pairTarget struct {
		to    int
		edges []int32
	}
	var targets []pairTarget
	for _, cls := range un.classes {
		for _, ei := range r.outgoing[cls*W+u] {
			e := &r.m.Externals[ei]
			found := false
			for t := range targets {
				if targets[t].to == e.To {
					targets[t].edges = append(targets[t].edges, ei)
					found = true
					break
				}
			}
			if !found {
				targets = append(targets, pairTarget{to: e.To, edges: []int32{ei}})
			}
		}
	}
	if len(targets) == 0 {
		return nil
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a].to < targets[b].to })

	// One footprint QP (unit + targets) replaces the per-pair QPs.
	if r.cfg.LocalQP {
		subset := sc.subset[:0]
		appendWin := func(w int) {
			for _, c := range r.cellsIn[w] {
				if !r.parked[c] {
					subset = append(subset, netlist.CellID(c))
				}
			}
		}
		appendWin(u)
		for _, t := range targets {
			appendWin(t.to)
		}
		sc.subset = subset
		if len(subset) > 0 {
			if err := r.runLocalQP(u, subset, snapX, snapY, sc); err != nil {
				return err
			}
		}
	}

	var pair [2]int
	for _, t := range targets {
		// Mark this target's edges realized (their flow must move now).
		for _, ei := range t.edges {
			e := &r.m.Externals[ei]
			r.unrealizedOut[(e.Class*W+e.From)*numDirs+e.FromDir] -= e.Flow
		}
		cells := sc.cellBuf[:0]
		cells = append(cells, r.cellsIn[u]...)
		cells = append(cells, r.cellsIn[t.to]...)
		sc.cellBuf = cells
		if len(cells) == 0 {
			continue
		}
		pair[0], pair[1] = u, t.to
		r.rec.Count("realize.pairpass", 1)
		if err := r.transportBlock(u, pair[:], cells, true, sc); err != nil {
			return err
		}
	}
	return nil
}

// sinkInfo describes one transportation sink of a block step: a window
// region, or (during waves) a still-unrealized transit capacity.
type sinkInfo struct {
	window  int32
	region  int32 // region list index, or -1 for a transit sink
	class   int32 // class restriction for transit sinks, -1 = open
	dir     int32
	pos     geom.Point
	rectSet geom.RectSet
}

// transportBlock partitions the given cells among the regions of the
// block windows plus (if allowTransit) the unrealized transit capacities.
func (r *realizer) transportBlock(u int, block []int, cells []int32, allowTransit bool, sc *workerScratch) error {
	g := r.m.WR.Grid
	W := g.NumWindows()
	d := r.m.WR.Decomp
	numMB := len(d.Movebounds)

	sinks := sc.sinks[:0]
	caps := sc.caps[:0]
	for _, w := range block {
		for k := range r.m.WR.PerWin[w] {
			reg := &r.m.WR.PerWin[w][k]
			if reg.Capacity <= 0 {
				continue
			}
			if len(reg.Rects) == 0 {
				// A region with capacity but no area cannot hold cells;
				// offering it as a sink would pin cells at their own
				// position (the empty-set nearest point used to degenerate
				// to the query point) at zero cost.
				r.rec.Count("fbp.repair.emptyRegion", 1)
				continue
			}
			sinks = append(sinks, sinkInfo{
				window: int32(w), region: int32(k), class: -1,
				pos: reg.Center, rectSet: reg.Rects,
			})
			caps = append(caps, reg.Capacity)
		}
	}
	if allowTransit {
		for cls := 0; cls < r.m.Classes; cls++ {
			for _, w := range block {
				for dir := 0; dir < numDirs; dir++ {
					rem := r.unrealizedOut[(cls*W+w)*numDirs+dir]
					if rem <= flow.Eps {
						continue
					}
					sinks = append(sinks, sinkInfo{
						window: int32(w), region: -1, class: int32(cls), dir: int32(dir),
						pos: TransitPos(g, w, dir),
					})
					caps = append(caps, rem)
				}
			}
		}
	}
	sc.sinks, sc.caps = sinks, caps
	supply := sc.supply
	if cap(supply) < len(cells) {
		supply = make([]float64, len(cells))
	} else {
		supply = supply[:len(cells)]
	}
	arcs := sc.arcs
	if cap(arcs) < len(cells) {
		arcs = append(arcs[:cap(arcs)], make([][]transport.Arc, len(cells)-cap(arcs))...)
	} else {
		arcs = arcs[:len(cells)]
	}
	sc.supply, sc.arcs = supply, arcs
	prob := &transport.Problem{
		Supply:   supply,
		Capacity: caps,
		Arcs:     arcs,
		Obs:      r.rec,
		Ctx:      r.cfg.Ctx,
		Degrade:  r.cfg.Degrade,
	}
	for i, ci := range cells {
		c := &r.n.Cells[ci]
		supply[i] = c.Size()
		arcs[i] = arcs[i][:0]
		pos := r.n.Pos(netlist.CellID(ci))
		cls := classOf(c.Movebound, numMB)
		for si := range sinks {
			s := &sinks[si]
			var cost float64
			if s.region >= 0 {
				reg := &r.m.WR.PerWin[s.window][s.region]
				if !d.Admissible(c.Movebound, reg.Region) {
					continue
				}
				// dist(c, r): L1 distance to the region area itself. The
				// rect set is non-empty by sink construction.
				q, _ := nearestInSet(s.rectSet, pos)
				cost = pos.DistL1(q)
			} else {
				if int(s.class) != cls {
					continue
				}
				cost = pos.DistL1(s.pos)
			}
			arcs[i] = append(arcs[i], transport.Arc{Sink: si, Cost: cost})
		}
	}
	var rounded []int
	if r.cfg.ParallelWindows && allowTransit && len(block) > 1 && len(cells) >= splitMinCells {
		rounded = r.splitSolve(prob, cells)
	}
	if rounded == nil {
		sol, err := r.solveWithRelaxation(prob, sc)
		if err != nil {
			return fmt.Errorf("fbp: transportation in block of window %d: %w", u, err)
		}
		rounded = roundCapacityAware(prob, sol)
	}
	// Apply: move cells between windows, set positions and assignments.
	// First remove all block cells from their window lists, then re-add.
	ep := sc.markPresent(r.n.NumCells(), cells)
	for _, w := range block {
		kept := r.cellsIn[w][:0]
		for _, ci := range r.cellsIn[w] {
			if sc.present[ci] != ep {
				kept = append(kept, ci)
			}
		}
		r.cellsIn[w] = kept
	}
	for i, ci := range cells {
		si := rounded[i]
		if si < 0 {
			return fmt.Errorf("fbp: cell %d received no sink", ci)
		}
		s := &sinks[si]
		r.curWin[ci] = s.window
		r.cellsIn[s.window] = append(r.cellsIn[s.window], ci)
		if s.region >= 0 {
			r.parked[ci] = false
			r.cellRegion[ci] = RegionRef{Window: s.window, Index: s.region}
			if q, ok := nearestInSet(s.rectSet, r.n.Pos(netlist.CellID(ci))); ok {
				r.n.SetPos(netlist.CellID(ci), q)
			}
		} else {
			r.parked[ci] = true
			r.cellRegion[ci] = RegionRef{-1, -1}
			r.n.SetPos(netlist.CellID(ci), s.pos)
		}
	}
	return nil
}

// roundCapacityAware rounds the fractional transportation solution to an
// integral assignment: unsplit cells keep their sink; split cells are then
// placed, largest first, at the admissible sink of theirs with the most
// remaining capacity headroom after preferring the majority portion. This
// keeps the per-sink overflow bounded by one cell instead of letting many
// boundary cells pile onto the same region.
func roundCapacityAware(p *transport.Problem, sol *transport.Solution) []int {
	remaining := append([]float64(nil), p.Capacity...)
	out := make([]int, len(sol.Assign))
	type split struct {
		src  int
		size float64
	}
	var splits []split
	for i, ps := range sol.Assign {
		if len(ps) == 1 {
			out[i] = ps[0].Sink
			remaining[ps[0].Sink] -= p.Supply[i]
			continue
		}
		out[i] = -1
		splits = append(splits, split{src: i, size: p.Supply[i]})
	}
	sort.Slice(splits, func(a, b int) bool {
		//fbpvet:floatok exact tie-break on stored sizes keeps the sort total
		if splits[a].size != splits[b].size {
			return splits[a].size > splits[b].size
		}
		return splits[a].src < splits[b].src
	})
	for _, s := range splits {
		best, bestScore, bestAmount := -1, 0.0, 0.0
		for _, portion := range sol.Assign[s.src] {
			// Prefer the portion-weighted sink, tempered by remaining
			// capacity so we do not overfill one sink repeatedly.
			score := portion.Amount
			if remaining[portion.Sink] < s.size {
				score -= 2 * (s.size - remaining[portion.Sink])
			}
			// Exact score ties are broken explicitly — larger portion
			// first, then lowest sink index — rather than by whichever
			// portion happens to come first in sol.Assign, so rounding
			// cannot depend on upstream portion ordering.
			//fbpvet:floatok exact tie-break on computed scores, then stored amounts, then sink index
			better := score > bestScore || (score == bestScore &&
				//fbpvet:floatok second tie level compares stored portion amounts exactly
				(portion.Amount > bestAmount || (portion.Amount == bestAmount && portion.Sink < best)))
			if best < 0 || better {
				best, bestScore, bestAmount = portion.Sink, score, portion.Amount
			}
		}
		out[s.src] = best
		remaining[best] -= s.size
	}
	return out
}

// nsEngineMaxCells / nsEngineMaxSinks bound the instances eligible for the
// warm-startable network-simplex transportation engine. Pair steps and
// deep-level block steps fall well under these; large coarse-level blocks
// keep the condensed engine, whose condensed-graph augmentation wins on
// many-cells/few-sinks shapes. Eligibility depends only on the instance
// size and the rung, so the engine choice is deterministic.
const (
	nsEngineMaxCells = 160
	nsEngineMaxSinks = 96
)

// splitMinCells is the smallest block transportation worth splitting per
// source window under Config.ParallelWindows; below it the speculative
// solves cost more than the monolithic problem.
const splitMinCells = 24

// solveWithRelaxation retries an infeasible transportation with gently
// inflated capacities: majority rounding of earlier steps can overfill a
// block by a few cells' area. The inflation ladder keeps the violation
// bounded and is recorded by the caller via Result.RoundingOverflow.
//
// Retry rungs of small instances run on the network-simplex engine, and
// the spanning-tree basis of each rung warm-starts the next — including
// the basis of a failed (infeasible) rung: the ladder only rescales sink
// capacities, which enter the bipartite model as sink-node supplies, so
// the arc structure — and with it the exported basis — is reusable as-is.
// The first rung stays on the condensed engine, which wins when a single
// cold solve suffices (the common case); the NS engine only pays off once
// there is a tree to reuse. A stalled NS rung degrades to the
// condensed/reference chain instead of failing the block. With
// Config.ParallelWindows a basis also persists across units in the worker
// scratch and then warm-starts the first rung (sc may be nil for
// speculative solves, which skip that reuse).
func (r *realizer) solveWithRelaxation(p *transport.Problem, sc *workerScratch) (*transport.Solution, error) {
	factors := []float64{1, 1.001, 1.02, 1.1, 1.5, 4, 64}
	base := append([]float64(nil), p.Capacity...)
	useNS := !r.cfg.CondensedOnly &&
		len(p.Supply) <= nsEngineMaxCells && len(p.Capacity) <= nsEngineMaxSinks
	var basis *flow.Basis
	if useNS && r.cfg.ParallelWindows && sc != nil {
		basis = sc.lastBasis
	}
	var lastErr error
	for ri, f := range factors {
		for i := range p.Capacity {
			p.Capacity[i] = base[i] * f
		}
		var sol *transport.Solution
		var err error
		if useNS && (ri > 0 || basis != nil) {
			var next *flow.Basis
			sol, next, err = transport.SolveNS(p, basis)
			if next != nil {
				basis = next // warm-start the next rung from this tree
			}
			var stalled *flow.ErrStalled
			if err != nil && errors.As(err, &stalled) {
				// The NS cycling guard tripped: degrade this rung to the
				// condensed engine (with its own reference fallback)
				// rather than failing the whole block.
				r.cfg.Degrade.Add("fbp.transport.ns", "condensed-engine", err.Error())
				sol, err = transport.Solve(p)
			}
		} else {
			sol, err = transport.Solve(p)
		}
		if err == nil {
			if r.cfg.Check != nil {
				// Certify against the capacities the rung actually solved
				// with (still inflated here; restored below either way).
				if cerr := r.cfg.Check.Transport(p, sol); cerr != nil {
					copy(p.Capacity, base)
					return nil, cerr
				}
			}
			if useNS && r.cfg.ParallelWindows && sc != nil {
				sc.lastBasis = basis
			}
			copy(p.Capacity, base)
			return sol, nil
		}
		lastErr = err
		if !errors.Is(err, transport.ErrInfeasible) {
			// Cancellation or an engine failure: inflating capacities
			// cannot help, so climbing the ladder would only repeat it.
			break
		}
	}
	copy(p.Capacity, base)
	return nil, lastErr
}

// splitSolve is the Config.ParallelWindows fast path of transportBlock: it
// solves the block transportation speculatively per source window —
// independent subproblems, solved concurrently, each seeing the full
// capacity vector — and merges the fractional solutions first-in-order
// (block window order). The merge accepts only when the combined sink
// loads respect the shared capacities; then each local optimum costs no
// more than the global optimum's restriction to that window, so the
// merged solution is itself a globally optimal fractional solution and
// quality is preserved exactly. Contended blocks — combined loads
// overflowing a sink — and failed speculations abandon the split (nil
// return) and the caller falls back to the monolithic solve. The merged
// optimum may be a different vertex than the monolithic engine's, which
// is why the flag is off by default (bit-identity).
func (r *realizer) splitSolve(p *transport.Problem, cells []int32) []int {
	// Source windows form contiguous runs in cells (collected window by
	// window), so group by scanning for run boundaries.
	type span struct{ lo, hi int }
	var groups []span
	for i := 0; i < len(cells); {
		j := i
		w := r.curWin[cells[i]]
		for j < len(cells) && r.curWin[cells[j]] == w {
			j++
		}
		groups = append(groups, span{i, j})
		i = j
	}
	if len(groups) < 2 {
		return nil
	}
	sols := make([]*transport.Solution, len(groups))
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			// A panicking speculative solve must not escape this
			// goroutine (the unit's recover lives on the caller's); it
			// just forfeits the split and the monolithic path retries.
			defer func() { _ = recover() }()
			sp := groups[gi]
			sub := &transport.Problem{
				Supply:   p.Supply[sp.lo:sp.hi],
				Capacity: append([]float64(nil), p.Capacity...),
				Arcs:     p.Arcs[sp.lo:sp.hi],
				Obs:      r.rec,
				Ctx:      r.cfg.Ctx,
				Degrade:  r.cfg.Degrade,
			}
			if sol, err := r.solveWithRelaxation(sub, nil); err == nil {
				sols[gi] = sol
			}
		}(gi)
	}
	wg.Wait()
	load := make([]float64, len(p.Capacity))
	for _, sol := range sols {
		if sol == nil {
			return nil
		}
		for _, ps := range sol.Assign {
			for _, portion := range ps {
				load[portion.Sink] += portion.Amount
			}
		}
	}
	for si, l := range load {
		if l > p.Capacity[si]+flow.Eps {
			// Contended sink: the per-window optima do not coexist.
			r.rec.Count("realize.parwin.contended", 1)
			return nil
		}
	}
	merged := &transport.Solution{Assign: make([][]transport.Portion, len(cells))}
	for gi, sp := range groups {
		sol := sols[gi]
		copy(merged.Assign[sp.lo:sp.hi], sol.Assign)
		merged.Cost += sol.Cost
	}
	r.rec.Count("realize.parwin", 1)
	return roundCapacityAware(p, merged)
}

// nearestInSet returns the point of the rectangle set closest (L1) to p.
// The second result is false when the set is empty; callers must not treat
// the query point as a member then (it used to be returned silently, which
// made empty regions look like zero-distance targets).
func nearestInSet(rs geom.RectSet, p geom.Point) (geom.Point, bool) {
	best := p
	bestD := -1.0
	for _, rect := range rs {
		q := rect.ClampPoint(p)
		d := q.DistL1(p)
		if bestD < 0 || d < bestD {
			best, bestD = q, d
		}
	}
	return best, bestD >= 0
}

// finalPass maps the cells of every window onto the window's regions
// (transit capacities are all realized by now). Windows are independent,
// so the pass runs on a worker pool; results are deterministic because
// each window's transportation only touches its own cells. Errors are
// collected per window and the first one in window order is returned, so
// failure reporting is identical across worker counts; workers never exit
// early and the producer selects on cancellation, so neither the producer
// nor the workers can leak when a window fails or the context expires.
func (r *realizer) finalPass() error {
	g := r.m.WR.Grid
	var windows []int
	for w := 0; w < g.NumWindows(); w++ {
		if len(r.cellsIn[w]) > 0 {
			windows = append(windows, w)
		}
	}
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(windows) {
		workers = len(windows)
	}
	// finalize is the worker boundary of the final pass, mirroring
	// safeRealize: cancellation check, injection point, panic recovery.
	finalize := func(w int) (err error) {
		if r.cfg.Ctx != nil {
			if cerr := r.cfg.Ctx.Err(); cerr != nil {
				return cerr
			}
		}
		defer func() {
			if p := recover(); p != nil {
				err = &UnitError{
					Window: w, Phase: "final",
					Err:   fmt.Errorf("panic: %v", p),
					Stack: debug.Stack(),
				}
			}
		}()
		if err := finalFault.Check(); err != nil {
			return &UnitError{Window: w, Phase: "final", Err: err}
		}
		sc := r.getScratch()
		defer r.putScratch(sc)
		return wrapUnitErr(w, "final", r.transportBlock(w, []int{w}, append([]int32(nil), r.cellsIn[w]...), false, sc))
	}
	if workers <= 1 {
		for _, w := range windows {
			if err := finalize(w); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(windows))
	next := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = finalize(windows[i])
			}
		}()
	}
	var done <-chan struct{}
	if r.cfg.Ctx != nil {
		done = r.cfg.Ctx.Done()
	}
producer:
	for i := range windows {
		select {
		case next <- i:
		case <-done: // nil channel when no context: never selected
			break producer
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if r.cfg.Ctx != nil {
		if err := r.cfg.Ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// repairOverflow relocates cells from regions whose rounded usage exceeds
// capacity to admissible regions with free space, nearest first. Rounding
// leaves only a few cells' worth of overflow, so a greedy deterministic
// sweep suffices.
func (r *realizer) repairOverflow() {
	wr := r.m.WR
	// usage and cellsOf are keyed accumulators only — every read below
	// goes through the sorted refs slice, never map iteration, so repair
	// order is independent of Go map hashing.
	usage := map[RegionRef]float64{}
	cellsOf := map[RegionRef][]int32{}
	moved, movedArea := 0, 0.0
	for i := range r.n.Cells {
		if r.n.Cells[i].Fixed {
			continue
		}
		ref := r.cellRegion[i]
		usage[ref] += r.n.Cells[i].Size()
		cellsOf[ref] = append(cellsOf[ref], int32(i))
	}
	// All region refs in deterministic order.
	var refs []RegionRef
	for w := range wr.PerWin {
		for k := range wr.PerWin[w] {
			refs = append(refs, RegionRef{Window: int32(w), Index: int32(k)})
		}
	}
	capOf := func(ref RegionRef) float64 { return wr.PerWin[ref.Window][ref.Index].Capacity }
	for _, ref := range refs {
		over := usage[ref] - capOf(ref)
		if over <= flow.Eps {
			continue
		}
		// Move smallest cells first: they fit into slack most easily and
		// minimize moved area beyond the strict overflow.
		cells := append([]int32(nil), cellsOf[ref]...)
		sort.Slice(cells, func(a, b int) bool {
			sa, sb := r.n.Cells[cells[a]].Size(), r.n.Cells[cells[b]].Size()
			//fbpvet:floatok exact tie-break on stored sizes keeps the sort total
			if sa != sb {
				return sa < sb
			}
			return cells[a] < cells[b]
		})
		for _, ci := range cells {
			if over <= flow.Eps {
				break
			}
			size := r.n.Cells[ci].Size()
			pos := r.n.Pos(netlist.CellID(ci))
			mb := r.n.Cells[ci].Movebound
			best := RegionRef{-1, -1}
			bestD := 0.0
			var bestPos geom.Point
			for _, cand := range refs {
				if cand == ref {
					continue
				}
				reg := &wr.PerWin[cand.Window][cand.Index]
				if !wr.Decomp.Admissible(mb, reg.Region) {
					continue
				}
				if capOf(cand)-usage[cand] < size {
					continue
				}
				q, ok := nearestInSet(reg.Rects, pos)
				if !ok {
					// A region without area is no relocation target.
					r.rec.Count("fbp.repair.emptyRegion", 1)
					continue
				}
				d := q.DistL1(pos)
				if best.Window < 0 || d < bestD {
					best, bestD, bestPos = cand, d, q
				}
			}
			if best.Window < 0 {
				continue // no headroom anywhere admissible; leave the cell
			}
			usage[ref] -= size
			usage[best] += size
			over -= size
			moved++
			movedArea += size
			r.cellRegion[ci] = best
			r.curWin[ci] = best.Window
			r.n.SetPos(netlist.CellID(ci), bestPos)
		}
	}
	r.rec.Count("fbp.repair.movedCells", float64(moved))
	r.rec.Count("fbp.repair.movedArea", movedArea)
}

// roundingOverflow sums, over all window-regions, the assigned cell area
// exceeding the region capacity. The map is keyed accumulation only; the
// summation walks regions in index order so the floating-point total is
// bit-identical across runs (map iteration order would not be).
func (r *realizer) roundingOverflow() float64 {
	usage := map[RegionRef]float64{}
	total := 0.0
	for i := range r.n.Cells {
		if r.n.Cells[i].Fixed {
			continue
		}
		ref := r.cellRegion[i]
		if ref.Window < 0 {
			total += r.n.Cells[i].Size() // unassigned cells count fully
			continue
		}
		usage[ref] += r.n.Cells[i].Size()
	}
	for w := range r.m.WR.PerWin {
		for k := range r.m.WR.PerWin[w] {
			ref := RegionRef{Window: int32(w), Index: int32(k)}
			if u, c := usage[ref], r.m.WR.PerWin[w][k].Capacity; u > c {
				total += u - c
			}
		}
	}
	return total
}
