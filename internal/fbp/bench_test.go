package fbp

import (
	"fmt"
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// benchInstance builds a crowded instance whose realization needs many
// waves: numCells small cells piled into one corner of an nx x ny grid.
func benchInstance(numCells, nx, ny int) (*netlist.Netlist, *grid.WindowRegions) {
	rng := rand.New(rand.NewSource(23))
	n := netlist.New(chip, 1)
	for i := 0; i < numCells; i++ {
		id := n.AddCell(netlist.Cell{Width: 0.2, Height: 0.5, Movebound: netlist.NoMovebound})
		n.SetPos(id, geom.Point{X: 1 + 3*rng.Float64(), Y: 1 + 3*rng.Float64()})
	}
	for e := 0; e < 2*numCells; e++ {
		i, j := rng.Intn(numCells), rng.Intn(numCells)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	d := region.Decompose(chip, nil)
	wr := grid.BuildWindowRegions(grid.MustNew(chip, nx, ny), d, nil, 1.0)
	return n, wr
}

// BenchmarkRealizeLevel measures one full realization (waves + final pass
// + repair) of a solved FBP model, the hot path of every placement level.
// The MCF model build and solve run outside the timer.
func BenchmarkRealizeLevel(b *testing.B) {
	// The deep 32x32 level runs twice: "block" forces the legacy 3x3-block
	// realization, "pair" the neighbor-pair pass (the default there), to
	// keep the speedup of the pair pass + warm-started transports visible.
	for _, c := range []struct {
		cells, nx, ny int
		mode          string
	}{
		{2000, 8, 8, ""},
		{2400, 12, 12, ""},
		{2400, 32, 32, "block"},
		{2400, 32, 32, "pair"},
	} {
		name := fmt.Sprintf("cells=%d/grid=%dx%d", c.cells, c.nx, c.ny)
		if c.mode != "" {
			name += "/" + c.mode
		}
		b.Run(name, func(b *testing.B) {
			base, wr := benchInstance(c.cells, c.nx, c.ny)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				n := base.Clone()
				assign := wr.Grid.AssignCells(n)
				m := BuildModel(n, wr, assign)
				if err := m.Solve(); err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.PairPass = c.mode != "block"
				b.StartTimer()
				if _, err := Realize(m, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
