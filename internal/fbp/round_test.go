package fbp

import (
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/transport"
)

// TestRoundCapacityAwareTieRule pins the explicit tie rule of the rounding
// step: among a split cell's portions with exactly equal scores, the larger
// amount wins, and among equal amounts the lowest sink index — regardless
// of the order the portions arrive in sol.Assign. Before the rule, rounding
// silently inherited whatever order the transport engine emitted.
func TestRoundCapacityAwareTieRule(t *testing.T) {
	// One split source of size 1; every sink has ample remaining capacity,
	// so score == portion.Amount exactly.
	prob := &transport.Problem{
		Supply:   []float64{1},
		Capacity: []float64{10, 10, 10},
	}
	mkSol := func(portions []transport.Portion) *transport.Solution {
		return &transport.Solution{Assign: [][]transport.Portion{portions}}
	}
	// Equal amounts on sinks 2 and 1, listed high sink first: the lowest
	// sink index must win the exact tie.
	sol := mkSol([]transport.Portion{{Sink: 2, Amount: 0.5}, {Sink: 1, Amount: 0.5}})
	if got := roundCapacityAware(prob, sol); got[0] != 1 {
		t.Fatalf("equal-amount tie: rounded to sink %d, want 1 (lowest index)", got[0])
	}
	// Same portions in the opposite order: identical outcome.
	sol = mkSol([]transport.Portion{{Sink: 1, Amount: 0.5}, {Sink: 2, Amount: 0.5}})
	if got := roundCapacityAware(prob, sol); got[0] != 1 {
		t.Fatalf("equal-amount tie (reordered): rounded to sink %d, want 1", got[0])
	}
	// Distinct amounts: the larger portion wins even when listed last and
	// even though its sink index is higher.
	sol = mkSol([]transport.Portion{{Sink: 0, Amount: 0.3}, {Sink: 2, Amount: 0.7}})
	if got := roundCapacityAware(prob, sol); got[0] != 2 {
		t.Fatalf("majority portion: rounded to sink %d, want 2", got[0])
	}
	// Equal scores through different amounts (binary fractions, so the
	// arithmetic is exact): sink 0 holds the 0.75 portion but only 0.75
	// capacity, so its penalty 2*(1-0.75) = 0.5 drops its score to 0.25 —
	// exactly sink 1's unpenalized 0.25 portion. The tie goes to the
	// larger stored amount, not the listing order.
	prob2 := &transport.Problem{
		Supply:   []float64{1},
		Capacity: []float64{0.75, 10},
	}
	sol = mkSol([]transport.Portion{{Sink: 1, Amount: 0.25}, {Sink: 0, Amount: 0.75}})
	if got := roundCapacityAware(prob2, sol); got[0] != 0 {
		t.Fatalf("penalized tie: rounded to sink %d, want 0 (larger amount)", got[0])
	}
	sol = mkSol([]transport.Portion{{Sink: 0, Amount: 0.75}, {Sink: 1, Amount: 0.25}})
	if got := roundCapacityAware(prob2, sol); got[0] != 0 {
		t.Fatalf("penalized tie (reordered): rounded to sink %d, want 0", got[0])
	}
}

// TestNearestInSetEmpty pins the empty-set contract: no point, ok == false
// (the old behavior silently returned the query point, making empty
// regions look like zero-distance members).
func TestNearestInSetEmpty(t *testing.T) {
	if _, ok := nearestInSet(nil, chip.Center()); ok {
		t.Fatal("nearestInSet(nil, p) reported ok")
	}
	q, ok := nearestInSet(geom.RectSet{{Xlo: 2, Ylo: 2, Xhi: 4, Yhi: 4}}, chip.Center())
	if !ok {
		t.Fatal("nearestInSet on a non-empty set reported !ok")
	}
	if q.X != 4 || q.Y != 4 {
		t.Fatalf("nearest point = %v, want (4,4)", q)
	}
}
