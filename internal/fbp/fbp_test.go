package fbp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/region"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 16, Yhi: 16}

// build returns WindowRegions for the chip with the given movebounds.
func build(t *testing.T, mbs []region.Movebound, nx, ny int, density float64, blockages geom.RectSet) *grid.WindowRegions {
	t.Helper()
	var err error
	if len(mbs) > 0 {
		mbs, err = region.Normalize(chip, mbs)
		if err != nil {
			t.Fatal(err)
		}
	}
	d := region.Decompose(chip, mbs)
	return grid.BuildWindowRegions(grid.MustNew(chip, nx, ny), d, blockages, density)
}

// clusterNetlist places numCells unit cells at pos (a crowded corner).
func clusterNetlist(numCells int, pos geom.Point, mb int) *netlist.Netlist {
	n := netlist.New(chip, 1)
	for i := 0; i < numCells; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: mb})
		n.SetPos(id, pos)
	}
	return n
}

func TestFigure2EdgeSets(t *testing.T) {
	// One movebound covering the whole chip, 2x1 grid: per window and
	// class, the model must contain the four edge families of Figure 2.
	mbs := []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{chip}}}
	wr := build(t, mbs, 2, 1, 1.0, nil)
	n := clusterNetlist(4, geom.Point{X: 2, Y: 8}, 0)
	assign := wr.Grid.AssignCells(n)
	m := BuildModel(n, wr, assign)

	// Node count: 2 regions + per class per window 4 transits, plus one
	// cell group (all cells in window 0, class 0; class 1 = unbounded has
	// no cells). Class window ranges cover both windows for both classes.
	wantNodes := 2 + 2*2*4 + 1
	if m.Stats.NumNodes != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", m.Stats.NumNodes, wantNodes)
	}
	// Arc count: per class per window: E^tt = 12; per admissible region:
	// E^tr = 4. Class M admissible everywhere, unbounded too (no
	// exclusives). Cell group (1): E^cr = 1 region in window, E^ct = 4.
	// External: 2 classes * 1 adjacency * 2 directions = 4.
	wantArcs := 2*2*12 + 2*2*4 + (1 + 4) + 4
	if m.Stats.NumArcs != wantArcs {
		t.Fatalf("NumArcs = %d, want %d", m.Stats.NumArcs, wantArcs)
	}
	if len(m.Externals) != 2 {
		t.Fatalf("external pairs = %d, want 2 (one per class)", len(m.Externals))
	}
}

func TestFigure3ExternalEdgesRestrictedToBBox(t *testing.T) {
	// Movebound M covers only the left half: its transit nodes (and thus
	// external edges) must not extend beyond the windows intersecting
	// A(M)'s bounding box.
	mbs := []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 16}}}}
	wr := build(t, mbs, 4, 1, 1.0, nil)
	n := clusterNetlist(4, geom.Point{X: 1, Y: 8}, 0)
	m := BuildModel(n, wr, wr.Grid.AssignCells(n))
	for _, e := range m.Externals {
		if e.Class != 0 {
			continue
		}
		fx, _ := wr.Grid.Coords(e.From)
		tx, _ := wr.Grid.Coords(e.To)
		if fx > 1 || tx > 1 {
			t.Fatalf("class-M external edge outside bbox windows: %d -> %d", e.From, e.To)
		}
	}
	// The unbounded class spans the whole grid: 3 adjacencies.
	unbounded := 0
	for _, e := range m.Externals {
		if e.Class == 1 {
			unbounded++
		}
	}
	if unbounded != 3 {
		t.Fatalf("unbounded external pairs = %d, want 3", unbounded)
	}
}

func TestPartitionSpreadsOverloadedWindow(t *testing.T) {
	// 4x4 grid, 300 unit cells crammed into one corner window of capacity
	// 16: partitioning must spread them so every region respects its
	// capacity (up to rounding of split cells).
	wr := build(t, nil, 4, 4, 1.0, nil)
	n := clusterNetlist(240, geom.Point{X: 1, Y: 1}, netlist.NoMovebound)
	res, err := Partition(n, wr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	usage := make(map[RegionRef]float64)
	for i := range n.Cells {
		ref := res.CellRegion[i]
		if ref.Window < 0 {
			t.Fatalf("cell %d unassigned", i)
		}
		usage[ref] += n.Cells[i].Size()
	}
	for ref, u := range usage {
		c := wr.PerWin[ref.Window][ref.Index].Capacity
		if u > c+2.0 { // one rounded cell of slack
			t.Fatalf("region %v overfilled: %g > %g", ref, u, c)
		}
	}
	// Positions must lie inside the assigned regions.
	for i := range n.Cells {
		ref := res.CellRegion[i]
		rs := wr.PerWin[ref.Window][ref.Index].Rects
		if !rs.Contains(n.Pos(netlist.CellID(i))) {
			t.Fatalf("cell %d at %v outside its region", i, n.Pos(netlist.CellID(i)))
		}
	}
	if res.Stats.NumExternals == 0 {
		t.Fatal("expected flow-carrying external edges for an overloaded corner")
	}
}

func TestPartitionRespectsMovebounds(t *testing.T) {
	// Movebound M is the right half; its cells start in the left half.
	mbs := []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 8, Ylo: 0, Xhi: 16, Yhi: 16}}}}
	wr := build(t, mbs, 4, 4, 1.0, nil)
	n := netlist.New(chip, 1)
	for i := 0; i < 40; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 0})
		n.SetPos(id, geom.Point{X: 2, Y: 8})
	}
	for i := 0; i < 40; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
		n.SetPos(id, geom.Point{X: 2, Y: 8})
	}
	res, err := Partition(n, wr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Cells {
		ref := res.CellRegion[i]
		reg := wr.PerWin[ref.Window][ref.Index]
		if !wr.Decomp.Admissible(n.Cells[i].Movebound, reg.Region) {
			t.Fatalf("cell %d (mb %d) assigned to inadmissible region", i, n.Cells[i].Movebound)
		}
		if n.Cells[i].Movebound == 0 && n.X[i] < 8 {
			t.Fatalf("movebound cell %d left at x=%g", i, n.X[i])
		}
	}
}

func TestPartitionExclusiveMovebound(t *testing.T) {
	// Exclusive movebound in the center: unbounded cells must not be
	// assigned into it even when space is tight elsewhere.
	mbs := []region.Movebound{{Name: "X", Kind: region.Exclusive, Area: geom.RectSet{{Xlo: 4, Ylo: 4, Xhi: 12, Yhi: 12}}}}
	wr := build(t, mbs, 4, 4, 1.0, nil)
	n := netlist.New(chip, 1)
	for i := 0; i < 30; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: 0})
		n.SetPos(id, geom.Point{X: 8, Y: 8})
	}
	for i := 0; i < 120; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
		n.SetPos(id, geom.Point{X: 8, Y: 8})
	}
	res, err := Partition(n, wr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	excl := geom.Rect{Xlo: 4, Ylo: 4, Xhi: 12, Yhi: 12}
	for i := range n.Cells {
		reg := wr.PerWin[res.CellRegion[i].Window][res.CellRegion[i].Index]
		inX := wr.Decomp.Regions[reg.Region].Blocked
		if n.Cells[i].Movebound == netlist.NoMovebound && inX {
			t.Fatalf("unbounded cell %d assigned into exclusive region", i)
		}
		if n.Cells[i].Movebound == 0 && !excl.Contains(n.Pos(netlist.CellID(i))) {
			t.Fatalf("X cell %d placed at %v outside the exclusive area", i, n.Pos(netlist.CellID(i)))
		}
	}
}

func TestPartitionInfeasibleDetected(t *testing.T) {
	// Movebound too small for its cells: Theorem 3 says the MCF must be
	// infeasible and the error reported (never silently violated).
	mbs := []region.Movebound{{Name: "S", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 4, Yhi: 4}}}}
	wr := build(t, mbs, 4, 4, 1.0, nil)
	n := clusterNetlist(20, geom.Point{X: 2, Y: 2}, 0) // 20 area > 16
	_, err := Partition(n, wr, DefaultConfig())
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if inf.Unrouted < 3.9 {
		t.Fatalf("unrouted = %g, want ~4", inf.Unrouted)
	}
}

func TestPartitionGuaranteeAnyStartingPlacement(t *testing.T) {
	// Theorem 3 + realization guarantee: a feasible partitioning is found
	// for arbitrary (even adversarial) starting placements.
	rng := rand.New(rand.NewSource(17))
	mbs := []region.Movebound{
		{Name: "A", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 8}}},
		{Name: "B", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 4, Ylo: 4, Xhi: 16, Yhi: 16}}},
	}
	for trial := 0; trial < 5; trial++ {
		wr := build(t, mbs, 4, 4, 1.0, nil)
		n := netlist.New(chip, 1)
		for i := 0; i < 100; i++ {
			mb := rng.Intn(3) - 1
			id := n.AddCell(netlist.Cell{Width: 0.5 + rng.Float64(), Height: 1, Movebound: mb})
			// Adversarial: anywhere, including outside the movebound.
			n.SetPos(id, geom.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16})
		}
		res, err := Partition(n, wr, DefaultConfig())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range n.Cells {
			ref := res.CellRegion[i]
			if ref.Window < 0 {
				t.Fatalf("trial %d: cell %d unassigned", trial, i)
			}
			reg := wr.PerWin[ref.Window][ref.Index]
			if !wr.Decomp.Admissible(n.Cells[i].Movebound, reg.Region) {
				t.Fatalf("trial %d: inadmissible assignment", trial)
			}
		}
	}
}

func TestPartitionDeterministicAcrossWorkers(t *testing.T) {
	mbs := []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 8, Ylo: 0, Xhi: 16, Yhi: 16}}}}
	rng := rand.New(rand.NewSource(5))
	base := netlist.New(chip, 1)
	for i := 0; i < 150; i++ {
		mb := netlist.NoMovebound
		if i%3 == 0 {
			mb = 0
		}
		id := base.AddCell(netlist.Cell{Width: 0.5 + rng.Float64(), Height: 1, Movebound: mb})
		base.SetPos(id, geom.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16})
	}
	for e := 0; e < 100; e++ {
		i, j := rng.Intn(150), rng.Intn(150)
		if i != j {
			base.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	run := func(workers int) ([]RegionRef, []float64) {
		n := base.Clone()
		wr := build(t, mbs, 4, 4, 1.0, nil)
		cfg := DefaultConfig()
		cfg.Workers = workers
		res, err := Partition(n, wr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.CellRegion, append(append([]float64(nil), n.X...), n.Y...)
	}
	r1, p1 := run(1)
	r8, p8 := run(8)
	for i := range r1 {
		if r1[i] != r8[i] {
			t.Fatalf("cell %d: assignment differs between 1 and 8 workers: %v vs %v", i, r1[i], r8[i])
		}
	}
	for i := range p1 {
		if math.Abs(p1[i]-p8[i]) > 1e-9 {
			t.Fatalf("position %d differs: %g vs %g", i, p1[i], p8[i])
		}
	}
}

// TestRepairPathDeterministicAcrossWorkers drives an overfull instance —
// crowded irregular cells against a tight movebound — so majority rounding
// overflows regions and repairOverflow has to relocate cells. The repair
// bookkeeping is keyed through maps (usage/cellsOf); this test pins down
// that its results never depend on map hashing or on the worker count:
// assignments, positions, the RoundingOverflow diagnostic and the number
// of repair moves must be identical for 1 and 4 workers.
func TestRepairPathDeterministicAcrossWorkers(t *testing.T) {
	mbs := []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 7, Yhi: 7}}}}
	rng := rand.New(rand.NewSource(17))
	base := netlist.New(chip, 1)
	const numCells = 230
	for i := 0; i < numCells; i++ {
		mb := netlist.NoMovebound
		if i%5 == 0 {
			mb = 0
		}
		id := base.AddCell(netlist.Cell{Width: 0.3 + 1.4*rng.Float64(), Height: 1, Movebound: mb})
		base.SetPos(id, geom.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16})
	}
	for e := 0; e < 200; e++ {
		i, j := rng.Intn(numCells), rng.Intn(numCells)
		if i != j {
			base.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	type outcome struct {
		regions  []RegionRef
		pos      []float64
		overflow float64
		moved    float64
	}
	run := func(workers int) outcome {
		n := base.Clone()
		wr := build(t, mbs, 4, 4, 1.0, nil)
		rec := obs.New(nil)
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Obs = rec
		res, err := Partition(n, wr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			regions:  res.CellRegion,
			pos:      append(append([]float64(nil), n.X...), n.Y...),
			overflow: res.RoundingOverflow,
			moved:    rec.Counter("fbp.repair.movedCells"),
		}
	}
	o1 := run(1)
	o4 := run(4)
	if o1.moved == 0 {
		t.Fatal("repair path not exercised: no cells moved by repairOverflow; tighten the instance")
	}
	if o1.moved != o4.moved {
		t.Fatalf("repair moves differ: %v (1 worker) vs %v (4 workers)", o1.moved, o4.moved)
	}
	if o1.overflow != o4.overflow {
		t.Fatalf("RoundingOverflow differs: %g vs %g", o1.overflow, o4.overflow)
	}
	for i := range o1.regions {
		if o1.regions[i] != o4.regions[i] {
			t.Fatalf("cell %d: assignment differs between 1 and 4 workers: %v vs %v", i, o1.regions[i], o4.regions[i])
		}
	}
	for i := range o1.pos {
		if o1.pos[i] != o4.pos[i] {
			t.Fatalf("position %d differs: %g vs %g", i, o1.pos[i], o4.pos[i])
		}
	}
}

func TestPartitionFeasibleStartStaysPut(t *testing.T) {
	// Cells evenly spread well under capacity: no external flow should be
	// needed and cells stay in their windows.
	wr := build(t, nil, 4, 4, 1.0, nil)
	n := netlist.New(chip, 1)
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < 4; ix++ {
			id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
			n.SetPos(id, geom.Point{X: float64(ix)*4 + 2, Y: float64(iy)*4 + 2})
		}
	}
	res, err := Partition(n, wr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumExternals != 0 {
		t.Fatalf("NumExternals = %d, want 0", res.Stats.NumExternals)
	}
	for i := range n.Cells {
		want := wr.Grid.LocateIndex(geom.Point{X: float64(i%4)*4 + 2, Y: float64(i/4)*4 + 2})
		if int(res.CellRegion[i].Window) != want {
			t.Fatalf("cell %d moved to window %d, want %d", i, res.CellRegion[i].Window, want)
		}
	}
}

func TestPartitionWithBlockages(t *testing.T) {
	// A macro blocks the center; cells crowded next to it must flow
	// around it.
	blk := geom.RectSet{{Xlo: 4, Ylo: 4, Xhi: 12, Yhi: 12}}
	wr := build(t, nil, 4, 4, 1.0, blk)
	n := clusterNetlist(100, geom.Point{X: 2, Y: 2}, netlist.NoMovebound)
	res, err := Partition(n, wr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Cells {
		if res.CellRegion[i].Window < 0 {
			t.Fatalf("cell %d unassigned", i)
		}
	}
}

func TestModelSizeLinearInWindows(t *testing.T) {
	// |V| and |E| grow linearly with |W| + |R| (paper Table I): doubling
	// the grid in each dimension must roughly quadruple nodes and arcs,
	// never more than a constant factor of the window count.
	n := clusterNetlist(64, geom.Point{X: 8, Y: 8}, netlist.NoMovebound)
	var prevNodes int
	for _, k := range []int{2, 4, 8} {
		wr := build(t, nil, k, k, 1.0, nil)
		m := BuildModel(n, wr, wr.Grid.AssignCells(n))
		ratio := float64(m.Stats.NumArcs) / float64(m.Stats.NumNodes)
		if ratio > 8 {
			t.Fatalf("grid %dx%d: |E|/|V| = %.1f, want bounded", k, k, ratio)
		}
		if prevNodes > 0 && m.Stats.NumNodes > prevNodes*5 {
			t.Fatalf("node growth superlinear: %d -> %d", prevNodes, m.Stats.NumNodes)
		}
		prevNodes = m.Stats.NumNodes
	}
}

func TestFigure4RealizationTrace(t *testing.T) {
	// Figure 4: a 2x2 grid with one overloaded window; after the MCF
	// solve there is at least one flow-carrying external edge, and after
	// realization all windows respect capacity.
	wr := build(t, nil, 2, 2, 1.0, nil)
	n := clusterNetlist(80, geom.Point{X: 4, Y: 4}, netlist.NoMovebound)
	assign := wr.Grid.AssignCells(n)
	m := BuildModel(n, wr, assign)
	if err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.NumExternals == 0 {
		t.Fatal("no flow-carrying external edges")
	}
	res, err := Realize(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	winLoad := make([]float64, 4)
	for i := range n.Cells {
		winLoad[res.CellRegion[i].Window] += n.Cells[i].Size()
	}
	for w, load := range winLoad {
		if load > wr.WindowCapacity(w)+2 {
			t.Fatalf("window %d overloaded after realization: %g > %g", w, load, wr.WindowCapacity(w))
		}
	}
}

func TestDirName(t *testing.T) {
	want := []string{"N", "E", "S", "W"}
	for d, s := range want {
		if DirName(d) != s {
			t.Fatalf("DirName(%d) = %s", d, DirName(d))
		}
	}
}

func TestWrapUnitErr(t *testing.T) {
	if wrapUnitErr(3, "realize", nil) != nil {
		t.Fatal("nil error was wrapped")
	}
	// Context errors pass through unwrapped so callers can match them
	// with errors.Is against the context sentinels.
	if got := wrapUnitErr(3, "realize", context.Canceled); got != context.Canceled {
		t.Fatalf("context error was wrapped: %v", got)
	}
	plain := errors.New("transport blew up")
	err := wrapUnitErr(7, "final", plain)
	var ue *UnitError
	if !errors.As(err, &ue) || ue.Window != 7 || ue.Phase != "final" || !errors.Is(err, plain) {
		t.Fatalf("wrapped error lost identity: %+v", err)
	}
	// Re-wrapping an already attributed error must not stack windows.
	if again := wrapUnitErr(9, "realize", err); again != err {
		t.Fatalf("UnitError was double-wrapped: %v", again)
	}
}
