// Package fbp implements the paper's core contribution (§IV): flow-based
// partitioning. A global MinCostFlow model — whose size is linear in the
// number of windows and regions, independent of the cell count — computes
// movement directions and amounts; local realization steps (local QP plus
// transportation partitioning over 3x3 coarse windows, processed in
// topological order of the flow-carrying external edges) turn the flow
// into an actual cell-to-region partitioning. The partitioning is feasible
// for any initial placement whenever a fractional placement with
// movebounds exists (Theorem 3).
package fbp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fbplace/internal/degrade"
	"fbplace/internal/flow"
	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/qp"
	"fbplace/internal/transport"
)

// Directions of the four transit nodes per window and movebound class.
const (
	DirN = iota
	DirE
	DirS
	DirW
	numDirs
)

// DirName returns the compass name of a transit direction.
func DirName(d int) string { return [...]string{"N", "E", "S", "W"}[d] }

// Config tunes the partitioning.
type Config struct {
	// LocalQP enables the connectivity-aware local QP before each coarse
	// window transportation (paper §IV.B). Default true via DefaultConfig.
	LocalQP bool
	// QP are the options of the local QP solves.
	QP qp.Options
	// Workers bounds the parallel realization workers; 0 means
	// GOMAXPROCS.
	Workers int
	// Density is the target placement density used when capacities were
	// built; kept for diagnostics only.
	Density float64
	// Obs, when non-nil, records phase spans (fbp.build / fbp.solve /
	// fbp.realize with per-wave children) and solver counters.
	Obs *obs.Recorder
	// Ctx, when non-nil, cancels the partitioning: it is threaded into the
	// MCF solve, the realization waves and their local QP and
	// transportation solves. A canceled or expired context aborts within
	// one wave and propagates the context's error.
	Ctx context.Context
	// Degrade, when non-nil, records solver fallbacks (NS stall -> SSP,
	// condensed transport -> reference engine, local CG -> anchor
	// solution). The fallbacks themselves are always on; the log only
	// makes them visible.
	Degrade *degrade.Log
	// PairPass enables the neighbor-pair reoptimization at deep levels:
	// once the grid has at least PairPassMinWindows windows, a wave unit
	// realizes its outgoing flow one neighbor window at a time with tiny
	// two-window transportations instead of one 3x3-block problem whose
	// size is dominated by neighbors the unit does not even ship to.
	// Results differ from the block path (both are valid realizations of
	// the same MCF solution) but stay deterministic across worker counts.
	// Default true via DefaultConfig.
	PairPass bool
	// PairPassMinWindows is the window-count threshold that activates the
	// pair pass; 0 means 256 (grids of 16x16 and finer).
	PairPassMinWindows int
	// ParallelWindows unlocks the scheduling-dependent fast paths of the
	// realization transport: speculative per-window splitting of block
	// transportations with first-in-order merging, and cross-unit
	// warm-start basis reuse from the per-worker scratch. Off by default:
	// with the flag on, results remain capacity-feasible and within noise
	// on quality, but are no longer bit-identical to the default mode.
	ParallelWindows bool
	// Check, when non-nil, certifies intermediate solver results: the MCF
	// solution right after Solve and every realization transportation
	// right after its engine returns. Failures propagate as the checker's
	// error (internal/certify returns *certify.Error), which callers use
	// to trigger safe-mode repair. The interface lives here rather than
	// importing internal/certify so the dependency keeps pointing from the
	// certifier at the solvers, never back.
	Check Checker
	// CondensedOnly disables the warm-startable network-simplex
	// transportation rungs of the realization, keeping every block on the
	// condensed/reference chain. Safe mode sets it so a repair run shares
	// no engine state with the run that failed certification.
	CondensedOnly bool
}

// Checker certifies intermediate solver results (implemented by
// internal/certify.Checker). Implementations must be safe for concurrent
// use: realization workers certify transportations in parallel.
type Checker interface {
	// Flow certifies a solved min-cost-flow instance (dual feasibility,
	// complementary slackness, conservation).
	Flow(g *flow.MinCostFlow) error
	// Transport certifies a transportation solution against its instance
	// (row conservation, capacity feasibility, admissibility).
	Transport(p *transport.Problem, sol *transport.Solution) error
}

// DefaultConfig returns the configuration used by the placer.
func DefaultConfig() Config {
	return Config{LocalQP: true, PairPass: true}
}

// Stats reports instance sizes and phase runtimes (paper Table I).
type Stats struct {
	NumNodes     int
	NumArcs      int
	NumWindows   int
	NumRegions   int
	NumExternals int // flow-carrying external edges
	BuildTime    time.Duration
	SolveTime    time.Duration
	RealizeTime  time.Duration
	// Waves is the number of parallel realization waves executed.
	Waves int
	// NSPivots is the network-simplex pivot count of the MCF solve.
	NSPivots int
	// LocalQPSolves and LocalCGIters aggregate the realization-local QP
	// effort (total CG iterations over both axes).
	LocalQPSolves int64
	LocalCGIters  int64
}

// External is one pair of opposite zero-cost arcs between facing transit
// nodes of adjacent windows (the E^ext of §IV.A). After Solve, Flow holds
// the net flow From -> To of the flow-carrying direction.
type External struct {
	Class    int
	From, To int // window indices
	FromDir  int // direction of the transit node in From
	ToDir    int // direction of the transit node in To
	arcFwd   flow.ArcID
	arcBwd   flow.ArcID
	Flow     float64
}

// Model is the assembled MinCostFlow instance together with the node maps
// needed to interpret the solution.
type Model struct {
	N       *netlist.Netlist
	WR      *grid.WindowRegions
	Classes int // number of movebounds + 1 (unbounded)

	// Obs records spans and counters when non-nil (set by Partition from
	// Config.Obs; callers driving BuildModel/Solve/Realize directly may
	// set it themselves).
	Obs *obs.Recorder
	// Degrade, when non-nil, records the NS-stall -> SSP fallback of Solve
	// (set by Partition from Config.Degrade).
	Degrade *degrade.Log

	G *flow.MinCostFlow
	// cellGroupNode[class*W + w] = node id or -1.
	cellGroupNode []int32
	// transitNode[(class*W + w)*4 + dir] = node id or -1.
	transitNode []int32
	// regionNode[w][k] = node id of window-region k of window w.
	regionNode [][]int32
	// groupSupply[class*W + w] = total cell area of the group.
	groupSupply []float64
	// classWindows[class] = half-open window coordinate range (ix0, iy0,
	// ix1, iy1) where the class has nodes.
	classWindows [][4]int

	Externals []External
	Stats     Stats
}

// classOf maps a cell's movebound to its class index (movebounds first,
// unbounded last).
func classOf(mb, numMB int) int {
	if mb == netlist.NoMovebound {
		return numMB
	}
	return mb
}

// TransitPos returns the embedding of transit node dir of window w: the
// middle of the corresponding window boundary.
func TransitPos(g *grid.Grid, w, dir int) geom.Point {
	r := g.WindowRect(w)
	c := r.Center()
	switch dir {
	case DirN:
		return geom.Point{X: c.X, Y: r.Yhi}
	case DirE:
		return geom.Point{X: r.Xhi, Y: c.Y}
	case DirS:
		return geom.Point{X: c.X, Y: r.Ylo}
	default:
		return geom.Point{X: r.Xlo, Y: c.Y}
	}
}

// BuildModel assembles the MinCostFlow instance of §IV.A for the given
// cell-to-window assignment (from a previous QP or partitioning).
// assign[i] is the window of movable cell i (-1 for fixed cells).
func BuildModel(n *netlist.Netlist, wr *grid.WindowRegions, assign []int) *Model {
	start := time.Now() //fbpvet:allow timing feeds Stats.BuildTime only, never positions
	g := wr.Grid
	W := g.NumWindows()
	numMB := len(wr.Decomp.Movebounds)
	classes := numMB + 1

	m := &Model{
		N:             n,
		WR:            wr,
		Classes:       classes,
		G:             flow.NewMinCostFlow(0),
		cellGroupNode: make([]int32, classes*W),
		transitNode:   make([]int32, classes*W*numDirs),
		regionNode:    make([][]int32, W),
		groupSupply:   make([]float64, classes*W),
		classWindows:  make([][4]int, classes),
	}
	for i := range m.cellGroupNode {
		m.cellGroupNode[i] = -1
	}
	for i := range m.transitNode {
		m.transitNode[i] = -1
	}

	// Cell group supplies and centers of gravity.
	cogX := make([]float64, classes*W)
	cogY := make([]float64, classes*W)
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Fixed || assign[i] < 0 {
			continue
		}
		cls := classOf(c.Movebound, numMB)
		key := cls*W + assign[i]
		s := c.Size()
		m.groupSupply[key] += s
		cogX[key] += s * n.X[i]
		cogY[key] += s * n.Y[i]
	}

	// Window coordinate range per class: movebound bbox union windows
	// holding its cells (cells may start outside the bbox); unbounded
	// class spans the whole grid.
	for cls := 0; cls < classes; cls++ {
		if cls == numMB {
			m.classWindows[cls] = [4]int{0, 0, g.Nx - 1, g.Ny - 1}
			continue
		}
		bb := wr.Decomp.Movebounds[cls].Area.BBox()
		ix0, iy0 := g.Locate(geom.Point{X: bb.Xlo + 1e-12, Y: bb.Ylo + 1e-12})
		ix1, iy1 := g.Locate(geom.Point{X: bb.Xhi - 1e-12, Y: bb.Yhi - 1e-12})
		for w := 0; w < W; w++ {
			if m.groupSupply[cls*W+w] > 0 {
				x, y := g.Coords(w)
				if x < ix0 {
					ix0 = x
				}
				if x > ix1 {
					ix1 = x
				}
				if y < iy0 {
					iy0 = y
				}
				if y > iy1 {
					iy1 = y
				}
			}
		}
		m.classWindows[cls] = [4]int{ix0, iy0, ix1, iy1}
	}

	// Region nodes (shared by all classes) with demand -capacity.
	for w := 0; w < W; w++ {
		regs := wr.PerWin[w]
		m.regionNode[w] = make([]int32, len(regs))
		for k := range regs {
			node := m.G.AddNode()
			m.regionNode[w][k] = int32(node)
			m.G.SetSupply(node, -regs[k].Capacity)
		}
	}

	// Per class and window: cell group node (if cells present) and
	// transit nodes (within the class window range), plus internal edges.
	for cls := 0; cls < classes; cls++ {
		r := m.classWindows[cls]
		for iy := r[1]; iy <= r[3]; iy++ {
			for ix := r[0]; ix <= r[2]; ix++ {
				w := g.Index(ix, iy)
				// Transit nodes.
				for dir := 0; dir < numDirs; dir++ {
					m.transitNode[(cls*W+w)*numDirs+dir] = int32(m.G.AddNode())
				}
				// Cell group node where supply exists.
				key := cls*W + w
				if m.groupSupply[key] > 0 {
					node := m.G.AddNode()
					m.cellGroupNode[key] = int32(node)
					m.G.SetSupply(node, m.groupSupply[key])
				}
			}
		}
	}
	// Edges. Costs are L1 distances between node embeddings.
	mb := func(cls int) int {
		if cls == numMB {
			return netlist.NoMovebound
		}
		return cls
	}
	for cls := 0; cls < classes; cls++ {
		r := m.classWindows[cls]
		for iy := r[1]; iy <= r[3]; iy++ {
			for ix := r[0]; ix <= r[2]; ix++ {
				w := g.Index(ix, iy)
				key := cls*W + w
				groupNode := m.cellGroupNode[key]
				var groupPos geom.Point
				if groupNode >= 0 {
					s := m.groupSupply[key]
					groupPos = geom.Point{X: cogX[key] / s, Y: cogY[key] / s}
				}
				transit := func(dir int) int32 { return m.transitNode[key*numDirs+dir] }
				// E^tt: transit <-> transit within the window.
				for d1 := 0; d1 < numDirs; d1++ {
					p1 := TransitPos(g, w, d1)
					for d2 := 0; d2 < numDirs; d2++ {
						if d1 == d2 {
							continue
						}
						m.G.AddArc(int(transit(d1)), int(transit(d2)), flow.Inf, p1.DistL1(TransitPos(g, w, d2)))
					}
				}
				// E^tr and E^cr, E^ct.
				for k := range wr.PerWin[w] {
					reg := &wr.PerWin[w][k]
					if !wr.Decomp.Admissible(mb(cls), reg.Region) {
						continue
					}
					rn := int(m.regionNode[w][k])
					for dir := 0; dir < numDirs; dir++ {
						m.G.AddArc(int(transit(dir)), rn, flow.Inf, TransitPos(g, w, dir).DistL1(reg.Center))
					}
					if groupNode >= 0 {
						m.G.AddArc(int(groupNode), rn, flow.Inf, groupPos.DistL1(reg.Center))
					}
				}
				if groupNode >= 0 {
					for dir := 0; dir < numDirs; dir++ {
						m.G.AddArc(int(groupNode), int(transit(dir)), flow.Inf, groupPos.DistL1(TransitPos(g, w, dir)))
					}
				}
				// E^ext: east and north neighbors (both directions each).
				if ix+1 <= r[2] {
					m.addExternal(cls, w, DirE, g.Index(ix+1, iy), DirW)
				}
				if iy+1 <= r[3] {
					m.addExternal(cls, w, DirN, g.Index(ix, iy+1), DirS)
				}
			}
		}
	}
	m.Stats.NumNodes = m.G.NumNodes()
	m.Stats.NumArcs = m.G.NumArcs()
	m.Stats.NumWindows = W
	m.Stats.NumRegions = wr.NumRegions()
	m.Stats.BuildTime = time.Since(start) //fbpvet:allow reporting-only duration
	return m
}

// addExternal adds the arc pair between facing transit nodes. The paper
// prices external edges at zero; we add a tiny epsilon (0.1% of the
// window perimeter) purely as a tie-breaker: the network simplex would
// otherwise be free to pick optima that wander through long chains of the
// zero-cost transit mesh, and the realization would physically ship cells
// along those detours.
func (m *Model) addExternal(cls, from, fromDir, to, toDir int) {
	W := m.WR.Grid.NumWindows()
	a := m.transitNode[(cls*W+from)*numDirs+fromDir]
	b := m.transitNode[(cls*W+to)*numDirs+toDir]
	if a < 0 || b < 0 {
		return
	}
	wrect := m.WR.Grid.WindowRect(from)
	eps := 1e-3 * (wrect.Width() + wrect.Height())
	fwd := m.G.AddArc(int(a), int(b), flow.Inf, eps)
	bwd := m.G.AddArc(int(b), int(a), flow.Inf, eps)
	m.Externals = append(m.Externals, External{
		Class: cls, From: from, To: to, FromDir: fromDir, ToDir: toDir,
		arcFwd: fwd, arcBwd: bwd,
	})
}

// ErrInfeasible wraps flow infeasibility with the paper's interpretation.
type ErrInfeasible struct {
	Unrouted float64
}

func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("fbp: no fractional placement with movebounds exists (%g cell area cannot be absorbed)", e.Unrouted)
}

// Solve runs the MinCostFlow and populates the external edge flows. Per
// Theorem 3 it returns *ErrInfeasible exactly when no fractional placement
// with movebounds exists for the given capacities.
func (m *Model) Solve() error {
	sp := m.Obs.StartSpan("fbp.solve")
	defer sp.End()
	start := time.Now() //fbpvet:allow timing feeds Stats.SolveTime only, never positions
	// Network simplex, as in the paper ("computed by a (sequential)
	// NetworkSimplex algorithm"): the zero-cost transit mesh makes
	// augmenting-path solvers churn, while tree pivots handle it well.
	m.G.Obs = m.Obs
	_, err := m.G.SolveNS()
	if err != nil {
		// Fallback chain: a stalled simplex says nothing about
		// feasibility, so the unconditionally terminating successive
		// shortest path solver acts as the oracle. Infeasibility and
		// cancellation are NOT stalls and propagate directly.
		var stalled *flow.ErrStalled
		if errors.As(err, &stalled) {
			m.Degrade.Add("flow.ns", "ssp", err.Error())
			_, err = m.G.Solve()
		}
	}
	m.Stats.SolveTime = time.Since(start) //fbpvet:allow reporting-only duration
	m.Stats.NSPivots = m.G.Pivots
	sp.Attr("pivots", float64(m.G.Pivots))
	if err != nil {
		if inf, ok := err.(*flow.ErrInfeasible); ok {
			return &ErrInfeasible{Unrouted: inf.Unrouted}
		}
		return err
	}
	// Net flow per external pair; opposite flows cancel (an optimal
	// solution never carries both, but rounding may leave dust).
	count := 0
	for i := range m.Externals {
		e := &m.Externals[i]
		net := m.G.Flow(e.arcFwd) - m.G.Flow(e.arcBwd)
		if net < 0 {
			// Flow runs To -> From; normalize the record.
			e.From, e.To = e.To, e.From
			e.FromDir, e.ToDir = e.ToDir, e.FromDir
			net = -net
		}
		e.Flow = net
		if net > flow.Eps {
			count++
		}
	}
	m.Stats.NumExternals = count
	return nil
}
