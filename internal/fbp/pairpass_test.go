package fbp

import (
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/region"
)

// crowdedNetlist builds a connected, crowded instance: numCells random
// cells piled into the lower-left quarter with random two-pin nets.
func crowdedNetlist(seed int64, numCells int) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New(chip, 1)
	for i := 0; i < numCells; i++ {
		mb := netlist.NoMovebound
		if i%4 == 0 {
			mb = 0
		}
		id := n.AddCell(netlist.Cell{Width: 0.4 + 0.8*rng.Float64(), Height: 1, Movebound: mb})
		n.SetPos(id, geom.Point{X: rng.Float64() * 6, Y: rng.Float64() * 6})
	}
	for e := 0; e < numCells; e++ {
		i, j := rng.Intn(numCells), rng.Intn(numCells)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	return n
}

// The pair pass must stay bit-identical across worker counts: within a
// wave the pair footprints (window + 4-neighborhood) are disjoint and all
// cross-footprint reads go through the wave snapshot, so scheduling must
// not leak into assignments or positions. Exercised on two instances with
// different movebound pressure.
func TestPairPassDeterministicAcrossWorkers(t *testing.T) {
	instances := []struct {
		name  string
		seed  int64
		cells int
		mbs   []region.Movebound
	}{
		{"open", 5, 170, []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 8, Ylo: 0, Xhi: 16, Yhi: 16}}}}},
		{"tight", 17, 210, []region.Movebound{{Name: "M", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 7, Yhi: 7}}}}},
	}
	for _, inst := range instances {
		t.Run(inst.name, func(t *testing.T) {
			base := crowdedNetlist(inst.seed, inst.cells)
			run := func(workers int) ([]RegionRef, []float64, float64) {
				n := base.Clone()
				wr := build(t, inst.mbs, 4, 4, 1.0, nil)
				rec := obs.New(nil)
				cfg := DefaultConfig()
				cfg.Workers = workers
				cfg.Obs = rec
				cfg.PairPassMinWindows = 1 // force pair mode on the 4x4 grid
				res, err := Partition(n, wr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				pos := append(append([]float64(nil), n.X...), n.Y...)
				return res.CellRegion, pos, rec.Counter("realize.pairpass")
			}
			r1, p1, pairs1 := run(1)
			r4, p4, pairs4 := run(4)
			if pairs1 == 0 {
				t.Fatal("pair pass not exercised: realize.pairpass = 0")
			}
			if pairs1 != pairs4 {
				t.Fatalf("pair-step count differs: %v (1 worker) vs %v (4 workers)", pairs1, pairs4)
			}
			for i := range r1 {
				if r1[i] != r4[i] {
					t.Fatalf("cell %d: assignment differs between 1 and 4 workers: %v vs %v", i, r1[i], r4[i])
				}
			}
			for i := range p1 {
				if p1[i] != p4[i] {
					t.Fatalf("position %d differs: %g vs %g", i, p1[i], p4[i])
				}
			}
		})
	}
}

// The pair pass is a different realization order of the same MCF solution,
// so the partitioning guarantees must survive it unchanged: every cell
// assigned, regions respected up to one rounded cell, positions inside
// the assigned regions.
func TestPairPassRespectsCapacities(t *testing.T) {
	wr := build(t, nil, 4, 4, 1.0, nil)
	n := clusterNetlist(240, geom.Point{X: 1, Y: 1}, netlist.NoMovebound)
	rec := obs.New(nil)
	cfg := DefaultConfig()
	cfg.Obs = rec
	cfg.PairPassMinWindows = 1
	res, err := Partition(n, wr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counter("realize.pairpass") == 0 {
		t.Fatal("pair pass not exercised")
	}
	usage := make(map[RegionRef]float64)
	for i := range n.Cells {
		ref := res.CellRegion[i]
		if ref.Window < 0 {
			t.Fatalf("cell %d unassigned", i)
		}
		usage[ref] += n.Cells[i].Size()
	}
	for ref, u := range usage {
		c := wr.PerWin[ref.Window][ref.Index].Capacity
		if u > c+2.0 { // one rounded cell of slack
			t.Fatalf("region %v overfilled: %g > %g", ref, u, c)
		}
	}
	for i := range n.Cells {
		ref := res.CellRegion[i]
		rs := wr.PerWin[ref.Window][ref.Index].Rects
		if !rs.Contains(n.Pos(netlist.CellID(i))) {
			t.Fatalf("cell %d at %v outside its region", i, n.Pos(netlist.CellID(i)))
		}
	}
}

// hotspotNetlist spreads background cells over the whole chip and piles a
// cluster into one window: the cluster drives external flow while the
// rest of the chip keeps capacity slack — the regime where the
// ParallelWindows split merge is jointly feasible and accepted.
func hotspotNetlist(seed int64, spread, cluster int) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New(chip, 1)
	for i := 0; i < spread; i++ {
		id := n.AddCell(netlist.Cell{Width: 0.5, Height: 1, Movebound: netlist.NoMovebound})
		n.SetPos(id, geom.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16})
	}
	for i := 0; i < cluster; i++ {
		id := n.AddCell(netlist.Cell{Width: 0.5, Height: 1, Movebound: netlist.NoMovebound})
		n.SetPos(id, geom.Point{X: 1 + 2*rng.Float64(), Y: 1 + 2*rng.Float64()})
	}
	// Sparse connectivity: enough nets for a meaningful HPWL, few enough
	// that the local QP does not drag every window toward one hot region.
	total := spread + cluster
	for e := 0; e < total/4; e++ {
		i, j := rng.Intn(total), rng.Intn(total)
		if i != j {
			n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
		}
	}
	return n
}

// ParallelWindows trades bit-identity for speculative per-window
// transports; quality must stay within noise of the default mode: HPWL
// within 0.5%, capacities still respected, split path actually taken.
func TestParallelWindowsQualityParity(t *testing.T) {
	base := hotspotNetlist(29, 130, 44)
	wr := build(t, nil, 4, 4, 1.0, nil)
	run := func(parallel bool) (float64, *netlist.Netlist, []RegionRef, float64) {
		n := base.Clone()
		rec := obs.New(nil)
		cfg := DefaultConfig()
		cfg.Obs = rec
		cfg.ParallelWindows = parallel
		cfg.LocalQP = false // parity targets the transport merge; QP noise would mask it
		res, err := Partition(n, wr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hpwl := 0.0
		for id := range n.Nets {
			hpwl += n.NetHPWL(netlist.NetID(id))
		}
		return hpwl, n, res.CellRegion, rec.Counter("realize.parwin")
	}
	hOff, _, _, _ := run(false)
	hOn, n, regions, splits := run(true)
	if splits == 0 {
		t.Fatal("split path not exercised: realize.parwin = 0")
	}
	if math.Abs(hOn-hOff) > 0.005*hOff {
		t.Fatalf("HPWL parity broken: %g (parallel) vs %g (default), drift %.3f%%",
			hOn, hOff, 100*math.Abs(hOn-hOff)/hOff)
	}
	usage := make(map[RegionRef]float64)
	for i := range n.Cells {
		ref := regions[i]
		if ref.Window < 0 {
			t.Fatalf("cell %d unassigned", i)
		}
		usage[ref] += n.Cells[i].Size()
	}
	for ref, u := range usage {
		c := wr.PerWin[ref.Window][ref.Index].Capacity
		if u > c+2.0 {
			t.Fatalf("region %v overfilled under ParallelWindows: %g > %g", ref, u, c)
		}
	}
}
