// Package analyze is a small static-analysis framework on the standard
// library's go/ast, go/parser, go/types and go/importer — deliberately not
// golang.org/x/tools — plus the repo-specific analyzers enforced by
// cmd/fbpvet. It exists because `go vet` cannot see repository contracts:
// "never range over a map in a solver package", "every obs span must be
// ended", "no global RNG outside tests". Those invariants guard the
// paper's central reproducibility claim — placements must be bit-identical
// across runs and worker counts — so they are checked by machine, in CI,
// not by code review.
//
// A diagnostic can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//fbpvet:orderok reduction is commutative
//	for k, v := range usage { total += v }
//
// Each analyzer owns one directive suffix (maporder → orderok, floatcmp →
// floatok, spanend → spanok, errdrop → errok, seededrand → randok;
// panicfree and the concurrency family — mutexguard, ctxrelease, goroleak,
// atomicmix, walltime — share the generic allow);
// //fbpvet:ignore suppresses every analyzer on its line. Directives should
// carry a reason after the tag, like nolint comments in production Go
// services.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it and
// a human-readable message. cmd/fbpvet prints these as
// "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the driver's output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package held by the Pass
// and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("maporder").
	Name string
	// Doc is a one-paragraph description shown by `fbpvet -list`.
	Doc string
	// Directive is the suppression suffix: a comment //fbpvet:<Directive>
	// on the diagnostic's line (or the line above) silences the finding.
	Directive string
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags    *[]Diagnostic
	suppress map[suppressKey]bool
}

type suppressKey struct {
	file      string
	line      int
	directive string
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers that only bind non-test code (errdrop, seededrand, spanend)
// use this to exempt tests.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Reportf records a diagnostic at pos unless a suppression directive for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	for _, dir := range []string{p.Analyzer.Directive, "ignore"} {
		if dir == "" {
			continue
		}
		// The directive covers its own line (end-of-line comment) and the
		// line below it (comment above the statement).
		if p.suppress[suppressKey{pos.Filename, pos.Line, dir}] ||
			p.suppress[suppressKey{pos.Filename, pos.Line - 1, dir}] {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics sorted by file, line and analyzer.
func Run(pkg *Pkg, analyzers []*Analyzer) []Diagnostic {
	suppress := directiveIndex(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			suppress: suppress,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directiveIndex scans every comment for //fbpvet:<directive> tags and
// records (file, line, directive) triples for suppression lookup.
func directiveIndex(fset *token.FileSet, files []*ast.File) map[suppressKey]bool {
	idx := map[suppressKey]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "//fbpvet:")
				if i < 0 {
					continue
				}
				tag := text[i+len("//fbpvet:"):]
				// The directive is the first word; anything after is the
				// human reason.
				if j := strings.IndexAny(tag, " \t"); j >= 0 {
					tag = tag[:j]
				}
				if tag == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				idx[suppressKey{pos.Filename, pos.Line, tag}] = true
			}
		}
	}
	return idx
}

// All returns every registered analyzer in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder, FloatCmp, SpanEnd, ErrDrop, SeededRand, PanicFree,
		MutexGuard, CtxRelease, GoroLeak, AtomicMix, WallTime,
	}
}
