package analyze

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements that silently discard an error return in
// non-test code. A placer that swallows a transportation or I/O error
// produces a wrong placement instead of a failure — in a batch pipeline
// the wrong answer is far more expensive than the crash.
//
// Deliberate drops must be visible: assign to `_` (which this analyzer
// accepts — the blank assignment is the annotation) or carry
// //fbpvet:errok with a reason. Two classes of calls are exempt because
// their errors are structurally unreachable or surfaced elsewhere:
// fmt.Print/Println/Printf to stdout, fmt.Fprint* directly to os.Stdout /
// os.Stderr (a process has nowhere better to report its own terminal
// failing), and writes to in-memory or sticky-error writers
// (*strings.Builder, *bytes.Buffer, *bufio.Writer, *tabwriter.Writer)
// whose write errors are either impossible or reported by the final Flush.
var ErrDrop = &Analyzer{
	Name:      "errdrop",
	Directive: "errok",
	Doc: "flags statements that discard an error return value in non-test " +
		"code; handle the error, assign it to _ explicitly, or annotate " +
		"//fbpvet:errok <reason>",
	Run: runErrDrop,
}

// safeWriters are io.Writer implementations whose Write cannot fail
// meaningfully: in-memory buffers, plus bufio/tabwriter whose errors are
// sticky and returned by Flush.
var safeWriters = map[string]bool{
	"*strings.Builder":       true,
	"*bytes.Buffer":          true,
	"*bufio.Writer":          true,
	"*text/tabwriter.Writer": true,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || exemptErrDrop(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "error returned by %s is silently dropped; handle it or assign to _", types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

func exemptErrDrop(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	// Methods on safe writers (sb.WriteString, buf.WriteByte, ...).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if safeWriters[sig.Recv().Type().String()] {
			return true
		}
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Println", "Printf":
		return true
	case "Fprint", "Fprintln", "Fprintf":
		if len(call.Args) > 0 {
			if t := p.TypeOf(call.Args[0]); t != nil && safeWriters[t.String()] {
				return true
			}
			if isStdStream(p, call.Args[0]) {
				return true
			}
		}
	}
	return false
}

// isStdStream reports whether e refers to the os.Stdout or os.Stderr
// package variables.
func isStdStream(p *Pass, e ast.Expr) bool {
	var obj types.Object
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj = p.Info.Uses[v.Sel]
	case *ast.Ident:
		obj = p.Info.Uses[v]
	}
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}
