// Scope fixture: package "serve" is not in the deterministic set, so
// walltime must stay silent even on bare wall-clock reads.
package serve

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func stamp() time.Time {
	return time.Now()
}
