// Fixture for the atomicmix analyzer: fields and package vars accessed
// both through sync/atomic and with plain loads/stores.
package fixture

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	plain  int64 // never touched atomically: free to access directly
}

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) rawRead() int64 {
	return s.hits // violation: hits is atomically added in record
}

func (s *stats) rawWrite() {
	s.hits = 0 // violation: racy reset of an atomic counter
}

func (s *stats) atomicRead() int64 {
	return atomic.LoadInt64(&s.hits) // ok: atomic access
}

func (s *stats) mixedMisses() int64 {
	atomic.StoreInt64(&s.misses, 0)
	return s.misses // violation: stored atomically above
}

func (s *stats) plainOnly() int64 {
	s.plain++
	return s.plain // ok: never in the atomic set
}

func (s *stats) suppressedRead() int64 {
	//fbpvet:allow snapshot during single-threaded shutdown
	return s.hits
}

var generation int64

func bump() {
	atomic.AddInt64(&generation, 1)
}

func rawGeneration() int64 {
	return generation // violation: generation is atomically bumped
}

func loadGeneration() int64 {
	return atomic.LoadInt64(&generation) // ok
}
