// Fixture for the floatcmp analyzer: package name "qp" puts it in the
// numeric kernel set.
package qp

func compare(a, b float64) int {
	if a == 0 { // clean: constant operand (sentinel check)
		return 0
	}
	if b != 1.5 { // clean: constant operand
		return 0
	}
	if a == b { // violation: computed vs computed
		return 0
	}
	if a-1 != b+1 { // violation: computed vs computed
		return 2
	}
	//fbpvet:floatok exact fixed-point short-circuit, intentional
	if a*2 == b*2 {
		return 3
	}
	return 1
}

func intsAndStrings(a, b int, s, t string) bool {
	return a == b && s != t // clean: not floating point
}
