// Fixture for the mutexguard analyzer: struct fields and a package var
// annotated "guarded by", with locked, unlocked, suppressed and exempt
// accesses.
package fixture

import "sync"

type counterBox struct {
	mu sync.Mutex
	n  int // guarded by mu
	// guarded by mu
	labels []string
	free   int // unguarded: never reported
}

var tableMu sync.Mutex

// reg is the package registry. guarded by tableMu
var reg = map[string]int{}

func lockedAccess(b *counterBox) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++ // ok: mu held via defer until return
	return b.n
}

func unlockedRead(b *counterBox) int {
	return b.n // violation: mu not held
}

func unlockEarly(b *counterBox) {
	b.mu.Lock()
	b.labels = append(b.labels, "a") // ok: held here
	b.mu.Unlock()
	b.labels = nil // violation: released above
}

func branchOnlyLock(b *counterBox, cond bool) {
	if cond {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	b.n = 0 // violation: held on one path only
}

func suppressedRead(b *counterBox) int {
	//fbpvet:allow single-threaded startup path
	return b.n
}

func freshValue() *counterBox {
	b := &counterBox{}
	b.n = 1 // ok: freshly constructed, not escaped
	return b
}

func touchLocked(b *counterBox) {
	b.n++ // ok by convention: caller holds b.mu
}

func unguardedField(b *counterBox) int {
	return b.free // ok: field carries no annotation
}

func lockedVar() {
	tableMu.Lock()
	reg["x"] = 1 // ok: package mutex held
	tableMu.Unlock()
}

func unlockedVar() int {
	return len(reg) // violation: tableMu not held
}
