// Fixture for the panicfree analyzer: raw panics, annotated
// programmer-error guards, recovery boundaries, and non-builtin shadows.
package driver

import "errors"

func rawPanic() {
	panic("boom") // violation: library panic
}

func panicValue(err error) {
	if err != nil {
		panic(err) // violation: wrap and return instead
	}
}

func mustGuard(v int) int {
	if v <= 0 {
		panic("v must be positive") //fbpvet:allow fixture: deliberate Must-style guard
	}
	return v
}

func annotatedAbove(v int) int {
	if v <= 0 {
		//fbpvet:allow fixture: directive on the line above
		panic("v must be positive")
	}
	return v
}

func returnsError(v int) (int, error) {
	if v <= 0 { // clean: the error is returned, not panicked
		return 0, errors.New("v must be positive")
	}
	return v, nil
}

// shadowed is a local function named panic-like; calling it is clean.
func shadowed() {
	panicish := func(string) {}
	panicish("not the builtin") // clean: not the panic builtin
}

func recoveryBoundary(work func()) (err error) {
	defer func() {
		if p := recover(); p != nil { // clean: recover is fine
			err = errors.New("worker panicked")
		}
	}()
	work()
	return nil
}
