// Test-file fixture: panicfree exempts _test.go files.
package driver

func panicInTest() {
	panic("tests may panic") // clean: test files are exempt
}
