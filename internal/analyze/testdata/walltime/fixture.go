// Fixture for the walltime analyzer: package name "fbp" puts it in the
// deterministic set. Wall-clock reads must flow into obs or carry an
// allow annotation.
package fbp

import (
	"time"

	"fbplace/internal/obs"
)

func rawNow() time.Time {
	return time.Now() // violation: wall clock in a deterministic package
}

func rawSince(t0 time.Time) time.Duration {
	return time.Since(t0) // violation
}

func timedPhase(rec *obs.Recorder, t0 time.Time) {
	rec.Gauge("phase_seconds", time.Since(t0).Seconds()) // ok: flows into obs
}

func annotatedStats() float64 {
	//fbpvet:allow elapsed feeds the Stats report, never positions
	start := time.Now()
	_ = start
	return 0
}

func deterministicWork(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total // ok: no wall clock at all
}
