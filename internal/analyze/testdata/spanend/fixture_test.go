// Test-file fixture: spanend exempts _test.go files, where dangling spans
// probe the recorder's edge cases.
package kernel

import "fbplace/internal/obs"

func danglingInTest(rec *obs.Recorder) {
	rec.StartSpan("dangling") // clean: test files are exempt
}
