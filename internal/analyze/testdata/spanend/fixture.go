// Fixture for the spanend analyzer, type-checked against the real
// fbplace/internal/obs package.
package kernel

import "fbplace/internal/obs"

func work() error { return nil }

func goodDefer(rec *obs.Recorder) {
	sp := rec.StartSpan("good")
	defer sp.End()
}

func goodExplicitBothPaths(rec *obs.Recorder) error {
	sp := rec.StartSpan("phase")
	if err := work(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

func goodChild(parent *obs.Span) {
	c := parent.StartChild("child")
	defer c.End()
}

func leakyVar(rec *obs.Recorder) *obs.Recorder {
	sp := rec.StartSpan("leaky") // violation: no End on any path
	_ = sp
	return rec
}

func discarded(rec *obs.Recorder) {
	rec.StartSpan("discarded") // violation: result discarded
}

func blank(rec *obs.Recorder) {
	_ = rec.StartSpan("blank") // violation: assigned to blank
}

func leakyChild(parent *obs.Span) {
	c := parent.StartChild("child") // violation: StartChild never ended
	_ = c
}

func escapes(rec *obs.Recorder) *obs.Span {
	return rec.StartSpan("escapes") // clean: caller owns the span
}

func suppressed(rec *obs.Recorder) {
	//fbpvet:spanok fixture: deliberately dangling
	rec.StartSpan("suppressed")
}
