// Fixture for the seededrand analyzer: global RNG calls, time-based
// seeds, and the allowed explicitly seeded form.
package driver

import (
	"math/rand"
	"time"
)

func globals() int {
	rand.Seed(42)                     // violation: global source
	x := rand.Intn(10)                // violation: global source
	return x + int(rand.Float64()*10) // violation: global source
}

func timeSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // violation: wall-clock seed
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // clean: explicit seeded source
	return rng.Float64()                  // clean: method on explicit Rand
}

func suppressed() int {
	//fbpvet:randok fixture: jitter only, never placement-visible
	return rand.Intn(3)
}
