// Test-file fixture: seededrand exempts _test.go files, where ad-hoc
// randomness is fine.
package driver

import (
	"math/rand"
	"time"
)

func randomInTest() int {
	rand.New(rand.NewSource(time.Now().UnixNano())) // clean: test file
	return rand.Intn(10)                            // clean: test file
}
