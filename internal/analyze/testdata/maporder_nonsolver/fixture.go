// Fixture proving maporder stays silent outside the solver packages:
// "metrics" is reporting code, where map iteration cannot perturb
// placement results.
package metrics

func tally(m map[string]int) int {
	n := 0
	for _, v := range m { // clean: not a solver package
		n += v
	}
	return n
}
