// Fixture for the goroleak analyzer: goroutines blocked forever on local
// channels, unbounded loop spawns, and the clean idioms that must stay
// silent.
package fixture

import (
	"context"
	"sync"
)

func blockedForever() {
	ch := make(chan int)
	go func() { // violation: nobody ever sends on or closes ch
		<-ch
	}()
}

func blockedRange() {
	ch := make(chan int)
	go func() { // violation: range blocks after zero deliveries
		for v := range ch {
			_ = v
		}
	}()
}

func deadSelect() {
	ch := make(chan int)
	done := make(chan struct{})
	go func() { // violation: both cases are dead local channels
		select {
		case <-ch:
		case <-done:
		}
	}()
}

func liveSelect(ctx context.Context) {
	ch := make(chan int)
	go func() { // ok: the ctx.Done() case can fire
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}()
}

func selectWithDefault() {
	ch := make(chan int)
	go func() { // ok: default never blocks
		select {
		case <-ch:
		default:
		}
	}()
}

func closedByOwner() {
	ch := make(chan int)
	go func() { // ok: the spawning function closes ch
		<-ch
	}()
	close(ch)
}

func fedBySibling() {
	ch := make(chan int)
	go func() { // ok: a sibling goroutine sends
		<-ch
	}()
	go func() {
		ch <- 1
	}()
}

func paramChannel(ch chan int) {
	go func() { // ok: channel owned by the caller
		<-ch
	}()
}

func handedOff(consume func(chan int)) {
	ch := make(chan int)
	go func() { // ok: ch escapes into consume
		<-ch
	}()
	consume(ch)
}

func suppressedBlock() {
	ch := make(chan int)
	//fbpvet:allow sentinel goroutine parked on purpose
	go func() {
		<-ch
	}()
}

func unboundedLoop(jobs []int) {
	for _, j := range jobs {
		go handle(j) // violation: no WaitGroup or semaphore in sight
	}
}

func waitGroupLoop(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) { // ok: WaitGroup-bounded
			defer wg.Done()
			handle(j)
		}(j)
	}
	wg.Wait()
}

func semaphoreLoop(jobs []int) {
	sem := make(chan struct{}, 4)
	for _, j := range jobs {
		sem <- struct{}{}
		go func(j int) { // ok: semaphore-bounded
			defer func() { <-sem }()
			handle(j)
		}(j)
	}
}

func handle(int) {}
