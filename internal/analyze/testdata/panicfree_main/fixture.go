// Scope-exempt fixture: panicfree skips package main (CLIs may panic on
// programmer error; the process is the failure domain there).
package main

func main() {
	panic("clean: package main is exempt")
}
