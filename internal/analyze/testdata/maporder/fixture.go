// Fixture for the maporder analyzer: package name "fbp" puts it in the
// solver set. Contains violating, suppressed and clean loops.
package fbp

import "sort"

func sumUsage(usage map[int]float64) float64 {
	total := 0.0
	for _, v := range usage { // violation: float sum in map order
		total += v
	}
	return total
}

func rangeKeyOnly(seen map[string]bool) int {
	n := 0
	for k := range seen { // violation: even key-only ranging is ordered
		if k != "" {
			n++
		}
	}
	return n
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//fbpvet:orderok keys are sorted immediately below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func overSlice(xs []int) int {
	s := 0
	for _, x := range xs { // clean: slice iteration is ordered
		s += x
	}
	return s
}

func keyedLookup(m map[int]int, keys []int) int {
	s := 0
	for _, k := range keys { // clean: map used for lookup, not iteration
		s += m[k]
	}
	return s
}
