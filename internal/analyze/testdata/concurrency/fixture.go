// Mixed fixture exercised by the concurrency-family e2e golden test: one
// deterministic package ("fbp") containing at least one finding for each
// of mutexguard, ctxrelease, goroleak, atomicmix and walltime, plus clean
// code that must stay silent when the five analyzers run together.
package fbp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

type pool struct {
	mu      sync.Mutex
	pending []int // guarded by mu
	done    int64
}

func (p *pool) enqueueLocked(job int) {
	p.pending = append(p.pending, job) // ok by convention: caller holds mu
}

func (p *pool) enqueue(job int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pending = append(p.pending, job) // ok: mu held
}

func (p *pool) steal() int {
	job := p.pending[0] // mutexguard: read without mu
	p.pending = p.pending[1:]
	return job
}

func (p *pool) drain(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // ctxrelease: leaked on error path
	p.mu.Lock()
	n := len(p.pending)
	p.mu.Unlock()
	if n == 0 {
		return ctx.Err()
	}
	cancel()
	return nil
}

func (p *pool) spawnAll(jobs []int) {
	for _, j := range jobs {
		go func(j int) { // goroleak: unbounded loop spawn
			atomic.AddInt64(&p.done, 1)
			_ = j
		}(j)
	}
}

func (p *pool) doneCount() int64 {
	return p.done // atomicmix: done is atomically added in spawnAll
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // walltime: wall clock in deterministic package
}

func (p *pool) watch() {
	stop := make(chan struct{})
	go func() { // goroleak: nothing ever closes stop
		<-stop
	}()
}

func cleanTimer(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}
