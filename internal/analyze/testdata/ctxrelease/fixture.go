// Fixture for the ctxrelease analyzer: cancel funcs and timers released
// on all paths, leaked on some path, discarded, suppressed and handed
// off.
package fixture

import (
	"context"
	"time"
)

func deferredCancel(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

func leakOnErrorPath(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // violation: early return skips cancel
	if err := work(ctx); err != nil {
		return err
	}
	cancel()
	return nil
}

func discardedCancel(ctx context.Context) context.Context {
	ctx, _ = context.WithCancel(ctx) // violation: cancel assigned to _
	return ctx
}

func timerAllPaths(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func timerLeaked(d time.Duration, early bool) {
	t := time.NewTimer(d) // violation: early path returns without Stop
	if early {
		return
	}
	t.Stop()
}

func timerDiscarded(fire func()) {
	time.AfterFunc(time.Second, fire) // violation: result discarded outright
}

func timerReceived(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C // ok: a fired timer needs no Stop
}

func timerHandedOff(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t // ok: caller owns the timer now
}

func suppressedLeak(ctx context.Context) context.Context {
	//fbpvet:allow context lives for the process lifetime
	ctx, _ = context.WithCancel(ctx)
	return ctx
}

type holder struct {
	cancel context.CancelFunc
}

func storedAtAcquisition(ctx context.Context, h *holder) {
	_, h.cancel = context.WithCancel(ctx) // ok: ownership transferred to h
}

func work(context.Context) error { return nil }
