// Test-file fixture: errdrop exempts _test.go files.
package driver

func dropInTest() {
	mayFail() // clean: test files are exempt
}
