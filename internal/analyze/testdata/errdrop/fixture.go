// Fixture for the errdrop analyzer: dropped errors, explicit drops, the
// exempt print/safe-writer forms.
package driver

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func multi() (int, error) { return 0, nil }

func noError() int { return 1 }

func drops(buf *bytes.Buffer) {
	mayFail()                        // violation: error dropped
	multi()                          // violation: error in tuple dropped
	noError()                        // clean: no error returned
	fmt.Println("hello")             // clean: fmt print to stdout
	fmt.Fprintf(os.Stderr, "oops\n") // clean: std stream
	fmt.Fprintln(os.Stdout, "fine")  // clean: std stream
	fmt.Fprintf(buf, "x=%d\n", 1)    // clean: in-memory writer
	var sb strings.Builder
	fmt.Fprint(&sb, "y") // clean: in-memory writer
	sb.WriteString("z")  // clean: safe-writer method
	_ = mayFail()        // clean: drop made explicit
	//fbpvet:errok fixture: error is unreachable here
	mayFail()
	if err := mayFail(); err != nil { // clean: handled
		fmt.Println(err)
	}
}
