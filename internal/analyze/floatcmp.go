package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// numericPackages hold the numeric kernels: CG, network simplex,
// transportation, geometry and the phases built on them. Exact equality
// between two *computed* floats there is almost always a latent bug —
// rounding makes it true on one code path and false on a mathematically
// identical one.
var numericPackages = map[string]bool{
	"sparse":    true,
	"qp":        true,
	"flow":      true,
	"transport": true,
	"fbp":       true,
	"legalize":  true,
	"geom":      true,
	"grid":      true,
	"detail":    true,
	"placer":    true,
	"region":    true,
}

// FloatCmp flags == and != between floating-point operands in the numeric
// kernel packages. Comparisons against a compile-time constant are exempt:
// sentinel checks like `opt.Tol == 0` (detecting the unset default) and
// exact-propagation checks against literals are deliberate and safe.
// Intentional exact comparisons between computed values (convergence
// short-circuits, sort tie-breaks on stored values) carry //fbpvet:floatok.
var FloatCmp = &Analyzer{
	Name:      "floatcmp",
	Directive: "floatok",
	Doc: "flags ==/!= between computed floating-point values in numeric kernels; " +
		"compare with a tolerance (math.Abs(a-b) < eps) or annotate " +
		"//fbpvet:floatok <reason>; comparisons against constants are exempt",
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if !numericPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if p.isConst(be.X) || p.isConst(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s between computed values %s and %s; use a tolerance or annotate //fbpvet:floatok",
				be.Op, types.ExprString(be.X), types.ExprString(be.Y))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e has a compile-time constant value.
func (p *Pass) isConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
