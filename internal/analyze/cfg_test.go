package analyze

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc gen()\nfunc kill()\nfunc other()\nfunc f(cond bool) " + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fd.Body
		}
	}
	t.Fatal("no func f")
	return nil
}

// flowFixture runs the dataflow engine with a transfer that adds the fact
// "x" at `gen()` calls and removes it at `kill()` calls, returning the
// exit facts.
func flowFixture(t *testing.T, mode flowMode, body string) facts {
	t.Helper()
	g := buildCFG(parseBody(t, body))
	transfer := func(n ast.Node, f facts) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "gen":
					f["x"] = true
				case "kill":
					delete(f, "x")
				}
			}
			return true
		})
	}
	return g.flow(mode, transfer, nil)
}

func TestFlowMustDropsBranchOnlyFacts(t *testing.T) {
	// gen on one branch only: a must-analysis cannot keep the fact.
	exit := flowFixture(t, mustIntersect, `{
		if cond {
			gen()
		}
		other()
	}`)
	if exit["x"] {
		t.Fatal("must-intersect kept a fact generated on only one branch")
	}
}

func TestFlowMustKeepsBothBranchFacts(t *testing.T) {
	exit := flowFixture(t, mustIntersect, `{
		if cond {
			gen()
		} else {
			gen()
		}
		other()
	}`)
	if !exit["x"] {
		t.Fatal("must-intersect dropped a fact generated on every branch")
	}
}

func TestFlowMayKeepsBranchOnlyFacts(t *testing.T) {
	// gen on one branch only: a may-analysis must keep the fact — this is
	// the ctxrelease "leaked on some path" semantics.
	exit := flowFixture(t, mayUnion, `{
		if cond {
			gen()
		}
		other()
	}`)
	if !exit["x"] {
		t.Fatal("may-union lost a fact generated on one branch")
	}
}

func TestFlowKillOnOnePathStillLeaksInMay(t *testing.T) {
	// Acquired everywhere, released on one branch: may-analysis keeps the
	// outstanding obligation from the other branch.
	exit := flowFixture(t, mayUnion, `{
		gen()
		if cond {
			kill()
		}
		other()
	}`)
	if !exit["x"] {
		t.Fatal("may-union lost an obligation still live on the no-kill path")
	}
}

func TestFlowEarlyReturnPathReachesExit(t *testing.T) {
	// The early return carries the live obligation to the exit even though
	// the fall-through path kills it.
	exit := flowFixture(t, mayUnion, `{
		gen()
		if cond {
			return
		}
		kill()
	}`)
	if !exit["x"] {
		t.Fatal("early-return path did not propagate its facts to the exit")
	}
}

func TestFlowLoopBackEdgeConverges(t *testing.T) {
	exit := flowFixture(t, mustIntersect, `{
		gen()
		for i := 0; i < 3; i++ {
			other()
		}
		other()
	}`)
	if !exit["x"] {
		t.Fatal("fact generated before a loop was lost across the back edge")
	}
}

func TestFlowUnreachableExit(t *testing.T) {
	exit := flowFixture(t, mustIntersect, `{
		for {
			other()
		}
	}`)
	if exit != nil {
		t.Fatalf("infinite loop: exit facts should be nil (unreachable), got %v", exit)
	}
}

func TestInspectShallowSkipsFuncLits(t *testing.T) {
	body := parseBody(t, `{
		gen()
		g := func() {
			kill()
		}
		g()
	}`)
	var names []string
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				names = append(names, id.Name)
			}
		}
		return true
	})
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "kill") {
		t.Fatalf("inspectShallow descended into a FuncLit: %s", joined)
	}
	if !strings.Contains(joined, "gen") || !strings.Contains(joined, "g") {
		t.Fatalf("inspectShallow missed top-level calls: %s", joined)
	}
}

func TestEachFuncVisitsDeclsAndLiterals(t *testing.T) {
	src := `package p

func named() {
	f := func() {
		g := func() {}
		g()
	}
	f()
}

func otherNamed() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "each_test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	decls, lits := 0, 0
	eachFunc(f, func(name string, body *ast.BlockStmt) {
		if body == nil {
			t.Fatalf("nil body for %q", name)
		}
		if name == "" {
			lits++
		} else {
			decls++
		}
	})
	if decls != 2 {
		t.Fatalf("visited %d declared functions, want 2", decls)
	}
	if lits != 2 {
		t.Fatalf("visited %d function literals (incl. nested), want 2", lits)
	}
}
