package analyze

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAnalyzersGolden type-checks each testdata fixture package and
// compares the analyzer's diagnostics against the package's expect.txt
// golden file. Every fixture mixes violating, suppressed and clean code,
// so the golden file proves the analyzer fires where it must and stays
// silent where a directive (or scope rule) applies.
//
// Regenerate the golden files with:
//
//	FBPVET_UPDATE_GOLDEN=1 go test ./internal/analyze
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		analyzer  *Analyzer
		dir       string
		wantEmpty bool // scope-exempt fixtures must produce nothing
	}{
		{MapOrder, "maporder", false},
		{MapOrder, "maporder_nonsolver", true},
		{FloatCmp, "floatcmp", false},
		{SpanEnd, "spanend", false},
		{ErrDrop, "errdrop", false},
		{SeededRand, "seededrand", false},
		{PanicFree, "panicfree", false},
		{PanicFree, "panicfree_main", true},
		{MutexGuard, "mutexguard", false},
		{CtxRelease, "ctxrelease", false},
		{GoroLeak, "goroleak", false},
		{AtomicMix, "atomicmix", false},
		{WallTime, "walltime", false},
		{WallTime, "walltime_nondet", true},
	}
	l := NewLoader(".")
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg := loadFixture(t, l, tc.dir)
			diags := Run(pkg, []*Analyzer{tc.analyzer})
			var got strings.Builder
			for _, d := range diags {
				fmt.Fprintf(&got, "%s:%d: %s: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
			}
			if tc.wantEmpty && got.Len() > 0 {
				t.Fatalf("want no diagnostics from scope-exempt fixture, got:\n%s", got.String())
			}
			if !tc.wantEmpty && got.Len() == 0 {
				t.Fatalf("analyzer %s produced no diagnostics on its violating fixture", tc.analyzer.Name)
			}
			golden := filepath.Join("testdata", tc.dir, "expect.txt")
			if os.Getenv("FBPVET_UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch\ngot:\n%swant:\n%s", got.String(), string(want))
			}
		})
	}
}

// TestConcurrencyFamilyGolden runs the five concurrency/lifecycle
// analyzers together over one mixed fixture package, proving they compose
// without double-reporting and that the combined, sorted output is stable.
// Same golden-file protocol as TestAnalyzersGolden.
func TestConcurrencyFamilyGolden(t *testing.T) {
	family := []*Analyzer{MutexGuard, CtxRelease, GoroLeak, AtomicMix, WallTime}
	l := NewLoader(".")
	pkg := loadFixture(t, l, "concurrency")
	diags := Run(pkg, family)
	var got strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&got, "%s:%d: %s: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range family {
		if !seen[a.Name] {
			t.Errorf("mixed fixture produced no %s finding", a.Name)
		}
	}
	golden := filepath.Join("testdata", "concurrency", "expect.txt")
	if os.Getenv("FBPVET_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("diagnostics mismatch\ngot:\n%swant:\n%s", got.String(), string(want))
	}
}

// loadFixture parses and type-checks one testdata fixture directory as a
// single package (the go tool ignores testdata, so the loader's
// CheckFiles entry point is used directly).
func loadFixture(t *testing.T, l *Loader, dir string) *Pkg {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(full, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := l.CheckFiles("fixture/"+dir, files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestLoadRepoPackage smoke-tests the go-list-backed loader against a real
// module package, including resolution of in-module imports.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load(".", []string{"fbplace/internal/grid"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "grid" || p.Types == nil || len(p.Files) == 0 {
		t.Fatalf("unexpected package: name=%q types=%v files=%d", p.Name, p.Types, len(p.Files))
	}
	// grid imports fbplace/internal/geom and netlist; the loader must have
	// type-checked them from source.
	if p.Types.Scope().Lookup("BuildWindowRegions") == nil {
		t.Fatal("grid.BuildWindowRegions not found in type-checked scope")
	}
}
