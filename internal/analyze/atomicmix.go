package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix enforces all-or-nothing atomicity: once a variable or struct
// field is accessed through sync/atomic anywhere in the package, every
// other access to it must also go through sync/atomic. A mixed access is
// a data race even when it "only reads a counter" — the racy read tears
// on 32-bit platforms and licenses the compiler to cache the value across
// loop iterations. qp.SolveStats is the in-repo example: its counters are
// atomically incremented on the solver hot path and must therefore be
// atomically loaded everywhere, including checkpoint snapshots.
//
// Scope is the package under analysis: the analyzer collects every
// `&x` argument to an sync/atomic Add/Load/Store/Swap/CompareAndSwap
// call, resolves the addressed field or variable to its types.Object,
// then reports any other use of that object that is not itself inside an
// atomic call's argument list. Cross-package mixing is the API's job to
// prevent — export atomic accessor methods instead of raw fields.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Directive: "allow",
	Doc: "a field or variable accessed via sync/atomic must never be " +
		"accessed non-atomically in the same package; suppress with " +
		"//fbpvet:allow <reason>",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) {
	// Pass 1: objects addressed in atomic calls, and the source ranges of
	// those calls (any identifier inside one is an atomic access).
	type span struct{ lo, hi int }
	var atomicSpans []span
	atomicObjs := map[types.Object]string{} // object -> atomic func name seen
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOp(fn.Name()) {
				return true
			}
			atomicSpans = append(atomicSpans, span{int(call.Pos()), int(call.End())})
			if len(call.Args) == 0 {
				return true
			}
			// First argument is *T: &x.f or &v.
			ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if obj := addressedObject(p, ue.X); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = "atomic." + fn.Name()
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	inAtomic := func(pos int) bool {
		for _, s := range atomicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: every other access to those objects must sit inside an
	// atomic call.
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				sel := p.Info.Selections[e]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				if what, ok := atomicObjs[sel.Obj()]; ok && !inAtomic(int(e.Pos())) {
					p.Reportf(e.Sel.Pos(), "%s is accessed with %s elsewhere in this package; this non-atomic access races with it",
						e.Sel.Name, what)
				}
			case *ast.Ident:
				obj := p.Info.Uses[e]
				if obj == nil {
					return true
				}
				if _, isVar := obj.(*types.Var); !isVar || obj.Parent() != p.Pkg.Scope() {
					return true // only package-level vars; field idents come via SelectorExpr
				}
				if what, ok := atomicObjs[obj]; ok && !inAtomic(int(e.Pos())) {
					p.Reportf(e.Pos(), "%s is accessed with %s elsewhere in this package; this non-atomic access races with it",
						e.Name, what)
				}
			}
			return true
		})
	}
}

// addressedObject resolves the operand of a unary & in an atomic call's
// first argument to the field or package-var object it addresses.
func addressedObject(p *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	return nil
}

// isAtomicOp matches the sync/atomic functions that take a pointer to the
// shared word: AddInt64, LoadUint32, StorePointer, SwapInt32,
// CompareAndSwapInt64, ... Typed atomics (atomic.Int64) enforce
// themselves and are out of scope.
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
