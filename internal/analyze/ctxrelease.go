package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxRelease flags cancel functions and timers that can leak: every
// context.WithCancel / WithTimeout / WithDeadline cancel func and every
// time.NewTimer / time.AfterFunc timer must be released (cancel() called,
// timer.Stop() called, or the value handed to another owner) on every
// return path. This is exactly the PR 6 bug class: a job admitted with a
// deadline whose error path returned without releasing the deadline timer
// kept the timer (and its context) alive until the deadline fired.
//
// The check is a may-analysis over the function CFG (cfg.go): acquiring a
// cancel/timer creates an obligation fact; the fact dies when the value is
// used — called, deferred, Stop()ped, received from (a fired timer needs
// no Stop), passed, stored or returned (the new owner releases it). An
// obligation still live at the function exit means some path from the
// acquisition reached a return without releasing, and the acquisition is
// reported. Assigning the cancel func or timer to `_`, or discarding a
// NewTimer result outright, is always an error.
//
// Storing into a struct field at the acquisition ("j.ctx, j.cancel = ...")
// transfers ownership immediately and is not tracked — the owner's
// lifecycle (and mutexguard) covers it. Test files are exempt.
var CtxRelease = &Analyzer{
	Name:      "ctxrelease",
	Directive: "allow",
	Doc: "context cancel funcs and time.NewTimer/AfterFunc timers must be " +
		"released (called / Stop()ped / deferred / handed off) on every " +
		"return path; suppress deliberate leaks with //fbpvet:allow <reason>",
	Run: runCtxRelease,
}

// obligation tracks one acquired cancel func or timer.
type obligation struct {
	obj   types.Object
	pos   ast.Node // acquisition site, for reporting
	timer bool     // time.NewTimer/AfterFunc (Stop releases) vs cancel func (any call releases)
	what  string   // "context.WithTimeout", "time.NewTimer", ...
}

func runCtxRelease(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		eachFunc(f, func(_ string, body *ast.BlockStmt) {
			checkFuncReleases(p, body)
		})
	}
}

func checkFuncReleases(p *Pass, body *ast.BlockStmt) {
	// Pass 1: find acquisitions in this function body (excluding nested
	// literals, which are their own analysis units).
	obligations := map[*ast.AssignStmt][]*obligation{}
	tracked := map[types.Object]*obligation{}
	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if what, timer := acquisitionCall(p, call); what != "" && timer {
					p.Reportf(call.Pos(), "result of %s is discarded; the timer is never stopped", what)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, timer := acquisitionCall(p, call)
			if what == "" {
				return true
			}
			// The releasable value is the timer (single result) or the
			// cancel func (second result of the context constructors).
			idx := 0
			if !timer {
				idx = 1
			}
			if idx >= len(st.Lhs) {
				return true
			}
			lhs := st.Lhs[idx]
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return true // stored into a field/index: ownership transferred
			}
			if id.Name == "_" {
				noun := "cancel func"
				verb := "called"
				if timer {
					noun = "timer"
					verb = "stopped"
				}
				p.Reportf(call.Pos(), "%s from %s is assigned to _; it is never %s", noun, what, verb)
				return true
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj == nil {
				return true
			}
			ob := &obligation{obj: obj, pos: call, timer: timer, what: what}
			obligations[st] = append(obligations[st], ob)
			tracked[obj] = ob
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	g := buildCFG(body)
	transfer := func(n ast.Node, f facts) {
		// Releases first, then acquisitions: the acquisition statement's
		// own LHS identifier must not count as a releasing use.
		acquired := obligations[asAssign(n)]
		inspectShallow(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			ob := tracked[obj]
			if ob == nil {
				return true
			}
			if ob.timer && !timerReleasingUse(body, id) {
				return true // t.C / t.Reset: a use that does not release
			}
			delete(f, ob)
			return true
		})
		for _, ob := range acquired {
			f[ob] = true
		}
	}
	exit := g.flow(mayUnion, transfer, nil)
	for ob := range exit {
		o := ob.(*obligation)
		if o.timer {
			p.Reportf(o.pos.Pos(), "timer %s from %s is not stopped on every return path; defer %s.Stop() or stop it before each return",
				o.obj.Name(), o.what, o.obj.Name())
		} else {
			p.Reportf(o.pos.Pos(), "cancel func %s from %s is not called on every return path; defer %s() or call it before each return",
				o.obj.Name(), o.what, o.obj.Name())
		}
	}
}

func asAssign(n ast.Node) *ast.AssignStmt {
	as, _ := n.(*ast.AssignStmt)
	return as
}

// acquisitionCall classifies a call as a cancel-func or timer acquisition.
func acquisitionCall(p *Pass, call *ast.CallExpr) (what string, timer bool) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "context":
		switch fn.Name() {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
			return "context." + fn.Name(), false
		}
	case "time":
		switch fn.Name() {
		case "NewTimer", "AfterFunc":
			return "time." + fn.Name(), true
		}
	}
	return "", false
}

// timerReleasingUse reports whether this identifier use of a tracked timer
// releases the obligation. t.Stop()/t.Reset in any position and a receive
// from t.C release it (Reset implies the caller manages the lifecycle; a
// fired timer needs no Stop); any use of t NOT through a field/method
// selector (passed, stored, returned) transfers ownership and releases
// too. Only a bare t.C without a receive keeps the obligation alive, and
// that cannot be distinguished cheaply from a receive — the enclosing
// check accepts the rare false negative.
func timerReleasingUse(body *ast.BlockStmt, id *ast.Ident) bool {
	sel := selectorAround(body, id)
	if sel == nil {
		return true // bare use: handed off
	}
	switch sel.Sel.Name {
	case "Stop", "Reset", "C":
		return sel.Sel.Name != "C" || receivedFrom(body, sel)
	}
	return false
}

// selectorAround finds the SelectorExpr whose X is exactly id, or nil.
func selectorAround(body *ast.BlockStmt, id *ast.Ident) *ast.SelectorExpr {
	var found *ast.SelectorExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if se, ok := n.(*ast.SelectorExpr); ok && ast.Unparen(se.X) == id {
			found = se
			return false
		}
		return true
	})
	return found
}

// receivedFrom reports whether sel (a t.C selector) is the operand of a
// receive expression.
func receivedFrom(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	received := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.ARROW && ast.Unparen(ue.X) == sel {
			received = true
			return false
		}
		return true
	})
	return received
}
