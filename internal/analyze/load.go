package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one loaded, parsed and type-checked package ready for analysis.
type Pkg struct {
	Name       string
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the slice of `go list -json` output the loader needs.
type listedPkg struct {
	Name       string
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader resolves and type-checks packages. Module-internal packages are
// located with `go list` and type-checked from source; standard-library
// imports go through the stdlib source importer (go/importer "source") —
// GOROOT archives are not assumed to exist. The loader caches by import
// path, so shared dependencies are checked once.
type Loader struct {
	// Dir is the working directory for `go list` (module resolution).
	Dir  string
	Fset *token.FileSet

	std     types.Importer
	listed  map[string]*listedPkg
	typed   map[string]*types.Package
	checked map[string]*Pkg
}

// NewLoader returns a Loader rooted at dir ("." for the current module).
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Dir:     dir,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		listed:  map[string]*listedPkg{},
		typed:   map[string]*types.Package{},
		checked: map[string]*Pkg{},
	}
}

// Load resolves the go-list patterns (e.g. "./...") and returns the
// matched non-test packages parsed and type-checked. Pattern-matched
// packages are returned; their in-module dependencies are loaded as needed
// but not analyzed.
func Load(dir string, patterns []string) ([]*Pkg, error) {
	l := NewLoader(dir)
	targets, err := l.goList(append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	var out []*Pkg
	for _, lp := range targets {
		if lp.Standard || lp.DepOnly {
			continue
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// goList runs `go list -json` with the given arguments, records every
// returned package in the loader's index, and returns them in order.
func (l *Loader) goList(args []string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=Name,ImportPath,Dir,GoFiles,Standard,DepOnly,Error"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outData, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(outData))
	var pkgs []*listedPkg
	for {
		lp := &listedPkg{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		l.listed[lp.ImportPath] = lp
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package (cached).
func (l *Loader) check(lp *listedPkg) (*Pkg, error) {
	if pkg, ok := l.checked[lp.ImportPath]; ok {
		return pkg, nil
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.CheckFiles(lp.ImportPath, files)
}

// CheckFiles type-checks an explicit file set under the given import path.
// Used by check for listed packages and by tests for testdata fixtures
// (which the go tool refuses to list).
func (l *Loader) CheckFiles(path string, files []*ast.File) (*Pkg, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tp, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type checking %s: %v", path, errs[0])
	}
	l.typed[path] = tp
	pkg := &Pkg{
		Name:       files[0].Name.Name,
		ImportPath: path,
		Dir:        filepath.Dir(l.Fset.Position(files[0].Package).Filename),
		Fset:       l.Fset,
		Files:      files,
		Types:      tp,
		Info:       info,
	}
	l.checked[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: standard-library paths go to the
// stdlib source importer, module paths are type-checked from the sources
// `go list` points at.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		// Not seen yet: lazily resolve. Try stdlib first (covers fixture
		// imports like "fmt" without a go list round-trip).
		if tp, err := l.std.Import(path); err == nil {
			return tp, nil
		}
		pkgs, err := l.goList([]string{"-deps", path})
		if err != nil {
			return nil, err
		}
		_ = pkgs
		lp, ok = l.listed[path]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", path)
		}
	}
	if lp.Standard {
		return l.std.Import(path)
	}
	pkg, err := l.check(lp)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}
