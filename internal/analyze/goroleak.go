package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags two goroutine-lifecycle smells that the serve layer's
// leak-checked tests chase dynamically, checked statically instead:
//
//  1. A `go func(){...}()` whose body receives from (or ranges over, or
//     selects on) a channel declared in the spawning function, when that
//     function neither closes the channel, nor sends on it, nor hands it
//     to anyone else. Nothing can ever wake the goroutine: it blocks
//     forever and holds its stack (and captures) for the process
//     lifetime. A select is fine as soon as ONE of its cases can fire —
//     a ctx.Done() case, a default, or a channel someone closes.
//  2. A `go` statement inside a for/range loop with no bounding idiom in
//     sight: no sync.WaitGroup Add/Done/Wait in the spawning function or
//     goroutine body, and no semaphore-channel send in the loop. Unbounded
//     spawning turns a burst of work into a burst of goroutines — the
//     worker pools in fbp and serve exist precisely to prevent that.
//
// Both checks are heuristics biased toward silence: channels that arrive
// as parameters, struct fields or function results are skipped (their
// owner is elsewhere), and any escape of a local channel counts as a
// hand-off. Test files are exempt.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Directive: "allow",
	Doc: "flags goroutines that receive on a local channel nobody closes, " +
		"sends to or hands off (they block forever), and loop-spawned " +
		"goroutines with no WaitGroup/semaphore bound; suppress with " +
		"//fbpvet:allow <reason>",
	Run: runGoroLeak,
}

func runGoroLeak(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(p, fd)
		}
	}
}

func checkGoStmts(p *Pass, fd *ast.FuncDecl) {
	// Walk with a loop-nesting counter to classify each go statement.
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(st.Body, loopDepth+1, walk)
			walk(st.Init, loopDepth)
			walk(st.Post, loopDepth+1)
			return
		case *ast.RangeStmt:
			walkChildren(st.Body, loopDepth+1, walk)
			return
		case *ast.GoStmt:
			if loopDepth > 0 && !boundedSpawn(p, fd, st) {
				p.Reportf(st.Pos(), "goroutine spawned in a loop with no visible bound (no WaitGroup Add/Done/Wait, no semaphore send); a burst of iterations becomes a burst of goroutines")
			}
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				checkBlockedReceives(p, fd, st, lit)
			}
			// Still look inside the goroutine body for nested spawns.
			ast.Inspect(st.Call, func(m ast.Node) bool {
				if inner, ok := m.(*ast.GoStmt); ok && inner != st {
					walk(inner, 0)
					return false
				}
				return true
			})
			return
		}
		// Generic recursion.
		children(n, func(c ast.Node) { walk(c, loopDepth) })
	}
	walk(fd.Body, 0)
}

// walkChildren recurses into a block at the given loop depth.
func walkChildren(b *ast.BlockStmt, depth int, walk func(ast.Node, int)) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		walk(s, depth)
	}
}

// children invokes fn once per direct child of n. Implemented with
// ast.Inspect's enter/leave protocol: depth 1 nodes only.
func children(n ast.Node, fn func(ast.Node)) {
	depth := 0
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			depth--
			return true
		}
		depth++
		if depth == 2 {
			fn(m)
			depth--
			return false
		}
		return true
	})
}

// boundedSpawn reports whether a loop-spawned goroutine is visibly
// bounded: a sync.WaitGroup Add/Done/Wait call anywhere in the spawning
// function (which includes the goroutine body), or a channel send
// statement in the function (the `sem <- struct{}{}` semaphore idiom).
func boundedSpawn(p *Pass, fd *ast.FuncDecl, _ *ast.GoStmt) bool {
	bounded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Add", "Done", "Wait":
					if isWaitGroup(p.TypeOf(sel.X)) {
						bounded = true
					}
				}
			}
		case *ast.SendStmt:
			bounded = true
		}
		return true
	})
	return bounded
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// checkBlockedReceives inspects a go-func-literal body for receives that
// can never complete.
func checkBlockedReceives(p *Pass, fd *ast.FuncDecl, st *ast.GoStmt, lit *ast.FuncLit) {
	report := func(ch *ast.Ident) {
		p.Reportf(st.Pos(), "goroutine receives on %s, which the spawning function never closes, sends to or hands off; the goroutine can block forever", ch.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectStmt:
			checkSelect(p, fd, e, report)
			return false // cases handled; don't re-report their receives
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				if ch := deadChannel(p, fd, e.X); ch != nil {
					report(ch)
				}
			}
		case *ast.RangeStmt:
			if isChannel(p.TypeOf(e.X)) {
				if ch := deadChannel(p, fd, e.X); ch != nil {
					report(ch)
				}
			}
		}
		return true
	})
}

// checkSelect reports a select statement only when EVERY case is a
// provably dead receive: one live case (a default, a send, a cancelable
// or non-local channel) lets the goroutine proceed.
func checkSelect(p *Pass, fd *ast.FuncDecl, sel *ast.SelectStmt, report func(*ast.Ident)) {
	var dead []*ast.Ident
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return // default case: never blocks
		}
		var recvExpr ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if ue, ok := comm.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				recvExpr = ue.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if ue, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					recvExpr = ue.X
				}
			}
		case *ast.SendStmt:
			return // a send case may fire; not this analyzer's concern
		}
		if recvExpr == nil {
			return
		}
		ch := deadChannel(p, fd, recvExpr)
		if ch == nil {
			return // this case can fire: the select is live
		}
		dead = append(dead, ch)
	}
	for _, ch := range dead {
		report(ch)
	}
}

// deadChannel decides whether a received-from expression is a channel that
// can never deliver: a plain identifier for a channel declared inside the
// spawning function, with no close, send or escape anywhere in that
// function. It returns the identifier to blame, or nil when the receive
// may complete (non-ident, non-local, or satisfiable).
func deadChannel(p *Pass, fd *ast.FuncDecl, e ast.Expr) *ast.Ident {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil // ctx.Done(), t.C, chan-valued field: owner elsewhere
	}
	obj := p.Info.Uses[id]
	if obj == nil || !isChannel(obj.Type()) {
		return nil
	}
	// Locality: the channel variable must be declared inside this
	// function's body (parameters and receivers sit outside Body's span).
	if obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return nil
	}
	if channelSatisfiable(p, fd, obj) {
		return nil
	}
	return id
}

// channelSatisfiable reports whether the function closes, sends on, or
// hands off the channel object anywhere (including inside other nested
// literals — a sibling goroutine feeding the channel counts).
func channelSatisfiable(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if fn, isIdent := st.Fun.(*ast.Ident); isIdent && fn.Name == "close" {
				if arg, isID := ast.Unparen(st.Args[0]).(*ast.Ident); isID && p.Info.Uses[arg] == obj {
					ok = true
				}
				return true
			}
			// The channel passed to any call escapes to a new owner.
			for _, a := range st.Args {
				if id, isID := ast.Unparen(a).(*ast.Ident); isID && p.Info.Uses[id] == obj {
					ok = true
				}
			}
		case *ast.SendStmt:
			if id, isID := ast.Unparen(st.Chan).(*ast.Ident); isID && p.Info.Uses[id] == obj {
				ok = true
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if id, isID := ast.Unparen(r).(*ast.Ident); isID && p.Info.Uses[id] == obj {
					ok = true
				}
			}
		case *ast.AssignStmt:
			// Stored somewhere (field, map, another variable): handed off.
			for i, r := range st.Rhs {
				id, isID := ast.Unparen(r).(*ast.Ident)
				if !isID || p.Info.Uses[id] != obj {
					continue
				}
				if i < len(st.Lhs) {
					if _, plain := st.Lhs[i].(*ast.Ident); !plain {
						ok = true
					} else {
						ok = true // aliased: tracking aliases is out of scope
					}
				}
			}
		}
		return true
	})
	return ok
}

func isChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
