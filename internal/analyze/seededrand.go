package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeededRand bans the global math/rand source and time-based seeds outside
// _test.go files. The global RNG is shared process state: any library that
// also draws from it shifts every subsequent value, so two runs of the
// same placement stop being comparable; a time-based seed makes even
// back-to-back runs diverge. Production code must thread an explicitly
// seeded rand.New(rand.NewSource(seed)) — see internal/gen, whose
// instances are reproducible from ChipSpec.Seed alone.
var SeededRand = &Analyzer{
	Name:      "seededrand",
	Directive: "randok",
	Doc: "bans global math/rand functions (rand.Intn, rand.Float64, rand.Seed, " +
		"rand.Shuffle, ...) and time-based RNG seeds outside _test.go files; " +
		"use rand.New(rand.NewSource(seed)) with a seed from config, or " +
		"annotate //fbpvet:randok <reason>",
	Run: runSeededRand,
}

// randConstructors create explicit sources/generators and are allowed —
// they do not touch the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Int64N":     false, // v2 global funcs stay banned; listed for clarity
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		// Nested constructors (rand.New(rand.NewSource(...))) both walk
		// the same argument tree; report each time.Now position once.
		reported := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			if !randConstructors[fn.Name()] {
				p.Reportf(call.Pos(), "call to global %s.%s: shared process-wide RNG breaks run reproducibility; use rand.New(rand.NewSource(seed))", path, fn.Name())
				return true
			}
			// Constructor: still reject wall-clock seeds like
			// rand.NewSource(time.Now().UnixNano()).
			for _, arg := range call.Args {
				if pos, found := findTimeNow(p, arg); found && !reported[pos] {
					reported[pos] = true
					p.Reportf(pos, "time-based RNG seed in %s.%s: makes runs irreproducible; take the seed from configuration", path, fn.Name())
				}
			}
			return true
		})
	}
}

// findTimeNow reports a call to time.Now anywhere inside e.
func findTimeNow(p *Pass, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
