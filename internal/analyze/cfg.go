package analyze

import (
	"go/ast"
	"go/token"
)

// This file is the shared control-flow scaffolding for the concurrency and
// lifecycle analyzers (mutexguard, ctxrelease). golang.org/x/tools/go/cfg
// is unavailable by policy — the repo is stdlib-only — so the block graph
// is built directly over go/ast, the same way the loader type-checks from
// source instead of importing export data.
//
// The graph is deliberately simple: a block is a straight-line run of
// statement (and branch-condition) nodes with successor edges. Composite
// statements are decomposed — an *ast.IfStmt contributes its Init and Cond
// to the current block and its branches become separate blocks — so a
// node list never contains the body of a nested control structure, and a
// dataflow transfer function can treat each node as executing exactly at
// its position in the block. Function literals are NOT part of the
// enclosing function's graph (they execute at some other time, or never);
// analyzers walk node subtrees with inspectShallow to stay out of them and
// analyze each literal as its own function.
//
// Unmodeled exits keep the analyses conservative rather than wrong: panics
// and calls that never return are treated as falling through, and a goto
// is treated as an opaque jump to the function exit.

// blk is one basic block: nodes executed in order, then a jump to one of
// succs. The virtual exit block has no nodes and no successors.
type blk struct {
	nodes []ast.Node
	succs []*blk
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *blk
	exit   *blk
	blocks []*blk // entry first; exit included
}

// cfgBuilder carries the break/continue resolution state during the walk.
type cfgBuilder struct {
	g *funcCFG
	// breakTo / continueTo are stacks of enclosing targets.
	breakTo    []*blk
	continueTo []*blk
	// labels maps a label name to its statement's break/continue targets.
	labelBreak    map[string]*blk
	labelContinue map[string]*blk
	// pendingLabel is the label naming the next loop/switch encountered.
	pendingLabel string
}

// buildCFG constructs the block graph of body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{
		g:             g,
		labelBreak:    map[string]*blk{},
		labelContinue: map[string]*blk{},
	}
	g.exit = &blk{}
	g.entry = b.newBlock()
	end := b.stmts(body.List, g.entry)
	if end != nil {
		b.edge(end, g.exit)
	}
	g.blocks = append(g.blocks, g.exit)
	return g
}

func (b *cfgBuilder) newBlock() *blk {
	nb := &blk{}
	b.g.blocks = append(b.g.blocks, nb)
	return nb
}

func (b *cfgBuilder) edge(from, to *blk) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// stmts threads the statement list through cur, returning the block that
// falls out of the list (nil when every path has jumped away).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *blk) *blk {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminating statement: give it its
			// own disconnected block so its nodes still exist, but nothing
			// flows into it.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt adds one statement to cur and returns the fall-through block.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *blk) *blk {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, cur)

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		next := b.stmt(st.Stmt, cur)
		b.pendingLabel = ""
		return next

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, st)
		b.edge(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, st)
		var target *blk
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				target = b.labelBreak[st.Label.Name]
			} else if len(b.breakTo) > 0 {
				target = b.breakTo[len(b.breakTo)-1]
			}
		case token.CONTINUE:
			if st.Label != nil {
				target = b.labelContinue[st.Label.Name]
			} else if len(b.continueTo) > 0 {
				target = b.continueTo[len(b.continueTo)-1]
			}
		case token.GOTO:
			// Conservative: an opaque jump; route to exit so facts proven
			// "on every path" never rely on code a goto may skip.
			target = b.g.exit
		case token.FALLTHROUGH:
			// Handled by the switch builder (the next case block is the
			// fall-through successor); treat as plain fall-through here.
			return cur
		}
		if target == nil {
			target = b.g.exit
		}
		b.edge(cur, target)
		return nil

	case *ast.IfStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		cur.nodes = append(cur.nodes, st.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		if end := b.stmt(st.Body, thenB); end != nil {
			b.edge(end, after)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			if end := b.stmt(st.Else, elseB); end != nil {
				b.edge(end, after)
			}
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if st.Cond != nil {
			head.nodes = append(head.nodes, st.Cond)
		}
		after := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, st.Post)
			b.edge(post, head)
		}
		if st.Cond != nil {
			b.edge(head, after)
		}
		b.pushLoop(after, post)
		body := b.newBlock()
		b.edge(head, body)
		if end := b.stmt(st.Body, body); end != nil {
			b.edge(end, post)
		}
		b.popLoop()
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.nodes = append(head.nodes, st.X)
		after := b.newBlock()
		b.edge(head, after)
		b.pushLoop(after, head)
		body := b.newBlock()
		b.edge(head, body)
		if end := b.stmt(st.Body, body); end != nil {
			b.edge(end, head)
		}
		b.popLoop()
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		if st.Tag != nil {
			cur.nodes = append(cur.nodes, st.Tag)
		}
		return b.caseBodies(st.Body, cur, switchClauseBodies(st.Body))

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur.nodes = append(cur.nodes, st.Init)
		}
		cur.nodes = append(cur.nodes, st.Assign)
		return b.caseBodies(st.Body, cur, switchClauseBodies(st.Body))

	case *ast.SelectStmt:
		var clauses []clauseBody
		hasDefault := false
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			cb := clauseBody{body: cc.Body}
			if cc.Comm != nil {
				cb.lead = cc.Comm
			} else {
				hasDefault = true
			}
			clauses = append(clauses, cb)
		}
		// A select without a default blocks until some case is ready, so
		// control cannot skip past it. With a default it can (the default
		// clause is just another branch, already in clauses).
		_ = hasDefault
		return b.caseBodies(st.Body, cur, clauses)

	default:
		// Plain nodes: Assign, Decl, Expr, Send, IncDec, Defer, Go, Empty.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// clauseBody is one case of a switch/select: an optional lead statement
// (a select's communication op) plus the body.
type clauseBody struct {
	lead ast.Stmt
	body []ast.Stmt
}

func switchClauseBodies(body *ast.BlockStmt) []clauseBody {
	var out []clauseBody
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		out = append(out, clauseBody{body: cc.Body})
	}
	return out
}

// caseBodies wires the clause blocks of a switch/select: every clause is a
// successor of cur, each clause end falls through to the common after
// block, and break targets after. A clause ending in fallthrough also gets
// an edge to the next clause's block. cur additionally flows straight to
// after (a switch may match nothing); this extra edge is harmless for the
// conservative analyses built on this graph.
func (b *cfgBuilder) caseBodies(body *ast.BlockStmt, cur *blk, clauses []clauseBody) *blk {
	after := b.newBlock()
	b.pushBreak(after)
	blocks := make([]*blk, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cur, blocks[i])
	}
	b.edge(cur, after)
	for i, cl := range clauses {
		start := blocks[i]
		if cl.lead != nil {
			start.nodes = append(start.nodes, cl.lead)
		}
		end := b.stmts(cl.body, start)
		if end != nil {
			b.edge(end, after)
		}
		if fallsThrough(cl.body) && i+1 < len(blocks) {
			b.edge(end, blocks[i+1])
		}
	}
	b.popBreak()
	return after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushLoop(brk, cont *blk) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.labelContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) pushBreak(brk *blk) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, nil)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

// facts is a dataflow fact set keyed by any comparable value (analyzers
// use small structs of types.Object plus a field name).
type facts map[any]bool

func copyFacts(f facts) facts {
	out := make(facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func equalFacts(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// flowMode selects the meet operator of a forward analysis.
type flowMode int

const (
	// mustIntersect keeps only facts that hold on EVERY path into a block
	// (used by mutexguard: "this mutex is definitely held here").
	mustIntersect flowMode = iota
	// mayUnion keeps facts that hold on ANY path into a block (used by
	// ctxrelease: "an unreleased obligation may reach here").
	mayUnion
)

// flow runs a forward dataflow analysis to fixpoint. transfer updates the
// fact set in place for one node; after convergence, visit (may be nil) is
// called for every reachable node with the facts holding immediately
// before it. The returned set is the facts at the virtual function exit
// (nil when the exit is unreachable, e.g. `for {}` with no break).
func (g *funcCFG) flow(mode flowMode, transfer func(n ast.Node, f facts), visit func(n ast.Node, f facts)) facts {
	in := map[*blk]facts{g.entry: {}}
	for changed := true; changed; {
		changed = false
		for _, b := range g.blocks {
			inF, ok := in[b]
			if !ok {
				continue
			}
			out := copyFacts(inF)
			for _, n := range b.nodes {
				transfer(n, out)
			}
			for _, s := range b.succs {
				prev, seen := in[s]
				if !seen {
					in[s] = copyFacts(out)
					changed = true
					continue
				}
				merged := merge(mode, prev, out)
				if !equalFacts(merged, prev) {
					in[s] = merged
					changed = true
				}
			}
		}
	}
	if visit != nil {
		for _, b := range g.blocks {
			inF, ok := in[b]
			if !ok {
				continue
			}
			f := copyFacts(inF)
			for _, n := range b.nodes {
				visit(n, f)
				transfer(n, f)
			}
		}
	}
	return in[g.exit]
}

func merge(mode flowMode, a, b facts) facts {
	out := facts{}
	switch mode {
	case mustIntersect:
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
	case mayUnion:
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
	}
	return out
}

// inspectShallow walks the subtree of n like ast.Inspect but does not
// descend into function literals: a nested func body executes at another
// time (or never), so its statements must not be attributed to the
// enclosing function's control flow. Analyzers handle literals as separate
// functions via eachFunc.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return fn(m)
	})
}

// eachFunc invokes fn for every function body in the file: declared
// functions and methods, plus every function literal at any nesting depth
// (each literal is its own analysis unit). name is the declared function's
// name for declarations and "" for literals — name-based conventions like
// the "...Locked" suffix apply only to declarations.
func eachFunc(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn("", lit.Body)
			}
			return true
		})
	}
}
