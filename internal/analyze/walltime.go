package analyze

import (
	"go/ast"
	"strings"
)

// WallTime protects the determinism contract of the placement pipeline:
// the packages that produce or fingerprint cell positions (fbp, qp, flow,
// transport, placer, ckpt) must not let wall-clock readings influence
// results. The ci.sh e2e gates compare hex-encoded positions bit-for-bit
// across worker counts and preempt/resume runs; a time.Now() that leaks
// into a comparison, a seed, or an ordering key breaks that oracle in a
// way no unit test pins down.
//
// Every time.Now / time.Since call in those packages is flagged unless it
// appears inside an argument to an obs call (spans and counters are the
// sanctioned sink for timing). Timing that feeds a Stats struct or a
// progress report is legitimate too — but it must say so: annotate the
// line with //fbpvet:allow and a reason, so each wall-clock read in the
// deterministic core is a reviewed decision rather than an accident.
var WallTime = &Analyzer{
	Name:      "walltime",
	Directive: "allow",
	Doc: "time.Now/time.Since in deterministic placement packages (fbp, qp, " +
		"flow, transport, placer, ckpt) must flow only into obs calls or " +
		"carry //fbpvet:allow <reason>",
	Run: runWallTime,
}

// deterministicPackages are the packages whose outputs the hex-position
// oracles fingerprint.
var deterministicPackages = map[string]bool{
	"fbp":       true,
	"qp":        true,
	"flow":      true,
	"transport": true,
	"placer":    true,
	"ckpt":      true,
}

func runWallTime(p *Pass) {
	if !deterministicPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		var obsArgs []ast.Node // subtrees sanctioned as obs-call arguments
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isObsCall(p, call) {
				for _, a := range call.Args {
					obsArgs = append(obsArgs, a)
				}
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since":
				for _, sanctioned := range obsArgs {
					if call.Pos() >= sanctioned.Pos() && call.End() <= sanctioned.End() {
						return true
					}
				}
				p.Reportf(call.Pos(), "time.%s in deterministic package %s; route timing through obs or annotate the sanctioned use with //fbpvet:allow <reason>",
					fn.Name(), p.Pkg.Name())
			}
			return true
		})
	}
}

// isObsCall reports whether the call's callee is a function or method of
// the internal obs package.
func isObsCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return fn.Pkg().Name() == "obs" || path == "obs" || strings.HasSuffix(path, "/obs")
}
