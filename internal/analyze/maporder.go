package analyze

import (
	"go/ast"
	"go/types"
)

// solverPackages are the packages whose computations feed placement
// results. Any map iteration there can leak Go's randomized map hash into
// cell coordinates and break run-to-run determinism — the property the
// 1-vs-N-worker tests and the paper's placer comparisons depend on.
var solverPackages = map[string]bool{
	"fbp":       true,
	"region":    true,
	"grid":      true,
	"legalize":  true,
	"transport": true,
	"flow":      true,
	"qp":        true,
	"placer":    true,
}

// MapOrder flags `for … range` over map-typed values inside solver
// packages. Keyed lookups and accumulation into maps are fine — only
// iteration observes the randomized order. Commutative iterations
// (deleting every entry, building a slice that is sorted immediately
// after) carry a //fbpvet:orderok directive with the reason.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Directive: "orderok",
	Doc: "flags range-over-map in solver packages (" + solverPackageList() + "): " +
		"map iteration order is randomized per process and makes placement " +
		"results irreproducible; iterate a sorted key slice instead, or mark " +
		"provably order-independent loops with //fbpvet:orderok <reason>",
	Run: runMapOrder,
}

func solverPackageList() string {
	// Stable order for the doc string.
	return "fbp, region, grid, legalize, transport, flow, qp, placer"
}

func runMapOrder(p *Pass) {
	if !solverPackages[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(rs.Pos(), "range over map %s: iteration order is nondeterministic in solver code; iterate sorted keys or annotate //fbpvet:orderok", types.ExprString(rs.X))
			}
			return true
		})
	}
}
