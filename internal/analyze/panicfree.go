package analyze

import (
	"go/ast"
	"go/types"
)

// PanicFree forbids panic calls in library (non-main, non-test) packages.
// The placement pipeline runs embedded in batch flows: a panicking solver
// kills the host process, while a returned error lets the caller fall back,
// degrade, or at least fail one instance instead of the whole run. The
// fault-tolerance pass converted every library panic into a returned error
// or a recovered worker boundary; this analyzer keeps it that way.
//
// Exemptions: package main (a CLI may panic on programmer error), test
// files (t.Fatal machinery and intentional panics in fixtures), and sites
// annotated //fbpvet:allow <reason> — reserved for genuine programmer-error
// guards such as grid.MustNew, whose contract is "caller proved the input
// valid".
var PanicFree = &Analyzer{
	Name:      "panicfree",
	Directive: "allow",
	Doc: "forbids panic( in library packages (non-main, non-test); return " +
		"an error or recover at a worker boundary instead, or annotate " +
		"//fbpvet:allow <reason> for deliberate programmer-error guards",
	Run: runPanicFree,
}

func runPanicFree(p *Pass) {
	if p.Pkg != nil && p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Resolve to the builtin so a local function named panic (or a
			// method value) is not flagged.
			if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			p.Reportf(call.Pos(), "panic in library code; return an error (or recover at the worker boundary) so callers can degrade instead of crashing")
			return true
		})
	}
}
