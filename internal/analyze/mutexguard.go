package analyze

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard enforces the repository's lock-annotation convention: a
// struct field (or package-level variable) carrying a "guarded by <mu>"
// comment may only be read or written while the named mutex is held. The
// serve scheduler's preemption and single-flight machinery, the obs
// broadcast fan-out and the faultsim registry all depend on this
// discipline — PR 6's review caught three violations of it by hand; this
// analyzer checks it by machine.
//
// The check is a conservative intra-procedural must-analysis over the
// function's CFG (cfg.go): a lock key is "definitely held" at a node only
// when a Lock()/RLock() on it dominates the node on every path without an
// intervening Unlock()/RUnlock(). `defer mu.Unlock()` does not clear the
// key — the mutex stays held until return. Three structural exemptions
// keep the signal clean:
//
//   - Functions whose name ends in "Locked" assert, by convention, that
//     their caller holds the lock; their bodies are not checked (the
//     call sites are, since the fields they touch are).
//   - Accesses through a local variable freshly built from a composite
//     literal in the same function are exempt: a value that has not
//     escaped yet cannot be raced on (constructors, tombstones).
//   - Accesses whose base is not a plain identifier are skipped — the
//     analysis tracks locks per variable, and a chained base has no
//     variable to anchor the key to.
//
// Guarded fields must be accessed through a single-identifier base (the
// receiver, a local, a package var); annotations therefore belong on
// fields of the struct that owns the mutex, not on nested structs guarded
// by an outer lock.
var MutexGuard = &Analyzer{
	Name:      "mutexguard",
	Directive: "allow",
	Doc: "fields annotated \"guarded by <mu>\" must only be accessed while " +
		"<mu> is held on every path (CFG must-analysis; \"...Locked\" " +
		"functions and freshly constructed values are exempt); suppress " +
		"with //fbpvet:allow <reason>",
	Run: runMutexGuard,
}

// guardedByRE extracts the mutex name from an annotation comment.
var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// lockKey identifies one mutex: a variable plus an optional field name.
// {obj(s), "mu"} is s.mu; {obj(regMu), ""} is the package-level regMu.
type lockKey struct {
	base types.Object
	name string
}

func runMutexGuard(p *Pass) {
	// fieldGuards maps a guarded struct field to its mutex field's name;
	// varGuards maps a guarded package-level var to its mutex's object.
	fieldGuards := map[types.Object]string{}
	varGuards := map[types.Object]types.Object{}
	for _, f := range p.Files {
		collectGuards(p, f, fieldGuards, varGuards)
	}
	if len(fieldGuards) == 0 && len(varGuards) == 0 {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			if strings.HasSuffix(name, "Locked") {
				return
			}
			checkFuncGuards(p, body, fieldGuards, varGuards)
		})
	}
}

// collectGuards scans struct type declarations and package-level var
// blocks for "guarded by <mu>" annotations in field/spec doc or line
// comments.
func collectGuards(p *Pass, f *ast.File, fieldGuards map[types.Object]string, varGuards map[types.Object]types.Object) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				st, ok := sp.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field.Doc, field.Comment)
					if mu == "" {
						continue
					}
					for _, nm := range field.Names {
						if obj := p.Info.Defs[nm]; obj != nil {
							fieldGuards[obj] = mu
						}
					}
				}
			case *ast.ValueSpec:
				mu := guardAnnotation(sp.Doc, sp.Comment)
				if mu == "" {
					mu = guardAnnotation(gd.Doc, nil)
				}
				if mu == "" {
					continue
				}
				muObj := p.Pkg.Scope().Lookup(mu)
				if muObj == nil {
					continue
				}
				for _, nm := range sp.Names {
					if obj := p.Info.Defs[nm]; obj != nil {
						varGuards[obj] = muObj
					}
				}
			}
		}
	}
}

func guardAnnotation(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFuncGuards runs the held-locks must-analysis over one function body
// and reports guarded accesses at nodes where the required key is not
// definitely held.
func checkFuncGuards(p *Pass, body *ast.BlockStmt, fieldGuards map[types.Object]string, varGuards map[types.Object]types.Object) {
	fresh := freshLocals(p, body)
	g := buildCFG(body)
	transfer := func(n ast.Node, f facts) {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, op, ok := lockOp(p, call)
			if !ok {
				return true
			}
			switch op {
			case "Lock", "RLock":
				f[key] = true
			case "Unlock", "RUnlock":
				if !inDefer(n, call) {
					delete(f, key)
				}
			}
			return true
		})
	}
	visit := func(n ast.Node, f facts) {
		inspectShallow(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.SelectorExpr:
				sel := p.Info.Selections[e]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				mu, guarded := fieldGuards[sel.Obj()]
				if !guarded {
					return true
				}
				base, ok := ast.Unparen(e.X).(*ast.Ident)
				if !ok {
					return true // chained base: no variable to key the lock on
				}
				baseObj := p.Info.Uses[base]
				if baseObj == nil || fresh[baseObj] {
					return true
				}
				if !f[lockKey{baseObj, mu}] {
					p.Reportf(e.Sel.Pos(), "%s.%s is guarded by %s.%s, which is not held on every path to this access",
						base.Name, e.Sel.Name, base.Name, mu)
				}
			case *ast.Ident:
				muObj, guarded := varGuards[p.Info.Uses[e]]
				if !guarded {
					return true
				}
				if !f[lockKey{muObj, ""}] {
					p.Reportf(e.Pos(), "%s is guarded by %s, which is not held on every path to this access",
						e.Name, muObj.Name())
				}
			}
			return true
		})
	}
	g.flow(mustIntersect, transfer, visit)
}

// lockOp recognizes mu.Lock / mu.Unlock / RLock / RUnlock calls on
// sync.Mutex / sync.RWMutex values and returns the lock key they act on.
func lockOp(p *Pass, call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	if !isSyncMutex(p.TypeOf(sel.X)) {
		return lockKey{}, "", false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.Ident: // regMu.Lock()
		if obj := p.Info.Uses[recv]; obj != nil {
			return lockKey{obj, ""}, op, true
		}
	case *ast.SelectorExpr: // s.mu.Lock()
		if base, ok := ast.Unparen(recv.X).(*ast.Ident); ok {
			if obj := p.Info.Uses[base]; obj != nil {
				return lockKey{obj, recv.Sel.Name}, op, true
			}
		}
	}
	return lockKey{}, "", false
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// inDefer reports whether call is the deferred call of n itself. A
// deferred Unlock keeps the mutex held for the rest of the function, so
// the transfer function must not clear it at the defer statement.
func inDefer(n ast.Node, call *ast.CallExpr) bool {
	d, ok := n.(*ast.DeferStmt)
	return ok && d.Call == call
}

// freshLocals returns the local variables initialized from a composite
// literal (T{...} or &T{...}) inside this function: values that have not
// escaped yet cannot be accessed concurrently, so guarded-field accesses
// through them are exempt.
func freshLocals(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if ue, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = ast.Unparen(ue.X)
			}
			if _, isLit := rhs.(*ast.CompositeLit); !isLit {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}
