package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanEnd enforces the observability contract of internal/obs: every span
// returned by Recorder.StartSpan or Span.StartChild must be ended, or the
// summary tree silently loses the phase and its children. The check is a
// pragmatic dominance approximation: a span assigned to a local variable
// must have at least one `sp.End()` call on that variable somewhere in the
// same file (a `defer sp.End()` is the canonical form; explicit calls on
// every return path also satisfy it). Discarding the result outright —
// `rec.StartSpan("x")` as a statement or assigning it to `_` — is always
// an error. Spans that escape (returned, stored in a struct field, passed
// as an argument) are assumed ended by their new owner and skipped.
//
// The obs package itself and _test.go files are exempt: tests deliberately
// leave spans dangling to probe the recorder's edge cases.
var SpanEnd = &Analyzer{
	Name:      "spanend",
	Directive: "spanok",
	Doc: "requires every obs.Recorder.StartSpan / obs.Span.StartChild result " +
		"to reach an End() call (defer sp.End() or explicit calls); " +
		"suppress intentionally unended spans with //fbpvet:spanok <reason>",
	Run: runSpanEnd,
}

func runSpanEnd(p *Pass) {
	if p.Pkg.Name() == "obs" {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		// Pass 1: every object that receives an End() call in this file.
		ended := map[types.Object]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" || !isObsMethod(p, sel) {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					ended[obj] = true
				}
			}
			return true
		})
		// Pass 2: every StartSpan/StartChild call site, classified by how
		// its result is consumed.
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(p, call) {
					p.Reportf(call.Pos(), "result of %s is discarded; the span is never ended", startName(call))
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok || !isSpanStart(p, call) {
					return true
				}
				id, ok := st.Lhs[0].(*ast.Ident)
				if !ok {
					return true // escapes into a field/index; owner ends it
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "result of %s is assigned to _; the span is never ended", startName(call))
					return true
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !ended[obj] {
					p.Reportf(call.Pos(), "span %s from %s is never ended; add defer %s.End()", id.Name, startName(call), id.Name)
				}
			}
			return true
		})
	}
}

// isSpanStart reports whether call invokes obs's StartSpan or StartChild.
func isSpanStart(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "StartSpan" && sel.Sel.Name != "StartChild" {
		return false
	}
	return isObsMethod(p, sel)
}

// isObsMethod reports whether the selected function is a method defined in
// the obs package (internal/obs or a fixture stand-in named obs).
func isObsMethod(p *Pass, sel *ast.SelectorExpr) bool {
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return fn.Pkg().Name() == "obs" || strings.HasSuffix(path, "/obs")
}

func startName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
