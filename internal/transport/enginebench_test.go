package transport

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchProblem(n, k int) *Problem {
	rng := rand.New(rand.NewSource(7))
	p := &Problem{Supply: make([]float64, n), Capacity: make([]float64, k), Arcs: make([][]Arc, n)}
	total := 0.0
	for i := range p.Supply {
		p.Supply[i] = 0.5 + rng.Float64()
		total += p.Supply[i]
		for j := 0; j < k; j++ {
			p.Arcs[i] = append(p.Arcs[i], Arc{Sink: j, Cost: rng.Float64() * 10})
		}
	}
	for j := range p.Capacity {
		p.Capacity[j] = 1.05 * total / float64(k)
	}
	return p
}

func BenchmarkEngines(b *testing.B) {
	for _, sz := range []struct{ n, k int }{{5, 8}, {20, 30}, {60, 40}} {
		p := benchProblem(sz.n, sz.k)
		b.Run(fmt.Sprintf("condensed/n=%d/k=%d", sz.n, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ns-cold/n=%d/k=%d", sz.n, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := SolveNS(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ns-warm/n=%d/k=%d", sz.n, sz.k), func(b *testing.B) {
			b.ReportAllocs()
			_, basis, err := SolveNS(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if _, basis, err = SolveNS(p, basis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
