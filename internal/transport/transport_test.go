package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSingleSourceSingleSink(t *testing.T) {
	p := &Problem{
		Supply:   []float64{3},
		Capacity: []float64{5},
		Arcs:     [][]Arc{{{Sink: 0, Cost: 2}}},
	}
	for name, solve := range engines() {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Cost-6) > 1e-9 {
			t.Fatalf("%s: cost = %v, want 6", name, sol.Cost)
		}
		if got := sol.Rounded(); got[0] != 0 {
			t.Fatalf("%s: rounded = %v", name, got)
		}
	}
}

func engines() map[string]func(*Problem) (*Solution, error) {
	return map[string]func(*Problem) (*Solution, error){
		"reference": SolveReference,
		"condensed": Solve,
		"ns": func(p *Problem) (*Solution, error) {
			sol, _, err := SolveNS(p, nil)
			return sol, err
		},
	}
}

func TestSolveOverflowMovesCheapestSource(t *testing.T) {
	// Both sources prefer sink 0 (cap 1); source 1 is cheaper to move away.
	p := &Problem{
		Supply:   []float64{1, 1},
		Capacity: []float64{1, 1},
		Arcs: [][]Arc{
			{{Sink: 0, Cost: 0}, {Sink: 1, Cost: 10}},
			{{Sink: 0, Cost: 0}, {Sink: 1, Cost: 1}},
		},
	}
	for name, solve := range engines() {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Cost-1) > 1e-9 {
			t.Fatalf("%s: cost = %v, want 1", name, sol.Cost)
		}
		r := sol.Rounded()
		if r[0] != 0 || r[1] != 1 {
			t.Fatalf("%s: rounded = %v", name, r)
		}
	}
}

func TestSolveRespectsAdmissibility(t *testing.T) {
	// Source 0 may only use sink 1 even though sink 0 is free.
	p := &Problem{
		Supply:   []float64{2},
		Capacity: []float64{10, 2},
		Arcs:     [][]Arc{{{Sink: 1, Cost: 7}}},
	}
	for name, solve := range engines() {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r := sol.Rounded(); r[0] != 1 {
			t.Fatalf("%s: rounded = %v", name, r)
		}
	}
}

func TestSolveInfeasibleDetected(t *testing.T) {
	p := &Problem{
		Supply:   []float64{5},
		Capacity: []float64{2, 100},
		Arcs:     [][]Arc{{{Sink: 0, Cost: 1}}}, // big sink inadmissible
	}
	for name, solve := range engines() {
		if _, err := solve(p); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: err = %v, want ErrInfeasible", name, err)
		}
	}
}

func TestSolveNoAdmissibleSink(t *testing.T) {
	p := &Problem{
		Supply:   []float64{1},
		Capacity: []float64{1},
		Arcs:     [][]Arc{nil},
	}
	for name, solve := range engines() {
		if _, err := solve(p); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("%s: err = %v, want ErrInfeasible", name, err)
		}
	}
}

func TestSolveSplitSource(t *testing.T) {
	// One source of size 2 must split across two sinks of capacity 1.
	p := &Problem{
		Supply:   []float64{2},
		Capacity: []float64{1, 1},
		Arcs:     [][]Arc{{{Sink: 0, Cost: 1}, {Sink: 1, Cost: 3}}},
	}
	for name, solve := range engines() {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Cost-4) > 1e-9 {
			t.Fatalf("%s: cost = %v, want 4", name, sol.Cost)
		}
		if len(sol.Assign[0]) != 2 {
			t.Fatalf("%s: assign = %v, want split", name, sol.Assign[0])
		}
		if sol.NumSplit() != 1 {
			t.Fatalf("%s: NumSplit = %d", name, sol.NumSplit())
		}
	}
}

func TestSolveChainReassignment(t *testing.T) {
	// Classic chain: overflow at sink 0 is resolved by a two-hop shuffle
	// 0 -> 1 -> 2, which is cheaper than the direct move 0 -> 2.
	p := &Problem{
		Supply:   []float64{1, 1, 1},
		Capacity: []float64{1, 1, 1},
		Arcs: [][]Arc{
			{{Sink: 0, Cost: 0}, {Sink: 1, Cost: 1}, {Sink: 2, Cost: 100}},
			{{Sink: 0, Cost: 0}, {Sink: 1, Cost: 1}, {Sink: 2, Cost: 100}},
			{{Sink: 0, Cost: 50}, {Sink: 1, Cost: 0}, {Sink: 2, Cost: 2}},
		},
	}
	// Optimal: sources 0,1 at sinks 0,1; source 2 moves to sink 2: cost 0+1+2.
	for name, solve := range engines() {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Cost-3) > 1e-9 {
			t.Fatalf("%s: cost = %v, want 3", name, sol.Cost)
		}
	}
}

// randomProblem builds a feasible random instance with float costs (to
// avoid ties) and returns it.
func randomProblem(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(12)
	k := 1 + rng.Intn(5)
	p := &Problem{
		Supply:   make([]float64, n),
		Capacity: make([]float64, k),
		Arcs:     make([][]Arc, n),
	}
	total := 0.0
	for i := range p.Supply {
		p.Supply[i] = 0.5 + rng.Float64()*3
		total += p.Supply[i]
	}
	// Every source admissible to a random nonempty sink subset always
	// including sink 0; sink 0 large enough to guarantee feasibility.
	for i := range p.Arcs {
		p.Arcs[i] = append(p.Arcs[i], Arc{Sink: 0, Cost: rng.Float64() * 10})
		for j := 1; j < k; j++ {
			if rng.Intn(2) == 0 {
				p.Arcs[i] = append(p.Arcs[i], Arc{Sink: j, Cost: rng.Float64() * 10})
			}
		}
	}
	for j := 1; j < k; j++ {
		p.Capacity[j] = rng.Float64() * total / float64(k)
	}
	p.Capacity[0] = total
	return p
}

// Property: the condensed engine matches the reference engine's optimal
// cost on random instances.
func TestCondensedMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		ref, err1 := SolveReference(p)
		got, err2 := Solve(p)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both must agree on feasibility
		}
		return math.Abs(ref.Cost-got.Cost) < 1e-6*(1+math.Abs(ref.Cost))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions ship all supply, respect capacities, and split at
// most k-1 sources (almost-integrality, paper §III / [4]).
func TestSolutionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		sol, err := Solve(p)
		if err != nil {
			return true
		}
		loads := make([]float64, p.NumSinks())
		for i, ps := range sol.Assign {
			sum := 0.0
			for _, pr := range ps {
				if pr.Amount <= 0 {
					return false
				}
				loads[pr.Sink] += pr.Amount
				sum += pr.Amount
				// Assigned sink must be admissible.
				ok := false
				for _, a := range p.Arcs[i] {
					if a.Sink == pr.Sink {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			if math.Abs(sum-p.Supply[i]) > 1e-6 {
				return false
			}
		}
		for j, l := range loads {
			if l > p.Capacity[j]+1e-6 {
				return false
			}
		}
		return sol.NumSplit() <= p.NumSinks()-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundedMajority(t *testing.T) {
	sol := &Solution{Assign: [][]Portion{
		{{Sink: 2, Amount: 5}, {Sink: 1, Amount: 1}},
		{{Sink: 0, Amount: 1}},
		nil,
	}}
	got := sol.Rounded()
	if got[0] != 2 || got[1] != 0 || got[2] != -1 {
		t.Fatalf("Rounded = %v", got)
	}
}

func BenchmarkCondensedLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, k := 2000, 12
	p := &Problem{
		Supply:   make([]float64, n),
		Capacity: make([]float64, k),
		Arcs:     make([][]Arc, n),
	}
	total := 0.0
	for i := range p.Supply {
		p.Supply[i] = 0.5 + rng.Float64()
		total += p.Supply[i]
		for j := 0; j < k; j++ {
			p.Arcs[i] = append(p.Arcs[i], Arc{Sink: j, Cost: rng.Float64() * 100})
		}
	}
	for j := range p.Capacity {
		p.Capacity[j] = 1.1 * total / float64(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
