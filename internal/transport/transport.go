// Package transport solves the (unbalanced) Hitchcock transportation
// problems arising in partitioning (paper §III): ship cell area from
// sources (cells) to sinks (regions and temporary transit regions) at
// minimum total cost, where inadmissible pairs (movebound does not cover
// the region) are simply absent from the arc lists.
//
// Two engines are provided:
//
//   - Reference: successive shortest paths on the full bipartite network
//     (flow.MinCostFlow). Exact, simple, used for small instances and as
//     the test oracle.
//   - Condensed: the production engine. It starts from the optimal
//     pseudoflow that sends every source to its cheapest admissible sink
//     and then cancels sink overloads along shortest paths in a condensed
//     graph whose nodes are the sinks only. Each condensed arc a->b is the
//     cheapest reassignment of any source currently in a to b. This keeps
//     shortest-path computations at O(k^2) for k sinks regardless of the
//     number of cells, mirroring the role of Brenner's fast transportation
//     algorithm [4] in BonnPlace.
//
// Solutions are fractional in general but almost integral: at most k-1
// sources are split (a vertex of the transportation polytope). Rounded()
// maps every split source to its majority sink.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/flow"
	"fbplace/internal/obs"
)

// Injection points: condensedFault makes the production engine fail (the
// fallback must switch to the reference engine and record a degradation);
// referenceFault makes the reference engine fail too, exhausting the chain
// so the caller receives a structured error.
var (
	condensedFault = faultsim.Register("transport.condensed.fail",
		"condensed-sink transportation engine fails at entry")
	referenceFault = faultsim.Register("transport.reference.fail",
		"reference (successive shortest path) transportation engine fails at entry")
)

// Arc is an admissible (source, sink) pair with its movement cost.
type Arc struct {
	Sink int
	Cost float64
}

// Problem is a transportation instance. Sources ship their full Supply;
// sinks accept at most Capacity. Total supply must not exceed the total
// capacity reachable by each subset of sources (otherwise Solve returns
// ErrInfeasible).
type Problem struct {
	Supply   []float64 // per source, > 0
	Capacity []float64 // per sink, >= 0
	Arcs     [][]Arc   // Arcs[i] lists admissible sinks of source i
	// Obs, when non-nil, records the counters "transport.solves",
	// "transport.sources" and "transport.splits" per Solve call.
	Obs *obs.Recorder
	// Ctx, when non-nil, is polled during the solve; a canceled or expired
	// context aborts with the context's error (no fallback: cancellation
	// is a caller decision, not an engine failure).
	Ctx context.Context
	// Degrade, when non-nil, records the condensed -> reference engine
	// fallback so results are never silently produced by the slower
	// oracle path.
	Degrade *degrade.Log
}

// NumSources returns the number of sources.
func (p *Problem) NumSources() int { return len(p.Supply) }

// NumSinks returns the number of sinks.
func (p *Problem) NumSinks() int { return len(p.Capacity) }

// Portion is a fractional assignment of a source to a sink.
type Portion struct {
	Sink   int
	Amount float64
}

// Solution holds a fractional transportation plan.
type Solution struct {
	// Assign[i] lists the portions of source i, largest first.
	Assign [][]Portion
	// Cost is the total cost of the plan.
	Cost float64
}

// ErrInfeasible reports that some supply cannot reach any sink with
// remaining capacity.
var ErrInfeasible = errors.New("transport: infeasible instance")

// Rounded returns, per source, the sink receiving the largest portion.
// Sources with no assignment (impossible for feasible instances) map to -1.
func (s *Solution) Rounded() []int {
	out := make([]int, len(s.Assign))
	for i, ps := range s.Assign {
		if len(ps) == 0 {
			out[i] = -1
			continue
		}
		out[i] = ps[0].Sink
	}
	return out
}

// NumSplit returns the number of sources assigned to more than one sink —
// by almost-integrality this is at most (number of sinks - 1).
func (s *Solution) NumSplit() int {
	n := 0
	for _, ps := range s.Assign {
		if len(ps) > 1 {
			n++
		}
	}
	return n
}

// SolveReference solves the instance exactly with the generic min-cost
// flow solver. Intended for tests and small instances.
func SolveReference(p *Problem) (*Solution, error) {
	if err := referenceFault.Check(); err != nil {
		return nil, fmt.Errorf("transport: reference engine: %w", err)
	}
	n, k := p.NumSources(), p.NumSinks()
	g := flow.NewMinCostFlow(n + k)
	g.Ctx = p.Ctx
	for i, s := range p.Supply {
		if s <= 0 {
			return nil, fmt.Errorf("transport: source %d has non-positive supply %g", i, s)
		}
		g.SetSupply(i, s)
	}
	for j, c := range p.Capacity {
		g.SetSupply(n+j, -c)
	}
	ids := make([][]flow.ArcID, n)
	for i, arcs := range p.Arcs {
		ids[i] = make([]flow.ArcID, len(arcs))
		for t, a := range arcs {
			ids[i][t] = g.AddArc(i, n+a.Sink, flow.Inf, a.Cost)
		}
	}
	cost, err := g.Solve()
	if err != nil {
		var inf *flow.ErrInfeasible
		if errors.As(err, &inf) {
			return nil, fmt.Errorf("%w: %g unrouted", ErrInfeasible, inf.Unrouted)
		}
		return nil, err
	}
	sol := &Solution{Assign: make([][]Portion, n), Cost: cost}
	for i, arcs := range p.Arcs {
		for t, a := range arcs {
			f := g.Flow(ids[i][t])
			if f > flow.Eps {
				sol.Assign[i] = append(sol.Assign[i], Portion{Sink: a.Sink, Amount: f})
			}
		}
		sortPortions(sol.Assign[i])
	}
	return sol, nil
}

func sortPortions(ps []Portion) {
	sort.Slice(ps, func(a, b int) bool {
		//fbpvet:floatok exact tie-break on stored amounts keeps the sort total
		if ps[a].Amount != ps[b].Amount {
			return ps[a].Amount > ps[b].Amount
		}
		return ps[a].Sink < ps[b].Sink
	})
}

// Solve solves the instance with the condensed-sink engine. The solution
// is an optimal fractional plan (same cost as SolveReference up to
// numerical tolerance).
//
// Fallback chain: when the condensed engine fails for any reason other
// than a genuine infeasibility certificate or a context abort — an
// internal defect such as a degenerate augmentation or an injected fault —
// Solve retries the instance on the reference successive-shortest-path
// engine. The fallback is recorded on p.Degrade (and as an obs counter via
// the log), so a degraded run is attributable, never silent.
func Solve(p *Problem) (*Solution, error) {
	sol, err := solveCondensed(p)
	if err != nil && fallbackWorthy(err) {
		p.Degrade.Add("transport.condensed", "reference-engine", err.Error())
		sol, err = SolveReference(p)
	}
	if p.Obs != nil {
		p.Obs.Count("transport.solves", 1)
		p.Obs.Count("transport.sources", float64(p.NumSources()))
		if err == nil {
			p.Obs.Count("transport.splits", float64(sol.NumSplit()))
		}
	}
	return sol, err
}

// fallbackWorthy reports whether a condensed-engine error justifies the
// reference-engine retry. Infeasibility is a property of the instance (the
// reference engine would reproduce it at higher cost), and context aborts
// are caller decisions; everything else is an engine failure worth a
// second opinion.
func fallbackWorthy(err error) bool {
	return !errors.Is(err, ErrInfeasible) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// presence tracks how much of source i currently sits at sink j, together
// with the source's cost at that sink (cached to keep the hot path free of
// map lookups).
type presence struct {
	source int
	amount float64
	cost   float64
}

// condEdge is one condensed-graph edge candidate: reassigning `source`
// from the owning sink to the target sink costs w.
type condEdge struct {
	w      float64
	source int // -1 = absent
}

// pairState caches the best and second-best candidates for one (from, to)
// sink pair, maintained incrementally as presences change. `stale` forces
// a full recompute of the pair on next access.
type pairState struct {
	best, second condEdge
	stale        bool
}

// condensed holds the solver state: presences per sink and a (k x k)
// matrix of candidate edges maintained incrementally, so an augmentation
// costs O(path * (k + recomputed pairs)) instead of O(n * k).
type condensed struct {
	k      int
	arcsOf [][]Arc
	// costOf is a dense n x k matrix of arc costs (+Inf = inadmissible);
	// dense storage keeps the hot recompute loops free of map lookups.
	costOf []float64
	at     [][]presence
	load   []float64
	pairs  [][]pairState // pairs[a][b]
}

func better(x, y condEdge) bool {
	if y.source < 0 {
		return x.source >= 0
	}
	if x.source < 0 {
		return false
	}
	//fbpvet:floatok exact tie-break on stored weights keeps the sort total
	if x.w != y.w {
		return x.w < y.w
	}
	return x.source < y.source
}

// offer inserts a candidate into the pair's best/second slots.
func (p *pairState) offer(e condEdge) {
	if p.best.source == e.source {
		// Same source re-offered (cost unchanged); nothing to do.
		return
	}
	if better(e, p.best) {
		p.second = p.best
		p.best = e
	} else if p.second.source != e.source && better(e, p.second) {
		p.second = e
	}
}

// onAdd records a new presence of src at sink a.
func (c *condensed) onAdd(a, src int, costA float64) {
	for _, arc := range c.arcsOf[src] {
		if arc.Sink == a {
			continue
		}
		c.pairs[a][arc.Sink].offer(condEdge{w: arc.Cost - costA, source: src})
	}
}

// onRemove records the full removal of src from sink a.
func (c *condensed) onRemove(a, src int) {
	for _, arc := range c.arcsOf[src] {
		if arc.Sink == a {
			continue
		}
		p := &c.pairs[a][arc.Sink]
		switch src {
		case p.best.source:
			if p.second.source >= 0 && !p.stale {
				p.best = p.second
				p.second = condEdge{source: -1}
				p.stale = true // second slot now unknown
			} else {
				p.best = condEdge{source: -1}
				p.stale = true
			}
		case p.second.source:
			p.second = condEdge{source: -1}
			p.stale = true
		}
	}
}

// edge returns the current best candidate for the pair (a, b), recomputing
// the pair from the presence list when stale. A stale pair whose best slot
// is still valid only needs its second slot refreshed lazily — but only
// when the best is removed, so we recompute fully here for simplicity.
func (c *condensed) edge(a, b int) condEdge {
	p := &c.pairs[a][b]
	if !p.stale {
		return p.best
	}
	if p.best.source >= 0 {
		// Best is valid; the unknown second slot only matters on the next
		// removal of best. Treat as fresh for reading.
		return p.best
	}
	// Full recompute of this pair.
	best, second := condEdge{source: -1}, condEdge{source: -1}
	for _, pr := range c.at[a] {
		if pr.amount <= flow.Eps {
			continue
		}
		cb := c.costOf[pr.source*c.k+b]
		if math.IsInf(cb, 1) {
			continue
		}
		e := condEdge{w: cb - pr.cost, source: pr.source}
		if better(e, best) {
			second = best
			best = e
		} else if better(e, second) {
			second = e
		}
	}
	p.best, p.second, p.stale = best, second, false
	return p.best
}

func solveCondensed(p *Problem) (*Solution, error) {
	if err := condensedFault.Check(); err != nil {
		return nil, fmt.Errorf("transport: condensed engine: %w", err)
	}
	n, k := p.NumSources(), p.NumSinks()
	// Per source: arcs deduplicated (cheapest per sink) and sorted by sink
	// so that all iteration below is deterministic, plus a map for O(1)
	// cost lookups.
	costOf := make([]float64, n*k)
	for i := range costOf {
		costOf[i] = math.Inf(1)
	}
	arcsOf := make([][]Arc, n)
	for i, arcs := range p.Arcs {
		for _, a := range arcs {
			if a.Cost < costOf[i*k+a.Sink] {
				costOf[i*k+a.Sink] = a.Cost
			}
		}
		arcsOf[i] = make([]Arc, 0, len(arcs))
		for sink := 0; sink < k; sink++ {
			if !math.IsInf(costOf[i*k+sink], 1) {
				arcsOf[i] = append(arcsOf[i], Arc{Sink: sink, Cost: costOf[i*k+sink]})
			}
		}
	}
	c := &condensed{
		k:      k,
		arcsOf: arcsOf,
		costOf: costOf,
		at:     make([][]presence, k),
		load:   make([]float64, k),
		pairs:  make([][]pairState, k),
	}
	for a := 0; a < k; a++ {
		c.pairs[a] = make([]pairState, k)
		for b := 0; b < k; b++ {
			c.pairs[a][b] = pairState{best: condEdge{source: -1}, second: condEdge{source: -1}}
		}
	}
	// Initial optimal pseudoflow: each source at its cheapest sink.
	for i := 0; i < n; i++ {
		if p.Supply[i] <= 0 {
			return nil, fmt.Errorf("transport: source %d has non-positive supply %g", i, p.Supply[i])
		}
		best, bestC := -1, math.Inf(1)
		for _, a := range arcsOf[i] {
			if a.Cost < bestC {
				best, bestC = a.Sink, a.Cost
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: source %d has no admissible sink", ErrInfeasible, i)
		}
		c.at[best] = append(c.at[best], presence{source: i, amount: p.Supply[i], cost: bestC})
		c.load[best] += p.Supply[i]
		c.onAdd(best, i, bestC)
	}
	// Cancel overloads: shortest path from an overloaded sink to a sink
	// with slack in the condensed graph (Bellman-Ford; reassignment costs
	// can be negative relative to the current plan).
	for {
		if p.Ctx != nil {
			if err := p.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		over := -1
		for j := 0; j < k; j++ {
			if c.load[j] > p.Capacity[j]+flow.Eps {
				over = j
				break
			}
		}
		if over < 0 {
			break
		}
		dist, via, ok := c.shortestPaths(over)
		if !ok {
			return nil, fmt.Errorf("transport: %w", ErrInfeasible)
		}
		// Best reachable sink with slack.
		target := -1
		bestD := math.Inf(1)
		for j := 0; j < k; j++ {
			if j == over || c.load[j] >= p.Capacity[j]-flow.Eps {
				continue
			}
			if dist[j] < bestD {
				target, bestD = j, dist[j]
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("transport: %w", ErrInfeasible)
		}
		// Reconstruct path.
		var path []int // sink sequence from over to target
		for j := target; j != over; j = via[j].from {
			path = append(path, j)
			if len(path) > k {
				return nil, fmt.Errorf("transport: predecessor cycle (internal error)")
			}
		}
		path = append(path, over)
		reverse(path)
		// Batch augmentation: along each path edge, all presences whose
		// reassignment cost ties the best candidate *exactly* lie on
		// shortest paths too, so the whole tied group can move in one
		// augmentation (a blocking-flow-style step). This collapses the
		// thousands of unit-sized augmentations that arise when many
		// cells share a position (initial pile-ups). Ties must be exact:
		// batching epsilon-near candidates would leave the pseudoflow
		// slightly suboptimal and later Bellman-Ford runs could chase
		// tiny negative cycles.
		want := c.load[over] - p.Capacity[over]
		if slack := p.Capacity[target] - c.load[target]; slack < want {
			want = slack
		}
		type tiedGroup struct {
			sources []int
			amounts []float64
			total   float64
		}
		groups := make([]tiedGroup, len(path)-1)
		move := want
		for t := 0; t+1 < len(path); t++ {
			a, b := path[t], path[t+1]
			bestW := costOf[via[b].source*k+b] - costOf[via[b].source*k+a]
			g := &groups[t]
			for _, pr := range c.at[a] {
				if pr.amount <= flow.Eps {
					continue
				}
				cb := costOf[pr.source*k+b]
				if math.IsInf(cb, 1) {
					continue
				}
				if cb-pr.cost <= bestW {
					g.sources = append(g.sources, pr.source)
					g.amounts = append(g.amounts, pr.amount)
					g.total += pr.amount
				}
			}
			if g.total < move {
				move = g.total
			}
		}
		if move <= flow.Eps {
			return nil, fmt.Errorf("transport: degenerate augmentation (move %g)", move)
		}
		for t := 0; t+1 < len(path); t++ {
			a, b := path[t], path[t+1]
			g := &groups[t]
			remaining := move
			for gi := 0; gi < len(g.sources) && remaining > flow.Eps; gi++ {
				src := g.sources[gi]
				amt := g.amounts[gi]
				if amt > remaining {
					amt = remaining
				}
				if removePresence(&c.at[a], src, amt) {
					c.onRemove(a, src)
				}
				if addPresence(&c.at[b], src, amt, costOf[src*k+b]) {
					c.onAdd(b, src, costOf[src*k+b])
				}
				remaining -= amt
			}
			c.load[a] -= move
			c.load[b] += move
		}
	}
	// Extract solution.
	sol := &Solution{Assign: make([][]Portion, n)}
	for j := 0; j < k; j++ {
		for _, pr := range c.at[j] {
			if pr.amount > flow.Eps {
				sol.Assign[pr.source] = append(sol.Assign[pr.source], Portion{Sink: j, Amount: pr.amount})
				sol.Cost += pr.amount * pr.cost
			}
		}
	}
	for i := range sol.Assign {
		sortPortions(sol.Assign[i])
	}
	return sol, nil
}

type viaEdge struct {
	from   int // predecessor sink
	source int // source reassigned from 'from' to this sink
}

// shortestPaths runs Bellman-Ford over the k-sink condensed graph from the
// start sink. Edge a->b has weight min over sources present at a and
// admissible at b of (cost(s,b) - cost(s,a)). Iteration is over sorted arc
// slices so tie-breaking (and thus the whole solver) is deterministic.
func (c *condensed) shortestPaths(start int) ([]float64, []viaEdge, bool) {
	k := c.k
	dist := make([]float64, k)
	via := make([]viaEdge, k)
	for j := range dist {
		dist[j] = math.Inf(1)
		via[j] = viaEdge{from: -1, source: -1}
	}
	dist[start] = 0
	for round := 0; round < k; round++ {
		improved := false
		for a := 0; a < k; a++ {
			if math.IsInf(dist[a], 1) {
				continue
			}
			for b := 0; b < k; b++ {
				if b == a {
					continue
				}
				e := c.edge(a, b)
				if e.source < 0 {
					continue
				}
				if nd := dist[a] + e.w; nd+flow.Eps < dist[b] {
					dist[b] = nd
					via[b] = viaEdge{from: a, source: e.source}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	reachable := false
	for j := 0; j < k; j++ {
		if !math.IsInf(dist[j], 1) {
			reachable = true
			break
		}
	}
	return dist, via, reachable
}

func presenceAmount(ps []presence, source int) float64 {
	for _, pr := range ps {
		if pr.source == source {
			return pr.amount
		}
	}
	return 0
}

// removePresence reduces source's amount at the sink; it reports whether
// the presence disappeared entirely (candidate edges must be retired).
func removePresence(ps *[]presence, source int, amt float64) bool {
	for i := range *ps {
		if (*ps)[i].source == source {
			(*ps)[i].amount -= amt
			if (*ps)[i].amount <= flow.Eps {
				last := len(*ps) - 1
				(*ps)[i] = (*ps)[last]
				*ps = (*ps)[:last]
				return true
			}
			return false
		}
	}
	return false
}

// addPresence adds amount of source at the sink; it reports whether the
// presence is new (candidate edges must be offered).
func addPresence(ps *[]presence, source int, amt, cost float64) bool {
	for i := range *ps {
		if (*ps)[i].source == source {
			(*ps)[i].amount += amt
			return false
		}
	}
	*ps = append(*ps, presence{source: source, amount: amt, cost: cost})
	return true
}

func reverse(v []int) {
	for i, j := 0, len(v)-1; i < j; i, j = i+1, j-1 {
		v[i], v[j] = v[j], v[i]
	}
}
