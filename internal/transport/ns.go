// Network-simplex transportation engine: the same bipartite model as
// SolveReference, solved by internal/flow's primal network simplex with
// optional warm starting. The realization path re-solves near-identical
// instances over and over — the relaxation ladder scales sink capacities,
// neighbor-pair passes revisit the same window pair — and the spanning-tree
// basis of one solve is a high-quality start for the next, because sink
// capacities enter the model as sink-node supplies: the arc structure is
// untouched by a capacity change, so an exported basis revalidates cleanly.
package transport

import (
	"errors"
	"fmt"

	"fbplace/internal/flow"
)

// SolveNS solves the instance with the network simplex, warm-started from
// basis when one is supplied (nil means cold start). It returns the
// solution together with the basis of this solve for chaining into the
// next structurally identical instance (next ladder rung, next pair pass).
// The returned basis is non-nil even on *flow.ErrStalled and ErrInfeasible
// — retrying a relaxed instance from the failed rung's tree is the whole
// point — and nil only when the solve never built a tree.
//
// Like the other engines it routes all supply; unreachable supply reports
// ErrInfeasible. A stall (cycling guard) is returned as *flow.ErrStalled
// for the caller's engine-degradation chain; it is not an infeasibility
// certificate.
func SolveNS(p *Problem, basis *flow.Basis) (*Solution, *flow.Basis, error) {
	n, k := p.NumSources(), p.NumSinks()
	g := flow.NewMinCostFlow(n + k)
	g.Ctx = p.Ctx
	g.Obs = p.Obs
	for i, s := range p.Supply {
		if s <= 0 {
			return nil, nil, fmt.Errorf("transport: source %d has non-positive supply %g", i, s)
		}
		g.SetSupply(i, s)
	}
	for j, c := range p.Capacity {
		g.SetSupply(n+j, -c)
	}
	ids := make([][]flow.ArcID, n)
	for i, arcs := range p.Arcs {
		ids[i] = make([]flow.ArcID, len(arcs))
		for t, a := range arcs {
			ids[i][t] = g.AddArc(i, n+a.Sink, flow.Inf, a.Cost)
		}
	}
	cost, err := g.SolveNSWarm(basis)
	next := g.ExportBasis()
	if err != nil {
		var inf *flow.ErrInfeasible
		if errors.As(err, &inf) {
			return nil, next, fmt.Errorf("%w: %g unrouted", ErrInfeasible, inf.Unrouted)
		}
		return nil, next, err
	}
	sol := &Solution{Assign: make([][]Portion, n), Cost: cost}
	for i, arcs := range p.Arcs {
		for t, a := range arcs {
			f := g.Flow(ids[i][t])
			if f > flow.Eps {
				sol.Assign[i] = append(sol.Assign[i], Portion{Sink: a.Sink, Amount: f})
			}
		}
		sortPortions(sol.Assign[i])
	}
	return sol, next, nil
}
