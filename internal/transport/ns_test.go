package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/flow"
	"fbplace/internal/obs"
)

// Property: the NS engine matches the reference engine on random
// instances, both cold and warm-started from its own exported basis on a
// re-solve with scaled capacities (the relaxation-ladder access pattern).
func TestNSMatchesReferenceWarmLadder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		ref, err1 := SolveReference(p)
		cold, basis, err2 := SolveNS(p, nil)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 == nil && math.Abs(ref.Cost-cold.Cost) > 1e-6*(1+math.Abs(ref.Cost)) {
			return false
		}
		if basis == nil {
			return false
		}
		// Next rung: capacities scaled up, same structure.
		relaxed := &Problem{
			Supply:   p.Supply,
			Capacity: make([]float64, len(p.Capacity)),
			Arcs:     p.Arcs,
		}
		for j, c := range p.Capacity {
			relaxed.Capacity[j] = c * 1.5
		}
		refR, err3 := SolveReference(relaxed)
		warm, _, err4 := SolveNS(relaxed, basis)
		if (err3 == nil) != (err4 == nil) {
			return false
		}
		if err3 != nil {
			return true
		}
		return math.Abs(refR.Cost-warm.Cost) < 1e-6*(1+math.Abs(refR.Cost))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The ladder warm start must actually be accepted when only capacities
// move: the arc structure is identical, so ns.warmstart (not
// ns.coldfallback) must fire.
func TestNSWarmStartAcceptedAcrossRungs(t *testing.T) {
	p := &Problem{
		Supply:   []float64{4, 3, 2},
		Capacity: []float64{3, 3, 3},
		Arcs: [][]Arc{
			{{Sink: 0, Cost: 1}, {Sink: 1, Cost: 4}},
			{{Sink: 0, Cost: 2}, {Sink: 1, Cost: 1}, {Sink: 2, Cost: 6}},
			{{Sink: 1, Cost: 3}, {Sink: 2, Cost: 1}},
		},
	}
	_, basis, err := SolveNS(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := *p
	relaxed.Capacity = []float64{4, 4, 4}
	relaxed.Obs = obs.New(nil)
	warm, _, err := SolveNS(&relaxed, basis)
	if err != nil {
		t.Fatal(err)
	}
	if got := relaxed.Obs.Counter("ns.warmstart"); got != 1 {
		t.Fatalf("ns.warmstart = %v, want 1", got)
	}
	ref, err := SolveReference(&relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Cost-ref.Cost) > 1e-9 {
		t.Fatalf("warm cost %v, reference %v", warm.Cost, ref.Cost)
	}
}

// assertSolutionsEquivalent fails unless the two solutions agree on cost,
// per-source totals and capacity feasibility (portion sets may differ
// between optima with ties, so only aggregate invariants are compared).
func assertSolutionsEquivalent(t *testing.T, p *Problem, got, want *Solution) {
	t.Helper()
	if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
		t.Fatalf("cost %v, want %v", got.Cost, want.Cost)
	}
	loads := make([]float64, p.NumSinks())
	for i, ps := range got.Assign {
		sum := 0.0
		for _, pr := range ps {
			sum += pr.Amount
			loads[pr.Sink] += pr.Amount
		}
		if math.Abs(sum-p.Supply[i]) > 1e-6 {
			t.Fatalf("source %d ships %v, supply %v", i, sum, p.Supply[i])
		}
	}
	for j, l := range loads {
		if l > p.Capacity[j]+1e-6 {
			t.Fatalf("sink %d load %v > capacity %v", j, l, p.Capacity[j])
		}
	}
	if got.NumSplit() > p.NumSinks()-1 {
		t.Fatalf("NumSplit = %d > k-1 = %d", got.NumSplit(), p.NumSinks()-1)
	}
}

// Satellite: a faultsim-armed condensed failure must fall back to the
// reference engine with a correct Solution (portions, NumSplit) and a
// degrade counter bump.
func TestCondensedFallbackFaultsim(t *testing.T) {
	defer faultsim.Reset()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		want, err := SolveReference(p)
		if err != nil {
			continue
		}
		if err := faultsim.Arm("transport.condensed.fail", faultsim.Schedule{}); err != nil {
			t.Fatal(err)
		}
		rec := obs.New(nil)
		p.Obs = rec
		p.Degrade = degrade.New(rec)
		got, err := Solve(p)
		faultsim.Disarm("transport.condensed.fail")
		if err != nil {
			t.Fatalf("trial %d: fallback did not rescue the solve: %v", trial, err)
		}
		assertSolutionsEquivalent(t, p, got, want)
		if got := rec.Counter("degrade.transport.condensed"); got != 1 {
			t.Fatalf("trial %d: degrade.transport.condensed = %v, want 1", trial, got)
		}
		if p.Degrade.Len() != 1 {
			t.Fatalf("trial %d: degrade log has %d events, want 1", trial, p.Degrade.Len())
		}
		ev := p.Degrade.Events()[0]
		if ev.Stage != "transport.condensed" || ev.Fallback != "reference-engine" {
			t.Fatalf("trial %d: degrade event %+v", trial, ev)
		}
	}
}

// Satellite: fallbackWorthy must treat a solver stall as an engine
// failure (retry on the reference path) but never retry infeasibility
// certificates or context aborts.
func TestFallbackWorthySyntheticStall(t *testing.T) {
	stall := fmt.Errorf("transport: ns engine: %w", &flow.ErrStalled{Pivots: 12345})
	if !fallbackWorthy(stall) {
		t.Fatal("a stall must be fallback-worthy")
	}
	if !fallbackWorthy(errors.New("transport: degenerate augmentation (move 0)")) {
		t.Fatal("an internal engine defect must be fallback-worthy")
	}
	if fallbackWorthy(fmt.Errorf("%w: 3 unrouted", ErrInfeasible)) {
		t.Fatal("infeasibility must not be retried")
	}
	if fallbackWorthy(context.Canceled) || fallbackWorthy(context.DeadlineExceeded) {
		t.Fatal("context aborts must not be retried")
	}
}

// Satellite: when both engines are armed to fail, the chain exhausts and
// the caller receives the reference engine's structured error, with the
// degrade event still recorded.
func TestCondensedFallbackChainExhausted(t *testing.T) {
	defer faultsim.Reset()
	if err := faultsim.Arm("transport.condensed.fail", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	if err := faultsim.Arm("transport.reference.fail", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Supply:   []float64{1},
		Capacity: []float64{2},
		Arcs:     [][]Arc{{{Sink: 0, Cost: 1}}},
		Degrade:  degrade.New(nil),
	}
	_, err := Solve(p)
	if !errors.Is(err, faultsim.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if p.Degrade.Len() != 1 {
		t.Fatalf("degrade log has %d events, want 1", p.Degrade.Len())
	}
}
