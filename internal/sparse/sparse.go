// Package sparse implements the sparse linear-algebra substrate of the
// quadratic placer: coordinate-format assembly of symmetric positive
// definite systems and a Jacobi-preconditioned conjugate-gradient solver.
//
// Quadratic netlength minimization (paper §III) reduces to one SPD system
// per coordinate axis; the matrices are graph Laplacians of the net model
// plus positive diagonal terms from fixed pins and anchors, so CG with a
// diagonal preconditioner converges quickly and needs no factorization.
package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
)

// cgFault forces SolveCG to report non-convergence at entry, exercising
// the quadratic placer's retry-then-anchor fallback chain.
var cgFault = faultsim.Register("sparse.cg.noconverge",
	"SolveCG reports ErrNotConverged without iterating")

// Builder accumulates matrix entries in coordinate (triplet) form.
// Duplicate (row, col) entries are summed on Build, which matches the
// natural assembly of clique and star net models.
type Builder struct {
	n       int
	rows    []int32
	cols    []int32
	vals    []float64
	diagAdd []float64
}

// NewBuilder returns a builder for an n x n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, diagAdd: make([]float64, n)}
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Reset re-dimensions the builder to an n x n matrix and clears every
// accumulated entry while keeping the allocated capacity, so a builder can
// be reused across the many small systems of the realization-local QP
// without re-allocating. A reset builder produces bit-identical Build
// output to a fresh NewBuilder(n) fed the same entry sequence.
func (b *Builder) Reset(n int) {
	b.n = n
	b.rows = b.rows[:0]
	b.cols = b.cols[:0]
	b.vals = b.vals[:0]
	if cap(b.diagAdd) < n {
		b.diagAdd = make([]float64, n)
		return
	}
	b.diagAdd = b.diagAdd[:n]
	for i := range b.diagAdd {
		b.diagAdd[i] = 0
	}
}

// Add accumulates v into entry (i, j). For off-diagonal entries the caller
// is responsible for also adding the symmetric entry (j, i); AddSym does
// both plus the diagonal, which is the common pattern for spring terms.
func (b *Builder) Add(i, j int, v float64) {
	if i == j {
		b.diagAdd[i] += v
		return
	}
	b.rows = append(b.rows, int32(i))
	b.cols = append(b.cols, int32(j))
	b.vals = append(b.vals, v)
}

// AddSym adds a spring of weight w between variables i and j:
// +w on both diagonals, -w on both off-diagonals. This is the quadratic
// form w*(x_i - x_j)^2 differentiated.
func (b *Builder) AddSym(i, j int, w float64) {
	b.diagAdd[i] += w
	b.diagAdd[j] += w
	b.rows = append(b.rows, int32(i), int32(j))
	b.cols = append(b.cols, int32(j), int32(i))
	b.vals = append(b.vals, -w, -w)
}

// AddDiag adds w to the diagonal entry of variable i (a spring to a fixed
// location; the location itself contributes w*pos to the right-hand side).
func (b *Builder) AddDiag(i int, w float64) { b.diagAdd[i] += w }

// Build assembles the accumulated entries into a CSR matrix. Entries with
// equal coordinates are summed; explicit zeros are kept (they are rare and
// harmless).
func (b *Builder) Build() *CSR {
	type key struct{ r, c int32 }
	// Count entries per row after dedup. Use sort over a permutation.
	idx := make([]int, len(b.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(p, q int) bool {
		ip, iq := idx[p], idx[q]
		if b.rows[ip] != b.rows[iq] {
			return b.rows[ip] < b.rows[iq]
		}
		return b.cols[ip] < b.cols[iq]
	})
	m := &CSR{
		N:    b.n,
		Ptr:  make([]int32, b.n+1),
		Diag: append([]float64(nil), b.diagAdd...),
	}
	var last key
	haveLast := false
	for _, p := range idx {
		k := key{b.rows[p], b.cols[p]}
		if haveLast && k == last {
			m.Val[len(m.Val)-1] += b.vals[p]
			continue
		}
		m.Col = append(m.Col, k.c)
		m.Val = append(m.Val, b.vals[p])
		m.Ptr[k.r+1]++
		last, haveLast = k, true
	}
	for i := 0; i < b.n; i++ {
		m.Ptr[i+1] += m.Ptr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix with the diagonal stored
// separately (every row of a placement Laplacian has a diagonal entry, and
// keeping it apart makes the Jacobi preconditioner free).
type CSR struct {
	N    int
	Ptr  []int32 // row pointers into Col/Val, length N+1
	Col  []int32
	Val  []float64
	Diag []float64
}

// NNZ returns the number of stored off-diagonal entries plus diagonal.
func (m *CSR) NNZ() int { return len(m.Val) + m.N }

// MulVec computes dst = M*x. dst and x must have length N and must not
// alias.
func (m *CSR) MulVec(dst, x []float64) {
	for i := 0; i < m.N; i++ {
		s := m.Diag[i] * x[i]
		for p := m.Ptr[i]; p < m.Ptr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		dst[i] = s
	}
}

// ErrNotConverged is returned when CG exhausts its iteration budget before
// reaching the requested tolerance. The best iterate found is still
// written to x, so callers may choose to continue with it.
var ErrNotConverged = errors.New("sparse: CG did not converge")

// CGOptions controls the conjugate-gradient solve.
type CGOptions struct {
	// Tol is the relative residual target ||r|| <= Tol*||b||. Default 1e-6.
	Tol float64
	// MaxIter bounds the iterations. Default 10*N (placement Laplacians
	// typically converge in far fewer).
	MaxIter int
	// Obs, when non-nil, records counters "cg.solves" and "cg.iters" and
	// the gauge "cg.residual" (final relative residual) per solve.
	Obs *obs.Recorder
	// Ctx, when non-nil, is polled every few iterations; a canceled or
	// expired context aborts the solve with the context's error (which is
	// distinct from ErrNotConverged: cancellation must not trigger
	// convergence fallbacks).
	Ctx context.Context
}

// SolveCG solves M*x = rhs for symmetric positive definite M using
// Jacobi-preconditioned conjugate gradients, starting from the initial
// guess already in x (warm starts matter: each placement level starts from
// the previous level's solution). It returns the number of iterations.
func SolveCG(m *CSR, x, rhs []float64, opt CGOptions) (int, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * m.N
		if opt.MaxIter < 100 {
			opt.MaxIter = 100
		}
	}
	n := m.N
	if len(x) != n || len(rhs) != n {
		return 0, fmt.Errorf("sparse: dimension mismatch: matrix %d, x %d, rhs %d", n, len(x), len(rhs))
	}
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return 0, err
		}
	}
	if err := cgFault.Check(); err != nil {
		// Injected non-convergence: same contract as the organic case —
		// the warm-start iterate stays in x and ErrNotConverged is
		// reported (wrapping the injection record for attribution).
		return 0, fmt.Errorf("sparse: %w: %w", ErrNotConverged, err)
	}
	inv := make([]float64, n)
	for i, d := range m.Diag {
		if d <= 0 {
			return 0, fmt.Errorf("sparse: non-positive diagonal %g at row %d (matrix not SPD)", d, i)
		}
		inv[i] = 1 / d
	}
	record := func(iters int, relres float64) {
		if opt.Obs != nil {
			opt.Obs.Count("cg.solves", 1)
			opt.Obs.Count("cg.iters", float64(iters))
			opt.Obs.Gauge("cg.residual", relres)
		}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.MulVec(r, x)
	bnorm := 0.0
	rnorm0 := 0.0
	for i := range r {
		r[i] = rhs[i] - r[i]
		rnorm0 += r[i] * r[i]
		bnorm += rhs[i] * rhs[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		record(0, 0)
		return 0, nil
	}
	if math.Sqrt(rnorm0) <= opt.Tol*bnorm {
		record(0, math.Sqrt(rnorm0)/bnorm)
		return 0, nil // warm start already converged
	}
	rz := 0.0
	for i := range r {
		z[i] = inv[i] * r[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	target := opt.Tol * bnorm
	lastRel := math.Sqrt(rnorm0) / bnorm
	for iter := 1; iter <= opt.MaxIter; iter++ {
		// Deadline/cancellation poll, cheap relative to a MulVec: every 64
		// iterations keeps the abort latency well under one outer
		// placement iteration even on large systems.
		if opt.Ctx != nil && iter&63 == 0 {
			if err := opt.Ctx.Err(); err != nil {
				record(iter, lastRel)
				return iter, err
			}
		}
		m.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			// Numerical breakdown; the current iterate is the best we have.
			record(iter, lastRel)
			return iter, fmt.Errorf("sparse: CG breakdown, p^T A p = %g: %w", pap, ErrNotConverged)
		}
		alpha := rz / pap
		rnorm := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		lastRel = math.Sqrt(rnorm) / bnorm
		if math.Sqrt(rnorm) <= target {
			record(iter, lastRel)
			return iter, nil
		}
		rzNew := 0.0
		for i := range z {
			z[i] = inv[i] * r[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	record(opt.MaxIter, lastRel)
	return opt.MaxIter, ErrNotConverged
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
