package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 0, 5)
	b.AddDiag(0, 7)
	b.Add(2, 2, 1) // diagonal via Add
	m := b.Build()
	if m.Diag[0] != 7 || m.Diag[2] != 1 {
		t.Fatalf("diag = %v", m.Diag)
	}
	// Row 0 has one stored entry with value 5.
	if m.Ptr[1]-m.Ptr[0] != 1 || m.Val[m.Ptr[0]] != 5 || m.Col[m.Ptr[0]] != 1 {
		t.Fatalf("row 0 wrong: ptr=%v col=%v val=%v", m.Ptr, m.Col, m.Val)
	}
	if m.Ptr[2]-m.Ptr[1] != 1 || m.Val[m.Ptr[1]] != 5 {
		t.Fatalf("row 1 wrong")
	}
}

func TestAddSymBuildsLaplacian(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 1, 4)
	b.AddDiag(0, 1) // anchor to make it SPD
	m := b.Build()
	// M = [[5,-4],[-4,4]]
	x := []float64{1, 2}
	y := make([]float64, 2)
	m.MulVec(y, x)
	if y[0] != 5-8 || y[1] != -4+8 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecKnown(t *testing.T) {
	b := NewBuilder(3)
	b.AddDiag(0, 2)
	b.AddDiag(1, 3)
	b.AddDiag(2, 4)
	b.Add(0, 2, -1)
	b.Add(2, 0, -1)
	m := b.Build()
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	m.MulVec(y, x)
	want := []float64{1, 3, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestSolveCGIdentity(t *testing.T) {
	b := NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddDiag(i, 1)
	}
	m := b.Build()
	rhs := []float64{1, -2, 3, 0.5}
	x := make([]float64, 4)
	if _, err := SolveCG(m, x, rhs, CGOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range rhs {
		if math.Abs(x[i]-rhs[i]) > 1e-9 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	b := NewBuilder(2)
	b.AddSym(0, 1, 1)
	b.AddDiag(0, 1)
	m := b.Build()
	x := []float64{5, -3}
	it, err := SolveCG(m, x, []float64{0, 0}, CGOptions{})
	if err != nil || it != 0 {
		t.Fatalf("it=%d err=%v", it, err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("x = %v, want zeros", x)
	}
}

// Build a random SPD system (Laplacian of a random connected graph plus
// random positive diagonal), solve, and verify the residual.
func TestSolveCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			b.AddSym(i, j, 0.1+rng.Float64())
		}
		for e := 0; e < 2*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				b.AddSym(i, j, 0.1+rng.Float64())
			}
		}
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 || i == 0 {
				b.AddDiag(i, 0.5+rng.Float64())
			}
		}
		m := b.Build()
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64() * 10
		}
		rhs := make([]float64, n)
		m.MulVec(rhs, want)
		x := make([]float64, n)
		if _, err := SolveCG(m, x, rhs, CGOptions{Tol: 1e-10}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := make([]float64, n)
		m.MulVec(res, x)
		for i := range res {
			if math.Abs(res[i]-rhs[i]) > 1e-6*(1+math.Abs(rhs[i])) {
				t.Fatalf("trial %d: residual %g at %d", trial, res[i]-rhs[i], i)
			}
		}
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	b := NewBuilder(3)
	b.AddSym(0, 1, 1)
	b.AddSym(1, 2, 1)
	b.AddDiag(0, 2)
	m := b.Build()
	rhs := []float64{2, 0, 1}
	cold := make([]float64, 3)
	it1, err := SolveCG(m, cold, rhs, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution must converge immediately-ish.
	warm := append([]float64(nil), cold...)
	it2, err := SolveCG(m, warm, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if it2 > it1 {
		t.Fatalf("warm start took %d iters, cold %d", it2, it1)
	}
}

func TestSolveCGRejectsNonPositiveDiag(t *testing.T) {
	b := NewBuilder(2)
	b.AddDiag(0, 1)
	// Row 1 diagonal left at 0.
	m := b.Build()
	x := make([]float64, 2)
	if _, err := SolveCG(m, x, []float64{1, 1}, CGOptions{}); err == nil {
		t.Fatal("expected error for zero diagonal")
	}
}

func TestSolveCGDimensionMismatch(t *testing.T) {
	b := NewBuilder(2)
	b.AddDiag(0, 1)
	b.AddDiag(1, 1)
	m := b.Build()
	if _, err := SolveCG(m, make([]float64, 3), []float64{1, 1}, CGOptions{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveCGMaxIter(t *testing.T) {
	// A chain Laplacian with a tiny anchor is ill-conditioned; 1 iteration
	// will not reach 1e-14.
	n := 50
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddSym(i-1, i, 1)
	}
	b.AddDiag(0, 1e-6)
	m := b.Build()
	rhs := make([]float64, n)
	rhs[n-1] = 1
	x := make([]float64, n)
	_, err := SolveCG(m, x, rhs, CGOptions{Tol: 1e-14, MaxIter: 1})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

// Property: for random small SPD systems, CG's solution matches dense
// Gaussian elimination.
func TestSolveCGMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		b := NewBuilder(n)
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			w := 0.5 + rng.Float64()
			b.AddSym(i, j, w)
			dense[i][i] += w
			dense[j][j] += w
			dense[i][j] -= w
			dense[j][i] -= w
		}
		for i := 0; i < n; i++ {
			w := 0.5 + rng.Float64()
			b.AddDiag(i, w)
			dense[i][i] += w
		}
		m := b.Build()
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if _, err := SolveCG(m, x, rhs, CGOptions{Tol: 1e-12}); err != nil {
			return false
		}
		ref := gaussSolve(dense, append([]float64(nil), rhs...))
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-6*(1+math.Abs(ref[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// gaussSolve solves a dense system with partial pivoting (test reference).
func gaussSolve(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x
}

func BenchmarkMulVec(b *testing.B) {
	n := 10000
	bl := NewBuilder(n)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i < n; i++ {
		bl.AddSym(i, rng.Intn(i), 1)
	}
	for i := 0; i < n; i++ {
		bl.AddDiag(i, 1)
	}
	m := bl.Build()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}

// TestBuilderResetBitIdentical checks the reuse contract of Reset: a reset
// builder fed the same entry sequence must produce a CSR bit-identical to a
// fresh builder's, including after shrinking and regrowing the dimension.
func TestBuilderResetBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	feed := func(b *Builder, n int, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for k := 0; k < 5*n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			switch {
			case i == j:
				b.AddDiag(i, r.Float64())
			case k%3 == 0:
				b.AddSym(i, j, r.Float64())
			default:
				b.Add(i, j, r.Float64())
			}
		}
	}
	same := func(a, b *CSR) bool {
		if a.N != b.N || len(a.Val) != len(b.Val) {
			return false
		}
		for i := range a.Ptr {
			if a.Ptr[i] != b.Ptr[i] {
				return false
			}
		}
		for i := range a.Val {
			if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
				return false
			}
		}
		for i := range a.Diag {
			if a.Diag[i] != b.Diag[i] {
				return false
			}
		}
		return true
	}
	reused := NewBuilder(0)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		seed := rng.Int63()
		reused.Reset(n)
		fresh := NewBuilder(n)
		feed(reused, n, seed)
		feed(fresh, n, seed)
		if reused.N() != n {
			t.Fatalf("trial %d: N() = %d after Reset(%d)", trial, reused.N(), n)
		}
		if !same(reused.Build(), fresh.Build()) {
			t.Fatalf("trial %d (n=%d): reset builder diverged from fresh builder", trial, n)
		}
	}
}
