// Package rql implements the force-directed comparison baselines of the
// paper's experiments: an RQL-style placer [25] (quadratic solve plus
// relaxed spreading via fixed-point anchors computed by FastPlace-style
// cell shifting) and a Kraftwerk2-style variant [21] (direct move-based
// spreading). The industrial RQL binary is proprietary; this re-implements
// the published algorithm so the Table II/IV/V/VII comparisons exercise
// the same algorithmic trade-offs.
//
// Movebound support is deliberately naive — anchor targets are projected
// into the movebound area each iteration, nothing guarantees containment —
// which reproduces the violation behaviour the paper reports for RQL on
// movebounded instances (Tables IV and V).
package rql

import (
	"fmt"
	"math"

	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/qp"
	"fbplace/internal/region"
)

// Style selects the spreading flavour.
type Style int

const (
	// StyleRQL anchors cells to shifted targets with growing weights.
	StyleRQL Style = iota
	// StyleKraftwerk moves cells directly by the shift ("demand points"),
	// re-solving the quadratic system around the moved positions.
	StyleKraftwerk
)

// Config tunes the baseline placer.
type Config struct {
	// TargetDensity is the bin capacity scaling (0.97 in the paper runs).
	TargetDensity float64
	// BinsX, BinsY give the spreading bin grid; 0 = automatic.
	BinsX, BinsY int
	// MaxIters bounds the spread iterations. Default 48.
	MaxIters int
	// StopOverflow stops when overflow / movable area falls below this.
	// Default 0.02.
	StopOverflow float64
	// AnchorWeight is the base fixed-point weight (grows linearly per
	// iteration). Default 0.01.
	AnchorWeight float64
	// Style selects RQL-like or Kraftwerk-like spreading.
	Style Style
	// Movebounds, when non-nil, enables the naive movebound projection.
	Movebounds []region.Movebound
	// QP are the quadratic solver options.
	QP qp.Options
}

func (c *Config) fill(n *netlist.Netlist) {
	if c.TargetDensity == 0 {
		c.TargetDensity = 0.97
	}
	if c.MaxIters == 0 {
		c.MaxIters = 48
	}
	if c.StopOverflow == 0 {
		c.StopOverflow = 0.02
	}
	if c.AnchorWeight == 0 {
		c.AnchorWeight = 0.01
	}
	if c.BinsX == 0 || c.BinsY == 0 {
		movable := len(n.MovableIDs())
		k := int(math.Sqrt(float64(movable)/6)) + 1
		if k < 2 {
			k = 2
		}
		if k > 256 {
			k = 256
		}
		c.BinsX, c.BinsY = k, k
	}
}

// Report summarizes a baseline run.
type Report struct {
	Iters         int
	FinalOverflow float64 // overflow / movable area
}

// Place runs the force-directed global placement on the netlist in place.
func Place(n *netlist.Netlist, cfg Config) (Report, error) {
	cfg.fill(n)
	movable := n.MovableIDs()
	if len(movable) == 0 {
		return Report{}, nil
	}
	totalArea := n.TotalMovableArea()
	blockages := n.FixedRects()
	// Every solve of the iteration loop runs sequentially; share one
	// workspace across them.
	cfg.QP.Workspace = qp.NewWorkspace()

	// Initial unconstrained QP.
	if err := qp.Solve(n, nil, cfg.QP); err != nil {
		return Report{}, fmt.Errorf("rql: initial QP: %w", err)
	}

	anchors := make([]qp.Anchor, len(movable))
	rep := Report{}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		rep.Iters = iter
		dm := grid.NewDensityMap(n.Area, cfg.BinsX, cfg.BinsY, blockages, cfg.TargetDensity)
		dm.Accumulate(n)
		rep.FinalOverflow = dm.Overflow() / totalArea
		if rep.FinalOverflow < cfg.StopOverflow {
			break
		}
		targets := shiftTargets(n, dm, movable)
		// Naive movebound handling: project the target into the cell's
		// movebound area (the cell itself may still end up outside).
		if cfg.Movebounds != nil {
			for i, id := range movable {
				mb := n.Cells[id].Movebound
				if mb == netlist.NoMovebound {
					continue
				}
				targets[i] = projectInto(cfg.Movebounds[mb].Area, targets[i])
			}
		}
		switch cfg.Style {
		case StyleKraftwerk:
			// Move cells directly, then relax connectivity around the
			// moved positions with a moderate constant pull.
			for i, id := range movable {
				n.SetPos(id, targets[i])
				anchors[i] = qp.Anchor{Cell: id, Target: targets[i], Weight: cfg.AnchorWeight * 8}
			}
		default:
			w := cfg.AnchorWeight * float64(iter)
			for i, id := range movable {
				anchors[i] = qp.Anchor{Cell: id, Target: targets[i], Weight: w}
			}
		}
		// Linearization (the "L" of RQL): bound-to-bound springs weighted
		// by current distances make the quadratic objective track HPWL.
		opt := cfg.QP
		opt.NetModel = qp.ModelB2B
		if err := qp.Solve(n, anchors, opt); err != nil {
			return rep, fmt.Errorf("rql: iteration %d QP: %w", iter, err)
		}
	}
	// Naive movebound enforcement phase: pull each movebound cell toward
	// the projection of its current position into its area with growing
	// weights. Connectivity can still hold cells outside — the residual
	// violations correspond to the "viol." column the paper reports for
	// RQL on movebounded designs.
	if cfg.Movebounds != nil {
		for _, w := range []float64{0.3, 1, 3, 10} {
			var mbAnchors []qp.Anchor
			for _, id := range movable {
				mb := n.Cells[id].Movebound
				if mb == netlist.NoMovebound {
					continue
				}
				target := projectInto(cfg.Movebounds[mb].Area, n.Pos(id))
				mbAnchors = append(mbAnchors, qp.Anchor{Cell: id, Target: target, Weight: w})
			}
			if len(mbAnchors) == 0 {
				break
			}
			if err := qp.Solve(n, mbAnchors, cfg.QP); err != nil {
				return rep, fmt.Errorf("rql: movebound phase: %w", err)
			}
		}
	}
	return rep, nil
}

// shiftTargets computes FastPlace-style cell-shifting targets: bin
// boundaries stretch away from overfull bins, and cells are remapped
// piecewise-linearly, first in x per bin row, then in y per bin column.
func shiftTargets(n *netlist.Netlist, dm *grid.DensityMap, movable []netlist.CellID) []geom.Point {
	g := dm.Grid
	delta := 0.5 * averageCapacity(dm)
	targets := make([]geom.Point, len(movable))
	newXB := stretchedBoundaries(dm, delta, true)
	newYB := stretchedBoundaries(dm, delta, false)
	for i, id := range movable {
		p := n.Pos(id)
		ix, iy := g.Locate(p)
		bin := g.Window(ix, iy)
		// x mapping within row iy.
		ob0, ob1 := bin.Xlo, bin.Xhi
		nb0, nb1 := newXB[iy][ix], newXB[iy][ix+1]
		x := remap(p.X, ob0, ob1, nb0, nb1)
		// y mapping within column ix.
		ob0, ob1 = bin.Ylo, bin.Yhi
		nb0, nb1 = newYB[ix][iy], newYB[ix][iy+1]
		y := remap(p.Y, ob0, ob1, nb0, nb1)
		targets[i] = n.Area.ClampPoint(geom.Point{X: x, Y: y})
	}
	return targets
}

func averageCapacity(dm *grid.DensityMap) float64 {
	total := 0.0
	for _, c := range dm.Capacity {
		total += c
	}
	return total / float64(len(dm.Capacity))
}

// stretchedBoundaries computes, per bin row (horizontal=true) or column,
// the stretched boundary coordinates: len rows x (bins+1).
func stretchedBoundaries(dm *grid.DensityMap, delta float64, horizontal bool) [][]float64 {
	g := dm.Grid
	nBins, nRows := g.Nx, g.Ny
	lo, hi := g.Chip.Xlo, g.Chip.Xhi
	if !horizontal {
		nBins, nRows = g.Ny, g.Nx
		lo, hi = g.Chip.Ylo, g.Chip.Yhi
	}
	usage := func(row, i int) float64 {
		if horizontal {
			return dm.Usage[g.Index(i, row)]
		}
		return dm.Usage[g.Index(row, i)]
	}
	oldB := make([]float64, nBins+1)
	for i := 0; i <= nBins; i++ {
		oldB[i] = lo + (hi-lo)*float64(i)/float64(nBins)
	}
	out := make([][]float64, nRows)
	for row := 0; row < nRows; row++ {
		nb := make([]float64, nBins+1)
		nb[0], nb[nBins] = lo, hi
		for i := 1; i < nBins; i++ {
			uL := usage(row, i-1) + delta
			uR := usage(row, i) + delta
			// Boundary shifts toward the emptier side (FastPlace eq. 7).
			nb[i] = (oldB[i-1]*uR + oldB[i+1]*uL) / (uL + uR)
		}
		// Enforce monotonicity against extreme ratios.
		for i := 1; i <= nBins; i++ {
			if nb[i] < nb[i-1] {
				nb[i] = nb[i-1]
			}
		}
		out[row] = nb
	}
	return out
}

func remap(v, ob0, ob1, nb0, nb1 float64) float64 {
	if ob1 <= ob0 {
		return v
	}
	t := (v - ob0) / (ob1 - ob0)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return nb0 + t*(nb1-nb0)
}

// projectInto returns the point of the rectangle set closest to p.
func projectInto(rs geom.RectSet, p geom.Point) geom.Point {
	best := p
	bestD := math.Inf(1)
	for _, r := range rs {
		q := r.ClampPoint(p)
		if d := q.DistL1(p); d < bestD {
			best, bestD = q, d
		}
	}
	return best
}
