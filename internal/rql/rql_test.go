package rql

import (
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 32, Yhi: 32}

// randomNetlist builds a connected random circuit with boundary pads.
func randomNetlist(t *testing.T, cells int, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New(chip, 1)
	for i := 0; i < cells; i++ {
		n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	}
	for i := 1; i < cells; i++ {
		j := rng.Intn(i)
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: netlist.CellID(i)}, {Cell: netlist.CellID(j)}}})
	}
	for k := 0; k < 8; k++ {
		c := netlist.CellID(rng.Intn(cells))
		side := rng.Intn(4)
		var p geom.Point
		switch side {
		case 0:
			p = geom.Point{X: rng.Float64() * 32, Y: 0}
		case 1:
			p = geom.Point{X: rng.Float64() * 32, Y: 32}
		case 2:
			p = geom.Point{X: 0, Y: rng.Float64() * 32}
		default:
			p = geom.Point{X: 32, Y: rng.Float64() * 32}
		}
		n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: c}, {Cell: -1, Offset: p}}})
	}
	return n
}

func overflowRatio(n *netlist.Netlist, bins int, density float64) float64 {
	dm := grid.NewDensityMap(n.Area, bins, bins, n.FixedRects(), density)
	dm.Accumulate(n)
	return dm.Overflow() / n.TotalMovableArea()
}

func TestPlaceReducesOverflow(t *testing.T) {
	n := randomNetlist(t, 300, 1)
	before := overflowRatio(n, 8, 0.97) // everything at center: huge overflow
	rep, err := Place(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	after := overflowRatio(n, 8, 0.97)
	if after >= before {
		t.Fatalf("overflow did not drop: %g -> %g", before, after)
	}
	if rep.FinalOverflow > 0.4 {
		t.Fatalf("final overflow ratio %g too high", rep.FinalOverflow)
	}
	// All cells inside the chip.
	for i := range n.Cells {
		if !chip.Contains(n.Pos(netlist.CellID(i))) {
			t.Fatalf("cell %d at %v outside chip", i, n.Pos(netlist.CellID(i)))
		}
	}
}

func TestPlaceKraftwerkStyle(t *testing.T) {
	n := randomNetlist(t, 300, 2)
	rep, err := Place(n, Config{Style: StyleKraftwerk})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalOverflow > 0.5 {
		t.Fatalf("kraftwerk-style final overflow %g", rep.FinalOverflow)
	}
}

func TestPlaceEmptyNetlist(t *testing.T) {
	n := netlist.New(chip, 1)
	rep, err := Place(n, Config{})
	if err != nil || rep.Iters != 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
}

func TestPlaceRespectsBlockages(t *testing.T) {
	n := randomNetlist(t, 200, 3)
	m := n.AddCell(netlist.Cell{Width: 16, Height: 16, Fixed: true})
	n.SetPos(m, geom.Point{X: 16, Y: 16})
	if _, err := Place(n, Config{}); err != nil {
		t.Fatal(err)
	}
	// Blocked bins have zero capacity, so the density map must show most
	// cell area outside the macro; spreading is soft, so just check the
	// macro's core is not the densest spot.
	dm := grid.NewDensityMap(n.Area, 8, 8, n.FixedRects(), 0.97)
	dm.Accumulate(n)
	core := dm.Usage[dm.Grid.LocateIndex(geom.Point{X: 16, Y: 16})]
	corner := dm.Usage[dm.Grid.LocateIndex(geom.Point{X: 2, Y: 2})]
	if core > 4*corner {
		t.Fatalf("macro core still crowded: core=%g corner=%g", core, corner)
	}
}

func TestPlaceNaiveMoveboundsPullCells(t *testing.T) {
	n := randomNetlist(t, 120, 4)
	// Put a third of the cells into a movebound on the right edge.
	mbs := []region.Movebound{{
		Name: "M", Kind: region.Inclusive,
		Area: geom.RectSet{{Xlo: 24, Ylo: 0, Xhi: 32, Yhi: 32}},
	}}
	for i := 0; i < 40; i++ {
		n.Cells[i].Movebound = 0
	}
	if _, err := Place(n, Config{Movebounds: mbs}); err != nil {
		t.Fatal(err)
	}
	inside := 0
	for i := 0; i < 40; i++ {
		if n.X[i] >= 23 { // near or in the movebound
			inside++
		}
	}
	if inside < 20 {
		t.Fatalf("only %d/40 movebound cells pulled toward the area", inside)
	}
	// The naive scheme gives no guarantee: with strong connectivity to
	// the left, violations are expected on hard instances — the paper's
	// Tables IV/V report exactly that for RQL.
}

func TestPlaceDeterministic(t *testing.T) {
	a := randomNetlist(t, 150, 5)
	b := a.Clone()
	if _, err := Place(a, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(b, Config{}); err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("cell %d position differs between runs", i)
		}
	}
}

func TestStretchedBoundariesMonotone(t *testing.T) {
	dm := grid.NewDensityMap(chip, 4, 4, nil, 1.0)
	// Heavy load in column 0 of row 0.
	dm.AddRect(geom.Rect{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 8})
	dm.AddRect(geom.Rect{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 8})
	nb := stretchedBoundaries(dm, 1, true)
	for row := range nb {
		for i := 1; i < len(nb[row]); i++ {
			if nb[row][i] < nb[row][i-1] {
				t.Fatalf("row %d boundaries not monotone: %v", row, nb[row])
			}
		}
		if nb[row][0] != 0 || nb[row][4] != 32 {
			t.Fatalf("row %d outer boundaries moved: %v", row, nb[row])
		}
	}
	// In row 0 the first boundary must shift right (away from the full bin).
	if nb[0][1] <= 8 {
		t.Fatalf("boundary did not stretch away from overfull bin: %v", nb[0])
	}
}

func TestProjectInto(t *testing.T) {
	rs := geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 2, Yhi: 2}, {Xlo: 10, Ylo: 10, Xhi: 12, Yhi: 12}}
	if got := projectInto(rs, geom.Point{X: 1, Y: 1}); got != (geom.Point{X: 1, Y: 1}) {
		t.Fatalf("inside point moved: %v", got)
	}
	if got := projectInto(rs, geom.Point{X: 9, Y: 9}); got != (geom.Point{X: 10, Y: 10}) {
		t.Fatalf("projection = %v, want (10,10)", got)
	}
}
