// Package congest estimates routing congestion with the RUDY model
// (Rectangular Uniform wire DensitY): every net spreads a wire density of
// (w+h)/(w*h) uniformly over its bounding box. Routability concerns are
// one of the §I motivations for movebounds ("for particular timing and
// routability issues"); the estimator lets users inspect whether a
// movebounded placement creates hotspots, and provides the congestion-
// driven cell inflation hook the paper mentions as input to partitioning
// ("increased cell sizes from congestion avoidance").
package congest

import (
	"math"
	"sort"

	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/netlist"
)

// Map is a per-bin RUDY congestion map.
type Map struct {
	Grid *grid.Grid
	// Rudy[b] is the accumulated wire density of bin b (dimensionless;
	// ~1.0 means the bin area is fully covered by estimated wiring).
	Rudy []float64
}

// Estimate builds the RUDY map of the current placement on an nx x ny bin
// grid (0 = automatic: bins of ~8 row heights).
func Estimate(n *netlist.Netlist, nx, ny int) *Map {
	if nx <= 0 || ny <= 0 {
		bin := 8 * n.RowHeight
		nx = int(math.Ceil(n.Area.Width() / bin))
		ny = int(math.Ceil(n.Area.Height() / bin))
		if nx < 1 {
			nx = 1
		}
		if ny < 1 {
			ny = 1
		}
	}
	g := grid.MustNew(n.Area, nx, ny)
	m := &Map{Grid: g, Rudy: make([]float64, g.NumWindows())}
	for ni := range n.Nets {
		net := &n.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		// Bounding box from raw coordinates (point "rectangles" are
		// degenerate, so Rect.Union would discard them).
		bb := geom.Rect{Xlo: math.Inf(1), Ylo: math.Inf(1), Xhi: math.Inf(-1), Yhi: math.Inf(-1)}
		for _, p := range net.Pins {
			pos := n.PinPos(p)
			bb.Xlo = math.Min(bb.Xlo, pos.X)
			bb.Xhi = math.Max(bb.Xhi, pos.X)
			bb.Ylo = math.Min(bb.Ylo, pos.Y)
			bb.Yhi = math.Max(bb.Yhi, pos.Y)
		}
		// Degenerate boxes still carry wire: pad to half a row height.
		pad := n.RowHeight / 2
		if bb.Width() < pad {
			bb.Xlo -= pad / 2
			bb.Xhi += pad / 2
		}
		if bb.Height() < pad {
			bb.Ylo -= pad / 2
			bb.Yhi += pad / 2
		}
		bb = bb.Intersect(n.Area)
		if bb.Empty() {
			continue
		}
		// RUDY density of this net over its bounding box.
		density := net.Weight * (bb.Width() + bb.Height()) / (bb.Width() * bb.Height())
		ix0, iy0 := g.Locate(geom.Point{X: bb.Xlo + 1e-12, Y: bb.Ylo + 1e-12})
		ix1, iy1 := g.Locate(geom.Point{X: bb.Xhi - 1e-12, Y: bb.Yhi - 1e-12})
		for iy := iy0; iy <= iy1; iy++ {
			for ix := ix0; ix <= ix1; ix++ {
				w := g.Index(ix, iy)
				overlap := bb.Intersect(g.Window(ix, iy)).Area()
				binArea := g.Window(ix, iy).Area()
				if binArea > 0 {
					m.Rudy[w] += density * overlap / binArea
				}
			}
		}
	}
	return m
}

// Max returns the peak bin congestion.
func (m *Map) Max() float64 {
	max := 0.0
	for _, v := range m.Rudy {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the q-quantile (0..1) of the bin congestion values.
func (m *Map) Percentile(q float64) float64 {
	vals := append([]float64(nil), m.Rudy...)
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0
	}
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

// Hotspot is one congested bin.
type Hotspot struct {
	Window geom.Rect
	Rudy   float64
}

// Hotspots returns the bins whose congestion exceeds the threshold,
// most congested first.
func (m *Map) Hotspots(threshold float64) []Hotspot {
	var out []Hotspot
	for w, v := range m.Rudy {
		if v > threshold {
			out = append(out, Hotspot{Window: m.Grid.WindowRect(w), Rudy: v})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Rudy > out[b].Rudy })
	return out
}

// InflateCells returns per-cell area inflation factors (>= 1) that grow
// cells in congested bins — the congestion-avoidance input to partitioning
// the paper refers to. Factors scale linearly from 1 at `threshold` to
// maxFactor at twice the threshold.
func (m *Map) InflateCells(n *netlist.Netlist, threshold, maxFactor float64) []float64 {
	out := make([]float64, n.NumCells())
	for i := range out {
		out[i] = 1
	}
	if threshold <= 0 || maxFactor <= 1 {
		return out
	}
	for i := range n.Cells {
		if n.Cells[i].Fixed {
			continue
		}
		v := m.Rudy[m.Grid.LocateIndex(n.Pos(netlist.CellID(i)))]
		if v <= threshold {
			continue
		}
		f := 1 + (maxFactor-1)*math.Min(1, (v-threshold)/threshold)
		out[i] = f
	}
	return out
}
