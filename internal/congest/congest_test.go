package congest

import (
	"math"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

func TestEstimateSingleNet(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 40, Yhi: 40}, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(a, geom.Point{X: 5, Y: 5})
	n.SetPos(b, geom.Point{X: 15, Y: 15})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
	m := Estimate(n, 4, 4)
	// The net bbox is [5,15]^2: density = 20/100 = 0.2 spread over it.
	// Bin (0,0) is [0,10]^2, overlap [5,10]^2 = 25, bin area 100:
	// contribution 0.2 * 25/100 = 0.05.
	got := m.Rudy[m.Grid.Index(0, 0)]
	if math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("bin(0,0) = %v, want 0.05", got)
	}
	// Far corner untouched.
	if m.Rudy[m.Grid.Index(3, 3)] != 0 {
		t.Fatalf("far bin = %v", m.Rudy[m.Grid.Index(3, 3)])
	}
	// Total over the four touched bins: 0.2 * 100/100 = 0.2.
	total := 0.0
	for _, v := range m.Rudy {
		total += v
	}
	if math.Abs(total-0.2) > 1e-9 {
		t.Fatalf("total = %v, want 0.2", total)
	}
}

func TestEstimateDegenerateNetPadded(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 10, Yhi: 10}, 1)
	a := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	b := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(a, geom.Point{X: 5, Y: 5})
	n.SetPos(b, geom.Point{X: 5, Y: 5}) // zero-size bbox
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: a}, {Cell: b}}})
	m := Estimate(n, 2, 2)
	if m.Max() <= 0 || math.IsInf(m.Max(), 1) || math.IsNaN(m.Max()) {
		t.Fatalf("degenerate net produced Max = %v", m.Max())
	}
}

func TestHotspotsAndPercentile(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 20, Yhi: 20}, 1)
	var pins []netlist.Pin
	for i := 0; i < 6; i++ {
		c := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
		n.SetPos(c, geom.Point{X: 2 + float64(i)*0.5, Y: 2})
		pins = append(pins, netlist.Pin{Cell: c})
	}
	// Many short nets in one corner.
	for i := 0; i+1 < len(pins); i++ {
		n.AddNet(netlist.Net{Pins: []netlist.Pin{pins[i], pins[i+1]}})
	}
	m := Estimate(n, 4, 4)
	hs := m.Hotspots(m.Percentile(0.9))
	if len(hs) == 0 {
		t.Fatal("no hotspots above the 90th percentile")
	}
	if hs[0].Rudy != m.Max() {
		t.Fatalf("hotspots not sorted: %v vs max %v", hs[0].Rudy, m.Max())
	}
	// The hotspot is the lower-left corner bin.
	if !hs[0].Window.Contains(geom.Point{X: 2.5, Y: 2.5}) {
		t.Fatalf("hotspot at %v", hs[0].Window)
	}
}

func TestInflateCells(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 20, Yhi: 20}, 1)
	hot := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	cold := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(hot, geom.Point{X: 2, Y: 2})
	n.SetPos(cold, geom.Point{X: 18, Y: 18})
	other := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: netlist.NoMovebound})
	n.SetPos(other, geom.Point{X: 3, Y: 3})
	n.AddNet(netlist.Net{Pins: []netlist.Pin{{Cell: hot}, {Cell: other}}})
	m := Estimate(n, 4, 4)
	f := m.InflateCells(n, m.Max()/2, 2.0)
	if f[hot] <= 1 {
		t.Fatalf("hot cell not inflated: %v", f[hot])
	}
	if f[cold] != 1 {
		t.Fatalf("cold cell inflated: %v", f[cold])
	}
	if f[hot] > 2.0 {
		t.Fatalf("inflation above maxFactor: %v", f[hot])
	}
	// Disabled thresholds return identity.
	f = m.InflateCells(n, 0, 2)
	for _, v := range f {
		if v != 1 {
			t.Fatalf("identity expected, got %v", v)
		}
	}
}

func TestEstimateAutoBins(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 100, Yhi: 60}, 1)
	m := Estimate(n, 0, 0)
	if m.Grid.Nx != 13 || m.Grid.Ny != 8 { // ceil(100/8), ceil(60/8)
		t.Fatalf("auto bins = %dx%d", m.Grid.Nx, m.Grid.Ny)
	}
}
