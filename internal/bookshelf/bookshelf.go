// Package bookshelf reads and writes the Bookshelf placement format used
// by the ISPD contests the paper benchmarks against (§V, [15][16]): a
// .aux index file naming .nodes (cells), .nets (pins), .pl (placement)
// and .scl (rows) files. Supporting the real contest format lets users
// run this placer on the actual ISPD benchmarks when they have them —
// the repository itself ships only synthetic equivalents.
//
// The subset implemented covers what placement needs: terminals (fixed
// cells), movable nodes, weighted nets with pin offsets, placement
// coordinates with orientation ignored, and uniform row geometry from the
// .scl file.
package bookshelf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

// ParseError reports invalid Bookshelf input with its position: the file
// (the logical stream kind — "nodes", "nets", "pl", "scl" — or the actual
// path when the parse went through ReadAux) and the 1-based line number.
type ParseError struct {
	// File identifies the offending input, Line its 1-based line number
	// (0 when the error is not tied to one line).
	File string
	Line int
	// Reason describes the violation.
	Reason string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("bookshelf: %s line %d: %s", e.File, e.Line, e.Reason)
	}
	return fmt.Sprintf("bookshelf: %s: %s", e.File, e.Reason)
}

// ReadAux loads an instance from a Bookshelf .aux file.
func ReadAux(path string) (*netlist.Netlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var nodes, nets, pl, scl string
	for _, f := range strings.Fields(string(data)) {
		switch strings.ToLower(filepath.Ext(f)) {
		case ".nodes":
			nodes = filepath.Join(dir, f)
		case ".nets":
			nets = filepath.Join(dir, f)
		case ".pl":
			pl = filepath.Join(dir, f)
		case ".scl":
			scl = filepath.Join(dir, f)
		}
	}
	if nodes == "" || nets == "" || pl == "" {
		return nil, fmt.Errorf("bookshelf: aux %q does not name .nodes/.nets/.pl files", path)
	}
	return readFiles(nodes, nets, pl, scl)
}

func openAll(paths ...string) ([]io.ReadCloser, error) {
	var out []io.ReadCloser
	for _, p := range paths {
		if p == "" {
			out = append(out, nil)
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			for _, o := range out {
				if o != nil {
					// Cleanup on the error path; the open error is what
					// the caller needs to see.
					_ = o.Close()
				}
			}
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func readFiles(nodesPath, netsPath, plPath, sclPath string) (*netlist.Netlist, error) {
	files, err := openAll(nodesPath, netsPath, plPath, sclPath)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, f := range files {
			if f != nil {
				// Read-only files: Close errors carry no information the
				// parse result does not already reflect.
				_ = f.Close()
			}
		}
	}()
	var sclReader io.Reader
	if files[3] != nil {
		sclReader = files[3]
	}
	n, err := Read(files[0], files[1], files[2], sclReader)
	// Read positions errors by stream kind; substitute the actual paths so
	// ReadAux callers see "…/ibm01.nodes line 12: …".
	var pe *ParseError
	if errors.As(err, &pe) {
		switch pe.File {
		case "nodes":
			pe.File = nodesPath
		case "nets":
			pe.File = netsPath
		case "pl":
			pe.File = plPath
		case "scl":
			pe.File = sclPath
		}
	}
	return n, err
}

// finite rejects the NaN/Inf values strconv.ParseFloat happily produces
// from "NaN"/"Inf" tokens.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// lineScanner yields non-comment, non-empty lines.
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &lineScanner{sc: sc}
}

func (l *lineScanner) next() ([]string, bool) {
	for l.sc.Scan() {
		l.line++
		text := strings.TrimSpace(l.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "UCLA") {
			continue
		}
		return strings.Fields(text), true
	}
	return nil, false
}

// Read parses the four Bookshelf streams (scl may be nil: a unit row
// height and a bounding-box chip area are derived from the placement).
func Read(nodes, nets, pl io.Reader, scl io.Reader) (*netlist.Netlist, error) {
	type nodeInfo struct {
		w, h     float64
		terminal bool
	}
	nodeOrder := []string{}
	nodeMap := map[string]nodeInfo{}

	ls := newLineScanner(nodes)
	for {
		f, ok := ls.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(f[0], "NumNodes") || strings.HasPrefix(f[0], "NumTerminals"):
			continue
		default:
			if len(f) < 3 {
				return nil, &ParseError{File: "nodes", Line: ls.line, Reason: "want 'name w h [terminal]'"}
			}
			w, err1 := strconv.ParseFloat(f[1], 64)
			h, err2 := strconv.ParseFloat(f[2], 64)
			if err1 != nil || err2 != nil {
				return nil, &ParseError{File: "nodes", Line: ls.line, Reason: fmt.Sprintf("bad size %q x %q", f[1], f[2])}
			}
			// ParseFloat accepts "NaN" and "Inf"; a non-finite size would
			// poison every downstream area computation.
			if !finite(w) || !finite(h) {
				return nil, &ParseError{File: "nodes", Line: ls.line, Reason: fmt.Sprintf("non-finite size %gx%g", w, h)}
			}
			info := nodeInfo{w: w, h: h}
			if len(f) > 3 && strings.EqualFold(f[3], "terminal") {
				info.terminal = true
			}
			nodeOrder = append(nodeOrder, f[0])
			nodeMap[f[0]] = info
		}
	}

	// Placement (.pl): name x y [: orientation] [/FIXED]
	pos := map[string]geom.Point{}
	fixedPl := map[string]bool{}
	ls = newLineScanner(pl)
	for {
		f, ok := ls.next()
		if !ok {
			break
		}
		if len(f) < 3 {
			continue
		}
		x, err1 := strconv.ParseFloat(f[1], 64)
		y, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			// Lenient by design: .pl files carry header and orientation
			// lines this subset does not model.
			continue
		}
		if !finite(x) || !finite(y) {
			return nil, &ParseError{File: "pl", Line: ls.line, Reason: fmt.Sprintf("non-finite position %g %g", x, y)}
		}
		pos[f[0]] = geom.Point{X: x, Y: y}
		for _, tok := range f[3:] {
			if strings.Contains(tok, "FIXED") {
				fixedPl[f[0]] = true
			}
		}
	}

	// Rows (.scl) determine chip area and row height.
	rowHeight := 1.0
	var chip geom.Rect
	haveChip := false
	if scl != nil {
		rows, h, err := parseSCL(scl)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			rowHeight = h
			chip = rows[0]
			for _, r := range rows[1:] {
				chip = chip.Union(r)
			}
			haveChip = true
		}
	}
	if !haveChip {
		// Derive from node footprints.
		first := true
		for _, name := range nodeOrder {
			p, ok := pos[name]
			if !ok {
				continue
			}
			info := nodeMap[name]
			r := geom.Rect{Xlo: p.X, Ylo: p.Y, Xhi: p.X + info.w, Yhi: p.Y + info.h}
			if first {
				chip, first = r, false
			} else {
				chip.Xlo = math.Min(chip.Xlo, r.Xlo)
				chip.Ylo = math.Min(chip.Ylo, r.Ylo)
				chip.Xhi = math.Max(chip.Xhi, r.Xhi)
				chip.Yhi = math.Max(chip.Yhi, r.Yhi)
			}
		}
		if first {
			return nil, fmt.Errorf("bookshelf: no rows and no placed nodes to derive the chip area")
		}
		// Row height: smallest node height.
		rowHeight = math.Inf(1)
		for _, info := range nodeMap {
			if !info.terminal && info.h < rowHeight && info.h > 0 {
				rowHeight = info.h
			}
		}
		if math.IsInf(rowHeight, 1) {
			rowHeight = 1
		}
	}

	n := netlist.New(chip, rowHeight)
	ids := map[string]netlist.CellID{}
	for _, name := range nodeOrder {
		info := nodeMap[name]
		id := n.AddCell(netlist.Cell{
			Name:      name,
			Width:     info.w,
			Height:    info.h,
			Fixed:     info.terminal || fixedPl[name],
			Movebound: netlist.NoMovebound,
		})
		ids[name] = id
		// Bookshelf coordinates are lower-left corners; the netlist uses
		// centers.
		if p, ok := pos[name]; ok {
			n.SetPos(id, geom.Point{X: p.X + info.w/2, Y: p.Y + info.h/2})
		}
	}

	// Nets (.nets): NetDegree : d [name]  then  d lines  "node I/O : dx dy".
	ls = newLineScanner(nets)
	var current *netlist.Net
	flush := func() {
		if current != nil && len(current.Pins) >= 1 {
			n.AddNet(*current)
		}
		current = nil
	}
	for {
		f, ok := ls.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(f[0], "NumNets") || strings.HasPrefix(f[0], "NumPins"):
			continue
		case strings.HasPrefix(f[0], "NetDegree"):
			flush()
			name := ""
			if len(f) >= 4 {
				name = f[3]
			}
			current = &netlist.Net{Name: name, Weight: 1}
		default:
			if current == nil {
				return nil, &ParseError{File: "nets", Line: ls.line, Reason: "pin before NetDegree"}
			}
			id, ok := ids[f[0]]
			if !ok {
				return nil, &ParseError{File: "nets", Line: ls.line, Reason: fmt.Sprintf("unknown node %q", f[0])}
			}
			var off geom.Point
			// Offsets appear as "name I : dx dy" (relative to the node
			// center).
			for i, tok := range f {
				if tok == ":" && i+2 < len(f) {
					dx, e1 := strconv.ParseFloat(f[i+1], 64)
					dy, e2 := strconv.ParseFloat(f[i+2], 64)
					if e1 == nil && e2 == nil {
						if !finite(dx) || !finite(dy) {
							return nil, &ParseError{File: "nets", Line: ls.line, Reason: fmt.Sprintf("non-finite pin offset %g %g", dx, dy)}
						}
						off = geom.Point{X: dx, Y: dy}
					}
					break
				}
			}
			current.Pins = append(current.Pins, netlist.Pin{Cell: id, Offset: off})
		}
	}
	flush()
	if err := n.Validate(0); err != nil {
		return nil, fmt.Errorf("bookshelf: %w", err)
	}
	return n, nil
}

// parseSCL extracts row rectangles and the (uniform) row height.
func parseSCL(r io.Reader) ([]geom.Rect, float64, error) {
	ls := newLineScanner(r)
	var rows []geom.Rect
	height := 1.0
	var cur struct {
		coord, height, subOrigin, numSites, siteWidth float64
		active                                        bool
	}
	cur.siteWidth = 1
	for {
		f, ok := ls.next()
		if !ok {
			break
		}
		key := strings.ToLower(f[0])
		val := func() float64 {
			for i, tok := range f {
				if tok == ":" && i+1 < len(f) {
					v, _ := strconv.ParseFloat(f[i+1], 64)
					return v
				}
			}
			return 0
		}
		switch {
		case key == "corerow":
			cur.active = true
			cur.siteWidth = 1
		case key == "coordinate" && cur.active:
			cur.coord = val()
		case key == "height" && cur.active:
			cur.height = val()
		case key == "subroworigin" && cur.active:
			cur.subOrigin = val()
			// NumSites usually appears on the same line.
			for i, tok := range f {
				if strings.EqualFold(tok, "NumSites") && i+2 < len(f) {
					v, _ := strconv.ParseFloat(f[i+2], 64)
					cur.numSites = v
				}
			}
		case key == "sitewidth" && cur.active:
			cur.siteWidth = val()
		case key == "end" && cur.active:
			w := cur.numSites * cur.siteWidth
			if !finite(cur.subOrigin) || !finite(cur.coord) || !finite(w) || !finite(cur.height) {
				return nil, 0, &ParseError{File: "scl", Line: ls.line, Reason: "non-finite row geometry"}
			}
			rows = append(rows, geom.Rect{
				Xlo: cur.subOrigin, Ylo: cur.coord,
				Xhi: cur.subOrigin + w, Yhi: cur.coord + cur.height,
			})
			if cur.height > 0 {
				height = cur.height
			}
			cur.active = false
			cur.coord, cur.height, cur.subOrigin, cur.numSites = 0, 0, 0, 0
		}
	}
	return rows, height, nil
}

// Write emits the instance as the four Bookshelf files plus the .aux
// index, using the given base name, into dir.
func Write(dir, base string, n *netlist.Netlist) error {
	write := func(ext string, fn func(w *bufio.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, base+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		if err := fn(bw); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := write(".nodes", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nodes 1.0")
		terms := 0
		for i := range n.Cells {
			if n.Cells[i].Fixed {
				terms++
			}
		}
		fmt.Fprintf(w, "NumNodes : %d\n", n.NumCells())
		fmt.Fprintf(w, "NumTerminals : %d\n", terms)
		for i := range n.Cells {
			c := &n.Cells[i]
			fmt.Fprintf(w, "%s %g %g", nodeName(n, i), c.Width, c.Height)
			if c.Fixed {
				fmt.Fprint(w, " terminal")
			}
			fmt.Fprintln(w)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(".nets", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA nets 1.0")
		pins := 0
		realNets := 0
		for ni := range n.Nets {
			cellPins := 0
			for _, p := range n.Nets[ni].Pins {
				if !p.IsPad() {
					cellPins++
				}
			}
			if cellPins >= 2 {
				realNets++
				pins += cellPins
			}
		}
		fmt.Fprintf(w, "NumNets : %d\n", realNets)
		fmt.Fprintf(w, "NumPins : %d\n", pins)
		for ni := range n.Nets {
			net := &n.Nets[ni]
			var cellPins []netlist.Pin
			for _, p := range net.Pins {
				if !p.IsPad() {
					cellPins = append(cellPins, p)
				}
			}
			if len(cellPins) < 2 {
				continue // pad nets have no Bookshelf representation
			}
			fmt.Fprintf(w, "NetDegree : %d %s\n", len(cellPins), netName(n, ni))
			for _, p := range cellPins {
				fmt.Fprintf(w, "\t%s I : %g %g\n", nodeName(n, int(p.Cell)), p.Offset.X, p.Offset.Y)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(".pl", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA pl 1.0")
		for i := range n.Cells {
			c := &n.Cells[i]
			// Centers back to lower-left corners.
			fmt.Fprintf(w, "%s %g %g : N", nodeName(n, i), n.X[i]-c.Width/2, n.Y[i]-c.Height/2)
			if c.Fixed {
				fmt.Fprint(w, " /FIXED")
			}
			fmt.Fprintln(w)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write(".scl", func(w *bufio.Writer) error {
		fmt.Fprintln(w, "UCLA scl 1.0")
		numRows := int((n.Area.Height() + 1e-9) / n.RowHeight)
		fmt.Fprintf(w, "NumRows : %d\n", numRows)
		for r := 0; r < numRows; r++ {
			fmt.Fprintln(w, "CoreRow Horizontal")
			fmt.Fprintf(w, " Coordinate : %g\n", n.Area.Ylo+float64(r)*n.RowHeight)
			fmt.Fprintf(w, " Height : %g\n", n.RowHeight)
			fmt.Fprintf(w, " Sitewidth : 1\n")
			fmt.Fprintf(w, " SubrowOrigin : %g NumSites : %d\n", n.Area.Xlo, int(n.Area.Width()))
			fmt.Fprintln(w, "End")
		}
		return nil
	}); err != nil {
		return err
	}
	return write(".aux", func(w *bufio.Writer) error {
		fmt.Fprintf(w, "RowBasedPlacement : %s.nodes %s.nets %s.pl %s.scl\n", base, base, base, base)
		return nil
	})
}

// nodeName returns a unique Bookshelf-safe node name.
func nodeName(n *netlist.Netlist, i int) string {
	if name := n.Cells[i].Name; name != "" && !strings.ContainsAny(name, " \t:") {
		return name
	}
	return fmt.Sprintf("o%d", i)
}

func netName(n *netlist.Netlist, ni int) string {
	if name := n.Nets[ni].Name; name != "" && !strings.ContainsAny(name, " \t:") {
		return name
	}
	return fmt.Sprintf("n%d", ni)
}

// sortedNames is a test helper: the node names in deterministic order.
func sortedNames(m map[string]netlist.CellID) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
