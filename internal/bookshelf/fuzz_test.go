package bookshelf

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzParse drives Read with arbitrary .nodes/.nets/.pl/.scl streams. The
// parser must never panic; failures must be structured (a *ParseError or a
// wrapped netlist validation error, both prefixed "bookshelf:"); and any
// accepted instance must satisfy the netlist's structural invariants.
func FuzzParse(f *testing.F) {
	f.Add(nodesSample, netsSample, plSample, sclSample)
	f.Add(nodesSample, netsSample, plSample, "")
	f.Add("UCLA nodes 1.0\na 2 1\n", "UCLA nets 1.0\nNetDegree : 1\n\ta I : 0 0\n", "UCLA pl 1.0\na 0 0 : N\n", "")
	f.Add("a NaN 1\n", netsSample, plSample, "")
	f.Add(nodesSample, "x I : 0 0\n", plSample, "")
	f.Fuzz(func(t *testing.T, nodes, nets, pl, scl string) {
		var sclR io.Reader
		if scl != "" {
			sclR = strings.NewReader(scl)
		}
		n, err := Read(strings.NewReader(nodes), strings.NewReader(nets),
			strings.NewReader(pl), sclR)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) && !strings.HasPrefix(err.Error(), "bookshelf:") {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			if errors.As(err, &pe) && pe.Line < 0 {
				t.Fatalf("negative line in %v", err)
			}
			return
		}
		if verr := n.Validate(0); verr != nil {
			t.Fatalf("accepted instance fails Validate: %v", verr)
		}
	})
}
