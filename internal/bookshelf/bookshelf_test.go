package bookshelf

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbplace/internal/gen"
	"fbplace/internal/netlist"
)

const nodesSample = `UCLA nodes 1.0
# comment
NumNodes : 3
NumTerminals : 1
	a 2 1
	b 1.5 1
	pad0 1 1 terminal
`

const netsSample = `UCLA nets 1.0
NumNets : 2
NumPins : 4
NetDegree : 2 netA
	a I : 0.5 0
	b O : 0 0
NetDegree : 2
	b I : 0 0
	pad0 I : 0 0
`

const plSample = `UCLA pl 1.0
a 2 3 : N
b 5 3 : N
pad0 0 0 : N /FIXED
`

const sclSample = `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
 Coordinate : 0
 Height : 1
 Sitewidth : 1
 SubrowOrigin : 0 NumSites : 10
End
CoreRow Horizontal
 Coordinate : 1
 Height : 1
 Sitewidth : 1
 SubrowOrigin : 0 NumSites : 10
End
`

func TestReadSample(t *testing.T) {
	n, err := Read(strings.NewReader(nodesSample), strings.NewReader(netsSample),
		strings.NewReader(plSample), strings.NewReader(sclSample))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 3 {
		t.Fatalf("cells = %d", n.NumCells())
	}
	if n.NumNets() != 2 {
		t.Fatalf("nets = %d", n.NumNets())
	}
	// Chip from the two rows: [0,10] x [0,2].
	if n.Area.Xhi != 10 || n.Area.Yhi != 2 {
		t.Fatalf("area = %v", n.Area)
	}
	if n.RowHeight != 1 {
		t.Fatalf("row height = %v", n.RowHeight)
	}
	// Cell "a": lower-left (2,3), size 2x1 -> center (3, 3.5).
	if n.X[0] != 3 || n.Y[0] != 3.5 {
		t.Fatalf("a at (%g,%g)", n.X[0], n.Y[0])
	}
	if !n.Cells[2].Fixed {
		t.Fatal("terminal not fixed")
	}
	// Pin offset preserved.
	if n.Nets[0].Pins[0].Offset.X != 0.5 {
		t.Fatalf("offset = %v", n.Nets[0].Pins[0].Offset)
	}
}

func TestReadWithoutSCLDerivesArea(t *testing.T) {
	n, err := Read(strings.NewReader(nodesSample), strings.NewReader(netsSample),
		strings.NewReader(plSample), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bounding box of placed nodes: x from 0 (pad) to 6.5 (b at 5 + 1.5).
	if n.Area.Xlo != 0 || math.Abs(n.Area.Xhi-6.5) > 1e-9 {
		t.Fatalf("derived area = %v", n.Area)
	}
}

func TestReadRejectsUnknownNode(t *testing.T) {
	bad := "UCLA nets 1.0\nNetDegree : 1\n\tghost I : 0 0\n"
	_, err := Read(strings.NewReader(nodesSample), strings.NewReader(bad),
		strings.NewReader(plSample), nil)
	if err == nil {
		t.Fatal("unknown node accepted")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.File != "nets" || pe.Line != 3 {
		t.Fatalf("position = %s:%d, want nets:3", pe.File, pe.Line)
	}
}

// TestReadRejectsBadInput: every malformed stream must be reported with a
// structured ParseError naming the stream kind and 1-based line.
func TestReadRejectsBadInput(t *testing.T) {
	cases := []struct {
		name            string
		nodes, nets, pl string
		file            string
		line            int
	}{
		{"short nodes line", "UCLA nodes 1.0\na 2\n", netsSample, plSample, "nodes", 2},
		{"bad node size", "UCLA nodes 1.0\na 2 oops\n", netsSample, plSample, "nodes", 2},
		{"non-finite node size", "UCLA nodes 1.0\na NaN 1\n", netsSample, plSample, "nodes", 2},
		{"pin before NetDegree", nodesSample, "UCLA nets 1.0\n\ta I : 0 0\n", plSample, "nets", 2},
		{"non-finite pin offset", nodesSample, "UCLA nets 1.0\nNetDegree : 1\n\ta I : Inf 0\n", plSample, "nets", 3},
		{"non-finite position", nodesSample, netsSample, "UCLA pl 1.0\na 2 Inf : N\n", "pl", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.nodes), strings.NewReader(tc.nets),
				strings.NewReader(tc.pl), nil)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("want *ParseError, got %T: %v", err, err)
			}
			if pe.File != tc.file || pe.Line != tc.line {
				t.Fatalf("position = %s:%d, want %s:%d (%v)", pe.File, pe.Line, tc.file, tc.line, err)
			}
		})
	}
}

// ReadAux must substitute real file paths into ParseError positions.
func TestReadAuxReportsPath(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("x.nodes", "UCLA nodes 1.0\na 2 oops\n")
	write("x.nets", netsSample)
	write("x.pl", plSample)
	aux := write("x.aux", "RowBasedPlacement : x.nodes x.nets x.pl\n")
	_, err := ReadAux(aux)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.File != filepath.Join(dir, "x.nodes") || pe.Line != 2 {
		t.Fatalf("position = %s:%d, want %s:2", pe.File, pe.Line, filepath.Join(dir, "x.nodes"))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	inst, err := gen.Chip(gen.ChipSpec{Name: "bs", NumCells: 200, Seed: 17, NumMacros: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Write(dir, "chip", inst.N); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadAux(filepath.Join(dir, "chip.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumCells() != inst.N.NumCells() {
		t.Fatalf("cells: %d vs %d", n2.NumCells(), inst.N.NumCells())
	}
	// Pad nets are dropped on write (no Bookshelf representation); all
	// cell-only nets must survive with identical HPWL contribution.
	wantHPWL := 0.0
	for ni := range inst.N.Nets {
		cellPins := 0
		for _, p := range inst.N.Nets[ni].Pins {
			if !p.IsPad() {
				cellPins++
			}
		}
		if cellPins >= 2 && cellPins == len(inst.N.Nets[ni].Pins) {
			wantHPWL += inst.N.NetHPWL(netlist.NetID(ni))
		}
	}
	// Positions round-trip exactly, so the HPWL of pure cell nets must
	// match up to float formatting noise.
	got := 0.0
	for ni := range n2.Nets {
		got += n2.NetHPWL(netlist.NetID(ni))
	}
	if math.Abs(got-wantHPWL) > 1e-6*wantHPWL {
		t.Fatalf("HPWL %g vs %g", got, wantHPWL)
	}
	// Fixed cells preserved.
	fixed := 0
	for i := range n2.Cells {
		if n2.Cells[i].Fixed {
			fixed++
		}
	}
	if fixed != 2 {
		t.Fatalf("fixed = %d, want 2", fixed)
	}
}

func TestReadAuxMissingFiles(t *testing.T) {
	dir := t.TempDir()
	aux := filepath.Join(dir, "x.aux")
	if err := os.WriteFile(aux, []byte("RowBasedPlacement : only.nodes\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAux(aux); err == nil {
		t.Fatal("incomplete aux accepted")
	}
}
