package metrics

import (
	"math"
	"testing"
	"time"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

func TestDensityPenaltyZeroWhenSpread(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 100, Yhi: 100}, 1)
	for i := 0; i < 10; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: float64(i)*10 + 5, Y: 50})
	}
	if got := DensityPenalty(n, 0.5, 10); got != 0 {
		t.Fatalf("penalty = %v, want 0", got)
	}
}

func TestDensityPenaltyCrowded(t *testing.T) {
	n := netlist.New(geom.Rect{Xhi: 100, Yhi: 100}, 1)
	// 100 unit cells piled into one 10x10 bin at target 0.5: usage 100,
	// capacity 50, overflow 50 -> penalty 0.5.
	for i := 0; i < 100; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: 5, Y: 5})
	}
	got := DensityPenalty(n, 0.5, 10)
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("penalty = %v, want ~0.5", got)
	}
}

func TestCPUFactorTruncation(t *testing.T) {
	ref := time.Minute
	if got := CPUFactor(ref, ref); got != 0 {
		t.Fatalf("equal runtimes: factor = %v", got)
	}
	if got := CPUFactor(time.Second, ref); got != -0.10 {
		t.Fatalf("fast run: factor = %v, want -0.10 (truncated)", got)
	}
	if got := CPUFactor(100*time.Minute, ref); got != 0.10 {
		t.Fatalf("slow run: factor = %v, want 0.10", got)
	}
	// Moderate speedup: 2x faster = -4%.
	if got := CPUFactor(30*time.Second, ref); math.Abs(got+0.04) > 1e-9 {
		t.Fatalf("2x speedup: factor = %v, want -0.04", got)
	}
	if got := CPUFactor(0, ref); got != 0 {
		t.Fatalf("zero runtime: factor = %v", got)
	}
}

// Reproduce the Table VII arithmetic for adaptec5: H=430.43, DENS=1.81%,
// C=-9.52% must give H+D=438.22 and H+D+C=396.50.
func TestScoreMatchesTableVIIRow(t *testing.T) {
	s := Score{HPWL: 430.43, Density: 0.0181, CPU: -0.0952}
	if math.Abs(s.HD()-438.22) > 0.01 {
		t.Fatalf("HD = %v, want 438.22", s.HD())
	}
	if math.Abs(s.HDC()-396.50) > 0.35 {
		t.Fatalf("HDC = %v, want ~396.50", s.HDC())
	}
}
