// Package metrics implements the quality metrics of the paper's
// experiment tables: HPWL (in netlist), the ISPD-2006 density penalty
// ("DENS" and "H+D" of Table VII), and the contest CPU factor truncated at
// +/-10% ("H+D+C").
package metrics

import (
	"math"
	"time"

	"fbplace/internal/grid"
	"fbplace/internal/netlist"
)

// DensityPenalty returns the ISPD-2006 style scaled density overflow as a
// fraction (Table VII prints it as a percentage): the total bin usage
// above the target density, divided by the total movable cell area.
// binRows sets the bin edge length in row heights (the contest used 10).
func DensityPenalty(n *netlist.Netlist, target float64, binRows int) float64 {
	if binRows <= 0 {
		binRows = 10
	}
	bin := float64(binRows) * n.RowHeight
	nx := int(math.Ceil(n.Area.Width() / bin))
	ny := int(math.Ceil(n.Area.Height() / bin))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	dm := grid.NewDensityMap(n.Area, nx, ny, n.FixedRects(), target)
	dm.Accumulate(n)
	total := n.TotalMovableArea()
	if total <= 0 {
		return 0
	}
	return dm.Overflow() / total
}

// CPUFactor approximates the ISPD-2006 CPU bonus/penalty: negative for
// runtimes faster than the reference, positive for slower, truncated at
// +/-10% exactly as in the contest (the paper's Table VII notes the
// truncation for nb1/nb4/nb5).
func CPUFactor(t, reference time.Duration) float64 {
	if t <= 0 || reference <= 0 {
		return 0
	}
	f := 0.04 * math.Log2(float64(t)/float64(reference))
	if f > 0.10 {
		f = 0.10
	}
	if f < -0.10 {
		f = -0.10
	}
	return f
}

// Score combines HPWL with the density penalty and CPU factor the way
// Table VII reports them: H+D = H*(1+dens), H+D+C = H+D adjusted by the
// CPU factor.
type Score struct {
	HPWL    float64
	Density float64 // fraction
	CPU     float64 // fraction, +/-0.10
}

// HD returns HPWL with the density penalty applied.
func (s Score) HD() float64 { return s.HPWL * (1 + s.Density) }

// HDC returns HPWL with density and CPU adjustments applied.
func (s Score) HDC() float64 { return s.HD() * (1 + s.CPU) }
