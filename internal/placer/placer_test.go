package placer

import (
	"errors"
	"strings"
	"testing"

	"fbplace/internal/gen"
	"fbplace/internal/geom"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/region"
)

func smallChip(t *testing.T, cells int, seed int64, mbs []gen.MoveboundSpec) *gen.Instance {
	t.Helper()
	inst, err := gen.Chip(gen.ChipSpec{
		Name: "test", NumCells: cells, Seed: seed, Movebounds: mbs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPlaceProducesLegalPlacement(t *testing.T) {
	inst := smallChip(t, 2000, 1, nil)
	rep, err := Place(inst.N, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overlaps != 0 {
		t.Fatalf("overlaps = %d", rep.Overlaps)
	}
	if rep.HPWL <= 0 {
		t.Fatalf("HPWL = %g", rep.HPWL)
	}
	for i := range inst.N.Cells {
		if !inst.N.Area.ContainsRect(inst.N.CellRect(netlist.CellID(i))) {
			t.Fatalf("cell %d outside chip", i)
		}
	}
}

func TestPlaceBeatsRandomPlacementHPWL(t *testing.T) {
	// Two baselines: a random lattice (must beat it by far) and the
	// generator's own locality lattice, which is close to the intended
	// optimum (must at least match it).
	inst := smallChip(t, 2000, 2, nil)
	lattice := func(perm func(int) int) float64 {
		m := inst.N.Clone()
		k := 0
		nx := 45
		for i := range m.Cells {
			if m.Cells[i].Fixed {
				continue
			}
			p := perm(k)
			m.SetPos(netlist.CellID(i), geom.Point{
				X: m.Area.Xlo + (float64(p%nx)+0.5)/float64(nx)*m.Area.Width(),
				Y: m.Area.Ylo + (float64(p/nx)+0.5)/float64(nx)*m.Area.Height(),
			})
			k++
		}
		return m.HPWL()
	}
	ideal := lattice(func(k int) int { return k })
	shuffled := lattice(func(k int) int { return (k * 997) % 2000 })
	rep, err := Place(inst.N, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HPWL > 0.35*shuffled {
		t.Fatalf("placer HPWL %.0f not clearly better than random lattice %.0f", rep.HPWL, shuffled)
	}
	if rep.HPWL > 1.05*ideal {
		t.Fatalf("placer HPWL %.0f much worse than the generator's locality lattice %.0f", rep.HPWL, ideal)
	}
}

func TestPlaceWithMovebounds(t *testing.T) {
	inst := smallChip(t, 2500, 3, []gen.MoveboundSpec{
		{Kind: region.Inclusive, CellFraction: 0.15, Density: 0.7, NestedIn: -1},
		{Kind: region.Inclusive, CellFraction: 0.10, Density: 0.7, NestedIn: 0},
		{Kind: region.Inclusive, CellFraction: 0.10, Density: 0.7, NestedIn: -1, Overlap: true},
	})
	rep, err := Place(inst.N, Config{Movebounds: inst.Movebounds})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("movebound violations = %d (FBP must produce legal placements)", rep.Violations)
	}
	if rep.Overlaps != 0 {
		t.Fatalf("overlaps = %d", rep.Overlaps)
	}
	if len(rep.FBPStats) != rep.Levels {
		t.Fatalf("FBPStats = %d, levels = %d", len(rep.FBPStats), rep.Levels)
	}
}

func TestPlaceExclusiveMovebounds(t *testing.T) {
	inst := smallChip(t, 2500, 4, []gen.MoveboundSpec{
		{Kind: region.Exclusive, CellFraction: 0.12, Density: 0.7, NestedIn: -1},
		{Kind: region.Exclusive, CellFraction: 0.08, Density: 0.7, NestedIn: -1},
	})
	rep, err := Place(inst.N, Config{Movebounds: inst.Movebounds})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("violations = %d", rep.Violations)
	}
}

func TestPlaceInfeasibleRejected(t *testing.T) {
	inst := smallChip(t, 2000, 5, nil)
	// A movebound far too small for a third of the cells.
	mbs := []region.Movebound{{
		Name: "tiny", Kind: region.Inclusive,
		Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 5, Yhi: 5}},
	}}
	for i := 0; i < 600; i++ {
		inst.N.Cells[i].Movebound = 0
	}
	_, err := Place(inst.N, Config{Movebounds: mbs})
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("err = %v, want infeasibility report", err)
	}
}

func TestPlaceRecursiveBaseline(t *testing.T) {
	inst := smallChip(t, 2000, 6, nil)
	rep, err := Place(inst.N, Config{Mode: ModeRecursive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overlaps != 0 {
		t.Fatalf("overlaps = %d", rep.Overlaps)
	}
	if len(rep.FBPStats) != 0 {
		t.Fatal("recursive mode must not record FBP stats")
	}
}

func TestPlaceWithClustering(t *testing.T) {
	inst := smallChip(t, 3000, 7, nil)
	rep, err := Place(inst.N, Config{ClusterRatio: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overlaps != 0 {
		t.Fatalf("overlaps = %d", rep.Overlaps)
	}
	if got := legalize.VerifyNoOverlaps(inst.N); got != 0 {
		t.Fatalf("verify overlaps = %d", got)
	}
}

func TestPlaceSkipLegalization(t *testing.T) {
	inst := smallChip(t, 1500, 8, nil)
	rep, err := Place(inst.N, Config{SkipLegalization: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LegalTime != 0 {
		t.Fatal("legalization ran despite SkipLegalization")
	}
	if rep.HPWL <= 0 {
		t.Fatal("no HPWL")
	}
}

func TestPlaceIncremental(t *testing.T) {
	// Place, perturb a small subset, re-place with KeepPlacement: the
	// incremental run must not blow up the wirelength.
	inst := smallChip(t, 2000, 9, nil)
	rep1, err := Place(inst.N, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb 5% of the cells to the chip center.
	for i := 0; i < 100; i++ {
		inst.N.SetPos(netlist.CellID(i*17%2000), inst.N.Area.Center())
	}
	rep2, err := Place(inst.N, Config{KeepPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Overlaps != 0 {
		t.Fatalf("incremental overlaps = %d", rep2.Overlaps)
	}
	if rep2.HPWL > 1.5*rep1.HPWL {
		t.Fatalf("incremental HPWL %.0f vs original %.0f", rep2.HPWL, rep1.HPWL)
	}
}

func TestPlaceRuntimeSplitRecorded(t *testing.T) {
	inst := smallChip(t, 1500, 10, nil)
	rep, err := Place(inst.N, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GlobalTime <= 0 || rep.LegalTime <= 0 {
		t.Fatalf("times not recorded: %v / %v", rep.GlobalTime, rep.LegalTime)
	}
}

func TestPlaceDeterministicAcrossWorkers(t *testing.T) {
	// §IV.B: unit realization is parallel but units are disjoint, so the
	// result must not depend on the worker count. Run under -race to also
	// exercise the wave scheduling for data races.
	mbs := []gen.MoveboundSpec{
		{Kind: region.Inclusive, CellFraction: 0.15, Density: 0.7, NestedIn: -1},
		{Kind: region.Inclusive, CellFraction: 0.10, Density: 0.7, NestedIn: -1, Overlap: true},
	}
	run := func(workers int) (*Report, *netlist.Netlist) {
		inst := smallChip(t, 2500, 42, mbs)
		rep, err := Place(inst.N, Config{Movebounds: inst.Movebounds, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rep, inst.N
	}
	rep1, n1 := run(1)
	rep4, n4 := run(4)
	if rep1.HPWL != rep4.HPWL {
		t.Fatalf("HPWL differs across worker counts: 1 worker %.6f, 4 workers %.6f", rep1.HPWL, rep4.HPWL)
	}
	for i := range n1.Cells {
		p1, p4 := n1.Pos(netlist.CellID(i)), n4.Pos(netlist.CellID(i))
		if p1 != p4 {
			t.Fatalf("cell %d position differs: %v vs %v", i, p1, p4)
		}
	}
}

func TestPlaceRecordsObservability(t *testing.T) {
	inst := smallChip(t, 1500, 13, nil)
	rec := obs.New(nil)
	rep, err := Place(inst.N, Config{Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if rep.QPSolves == 0 || rep.CGIters == 0 {
		t.Fatalf("QP effort not reported: solves=%d iters=%d", rep.QPSolves, rep.CGIters)
	}
	for _, c := range []string{"cg.iters", "ns.pivots", "transport.solves", "fbp.waves", "legalize.cells"} {
		if rec.Counter(c) <= 0 {
			t.Errorf("counter %q not recorded (got %g)", c, rec.Counter(c))
		}
	}
	var sum strings.Builder
	rec.WriteSummary(&sum)
	for _, phase := range []string{"place", "global", "level", "legalize"} {
		if !strings.Contains(sum.String(), phase) {
			t.Errorf("summary tree missing phase %q:\n%s", phase, sum.String())
		}
	}
	stats := rep.FBPStats
	if len(stats) == 0 {
		t.Fatal("no FBP stats")
	}
	pivots := 0
	for _, s := range stats {
		pivots += s.NSPivots
	}
	if pivots <= 0 {
		t.Fatal("network simplex pivots not recorded in FBP stats")
	}
}

func TestLevelsForBounds(t *testing.T) {
	inst := smallChip(t, 2000, 11, nil)
	lv := levelsFor(inst.N, Config{})
	if lv < 2 || lv > 9 {
		t.Fatalf("levels = %d", lv)
	}
	if got := levelsFor(inst.N, Config{MaxLevels: 3}); got != 3 {
		t.Fatalf("MaxLevels override = %d", got)
	}
}

func TestPlaceWithDetailPasses(t *testing.T) {
	inst := smallChip(t, 2000, 12, nil)
	base := inst.N.Clone()
	rep1, err := Place(base, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Place(inst.N, Config{DetailPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Overlaps != 0 {
		t.Fatalf("overlaps after detail = %d", rep2.Overlaps)
	}
	if rep2.HPWL > rep1.HPWL {
		t.Fatalf("detail passes worsened HPWL: %.0f vs %.0f", rep2.HPWL, rep1.HPWL)
	}
	if rep2.DetailResult.Reorders+rep2.DetailResult.Swaps == 0 {
		t.Fatal("detail pass reported no moves")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"unknown mode", Config{Mode: Mode(99)}, "Mode"},
		{"density above 1", Config{TargetDensity: 1.2}, "TargetDensity"},
		{"negative density", Config{TargetDensity: -0.5}, "TargetDensity"},
		{"negative cluster ratio", Config{ClusterRatio: -1}, "ClusterRatio"},
		{"negative levels", Config{MaxLevels: -2}, "MaxLevels"},
		{"negative anchor weight", Config{AnchorWeight: -0.1}, "AnchorWeight"},
		{"negative workers", Config{Workers: -4}, "Workers"},
		{"negative detail passes", Config{DetailPasses: -1}, "DetailPasses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("flagged field %q, want %q", ce.Field, tc.field)
			}
			// The facade must reject the config before touching the
			// netlist.
			inst := smallChip(t, 50, 9, nil)
			if _, perr := Place(inst.N, tc.cfg); !errors.As(perr, &ce) {
				t.Fatalf("Place accepted an invalid config: %v", perr)
			}
		})
	}
	if err := (&Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}
