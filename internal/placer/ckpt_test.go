package placer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fbplace/internal/ckpt"
	"fbplace/internal/faultsim"
	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

// ckptInstances are the synthetic chips the kill-and-resume tests run on:
// one plain, one movebounded (so the config fingerprint and the
// movebound-aware realization paths are both exercised).
func ckptInstances(t *testing.T) []*gen.Instance {
	t.Helper()
	specs := []gen.ChipSpec{
		{Name: "ckpt-plain", NumCells: 600, Seed: 3},
		{Name: "ckpt-mb", NumCells: 900, Seed: 11,
			Movebounds: []gen.MoveboundSpec{
				{Kind: region.Inclusive, CellFraction: 0.2, Density: 0.7, NestedIn: -1},
			}},
	}
	out := make([]*gen.Instance, len(specs))
	for i, spec := range specs {
		inst, err := gen.Chip(spec)
		if err != nil {
			t.Fatalf("gen.Chip(%s): %v", spec.Name, err)
		}
		out[i] = inst
	}
	return out
}

func ckptConfig(inst *gen.Instance, workers int, dir string) Config {
	return Config{Movebounds: inst.Movebounds, Workers: workers,
		Checkpoint: Checkpoint{Dir: dir}}
}

// hexPositions renders the placement as raw float64 bit patterns — the
// oracle for bit-identical comparisons.
func hexPositions(n *netlist.Netlist) []uint64 {
	out := make([]uint64, 0, 2*len(n.X))
	for i := range n.X {
		out = append(out, math.Float64bits(n.X[i]), math.Float64bits(n.Y[i]))
	}
	return out
}

func samePositions(t *testing.T, label string, want, got []uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: position count differs: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: cell %d coordinate %d differs: %016x vs %016x",
				label, i/2, i%2, want[i], got[i])
		}
	}
}

// killAtLevel runs a checkpointed placement armed to panic at the entry of
// level `level`, recovers the injected panic, and returns leaving earlier
// levels' snapshots on disk. extraArm lets callers arm additional sites
// for the killed prefix.
func killAtLevel(t *testing.T, inst *gen.Instance, workers, level int, dir string, extraArm map[string]faultsim.Schedule) {
	t.Helper()
	for name, sched := range extraArm {
		if err := faultsim.Arm(name, sched); err != nil {
			t.Fatal(err)
		}
	}
	// The site's hit h is the entry of level h+1.
	if err := faultsim.Arm("placer.level.fail",
		faultsim.Schedule{After: uint64(level - 1), Limit: 1, Panic: true}); err != nil {
		t.Fatal(err)
	}
	n := inst.N.Clone()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("run survived the level-%d panic", level)
		}
		if _, ok := r.(*faultsim.InjectedError); !ok {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	_, _ = PlaceCtx(context.Background(), n, ckptConfig(inst, workers, dir))
}

// TestKillResumeBitIdentical is the tentpole property: a run killed
// mid-level by an injected panic and resumed from its last checkpoint
// produces, through the rest of the global loop and legalization, exactly
// the placement of an uninterrupted run — every position bit equal — at 1
// and 4 workers on both instances.
func TestKillResumeBitIdentical(t *testing.T) {
	defer faultsim.Reset()
	for _, inst := range ckptInstances(t) {
		for _, workers := range []int{1, 4} {
			faultsim.Reset()
			base := inst.N.Clone()
			baseRep, err := PlaceCtx(context.Background(), base, ckptConfig(inst, workers, ""))
			if err != nil {
				t.Fatalf("%s workers=%d: baseline: %v", inst.Spec.Name, workers, err)
			}
			if baseRep.Levels < 3 {
				t.Fatalf("%s: only %d levels — kill at level 2 would not be mid-run", inst.Spec.Name, baseRep.Levels)
			}

			dir := t.TempDir()
			killAtLevel(t, inst, workers, 2, dir, nil)
			faultsim.Reset()
			gens, err := os.ReadDir(dir)
			if err != nil || len(gens) == 0 {
				t.Fatalf("%s workers=%d: killed run left no checkpoint (%v)", inst.Spec.Name, workers, err)
			}

			res := inst.N.Clone()
			resRep, err := Resume(context.Background(), res, dir, ckptConfig(inst, workers, dir))
			if err != nil {
				t.Fatalf("%s workers=%d: resume: %v", inst.Spec.Name, workers, err)
			}
			label := fmt.Sprintf("%s workers=%d", inst.Spec.Name, workers)
			samePositions(t, label, hexPositions(base), hexPositions(res))
			if baseRep.HPWL != resRep.HPWL {
				t.Fatalf("%s: HPWL differs: %v vs %v", label, baseRep.HPWL, resRep.HPWL)
			}
			if resRep.Levels != baseRep.Levels {
				t.Fatalf("%s: levels differ: %d vs %d", label, baseRep.Levels, resRep.Levels)
			}
			if resRep.QPSolves != baseRep.QPSolves || resRep.CGIters != baseRep.CGIters {
				t.Fatalf("%s: restored QP counters differ: %d/%d vs %d/%d", label,
					resRep.QPSolves, resRep.CGIters, baseRep.QPSolves, baseRep.CGIters)
			}
			if len(resRep.FBPStats) != len(baseRep.FBPStats) {
				t.Fatalf("%s: FBPStats levels differ: %d vs %d", label,
					len(resRep.FBPStats), len(baseRep.FBPStats))
			}
		}
	}
}

// TestResumeRestoresDegradations arms a CG fault so the pre-kill levels
// degrade, kills the run, and checks the resumed report carries the
// pre-crash degradation events verbatim — the snapshot, not the process,
// is the unit of history.
func TestResumeRestoresDegradations(t *testing.T) {
	defer faultsim.Reset()
	leakcheck.Check(t)
	inst := ckptInstances(t)[0]
	// Limit 2 defeats both CG attempts (initial + 4x retry) of exactly one
	// axis solve of the initial QP, producing one pre-kill degradation.
	cgFault := map[string]faultsim.Schedule{"sparse.cg.noconverge": {Limit: 2}}

	faultsim.Reset()
	for name, sched := range cgFault {
		if err := faultsim.Arm(name, sched); err != nil {
			t.Fatal(err)
		}
	}
	base := inst.N.Clone()
	baseRep, err := PlaceCtx(context.Background(), base, ckptConfig(inst, 4, ""))
	if err != nil {
		t.Fatalf("degraded baseline: %v", err)
	}
	if len(baseRep.Degradations) == 0 {
		t.Fatal("baseline recorded no degradation — arming did not bite")
	}

	faultsim.Reset()
	dir := t.TempDir()
	killAtLevel(t, inst, 4, 2, dir, cgFault)
	faultsim.Reset()

	res := inst.N.Clone()
	resRep, err := Resume(context.Background(), res, dir, ckptConfig(inst, 4, dir))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(resRep.Degradations) != len(baseRep.Degradations) {
		t.Fatalf("restored degradations: %v, want %v", resRep.Degradations, baseRep.Degradations)
	}
	for i := range baseRep.Degradations {
		if resRep.Degradations[i] != baseRep.Degradations[i] {
			t.Fatalf("degradation %d differs: %+v vs %+v",
				i, resRep.Degradations[i], baseRep.Degradations[i])
		}
	}
	samePositions(t, "degraded", hexPositions(base), hexPositions(res))
}

// TestResumeTornNewestGeneration tears the newest checkpoint via the
// ckpt.corrupt site, kills the run after it, and checks resume falls back
// to the previous generation (recording the fallback) and still converges
// to the uninterrupted run's exact placement.
func TestResumeTornNewestGeneration(t *testing.T) {
	defer faultsim.Reset()
	inst := ckptInstances(t)[0]
	base := inst.N.Clone()
	if _, err := PlaceCtx(context.Background(), base, ckptConfig(inst, 4, "")); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	dir := t.TempDir()
	// Tear the level-2 snapshot (hit 1), then die at level-3 entry: disk
	// holds generation 1 (good) and generation 2 (torn).
	killAtLevel(t, inst, 4, 3, dir, map[string]faultsim.Schedule{
		"ckpt.corrupt": {After: 1, Limit: 1},
	})
	faultsim.Reset()

	res := inst.N.Clone()
	resRep, err := Resume(context.Background(), res, dir, ckptConfig(inst, 4, dir))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	found := false
	for _, ev := range resRep.Degradations {
		if ev.Stage == "ckpt.fallback" && ev.Fallback == "previous-generation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ckpt.fallback degradation recorded: %v", resRep.Degradations)
	}
	samePositions(t, "torn", hexPositions(base), hexPositions(res))
}

// TestResumeRefusals: a snapshot must never be applied to a different
// circuit or continued under a different configuration.
func TestResumeRefusals(t *testing.T) {
	insts := ckptInstances(t)
	inst := insts[0]
	dir := t.TempDir()
	n := inst.N.Clone()
	if _, err := PlaceCtx(context.Background(), n, ckptConfig(inst, 1, dir)); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}

	var re *ResumeError
	// Different circuit.
	other := insts[1]
	_, err := Resume(context.Background(), other.N.Clone(), dir, ckptConfig(other, 1, dir))
	if !errors.As(err, &re) || !strings.Contains(re.Reason, "netlist fingerprint") {
		t.Fatalf("foreign netlist: want netlist fingerprint refusal, got %v", err)
	}
	// Different configuration.
	cfg := ckptConfig(inst, 1, dir)
	cfg.AnchorWeight = 0.11
	_, err = Resume(context.Background(), inst.N.Clone(), dir, cfg)
	if !errors.As(err, &re) || !strings.Contains(re.Reason, "config fingerprint") {
		t.Fatalf("changed config: want config fingerprint refusal, got %v", err)
	}
	// Worker count is excluded from the hash: determinism across workers
	// is a placer guarantee, so resuming with a different count is legal.
	if _, err := Resume(context.Background(), inst.N.Clone(), dir, ckptConfig(inst, 4, t.TempDir())); err != nil {
		t.Fatalf("worker-count change refused: %v", err)
	}
	// Empty and missing directories.
	_, err = Resume(context.Background(), inst.N.Clone(), "", ckptConfig(inst, 1, ""))
	if !errors.As(err, &re) {
		t.Fatalf("empty dir: want *ResumeError, got %v", err)
	}
	_, err = Resume(context.Background(), inst.N.Clone(), t.TempDir(), ckptConfig(inst, 1, ""))
	if !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("no checkpoint: want ErrNoCheckpoint in chain, got %v", err)
	}
}

// ckptCancelCtx cancels itself at the first poll after a checkpoint
// generation exists, so cancellation lands deterministically inside the
// level after the first snapshot.
type ckptCancelCtx struct {
	context.Context
	dir string
}

func (c *ckptCancelCtx) Err() error {
	entries, err := os.ReadDir(c.dir)
	if err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".fbck") {
				return context.Canceled
			}
		}
	}
	return c.Context.Err()
}

// TestResumeAfterCancellation cancels a checkpointed run right after its
// first snapshot lands, plants a torn half-written newer generation (a
// write the cancellation interrupted), and checks the store still resumes
// from the intact previous generation to the uninterrupted placement.
// leakcheck guards the whole kill-and-resume cycle.
func TestResumeAfterCancellation(t *testing.T) {
	defer faultsim.Reset()
	leakcheck.Check(t)
	inst := ckptInstances(t)[0]
	base := inst.N.Clone()
	if _, err := PlaceCtx(context.Background(), base, ckptConfig(inst, 4, "")); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	dir := t.TempDir()
	n := inst.N.Clone()
	_, err := PlaceCtx(&ckptCancelCtx{Context: context.Background(), dir: dir}, n, ckptConfig(inst, 4, dir))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: want context.Canceled, got %v", err)
	}
	gens, err := os.ReadDir(dir)
	if err != nil || len(gens) == 0 {
		t.Fatalf("canceled run left no checkpoint (%v)", err)
	}
	// Plant the write the cancellation interrupted: a half-written newer
	// generation.
	full, err := os.ReadFile(filepath.Join(dir, gens[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-00000099.fbck"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	res := inst.N.Clone()
	resRep, err := Resume(context.Background(), res, dir, ckptConfig(inst, 4, dir))
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	found := false
	for _, ev := range resRep.Degradations {
		if ev.Stage == "ckpt.fallback" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ckpt.fallback recorded: %v", resRep.Degradations)
	}
	samePositions(t, "canceled", hexPositions(base), hexPositions(res))
}

// TestCheckpointEveryLevel checks the stride: EveryLevel 2 writes only
// even levels plus the final one, and resume from a stride checkpoint
// still reproduces the full run.
func TestCheckpointEveryLevel(t *testing.T) {
	defer faultsim.Reset()
	inst := ckptInstances(t)[0]
	base := inst.N.Clone()
	baseRep, err := PlaceCtx(context.Background(), base, ckptConfig(inst, 1, ""))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	dir := t.TempDir()
	cfg := ckptConfig(inst, 1, dir)
	cfg.Checkpoint.EveryLevel = 2
	n := inst.N.Clone()
	if _, err := PlaceCtx(context.Background(), n, cfg); err != nil {
		t.Fatalf("stride run: %v", err)
	}
	wantWrites := (baseRep.Levels + 1) / 2 // even levels, plus the final when odd
	store := &ckpt.Store{Dir: dir}
	snap, _, err := store.Load()
	if err != nil {
		t.Fatalf("load stride checkpoint: %v", err)
	}
	if snap.Level != baseRep.Levels {
		t.Fatalf("final stride snapshot at level %d, want %d", snap.Level, baseRep.Levels)
	}
	if int(snapGen(t, dir)) != wantWrites {
		t.Fatalf("stride wrote %d generations, want %d", snapGen(t, dir), wantWrites)
	}

	res := inst.N.Clone()
	if _, err := Resume(context.Background(), res, dir, cfg); err != nil {
		t.Fatalf("resume from stride: %v", err)
	}
	samePositions(t, "stride", hexPositions(base), hexPositions(res))
}

// snapGen returns the newest generation number in dir.
func snapGen(t *testing.T, dir string) uint64 {
	t.Helper()
	store := &ckpt.Store{Dir: dir}
	_, info, err := store.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return info.Gen
}
