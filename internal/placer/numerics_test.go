package placer

import (
	"errors"
	"math"
	"testing"

	"fbplace/internal/gen"
	"fbplace/internal/geom"
	"fbplace/internal/netlist"
)

// poison builds a fresh instance and applies f to its netlist before
// placing, returning the placement error.
func poison(t *testing.T, f func(n *netlist.Netlist)) error {
	t.Helper()
	inst, err := gen.Chip(gen.ChipSpec{Name: "poison", NumCells: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f(inst.N)
	_, perr := Place(inst.N, Config{})
	return perr
}

// TestNumericGuard: NaN/Inf in net weights, pin offsets, pad positions or
// cell positions must be rejected at entry with a structured NumericError
// — CG would otherwise propagate the poison into every coordinate without
// ever failing.
func TestNumericGuard(t *testing.T) {
	cases := []struct {
		name string
		f    func(n *netlist.Netlist)
		kind string
	}{
		{"nan net weight", func(n *netlist.Netlist) { n.Nets[3].Weight = math.NaN() }, "net-weight"},
		{"inf net weight", func(n *netlist.Netlist) { n.Nets[0].Weight = math.Inf(1) }, "net-weight"},
		{"nan pin offset", func(n *netlist.Netlist) {
			for i := range n.Nets {
				for j := range n.Nets[i].Pins {
					if !n.Nets[i].Pins[j].IsPad() {
						n.Nets[i].Pins[j].Offset.X = math.NaN()
						return
					}
				}
			}
		}, "pin-offset"},
		{"inf pad position", func(n *netlist.Netlist) {
			n.Nets[1].Pins = append(n.Nets[1].Pins,
				netlist.Pin{Cell: -1, Offset: geom.Point{X: 1, Y: math.Inf(-1)}})
		}, "pad-position"},
		{"nan cell position", func(n *netlist.Netlist) { n.X[7] = math.NaN() }, "cell-position"},
		{"inf cell position", func(n *netlist.Netlist) { n.Y[2] = math.Inf(1) }, "cell-position"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := poison(t, tc.f)
			var ne *NumericError
			if !errors.As(err, &ne) {
				t.Fatalf("want *NumericError, got %v", err)
			}
			if ne.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", ne.Kind, tc.kind)
			}
			if ne.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
	// A pristine instance must pass the guard.
	if err := poison(t, func(*netlist.Netlist) {}); err != nil {
		t.Fatalf("clean instance rejected: %v", err)
	}
	// Non-finite cell sizes are caught by netlist.Validate.
	err := poison(t, func(n *netlist.Netlist) { n.Cells[4].Width = math.NaN() })
	if err == nil || errors.As(err, new(*NumericError)) {
		t.Fatalf("NaN cell size: want netlist validation error, got %v", err)
	}
}
