// Package placer drives global placement: a loop of quadratic netlength
// minimization and partitioning on successively finer window grids
// (paper §III/§IV), followed by legalization. Two partitioning engines are
// provided: the paper's flow-based partitioning (fbp) and the classical
// recursive window-by-window quadrisection it improves upon ([5],[17],[27]
// — the ablation baseline), which lacks the global view and may have to
// relax capacities locally.
package placer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fbplace/internal/certify"
	"fbplace/internal/ckpt"
	"fbplace/internal/cluster"
	"fbplace/internal/degrade"
	"fbplace/internal/detail"
	"fbplace/internal/faultsim"
	"fbplace/internal/fbp"
	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/qp"
	"fbplace/internal/region"
	"fbplace/internal/transport"
)

// levelFault fails a partitioning level at entry, exercising the placer's
// structured error propagation out of the global loop.
var levelFault = faultsim.Register("placer.level.fail",
	"a global-loop partitioning level fails at entry")

// corruptFault silently bit-flips one cell position between realization
// and legalization — the kind of wrong answer no solver error path can
// report. It exists to prove end-to-end that certification catches
// corruption, safe mode repairs it, and a corrupted result is never
// cached (see internal/serve and ci.sh).
var corruptFault = faultsim.Register("certify.corrupt",
	"bit-flips one cell position between realization and legalization")

// CertifyMode selects how much of a run is independently certified.
type CertifyMode int

const (
	// CertifyOff runs no certification (the default).
	CertifyOff CertifyMode = iota
	// CertifyFinal certifies the final placement only: positions sane and
	// the report matching an independent recount/recompute.
	CertifyFinal
	// CertifyEveryLevel additionally certifies every FBP level: MCF
	// optimality (dual feasibility/complementary slackness), every
	// realization transportation, and the partition invariants.
	CertifyEveryLevel
)

// Mode selects the partitioning engine.
type Mode int

const (
	// ModeFBP is the paper's flow-based partitioning.
	ModeFBP Mode = iota
	// ModeRecursive is the classical local recursive partitioning
	// baseline (no global MinCostFlow; windows partitioned one by one).
	ModeRecursive
)

// Config tunes the placer.
type Config struct {
	// Mode selects FBP or the recursive baseline.
	Mode Mode
	// TargetDensity scales region capacities (paper experiments: 0.97).
	TargetDensity float64
	// Movebounds are the raw movebounds; they are normalized internally.
	Movebounds []region.Movebound
	// ClusterRatio enables BestChoice clustering when > 1.
	ClusterRatio float64
	// MaxLevels caps grid refinement; 0 = automatic.
	MaxLevels int
	// AnchorWeight is the base weight of the per-level anchors tying the
	// QP to the partitioning result. Default 0.05.
	AnchorWeight float64
	// Workers bounds realization parallelism (0 = GOMAXPROCS).
	Workers int
	// NoLocalQP disables the connectivity-aware local QP that normally
	// runs before each realization transportation (paper §IV.B). The
	// local QP is on by default; set NoLocalQP for the ablation or to
	// trade quality for speed.
	NoLocalQP bool
	// NoPairPass disables the neighbor-pair realization pass at deep
	// levels (many small windows) and forces the legacy 3x3-block
	// transports everywhere. The pair pass is on by default.
	NoPairPass bool
	// ParallelWindows enables speculative per-window realization
	// transports with a joint-feasibility merge. Faster on hotspot
	// instances but scheduling-dependent: results are no longer
	// bit-identical across worker counts. Off by default.
	ParallelWindows bool
	// SkipLegalization stops after global placement.
	SkipLegalization bool
	// KeepPlacement starts from the current cell positions instead of a
	// fresh quadratic solve (incremental placement, §IV motivation).
	KeepPlacement bool
	// DetailPasses runs legality-preserving detailed placement after
	// legalization (0 = off).
	DetailPasses int
	// QP are the quadratic solver options.
	QP qp.Options
	// Legalize are the legalization options.
	Legalize legalize.Options
	// Checkpoint, when Dir is set, makes the global loop emit crash-safe
	// snapshots at level boundaries; Resume continues from them. See
	// internal/ckpt and the Checkpoint type.
	Checkpoint Checkpoint
	// Preempt, when non-nil, is polled once per completed level of the
	// checkpointed (flat) global loop. When it returns true and the
	// level's snapshot is safely on disk, the run stops with a
	// *PreemptedError instead of continuing — Resume later picks up from
	// that snapshot bit-identically, which is what makes preemption safe
	// (see internal/serve). When the snapshot cannot be written the
	// preemption is skipped and recorded as a degradation ("preempt" ->
	// "kept-running"): a preemption request must never corrupt or lose a
	// healthy run. Preempt is ignored without Checkpoint.Dir and during
	// the clustered coarse levels (which are never snapshotted).
	Preempt func() bool
	// Obs, when non-nil, records phase spans, solver counters and gauges
	// for the whole run (see internal/obs). A nil recorder disables
	// observability at the cost of a nil check per call site.
	Obs *obs.Recorder
	// Certify enables independent result certification (internal/certify).
	// A failed certificate triggers safe-mode repair: the failing level
	// (CertifyEveryLevel) or the whole run is re-executed with
	// conservative engines, recorded as a "certify" degradation with the
	// certify.fail/certify.repair counters. A repair that fails
	// certification again propagates the *certify.Error to the caller.
	Certify CertifyMode
	// SafeMode forces the conservative engine set everywhere: no pair
	// pass, no parallel windows, condensed-only transportation rungs,
	// sequential workers. Repair runs set it; callers may too, to
	// reproduce exactly what a repair would compute.
	SafeMode bool
}

func (c *Config) fill() {
	if c.TargetDensity == 0 {
		c.TargetDensity = 0.97
	}
	if c.AnchorWeight == 0 {
		c.AnchorWeight = 0.05
	}
}

// ConfigError reports a structurally invalid Config field. It is returned
// by Place before any work starts, so a bad configuration can never
// produce a half-finished placement.
type ConfigError struct {
	// Field is the Config field name, Reason the constraint it violates.
	Field, Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("placer: invalid Config.%s: %s", e.Field, e.Reason)
}

// Validate checks the configuration for invalid values. Zero values are
// always valid (they select documented defaults).
func (c *Config) Validate() error {
	if c.Mode != ModeFBP && c.Mode != ModeRecursive {
		return &ConfigError{Field: "Mode", Reason: fmt.Sprintf("unknown mode %d", c.Mode)}
	}
	if c.TargetDensity < 0 || c.TargetDensity > 1 {
		return &ConfigError{Field: "TargetDensity", Reason: fmt.Sprintf("%g outside (0, 1]", c.TargetDensity)}
	}
	if c.ClusterRatio < 0 {
		return &ConfigError{Field: "ClusterRatio", Reason: fmt.Sprintf("negative ratio %g", c.ClusterRatio)}
	}
	if c.MaxLevels < 0 {
		return &ConfigError{Field: "MaxLevels", Reason: fmt.Sprintf("negative level count %d", c.MaxLevels)}
	}
	if c.AnchorWeight < 0 {
		return &ConfigError{Field: "AnchorWeight", Reason: fmt.Sprintf("negative weight %g", c.AnchorWeight)}
	}
	if c.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", c.Workers)}
	}
	if c.DetailPasses < 0 {
		return &ConfigError{Field: "DetailPasses", Reason: fmt.Sprintf("negative pass count %d", c.DetailPasses)}
	}
	if c.Checkpoint.EveryLevel < 0 {
		return &ConfigError{Field: "Checkpoint.EveryLevel", Reason: fmt.Sprintf("negative level stride %d", c.Checkpoint.EveryLevel)}
	}
	if c.Certify < CertifyOff || c.Certify > CertifyEveryLevel {
		return &ConfigError{Field: "Certify", Reason: fmt.Sprintf("unknown mode %d", c.Certify)}
	}
	return nil
}

// Report summarizes a placement run.
type Report struct {
	// HPWL is the final half-perimeter wirelength.
	HPWL float64
	// GlobalTime and LegalTime split the wall-clock (paper Table VI).
	GlobalTime, LegalTime time.Duration
	// Levels is the number of partitioning levels executed.
	Levels int
	// Violations counts cells violating movebounds after legalization.
	Violations int
	// Overlaps counts overlapping cell pairs (0 for successful runs).
	Overlaps int
	// FBPStats holds per-level flow statistics (FBP mode), including the
	// per-level network-simplex pivot counts and local-QP CG iterations.
	FBPStats []fbp.Stats
	// QPSolves and CGIters count the top-level quadratic solves (initial
	// plus per-level anchored) and their total CG iterations over both
	// axes. Realization-local QP effort is reported per level in
	// FBPStats instead.
	QPSolves, CGIters int64
	// Relaxations counts capacity relaxations of the recursive baseline.
	Relaxations int
	// LegalizeResult carries movement statistics.
	LegalizeResult legalize.Result
	// DetailResult carries detailed-placement statistics (when enabled).
	DetailResult detail.Result
	// Degradations lists the solver fallbacks taken during the run, sorted
	// by (Stage, Fallback, Detail); empty for a fully converged run. A
	// degraded run still satisfies every hard guarantee (movebounds,
	// legality) — the entries say where optimality was traded for
	// robustness (see DESIGN.md §6).
	Degradations []degrade.Event
	// Certified is true when Config.Certify was enabled and the final
	// certificates held (possibly after a safe-mode repair, which then
	// appears in Degradations as a "certify" stage).
	Certified bool
}

// Place runs global placement and legalization on the netlist in place.
func Place(n *netlist.Netlist, cfg Config) (*Report, error) {
	return PlaceCtx(context.Background(), n, cfg)
}

// PlaceCtx is Place with cancellation: ctx is threaded through the global
// loop into the CG, network-simplex and transportation solvers, so a
// canceled or already-expired context aborts within one outer iteration
// and returns the context's error. Fallbacks taken by the solver chains
// are collected in Report.Degradations.
func PlaceCtx(ctx context.Context, n *netlist.Netlist, cfg Config) (*Report, error) {
	return run(ctx, n, cfg, "")
}

// Resume continues a checkpointed placement from the newest valid
// snapshot in dir (written by a run with Config.Checkpoint.Dir set). The
// netlist must be the same instance in its load-time state: Resume
// validates a structural fingerprint of the circuit and a hash of the
// configuration, and refuses mismatches with a *ResumeError rather than
// continuing a run that would diverge from the interrupted one. On
// success the remaining levels, legalization and detail run as usual, and
// the final placement is bit-identical to what the uninterrupted run
// would have produced. Pre-crash degradations, per-level stats and solver
// counters are restored into the Report.
func Resume(ctx context.Context, n *netlist.Netlist, dir string, cfg Config) (*Report, error) {
	if dir == "" {
		return nil, &ResumeError{Dir: dir, Reason: "empty checkpoint directory"}
	}
	return run(ctx, n, cfg, dir)
}

// run is the shared body of PlaceCtx and Resume; resumeDir is empty for
// fresh runs. With certification enabled it is also the whole-run repair
// loop: a *certify.Error from the attempt restores the entry positions
// and re-runs the placement once in safe mode (conservative engines,
// sequential, no checkpointing or preemption — the repair must share no
// state with the run that produced a wrong answer). A repair that fails
// certification again propagates the error; so does a certify failure of
// a run that was already in safe mode.
func run(ctx context.Context, n *netlist.Netlist, cfg Config, resumeDir string) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.fill()
	dl := degrade.New(cfg.Obs)
	var entryX, entryY []float64
	if cfg.Certify != CertifyOff && !cfg.SafeMode {
		entryX = append([]float64(nil), n.X...)
		entryY = append([]float64(nil), n.Y...)
	}
	rep, err := runOnce(ctx, n, cfg, resumeDir, dl)
	var ce *certify.Error
	if err != nil && errors.As(err, &ce) {
		cfg.Obs.Count("certify.fail", 1)
		if !cfg.SafeMode {
			dl.Add("certify", "safe-mode", ce.Error())
			cfg.Obs.Count("certify.repair", 1)
			copy(n.X, entryX)
			copy(n.Y, entryY)
			safe := cfg
			safe.SafeMode = true
			safe.NoPairPass = true
			safe.ParallelWindows = false
			safe.Workers = 1
			safe.Checkpoint = Checkpoint{}
			safe.Preempt = nil
			rep, err = runOnce(ctx, n, safe, "", dl)
			if err != nil && errors.As(err, &ce) {
				cfg.Obs.Count("certify.fail", 1)
			}
		}
	}
	return rep, err
}

// runOnce executes one placement attempt; the degradation log is owned by
// run so a repair attempt extends its predecessor's record.
func runOnce(ctx context.Context, n *netlist.Netlist, cfg Config, resumeDir string, dl *degrade.Log) (*Report, error) {
	if err := validateNumerics(n); err != nil {
		return nil, err
	}
	psp := cfg.Obs.StartSpan("place")
	defer psp.End()
	// Top-level QP effort feeds Report.QPSolves/CGIters; the realization
	// overrides these options for its local solves, so the split stays
	// clean.
	var qpStats qp.SolveStats
	cfg.QP.Obs = cfg.Obs
	cfg.QP.Stats = &qpStats
	cfg.QP.Ctx = ctx
	cfg.QP.Degrade = dl
	// The top-level solves (initial + one anchored per level) run strictly
	// one after another, so they can share one workspace. The realization
	// replaces it with per-worker workspaces for its concurrent local QPs.
	cfg.QP.Workspace = qp.NewWorkspace()
	mbs, err := region.Normalize(n.Area, cfg.Movebounds)
	if err != nil {
		return nil, err
	}
	if err := n.Validate(len(mbs)); err != nil {
		return nil, err
	}
	decomp := region.Decompose(n.Area, mbs)
	blockages := n.FixedRects()
	caps := decomp.Capacities(blockages, cfg.TargetDensity)
	if rep := region.CheckFeasibility(n, decomp, caps); !rep.Feasible {
		return nil, fmt.Errorf("placer: instance infeasible (Theorem 2): %.1f cell area vs %.1f routable capacity",
			rep.TotalSize, rep.Routed)
	}

	report := &Report{}
	// The degradation log fills regardless of how the run ends, so attach
	// it on every path that hands the report out.
	defer func() { report.Degradations = dl.Events() }()

	levels := levelsFor(n, cfg)
	report.Levels = levels

	// Checkpoint/resume: both sides key snapshots to the instance and the
	// configuration, so a snapshot can never be applied to a different
	// circuit or continued under a diverging trajectory.
	var netFP, cfgFP uint64
	if cfg.Checkpoint.Dir != "" || resumeDir != "" {
		netFP = ckpt.Fingerprint(n)
		cfgFP = configFingerprint(&cfg)
	}
	var snap *ckpt.Snapshot
	if resumeDir != "" {
		var rerr error
		snap, rerr = loadResume(n, resumeDir, netFP, cfgFP, levels, dl, &qpStats, report, cfg.Obs)
		if rerr != nil {
			return nil, rerr
		}
	}

	gsp := cfg.Obs.StartSpan("global")
	start := time.Now() //fbpvet:allow timing feeds Report.GlobalTime only, never positions
	var baseElapsed time.Duration
	if snap != nil {
		baseElapsed = snap.GlobalElapsed
	}

	startLevel := 1
	freshQP := true
	if cfg.KeepPlacement {
		// Incremental placement (§IV motivation): the existing placement
		// is already spread, so only the finest partitioning level runs —
		// FBP guarantees a feasible partitioning from any starting
		// placement, which is exactly what recursive approaches lack.
		startLevel = levels
		report.Levels = 1
		freshQP = false
	}
	if snap != nil {
		// The snapshot holds the positions after snap.Level's anchored QP;
		// continue with the next level, from those positions (no fresh
		// initial solve — it would discard them).
		startLevel = snap.Level + 1
		freshQP = false
	}
	var ck *ckptState
	if cfg.Checkpoint.Dir != "" {
		ck = &ckptState{
			store:   &ckpt.Store{Dir: cfg.Checkpoint.Dir, Obs: cfg.Obs},
			netFP:   netFP,
			cfgFP:   cfgFP,
			levels:  levels,
			every:   cfg.Checkpoint.EveryLevel,
			qpStats: &qpStats,
			report:  report,
			dl:      dl,
			rec:     cfg.Obs,
			start:   start,
			base:    baseElapsed,
		}
	}
	finishGlobal := func() {
		report.GlobalTime = baseElapsed + time.Since(start) //fbpvet:allow reporting-only duration
		report.QPSolves, report.CGIters = qpStats.Snapshot()
		gsp.End()
	}
	if cfg.ClusterRatio > 1 && !cfg.KeepPlacement && snap == nil {
		// Multilevel flow as in the paper's experiments: BestChoice
		// clusters carry the coarse partitioning levels, then the
		// clustering is dissolved and the finest levels run on the flat
		// netlist so intra-cluster detail is recovered by FBP itself.
		// The coarse loop runs on a temporary clustered netlist and is not
		// checkpointed; snapshots start with the first flat level.
		cl := cluster.BestChoice(n, cluster.Options{Ratio: cfg.ClusterRatio})
		coarseEnd := levels - 2
		if coarseEnd < 1 {
			coarseEnd = 1
		}
		if err := globalLoop(ctx, cl.Clustered, decomp, blockages, cfg, dl, report, 1, coarseEnd, true, nil); err != nil {
			return nil, err
		}
		cl.Project()
		fineStart := coarseEnd + 1
		if fineStart > levels {
			fineStart = levels
		}
		if err := globalLoop(ctx, n, decomp, blockages, cfg, dl, report, fineStart, levels, false, ck); err != nil {
			return nil, err
		}
	} else {
		if err := globalLoop(ctx, n, decomp, blockages, cfg, dl, report, startLevel, levels, freshQP, ck); err != nil {
			return nil, err
		}
	}
	finishGlobal()

	if ierr := corruptFault.Check(); ierr != nil {
		// Injected silent corruption: flip the sign bit of the first
		// movable cell's x — a wrong answer with no error attached, which
		// only certification can catch.
		for i := range n.Cells {
			if !n.Cells[i].Fixed {
				n.X[i] = math.Float64frombits(math.Float64bits(n.X[i]) ^ (1 << 63))
				break
			}
		}
	}
	if cfg.Certify != CertifyOff {
		// Position sanity before legalization: corruption must be caught
		// while the damage is still one coordinate, not after legalization
		// has spread it across a row.
		chk := &certify.Checker{Obs: cfg.Obs, Ctx: ctx, Level: -1}
		if cerr := chk.Positions(n); cerr != nil {
			return report, cerr
		}
	}

	if !cfg.SkipLegalization {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		lsp := cfg.Obs.StartSpan("legalize")
		lstart := time.Now() //fbpvet:allow timing feeds Report.LegalTime only, never positions
		var lr legalize.Result
		var lerr error
		lopt := cfg.Legalize
		lopt.Obs = cfg.Obs
		if len(mbs) > 0 {
			lr, lerr = legalize.LegalizeWithMovebounds(n, decomp, lopt)
		} else {
			lr, lerr = legalize.Legalize(n, lopt)
		}
		report.LegalTime = time.Since(lstart) //fbpvet:allow reporting-only duration
		report.LegalizeResult = lr
		lsp.End()
		if lerr != nil {
			return report, fmt.Errorf("placer: %w", lerr)
		}
		report.Overlaps = legalize.VerifyNoOverlaps(n)
		if cfg.DetailPasses > 0 {
			dsp := cfg.Obs.StartSpan("detail")
			dres, derr := detail.Optimize(n, mbs, detail.Options{Passes: cfg.DetailPasses})
			dsp.End()
			if derr != nil {
				return report, fmt.Errorf("placer: detail: %w", derr)
			}
			report.DetailResult = dres
			report.Overlaps = legalize.VerifyNoOverlaps(n)
		}
	}
	report.HPWL = n.HPWL()
	report.Violations = region.CheckLegal(n, mbs)
	if cfg.Certify != CertifyOff {
		chk := &certify.Checker{Obs: cfg.Obs, Ctx: ctx, Level: -1}
		if cerr := chk.Placement(n, mbs, certify.Reported{
			HPWL:          report.HPWL,
			Violations:    report.Violations,
			Overlaps:      report.Overlaps,
			Legalized:     !cfg.SkipLegalization,
			TargetDensity: cfg.TargetDensity,
		}); cerr != nil {
			return report, cerr
		}
		report.Certified = true
	}
	return report, nil
}

// PlannedLevels reports how many refinement levels Place will run for n
// under cfg, without placing anything. Admission control prices a job in
// cell x level units before accepting it (see internal/serve).
func PlannedLevels(n *netlist.Netlist, cfg Config) int {
	return levelsFor(n, cfg)
}

// levelsFor picks the number of refinement levels: windows shrink until
// they are a few rows tall or hold only a handful of cells.
func levelsFor(n *netlist.Netlist, cfg Config) int {
	if cfg.MaxLevels > 0 {
		return cfg.MaxLevels
	}
	movable := len(n.MovableIDs())
	maxByCells := int(math.Ceil(math.Log2(math.Sqrt(float64(movable)/4)))) + 1
	dim := math.Min(n.Area.Width(), n.Area.Height())
	maxByDim := int(math.Floor(math.Log2(dim / (4 * n.RowHeight))))
	lv := maxByCells
	if maxByDim < lv {
		lv = maxByDim
	}
	if lv < 1 {
		lv = 1
	}
	if lv > 9 {
		lv = 9
	}
	return lv
}

// globalLoop runs QP + partitioning over grids of level startLevel
// through endLevel (2^lv x 2^lv windows). When freshQP is set, the loop
// starts from an unconstrained quadratic solve; otherwise it continues
// from the current placement. A non-nil ck snapshots the loop state after
// each completed level.
func globalLoop(ctx context.Context, n *netlist.Netlist, decomp *region.Decomposition, blockages geom.RectSet, cfg Config, dl *degrade.Log, report *Report, startLevel, endLevel int, freshQP bool, ck *ckptState) error {
	if freshQP {
		qsp := cfg.Obs.StartSpan("qp.initial")
		err := qp.Solve(n, nil, cfg.QP)
		qsp.End()
		if err != nil {
			return fmt.Errorf("placer: initial QP: %w", err)
		}
	}
	movable := n.MovableIDs()
	anchors := make([]qp.Anchor, len(movable))
	for lv := startLevel; lv <= endLevel; lv++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := levelFault.Check(); err != nil {
			return fmt.Errorf("placer: level %d: %w", lv, err)
		}
		k := 1 << lv
		lsp := cfg.Obs.StartSpan("level")
		lsp.Attr("grid", float64(k))
		g, gerr := grid.New(n.Area, k, k)
		if gerr != nil {
			lsp.End()
			return fmt.Errorf("placer: level %d: %w", lv, gerr)
		}
		wr := grid.BuildWindowRegions(g, decomp, blockages, cfg.TargetDensity)
		switch cfg.Mode {
		case ModeRecursive:
			relax, err := recursivePartition(n, wr, cfg.Obs)
			report.Relaxations += relax
			if err != nil {
				lsp.End()
				return fmt.Errorf("placer: recursive partition level %d: %w", lv, err)
			}
		default:
			fcfg := fbp.Config{
				LocalQP:         !cfg.NoLocalQP,
				PairPass:        !cfg.NoPairPass && !cfg.SafeMode,
				ParallelWindows: cfg.ParallelWindows && !cfg.SafeMode,
				CondensedOnly:   cfg.SafeMode,
				QP:              cfg.QP,
				Workers:         cfg.Workers,
				Obs:             cfg.Obs,
				Ctx:             ctx,
				Degrade:         dl,
			}
			var checker *certify.Checker
			if cfg.Certify == CertifyEveryLevel {
				checker = &certify.Checker{Obs: cfg.Obs, Ctx: ctx, Level: lv}
				fcfg.Check = checker
			}
			partition := func(fc fbp.Config) (*fbp.Result, error) {
				res, perr := fbp.Partition(n, wr, fc)
				if perr != nil {
					return nil, perr
				}
				if checker != nil {
					if cerr := checker.Partition(n, wr, res); cerr != nil {
						return nil, cerr
					}
				}
				return res, nil
			}
			var lvlX, lvlY []float64
			if checker != nil && !cfg.SafeMode {
				lvlX = append([]float64(nil), n.X...)
				lvlY = append([]float64(nil), n.Y...)
			}
			res, err := partition(fcfg)
			var ce *certify.Error
			if err != nil && errors.As(err, &ce) && !cfg.SafeMode {
				// Level-local repair: restore the level's entry positions
				// and redo just this level with the conservative engines. A
				// second certify failure propagates, and run escalates to a
				// whole-placement safe-mode rerun.
				cfg.Obs.Count("certify.fail", 1)
				dl.Add("certify", "level-safe-mode", ce.Error())
				cfg.Obs.Count("certify.repair", 1)
				copy(n.X, lvlX)
				copy(n.Y, lvlY)
				safe := fcfg
				safe.PairPass = false
				safe.ParallelWindows = false
				safe.CondensedOnly = true
				safe.Workers = 1
				res, err = partition(safe)
			}
			if err != nil {
				lsp.End()
				return fmt.Errorf("placer: FBP level %d: %w", lv, err)
			}
			report.FBPStats = append(report.FBPStats, res.Stats)
		}
		// Anchored QP: connectivity pulls within the assigned regions.
		// Clique/star springs here — bound-to-bound weights (~1/distance)
		// would overpower the partition anchors and undo the spreading.
		w := cfg.AnchorWeight * float64(int(1)<<lv) / math.Max(n.Area.Width(), n.Area.Height()) * 64
		for i, id := range movable {
			anchors[i] = qp.Anchor{Cell: id, Target: n.Pos(id), Weight: w}
		}
		qsp := cfg.Obs.StartSpan("qp.anchored")
		err := qp.Solve(n, anchors, cfg.QP)
		qsp.End()
		lsp.End()
		if err != nil {
			return fmt.Errorf("placer: level %d QP: %w", lv, err)
		}
		if err := ck.boundary(n, lv, endLevel, cfg.Preempt); err != nil {
			return err
		}
		// Explicit heartbeat after the boundary: a checkpoint write can be
		// the longest spanless stretch of a level, and the watchdog must
		// not mistake it for a hang.
		cfg.Obs.Beat("level.boundary")
	}
	return nil
}

// recursivePartition is the ablation baseline: each window partitions its
// own cells among its regions independently, with no global flow. When a
// window is overloaded the capacities are relaxed locally (returned count),
// which is exactly the drawback §IV attributes to recursive approaches.
func recursivePartition(n *netlist.Netlist, wr *grid.WindowRegions, rec *obs.Recorder) (int, error) {
	g := wr.Grid
	assign := g.AssignCells(n)
	relaxations := 0
	// Escape pass: a cell whose movebound covers no region of its window
	// cannot be partitioned locally — the inherent blind spot of
	// recursive approaches (§IV). Teleport it to the nearest admissible
	// region anywhere on the chip and count the repair.
	for i := range n.Cells {
		if assign[i] < 0 {
			continue
		}
		mb := n.Cells[i].Movebound
		ok := false
		for k := range wr.PerWin[assign[i]] {
			reg := &wr.PerWin[assign[i]][k]
			if reg.Capacity > 0 && wr.Decomp.Admissible(mb, reg.Region) {
				ok = true
				break
			}
		}
		if ok {
			continue
		}
		relaxations++
		pos := n.Pos(netlist.CellID(i))
		best := pos
		bestD := math.Inf(1)
		for w := 0; w < g.NumWindows(); w++ {
			for k := range wr.PerWin[w] {
				reg := &wr.PerWin[w][k]
				if reg.Capacity <= 0 || !wr.Decomp.Admissible(mb, reg.Region) {
					continue
				}
				for _, rect := range reg.Rects {
					q := rect.ClampPoint(pos)
					if d := q.DistL1(pos); d < bestD {
						best, bestD = q, d
					}
				}
			}
		}
		n.SetPos(netlist.CellID(i), best)
		assign[i] = g.LocateIndex(best)
	}
	cellsIn := make([][]netlist.CellID, g.NumWindows())
	for i := range n.Cells {
		if assign[i] >= 0 {
			cellsIn[assign[i]] = append(cellsIn[assign[i]], netlist.CellID(i))
		}
	}
	for w := 0; w < g.NumWindows(); w++ {
		cells := cellsIn[w]
		if len(cells) == 0 {
			continue
		}
		regs := wr.PerWin[w]
		prob := &transport.Problem{
			Supply:   make([]float64, len(cells)),
			Capacity: make([]float64, len(regs)),
			Arcs:     make([][]transport.Arc, len(cells)),
			Obs:      rec,
		}
		for k := range regs {
			prob.Capacity[k] = regs[k].Capacity
		}
		for i, id := range cells {
			prob.Supply[i] = n.Cells[id].Size()
			pos := n.Pos(id)
			for k := range regs {
				if !wr.Decomp.Admissible(n.Cells[id].Movebound, regs[k].Region) || regs[k].Capacity <= 0 {
					continue
				}
				best := math.Inf(1)
				for _, rect := range regs[k].Rects {
					if d := rect.ClampPoint(pos).DistL1(pos); d < best {
						best = d
					}
				}
				prob.Arcs[i] = append(prob.Arcs[i], transport.Arc{Sink: k, Cost: best})
			}
		}
		sol, err := transport.Solve(prob)
		if err != nil {
			// Local relaxation: inflate capacities until it fits. This is
			// the failure mode of recursive partitioning the paper fixes.
			relaxed := false
			for _, f := range []float64{1.5, 4, 64, 1e9} {
				for k := range regs {
					prob.Capacity[k] = math.Max(regs[k].Capacity, 1e-9) * f
				}
				if sol, err = transport.Solve(prob); err == nil {
					relaxed = true
					break
				}
			}
			if !relaxed {
				return relaxations, fmt.Errorf("window %d: %w", w, err)
			}
			relaxations++
		}
		rounded := sol.Rounded()
		for i, id := range cells {
			k := rounded[i]
			if k < 0 {
				continue
			}
			pos := n.Pos(id)
			best := pos
			bestD := math.Inf(1)
			for _, rect := range regs[k].Rects {
				q := rect.ClampPoint(pos)
				if d := q.DistL1(pos); d < bestD {
					best, bestD = q, d
				}
			}
			n.SetPos(id, best)
		}
	}
	return relaxations, nil
}
