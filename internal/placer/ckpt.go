package placer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"fbplace/internal/ckpt"
	"fbplace/internal/degrade"
	"fbplace/internal/fbp"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/qp"
)

// Checkpoint configures crash-safe snapshots of the global loop (see
// internal/ckpt). The loop is RNG-free — anchors are recomputed from
// positions each level — so a snapshot at a level boundary captures the
// complete continuation state, and a resumed run is bit-identical to an
// uninterrupted one.
type Checkpoint struct {
	// Dir enables checkpointing: after each completed level on the flat
	// netlist a snapshot generation is written here (the clustered coarse
	// levels of multilevel runs are not snapshotted — their positions live
	// on a temporary netlist that resume could not rebuild cheaply).
	Dir string
	// EveryLevel writes a snapshot only every EveryLevel-th level; 0 and 1
	// both mean every level. The final level is always snapshotted.
	EveryLevel int
}

// ErrPreempted is the sentinel wrapped by every *PreemptedError, so
// schedulers can distinguish preemption from failure with errors.Is.
var ErrPreempted = errors.New("placer: preempted at level boundary")

// PreemptedError reports that a run stopped at a level boundary because
// Config.Preempt asked it to, after durably snapshotting the completed
// level. Resume from the same checkpoint directory continues the run
// bit-identically, possibly in another process or on a different worker
// count (Workers is excluded from the resume fingerprint by design).
type PreemptedError struct {
	// Level is the last completed (and snapshotted) level, Levels the
	// total planned for the run.
	Level, Levels int
}

func (e *PreemptedError) Error() string {
	return fmt.Sprintf("placer: preempted after level %d/%d (snapshot written)", e.Level, e.Levels)
}

// Unwrap makes errors.Is(err, ErrPreempted) true.
func (e *PreemptedError) Unwrap() error { return ErrPreempted }

// ResumeError reports why a Resume refused or failed to continue from a
// checkpoint directory. Fingerprint refusals are deliberate: restoring
// positions onto a different circuit, or continuing under a different
// configuration, would silently produce a placement neither run describes.
type ResumeError struct {
	// Dir is the checkpoint directory, Reason what went wrong.
	Dir, Reason string
	// Err is the underlying error, when one exists.
	Err error
}

func (e *ResumeError) Error() string {
	if e.Err != nil {
		return "placer: resume from " + e.Dir + ": " + e.Reason + ": " + e.Err.Error()
	}
	return "placer: resume from " + e.Dir + ": " + e.Reason
}

func (e *ResumeError) Unwrap() error { return e.Err }

// NumericError reports a non-finite (NaN or infinite) numeric input. The
// placer validates these once at entry: CG never diverges loudly on a NaN
// — it propagates it into every position — so the poisoned value must be
// rejected before any solve.
type NumericError struct {
	// Kind names the poisoned quantity: "net-weight", "pin-offset",
	// "pad-position", or "cell-position".
	Kind string
	// Net and Pin locate net-scoped kinds (pin-offset, pad-position);
	// Cell locates cell-scoped ones. Unused indices are -1.
	Net, Pin, Cell int
	// Value is the offending number.
	Value float64
}

func (e *NumericError) Error() string {
	switch e.Kind {
	case "net-weight":
		return fmt.Sprintf("placer: net %d has non-finite weight %g", e.Net, e.Value)
	case "pin-offset":
		return fmt.Sprintf("placer: net %d pin %d has non-finite offset %g", e.Net, e.Pin, e.Value)
	case "pad-position":
		return fmt.Sprintf("placer: net %d pad pin %d has non-finite position %g", e.Net, e.Pin, e.Value)
	default:
		return fmt.Sprintf("placer: cell %d has non-finite position %g", e.Cell, e.Value)
	}
}

// validateNumerics scans net weights, pin offsets, pad positions and cell
// positions for NaN/Inf once, before any solver runs. O(pins + cells).
func validateNumerics(n *netlist.Netlist) error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	for ni := range n.Nets {
		net := &n.Nets[ni]
		if !finite(net.Weight) {
			return &NumericError{Kind: "net-weight", Net: ni, Pin: -1, Cell: -1, Value: net.Weight}
		}
		for pi, p := range net.Pins {
			kind := "pin-offset"
			if p.IsPad() {
				kind = "pad-position"
			}
			if !finite(p.Offset.X) {
				return &NumericError{Kind: kind, Net: ni, Pin: pi, Cell: -1, Value: p.Offset.X}
			}
			if !finite(p.Offset.Y) {
				return &NumericError{Kind: kind, Net: ni, Pin: pi, Cell: -1, Value: p.Offset.Y}
			}
		}
	}
	for ci := range n.Cells {
		if !finite(n.X[ci]) {
			return &NumericError{Kind: "cell-position", Net: -1, Pin: -1, Cell: ci, Value: n.X[ci]}
		}
		if !finite(n.Y[ci]) {
			return &NumericError{Kind: "cell-position", Net: -1, Pin: -1, Cell: ci, Value: n.Y[ci]}
		}
	}
	return nil
}

// ConfigFingerprint is the exported form of configFingerprint for callers
// that key caches on the placement trajectory (internal/serve): it first
// applies the documented defaults, so a zero TargetDensity and an explicit
// 0.97 hash identically — exactly as Resume sees them.
func ConfigFingerprint(cfg *Config) uint64 {
	c := *cfg
	c.fill()
	return configFingerprint(&c)
}

// configFingerprint hashes every Config field that influences the
// placement trajectory, so Resume can refuse to continue a run under a
// different configuration. Workers is deliberately excluded — the placer
// guarantees bit-identical results across worker counts — as are Obs,
// Checkpoint itself, Preempt (a preempted-and-resumed run reproduces the
// uninterrupted one), Certify (checks observe the trajectory, they never
// steer it; only the SafeMode a repair forces does, and that IS hashed),
// and the QP plumbing fields (Obs/Stats/Ctx/Workspace/Degrade) the placer
// injects per run.
func configFingerprint(cfg *Config) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		// fnv's Write never fails.
		_, _ = h.Write(buf[:])
	}
	wf := func(v float64) { w(math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}
	ws := func(s string) {
		w(uint64(len(s)))
		_, _ = h.Write([]byte(s))
	}
	w(uint64(cfg.Mode))
	wf(cfg.TargetDensity)
	wf(cfg.ClusterRatio)
	w(uint64(cfg.MaxLevels))
	wf(cfg.AnchorWeight)
	wb(cfg.NoLocalQP)
	wb(cfg.NoPairPass)
	wb(cfg.ParallelWindows)
	wb(cfg.SafeMode)
	wb(cfg.SkipLegalization)
	wb(cfg.KeepPlacement)
	w(uint64(cfg.DetailPasses))
	w(uint64(cfg.QP.CliqueThreshold))
	wf(cfg.QP.Tol)
	w(uint64(cfg.QP.MaxIter))
	wf(cfg.QP.Regularization)
	wb(cfg.QP.NoClamp)
	wb(cfg.QP.BestEffort)
	w(uint64(cfg.QP.NetModel))
	wf(cfg.QP.B2BMinDist)
	w(uint64(cfg.Legalize.MaxRowSearch))
	w(uint64(len(cfg.Movebounds)))
	for i := range cfg.Movebounds {
		mb := &cfg.Movebounds[i]
		ws(mb.Name)
		w(uint64(mb.Kind))
		w(uint64(len(mb.Area)))
		for _, r := range mb.Area {
			wf(r.Xlo)
			wf(r.Ylo)
			wf(r.Xhi)
			wf(r.Yhi)
		}
	}
	return h.Sum64()
}

// ckptState carries everything the global loop needs to emit a snapshot
// at a level boundary. A nil *ckptState disables checkpointing (the
// clustered coarse loop always passes nil).
type ckptState struct {
	store        *ckpt.Store
	netFP, cfgFP uint64
	levels       int
	every        int
	qpStats      *qp.SolveStats
	report       *Report
	dl           *degrade.Log
	rec          *obs.Recorder
	// start is when this process entered the global loop; base the wall
	// clock a resumed snapshot already carried.
	start time.Time
	base  time.Duration
}

// boundary is the per-level checkpoint/preemption point: it snapshots the
// loop state after level lv completed (subject to the EveryLevel stride)
// and honors a pending preemption request. A failed save is recorded as a
// degradation and the run continues: checkpointing must never turn a
// healthy placement into a failed one. Preemption stops the run with a
// *PreemptedError only once the level's snapshot is durably on disk —
// when the forced save fails, the preemption is skipped (recorded as
// "preempt" -> "kept-running") and the victim keeps running.
func (ck *ckptState) boundary(n *netlist.Netlist, lv, endLevel int, preempt func() bool) error {
	if ck == nil {
		return nil
	}
	want := preempt != nil && preempt()
	stride := ck.every <= 1 || lv%ck.every == 0 || lv == endLevel
	if !want && !stride {
		return nil
	}
	if err := ck.save(n, lv); err != nil {
		ck.dl.Add("ckpt.write", "skipped", err.Error())
		if want {
			ck.dl.Add("preempt", "kept-running", err.Error())
		}
		return nil
	}
	if want {
		return &PreemptedError{Level: lv, Levels: ck.levels}
	}
	return nil
}

// save writes one snapshot generation for the state after level lv.
func (ck *ckptState) save(n *netlist.Netlist, lv int) error {
	sp := ck.rec.StartSpan("ckpt.write")
	defer sp.End()
	qpSolves, qpIters := ck.qpStats.Snapshot()
	snap := &ckpt.Snapshot{
		NetlistFP:     ck.netFP,
		ConfigFP:      ck.cfgFP,
		Level:         lv,
		Levels:        ck.levels,
		X:             append([]float64(nil), n.X...),
		Y:             append([]float64(nil), n.Y...),
		QPSolves:      qpSolves,
		CGIters:       qpIters,
		Relaxations:   ck.report.Relaxations,
		GlobalElapsed: ck.base + time.Since(ck.start), //fbpvet:allow elapsed wall time is report metadata
		FBPStats:      append([]fbp.Stats(nil), ck.report.FBPStats...),
		Degradations:  ck.dl.Events(),
	}
	return ck.store.Save(snap)
}

// loadResume loads the newest valid snapshot from dir, refuses it unless
// its fingerprints match this run, and applies it: positions, top-level
// QP counters, per-level stats and pre-crash degradations. Returns the
// snapshot so the caller can pick the restart level.
func loadResume(n *netlist.Netlist, dir string, netFP, cfgFP uint64, levels int, dl *degrade.Log, qpStats *qp.SolveStats, report *Report, rec *obs.Recorder) (*ckpt.Snapshot, error) {
	sp := rec.StartSpan("ckpt.restore")
	defer sp.End()
	store := &ckpt.Store{Dir: dir, Obs: rec}
	snap, info, err := store.Load()
	if err != nil {
		return nil, &ResumeError{Dir: dir, Reason: "no loadable checkpoint", Err: err}
	}
	if snap.NetlistFP != netFP {
		return nil, &ResumeError{Dir: dir, Reason: fmt.Sprintf(
			"netlist fingerprint mismatch: snapshot %016x, instance %016x (different circuit)", snap.NetlistFP, netFP)}
	}
	if snap.ConfigFP != cfgFP {
		return nil, &ResumeError{Dir: dir, Reason: fmt.Sprintf(
			"config fingerprint mismatch: snapshot %016x, run %016x (placement trajectory would diverge)", snap.ConfigFP, cfgFP)}
	}
	if snap.Levels != levels {
		return nil, &ResumeError{Dir: dir, Reason: fmt.Sprintf(
			"level plan mismatch: snapshot planned %d levels, run plans %d", snap.Levels, levels)}
	}
	if snap.Level < 1 || snap.Level > levels {
		return nil, &ResumeError{Dir: dir, Reason: fmt.Sprintf(
			"snapshot level %d outside [1, %d]", snap.Level, levels)}
	}
	if len(snap.X) != n.NumCells() || len(snap.Y) != n.NumCells() {
		return nil, &ResumeError{Dir: dir, Reason: fmt.Sprintf(
			"snapshot carries %d cells, instance has %d", len(snap.X), n.NumCells())}
	}
	if info.FellBack {
		dl.Add("ckpt.fallback", "previous-generation", info.Detail)
	}
	copy(n.X, snap.X)
	copy(n.Y, snap.Y)
	qpStats.Restore(snap.QPSolves, snap.CGIters)
	report.FBPStats = append(report.FBPStats[:0], snap.FBPStats...)
	report.Relaxations = snap.Relaxations
	dl.Restore(snap.Degradations)
	return snap, nil
}
