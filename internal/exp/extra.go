package exp

import (
	"fmt"
	"io"
	"time"

	"fbplace/internal/fbp"
	"fbplace/internal/gen"
	"fbplace/internal/grid"
	"fbplace/internal/placer"
	"fbplace/internal/region"
	"fbplace/internal/rql"
)

// SpeedupRow is one worker count of the parallel realization experiment
// (§IV.B: "good parallel speed-ups (up to 7.9 with 8 CPUs) on large
// grids").
type SpeedupRow struct {
	Workers     int
	RealizeTime time.Duration
	Speedup     float64
}

// Speedup measures the realization wall-clock with 1..maxWorkers workers
// on a large-grid instance. Results are deterministic across worker
// counts (verified by the fbp tests); only the wall-clock changes.
func Speedup(scale float64, maxWorkers int) ([]SpeedupRow, error) {
	spec := gen.ErhardLike(scale)
	inst, err := gen.Chip(spec)
	if err != nil {
		return nil, err
	}
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		return nil, err
	}
	d := region.Decompose(inst.N.Area, norm)
	base := inst.N.Clone()
	if _, err := rql.Place(base, rql.Config{MaxIters: 4, Movebounds: norm}); err != nil {
		return nil, err
	}
	levels := gen.GridLevels(spec.NumCells)
	k := levels[len(levels)-1]
	var rows []SpeedupRow
	var t1 time.Duration
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		n := base.Clone()
		g, err := grid.New(n.Area, k, k)
		if err != nil {
			return rows, err
		}
		wr := grid.BuildWindowRegions(g, d, n.FixedRects(), 0.97)
		cfg := fbp.DefaultConfig()
		cfg.Workers = workers
		cfg.Ctx = harnessCtx()
		res, err := fbp.Partition(n, wr, cfg)
		if err != nil {
			return rows, err
		}
		if workers == 1 {
			t1 = res.Stats.RealizeTime
		}
		rows = append(rows, SpeedupRow{
			Workers:     workers,
			RealizeTime: res.Stats.RealizeTime,
			Speedup:     float64(t1) / float64(res.Stats.RealizeTime),
		})
	}
	return rows, nil
}

// PrintSpeedup renders the parallel realization speedups.
func PrintSpeedup(w io.Writer, rows []SpeedupRow) {
	pr := &printer{w: w}
	pr.printf("Parallel realization speedup (§IV.B)\n")
	pr.printf("%8s %14s %8s\n", "workers", "realization", "speedup")
	for _, r := range rows {
		pr.printf("%8d %14s %7.2fx\n", r.Workers, fmtDur(r.RealizeTime), r.Speedup)
	}
}

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Config      string
	HPWL        float64
	Time        time.Duration
	Violations  int
	Relaxations int
}

// AblationRecursive compares flow-based partitioning against the
// classical recursive partitioning baseline on a movebounded chip —
// the §IV motivation ("recursive partitioning approaches have several
// drawbacks ... partitioning decisions are taken locally").
func AblationRecursive(scale float64) ([]AblationRow, error) {
	spec := gen.TableIIIChips(scale, region.Inclusive)[0] // Rabe-like
	spec.NumCells *= 2
	inst, err := gen.Chip(spec)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, mode := range []struct {
		name string
		mode placer.Mode
	}{{"FBP", placer.ModeFBP}, {"recursive", placer.ModeRecursive}} {
		n := inst.N.Clone()
		start := time.Now()
		rep, err := runPlace(n, placer.Config{Mode: mode.mode, Movebounds: inst.Movebounds})
		if err != nil {
			return rows, fmt.Errorf("%s: %w", mode.name, err)
		}
		rows = append(rows, AblationRow{
			Config: mode.name, HPWL: rep.HPWL, Time: time.Since(start),
			Violations: rep.Violations, Relaxations: rep.Relaxations,
		})
	}
	return rows, nil
}

// AblationLocalQP measures the effect of the realization-local QP
// (§IV.B: "a local QP ... will be computed first to obtain more
// connectivity information").
func AblationLocalQP(scale float64) ([]AblationRow, error) {
	specs := gen.TableIIChips(scale, 3)
	var rows []AblationRow
	for _, cfg := range []struct {
		name    string
		noLocal bool
	}{{"with local QP", false}, {"without local QP", true}} {
		var hpwl float64
		var total time.Duration
		for _, spec := range specs {
			inst, err := gen.Chip(spec)
			if err != nil {
				return rows, err
			}
			start := time.Now()
			rep, err := runPlace(inst.N, placer.Config{NoLocalQP: cfg.noLocal})
			if err != nil {
				return rows, fmt.Errorf("%s/%s: %w", cfg.name, spec.Name, err)
			}
			hpwl += rep.HPWL
			total += time.Since(start)
		}
		rows = append(rows, AblationRow{Config: cfg.name, HPWL: hpwl, Time: total})
	}
	return rows, nil
}

// PrintAblation renders an ablation result.
func PrintAblation(w io.Writer, title string, rows []AblationRow, withViol bool) {
	pr := &printer{w: w}
	pr.printf("%s\n", title)
	for _, r := range rows {
		if withViol {
			pr.printf("  %-18s HPWL %12.0f  time %10s  viol %4d  capacity relaxations %d\n",
				r.Config, r.HPWL, fmtDur(r.Time), r.Violations, r.Relaxations)
		} else {
			pr.printf("  %-18s HPWL %12.0f  time %10s\n", r.Config, r.HPWL, fmtDur(r.Time))
		}
	}
}

// FeasibilityBench measures the Theorem-2 feasibility check on a large
// movebounded instance (it must be fast: O(|C| + |M|^2 |R|)).
func FeasibilityBench(scale float64) (time.Duration, bool, error) {
	spec := gen.ErhardLike(scale)
	inst, err := gen.Chip(spec)
	if err != nil {
		return 0, false, err
	}
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		return 0, false, err
	}
	d := region.Decompose(inst.N.Area, norm)
	caps := d.Capacities(inst.N.FixedRects(), 0.97)
	start := time.Now()
	rep := region.CheckFeasibility(inst.N, d, caps)
	return time.Since(start), rep.Feasible, nil
}
