package exp

import (
	"fmt"
	"io"
	"time"

	"fbplace/internal/gen"
	"fbplace/internal/legalize"
	"fbplace/internal/metrics"
	"fbplace/internal/placer"
	"fbplace/internal/rql"
)

// T7Row is one ISPD-2006-style instance of Table VII: the Kraftwerk2-style
// baseline vs BonnPlace FBP with the contest scoring.
type T7Row struct {
	Chip string

	KW  metrics.Score
	FBP metrics.Score

	KWTime, FBPTime time.Duration
}

// Table7 runs the ISPD-2006-style comparison (paper Table VII): both
// placers on the eight generated mixed-size instances, scored with HPWL,
// density penalty and the truncated CPU factor. The CPU factor uses the
// Kraftwerk-style runtime as the reference, mirroring how the contest
// normalized against the submission median.
func Table7(scale float64) ([]T7Row, error) {
	var rows []T7Row
	for _, spec := range gen.ISPDChips(scale) {
		inst, err := gen.Chip(spec)
		if err != nil {
			return rows, err
		}
		target, err := gen.ISPDTargetDensity(spec.Name)
		if err != nil {
			return rows, err
		}

		// Kraftwerk2-style baseline.
		kwNet := inst.N.Clone()
		start := time.Now()
		if _, err := rql.Place(kwNet, rql.Config{Style: rql.StyleKraftwerk, TargetDensity: target}); err != nil {
			return rows, fmt.Errorf("%s: kraftwerk: %w", spec.Name, err)
		}
		if _, err := legalize.Legalize(kwNet, legalize.Options{}); err != nil {
			return rows, fmt.Errorf("%s: kraftwerk legalize: %w", spec.Name, err)
		}
		kwTime := time.Since(start)

		// BonnPlace FBP in "standard mode" (paper: BestChoice ratio 2).
		fbpNet := inst.N.Clone()
		rep, err := runPlace(fbpNet, placer.Config{TargetDensity: target, ClusterRatio: 2, Obs: obsRec})
		if err != nil {
			return rows, fmt.Errorf("%s: FBP: %w", spec.Name, err)
		}
		fbpTime := rep.GlobalTime + rep.LegalTime

		row := T7Row{
			Chip:    spec.Name,
			KWTime:  kwTime,
			FBPTime: fbpTime,
			KW: metrics.Score{
				HPWL:    kwNet.HPWL(),
				Density: metrics.DensityPenalty(kwNet, target, 10),
				CPU:     0, // reference
			},
			FBP: metrics.Score{
				HPWL:    rep.HPWL,
				Density: metrics.DensityPenalty(fbpNet, target, 10),
				CPU:     metrics.CPUFactor(fbpTime, kwTime),
			},
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable7 renders Table VII.
func PrintTable7(w io.Writer, rows []T7Row) {
	pr := &printer{w: w}
	pr.printf("TABLE VII: ISPD-2006-style results (Kraftwerk2-style baseline vs BonnPlace FBP)\n")
	pr.printf("%-10s | %10s %6s %10s | %10s %6s %7s %10s %10s | %8s %8s\n",
		"chip", "KW H", "D%", "KW H+D", "FBP H", "D%", "CPU%", "H+D", "H+D+C", "ratio", "ratioC")
	var sumKW, sumFBP, sumKWC, sumFBPC float64
	for _, r := range rows {
		ratio := 100 * r.FBP.HD() / r.KW.HD()
		ratioC := 100 * r.FBP.HDC() / r.KW.HDC()
		pr.printf("%-10s | %10.0f %5.1f%% %10.0f | %10.0f %5.1f%% %6.1f%% %10.0f %10.0f | %7.1f%% %7.1f%%\n",
			r.Chip, r.KW.HPWL, 100*r.KW.Density, r.KW.HD(),
			r.FBP.HPWL, 100*r.FBP.Density, 100*r.FBP.CPU, r.FBP.HD(), r.FBP.HDC(),
			ratio, ratioC)
		sumKW += r.KW.HD()
		sumFBP += r.FBP.HD()
		sumKWC += r.KW.HDC()
		sumFBPC += r.FBP.HDC()
	}
	if sumKW > 0 {
		pr.printf("%-10s: FBP H+D = %.1f%%, H+D+C = %.1f%% of baseline\n",
			"TOTAL", 100*sumFBP/sumKW, 100*sumFBPC/sumKWC)
	}
}
