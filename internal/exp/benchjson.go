package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fbplace/internal/gen"
)

// BenchRecord is the machine-readable baseline cmd/fbpbench writes next to
// its tables (BENCH_baseline.json by default): per-table HPWL and phase
// times, for regression diffing across commits.
type BenchRecord struct {
	Scale  float64               `json:"scale"`
	Tables map[string]BenchTable `json:"tables"`
}

// BenchTable is one table's numbers inside a BenchRecord.
type BenchTable struct {
	// Chip names the single instance of a level sweep (Table I).
	Chip  string `json:"chip,omitempty"`
	Cells int    `json:"cells,omitempty"`
	// Chips carries the per-chip comparison tables (II, IV, V, VII-style).
	Chips []BenchChip `json:"chips,omitempty"`
	// Levels carries the per-grid-level FBP instance table (I).
	Levels []BenchLevel `json:"levels,omitempty"`
	// TotalHPWL sums the FBP HPWL over all chips of the table.
	TotalHPWL float64 `json:"total_hpwl,omitempty"`
	// GlobalMS and LegalMS sum the FBP phase times over all chips.
	GlobalMS float64 `json:"global_ms,omitempty"`
	LegalMS  float64 `json:"legal_ms,omitempty"`
}

// BenchChip is one chip's numbers inside a BenchTable.
type BenchChip struct {
	Chip       string  `json:"chip"`
	Cells      int     `json:"cells"`
	HPWL       float64 `json:"hpwl"`
	BaseHPWL   float64 `json:"base_hpwl,omitempty"`
	GlobalMS   float64 `json:"global_ms"`
	LegalMS    float64 `json:"legal_ms"`
	TotalMS    float64 `json:"total_ms"`
	Violations int     `json:"violations"`
}

// BenchLevel is one grid level of the Table-I-style instance sweep.
type BenchLevel struct {
	Nodes     int     `json:"nodes"`
	Arcs      int     `json:"arcs"`
	Windows   int     `json:"windows"`
	Regions   int     `json:"regions"`
	FlowMS    float64 `json:"flow_ms"`
	RealizeMS float64 `json:"realize_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchFromCompare converts comparison rows into a bench table.
func BenchFromCompare(rows []CompareRow) BenchTable {
	t := BenchTable{}
	for _, r := range rows {
		t.Chips = append(t.Chips, BenchChip{
			Chip: r.Chip, Cells: r.Cells,
			HPWL: r.FBPHPWL, BaseHPWL: r.BaseHPWL,
			GlobalMS: ms(r.FBPGlobal), LegalMS: ms(r.FBPLegal),
			TotalMS: ms(r.FBPTime), Violations: r.FBPViol,
		})
		t.TotalHPWL += r.FBPHPWL
		t.GlobalMS += ms(r.FBPGlobal)
		t.LegalMS += ms(r.FBPLegal)
	}
	return t
}

// BenchFromTable1 converts the Table-I level sweep into a bench table.
func BenchFromTable1(spec gen.ChipSpec, rows []T1Row) BenchTable {
	t := BenchTable{Chip: spec.Name, Cells: spec.NumCells}
	for _, r := range rows {
		t.Levels = append(t.Levels, BenchLevel{
			Nodes: r.Nodes, Arcs: r.Arcs,
			Windows: r.Windows, Regions: r.Regions,
			FlowMS: ms(r.FlowTime), RealizeMS: ms(r.RealizeTime),
		})
	}
	return t
}

// BenchFromTable7 converts the ISPD-style rows into a bench table.
func BenchFromTable7(rows []T7Row) BenchTable {
	t := BenchTable{}
	for _, r := range rows {
		t.Chips = append(t.Chips, BenchChip{
			Chip: r.Chip, HPWL: r.FBP.HPWL, BaseHPWL: r.KW.HPWL,
			TotalMS: ms(r.FBPTime),
		})
		t.TotalHPWL += r.FBP.HPWL
	}
	return t
}

// WriteBench writes the record as indented JSON to path.
func WriteBench(path string, rec BenchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBench reads a baseline previously written by WriteBench.
func ReadBench(path string) (BenchRecord, error) {
	var rec BenchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("exp: bench file %s: %w", path, err)
	}
	return rec, nil
}
