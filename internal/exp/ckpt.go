package exp

import (
	"errors"
	"fmt"
	"path/filepath"

	"fbplace/internal/netlist"
	"fbplace/internal/placer"
)

// Checkpoint wiring for the harness: cmd/fbpbench sets a directory via
// SetCheckpoint and every placer run in the experiment tables gets its own
// numbered subdirectory. With resume enabled, each run first tries to
// continue from its subdirectory and falls back to a fresh start when no
// usable snapshot exists — so re-running an interrupted benchmark skips
// the levels that already completed.
var (
	ckptDir    string
	ckptResume bool
	ckptSeq    int
	certifyOn  bool
)

// SetCertify enables independent result certification (every level plus
// the final placement, internal/certify) for all subsequent table runs —
// the overhead shows up in the per-table phase times, so a certified
// -bench-out can be diffed against an uncertified baseline.
func SetCertify(on bool) { certifyOn = on }

// SetCheckpoint enables per-run checkpointing under dir for all subsequent
// table runs ("" disables it). Run numbering restarts, so a resumed
// process must execute the same tables in the same order to line up with
// the checkpoints of the interrupted one.
func SetCheckpoint(dir string, resume bool) {
	ckptDir, ckptResume, ckptSeq = dir, resume, 0
}

// runPlace is the single chokepoint through which the experiment tables
// invoke the FBP placer, so checkpointing applies uniformly.
func runPlace(n *netlist.Netlist, cfg placer.Config) (*placer.Report, error) {
	if certifyOn {
		cfg.Certify = placer.CertifyEveryLevel
	}
	if ckptDir == "" {
		return placer.PlaceCtx(harnessCtx(), n, cfg)
	}
	ckptSeq++
	dir := filepath.Join(ckptDir, fmt.Sprintf("run-%04d", ckptSeq))
	cfg.Checkpoint = placer.Checkpoint{Dir: dir}
	if ckptResume {
		rep, err := placer.Resume(harnessCtx(), n, dir, cfg)
		var re *placer.ResumeError
		if !errors.As(err, &re) {
			return rep, err
		}
		// No loadable/matching snapshot for this run: start fresh.
	}
	return placer.PlaceCtx(harnessCtx(), n, cfg)
}
