package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast: every instance floors at 2000
// cells.
const tinyScale = 0.0001

func TestTable1Smoke(t *testing.T) {
	spec, rows, err := Table1(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// The paper's key claim: |E|/|V| stays a small constant (their
		// Table I shows 3.9-5.5).
		if r.Ratio > 10 {
			t.Fatalf("|E|/|V| = %.1f, want small constant", r.Ratio)
		}
		if r.Windows <= 0 || r.Regions < r.Windows {
			t.Fatalf("bad sizes: %+v", r)
		}
	}
	// Monotone grid refinement.
	for i := 1; i < len(rows); i++ {
		if rows[i].Windows <= rows[i-1].Windows {
			t.Fatalf("windows not increasing: %d -> %d", rows[i-1].Windows, rows[i].Windows)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, spec, rows)
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatal("print output wrong")
	}
}

func TestTable2Smoke(t *testing.T) {
	rows, err := Table2(tinyScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BaseFailed || r.FBPHPWL <= 0 || r.BaseHPWL <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
		if r.FBPViol != 0 {
			t.Fatalf("FBP violations on unbounded chip: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintCompare(&buf, "TABLE II", rows, false)
	if !strings.Contains(buf.String(), "TOTAL") {
		t.Fatal("no totals printed")
	}
}

func TestTable3Smoke(t *testing.T) {
	rows, insts, err := Table3(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || len(insts) != 8 {
		t.Fatalf("rows = %d, insts = %d", len(rows), len(insts))
	}
	for _, r := range rows {
		if r.PctMB <= 0 || r.MaxDensity <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Tomoku") {
		t.Fatal("chip names missing")
	}
}

func TestTable5Smoke(t *testing.T) {
	rows, err := Table5(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (Table V chips)", len(rows))
	}
	for _, r := range rows {
		// The FBP placer must be violation-free on every instance.
		if r.FBPViol != 0 {
			t.Fatalf("%s: FBP violations = %d", r.Chip, r.FBPViol)
		}
	}
	var buf bytes.Buffer
	PrintCompare(&buf, "TABLE V", rows, true)
	PrintTable6(&buf, rows)
	if !strings.Contains(buf.String(), "global") {
		t.Fatal("table VI missing")
	}
}

func TestTable7Smoke(t *testing.T) {
	rows, err := Table7(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FBP.HPWL <= 0 || r.KW.HPWL <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.FBP.CPU < -0.10-1e-9 || r.FBP.CPU > 0.10+1e-9 {
			t.Fatalf("CPU factor out of range: %v", r.FBP.CPU)
		}
	}
	var buf bytes.Buffer
	PrintTable7(&buf, rows)
	if !strings.Contains(buf.String(), "newblue7") {
		t.Fatal("instances missing")
	}
}

func TestSpeedupSmoke(t *testing.T) {
	rows, err := Speedup(tinyScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1, 2, 4
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v", rows[0].Speedup)
	}
	var buf bytes.Buffer
	PrintSpeedup(&buf, rows)
	if !strings.Contains(buf.String(), "workers") {
		t.Fatal("bad print")
	}
}

func TestAblationSmoke(t *testing.T) {
	rows, err := AblationRecursive(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "ablation", rows, true)
	if !strings.Contains(buf.String(), "recursive") {
		t.Fatal("bad print")
	}
}

func TestFeasibilityBenchSmoke(t *testing.T) {
	d, feasible, err := FeasibilityBench(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("generated instance infeasible")
	}
	if d <= 0 {
		t.Fatal("no duration")
	}
}

func TestClusterRatioFor(t *testing.T) {
	if got := clusterRatioFor(2000); got != 0 {
		t.Fatalf("2000 movable -> ratio %v, want 0 (off)", got)
	}
	if got := clusterRatioFor(100_000); got != 5 {
		t.Fatalf("100k movable -> ratio %v, want 5", got)
	}
	if got := clusterRatioFor(4500); got != 3 {
		t.Fatalf("4500 movable -> ratio %v, want 3", got)
	}
}
