// Package exp implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§V) on synthetic instances:
// Table I (FBP instance sizes and runtimes over grid levels), Table II
// (no-movebound comparison vs the RQL-style baseline), Table III (instance
// characteristics), Tables IV/V (inclusive/exclusive movebound
// comparisons), Table VI (global/legalization runtime split), Table VII
// (ISPD-2006-style scoring vs a Kraftwerk2-style baseline), the parallel
// realization speedup (§IV.B), and the ablations called out in DESIGN.md.
//
// Both the root bench_test.go and cmd/fbpbench drive these functions; the
// Print* helpers emit tables shaped like the paper's.
package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"fbplace/internal/cluster"
	"fbplace/internal/fbp"
	"fbplace/internal/gen"
	"fbplace/internal/grid"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/placer"
	"fbplace/internal/region"
	"fbplace/internal/rql"
)

// DefaultScale is the default fraction of the published cell counts the
// harness generates (the paper's chips reach 9.3M cells; the floor of
// 2000 cells per instance keeps every run in the multi-level regime).
const DefaultScale = 0.002

// printer renders a table through an io.Writer, latching the first write
// error and suppressing output after it. Report writes are best-effort,
// but the latch keeps the drop explicit (fbpvet errdrop) and stops the
// harness from hammering a broken pipe line by line.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, a ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, a...)
	}
}

// obsRec, when set, is threaded into every placer/FBP run the harness
// starts. A package-level hook (rather than a parameter) keeps the table
// function signatures stable for bench_test.go.
var obsRec *obs.Recorder

// SetRecorder threads rec through all subsequent harness runs. Pass nil to
// disable recording again. Not safe to call concurrently with a running
// table.
func SetRecorder(rec *obs.Recorder) { obsRec = rec }

// expCtx, when set, bounds every placer/FBP run the harness starts, so
// cmd/fbpbench can put a wall-clock budget on each table. Like obsRec it
// is a package-level hook to keep the table signatures stable.
var expCtx context.Context

// SetContext threads ctx through all subsequent harness runs. Pass nil to
// remove the budget again. Not safe to call concurrently with a running
// table.
func SetContext(ctx context.Context) { expCtx = ctx }

// harnessCtx is the context for the next solver run: the installed one,
// or Background when no budget is set.
func harnessCtx() context.Context {
	if expCtx != nil {
		return expCtx
	}
	return context.Background()
}

// fmtDur renders a duration like the paper's h:mm:ss columns but with
// sub-second resolution where it matters.
func fmtDur(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
	d = d.Round(time.Millisecond * 10)
	return d.String()
}

// T1Row is one grid level of Table I.
type T1Row struct {
	Nodes, Arcs      int
	Ratio            float64
	Windows, Regions int
	FlowTime         time.Duration
	RealizeTime      time.Duration
}

// Table1 builds FBP instances on successively finer grids over the
// largest movebounded chip (Erhard-like) and reports model sizes and
// phase runtimes, reproducing paper Table I.
func Table1(scale float64) (gen.ChipSpec, []T1Row, error) {
	spec := gen.ErhardLike(scale)
	inst, err := gen.Chip(spec)
	if err != nil {
		return spec, nil, err
	}
	norm, err := region.Normalize(inst.N.Area, inst.Movebounds)
	if err != nil {
		return spec, nil, err
	}
	d := region.Decompose(inst.N.Area, norm)
	blockages := inst.N.FixedRects()
	// Spread cells once so the partitioning works on a realistic state.
	base := inst.N.Clone()
	if _, err := rql.Place(base, rql.Config{MaxIters: 4, Movebounds: norm}); err != nil {
		return spec, nil, err
	}
	var rows []T1Row
	for _, k := range gen.GridLevels(spec.NumCells) {
		sp := obsRec.StartSpan("table1.level")
		sp.Attr("grid", float64(k))
		n := base.Clone()
		g, gerr := grid.New(n.Area, k, k)
		if gerr != nil {
			sp.End()
			return spec, nil, gerr
		}
		wr := grid.BuildWindowRegions(g, d, blockages, 0.97)
		model := fbp.BuildModel(n, wr, g.AssignCells(n))
		model.Obs = obsRec
		model.G.Ctx = harnessCtx()
		if err := model.Solve(); err != nil {
			sp.End()
			return spec, nil, fmt.Errorf("grid %dx%d: %w", k, k, err)
		}
		rcfg := fbp.DefaultConfig()
		rcfg.Obs = obsRec
		rcfg.Ctx = harnessCtx()
		res, err := fbp.Realize(model, rcfg)
		sp.End()
		if err != nil {
			return spec, nil, fmt.Errorf("grid %dx%d realize: %w", k, k, err)
		}
		s := res.Stats
		rows = append(rows, T1Row{
			Nodes: s.NumNodes, Arcs: s.NumArcs,
			Ratio:   float64(s.NumArcs) / float64(s.NumNodes),
			Windows: s.NumWindows, Regions: s.NumRegions,
			FlowTime: s.SolveTime, RealizeTime: s.RealizeTime,
		})
	}
	return spec, rows, nil
}

// PrintTable1 renders Table I.
func PrintTable1(w io.Writer, spec gen.ChipSpec, rows []T1Row) {
	pr := &printer{w: w}
	pr.printf("TABLE I: Sizes and runtimes of the flow-based partitioning instances\n")
	pr.printf("from %s-like (%d cells, %d movebounds)\n", spec.Name, spec.NumCells, len(spec.Movebounds))
	pr.printf("%10s %10s %6s %8s %8s %12s %12s\n", "|V|", "|E|", "|E|/|V|", "|W|", "|R|", "flow", "realization")
	for _, r := range rows {
		pr.printf("%10d %10d %6.1f %8d %8d %12s %12s\n",
			r.Nodes, r.Arcs, r.Ratio, r.Windows, r.Regions, fmtDur(r.FlowTime), fmtDur(r.RealizeTime))
	}
}

// CompareRow is one chip of Tables II/IV/V: baseline vs FBP.
type CompareRow struct {
	Chip       string
	Cells      int
	BaseHPWL   float64
	BaseTime   time.Duration
	BaseViol   int
	BaseFailed bool
	FBPHPWL    float64
	FBPTime    time.Duration
	FBPViol    int
	// Global/Legal split of the FBP run (Table VI).
	FBPGlobal, FBPLegal time.Duration
}

// clusterRatioFor matches the paper's experimental setup — "Both tools
// used BestChoice [17] for clustering with cluster ratio 5" — scaled to
// the instance: ratio 5 on a 2000-cell scaled-down chip would leave only
// 400 objects, far below the regime the paper clustered in, so the ratio
// is capped to keep at least ~1500 clustered objects.
func clusterRatioFor(movable int) float64 {
	const full = 5.0
	const minObjects = 1500
	if float64(movable)/full >= minObjects {
		return full
	}
	r := float64(movable) / minObjects
	if r < 2 {
		return 0 // clustering off: ratios below 2 only add noise
	}
	return r
}

// runPair places the same instance with the RQL-style baseline and the
// FBP placer and returns the comparison row. Both tools run on a
// BestChoice-clustered netlist, as in the paper.
func runPair(inst *gen.Instance, withMB bool) (CompareRow, error) {
	row := CompareRow{Chip: inst.Spec.Name, Cells: inst.N.NumCells()}
	var mbs []region.Movebound
	if withMB {
		mbs = inst.Movebounds
	}

	// Baseline: RQL-style global placement on the clustered netlist +
	// plain legalization (naive movebound handling, violations possible).
	baseNet := inst.N.Clone()
	start := time.Now()
	var err error
	func() {
		norm := mbs
		if withMB {
			if norm, err = region.Normalize(baseNet.Area, mbs); err != nil {
				return
			}
		}
		ratio := clusterRatioFor(len(baseNet.MovableIDs()))
		if ratio > 1 {
			cl := cluster.BestChoice(baseNet, cluster.Options{Ratio: ratio})
			if _, err = rql.Place(cl.Clustered, rql.Config{Movebounds: norm}); err != nil {
				return
			}
			cl.Project()
		} else if _, err = rql.Place(baseNet, rql.Config{Movebounds: norm}); err != nil {
			return
		}
		_, err = legalize.Legalize(baseNet, legalize.Options{})
	}()
	row.BaseTime = time.Since(start)
	if err != nil {
		// Mirrors "crashed" entries of Table IV: the baseline could not
		// produce a legal placement.
		row.BaseFailed = true
	} else {
		row.BaseHPWL = baseNet.HPWL()
		if withMB {
			norm, nerr := region.Normalize(baseNet.Area, mbs)
			if nerr == nil {
				row.BaseViol = region.CheckLegal(baseNet, norm)
			}
		}
	}

	// FBP placer (same cluster ratio).
	fbpNet := inst.N.Clone()
	rep, err := runPlace(fbpNet, placer.Config{
		Movebounds:   mbs,
		ClusterRatio: clusterRatioFor(len(fbpNet.MovableIDs())),
		Obs:          obsRec,
	})
	if err != nil {
		return row, fmt.Errorf("%s: FBP: %w", inst.Spec.Name, err)
	}
	row.FBPHPWL = rep.HPWL
	row.FBPTime = rep.GlobalTime + rep.LegalTime
	row.FBPViol = rep.Violations
	row.FBPGlobal = rep.GlobalTime
	row.FBPLegal = rep.LegalTime
	return row, nil
}

// Table2 compares the two placers on chips without movebounds (paper
// Table II). count limits the chip list (0 = all 21).
func Table2(scale float64, count int) ([]CompareRow, error) {
	var rows []CompareRow
	for _, spec := range gen.TableIIChips(scale, count) {
		inst, err := gen.Chip(spec)
		if err != nil {
			return rows, err
		}
		row, err := runPair(inst, false)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintCompare renders Tables II/IV/V: HPWL and runtime per chip with
// the baseline as 100%, plus totals.
func PrintCompare(w io.Writer, title string, rows []CompareRow, withViol bool) {
	pr := &printer{w: w}
	pr.printf("%s\n", title)
	if withViol {
		pr.printf("%-10s %8s | %12s %10s %6s | %12s %10s %6s | %7s %8s\n",
			"chip", "cells", "RQL HPWL", "time", "viol", "FBP HPWL", "time", "viol", "HPWL%", "speedup")
	} else {
		pr.printf("%-10s %8s | %12s %10s | %12s %10s | %7s %8s\n",
			"chip", "cells", "RQL HPWL", "time", "FBP HPWL", "time", "HPWL%", "speedup")
	}
	var sumBase, sumFBP float64
	var sumBaseT, sumFBPT time.Duration
	for _, r := range rows {
		ratio := "-"
		speedup := "-"
		baseH := "crashed"
		baseT := "-"
		if !r.BaseFailed {
			baseH = fmt.Sprintf("%.0f", r.BaseHPWL)
			baseT = fmtDur(r.BaseTime)
			ratio = fmt.Sprintf("%.1f%%", 100*r.FBPHPWL/r.BaseHPWL)
			speedup = fmt.Sprintf("%.1fx", float64(r.BaseTime)/float64(r.FBPTime))
			sumBase += r.BaseHPWL
			sumFBP += r.FBPHPWL
			sumBaseT += r.BaseTime
			sumFBPT += r.FBPTime
		}
		if withViol {
			pr.printf("%-10s %8d | %12s %10s %6d | %12.0f %10s %6d | %7s %8s\n",
				r.Chip, r.Cells, baseH, baseT, r.BaseViol, r.FBPHPWL, fmtDur(r.FBPTime), r.FBPViol, ratio, speedup)
		} else {
			pr.printf("%-10s %8d | %12s %10s | %12.0f %10s | %7s %8s\n",
				r.Chip, r.Cells, baseH, baseT, r.FBPHPWL, fmtDur(r.FBPTime), ratio, speedup)
		}
	}
	if sumBase > 0 && sumFBPT > 0 {
		pr.printf("%-10s: FBP HPWL = %.1f%% of baseline, speedup %.1fx\n",
			"TOTAL", 100*sumFBP/sumBase, float64(sumBaseT)/float64(sumFBPT))
	}
}

// T3Row is one chip of Table III.
type T3Row struct {
	Chip       string
	NumMB      int
	Cells      int
	PctMB      float64
	MaxDensity float64
	Remark     string
}

// Table3 generates the movebounded instances and reports their measured
// characteristics (paper Table III).
func Table3(scale float64) ([]T3Row, []*gen.Instance, error) {
	var rows []T3Row
	var insts []*gen.Instance
	for _, spec := range gen.TableIIIChips(scale, region.Inclusive) {
		inst, err := gen.Chip(spec)
		if err != nil {
			return rows, insts, err
		}
		n := inst.N
		withMB := 0
		mbArea := make([]float64, len(inst.Movebounds))
		for i := range n.Cells {
			if n.Cells[i].Fixed {
				continue
			}
			if mb := n.Cells[i].Movebound; mb != netlist.NoMovebound {
				withMB++
				mbArea[mb] += n.Cells[i].Size()
			}
		}
		maxDens := 0.0
		for m := range inst.Movebounds {
			if a := inst.Movebounds[m].Area.Area(); a > 0 {
				if d := mbArea[m] / a; d > maxDens {
					maxDens = d
				}
			}
		}
		rows = append(rows, T3Row{
			Chip: spec.Name, NumMB: len(inst.Movebounds), Cells: n.NumCells(),
			PctMB:      float64(withMB) / float64(len(n.MovableIDs())),
			MaxDensity: maxDens,
			Remark:     gen.TableIIIRemark(spec.Name),
		})
		insts = append(insts, inst)
	}
	return rows, insts, nil
}

// PrintTable3 renders Table III.
func PrintTable3(w io.Writer, rows []T3Row) {
	pr := &printer{w: w}
	pr.printf("TABLE III: Movebounded instances (generated)\n")
	pr.printf("%-10s %6s %10s %12s %10s %8s\n", "chip", "|M|", "|C|", "% cells mb", "max dens", "remarks")
	for _, r := range rows {
		pr.printf("%-10s %6d %10d %11.1f%% %9.0f%% %8s\n",
			r.Chip, r.NumMB, r.Cells, 100*r.PctMB, 100*r.MaxDensity, r.Remark)
	}
}

// Table4 compares the placers on the inclusive movebound instances
// (paper Table IV); the rows double as Table VI input.
func Table4(scale float64) ([]CompareRow, error) {
	_, insts, err := Table3(scale)
	if err != nil {
		return nil, err
	}
	var rows []CompareRow
	for _, inst := range insts {
		row, err := runPair(inst, true)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table5 compares the placers on the exclusive movebound instances
// (paper Table V).
func Table5(scale float64) ([]CompareRow, error) {
	var rows []CompareRow
	for _, spec := range gen.TableIIIChips(scale, region.Exclusive) {
		inst, err := gen.Chip(spec)
		if err != nil {
			return rows, err
		}
		row, err := runPair(inst, true)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable6 renders the runtime split of the FBP runs (paper Table VI).
func PrintTable6(w io.Writer, rows []CompareRow) {
	pr := &printer{w: w}
	pr.printf("TABLE VI: BonnPlace FBP runtime split (inclusive movebounds)\n")
	pr.printf("%-10s %12s %14s %12s %14s\n", "chip", "global", "legalization", "total", "global/total")
	var g, l time.Duration
	for _, r := range rows {
		total := r.FBPGlobal + r.FBPLegal
		pr.printf("%-10s %12s %14s %12s %13.1f%%\n",
			r.Chip, fmtDur(r.FBPGlobal), fmtDur(r.FBPLegal), fmtDur(total),
			100*float64(r.FBPGlobal)/float64(total))
		g += r.FBPGlobal
		l += r.FBPLegal
	}
	if g+l > 0 {
		pr.printf("%-10s %12s %14s %12s %13.1f%%\n",
			"TOTAL", fmtDur(g), fmtDur(l), fmtDur(g+l), 100*float64(g)/float64(g+l))
	}
}
