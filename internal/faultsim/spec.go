package faultsim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the CLI fault syntax "name[:k=v,...]" shared by
// cmd/fbplace, cmd/fbpbench and cmd/fbplaced into a site name and its
// Schedule. Keys mirror the Schedule fields: after, every, limit, prob,
// seed, panic.
func ParseSpec(spec string) (string, Schedule, error) {
	name, opts, _ := strings.Cut(spec, ":")
	var sched Schedule
	if opts == "" {
		return name, sched, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", Schedule{}, fmt.Errorf("fault %q: option %q is not k=v", name, kv)
		}
		var err error
		switch k {
		case "after":
			sched.After, err = strconv.ParseUint(v, 10, 64)
		case "every":
			sched.Every, err = strconv.ParseUint(v, 10, 64)
		case "limit":
			sched.Limit, err = strconv.ParseUint(v, 10, 64)
		case "prob":
			sched.Prob, err = strconv.ParseFloat(v, 64)
		case "seed":
			sched.Seed, err = strconv.ParseUint(v, 10, 64)
		case "panic":
			sched.Panic, err = strconv.ParseBool(v)
		default:
			return "", Schedule{}, fmt.Errorf("fault %q: unknown option %q", name, k)
		}
		if err != nil {
			return "", Schedule{}, fmt.Errorf("fault %q: option %s: %w", name, k, err)
		}
	}
	return name, sched, nil
}

// ArmSpec parses and arms a CLI fault spec in one step.
func ArmSpec(spec string) error {
	name, sched, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	return Arm(name, sched)
}
