package faultsim

import (
	"errors"
	"testing"
)

func TestScheduleFires(t *testing.T) {
	cases := []struct {
		name  string
		sched Schedule
		want  []bool // decision per hit 0..len-1, feeding fired back in
	}{
		{"zero value fires always", Schedule{}, []bool{true, true, true, true}},
		{"after skips a prefix", Schedule{After: 2}, []bool{false, false, true, true}},
		{"every k-th eligible", Schedule{Every: 3}, []bool{true, false, false, true, false, false, true}},
		{"after plus every", Schedule{After: 1, Every: 2}, []bool{false, true, false, true, false, true}},
		{"limit caps fires", Schedule{Limit: 2}, []bool{true, true, false, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fired := uint64(0)
			for hit, want := range tc.want {
				got := tc.sched.fires(uint64(hit), fired)
				if got != want {
					t.Fatalf("hit %d: fires = %v, want %v", hit, got, want)
				}
				if got {
					fired++
				}
			}
		})
	}
}

func TestScheduleProbDeterministic(t *testing.T) {
	a := Schedule{Prob: 0.5, Seed: 7}
	b := Schedule{Prob: 0.5, Seed: 7}
	other := Schedule{Prob: 0.5, Seed: 8}
	same, diff, fires := 0, 0, 0
	for hit := uint64(0); hit < 1000; hit++ {
		da, db := a.fires(hit, 0), b.fires(hit, 0)
		if da != db {
			t.Fatalf("hit %d: same seed decided differently", hit)
		}
		if da {
			fires++
		}
		if da == other.fires(hit, 0) {
			same++
		} else {
			diff++
		}
	}
	if fires < 350 || fires > 650 {
		t.Fatalf("prob 0.5 fired %d/1000 times, outside loose bounds", fires)
	}
	if diff == 0 {
		t.Fatalf("different seeds made identical decisions on all %d hits", same)
	}
}

func TestDisarmedSiteIsInert(t *testing.T) {
	var nilSite *Site
	if nilSite.Enabled() || nilSite.Check() != nil {
		t.Fatal("nil site must be disarmed")
	}
	s := &Site{name: "x"}
	if s.Enabled() {
		t.Fatal("fresh site reports Enabled")
	}
	for i := 0; i < 3; i++ {
		if err := s.Check(); err != nil {
			t.Fatalf("disarmed Check returned %v", err)
		}
	}
}

func TestCheckReturnsStructuredError(t *testing.T) {
	s := &Site{name: "unit.structured"}
	s.armed.Store(&arming{sched: Schedule{After: 1}})
	if err := s.Check(); err != nil {
		t.Fatalf("hit 0 fired despite After: 1: %v", err)
	}
	err := s.Check()
	if err == nil {
		t.Fatal("hit 1 did not fire")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || !errors.Is(err, ErrInjected) {
		t.Fatalf("error is not a structured injection: %v", err)
	}
	if ie.Point != "unit.structured" || ie.Hit != 1 {
		t.Fatalf("wrong identity: point %q hit %d", ie.Point, ie.Hit)
	}
}

func TestCheckPanicSchedule(t *testing.T) {
	s := &Site{name: "unit.panicky"}
	s.armed.Store(&arming{sched: Schedule{Panic: true}})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Check did not panic under a panic schedule")
		}
		ie, ok := p.(*InjectedError)
		if !ok || ie.Point != "unit.panicky" {
			t.Fatalf("panic value is %#v, want *InjectedError for the site", p)
		}
	}()
	_ = s.Check() //fbpvet:errok the panic, not the return, is under test
}

func TestArmUnknownName(t *testing.T) {
	if err := Arm("no.such.site", Schedule{}); err == nil {
		t.Fatal("Arm accepted an unregistered name")
	}
}

// Registry round-trip. The site name carries the "selftest." prefix so the
// injection suite's coverage check can ignore it.
func TestRegistryRoundtrip(t *testing.T) {
	s := Register("selftest.roundtrip", "registry round-trip fixture")
	if Register("selftest.roundtrip", "dup") != s {
		t.Fatal("re-registering the same name returned a new site")
	}
	defer Reset()
	if err := Arm("selftest.roundtrip", Schedule{Every: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.Enabled() {
		t.Fatal("armed site reports disarmed")
	}
	fires := 0
	for i := 0; i < 6; i++ {
		if s.Check() != nil {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("Every: 2 fired %d/6 times, want 3", fires)
	}
	if Hits("selftest.roundtrip") != 6 || Fired("selftest.roundtrip") != 3 {
		t.Fatalf("counters: hits %d fired %d, want 6 and 3",
			Hits("selftest.roundtrip"), Fired("selftest.roundtrip"))
	}
	// Re-arming resets the counters (the injection suite relies on this
	// between its per-worker-count runs).
	if err := Arm("selftest.roundtrip", Schedule{}); err != nil {
		t.Fatal(err)
	}
	if Hits("selftest.roundtrip") != 0 || Fired("selftest.roundtrip") != 0 {
		t.Fatal("Arm did not reset the counters")
	}
	Reset()
	if s.Enabled() || s.Check() != nil {
		t.Fatal("Reset left the site armed")
	}
	found := false
	for _, info := range Points() {
		if info.Name == "selftest.roundtrip" {
			found = true
			if info.Armed {
				t.Fatal("Points reports the reset site as armed")
			}
		}
	}
	if !found {
		t.Fatal("registered site missing from Points()")
	}
}
