// The injection suite: arms every registered fault-injection point of the
// placement pipeline and asserts the robustness contract end to end —
// solver failures either degrade through their documented fallback chain
// (recorded in Report.Degradations) or surface as structured errors naming
// the injection point and failing window, never as a panic or a goroutine
// leak, and never at the cost of 1-vs-4-worker determinism.
//
// It lives in the faultsim package (external test) rather than next to the
// pipeline packages so that arming the process-global sites cannot race
// with unrelated package tests in the same binary.
package faultsim_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/fbp"
	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
	"fbplace/internal/netlist"
	"fbplace/internal/placer"
	"fbplace/internal/region"
)

// suiteChip generates the instance every case places: small enough to keep
// the suite fast, movebounded so the realization exercises the
// movebound-aware transportation path.
func suiteChip(t *testing.T) *gen.Instance {
	t.Helper()
	inst, err := gen.Chip(gen.ChipSpec{
		Name: "faultsim", NumCells: 1400, Seed: 17,
		Movebounds: []gen.MoveboundSpec{
			{Kind: region.Inclusive, CellFraction: 0.15, Density: 0.7, NestedIn: -1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// place arms the given schedules (re-arming resets hit counters, so the
// two worker-count runs of a case see identical hit numbering) and runs
// the full pipeline. A non-empty ckptDir enables per-level checkpointing,
// so the ckpt.* sites sit in the run's write path.
func place(t *testing.T, workers int, arm map[string]faultsim.Schedule, ckptDir string, certify bool) (*placer.Report, *netlist.Netlist, error) {
	t.Helper()
	for name, sched := range arm {
		if err := faultsim.Arm(name, sched); err != nil {
			t.Fatal(err)
		}
	}
	inst := suiteChip(t)
	cfg := placer.Config{Movebounds: inst.Movebounds, Workers: workers,
		Checkpoint: placer.Checkpoint{Dir: ckptDir}}
	if certify {
		cfg.Certify = placer.CertifyEveryLevel
	}
	rep, err := placer.Place(inst.N, cfg)
	return rep, inst.N, err
}

func stages(evs []degrade.Event) []string {
	var out []string
	for _, e := range evs {
		out = append(out, e.Stage+" -> "+e.Fallback)
	}
	return out
}

func injectedPoint(t *testing.T, err error) string {
	t.Helper()
	var ie *faultsim.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("error does not carry an *InjectedError: %v", err)
	}
	if !errors.Is(err, faultsim.ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", err)
	}
	return ie.Point
}

// suiteCases drives TestInjectionSuite and the coverage check. Every
// registered injection point must appear in at least one case's arm map.
var suiteCases = []struct {
	name string
	arm  map[string]faultsim.Schedule
	// degrades: the run must succeed and record exactly these fallbacks
	// (as "stage -> fallback" prefixes of the sorted event list).
	degrades []string
	// failPoint: the run must fail with a structured error naming this
	// injection point. Empty means the run must succeed.
	failPoint string
	// unitPhase, when set, requires a *fbp.UnitError with this phase.
	unitPhase string
	// panics arms the primary point in panic mode (the failure must still
	// come back as an error, with the recovered stack attached).
	panics bool
	// ckpt runs the case with per-level checkpointing enabled, putting the
	// ckpt.* sites in the write path.
	ckpt bool
	// certify runs the case with every-level certification enabled — the
	// certify.corrupt site produces a wrong answer, not an error, so only
	// the certificate can see it.
	certify bool
}{
	{
		name:     "cg non-convergence keeps the anchor solution",
		arm:      map[string]faultsim.Schedule{"sparse.cg.noconverge": {}},
		degrades: []string{"qp.cg -> anchor-solution"},
	},
	{
		name:     "network simplex stall falls back to ssp",
		arm:      map[string]faultsim.Schedule{"flow.ns.stall": {}},
		degrades: []string{"flow.ns -> ssp"},
	},
	{
		name:     "condensed transport falls back to the reference engine",
		arm:      map[string]faultsim.Schedule{"transport.condensed.fail": {}},
		degrades: []string{"transport.condensed -> reference-engine"},
	},
	{
		name: "ns stall with ssp also failing is a structured error",
		arm: map[string]faultsim.Schedule{
			"flow.ns.stall": {}, "flow.ssp.fail": {},
		},
		failPoint: "flow.ssp.fail",
	},
	{
		name: "both transport engines failing is a structured unit error",
		arm: map[string]faultsim.Schedule{
			"transport.condensed.fail": {}, "transport.reference.fail": {},
		},
		failPoint: "transport.reference.fail",
		unitPhase: "realize",
	},
	{
		name:      "realization unit error carries window identity",
		arm:       map[string]faultsim.Schedule{"fbp.realize.unit": {}},
		failPoint: "fbp.realize.unit",
		unitPhase: "realize",
	},
	{
		name:      "realization unit panic is recovered into a unit error",
		arm:       map[string]faultsim.Schedule{"fbp.realize.unit": {Panic: true}},
		unitPhase: "realize",
		panics:    true,
	},
	{
		name:      "final-pass window failure is attributed to the final phase",
		arm:       map[string]faultsim.Schedule{"fbp.final.window": {}},
		failPoint: "fbp.final.window",
		unitPhase: "final",
	},
	{
		name:      "level failure aborts the global loop",
		arm:       map[string]faultsim.Schedule{"placer.level.fail": {}},
		failPoint: "placer.level.fail",
	},
	{
		// The first save is torn (ckpt.corrupt hit 0), every later save
		// fails outright (ckpt.write, After 1): the run must keep placing
		// and record each skipped write; torn-write *recovery* is proved by
		// the resume tests in internal/placer and internal/ckpt.
		name: "checkpoint write failures degrade, never abort",
		arm: map[string]faultsim.Schedule{
			"ckpt.corrupt": {Limit: 1},
			"ckpt.write":   {After: 1},
		},
		degrades: []string{"ckpt.write -> skipped"},
		ckpt:     true,
	},
	{
		// One silent sign-bit flip after the last realization pass: no
		// solver reports anything, the run "succeeds" wrong — the
		// certificate must catch it and the safe-mode repair (always one
		// worker, from the entry positions) must make both worker counts
		// converge on the identical repaired placement.
		name:     "silent position corruption is caught and repaired in safe mode",
		arm:      map[string]faultsim.Schedule{"certify.corrupt": {Limit: 1}},
		degrades: []string{"certify -> safe-mode"},
		certify:  true,
	},
}

func TestInjectionSuite(t *testing.T) {
	for _, tc := range suiteCases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultsim.Reset()
			leakcheck.Check(t)

			type outcome struct {
				rep *placer.Report
				n   *netlist.Netlist
				err error
			}
			runs := map[int]outcome{}
			for _, workers := range []int{1, 4} {
				dir := ""
				if tc.ckpt {
					dir = t.TempDir()
				}
				rep, n, err := place(t, workers, tc.arm, dir, tc.certify)
				runs[workers] = outcome{rep, n, err}
			}

			for workers, o := range runs {
				if tc.failPoint == "" && !tc.panics {
					if o.err != nil {
						t.Fatalf("workers=%d: degrade case failed: %v", workers, o.err)
					}
					got := stages(o.rep.Degradations)
					if len(got) == 0 {
						t.Fatalf("workers=%d: no degradation recorded", workers)
					}
					for _, want := range tc.degrades {
						found := false
						for _, g := range got {
							if g == want {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("workers=%d: degradations %v missing %q", workers, got, want)
						}
					}
					continue
				}
				if o.err == nil {
					t.Fatalf("workers=%d: failure case succeeded", workers)
				}
				if tc.panics {
					// Panic values are recovered into a UnitError whose
					// message preserves the injection identity, but the
					// error chain ends at the recovery boundary.
					if !strings.Contains(o.err.Error(), "panic:") ||
						!strings.Contains(o.err.Error(), "fbp.realize.unit") {
						t.Fatalf("workers=%d: recovered panic lost its identity: %v", workers, o.err)
					}
				} else if got := injectedPoint(t, o.err); got != tc.failPoint {
					t.Fatalf("workers=%d: failed at point %q, want %q", workers, got, tc.failPoint)
				}
				if tc.unitPhase != "" {
					var ue *fbp.UnitError
					if !errors.As(o.err, &ue) {
						t.Fatalf("workers=%d: error is not a *fbp.UnitError: %v", workers, o.err)
					}
					if ue.Phase != tc.unitPhase {
						t.Fatalf("workers=%d: unit error phase %q, want %q", workers, ue.Phase, tc.unitPhase)
					}
					if tc.panics && len(ue.Stack) == 0 {
						t.Fatalf("workers=%d: recovered panic carries no stack", workers)
					}
				}
			}

			// Determinism under fault: both worker counts must agree on
			// the outcome class, and successful degraded runs must stay
			// bit-identical (positions, HPWL, and the sorted event list).
			r1, r4 := runs[1], runs[4]
			if (r1.err == nil) != (r4.err == nil) {
				t.Fatalf("outcome differs: 1 worker err=%v, 4 workers err=%v", r1.err, r4.err)
			}
			if r1.err != nil {
				return
			}
			if r1.rep.HPWL != r4.rep.HPWL {
				t.Fatalf("HPWL differs under fault: %.6f vs %.6f", r1.rep.HPWL, r4.rep.HPWL)
			}
			for i := range r1.n.Cells {
				id := netlist.CellID(i)
				if r1.n.Pos(id) != r4.n.Pos(id) {
					t.Fatalf("cell %d position differs under fault: %v vs %v",
						i, r1.n.Pos(id), r4.n.Pos(id))
				}
			}
			e1, e4 := r1.rep.Degradations, r4.rep.Degradations
			if len(e1) != len(e4) {
				t.Fatalf("degradation count differs: %d vs %d", len(e1), len(e4))
			}
			for i := range e1 {
				if e1[i] != e4[i] {
					t.Fatalf("degradation %d differs: %+v vs %+v", i, e1[i], e4[i])
				}
			}
		})
	}
}

// TestInjectionCoverage fails when a new injection point is registered
// without a suite case, so the robustness contract cannot silently erode.
func TestInjectionCoverage(t *testing.T) {
	armed := map[string]bool{}
	for _, tc := range suiteCases {
		for name := range tc.arm {
			armed[name] = true
		}
	}
	points := faultsim.Points()
	if len(points) == 0 {
		t.Fatal("no injection points registered")
	}
	pipeline := 0
	for _, info := range points {
		if strings.HasPrefix(info.Name, "selftest.") {
			continue // unit-test fixtures, not pipeline sites
		}
		pipeline++
		if !armed[info.Name] {
			t.Errorf("injection point %q (%s) has no suite case", info.Name, info.Doc)
		}
	}
	if pipeline < 8 {
		t.Fatalf("only %d pipeline injection points registered, want >= 8", pipeline)
	}
}

// TestDeadlineAlreadyExpired: an expired context must reject the run at
// the facade, promptly and with the context's error.
func TestDeadlineAlreadyExpired(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	inst := suiteChip(t)
	start := time.Now()
	_, err := placer.PlaceCtx(ctx, inst.N, placer.Config{Movebounds: inst.Movebounds, Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("expired context took %v to reject", d)
	}
}

// TestDeadlineMidRun: a deadline that expires inside the solvers must
// stop the pipeline promptly (bounded polling cadence in CG, network
// simplex, SSP, transportation, realization waves, and the global loop).
func TestDeadlineMidRun(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	inst := suiteChip(t)
	start := time.Now()
	_, err := placer.PlaceCtx(ctx, inst.N, placer.Config{Movebounds: inst.Movebounds, Workers: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("mid-run deadline took %v to unwind", d)
	}
}

// TestLeakFreeUnderCancellation sweeps cancellation into different phases
// of the run and verifies the parallel realization drains its workers on
// every exit path.
func TestLeakFreeUnderCancellation(t *testing.T) {
	leakcheck.Check(t)
	for _, budget := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 80 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		inst := suiteChip(t)
		_, err := placer.PlaceCtx(ctx, inst.N, placer.Config{Movebounds: inst.Movebounds, Workers: 4})
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("budget %v: unexpected error class: %v", budget, err)
		}
	}
}
