// Package faultsim is the repository's deterministic fault-injection
// harness. Solver and pipeline packages register named injection points
// (Sites) in their hot paths; a disarmed site costs one atomic nil-check
// per hit, so production runs pay essentially nothing. Tests arm a site
// with a seedable, fully deterministic trigger Schedule and then drive the
// pipeline: the armed site returns a structured *InjectedError (or panics,
// when the schedule requests panic injection) exactly at the scheduled
// hits, letting the robustness suite exercise every failure path — solver
// non-convergence, simplex stalls, transport engine failure, worker
// panics — without depending on rare numerical conditions.
//
// Determinism: a Schedule decides from the site's own hit counter alone,
// so a given (schedule, hit index) pair always makes the same decision.
// Seeded probabilistic schedules hash the hit index with SplitMix64, which
// keeps them reproducible across runs and goroutine interleavings that
// preserve hit counts (the "fire on every hit" schedule used by the
// injection suite is interleaving-independent outright).
//
// The package keeps a process-global registry because injection points
// live in package-level hot paths; tests that arm sites must not run in
// parallel with each other and should defer Reset().
package faultsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel wrapped by every injected error, so callers
// can distinguish injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("faultsim: injected fault")

// InjectedError is the structured error produced by an armed site.
type InjectedError struct {
	// Point is the site name that fired.
	Point string
	// Hit is the 0-based hit index at which the site fired.
	Hit uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultsim: injected fault at %s (hit %d)", e.Point, e.Hit)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Schedule decides, per hit of an armed site, whether the fault fires.
// The zero Schedule fires on every hit.
type Schedule struct {
	// After skips the first After hits.
	After uint64
	// Every fires on every k-th eligible hit (0 and 1 both mean every
	// eligible hit).
	Every uint64
	// Limit caps the total number of fires (0 = unlimited).
	Limit uint64
	// Prob, when in (0, 1), fires each eligible hit with this probability,
	// decided deterministically by hashing (Seed, hit index). Prob 0 (the
	// zero value) means "always fire" for eligible hits; use Disarm to
	// stop injection instead of Prob 0.
	Prob float64
	// Seed feeds the deterministic per-hit hash used with Prob.
	Seed uint64
	// Panic makes the site panic with the *InjectedError instead of
	// returning it, exercising panic-recovery boundaries.
	Panic bool
}

// fires reports whether the schedule triggers at the given hit index,
// given how many times it has already fired.
func (s *Schedule) fires(hit, fired uint64) bool {
	if hit < s.After {
		return false
	}
	if s.Limit > 0 && fired >= s.Limit {
		return false
	}
	eligible := hit - s.After
	if s.Every > 1 && eligible%s.Every != 0 {
		return false
	}
	if s.Prob > 0 && s.Prob < 1 {
		return splitMix64(s.Seed^hit) < uint64(s.Prob*float64(1<<63)*2)
	}
	return true
}

// splitMix64 is the SplitMix64 finalizer: a fast, well-distributed hash
// that keeps seeded schedules deterministic without shared RNG state.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// arming is the immutable armed state swapped into a site.
type arming struct {
	sched Schedule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Site is one named injection point. Instrumented packages hold a *Site in
// a package variable and call Check (or Enabled) in the hot path.
type Site struct {
	name  string
	doc   string
	armed atomic.Pointer[arming]
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Enabled reports whether the site is armed. It is the zero-cost fast
// path: one atomic pointer load.
func (s *Site) Enabled() bool { return s != nil && s.armed.Load() != nil }

// Check is the injection hook: nil when the site is disarmed or the
// schedule does not trigger at this hit, an *InjectedError when it does.
// When the schedule requests panic injection, Check panics with the
// *InjectedError instead of returning it.
func (s *Site) Check() error {
	if s == nil {
		return nil
	}
	a := s.armed.Load()
	if a == nil {
		return nil
	}
	hit := a.hits.Add(1) - 1
	if !a.sched.fires(hit, a.fired.Load()) {
		return nil
	}
	a.fired.Add(1)
	err := &InjectedError{Point: s.name, Hit: hit}
	if a.sched.Panic {
		panic(err) //fbpvet:allow panic injection is this harness's purpose
	}
	return err
}

// registry of all sites, keyed by name. Registration happens in package
// init functions; Arm/Points look names up here.
var (
	regMu sync.Mutex
	reg   = map[string]*Site{} // guarded by regMu
)

// Register creates and registers a named injection point. It is meant to
// be called from package-level variable initialization; registering the
// same name twice returns the existing site (so tests re-loading fixtures
// stay safe).
func Register(name, doc string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := reg[name]; ok {
		return s
	}
	s := &Site{name: name, doc: doc}
	reg[name] = s
	return s
}

// Arm installs a schedule at the named site, resetting its hit and fire
// counters. It fails on unknown names so test tables cannot silently rot
// when a site is renamed.
func Arm(name string, sched Schedule) error {
	regMu.Lock()
	s, ok := reg[name]
	regMu.Unlock()
	if !ok {
		return fmt.Errorf("faultsim: unknown injection point %q", name)
	}
	s.armed.Store(&arming{sched: sched})
	return nil
}

// Disarm removes the schedule from the named site (no-op when unknown or
// already disarmed).
func Disarm(name string) {
	regMu.Lock()
	s, ok := reg[name]
	regMu.Unlock()
	if ok {
		s.armed.Store(nil)
	}
}

// Reset disarms every registered site. Tests defer this.
func Reset() {
	regMu.Lock()
	sites := make([]*Site, 0, len(reg))
	for _, s := range reg {
		sites = append(sites, s)
	}
	regMu.Unlock()
	for _, s := range sites {
		s.armed.Store(nil)
	}
}

// Fired returns how many times the named site has fired since it was last
// armed (0 for unknown or disarmed sites).
func Fired(name string) uint64 {
	regMu.Lock()
	s, ok := reg[name]
	regMu.Unlock()
	if !ok {
		return 0
	}
	a := s.armed.Load()
	if a == nil {
		return 0
	}
	return a.fired.Load()
}

// Hits returns how many times the named site has been checked since it was
// last armed (0 for unknown or disarmed sites).
func Hits(name string) uint64 {
	regMu.Lock()
	s, ok := reg[name]
	regMu.Unlock()
	if !ok {
		return 0
	}
	a := s.armed.Load()
	if a == nil {
		return 0
	}
	return a.hits.Load()
}

// Info describes one registered injection point.
type Info struct {
	Name, Doc string
	Armed     bool
}

// Points lists every registered injection point sorted by name. The
// injection suite uses this to prove it covers all of them.
func Points() []Info {
	regMu.Lock()
	out := make([]Info, 0, len(reg))
	for _, s := range reg {
		out = append(out, Info{Name: s.name, Doc: s.doc, Armed: s.armed.Load() != nil})
	}
	regMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
