// Package legalize implements the legalization stage standing in for
// Brenner-Vygen minimum-movement legalization [6]: standard cells are
// snapped into rows without overlaps while minimizing movement with an
// Abacus-style cluster algorithm (cells never waste row space; clusters of
// abutting cells slide to their quadratic-optimal positions). For
// movebounded designs it implements the scheme of paper §III: decompose
// the chip into regions, partition cells onto regions with the
// movebound-aware transportation, then legalize each region's cells inside
// the region area — so cells of different (even overlapping) movebounds
// are legalized simultaneously.
package legalize

import (
	"fmt"
	"math"
	"sort"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/region"
	"fbplace/internal/transport"
)

// Options tunes legalization.
type Options struct {
	// MaxRowSearch bounds how many rows above/below the desired row are
	// tried per cell; 0 = all rows.
	MaxRowSearch int
	// Obs, when non-nil, records the partition/pack/spill phase spans and
	// the counters "legalize.cells", "legalize.spilled" and
	// "legalize.failed".
	Obs *obs.Recorder
}

// Result reports movement statistics.
type Result struct {
	// Moved is the total L1 movement of all legalized cells.
	Moved float64
	// MaxMove is the largest single-cell movement.
	MaxMove float64
	// Failed counts cells that could not be placed without overlap.
	Failed int
	// FailedCells lists them.
	FailedCells []netlist.CellID
}

// cluster is a maximal run of abutting cells in one segment (Abacus).
type cluster struct {
	xc     float64 // current start position
	w      float64 // total width
	weight float64 // number of member cells (uniform weights)
	q      float64 // sum over members of (desired start - offset in cluster)
	cells  []netlist.CellID
}

// segment is a free interval of one row holding a list of clusters.
type segment struct {
	rowY     float64 // bottom of the row
	x0, x1   float64
	used     float64
	clusters []cluster
}

// buildSegments splits each row intersecting the allowed area into free
// segments (allowed minus blockages). Rows are anchored at the chip
// bottom.
func buildSegments(n *netlist.Netlist, allowed geom.RectSet, blockages geom.RectSet) [][]segment {
	rh := n.RowHeight
	numRows := int((n.Area.Height() + 1e-9) / rh)
	rows := make([][]segment, numRows)
	for r := 0; r < numRows; r++ {
		y0 := n.Area.Ylo + float64(r)*rh
		rowRect := geom.Rect{Xlo: n.Area.Xlo, Ylo: y0, Xhi: n.Area.Xhi, Yhi: y0 + rh}
		var free []geom.Rect
		for _, a := range allowed {
			ir := a.Intersect(rowRect)
			if !ir.Empty() && ir.Yhi-ir.Ylo >= rh-1e-9 {
				free = append(free, ir)
			}
		}
		for _, b := range blockages {
			if !b.Overlaps(rowRect) {
				continue
			}
			var next []geom.Rect
			for _, f := range free {
				for _, piece := range f.Subtract(b) {
					if piece.Yhi-piece.Ylo >= rh-1e-9 {
						next = append(next, piece)
					}
				}
			}
			free = next
		}
		sort.Slice(free, func(i, j int) bool { return free[i].Xlo < free[j].Xlo })
		for _, f := range free {
			rows[r] = append(rows[r], segment{rowY: y0, x0: f.Xlo, x1: f.Xhi})
		}
	}
	return rows
}

func clampStart(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// trialInsert simulates appending a cell with the given width and desired
// start position into the segment, returning the final start position of
// the cell. It does not modify the segment.
func (s *segment) trialInsert(width, desiredStart float64) (float64, bool) {
	if s.used+width > s.x1-s.x0+1e-9 {
		return 0, false
	}
	vq := clampStart(desiredStart, s.x0, s.x1-width)
	vweight, vw := 1.0, width
	xc := clampStart(vq/vweight, s.x0, s.x1-vw)
	for i := len(s.clusters) - 1; i >= 0; i-- {
		c := &s.clusters[i]
		if c.xc+c.w <= xc+1e-12 {
			break
		}
		// Merge predecessor cluster c with the virtual cluster.
		vq = c.q + (vq - vweight*c.w)
		vweight += c.weight
		vw += c.w
		xc = clampStart(vq/vweight, s.x0, s.x1-vw)
	}
	return xc + vw - width, true
}

// insert commits the append of one cell (same math as trialInsert).
func (s *segment) insert(id netlist.CellID, width, desiredStart float64) {
	s.used += width
	nc := cluster{
		xc:     clampStart(desiredStart, s.x0, s.x1-width),
		w:      width,
		weight: 1,
		q:      clampStart(desiredStart, s.x0, s.x1-width),
		cells:  []netlist.CellID{id},
	}
	s.clusters = append(s.clusters, nc)
	// Collapse while the last cluster overlaps its predecessor.
	for len(s.clusters) >= 2 {
		last := &s.clusters[len(s.clusters)-1]
		last.xc = clampStart(last.q/last.weight, s.x0, s.x1-last.w)
		prev := &s.clusters[len(s.clusters)-2]
		if prev.xc+prev.w <= last.xc+1e-12 {
			break
		}
		prev.q += last.q - last.weight*prev.w
		prev.weight += last.weight
		prev.w += last.w
		prev.cells = append(prev.cells, last.cells...)
		s.clusters = s.clusters[:len(s.clusters)-1]
	}
	last := &s.clusters[len(s.clusters)-1]
	last.xc = clampStart(last.q/last.weight, s.x0, s.x1-last.w)
}

// Packer incrementally legalizes cells into one allowed area (a region or
// the whole chip): Abacus insertions commit immediately, final coordinates
// are materialized once by Finalize. Keeping the packer alive lets the
// movebound-aware legalization spill cells that do not fit one region into
// another region's remaining space without re-packing anything.
type Packer struct {
	n         *netlist.Netlist
	rows      [][]segment
	desired   map[netlist.CellID]geom.Point
	maxSearch int
	usable    bool
}

// NewPacker prepares the row segments of the allowed area.
func NewPacker(n *netlist.Netlist, allowed geom.RectSet, blockages geom.RectSet, opt Options) *Packer {
	p := &Packer{
		n:         n,
		rows:      buildSegments(n, allowed, blockages),
		desired:   map[netlist.CellID]geom.Point{},
		maxSearch: opt.MaxRowSearch,
	}
	if p.maxSearch <= 0 {
		p.maxSearch = len(p.rows)
	}
	for _, segs := range p.rows {
		if len(segs) > 0 {
			p.usable = true
			break
		}
	}
	return p
}

// Usable reports whether the area contains any usable row segment.
func (p *Packer) Usable() bool { return p.usable }

// findBest locates the cheapest insertion point for the cell.
func (p *Packer) findBest(id netlist.CellID) (*segment, float64) {
	n := p.n
	c := &n.Cells[id]
	rh := n.RowHeight
	want := n.Pos(id)
	wantRow := int((want.Y - rh/2 - n.Area.Ylo) / rh)
	bestCost := math.Inf(1)
	var bestSeg *segment
	for dr := 0; dr <= p.maxSearch; dr++ {
		tryRows := []int{wantRow - dr}
		if dr > 0 {
			tryRows = append(tryRows, wantRow+dr)
		}
		anyRow := false
		for _, r := range tryRows {
			if r < 0 || r >= len(p.rows) {
				continue
			}
			anyRow = true
			rowCost := math.Abs(float64(r)*rh + n.Area.Ylo + rh/2 - want.Y)
			if rowCost >= bestCost {
				continue
			}
			for si := range p.rows[r] {
				seg := &p.rows[r][si]
				x, ok := seg.trialInsert(c.Width, want.X-c.Width/2)
				if !ok {
					continue
				}
				cost := rowCost + math.Abs(x+c.Width/2-want.X)
				if cost < bestCost {
					bestCost = cost
					bestSeg = seg
				}
			}
		}
		if !anyRow && dr > 0 && wantRow-dr < 0 && wantRow+dr >= len(p.rows) {
			break
		}
		if bestSeg != nil && float64(dr)*rh > bestCost {
			break
		}
	}
	return bestSeg, bestCost
}

// TrialCost returns the movement cost of inserting the cell, without
// committing.
func (p *Packer) TrialCost(id netlist.CellID) (float64, bool) {
	seg, cost := p.findBest(id)
	return cost, seg != nil
}

// Insert commits the cell into its best position; it reports false when
// the cell fits nowhere in the area.
func (p *Packer) Insert(id netlist.CellID) bool {
	seg, _ := p.findBest(id)
	if seg == nil {
		return false
	}
	want := p.n.Pos(id)
	p.desired[id] = want
	seg.insert(id, p.n.Cells[id].Width, want.X-p.n.Cells[id].Width/2)
	return true
}

// Finalize materializes the cluster structures into cell coordinates and
// accumulates movement statistics.
func (p *Packer) Finalize(res *Result) {
	n := p.n
	rh := n.RowHeight
	for r := range p.rows {
		for si := range p.rows[r] {
			seg := &p.rows[r][si]
			for ci := range seg.clusters {
				cl := &seg.clusters[ci]
				x := cl.xc
				for _, id := range cl.cells {
					w := n.Cells[id].Width
					// Clamp against float accumulation drift past the
					// segment end (hairline movebound violations).
					if x+w > seg.x1 {
						x = seg.x1 - w
					}
					pos := geom.Point{X: x + w/2, Y: seg.rowY + rh/2}
					move := pos.DistL1(p.desired[id])
					res.Moved += move
					if move > res.MaxMove {
						res.MaxMove = move
					}
					n.SetPos(id, pos)
					x += w
				}
			}
		}
	}
}

// sortByX orders cells left-to-right by desired position (Abacus order).
func sortByX(n *netlist.Netlist, cells []netlist.CellID) []netlist.CellID {
	order := append([]netlist.CellID(nil), cells...)
	sort.Slice(order, func(i, j int) bool {
		//fbpvet:floatok exact tie-break on stored coordinates keeps the sort total
		if n.X[order[i]] != n.X[order[j]] {
			return n.X[order[i]] < n.X[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

func checkHeights(n *netlist.Netlist, cells []netlist.CellID) error {
	for _, id := range cells {
		if c := &n.Cells[id]; c.Height > n.RowHeight+1e-9 {
			return fmt.Errorf("legalize: cell %d (%s) taller than a row (%g > %g)", id, c.Name, c.Height, n.RowHeight)
		}
	}
	return nil
}

// Legalize snaps all movable cells of the netlist into rows across the
// whole chip, avoiding the fixed cells.
func Legalize(n *netlist.Netlist, opt Options) (Result, error) {
	return LegalizeArea(n, n.MovableIDs(), geom.RectSet{n.Area}, n.FixedRects(), opt)
}

// LegalizeArea legalizes the given cells inside the allowed area, treating
// blockages (and everything outside the allowed set) as forbidden. Other
// cells of the netlist are ignored — callers partition cells into disjoint
// areas first.
func LegalizeArea(n *netlist.Netlist, cells []netlist.CellID, allowed geom.RectSet, blockages geom.RectSet, opt Options) (Result, error) {
	res := Result{}
	if len(cells) == 0 {
		return res, nil
	}
	if err := checkHeights(n, cells); err != nil {
		return res, err
	}
	sp := opt.Obs.StartSpan("legalize.pack")
	defer sp.End()
	p := NewPacker(n, allowed, blockages, opt)
	if !p.Usable() {
		return Result{Failed: len(cells)}, fmt.Errorf("legalize: no usable rows in allowed area")
	}
	for _, id := range sortByX(n, cells) {
		if !p.Insert(id) {
			res.Failed++
			res.FailedCells = append(res.FailedCells, id)
		}
	}
	p.Finalize(&res)
	opt.Obs.Count("legalize.cells", float64(len(cells)))
	opt.Obs.Count("legalize.failed", float64(res.Failed))
	if res.Failed > 0 {
		return res, fmt.Errorf("legalize: %d cells could not be placed", res.Failed)
	}
	return res, nil
}

// PackableCapacities returns, per region of the decomposition, the cell
// area that row-based legalization can realistically pack: the free row
// segments minus a per-segment end-waste allowance of 0.6 average cell
// widths. Narrow slivers (common with overlapping movebounds) contribute
// much less than their geometric area; instance generators and the
// movebound-aware legalization both budget against this measure.
func PackableCapacities(n *netlist.Netlist, d *region.Decomposition, blockages geom.RectSet) []float64 {
	movable := n.MovableIDs()
	avgW := 0.0
	for _, id := range movable {
		avgW += n.Cells[id].Width
	}
	if len(movable) > 0 {
		avgW /= float64(len(movable))
	}
	caps := make([]float64, len(d.Regions))
	for ri := range d.Regions {
		for _, segs := range buildSegments(n, d.Regions[ri].Rects, blockages) {
			for _, s := range segs {
				if w := s.x1 - s.x0 - 0.6*avgW; w > 0 {
					caps[ri] += w * n.RowHeight
				}
			}
		}
	}
	return caps
}

// LegalizeWithMovebounds implements §III: partition all movable cells onto
// the region decomposition with the movebound-aware transportation, then
// legalize each region's cells inside the region area. Cells of different
// movebounds sharing a region are handled simultaneously; cells that do
// not fit their region (sliver fragmentation) spill into the remaining
// space of other admissible regions.
func LegalizeWithMovebounds(n *netlist.Netlist, d *region.Decomposition, opt Options) (Result, error) {
	blockages := n.FixedRects()
	movable := n.MovableIDs()
	if len(movable) == 0 {
		return Result{}, nil
	}
	if err := checkHeights(n, movable); err != nil {
		return Result{}, err
	}
	psp := opt.Obs.StartSpan("legalize.partition")
	// Partition on *packable* capacity (see PackableCapacities): narrow
	// sliver regions contribute far less than their geometric area.
	caps := PackableCapacities(n, d, blockages)
	packers := make([]*Packer, len(d.Regions))
	for ri := range d.Regions {
		packers[ri] = NewPacker(n, d.Regions[ri].Rects, blockages, opt)
	}
	prob := &transport.Problem{
		Supply:   make([]float64, len(movable)),
		Capacity: caps,
		Arcs:     make([][]transport.Arc, len(movable)),
		Obs:      opt.Obs,
	}
	for i, id := range movable {
		prob.Supply[i] = n.Cells[id].Size()
		pos := n.Pos(id)
		for ri := range d.Regions {
			if !d.Admissible(n.Cells[id].Movebound, ri) || caps[ri] <= 0 {
				continue
			}
			best := math.Inf(1)
			for _, rect := range d.Regions[ri].Rects {
				if dd := rect.ClampPoint(pos).DistL1(pos); dd < best {
					best = dd
				}
			}
			prob.Arcs[i] = append(prob.Arcs[i], transport.Arc{Sink: ri, Cost: best})
		}
	}
	sol, err := transport.Solve(prob)
	if err != nil {
		// Dense instances may genuinely need the full capacity: relax the
		// headroom step by step before giving up. Overfilled regions shed
		// their excess through the spill pass below.
		for _, f := range []float64{1.1, 1.4, 2.5, 8} {
			for ri := range prob.Capacity {
				prob.Capacity[ri] = caps[ri] * f
			}
			if sol, err = transport.Solve(prob); err == nil {
				break
			}
		}
		if err != nil {
			psp.End()
			return Result{}, fmt.Errorf("legalize: region partitioning: %w", err)
		}
	}
	psp.End()
	ksp := opt.Obs.StartSpan("legalize.pack")
	defer ksp.End()
	rounded := sol.Rounded()
	perRegion := make([][]netlist.CellID, len(d.Regions))
	for i, id := range movable {
		perRegion[rounded[i]] = append(perRegion[rounded[i]], id)
	}
	// Pack each region; cells that do not fit spill.
	var spill []netlist.CellID
	total := Result{}
	for ri, cells := range perRegion {
		if len(cells) == 0 {
			continue
		}
		if !packers[ri].Usable() {
			spill = append(spill, cells...)
			continue
		}
		for _, id := range sortByX(n, cells) {
			if !packers[ri].Insert(id) {
				spill = append(spill, id)
			}
		}
	}
	// Spill pass: widest cells first, each into the cheapest admissible
	// region that still has room.
	sort.Slice(spill, func(a, b int) bool {
		wa, wb := n.Cells[spill[a]].Width, n.Cells[spill[b]].Width
		//fbpvet:floatok exact tie-break on stored widths keeps the sort total
		if wa != wb {
			return wa > wb
		}
		return spill[a] < spill[b]
	})
	for _, id := range spill {
		best := -1
		bestCost := math.Inf(1)
		for ri := range d.Regions {
			if !d.Admissible(n.Cells[id].Movebound, ri) || !packers[ri].Usable() {
				continue
			}
			if cost, ok := packers[ri].TrialCost(id); ok && cost < bestCost {
				best, bestCost = ri, cost
			}
		}
		if best < 0 {
			total.Failed++
			total.FailedCells = append(total.FailedCells, id)
			continue
		}
		packers[best].Insert(id)
	}
	for ri := range packers {
		packers[ri].Finalize(&total)
	}
	opt.Obs.Count("legalize.cells", float64(len(movable)))
	opt.Obs.Count("legalize.spilled", float64(len(spill)))
	opt.Obs.Count("legalize.failed", float64(total.Failed))
	if total.Failed > 0 {
		return total, fmt.Errorf("legalize: %d cells fit no admissible region", total.Failed)
	}
	return total, nil
}

// widestSegment returns the width of the widest free row segment of the
// region.
func widestSegment(n *netlist.Netlist, reg *region.Region, blockages geom.RectSet) float64 {
	widest := 0.0
	for _, segs := range buildSegments(n, reg.Rects, blockages) {
		for _, s := range segs {
			if w := s.x1 - s.x0; w > widest {
				widest = w
			}
		}
	}
	return widest
}

// VerifyNoOverlaps checks that no two movable cells overlap and no movable
// cell overlaps a fixed cell; it returns the number of overlapping pairs.
// Used by integration tests and the experiment harness.
func VerifyNoOverlaps(n *netlist.Netlist) int {
	type box struct {
		r     geom.Rect
		fixed bool
	}
	boxes := make([]box, 0, n.NumCells())
	for i := range n.Cells {
		boxes = append(boxes, box{r: n.CellRect(netlist.CellID(i)), fixed: n.Cells[i].Fixed})
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return boxes[idx[a]].r.Xlo < boxes[idx[b]].r.Xlo })
	overlaps := 0
	for a := 0; a < len(idx); a++ {
		ba := boxes[idx[a]]
		for b := a + 1; b < len(idx); b++ {
			bb := boxes[idx[b]]
			if bb.r.Xlo >= ba.r.Xhi-1e-9 {
				break
			}
			if ba.fixed && bb.fixed {
				continue
			}
			ir := ba.r.Intersect(bb.r)
			if !ir.Empty() && ir.Area() > 1e-6 {
				overlaps++
			}
		}
	}
	return overlaps
}
