package legalize

import (
	"math"
	"math/rand"
	"testing"

	"fbplace/internal/geom"
	"fbplace/internal/netlist"
	"fbplace/internal/region"
)

var chip = geom.Rect{Xlo: 0, Ylo: 0, Xhi: 20, Yhi: 10}

func TestLegalizeSimpleStack(t *testing.T) {
	n := netlist.New(chip, 1)
	// Three cells piled on the same spot.
	for i := 0; i < 3; i++ {
		id := n.AddCell(netlist.Cell{Width: 2, Height: 1})
		n.SetPos(id, geom.Point{X: 5, Y: 5})
	}
	res, err := Legalize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
	if res.Moved <= 0 {
		t.Fatal("expected movement")
	}
	// Cells on row centers.
	for i := range n.Cells {
		y := n.Y[i]
		if math.Abs(y-math.Floor(y)-0.5) > 1e-9 {
			t.Fatalf("cell %d not on a row center: y=%g", i, y)
		}
	}
}

func TestLegalizeKeepsLegalCellsNear(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 1})
	n.SetPos(a, geom.Point{X: 5, Y: 2.5})
	res, err := Legalize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved > 1e-9 {
		t.Fatalf("already-legal cell moved %g", res.Moved)
	}
}

func TestLegalizeAvoidsBlockage(t *testing.T) {
	n := netlist.New(chip, 1)
	m := n.AddCell(netlist.Cell{Width: 6, Height: 4, Fixed: true})
	n.SetPos(m, geom.Point{X: 10, Y: 5})
	var ids []netlist.CellID
	for i := 0; i < 20; i++ {
		id := n.AddCell(netlist.Cell{Width: 1.5, Height: 1})
		n.SetPos(id, geom.Point{X: 10, Y: 5}) // all inside the macro
		ids = append(ids, id)
	}
	if _, err := Legalize(n, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
	macro := n.CellRect(m)
	for _, id := range ids {
		if n.CellRect(id).Overlaps(macro) {
			t.Fatalf("cell %d overlaps the macro", id)
		}
	}
}

func TestLegalizeDensePacking(t *testing.T) {
	// 90% utilization: 180 unit cells in a 20x10 chip.
	n := netlist.New(chip, 1)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 180; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 10})
	}
	if _, err := Legalize(n, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
	for i := range n.Cells {
		if !chip.ContainsRect(n.CellRect(netlist.CellID(i))) {
			t.Fatalf("cell %d outside chip: %v", i, n.CellRect(netlist.CellID(i)))
		}
	}
}

func TestLegalizeFailsWhenFull(t *testing.T) {
	n := netlist.New(chip, 1)
	// 220 unit cells cannot fit into 200 area.
	for i := 0; i < 220; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: 10, Y: 5})
	}
	res, err := Legalize(n, Options{})
	if err == nil {
		t.Fatal("overfull instance legalized")
	}
	if res.Failed < 20 {
		t.Fatalf("Failed = %d, want >= 20", res.Failed)
	}
}

func TestLegalizeAreaRestricted(t *testing.T) {
	n := netlist.New(chip, 1)
	var ids []netlist.CellID
	for i := 0; i < 10; i++ {
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1})
		n.SetPos(id, geom.Point{X: 2, Y: 2})
		ids = append(ids, id)
	}
	allowed := geom.RectSet{{Xlo: 10, Ylo: 0, Xhi: 20, Yhi: 10}}
	if _, err := LegalizeArea(n, ids, allowed, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if !allowed.ContainsRect(n.CellRect(id)) {
			t.Fatalf("cell %d left the allowed area: %v", id, n.CellRect(id))
		}
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
}

func TestLegalizeTallCellRejected(t *testing.T) {
	n := netlist.New(chip, 1)
	n.AddCell(netlist.Cell{Width: 1, Height: 3})
	if _, err := Legalize(n, Options{}); err == nil {
		t.Fatal("multi-row cell accepted")
	}
}

func TestLegalizeWithMovebounds(t *testing.T) {
	mbs := []region.Movebound{
		{Name: "L", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 8, Yhi: 10}}},
		{Name: "R", Kind: region.Exclusive, Area: geom.RectSet{{Xlo: 14, Ylo: 0, Xhi: 20, Yhi: 10}}},
	}
	norm, err := region.Normalize(chip, mbs)
	if err != nil {
		t.Fatal(err)
	}
	d := region.Decompose(chip, norm)
	n := netlist.New(chip, 1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		mb := netlist.NoMovebound
		switch {
		case i < 10:
			mb = 0
		case i < 16:
			mb = 1
		}
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: mb})
		n.SetPos(id, geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 10})
	}
	if _, err := LegalizeWithMovebounds(n, d, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
	if viol := region.CheckLegal(n, norm); viol != 0 {
		t.Fatalf("movebound violations = %d", viol)
	}
}

func TestLegalizeOverlappingMovebounds(t *testing.T) {
	// Overlapping inclusive movebounds: legalization must handle cells of
	// both movebounds in the shared region simultaneously (§III).
	mbs := []region.Movebound{
		{Name: "A", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 0, Ylo: 0, Xhi: 12, Yhi: 10}}},
		{Name: "B", Kind: region.Inclusive, Area: geom.RectSet{{Xlo: 8, Ylo: 0, Xhi: 20, Yhi: 10}}},
	}
	norm, err := region.Normalize(chip, mbs)
	if err != nil {
		t.Fatal(err)
	}
	d := region.Decompose(chip, norm)
	n := netlist.New(chip, 1)
	// Crowd both movebounds into the overlap zone.
	for i := 0; i < 40; i++ {
		mb := i % 2
		id := n.AddCell(netlist.Cell{Width: 1, Height: 1, Movebound: mb})
		n.SetPos(id, geom.Point{X: 10, Y: 5})
	}
	if _, err := LegalizeWithMovebounds(n, d, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d", got)
	}
	if viol := region.CheckLegal(n, norm); viol != 0 {
		t.Fatalf("movebound violations = %d", viol)
	}
}

func TestVerifyNoOverlapsDetects(t *testing.T) {
	n := netlist.New(chip, 1)
	a := n.AddCell(netlist.Cell{Width: 2, Height: 1})
	b := n.AddCell(netlist.Cell{Width: 2, Height: 1})
	n.SetPos(a, geom.Point{X: 5, Y: 5})
	n.SetPos(b, geom.Point{X: 5.5, Y: 5})
	if got := VerifyNoOverlaps(n); got != 1 {
		t.Fatalf("overlaps = %d, want 1", got)
	}
	n.SetPos(b, geom.Point{X: 7, Y: 5})
	if got := VerifyNoOverlaps(n); got != 0 {
		t.Fatalf("overlaps = %d, want 0", got)
	}
}
