package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArith(t *testing.T) {
	p, q := Point{1, 2}, Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.DistL1(q); got != 5 {
		t.Errorf("DistL1 = %v, want 5", got)
	}
	if got := p.DistL2(Point{4, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistL2 = %v, want 5", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Fatalf("dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if r.Empty() {
		t.Fatal("r should not be empty")
	}
	if (Rect{1, 1, 1, 5}).Area() != 0 {
		t.Fatal("degenerate rect must have area 0")
	}
	if !(Rect{3, 3, 2, 4}).Empty() {
		t.Fatal("inverted rect must be empty")
	}
	if r.Center() != (Point{2, 1}) {
		t.Fatalf("Center = %v", r.Center())
	}
	if !r.Contains(Point{4, 2}) { // boundary inclusive
		t.Fatal("boundary point must be contained")
	}
	if r.Contains(Point{4.01, 2}) {
		t.Fatal("outside point must not be contained")
	}
}

func TestRectOverlapTouchingNotOverlap(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{2, 0, 4, 2} // shares an edge
	if a.Overlaps(b) {
		t.Fatal("edge-sharing rects must not overlap")
	}
	c := Rect{1.5, 1, 3, 3}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Fatal("overlapping rects not detected")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 1, 6, 3}
	is := a.Intersect(b)
	if is != (Rect{2, 1, 4, 3}) {
		t.Fatalf("Intersect = %v", is)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 4}) {
		t.Fatalf("Union = %v", u)
	}
	var empty Rect
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Fatal("Union with empty must be identity")
	}
}

func TestRectContainsRect(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Fatal("rect must contain itself")
	}
	if !a.ContainsRect(Rect{2, 2, 8, 8}) {
		t.Fatal("inner rect")
	}
	if a.ContainsRect(Rect{2, 2, 11, 8}) {
		t.Fatal("protruding rect must not be contained")
	}
}

func TestRectSubtract(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	s := Rect{3, 3, 7, 7}
	pieces := r.Subtract(s)
	if len(pieces) != 4 {
		t.Fatalf("want 4 pieces, got %d", len(pieces))
	}
	total := 0.0
	for i, p := range pieces {
		total += p.Area()
		if p.Overlaps(s) {
			t.Errorf("piece %d overlaps subtrahend", i)
		}
		for j := i + 1; j < len(pieces); j++ {
			if p.Overlaps(pieces[j]) {
				t.Errorf("pieces %d and %d overlap", i, j)
			}
		}
	}
	if math.Abs(total-(100-16)) > 1e-12 {
		t.Fatalf("total area = %v, want 84", total)
	}
	// Disjoint subtrahend leaves r untouched.
	pieces = r.Subtract(Rect{20, 20, 30, 30})
	if len(pieces) != 1 || pieces[0] != r {
		t.Fatalf("disjoint subtract = %v", pieces)
	}
	// Full cover leaves nothing.
	if got := r.Subtract(Rect{-1, -1, 11, 11}); len(got) != 0 {
		t.Fatalf("covered subtract = %v", got)
	}
}

// Property: Subtract pieces are disjoint, inside r, outside s, and their
// area equals Area(r) - Area(r ∩ s).
func TestRectSubtractProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		r := Rect{float64(ax), float64(ay), float64(ax) + float64(aw%32) + 1, float64(ay) + float64(ah%32) + 1}
		s := Rect{float64(bx), float64(by), float64(bx) + float64(bw%32) + 1, float64(by) + float64(bh%32) + 1}
		pieces := r.Subtract(s)
		total := 0.0
		for i, p := range pieces {
			if p.Empty() {
				return false
			}
			if !r.ContainsRect(p) {
				return false
			}
			if p.Overlaps(s) {
				return false
			}
			for j := i + 1; j < len(pieces); j++ {
				if p.Overlaps(pieces[j]) {
					return false
				}
			}
			total += p.Area()
		}
		want := r.Area() - r.Intersect(s).Area()
		return math.Abs(total-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRectClampPoint(t *testing.T) {
	r := Rect{0, 0, 4, 4}
	cases := []struct{ in, want Point }{
		{Point{2, 2}, Point{2, 2}},
		{Point{-1, 2}, Point{0, 2}},
		{Point{5, 9}, Point{4, 4}},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); got != c.want {
			t.Errorf("ClampPoint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRectExpandTranslate(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	if r.Expand(1) != (Rect{0, 0, 4, 4}) {
		t.Fatalf("Expand = %v", r.Expand(1))
	}
	if r.Translate(Point{2, -1}) != (Rect{3, 0, 5, 2}) {
		t.Fatalf("Translate = %v", r.Translate(Point{2, -1}))
	}
}

func TestRectSetArea(t *testing.T) {
	s := RectSet{{0, 0, 2, 2}, {1, 1, 3, 3}} // overlap area 1
	if got := s.Area(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("Area = %v, want 7", got)
	}
	if got := (RectSet{}).Area(); got != 0 {
		t.Fatalf("empty set area = %v", got)
	}
	if got := (RectSet{{0, 0, 5, 1}}).Area(); got != 5 {
		t.Fatalf("single area = %v", got)
	}
}

// Property: union area of random rect sets matches a Monte-Carlo-free exact
// reference computed by inclusion on the Hanan tiles directly.
func TestRectSetAreaMatchesTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(6)
		var s RectSet
		for i := 0; i < n; i++ {
			x, y := float64(rng.Intn(20)), float64(rng.Intn(20))
			s = append(s, Rect{x, y, x + 1 + float64(rng.Intn(10)), y + 1 + float64(rng.Intn(10))})
		}
		// Reference: rasterize on unit tiles inside the bbox.
		bb := s.BBox()
		ref := 0.0
		for x := bb.Xlo; x < bb.Xhi; x++ {
			for y := bb.Ylo; y < bb.Yhi; y++ {
				if s.Contains(Point{x + 0.5, y + 0.5}) {
					ref++
				}
			}
		}
		if got := s.Area(); math.Abs(got-ref) > 1e-6 {
			t.Fatalf("iter %d: Area = %v, ref = %v, set %v", iter, got, ref, s)
		}
	}
}

func TestRectSetContainsRect(t *testing.T) {
	// An L-shape covering [0,4]x[0,2] plus [0,2]x[2,4].
	s := RectSet{{0, 0, 4, 2}, {0, 2, 2, 4}}
	if !s.ContainsRect(Rect{0, 0, 4, 2}) {
		t.Fatal("must contain its own member")
	}
	if !s.ContainsRect(Rect{1, 1, 2, 3}) {
		t.Fatal("must contain rect straddling both members")
	}
	if s.ContainsRect(Rect{1, 1, 3, 3}) {
		t.Fatal("must not contain rect sticking into the notch")
	}
	if !s.ContainsRect(Rect{}) {
		t.Fatal("empty rect is contained anywhere")
	}
}

func TestRectSetClipBBox(t *testing.T) {
	s := RectSet{{0, 0, 4, 4}, {6, 6, 8, 8}}
	bb := s.BBox()
	if bb != (Rect{0, 0, 8, 8}) {
		t.Fatalf("BBox = %v", bb)
	}
	c := s.Clip(Rect{2, 2, 7, 7})
	if len(c) != 2 {
		t.Fatalf("Clip size = %d", len(c))
	}
	if c[0] != (Rect{2, 2, 4, 4}) || c[1] != (Rect{6, 6, 7, 7}) {
		t.Fatalf("Clip = %v", c)
	}
	if got := s.Clip(Rect{4, 4, 6, 6}); len(got) != 0 {
		t.Fatalf("clip to gap = %v", got)
	}
}

func TestHananGridTilesPartitionArea(t *testing.T) {
	area := Rect{0, 0, 10, 10}
	rects := RectSet{{1, 1, 4, 5}, {3, 2, 8, 9}}
	g := NewHananGrid(area, rects)
	tiles := g.Tiles()
	total := 0.0
	for i, a := range tiles {
		total += a.Area()
		if !area.ContainsRect(a) {
			t.Fatalf("tile %d outside area", i)
		}
		for j := i + 1; j < len(tiles); j++ {
			if a.Overlaps(tiles[j]) {
				t.Fatalf("tiles %d,%d overlap", i, j)
			}
		}
	}
	if math.Abs(total-area.Area()) > 1e-9 {
		t.Fatalf("tiles area = %v, want %v", total, area.Area())
	}
	// Every tile is either fully inside or fully outside each input rect.
	for _, a := range tiles {
		for _, r := range rects {
			if a.Overlaps(r) && !r.ContainsRect(a) {
				t.Fatalf("tile %v straddles rect %v", a, r)
			}
		}
	}
}

// Property (Lemma 1): the Hanan grid of l rectangles has O(l^2) tiles —
// concretely at most (2l+1)^2 — and the tiles partition the area.
func TestHananGridSizeBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		area := Rect{0, 0, 100, 100}
		l := 1 + rng.Intn(8)
		var s RectSet
		for i := 0; i < l; i++ {
			x, y := rng.Float64()*90, rng.Float64()*90
			s = append(s, Rect{x, y, x + 1 + rng.Float64()*9, y + 1 + rng.Float64()*9})
		}
		g := NewHananGrid(area, s)
		if g.NumTiles() > (2*l+1)*(2*l+1) {
			return false
		}
		total := 0.0
		for _, tl := range g.Tiles() {
			total += tl.Area()
		}
		return math.Abs(total-area.Area()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHananGridClipsOutsideLines(t *testing.T) {
	area := Rect{0, 0, 10, 10}
	// Rectangle partially outside the area: outside corners are dropped.
	g := NewHananGrid(area, RectSet{{5, 5, 20, 20}})
	for _, x := range g.Xs {
		if x < 0 || x > 10 {
			t.Fatalf("x line %v outside area", x)
		}
	}
	if len(g.Xs) != 3 || len(g.Ys) != 3 { // 0, 5, 10
		t.Fatalf("grid lines = %v / %v", g.Xs, g.Ys)
	}
}

// Property: RectSet.ContainsRect agrees with dense rasterization on
// integer-coordinate sets.
func TestRectSetContainsRectMatchesRaster(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 60; trial++ {
		var s RectSet
		for i := 0; i < 1+rng.Intn(4); i++ {
			x, y := float64(rng.Intn(8)), float64(rng.Intn(8))
			s = append(s, Rect{x, y, x + 1 + float64(rng.Intn(6)), y + 1 + float64(rng.Intn(6))})
		}
		qx, qy := float64(rng.Intn(8)), float64(rng.Intn(8))
		q := Rect{qx, qy, qx + 1 + float64(rng.Intn(5)), qy + 1 + float64(rng.Intn(5))}
		// Raster reference on unit cells of q.
		covered := true
		for x := q.Xlo; x < q.Xhi && covered; x++ {
			for y := q.Ylo; y < q.Yhi; y++ {
				if !s.Contains(Point{x + 0.5, y + 0.5}) {
					covered = false
					break
				}
			}
		}
		if got := s.ContainsRect(q); got != covered {
			t.Fatalf("trial %d: ContainsRect=%v raster=%v (set %v, q %v)", trial, got, covered, s, q)
		}
	}
}
