// Package geom provides the planar geometry substrate for the placer:
// points, axis-parallel rectangles, rectangle sets, and the Hanan grid
// decomposition used for movebound region construction (paper §II, Lemma 1).
//
// All coordinates are float64 in an abstract unit (typically the row height
// of the design is a small integer multiple of the unit). Rectangles are
// half-open in spirit: zero-area rectangles are considered empty, and two
// rectangles that share only a boundary segment do not overlap.
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// DistL1 returns the Manhattan (L1) distance between p and q. The placer
// uses L1 distances as partitioning movement costs throughout.
func (p Point) DistL1(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// DistL2 returns the Euclidean distance between p and q.
func (p Point) DistL2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Rect is an axis-parallel rectangle [Xlo,Xhi] x [Ylo,Yhi].
type Rect struct {
	Xlo, Ylo, Xhi, Yhi float64
}

// NewRect returns the rectangle spanned by two corner coordinates in any
// order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Width returns the horizontal extent of r (never negative for valid rects).
func (r Rect) Width() float64 { return r.Xhi - r.Xlo }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Yhi - r.Ylo }

// Area returns the area of r; empty or inverted rectangles have area 0.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Empty reports whether r has no interior.
func (r Rect) Empty() bool { return r.Xhi <= r.Xlo || r.Yhi <= r.Ylo }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.Xlo + r.Xhi) / 2, (r.Ylo + r.Yhi) / 2} }

// Contains reports whether the point p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Xlo && p.X <= r.Xhi && p.Y >= r.Ylo && p.Y <= r.Yhi
}

// ContainsRect reports whether s lies entirely within r (boundary
// inclusive). Empty s is contained in anything that contains its corner.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Xlo >= r.Xlo && s.Xhi <= r.Xhi && s.Ylo >= r.Ylo && s.Yhi <= r.Yhi
}

// Overlaps reports whether r and s share interior points. Touching
// boundaries do not count as overlap.
func (r Rect) Overlaps(s Rect) bool {
	return r.Xlo < s.Xhi && s.Xlo < r.Xhi && r.Ylo < s.Yhi && s.Ylo < r.Yhi
}

// Intersect returns the common rectangle of r and s. The result may be
// empty; callers should check Empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		Xlo: math.Max(r.Xlo, s.Xlo),
		Ylo: math.Max(r.Ylo, s.Ylo),
		Xhi: math.Min(r.Xhi, s.Xhi),
		Yhi: math.Min(r.Yhi, s.Yhi),
	}
}

// Union returns the bounding box of r and s. Empty operands are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Xlo: math.Min(r.Xlo, s.Xlo),
		Ylo: math.Min(r.Ylo, s.Ylo),
		Xhi: math.Max(r.Xhi, s.Xhi),
		Yhi: math.Max(r.Yhi, s.Yhi),
	}
}

// Expand returns r grown by d on every side (shrunk for negative d).
func (r Rect) Expand(d float64) Rect {
	return Rect{r.Xlo - d, r.Ylo - d, r.Xhi + d, r.Yhi + d}
}

// Translate returns r shifted by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.Xlo + p.X, r.Ylo + p.Y, r.Xhi + p.X, r.Yhi + p.Y}
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Point{clamp(p.X, r.Xlo, r.Xhi), clamp(p.Y, r.Ylo, r.Yhi)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.Xlo, r.Xhi, r.Ylo, r.Yhi)
}

// Subtract returns r minus s as a set of at most four disjoint rectangles.
// If r and s do not overlap the result is just {r}.
func (r Rect) Subtract(s Rect) []Rect {
	is := r.Intersect(s)
	if is.Empty() {
		if r.Empty() {
			return nil
		}
		return []Rect{r}
	}
	var out []Rect
	// Bottom band.
	if is.Ylo > r.Ylo {
		out = append(out, Rect{r.Xlo, r.Ylo, r.Xhi, is.Ylo})
	}
	// Top band.
	if is.Yhi < r.Yhi {
		out = append(out, Rect{r.Xlo, is.Yhi, r.Xhi, r.Yhi})
	}
	// Left and right slivers at the intersection's vertical span.
	if is.Xlo > r.Xlo {
		out = append(out, Rect{r.Xlo, is.Ylo, is.Xlo, is.Yhi})
	}
	if is.Xhi < r.Xhi {
		out = append(out, Rect{is.Xhi, is.Ylo, r.Xhi, is.Yhi})
	}
	return out
}

// RectSet is a finite set of rectangles; the rectangles are not required
// to be disjoint unless stated by the producing operation.
type RectSet []Rect

// Area returns the area of the union of the rectangles in s (overlaps are
// counted once). It runs a sweep over the Hanan decomposition of s, which
// is robust and, at the set sizes used for movebound areas, fast enough.
func (s RectSet) Area() float64 {
	if len(s) == 0 {
		return 0
	}
	if len(s) == 1 {
		return s[0].Area()
	}
	xs, ys := hananCoords(s)
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			tile := Rect{xs[i], ys[j], xs[i+1], ys[j+1]}
			if tile.Empty() {
				continue
			}
			c := tile.Center()
			for _, r := range s {
				if r.Contains(c) && !r.Empty() {
					total += tile.Area()
					break
				}
			}
		}
	}
	return total
}

// Contains reports whether p lies in the union of the set.
func (s RectSet) Contains(p Point) bool {
	for _, r := range s {
		if !r.Empty() && r.Contains(p) {
			return true
		}
	}
	return false
}

// ContainsRect reports whether r is entirely covered by the union of the
// set. It checks each tile of the Hanan grid of s restricted to r.
func (s RectSet) ContainsRect(r Rect) bool {
	if r.Empty() {
		return true
	}
	// Fast path: single containing rectangle.
	for _, q := range s {
		if q.ContainsRect(r) {
			return true
		}
	}
	rem := []Rect{r}
	for _, q := range s {
		var next []Rect
		for _, piece := range rem {
			next = append(next, piece.Subtract(q)...)
		}
		rem = next
		if len(rem) == 0 {
			return true
		}
	}
	for _, piece := range rem {
		if piece.Area() > areaEps {
			return false
		}
	}
	return true
}

// OverlapsRect reports whether any rectangle of the set shares interior
// points with r.
func (s RectSet) OverlapsRect(r Rect) bool {
	for _, q := range s {
		if q.Overlaps(r) {
			return true
		}
	}
	return false
}

// BBox returns the bounding box of all non-empty rectangles in the set.
func (s RectSet) BBox() Rect {
	var bb Rect
	first := true
	for _, r := range s {
		if r.Empty() {
			continue
		}
		if first {
			bb, first = r, false
		} else {
			bb = bb.Union(r)
		}
	}
	return bb
}

// Clip returns the set intersected with the window w (dropping empties).
func (s RectSet) Clip(w Rect) RectSet {
	var out RectSet
	for _, r := range s {
		ir := r.Intersect(w)
		if !ir.Empty() {
			out = append(out, ir)
		}
	}
	return out
}

// areaEps is the tolerance under which residual areas are treated as
// numerical noise by the coverage predicates.
const areaEps = 1e-9

// hananCoords returns the sorted, deduplicated x and y coordinates of all
// rectangle corners in the set.
func hananCoords(s RectSet) (xs, ys []float64) {
	xs = make([]float64, 0, 2*len(s))
	ys = make([]float64, 0, 2*len(s))
	for _, r := range s {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.Xlo, r.Xhi)
		ys = append(ys, r.Ylo, r.Yhi)
	}
	return dedupSorted(xs), dedupSorted(ys)
}

func dedupSorted(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		//fbpvet:floatok dedup of bit-identical sorted coordinates is exact by design
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// HananGrid is the grid induced by the corner coordinates of a rectangle
// set, clipped to a bounding area. It is the decomposition used by Lemma 1
// to build movebound regions with O(l^2) rectangles.
type HananGrid struct {
	Xs, Ys []float64 // grid lines, sorted ascending, length >= 2
}

// NewHananGrid builds the Hanan grid of the given rectangles inside area.
// The area's own corners are always grid lines, and all grid lines are
// clipped to the area.
func NewHananGrid(area Rect, rects RectSet) HananGrid {
	xs, ys := hananCoords(rects)
	xs = append(xs, area.Xlo, area.Xhi)
	ys = append(ys, area.Ylo, area.Yhi)
	xs, ys = dedupSorted(xs), dedupSorted(ys)
	xs = clipLines(xs, area.Xlo, area.Xhi)
	ys = clipLines(ys, area.Ylo, area.Yhi)
	return HananGrid{Xs: xs, Ys: ys}
}

func clipLines(v []float64, lo, hi float64) []float64 {
	out := v[:0]
	for _, x := range v {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	return out
}

// Tiles returns all non-empty grid tiles in row-major order (y outer,
// x inner).
func (g HananGrid) Tiles() []Rect {
	tiles := make([]Rect, 0, (len(g.Xs)-1)*(len(g.Ys)-1))
	for j := 0; j+1 < len(g.Ys); j++ {
		for i := 0; i+1 < len(g.Xs); i++ {
			t := Rect{g.Xs[i], g.Ys[j], g.Xs[i+1], g.Ys[j+1]}
			if !t.Empty() {
				tiles = append(tiles, t)
			}
		}
	}
	return tiles
}

// NumTiles returns the number of tiles (including degenerate ones that
// Tiles would skip; for non-degenerate grids the two counts agree).
func (g HananGrid) NumTiles() int {
	nx, ny := len(g.Xs)-1, len(g.Ys)-1
	if nx < 0 {
		nx = 0
	}
	if ny < 0 {
		ny = 0
	}
	return nx * ny
}
