package geom

import (
	"math"
	"testing"
)

// FuzzRectAlgebra checks the rectangle-algebra identities the partitioner
// and region subsystem rely on, over arbitrary finite coordinates:
// intersection is contained in both operands, union contains both,
// Overlaps agrees with Intersect, and Subtract partitions the minuend
// exactly.
func FuzzRectAlgebra(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 2.0, 3.0, 8.0, 12.0)
	f.Add(-5.0, -5.0, 5.0, 5.0, -1.0, -1.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
	f.Add(0.0, 0.0, 8.0, 8.0, 2.0, 2.0, 6.0, 6.0) // s strictly inside r
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64) {
		for _, v := range []float64{ax0, ay0, ax1, ay1, bx0, by0, bx1, by1} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
		}
		r := NewRect(ax0, ay0, ax1, ay1)
		s := NewRect(bx0, by0, bx1, by1)

		is := r.Intersect(s)
		if !is.Empty() && (!r.ContainsRect(is) || !s.ContainsRect(is)) {
			t.Fatalf("Intersect %v of %v, %v escapes an operand", is, r, s)
		}
		u := r.Union(s)
		if (!r.Empty() && !u.ContainsRect(r)) || (!s.Empty() && !u.ContainsRect(s)) {
			t.Fatalf("Union %v of %v, %v misses an operand", u, r, s)
		}
		if r.Overlaps(s) != s.Overlaps(r) {
			t.Fatalf("Overlaps not symmetric for %v, %v", r, s)
		}
		// Overlaps <=> non-empty intersection only holds for non-degenerate
		// operands: a zero-width r can satisfy the strict cross-comparisons
		// while its intersection is empty.
		if !r.Empty() && !s.Empty() && r.Overlaps(s) != !is.Empty() {
			t.Fatalf("Overlaps=%v but Intersect=%v for %v, %v", r.Overlaps(s), is, r, s)
		}

		// Subtract partitions r: every piece is non-empty, inside r,
		// interior-disjoint from s, and the areas add back up.
		pieces := r.Subtract(s)
		sum := 0.0
		for _, p := range pieces {
			if p.Empty() {
				t.Fatalf("Subtract emitted empty piece %v for %v - %v", p, r, s)
			}
			if !r.ContainsRect(p) {
				t.Fatalf("piece %v escapes minuend %v", p, r)
			}
			if !p.Intersect(s).Empty() {
				t.Fatalf("piece %v overlaps subtrahend %v", p, s)
			}
			sum += p.Area()
		}
		// With overflowed (infinite) areas the difference is NaN and the
		// comparison is vacuously false, which is the right outcome: the
		// identity is only meaningful in finite arithmetic.
		want := r.Area() - is.Area()
		if math.Abs(sum-want) > 1e-9*math.Max(1, r.Area()) {
			t.Fatalf("Subtract areas sum to %g, want %g for %v - %v", sum, want, r, s)
		}
		// RectSet union area matches inclusion-exclusion for two rects.
		got := RectSet{r, s}.Area()
		ie := r.Area() + s.Area() - is.Area()
		if math.Abs(got-ie) > 1e-9*math.Max(1, ie) {
			t.Fatalf("RectSet area %g, want %g for %v, %v", got, ie, r, s)
		}
	})
}
