package serve

import (
	"math"
	"time"

	"fbplace/internal/netlist"
	"fbplace/internal/placer"
)

// Estimate is a job's predicted resource footprint, priced at admission
// from the instance size and the planned refinement schedule — before the
// job consumes anything. The scheduler uses it three ways: to refuse jobs
// that could never fit the process memory budget, to gate job starts so
// the sum of running footprints stays under that budget, and to quote
// Retry-After from the predicted wall time of the queue.
type Estimate struct {
	// Cells and Pins are the instance size, Levels the planned refinement
	// level count (placer.PlannedLevels).
	Cells, Pins, Levels int
	// PeakBytes is the predicted peak process-heap contribution.
	PeakBytes int64
	// Wall is the predicted single-worker wall time.
	Wall time.Duration
}

// Calibration, measured on gen.Chip instances (the LoadMix size ladder),
// single placement worker, linux/amd64:
//
//	cells   pins    levels  wall     steady live heap
//	300     1058    2       14ms     ~3.0 MB
//	1200    4017    3       171ms    ~3.4 MB
//	5000    15925   4       2.0s     ~6.0 MB
//	20000   62667   5       19.7s    ~19.1 MB
//
// Peak memory is modeled as base + per-cell + per-pin, sized about 3x the
// measured steady live heap: the QP/flow phases churn transient slices and
// the process must absorb the allocation spike between GC cycles, so the
// admission price is deliberately the conservative envelope, not the
// average. Wall time is a per-(cell x level) cost that grows with instance
// size (the conjugate-gradient solves are superlinear), interpolated
// between the measured points on a log(cells) axis.
const (
	estBaseBytes    = 4 << 20
	estBytesPerCell = 2048
	estBytesPerPin  = 256
)

// wallCalib holds the measured per-(cell x level) microsecond costs.
var wallCalib = []struct {
	cells float64
	us    float64
}{
	{300, 22.6},
	{1200, 47.4},
	{5000, 101.4},
	{20000, 197.0},
}

// usPerCellLevel interpolates the calibration table piecewise-linearly in
// log(cells), clamped to the measured range at both ends.
func usPerCellLevel(cells float64) float64 {
	if cells <= wallCalib[0].cells {
		return wallCalib[0].us
	}
	last := wallCalib[len(wallCalib)-1]
	if cells >= last.cells {
		return last.us
	}
	for i := 1; i < len(wallCalib); i++ {
		lo, hi := wallCalib[i-1], wallCalib[i]
		if cells > hi.cells {
			continue
		}
		t := (math.Log(cells) - math.Log(lo.cells)) / (math.Log(hi.cells) - math.Log(lo.cells))
		return lo.us + t*(hi.us-lo.us)
	}
	return last.us
}

// estimateJob prices one job from its loaded instance and compiled config.
func estimateJob(n *netlist.Netlist, cfg placer.Config) Estimate {
	cells := len(n.X)
	pins := 0
	for i := range n.Nets {
		pins += len(n.Nets[i].Pins)
	}
	levels := placer.PlannedLevels(n, cfg)
	wallUS := usPerCellLevel(float64(cells)) * float64(cells) * float64(levels)
	return Estimate{
		Cells:     cells,
		Pins:      pins,
		Levels:    levels,
		PeakBytes: estBaseBytes + estBytesPerCell*int64(cells) + estBytesPerPin*int64(pins),
		Wall:      time.Duration(wallUS) * time.Microsecond,
	}
}
