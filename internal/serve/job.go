package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fbplace/internal/chipio"
	"fbplace/internal/ckpt"
	"fbplace/internal/degrade"
	"fbplace/internal/gen"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/placer"
	"fbplace/internal/region"
)

// State is a job's lifecycle state. Preempted jobs go back to StateQueued
// (with their checkpoint retained), so the states a client observes are a
// simple submit -> queued -> running -> terminal progression, possibly
// cycling queued/running while the job is preempted and resumed.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is one job submission: exactly one instance source (an inline
// synthetic chip spec, a server-side FBPLACE v1 file reference, or the
// instance text itself) plus the placer knobs and scheduling attributes.
type Spec struct {
	// Chip generates a synthetic instance (deterministic per Seed).
	Chip *gen.ChipSpec `json:"chip,omitempty"`
	// File references an FBPLACE v1 instance file on the server, as a
	// relative path under the configured instance root (Options.FileRoot,
	// fbplaced -root). File references are rejected when no root is
	// configured.
	File string `json:"file,omitempty"`
	// Netlist is an inline FBPLACE v1 instance text.
	Netlist string `json:"netlist,omitempty"`
	// Knobs tune the placer for this job.
	Knobs Knobs `json:"knobs"`
	// Priority orders the queue; higher runs first and may preempt a
	// running lower-priority job. Default 0.
	Priority int `json:"priority"`
	// TimeoutMS bounds the job's wall clock from submission (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache and single-flight coalescing:
	// the job always runs its own placement and its result is not stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// Knobs is the JSON-friendly subset of placer.Config a job may set.
// Fields the scheduler owns (Workers, Obs, Checkpoint, Preempt) are
// deliberately absent. Zero values select the placer's documented
// defaults, and hash identically to them in the cache key.
type Knobs struct {
	// Mode is "fbp" (default) or "recursive".
	Mode string `json:"mode,omitempty"`
	// TargetDensity, ClusterRatio, MaxLevels, DetailPasses,
	// SkipLegalization, NoLocalQP and NoPairPass mirror placer.Config.
	// placer.Config.ParallelWindows is deliberately NOT a knob: its
	// results are scheduling-dependent, and the result cache and
	// single-flight coalescing are only sound for deterministic configs.
	TargetDensity    float64 `json:"target_density,omitempty"`
	ClusterRatio     float64 `json:"cluster_ratio,omitempty"`
	MaxLevels        int     `json:"max_levels,omitempty"`
	DetailPasses     int     `json:"detail_passes,omitempty"`
	SkipLegalization bool    `json:"skip_legalization,omitempty"`
	NoLocalQP        bool    `json:"no_local_qp,omitempty"`
	NoPairPass       bool    `json:"no_pair_pass,omitempty"`
}

// SpecError reports a structurally invalid job submission.
type SpecError struct {
	// Field names the offending Spec field, Reason the constraint.
	Field, Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("serve: invalid Spec.%s: %s", e.Field, e.Reason)
}

// config compiles the knobs into a canonical placer.Config over the
// instance's movebounds. The scheduler later injects its own plumbing
// (Workers, Obs, Checkpoint, Preempt) per attempt — none of which is part
// of the trajectory fingerprint.
func (k Knobs) config(mbs []region.Movebound) (placer.Config, error) {
	cfg := placer.Config{
		TargetDensity:    k.TargetDensity,
		ClusterRatio:     k.ClusterRatio,
		MaxLevels:        k.MaxLevels,
		DetailPasses:     k.DetailPasses,
		SkipLegalization: k.SkipLegalization,
		NoLocalQP:        k.NoLocalQP,
		NoPairPass:       k.NoPairPass,
		Movebounds:       mbs,
	}
	switch k.Mode {
	case "", "fbp":
		cfg.Mode = placer.ModeFBP
	case "recursive":
		cfg.Mode = placer.ModeRecursive
	default:
		return cfg, &SpecError{Field: "Knobs.Mode", Reason: fmt.Sprintf("unknown mode %q", k.Mode)}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("serve: %w", err)
	}
	return cfg, nil
}

// cacheKey identifies a placement trajectory: the PR 5 netlist and config
// fingerprints. Two submissions with equal keys produce bit-identical
// placements, which is what makes the result cache and single-flight
// coalescing sound.
type cacheKey struct {
	net, cfg uint64
}

func (k cacheKey) String() string { return fmt.Sprintf("%016x-%016x", k.net, k.cfg) }

// Result is a finished placement: final positions (bit-exact) plus the
// report fields clients care about. Results are immutable once built and
// may be shared between coalesced jobs and the LRU cache.
type Result struct {
	X, Y         []float64
	HPWL         float64
	Levels       int
	Violations   int
	Overlaps     int
	GlobalTime   time.Duration
	LegalTime    time.Duration
	Degradations []degrade.Event
	// Certified is true when the placement passed independent
	// certification (Options.Certify) before being cached or served; a
	// certify-stage entry in Degradations means it took a safe-mode repair
	// to get there.
	Certified bool
}

// Job is one submission's full lifecycle. All mutable fields are guarded
// by mu; the instance (n, mbs, cfg, key) is immutable after load.
type Job struct {
	// ID is the job identifier ("j00000001"), Seq its submission number.
	ID  string
	Seq uint64

	spec Spec
	n    *netlist.Netlist
	mbs  []region.Movebound
	cfg  placer.Config
	key  cacheKey
	// x0, y0 are the load-time positions, restored before any fresh
	// (non-resume) attempt so a retried run starts from the same state
	// the first attempt saw — the bit-identity contract depends on it.
	x0, y0 []float64
	// dir is the job's state directory ("" disables persistence).
	dir string
	// fileRoot is the instance root Spec.File resolved under, retained so
	// verification reloads see the same file.
	fileRoot string

	// est is the admission-time resource estimate (immutable after load).
	est Estimate

	ctx     context.Context
	cancel  context.CancelFunc
	preempt atomic.Bool
	// lastBeat is the heartbeat timestamp (UnixNano) the watchdog reads;
	// written by the obs.Progress hook on every span boundary.
	lastBeat atomic.Int64
	bc       *obs.Broadcast
	done     chan struct{}

	mu            sync.Mutex
	state         State              // guarded by mu
	errText       string             // guarded by mu
	errCode       string             // guarded by mu — machine-readable failure code
	userCanceled  bool               // guarded by mu
	resumable     bool               // guarded by mu
	preemptions   int                // guarded by mu
	levelsDone    int                // guarded by mu
	levelsPlanned int                // guarded by mu
	cached        bool               // guarded by mu
	coalesced     bool               // guarded by mu
	submitted     time.Time          // guarded by mu
	result        *Result            // guarded by mu
	attemptCtx    context.Context    // guarded by mu — current attempt
	attemptCancel context.CancelFunc // guarded by mu
	strikes       int                // guarded by mu — consecutive no-progress attempts
	wdRequeues    int                // guarded by mu — watchdog requeues so far
	ckptOn        bool               // guarded by mu — current attempt checkpoints
}

// Status is the JSON view of a job.
type Status struct {
	ID            string `json:"id"`
	State         State  `json:"state"`
	Priority      int    `json:"priority"`
	Preemptions   int    `json:"preemptions"`
	LevelsDone    int    `json:"levels_done"`
	LevelsPlanned int    `json:"levels_planned,omitempty"`
	Cached        bool   `json:"cached,omitempty"`
	Coalesced     bool   `json:"coalesced,omitempty"`
	Error         string `json:"error,omitempty"`
	// ErrorCode is the machine-readable failure code when one applies
	// (currently "result_uncertified": the placement failed independent
	// certification and the safe-mode retry did too).
	ErrorCode string `json:"error_code,omitempty"`
	// Certified is true when the job's result passed independent
	// certification (Options.Certify) — including results served from the
	// cache, which only ever holds certified placements.
	Certified     bool    `json:"certified,omitempty"`
	HPWL          float64 `json:"hpwl,omitempty"`
	SubmittedUnix int64   `json:"submitted_unix,omitempty"`
	// Requeues counts watchdog requeues, Strikes the consecutive
	// no-progress attempts so far; EstPeakBytes/EstWallMS are the
	// admission-time resource estimate.
	Requeues     int   `json:"watchdog_requeues,omitempty"`
	Strikes      int   `json:"watchdog_strikes,omitempty"`
	EstPeakBytes int64 `json:"est_peak_bytes,omitempty"`
	EstWallMS    int64 `json:"est_wall_ms,omitempty"`
}

// Status returns a consistent snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:            j.ID,
		State:         j.state,
		Priority:      j.spec.Priority,
		Preemptions:   j.preemptions,
		LevelsDone:    j.levelsDone,
		LevelsPlanned: j.levelsPlanned,
		Cached:        j.cached,
		Coalesced:     j.coalesced,
		Error:         j.errText,
		ErrorCode:     j.errCode,
		SubmittedUnix: j.submitted.Unix(),
		Requeues:      j.wdRequeues,
		Strikes:       j.strikes,
		EstPeakBytes:  j.est.PeakBytes,
		EstWallMS:     j.est.Wall.Milliseconds(),
	}
	if j.result != nil {
		st.HPWL = j.result.HPWL
		st.Certified = j.result.Certified
	}
	return st
}

// ErrorCode returns the job's machine-readable failure code ("" when none
// applies).
func (j *Job) ErrorCode() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errCode
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Priority returns the job's submission priority.
func (j *Job) Priority() int { return j.spec.Priority }

// Preemptions returns how many times the job was preempted so far.
func (j *Job) Preemptions() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.preemptions
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished placement, or an error while the job is not
// done (including recovered historical jobs whose result predates this
// process).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone && j.result != nil:
		return j.result, nil
	case j.state == StateDone:
		return nil, fmt.Errorf("serve: job %s finished before this process started; its result was not retained", j.ID)
	case j.state.Terminal():
		return nil, fmt.Errorf("serve: job %s %s: %s", j.ID, j.state, j.errText)
	default:
		return nil, fmt.Errorf("serve: job %s is %s", j.ID, j.state)
	}
}

// Events returns the replay window and live event channel of the job's
// progress stream (obs spans/counters plus "state" transition events).
func (j *Job) Events(buf int) ([]obs.Event, <-chan obs.Event, func()) {
	return j.bc.Subscribe(buf)
}

// setState transitions the job, emits a "state" event into the progress
// stream, and closes the stream and done channel on terminal states. The
// caller must not hold j.mu.
func (j *Job) setState(st State) {
	j.mu.Lock()
	prev := j.state
	j.state = st
	j.mu.Unlock()
	if prev == st {
		return
	}
	j.bc.Emit(obs.Event{Type: "state", Name: string(st)})
	if st.Terminal() {
		// Release the job's context: a job admitted with TimeoutMS owns a
		// deadline timer that would otherwise stay armed until the deadline
		// fires, long after the job finished.
		if j.cancel != nil {
			j.cancel()
		}
		j.bc.Close()
		close(j.done)
	}
}

// noteLevel records one completed partitioning level for progress
// reporting. Completing a level is real forward progress, so it clears
// the watchdog's strike counter: only *consecutive* no-progress attempts
// accumulate toward a terminal JobStuck — a slow job that keeps
// advancing never does.
func (j *Job) noteLevel() {
	j.mu.Lock()
	j.levelsDone++
	j.strikes = 0
	j.mu.Unlock()
}

// beat refreshes the watchdog heartbeat (called from the obs.Progress
// hook at every span boundary of the running attempt).
func (j *Job) beat() { j.lastBeat.Store(time.Now().UnixNano()) }

// beginAttempt installs a fresh per-attempt context under the job's own
// (so user cancel and deadline still propagate) and primes the
// heartbeat. The returned cancel must be deferred by the worker; the
// watchdog calls it through the job to strike a stalled attempt.
func (j *Job) beginAttempt() (context.Context, context.CancelFunc) {
	actx, acancel := context.WithCancel(j.ctx)
	j.beat()
	j.mu.Lock()
	j.attemptCtx = actx
	j.attemptCancel = acancel
	j.mu.Unlock()
	return actx, acancel
}

// setCkptEnabled records whether the current attempt checkpoints (false
// under low-disk degradation: such an attempt cannot be preempted).
func (j *Job) setCkptEnabled(on bool) {
	j.mu.Lock()
	j.ckptOn = on
	j.mu.Unlock()
}

// ckptEnabled reports whether the current attempt checkpoints.
func (j *Job) ckptEnabled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckptOn
}

// Requeues returns how many times the watchdog requeued the job.
func (j *Job) Requeues() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wdRequeues
}

// Estimate returns the job's admission-time resource estimate.
func (j *Job) Estimate() Estimate { return j.est }

// ckptDir is the per-job checkpoint directory preemption snapshots into.
func (j *Job) ckptDir() string { return filepath.Join(j.dir, "ckpt") }

// jobSink forwards a placement attempt's obs events into the job's
// broadcast and mines them for progress (completed "level" spans).
type jobSink struct{ j *Job }

func (s jobSink) Emit(e obs.Event) {
	if e.Type == obs.EventSpan && e.Name == "level" {
		s.j.noteLevel()
	}
	s.j.bc.Emit(e)
}

// resolveFile confines a Spec.File reference to the instance root: the
// reference must be a local (relative, non-escaping) path and an empty
// root disables file references entirely, so an HTTP client can never
// make the daemon open an arbitrary server path.
func resolveFile(root, name string) (string, error) {
	if root == "" {
		return "", &SpecError{Field: "File", Reason: "file references are disabled (no instance root configured)"}
	}
	if !filepath.IsLocal(filepath.Clean(filepath.FromSlash(name))) {
		return "", &SpecError{Field: "File", Reason: fmt.Sprintf("%q escapes the instance root", name)}
	}
	return filepath.Join(root, filepath.FromSlash(name)), nil
}

// loadInstance resolves the spec's instance source into a netlist and its
// movebounds. fileRoot confines Spec.File references (see resolveFile).
func loadInstance(spec *Spec, fileRoot string) (*netlist.Netlist, []region.Movebound, error) {
	sources := 0
	if spec.Chip != nil {
		sources++
	}
	if spec.File != "" {
		sources++
	}
	if spec.Netlist != "" {
		sources++
	}
	if sources != 1 {
		return nil, nil, &SpecError{Field: "Chip/File/Netlist", Reason: fmt.Sprintf("exactly one instance source required, got %d", sources)}
	}
	switch {
	case spec.Chip != nil:
		inst, err := gen.Chip(*spec.Chip)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: %w", err)
		}
		return inst.N, inst.Movebounds, nil
	case spec.File != "":
		path, err := resolveFile(fileRoot, spec.File)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: %w", err)
		}
		defer f.Close()
		n, mbs, err := chipio.Read(f)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: %s: %w", spec.File, err)
		}
		return n, mbs, nil
	default:
		n, mbs, err := chipio.Read(strings.NewReader(spec.Netlist))
		if err != nil {
			return nil, nil, fmt.Errorf("serve: inline netlist: %w", err)
		}
		return n, mbs, nil
	}
}

// newJob loads the instance, compiles the config and computes the cache
// key. The context (deadline, cancel) is installed by the scheduler.
func newJob(id string, seq uint64, spec Spec, retain int, fileRoot string) (*Job, error) {
	n, mbs, err := loadInstance(&spec, fileRoot)
	if err != nil {
		return nil, err
	}
	cfg, err := spec.Knobs.config(mbs)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:       id,
		Seq:      seq,
		spec:     spec,
		fileRoot: fileRoot,
		n:        n,
		mbs:      mbs,
		cfg:      cfg,
		x0:       append([]float64(nil), n.X...),
		y0:       append([]float64(nil), n.Y...),
		bc:       obs.NewBroadcast(retain),
		done:     make(chan struct{}),
		key: cacheKey{
			net: ckpt.Fingerprint(n),
			cfg: placer.ConfigFingerprint(&cfg),
		},
		est:       estimateJob(n, cfg),
		state:     StateQueued,
		submitted: time.Now(),
	}
	return j, nil
}

// restoreStart rewinds the job's netlist to its load-time positions, so a
// fresh (non-resume) attempt is bit-identical to a first attempt.
func (j *Job) restoreStart() {
	copy(j.n.X, j.x0)
	copy(j.n.Y, j.y0)
}
