package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
)

// wdOptions is a scheduler tuned for watchdog tests: one worker, a fast
// governor, and a no-progress window comfortably above the normal
// span-to-span heartbeat cadence (so only injected stalls strike, even
// under -race slowdown).
func wdOptions(strikes int) Options {
	return Options{
		Workers:      1,
		NoProgress:   400 * time.Millisecond,
		StuckStrikes: strikes,
		GovernTick:   25 * time.Millisecond,
	}
}

// TestWatchdogRequeuesStalledJob stalls one attempt at its first level
// boundary (the serve.stall site, After:1 skips the attempt-start hit).
// The watchdog must strike it, requeue it through the checkpoint path,
// and the resumed run must finish bit-identical to an uninterrupted one.
func TestWatchdogRequeuesStalledJob(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("serve.stall", faultsim.Schedule{After: 1, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, wdOptions(3))
	j, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 700, Seed: 51}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: %s (%s), want done", j.State(), j.Status().Error)
	}
	if j.Requeues() != 1 {
		t.Fatalf("watchdog requeues: %d, want 1", j.Requeues())
	}
	c := s.Obs().Counters()
	if c["serve.stalls"] != 1 || c["serve.watchdog.strikes"] != 1 || c["serve.watchdog.requeues"] != 1 {
		t.Fatalf("counters: stalls=%g strikes=%g requeues=%g, want 1/1/1",
			c["serve.stalls"], c["serve.watchdog.strikes"], c["serve.watchdog.requeues"])
	}
	// The stall hit the boundary after a completed level, so a snapshot
	// existed and the second attempt resumed rather than restarted.
	if c["serve.resumes"] != 1 {
		t.Fatalf("serve.resumes=%g, want 1 (requeue must resume from the level snapshot)", c["serve.resumes"])
	}
	if ok, err := verifyDirect(context.Background(), j); err != nil || !ok {
		t.Fatalf("watchdog-requeued job differs from a direct run (ok=%v err=%v)", ok, err)
	}
	// The strike is in the degradation log for the operator.
	found := false
	for _, d := range s.Stats().Governance.Degradations {
		if strings.Contains(d, "watchdog") {
			found = true
		}
	}
	if !found {
		t.Fatal("watchdog strike missing from the governance degradation log")
	}
}

// TestWatchdogStuckAfterStrikes wedges every attempt before it completes a
// level (the attempt-start stall hit fires on every attempt): no level
// ever completes, so strikes accumulate — the job must fail terminally
// with JobStuckError after exactly StuckStrikes attempts.
func TestWatchdogStuckAfterStrikes(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("serve.stall", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, wdOptions(2))
	j, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 300, Seed: 52}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateFailed {
		t.Fatalf("state: %s, want failed", j.State())
	}
	st := j.Status()
	if !errorTextIsStuck(st.Error) {
		t.Fatalf("terminal error %q does not carry the JobStuck sentinel", st.Error)
	}
	if st.Strikes != 2 {
		t.Fatalf("strikes: %d, want 2", st.Strikes)
	}
	c := s.Obs().Counters()
	if c["serve.watchdog.stuck"] != 1 || c["serve.watchdog.strikes"] != 2 {
		t.Fatalf("counters: stuck=%g strikes=%g, want 1/2", c["serve.watchdog.stuck"], c["serve.watchdog.strikes"])
	}
	// The structured error round-trips through errors.Is.
	stuckErr := &JobStuckError{ID: j.ID, Strikes: 2, Window: s.opt.NoProgress}
	if !errors.Is(stuckErr, ErrJobStuck) {
		t.Fatal("JobStuckError does not unwrap to ErrJobStuck")
	}
}

// TestWatchdogSlowJobNeverStuck is the counter-guarantee: a job that
// stalls at every level boundary but still completes one level per
// attempt keeps resetting its strike counter — it must finish done (with
// several requeues), never JobStuck, however many windows it burns.
func TestWatchdogSlowJobNeverStuck(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	// After:1 skips the attempt-start hit of the first attempt; every
	// later hit (boundary polls and subsequent attempt starts) would
	// stall, except that resumed attempts re-prime the counter sequence:
	// limit the fires so the test bounds its own wall clock.
	if err := faultsim.Arm("serve.stall", faultsim.Schedule{After: 1, Every: 2, Limit: 2}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, wdOptions(2))
	j, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 700, Seed: 53}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: %s (%s), want done — advancing jobs must never go stuck", j.State(), j.Status().Error)
	}
	if j.Requeues() == 0 {
		t.Fatal("expected at least one watchdog requeue")
	}
	if s.Obs().Counters()["serve.watchdog.stuck"] != 0 {
		t.Fatal("slow-but-advancing job was declared stuck")
	}
	if ok, err := verifyDirect(context.Background(), j); err != nil || !ok {
		t.Fatalf("requeued job differs from a direct run (ok=%v err=%v)", ok, err)
	}
}

// TestWatchdogRequeueWithoutSnapshot pairs a boundary stall with failing
// checkpoint writes: the requeued attempt has no snapshot to resume from,
// restarts fresh, and still produces the bit-identical result (the
// determinism contract), with the fallback recorded.
func TestWatchdogRequeueWithoutSnapshot(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("serve.stall", faultsim.Schedule{After: 1, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if err := faultsim.Arm("ckpt.write", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, wdOptions(3))
	j, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 700, Seed: 54}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: %s (%s), want done", j.State(), j.Status().Error)
	}
	if j.Requeues() != 1 {
		t.Fatalf("watchdog requeues: %d, want 1", j.Requeues())
	}
	if s.Obs().Counters()["serve.resumes"] != 0 {
		t.Fatal("no snapshot could have been written, yet a resume was counted")
	}
	if ok, err := verifyDirect(context.Background(), j); err != nil || !ok {
		t.Fatalf("fresh-restarted job differs from a direct run (ok=%v err=%v)", ok, err)
	}
}
