package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := testSched(t, Options{Workers: 1})
	ts := httptest.NewServer(NewServer(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submitHTTP(t *testing.T, base, body string) Status {
	t.Helper()
	resp, data := postJSON(t, base+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit response: %v: %s", err, data)
	}
	return st
}

// waitState polls the scheduler directly until the job reaches want (or a
// terminal state, which fails the wait if it is not the wanted one).
func waitState(t *testing.T, s *Scheduler, id string, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s unknown while waiting for %s", id, want)
		}
		st := j.State()
		if st == want {
			return
		}
		if st.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s", id, st, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not %s within %v", id, want, timeout)
}

func pollDone(t *testing.T, base, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, data := getBody(t, base+"/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: %d: %s", id, resp.StatusCode, data)
		}
		var st Status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %v", id, timeout)
	return Status{}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := testServer(t)
	st := submitHTTP(t, ts.URL, `{"chip":{"NumCells":500,"Seed":2}}`)
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit status: %+v", st)
	}
	final := pollDone(t, ts.URL, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("final state: %s (%s)", final.State, final.Error)
	}

	resp, data := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", resp.StatusCode, data)
	}
	var res resultJSON
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.X) == 0 || res.HPWL <= 0 || len(res.X) != len(res.Y) {
		t.Fatalf("implausible result: HPWL %g, %d/%d positions", res.HPWL, len(res.X), len(res.Y))
	}

	// Hex dump: one "xbits ybits" line per cell, parseable and complete.
	resp, hex := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=hex")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hex result: %d", resp.StatusCode)
	}
	lines := bytes.Count(hex, []byte("\n"))
	if lines != len(res.X) {
		t.Fatalf("hex dump: %d lines for %d cells", lines, len(res.X))
	}

	// SVG render of the finished placement.
	resp, svg := getBody(t, ts.URL+"/jobs/"+st.ID+"/svg")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(svg, []byte("<svg")) {
		t.Fatalf("svg: %d, body starts %.40q", resp.StatusCode, svg)
	}

	// Job listing includes it.
	resp, data = getBody(t, ts.URL+"/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var list []Status
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
}

func TestHTTPEventsJSONL(t *testing.T) {
	_, ts := testServer(t)
	st := submitHTTP(t, ts.URL, `{"chip":{"NumCells":500,"Seed":3}}`)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	// The stream ends when the job reaches a terminal state; collect it
	// all and check the event shapes.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var states []string
	levels := 0
	for sc.Scan() {
		var e struct {
			Type string `json:"type"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if e.Type == "state" {
			states = append(states, e.Name)
		}
		if e.Type == "span" && e.Name == "level" {
			levels++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != string(StateDone) {
		t.Fatalf("state events: %v, want trailing done", states)
	}
	if levels == 0 {
		t.Fatal("no per-level progress events streamed")
	}
}

func TestHTTPEventsSSE(t *testing.T) {
	_, ts := testServer(t)
	st := submitHTTP(t, ts.URL, `{"chip":{"NumCells":300,"Seed":4}}`)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type: %s", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("event: state\n")) || !bytes.Contains(body, []byte("data: {")) {
		t.Fatalf("not SSE-framed: %.120q", body)
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	_, ts := testServer(t)
	// Occupy the worker, then cancel a queued job over HTTP.
	filler := submitHTTP(t, ts.URL, `{"chip":{"NumCells":2000,"Seed":5},"priority":9,"knobs":{"max_levels":4}}`)
	queued := submitHTTP(t, ts.URL, `{"chip":{"NumCells":400,"Seed":6}}`)
	resp, data := postJSON(t, ts.URL+"/jobs/"+queued.ID+"/cancel", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d: %s", resp.StatusCode, data)
	}
	if st := pollDone(t, ts.URL, queued.ID, 10*time.Second); st.State != StateCanceled {
		t.Fatalf("canceled job state: %s", st.State)
	}
	// Result of a canceled job: 409, not 200/202.
	resp, _ = getBody(t, ts.URL+"/jobs/"+queued.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled result: %d, want 409", resp.StatusCode)
	}
	// Unknown job: 404. Bad spec: 400.
	if resp, _ := getBody(t, ts.URL+"/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/jobs", `{"knobs":{"mode":"annealing"},"chip":{"NumCells":10}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/jobs", `{"bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}
	pollDone(t, ts.URL, filler.ID, 120*time.Second)
}

func TestHTTPStatsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	st := submitHTTP(t, ts.URL, `{"chip":{"NumCells":300,"Seed":7}}`)
	pollDone(t, ts.URL, st.ID, 60*time.Second)
	// Duplicate submission must show up as a cache hit in /stats.
	dup := submitHTTP(t, ts.URL, `{"chip":{"NumCells":300,"Seed":7}}`)
	if fin := pollDone(t, ts.URL, dup.ID, 10*time.Second); !fin.Cached {
		t.Fatalf("duplicate not served from cache: %+v", fin)
	}
	resp, data := getBody(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters["serve.cache.hits"] != 1 || stats.Counters["serve.placements"] != 1 {
		t.Fatalf("stats counters: hits=%g placements=%g, want 1 and 1 (dup served from cache)",
			stats.Counters["serve.cache.hits"], stats.Counters["serve.placements"])
	}
	if stats.Jobs[string(StateDone)] != 2 || stats.CacheEntries != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if resp, body := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !bytes.HasPrefix(body, []byte("ok")) {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestHTTPResultBeforeDone(t *testing.T) {
	_, ts := testServer(t)
	filler := submitHTTP(t, ts.URL, `{"chip":{"NumCells":2000,"Seed":8},"knobs":{"max_levels":4}}`)
	resp, data := getBody(t, ts.URL+"/jobs/"+filler.ID+"/result")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("early result fetch: %d (%s), want 202 retry-later", resp.StatusCode, data)
	}
	ae := decodeEnvelope(t, data)
	if ae.Code != "pending" || ae.Reason == "" || ae.RetryAfterS <= 0 {
		t.Fatalf("202 envelope: %+v", ae)
	}
	assertRetryShape(t, resp, ae.RetryAfterS)
	pollDone(t, ts.URL, filler.ID, 120*time.Second)
}

// decodeEnvelope asserts the one structured error shape every handler
// returns: {code, reason, retry_after_s?} and nothing else.
func decodeEnvelope(t *testing.T, data []byte) apiError {
	t.Helper()
	var ae apiError
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ae); err != nil {
		t.Fatalf("error envelope: %v %q", err, data)
	}
	if ae.Code == "" || ae.Reason == "" {
		t.Fatalf("envelope missing code or reason: %q", data)
	}
	return ae
}

// assertRetryShape pins the wire contract for every retry hint: the
// Retry-After header is a whole number of seconds, at least 1, and the
// JSON body's retry_after_s quotes exactly the same figure — a client
// reading either must see one retry window, not two.
func assertRetryShape(t *testing.T, resp *http.Response, bodyS float64) {
	t.Helper()
	h := resp.Header.Get("Retry-After")
	if h == "" {
		t.Fatalf("%d response without a Retry-After header", resp.StatusCode)
	}
	secs, err := strconv.ParseInt(h, 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After header %q, want a whole second count >= 1", h)
	}
	if bodyS != float64(secs) {
		t.Fatalf("body retry_after_s %v != Retry-After header %q", bodyS, h)
	}
}

// Retry hints always round UP to whole seconds: rounding down would
// invite a client back inside the window it was just told to wait out,
// and a sub-second hint must become 1, never a 0 that drops the header.
func TestRetryAfterRounding(t *testing.T) {
	for _, c := range []struct {
		in   time.Duration
		want int64
	}{
		{-time.Second, 0},
		{0, 0},
		{50 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
	} {
		if got := retryAfterSeconds(c.in); got != c.want {
			t.Fatalf("retryAfterSeconds(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	rec := httptest.NewRecorder()
	writeErrorRetry(rec, http.StatusTooManyRequests, "queue_full", errors.New("full"), 50*time.Millisecond)
	resp := rec.Result()
	ae := decodeEnvelope(t, rec.Body.Bytes())
	assertRetryShape(t, resp, ae.RetryAfterS)
	if h := resp.Header.Get("Retry-After"); h != "1" {
		t.Fatalf("sub-second hint: header %q, want \"1\"", h)
	}
}

// TestHTTPErrorEnvelope walks every error-producing handler and checks the
// single structured envelope shape (and its stable codes) on each.
func TestHTTPErrorEnvelope(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name, method, path, body string
		status                   int
		code                     string
	}{
		{"unknown job", "GET", "/jobs/nope", "", http.StatusNotFound, "unknown_job"},
		{"unknown job result", "GET", "/jobs/nope/result", "", http.StatusNotFound, "unknown_job"},
		{"unknown job svg", "GET", "/jobs/nope/svg", "", http.StatusNotFound, "unknown_job"},
		{"unknown job cancel", "POST", "/jobs/nope/cancel", "", http.StatusNotFound, "unknown_job"},
		{"bad spec field", "POST", "/jobs", `{"bogus_field":1}`, http.StatusBadRequest, "bad_spec"},
		{"bad spec mode", "POST", "/jobs", `{"knobs":{"mode":"annealing"},"chip":{"NumCells":10}}`, http.StatusBadRequest, "bad_spec"},
	}
	for _, tc := range cases {
		var resp *http.Response
		var data []byte
		if tc.method == "GET" {
			resp, data = getBody(t, ts.URL+tc.path)
		} else {
			resp, data = postJSON(t, ts.URL+tc.path, tc.body)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		if ae := decodeEnvelope(t, data); ae.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, ae.Code, tc.code)
		}
	}
}

// TestHTTPReadyzAndAdmission saturates a tiny queue over HTTP: readyz
// flips to 503 with a reason and Retry-After, and the refused submission
// carries the queue_full envelope. healthz stays a pure liveness 200
// throughout.
func TestHTTPReadyzAndAdmission(t *testing.T) {
	s := testSched(t, Options{Workers: 1, QueueLimit: 1, CacheEntries: -1})
	ts := httptest.NewServer(NewServer(s))
	t.Cleanup(ts.Close)

	if resp, data := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("idle readyz: %d %s", resp.StatusCode, data)
	}

	// One running + one queued fills the QueueLimit=1 queue. Wait for the
	// worker to claim the first job so the second lands in the queue, not
	// in a rejection.
	running := submitHTTP(t, ts.URL, `{"chip":{"NumCells":2000,"Seed":9},"knobs":{"max_levels":4}}`)
	waitState(t, s, running.ID, StateRunning, 30*time.Second)
	queued := submitHTTP(t, ts.URL, `{"chip":{"NumCells":2000,"Seed":10},"knobs":{"max_levels":4}}`)

	resp, data := postJSON(t, ts.URL+"/jobs", `{"chip":{"NumCells":400,"Seed":11}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d (%s), want 429", resp.StatusCode, data)
	}
	ae := decodeEnvelope(t, data)
	if ae.Code != "queue_full" || ae.RetryAfterS <= 0 {
		t.Fatalf("queue_full envelope: %+v", ae)
	}
	assertRetryShape(t, resp, ae.RetryAfterS)

	resp, data = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz: %d %s, want 503", resp.StatusCode, data)
	}
	var rd Readiness
	if err := json.Unmarshal(data, &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || rd.Reason != "queue_saturated" {
		t.Fatalf("readiness: %+v", rd)
	}
	assertRetryShape(t, resp, rd.RetryAfterS)

	// Liveness never degrades with load.
	if resp, body := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !bytes.HasPrefix(body, []byte("ok")) {
		t.Fatalf("healthz under saturation: %d %q", resp.StatusCode, body)
	}

	// /stats carries the governance snapshot the operator steers by.
	resp, data = getBody(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Governance.QueueLimit != 1 || stats.Governance.QueueDepth != 1 ||
		stats.Governance.MemBudgetBytes == 0 || stats.Governance.BrownoutMode == "" {
		t.Fatalf("governance stats: %+v", stats.Governance)
	}

	pollDone(t, ts.URL, running.ID, 120*time.Second)
	pollDone(t, ts.URL, queued.ID, 120*time.Second)
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain readyz: %d, want 200", resp.StatusCode)
	}
}
