package serve

// jobQueue is a max-heap of queued jobs ordered by (priority desc,
// submission sequence asc): among equal priorities the oldest submission
// runs first, and a preempted job keeps its original sequence number so a
// resume does not jump the line it already waited in.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].Seq < q[j].Seq
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push and Pop implement container/heap.
func (q *jobQueue) Push(x any) { *q = append(*q, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}
