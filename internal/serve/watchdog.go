// The stuck-job watchdog. Every running attempt carries a heartbeat
// (Job.lastBeat) driven by the obs.Progress hook: span starts/ends at
// level, wave and solve granularity, plus the explicit post-checkpoint
// beat. The governor scans running jobs each tick; an attempt whose
// heartbeat is older than NoProgress earns a strike and has its
// per-attempt context canceled. The worker then requeues the job through
// the checkpoint path — resuming is bit-identical by the PR 5 oracle —
// or, after StuckStrikes consecutive no-progress attempts, fails it
// terminally with JobStuckError. A strike counter resets whenever the
// job completes a level, so a merely slow job that keeps advancing never
// accumulates its way to a terminal failure.
package serve

import (
	"container/heap"
	"fmt"
	"time"

	"fbplace/internal/faultsim"
)

// stallFault freezes a running placement at a level boundary until its
// attempt is canceled — the deterministic stand-in for a wedged solver,
// used by the watchdog tests and the chaos soak.
var stallFault = faultsim.Register("serve.stall",
	"a running placement stalls at a level boundary until its attempt is canceled")

// watchdogScan strikes every running job whose heartbeat has gone stale.
// Attempts already canceled (by a previous strike, a user cancel or
// shutdown) are skipped so one stall is one strike, not one per tick.
func (s *Scheduler) watchdogScan() {
	if s.opt.NoProgress <= 0 {
		return
	}
	s.mu.Lock()
	running := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		running = append(running, j)
	}
	s.mu.Unlock()
	now := time.Now()
	for _, j := range running {
		j.mu.Lock()
		cancel := j.attemptCancel
		canceled := j.attemptCtx != nil && j.attemptCtx.Err() != nil
		j.mu.Unlock()
		if cancel == nil || canceled {
			continue
		}
		last := time.Unix(0, j.lastBeat.Load())
		if now.Sub(last) < s.opt.NoProgress {
			continue
		}
		j.mu.Lock()
		j.strikes++
		k := j.strikes
		j.mu.Unlock()
		s.rec.Count("serve.watchdog.strikes", 1)
		s.dl.Add("watchdog", "preempt-requeue",
			fmt.Sprintf("%s: no progress for %v (strike %d of %d)",
				j.ID, now.Sub(last).Round(time.Millisecond), k, s.opt.StuckStrikes))
		cancel()
	}
}

// watchdogRequeue finishes an attempt the watchdog canceled: the job goes
// back in the queue, resumable from its last level-boundary snapshot when
// one exists (the resumed result is bit-identical; without a snapshot the
// retry restarts fresh, which is the same trajectory by determinism). At
// StuckStrikes consecutive no-progress attempts the job fails terminally
// instead — something environmental has it wedged and retrying burns a
// worker forever.
func (s *Scheduler) watchdogRequeue(j *Job) {
	j.preempt.Store(false)
	j.mu.Lock()
	strikes := j.strikes
	j.resumable = hasCheckpoint(j.ckptDir())
	j.wdRequeues++
	j.mu.Unlock()
	if strikes >= s.opt.StuckStrikes {
		s.release(j)
		s.rec.Count("serve.watchdog.stuck", 1)
		s.failFlight(j, (&JobStuckError{ID: j.ID, Strikes: strikes, Window: s.opt.NoProgress}).Error())
		return
	}
	s.rec.Count("serve.watchdog.requeues", 1)
	s.mu.Lock()
	s.releaseRunningLocked(j)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	s.updateGaugesLocked()
	s.mu.Unlock()
	j.setState(StateQueued)
	s.persist(j)
}
