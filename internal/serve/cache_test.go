package serve

import (
	"sync"
	"testing"
)

func k(i uint64) cacheKey { return cacheKey{net: i, cfg: i * 31} }

func r(hpwl float64) *Result { return &Result{HPWL: hpwl} }

func TestCacheHitMiss(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(k(1), r(10))
	res, ok := c.get(k(1))
	if !ok || res.HPWL != 10 {
		t.Fatalf("get after put: ok=%v res=%v", ok, res)
	}
	if c.len() != 1 {
		t.Fatalf("len: got %d, want 1", c.len())
	}
}

func TestCacheEvictionOrder(t *testing.T) {
	c := newResultCache(3)
	c.put(k(1), r(1))
	c.put(k(2), r(2))
	c.put(k(3), r(3))
	// Touch 1 so 2 becomes the least recently used.
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("lost key 1")
	}
	if ev := c.put(k(4), r(4)); ev != 1 {
		t.Fatalf("eviction count: got %d, want 1", ev)
	}
	if _, ok := c.get(k(2)); ok {
		t.Fatal("key 2 should have been evicted (least recently used)")
	}
	for _, key := range []cacheKey{k(1), k(3), k(4)} {
		if _, ok := c.get(key); !ok {
			t.Fatalf("key %v should have survived", key)
		}
	}
}

func TestCacheUpdateMovesToFront(t *testing.T) {
	c := newResultCache(2)
	c.put(k(1), r(1))
	c.put(k(2), r(2))
	// Re-putting key 1 must refresh both its value and its recency.
	if ev := c.put(k(1), r(11)); ev != 0 {
		t.Fatalf("re-put evicted %d entries", ev)
	}
	c.put(k(3), r(3))
	if _, ok := c.get(k(2)); ok {
		t.Fatal("key 2 should have been evicted, not re-put key 1")
	}
	res, ok := c.get(k(1))
	if !ok || res.HPWL != 11 {
		t.Fatalf("updated entry: ok=%v res=%v, want HPWL 11", ok, res)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	if ev := c.put(k(1), r(1)); ev != 0 {
		t.Fatalf("disabled cache evicted %d", ev)
	}
	if _, ok := c.get(k(1)); ok {
		t.Fatal("disabled cache reported a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache len %d", c.len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k(uint64(i % 16))
				c.put(key, r(float64(i)))
				c.get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Fatalf("cache overflowed its capacity: %d > 8", c.len())
	}
}
