package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
	"fbplace/internal/placer"
)

// safeReference re-places the spec's instance directly with the safe-mode
// engine set — the trajectory every certify repair re-runs — and returns
// the positions for bit-exact comparison with a repaired served result.
func safeReference(t *testing.T, cells int, seed int64) ([]float64, []float64) {
	t.Helper()
	inst, err := gen.Chip(gen.ChipSpec{NumCells: cells, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Knobs{}.config(inst.Movebounds)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	cfg.SafeMode = true
	cfg.NoPairPass = true
	if _, err := placer.Place(inst.N, cfg); err != nil {
		t.Fatal(err)
	}
	return inst.N.X, inst.N.Y
}

func wantBitIdentical(t *testing.T, res *Result, wantX, wantY []float64) {
	t.Helper()
	if len(res.X) != len(wantX) {
		t.Fatalf("position count: got %d, want %d", len(res.X), len(wantX))
	}
	for i := range wantX {
		if math.Float64bits(res.X[i]) != math.Float64bits(wantX[i]) ||
			math.Float64bits(res.Y[i]) != math.Float64bits(wantY[i]) {
			t.Fatalf("cell %d: served (%x,%x) != safe-mode reference (%x,%x)",
				i, math.Float64bits(res.X[i]), math.Float64bits(res.Y[i]),
				math.Float64bits(wantX[i]), math.Float64bits(wantY[i]))
		}
	}
}

func hasCertifyDegradation(res *Result, fallback string) bool {
	for _, d := range res.Degradations {
		if d.Stage == "certify" && d.Fallback == fallback {
			return true
		}
	}
	return false
}

// quarantineDir returns the job's quarantine directory path.
func quarantineDir(s *Scheduler, id string) string {
	return filepath.Join(s.StateDir(), "jobs", id, "quarantine")
}

func wantQuarantine(t *testing.T, s *Scheduler, id string) {
	t.Helper()
	dir := quarantineDir(s, id)
	for _, name := range []string{"certify.txt", "positions.hex"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("quarantine %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("quarantine %s is empty", name)
		}
	}
}

// TestCertifyRepair arms one silent corruption: the first attempt's
// placement is bit-flipped between realization and legalization, the
// placer's internal certificate catches it and repairs in safe mode, and
// the service serves a certified result bit-identical to a direct
// safe-mode run — with the repair on record and nothing corrupt cached.
func TestCertifyRepair(t *testing.T) {
	const cells, seed = 700, 5
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Cleanup(func() { leakcheck.Check(t) })
			t.Cleanup(faultsim.Reset)
			if err := faultsim.Arm("certify.corrupt", faultsim.Schedule{Limit: 1}); err != nil {
				t.Fatal(err)
			}
			s := testSched(t, Options{Workers: workers, Certify: true})
			j, err := s.Submit(chipSpec(cells, seed))
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, j, 120*time.Second)
			if j.State() != StateDone {
				t.Fatalf("state %s (%s)", j.State(), j.Status().Error)
			}
			res := mustResult(t, j)
			if !res.Certified {
				t.Fatal("repaired result is not certified")
			}
			if !j.Status().Certified {
				t.Fatal("Status does not report the certification")
			}
			if !hasCertifyDegradation(res, "safe-mode") {
				t.Fatalf("no placer-internal certify repair recorded: %v", res.Degradations)
			}
			wantX, wantY := safeReference(t, cells, seed)
			wantBitIdentical(t, res, wantX, wantY)
			c := s.Obs().Counters()
			if c["certify.fail"] != 1 || c["certify.repair"] != 1 {
				t.Fatalf("counters: fail=%g repair=%g, want 1/1", c["certify.fail"], c["certify.repair"])
			}
			// An identical submission is served from the cache — which only
			// ever held the certified, repaired result.
			j2, err := s.Submit(chipSpec(cells, seed))
			if err != nil {
				t.Fatal(err)
			}
			waitDone(t, j2, 60*time.Second)
			st2 := j2.Status()
			if !st2.Cached || !st2.Certified {
				t.Fatalf("duplicate: cached=%v certified=%v, want both", st2.Cached, st2.Certified)
			}
			wantBitIdentical(t, mustResult(t, j2), wantX, wantY)
		})
	}
}

// TestCertifyServeRetry arms two corruptions, so the initial attempt AND
// the placer's internal repair both produce wrong answers: the certify
// error escapes the placer and the scheduler's own safe-mode retry must
// absorb it — quarantining the offending snapshot and still serving a
// certified result bit-identical to the safe trajectory.
func TestCertifyServeRetry(t *testing.T) {
	const cells, seed = 700, 6
	t.Cleanup(func() { leakcheck.Check(t) })
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("certify.corrupt", faultsim.Schedule{Limit: 2}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, Options{Workers: 1, Certify: true})
	j, err := s.Submit(chipSpec(cells, seed))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state %s (%s)", j.State(), j.Status().Error)
	}
	res := mustResult(t, j)
	if !res.Certified {
		t.Fatal("serve-retried result is not certified")
	}
	if !hasCertifyDegradation(res, "serve-safe-mode") {
		t.Fatalf("no serve-level certify repair recorded: %v", res.Degradations)
	}
	wantQuarantine(t, s, j.ID)
	wantX, wantY := safeReference(t, cells, seed)
	wantBitIdentical(t, res, wantX, wantY)
	c := s.Obs().Counters()
	if c["certify.fail"] != 1 || c["certify.repair"] != 1 || c["certify.quarantined"] != 1 {
		t.Fatalf("counters: fail=%g repair=%g quarantined=%g, want 1/1/1",
			c["certify.fail"], c["certify.repair"], c["certify.quarantined"])
	}
	if c["certify.uncertified"] != 0 {
		t.Fatalf("certify.uncertified=%g on a repaired job", c["certify.uncertified"])
	}
}

// TestCertifyUnrepairable corrupts every attempt: initial, placer-internal
// repair and the scheduler's safe retry all fail certification, so the job
// must fail terminally with the result_uncertified code, quarantined
// snapshots on disk, and nothing cached — a later identical submission
// runs its own placement.
func TestCertifyUnrepairable(t *testing.T) {
	const cells, seed = 600, 7
	t.Cleanup(func() { leakcheck.Check(t) })
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("certify.corrupt", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, Options{Workers: 1, Certify: true})
	j, err := s.Submit(chipSpec(cells, seed))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}
	st := j.Status()
	if st.ErrorCode != "result_uncertified" {
		t.Fatalf("error code %q, want result_uncertified (%s)", st.ErrorCode, st.Error)
	}
	if !strings.Contains(st.Error, "certify:") {
		t.Fatalf("error text %q does not carry the certificate violation", st.Error)
	}
	if st.Certified {
		t.Fatal("a failed job must not report as certified")
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("an uncertified job must not hand out a result")
	}
	wantQuarantine(t, s, j.ID)
	c := s.Obs().Counters()
	if c["certify.uncertified"] != 1 {
		t.Fatalf("certify.uncertified=%g, want 1", c["certify.uncertified"])
	}
	if c["certify.fail"] != 2 || c["certify.repair"] != 1 || c["certify.quarantined"] != 2 {
		t.Fatalf("counters: fail=%g repair=%g quarantined=%g, want 2/1/2",
			c["certify.fail"], c["certify.repair"], c["certify.quarantined"])
	}

	// Nothing corrupt was cached: with the fault disarmed, an identical
	// submission runs its own (clean, certified) placement.
	faultsim.Reset()
	j2, err := s.Submit(chipSpec(cells, seed))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2, 120*time.Second)
	st2 := j2.Status()
	if st2.Cached {
		t.Fatal("an uncertified result reached the cache")
	}
	if j2.State() != StateDone || !st2.Certified {
		t.Fatalf("retry after disarm: state=%s certified=%v", j2.State(), st2.Certified)
	}
}

// TestResultUncertifiedEnvelope checks the HTTP face of an uncertifiable
// job: the result endpoint answers 409 with the result_uncertified code
// and the status carries the code too.
func TestResultUncertifiedEnvelope(t *testing.T) {
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("certify.corrupt", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, Options{Workers: 1, Certify: true})
	sv := NewServer(s)
	j, err := s.Submit(chipSpec(500, 8))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 120*time.Second)

	rr := httptest.NewRecorder()
	sv.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/"+j.ID+"/result", nil))
	if rr.Code != http.StatusConflict {
		t.Fatalf("result status %d, want 409", rr.Code)
	}
	var env apiError
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "result_uncertified" {
		t.Fatalf("envelope code %q, want result_uncertified (%s)", env.Code, env.Reason)
	}

	rr = httptest.NewRecorder()
	sv.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/"+j.ID, nil))
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ErrorCode != "result_uncertified" {
		t.Fatalf("status error code %q, want result_uncertified", st.ErrorCode)
	}
}

// TestSubmitPayloadTooLarge checks the request-body bound: a POST /jobs
// body past maxSpecBytes is refused with 413 and the payload_too_large
// envelope instead of being buffered into the decoder.
func TestSubmitPayloadTooLarge(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	sv := NewServer(s)
	body := append([]byte(`{"netlist":"`), bytes.Repeat([]byte{'a'}, maxSpecBytes+1)...)
	rr := httptest.NewRecorder()
	sv.ServeHTTP(rr, httptest.NewRequest("POST", "/jobs", bytes.NewReader(body)))
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rr.Code)
	}
	var env apiError
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "payload_too_large" {
		t.Fatalf("envelope code %q, want payload_too_large", env.Code)
	}
}
