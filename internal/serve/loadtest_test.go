package serve

import (
	"context"
	"testing"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
)

// TestLoadMixedPriorities is the load-test satellite: a burst of
// mixed-size, mixed-priority jobs with duplicates on a small pool. Every
// job must reach a terminal state, preempted jobs must match their
// uninterrupted placements bit-for-bit, and no worker goroutine may leak.
func TestLoadMixedPriorities(t *testing.T) {
	defer leakcheck.Check(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Jobs:       10,
		Seed:       42,
		Duplicates: 3,
		Verify:     true,
		Sched:      Options{Workers: 2, StateDir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Rejected != 0 {
		t.Fatalf("%d submissions rejected with no faults armed", rep.Rejected)
	}
	if rep.Done != rep.Submitted {
		t.Fatalf("%d of %d jobs done (%d failed, %d canceled, %d stuck)",
			rep.Done, rep.Submitted, rep.Failed, rep.Canceled, len(rep.NonTerminal))
	}
	if len(rep.Mismatched) > 0 {
		t.Fatalf("preempted jobs broke bit-identity: %v", rep.Mismatched)
	}
	if rep.CacheHits+rep.Coalesced == 0 {
		t.Fatal("duplicates produced neither cache hits nor coalesced jobs")
	}
}

// TestLoadUnderCheckpointFaults re-runs the load with the checkpoint
// write/corrupt sites firing probabilistically: snapshots fail, but
// placements degrade gracefully — every job still terminates, served
// results still match direct runs.
func TestLoadUnderCheckpointFaults(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("ckpt.write", faultsim.Schedule{Prob: 0.3, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := faultsim.Arm("ckpt.corrupt", faultsim.Schedule{Prob: 0.3, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Jobs:   8,
		Seed:   43,
		Verify: true,
		Sched:  Options{Workers: 2, StateDir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Done != rep.Submitted {
		t.Fatalf("%d of %d jobs done under checkpoint faults (%d failed, %d canceled, %d stuck)",
			rep.Done, rep.Submitted, rep.Failed, rep.Canceled, len(rep.NonTerminal))
	}
	if len(rep.Mismatched) > 0 {
		t.Fatalf("checkpoint faults broke bit-identity: %v", rep.Mismatched)
	}
}

// TestLoadUnderAdmissionFaults arms the serve.accept site so a fraction of
// submissions bounce with a structured error; the admitted jobs must be
// unaffected.
func TestLoadUnderAdmissionFaults(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	if err := faultsim.Arm("serve.accept", faultsim.Schedule{Every: 3}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Jobs:  9,
		Seed:  44,
		Sched: Options{Workers: 2, StateDir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Rejected == 0 {
		t.Fatal("serve.accept armed on every 3rd hit but nothing was rejected")
	}
	if fired := faultsim.Fired("serve.accept"); int(fired) != rep.Rejected {
		t.Fatalf("rejections (%d) disagree with injected faults (%d)", rep.Rejected, fired)
	}
	if rep.Done != rep.Submitted {
		t.Fatalf("%d of %d admitted jobs done (%d failed, %d canceled, %d stuck)",
			rep.Done, rep.Submitted, rep.Failed, rep.Canceled, len(rep.NonTerminal))
	}
}

// TestPreemptionSnapshotFailureKeepsVictimRunning is the degradation
// contract: when the preemption snapshot cannot be written, the victim is
// NOT killed — preemption is skipped, the victim runs to completion, and
// the skip is recorded in the degradation log.
func TestPreemptionSnapshotFailureKeepsVictimRunning(t *testing.T) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	// Every snapshot write fails: stride checkpoints and the preemption
	// snapshot alike.
	if err := faultsim.Arm("ckpt.write", faultsim.Schedule{}); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, Options{Workers: 1})
	victim, err := s.Submit(Spec{
		Chip:  &gen.ChipSpec{NumCells: 2000, Seed: 31},
		Knobs: Knobs{MaxLevels: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, victim)
	hi, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 300, Seed: 32}, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, victim, 120*time.Second)
	waitDone(t, hi, 120*time.Second)
	if victim.State() != StateDone || hi.State() != StateDone {
		t.Fatalf("states: victim=%s hi=%s, want both done", victim.State(), hi.State())
	}
	if victim.Preemptions() != 0 {
		t.Fatalf("victim recorded %d preemptions; a failed snapshot must keep it running", victim.Preemptions())
	}
	res := mustResult(t, victim)
	kept := false
	for _, d := range res.Degradations {
		if d.Stage == "preempt" && d.Fallback == "kept-running" {
			kept = true
		}
	}
	if !kept {
		t.Fatalf("degradation log missing preempt->kept-running: %+v", res.Degradations)
	}
	// The victim's run was effectively uninterrupted; its placement must
	// still match a direct run.
	if ok, err := verifyDirect(context.Background(), victim); err != nil || !ok {
		t.Fatalf("kept-running victim differs from direct run (ok=%v err=%v)", ok, err)
	}
}
