//go:build linux

package serve

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// memAvailable reads MemAvailable from /proc/meminfo in bytes (0 when it
// cannot be determined).
func memAvailable() int64 {
	f, err := os.Open("/proc/meminfo")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, perr := strconv.ParseInt(fields[1], 10, 64)
		if perr != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// diskFree reports the free bytes on the filesystem holding path.
func diskFree(path string) (int64, bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, false
	}
	return int64(st.Bavail) * st.Bsize, true
}
